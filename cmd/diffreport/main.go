// Command diffreport lists per-trace modeling-vs-simulation
// discrepancies from a saved study run: the largest DIFFtotal values,
// and the traces that straddle the 2% need-for-simulation threshold on
// the wrong side of the naive classification (the cases the paper's
// Section VI-B4 discussion attributes misclassifications to).
//
// Usage:
//
//	diffreport -load results.json [-top N]
//	diffreport -load results.json -frontier     # triage accuracy-vs-cost sweep
//	diffreport -triage results.json.triage.json # a tiered campaign's decisions
//
// The -frontier sweep replays the tiered scheduler (internal/triage)
// over a run-everything result set at a ladder of thresholds: every
// simulation wall and DIFF is already known there, so each operating
// point — escalation rate, rescued/missed DIFF mass, wall-clock saved
// — is exact. -triage renders the decision report a tiered
// `tradeoff -triage -save` run wrote.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hpctradeoff/internal/classifier"
	"hpctradeoff/internal/core"
	"hpctradeoff/internal/scheme"
	"hpctradeoff/internal/triage"
)

// frontierThresholds is the sweep ladder: both endpoints (the
// run-everything and model-only baselines) plus interior operating
// points.
var frontierThresholds = []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1}

// renderFrontier computes and prints the accuracy-vs-cost frontier
// from a run-everything result set.
func renderFrontier(rs []*core.TraceResult, seed int64) error {
	pts := core.TriagePoints(rs)
	rows, err := triage.Frontier(pts, triage.Policy{Seed: seed}, frontierThresholds)
	if err != nil {
		return err
	}
	fmt.Print(triage.RenderFrontier(rows))
	fmt.Printf("\n%d of %d traces swept (traces without a model prediction and a successful simulation are dropped)\n",
		len(pts), len(rs))
	return nil
}

// renderTriageReport prints a tiered campaign's saved decision report.
func renderTriageReport(path string, top int) error {
	t, err := core.LoadTriageReport(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s\npolicy: %s\n", t.Summary(), t.Policy)
	byReason := map[triage.Reason]int{}
	for _, d := range t.Decisions {
		byReason[d.Reason]++
	}
	fmt.Println("\ndecisions by reason:")
	for _, r := range []triage.Reason{
		triage.ReasonCalibration, triage.ReasonFlagged, triage.ReasonCleared,
		triage.ReasonEscalateAll, triage.ReasonModelOnly,
		triage.ReasonBudgetCount, triage.ReasonBudgetWall,
		triage.ReasonClassifierDown, triage.ReasonModelFailed,
	} {
		if n := byReason[r]; n > 0 {
			fmt.Printf("  %-16s %d\n", r, n)
		}
	}
	escalated := make([]triage.Decision, 0, len(t.Decisions))
	for _, d := range t.Decisions {
		if d.Escalate && d.Reason == triage.ReasonFlagged {
			escalated = append(escalated, d)
		}
	}
	sort.Slice(escalated, func(i, j int) bool {
		if escalated[i].Score != escalated[j].Score {
			return escalated[i].Score > escalated[j].Score
		}
		return escalated[i].Key < escalated[j].Key
	})
	if len(escalated) > 0 {
		fmt.Println("\nhighest-scored escalations:")
		for i, d := range escalated {
			if i >= top {
				break
			}
			fmt.Printf("  %-40s P=%.3f\n", d.Key, d.Score)
		}
	}
	return nil
}

func main() {
	load := flag.String("load", "", "results JSON from cmd/tradeoff -save")
	top := flag.Int("top", 25, "how many rows per section")
	frontier := flag.Bool("frontier", false, "render the triage accuracy-vs-cost frontier instead of the DIFF report")
	frontierSeed := flag.Int64("frontier-seed", 1, "classifier training seed for the frontier sweep")
	triageReport := flag.String("triage", "", "render a tiered campaign's triage report JSON (from tradeoff -triage -save)")
	flag.Parse()
	if *triageReport != "" {
		if err := renderTriageReport(*triageReport, *top); err != nil {
			fmt.Fprintln(os.Stderr, "diffreport:", err)
			os.Exit(1)
		}
		return
	}
	if *load == "" {
		fmt.Fprintln(os.Stderr, "usage: diffreport -load results.json [-frontier] | diffreport -triage report.json")
		os.Exit(2)
	}
	rs, err := core.LoadResultsFile(*load)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diffreport:", err)
		os.Exit(1)
	}
	if *frontier {
		if err := renderFrontier(rs, *frontierSeed); err != nil {
			fmt.Fprintln(os.Stderr, "diffreport:", err)
			os.Exit(1)
		}
		return
	}

	type row struct {
		id           string
		signed, diff float64
		bw, lat, wt  float64
		grp          core.Group
	}
	var rows []row
	for _, r := range rs {
		d, ok := r.DiffTotal(scheme.PacketFlow)
		model := r.Model()
		if !ok || model == nil {
			continue
		}
		signed := float64(r.Schemes[scheme.PacketFlow].Total)/float64(model.Total()) - 1
		rows = append(rows, row{
			id: r.ID, signed: signed, diff: d,
			bw: model.BandwidthSensitivity(), lat: model.LatencySensitivity(),
			wt: model.WaitFraction(), grp: r.Group(),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].diff > rows[j].diff })

	fmt.Printf("largest |DIFFtotal| (packet-flow vs MFACT), %d traces total:\n", len(rows))
	fmt.Printf("  %-30s %-9s %-7s %-7s %-6s %s\n", "trace", "DIFF", "bwSens", "latSens", "wait", "group")
	for i, r := range rows {
		if i >= *top {
			break
		}
		fmt.Printf("  %-30s %+8.2f%% %6.2f  %6.2f  %5.2f  %s\n",
			r.id, 100*r.signed, r.bw, r.lat, r.wt, r.grp)
	}

	thr := classifier.NeedSimThreshold
	fn, fp := 0, 0
	fmt.Printf("\nnaive-rule mismatches (threshold %.0f%%):\n", 100*thr)
	for _, r := range rows {
		cs := r.grp == core.GroupCommSensitive
		switch {
		case !cs && r.diff > thr:
			fn++
		case cs && r.diff <= thr:
			fp++
		}
	}
	fmt.Printf("  false negatives (ncs but DIFF > %.0f%%): %d\n", 100*thr, fn)
	fmt.Printf("  false positives (cs but DIFF ≤ %.0f%%):  %d\n", 100*thr, fp)
	fmt.Printf("  naive success rate: %.1f%%\n", 100*float64(len(rows)-fn-fp)/float64(max(len(rows), 1)))
}
