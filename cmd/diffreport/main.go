// Command diffreport lists per-trace modeling-vs-simulation
// discrepancies from a saved study run: the largest DIFFtotal values,
// and the traces that straddle the 2% need-for-simulation threshold on
// the wrong side of the naive classification (the cases the paper's
// Section VI-B4 discussion attributes misclassifications to).
//
// Usage:
//
//	diffreport -load results.json [-top N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hpctradeoff/internal/classifier"
	"hpctradeoff/internal/core"
	"hpctradeoff/internal/scheme"
)

func main() {
	load := flag.String("load", "", "results JSON from cmd/tradeoff -save")
	top := flag.Int("top", 25, "how many rows per section")
	flag.Parse()
	if *load == "" {
		fmt.Fprintln(os.Stderr, "usage: diffreport -load results.json")
		os.Exit(2)
	}
	rs, err := core.LoadResultsFile(*load)
	if err != nil {
		fmt.Fprintln(os.Stderr, "diffreport:", err)
		os.Exit(1)
	}

	type row struct {
		id           string
		signed, diff float64
		bw, lat, wt  float64
		grp          core.Group
	}
	var rows []row
	for _, r := range rs {
		d, ok := r.DiffTotal(scheme.PacketFlow)
		model := r.Model()
		if !ok || model == nil {
			continue
		}
		signed := float64(r.Schemes[scheme.PacketFlow].Total)/float64(model.Total()) - 1
		rows = append(rows, row{
			id: r.ID, signed: signed, diff: d,
			bw: model.BandwidthSensitivity(), lat: model.LatencySensitivity(),
			wt: model.WaitFraction(), grp: r.Group(),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].diff > rows[j].diff })

	fmt.Printf("largest |DIFFtotal| (packet-flow vs MFACT), %d traces total:\n", len(rows))
	fmt.Printf("  %-30s %-9s %-7s %-7s %-6s %s\n", "trace", "DIFF", "bwSens", "latSens", "wait", "group")
	for i, r := range rows {
		if i >= *top {
			break
		}
		fmt.Printf("  %-30s %+8.2f%% %6.2f  %6.2f  %5.2f  %s\n",
			r.id, 100*r.signed, r.bw, r.lat, r.wt, r.grp)
	}

	thr := classifier.NeedSimThreshold
	fn, fp := 0, 0
	fmt.Printf("\nnaive-rule mismatches (threshold %.0f%%):\n", 100*thr)
	for _, r := range rows {
		cs := r.grp == core.GroupCommSensitive
		switch {
		case !cs && r.diff > thr:
			fn++
		case cs && r.diff <= thr:
			fp++
		}
	}
	fmt.Printf("  false negatives (ncs but DIFF > %.0f%%): %d\n", 100*thr, fn)
	fmt.Printf("  false positives (cs but DIFF ≤ %.0f%%):  %d\n", 100*thr, fp)
	fmt.Printf("  naive success rate: %.1f%%\n", 100*float64(len(rows)-fn-fp)/float64(max(len(rows), 1)))
}
