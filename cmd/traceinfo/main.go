// Command traceinfo inspects a trace file: metadata, event and
// operation counts, measured times, and the Table III feature vector.
// With -cache it instead lists a trace-cache directory: each entry's
// key, codec and workload-schema versions, size, and last use.
//
// Usage:
//
//	traceinfo trace.htrc [more.htrc ...]
//	traceinfo -cache DIR
package main

import (
	"flag"
	"fmt"
	"os"

	"hpctradeoff/internal/features"
	"hpctradeoff/internal/trace"
	"hpctradeoff/internal/tracecache"
	"hpctradeoff/internal/workload"
)

func main() {
	verbose := flag.Bool("v", false, "print the full Table III feature vector")
	cacheDir := flag.String("cache", "", "list this trace-cache directory instead of reading trace files")
	flag.Parse()
	if *cacheDir != "" {
		if err := describeCache(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %s: %v\n", *cacheDir, err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo [-v] trace.htrc ... | traceinfo -cache DIR")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		if err := describe(path, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}

// describeCache lists every entry of a trace-cache directory, including
// ones a current binary would refuse to serve (stale versions, corrupt
// sidecars) — the point of the listing is seeing what is on disk, not
// what would hit.
func describeCache(dir string) error {
	c, err := tracecache.Open(dir, tracecache.Options{})
	if err != nil {
		return err
	}
	entries, err := c.List()
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d entries\n", dir, len(entries))
	var total int64
	for _, e := range entries {
		if e.Err != nil {
			fmt.Printf("  %s  UNREADABLE: %v\n", e.Hash, e.Err)
			continue
		}
		stale := ""
		if e.Codec != trace.VersionV3 || e.WorkloadSchema != workload.SchemaVersion {
			stale = "  STALE (will regenerate)"
		}
		fmt.Printf("  %s  codec=v%d schema=%d  %8.2f MB  last use %s  %s%s\n",
			e.Hash, e.Codec, e.WorkloadSchema, float64(e.Bytes)/1e6,
			e.LastUse.Format("2006-01-02 15:04:05"), e.Key, stale)
		total += e.Bytes
	}
	fmt.Printf("  total %.2f MB\n", float64(total)/1e6)
	return nil
}

func describe(path string, verbose bool) error {
	version, err := trace.FileVersion(path)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cols, err := trace.ReadColumns(f)
	if err != nil {
		return err
	}
	if err := cols.Validate(); err != nil {
		return fmt.Errorf("invalid trace: %w", err)
	}
	tr := cols.Materialize()

	fmt.Printf("%s\n", path)
	fmt.Printf("  codec         v%d", version)
	if version == 3 {
		fmt.Printf(" (zero-copy mappable)")
	}
	fmt.Println()
	fmt.Printf("  id            %s\n", tr.Meta.ID())
	fmt.Printf("  ranks         %d (%d per node)\n", tr.Meta.NumRanks, tr.Meta.RanksPerNode)
	fmt.Printf("  machine       %s\n", tr.Meta.Machine)
	fmt.Printf("  seed          %d\n", tr.Meta.Seed)
	fmt.Printf("  capabilities  commSplit=%v threadMultiple=%v\n",
		tr.Meta.UsesCommSplit, tr.Meta.UsesThreadMultiple)
	fmt.Printf("  communicators %d\n", tr.Comms.Len())
	fmt.Printf("  events        %d\n", tr.NumEvents())
	fmt.Printf("  measured      total %v, comm %v (%.1f%%)\n",
		tr.MeasuredTotal(), tr.MeasuredComm(), 100*tr.CommFraction())
	colBytes, aosBytes := cols.FootprintBytes(), trace.AoSFootprintBytes(tr)
	fmt.Printf("  resident est  columnar %.2f MB, array-of-structs %.2f MB (%.0f%%)\n",
		float64(colBytes)/1e6, float64(aosBytes)/1e6, 100*float64(colBytes)/float64(max(aosBytes, 1)))
	// A v3 file maps in as-is, so its on-disk size IS the mapped
	// resident estimate (file-backed, reclaimable, shared across
	// processes mapping the same trace).
	fmt.Printf("  v3 mapped est %.2f MB file-backed (%.0f%% of columnar heap)\n",
		float64(trace.V3Size(cols))/1e6, 100*float64(trace.V3Size(cols))/float64(max(colBytes, 1)))

	counts := map[trace.Op]int{}
	var bytes int64
	for _, evs := range tr.Ranks {
		for i := range evs {
			counts[evs[i].Op]++
			nMembers := 0
			if evs[i].Op.IsCollective() {
				nMembers = tr.Comms.Size(evs[i].Comm)
			}
			bytes += evs[i].TotalSendBytes(nMembers)
		}
	}
	fmt.Printf("  bytes sent    %.2f MB\n", float64(bytes)/1e6)
	fmt.Printf("  operations   ")
	for op := trace.Op(0); int(op) < 32; op++ {
		if c := counts[op]; c > 0 {
			fmt.Printf(" %s=%d", op, c)
		}
	}
	fmt.Println()

	if verbose {
		fmt.Println("  features (Table III, MFACT classification omitted):")
		v := features.Extract(tr, nil)
		names := features.Names()
		for i, n := range names {
			fmt.Printf("    %-8s %.6g\n", n, v[i])
		}
	}
	return nil
}
