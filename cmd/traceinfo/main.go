// Command traceinfo inspects a trace file: metadata, event and
// operation counts, measured times, and the Table III feature vector.
//
// Usage:
//
//	traceinfo trace.htrc [more.htrc ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"hpctradeoff/internal/features"
	"hpctradeoff/internal/trace"
)

func main() {
	verbose := flag.Bool("v", false, "print the full Table III feature vector")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo [-v] trace.htrc ...")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		if err := describe(path, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}

func describe(path string, verbose bool) error {
	version, err := trace.FileVersion(path)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cols, err := trace.ReadColumns(f)
	if err != nil {
		return err
	}
	if err := cols.Validate(); err != nil {
		return fmt.Errorf("invalid trace: %w", err)
	}
	tr := cols.Materialize()

	fmt.Printf("%s\n", path)
	fmt.Printf("  codec         v%d", version)
	if version == 3 {
		fmt.Printf(" (zero-copy mappable)")
	}
	fmt.Println()
	fmt.Printf("  id            %s\n", tr.Meta.ID())
	fmt.Printf("  ranks         %d (%d per node)\n", tr.Meta.NumRanks, tr.Meta.RanksPerNode)
	fmt.Printf("  machine       %s\n", tr.Meta.Machine)
	fmt.Printf("  seed          %d\n", tr.Meta.Seed)
	fmt.Printf("  capabilities  commSplit=%v threadMultiple=%v\n",
		tr.Meta.UsesCommSplit, tr.Meta.UsesThreadMultiple)
	fmt.Printf("  communicators %d\n", tr.Comms.Len())
	fmt.Printf("  events        %d\n", tr.NumEvents())
	fmt.Printf("  measured      total %v, comm %v (%.1f%%)\n",
		tr.MeasuredTotal(), tr.MeasuredComm(), 100*tr.CommFraction())
	colBytes, aosBytes := cols.FootprintBytes(), trace.AoSFootprintBytes(tr)
	fmt.Printf("  resident est  columnar %.2f MB, array-of-structs %.2f MB (%.0f%%)\n",
		float64(colBytes)/1e6, float64(aosBytes)/1e6, 100*float64(colBytes)/float64(max(aosBytes, 1)))
	// A v3 file maps in as-is, so its on-disk size IS the mapped
	// resident estimate (file-backed, reclaimable, shared across
	// processes mapping the same trace).
	fmt.Printf("  v3 mapped est %.2f MB file-backed (%.0f%% of columnar heap)\n",
		float64(trace.V3Size(cols))/1e6, 100*float64(trace.V3Size(cols))/float64(max(colBytes, 1)))

	counts := map[trace.Op]int{}
	var bytes int64
	for _, evs := range tr.Ranks {
		for i := range evs {
			counts[evs[i].Op]++
			nMembers := 0
			if evs[i].Op.IsCollective() {
				nMembers = tr.Comms.Size(evs[i].Comm)
			}
			bytes += evs[i].TotalSendBytes(nMembers)
		}
	}
	fmt.Printf("  bytes sent    %.2f MB\n", float64(bytes)/1e6)
	fmt.Printf("  operations   ")
	for op := trace.Op(0); int(op) < 32; op++ {
		if c := counts[op]; c > 0 {
			fmt.Printf(" %s=%d", op, c)
		}
	}
	fmt.Println()

	if verbose {
		fmt.Println("  features (Table III, MFACT classification omitted):")
		v := features.Extract(tr, nil)
		names := features.Names()
		for i, n := range names {
			fmt.Printf("    %-8s %.6g\n", n, v[i])
		}
	}
	return nil
}
