// Command sstsim replays an MPI trace on a discrete-event network
// simulation at packet, flow, or packet-flow granularity (the
// SST/Macro-analog side of the study).
//
// Usage:
//
//	sstsim -model packetflow trace.htrc
//	sstsim -model packet -app FT -ranks 64
//	sstsim -schemes mfact,packetflow -app FT -ranks 64
//	                                 # compare registry schemes on one trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/mpisim"
	"hpctradeoff/internal/scheme"
	"hpctradeoff/internal/simnet"
	"hpctradeoff/internal/trace"
	"hpctradeoff/internal/workload"
)

func main() {
	model := flag.String("model", "packetflow", "network model: packet, flow, or packetflow")
	packetBytes := flag.Int64("packet", 0, "packet size in bytes (0 = model default)")
	app := flag.String("app", "", "generate a synthetic trace for this app")
	class := flag.String("class", "B", "problem class for -app")
	ranks := flag.Int("ranks", 64, "rank count for -app")
	machName := flag.String("machine", "edison", "target machine")
	seed := flag.Int64("seed", 1, "seed for -app")
	schemes := flag.String("schemes", "", "run these registered schemes over the trace and compare "+
		"(comma-separated; available: "+strings.Join(scheme.Names(), ",")+"; overrides -model)")
	flag.Parse()

	var tr *trace.Trace
	var err error
	if *app != "" {
		tr, err = workload.Materialize(workload.Params{
			App: *app, Class: *class, Ranks: *ranks, Machine: *machName, Seed: *seed,
		})
	} else if flag.Arg(0) != "" {
		tr, err = readTrace(flag.Arg(0))
	} else {
		err = fmt.Errorf("need a trace file argument or -app")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sstsim:", err)
		os.Exit(1)
	}
	mach, err := machine.New(tr.Meta.Machine, tr.Meta.NumRanks, tr.Meta.RanksPerNode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sstsim:", err)
		os.Exit(1)
	}

	if *schemes != "" {
		if err := runSchemes(tr, mach, *schemes); err != nil {
			fmt.Fprintln(os.Stderr, "sstsim:", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	res, err := mpisim.Replay(tr, simnet.Model(*model), mach, simnet.Config{PacketBytes: *packetBytes}, mpisim.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sstsim:", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	fmt.Printf("trace        %s (%d ranks, %d events)\n", tr.Meta.ID(), tr.Meta.NumRanks, tr.NumEvents())
	fmt.Printf("machine      %s on %s\n", mach.Name, mach.Topo.Name())
	fmt.Printf("model        %s\n", res.Model)
	fmt.Printf("simulated in %v (%d DES events)\n", wall.Round(time.Millisecond), res.Events)
	fmt.Printf("\nestimated total time  %v\n", res.Total)
	fmt.Printf("estimated comm time   %v\n", res.Comm)
	if m := tr.MeasuredTotal(); m > 0 {
		fmt.Printf("measured total time   %v (prediction/measured = %.3f)\n",
			m, float64(res.Total)/float64(m))
	}
	s := res.Net
	fmt.Printf("\nnetwork: %d messages, %d packets, %d flow updates, %.1f MB injected\n",
		s.Messages, s.Packets, s.FlowUpdates, float64(s.BytesSent)/1e6)
}

// runSchemes replays the trace through each selected registry scheme
// and prints a side-by-side comparison (the paper's Table II shape for
// a single trace).
func runSchemes(tr *trace.Trace, mach *machine.Config, list string) error {
	ss, err := scheme.Resolve(scheme.ParseList(list))
	if err != nil {
		return err
	}
	fmt.Printf("trace   %s (%d ranks, %d events)\n", tr.Meta.ID(), tr.Meta.NumRanks, tr.NumEvents())
	fmt.Printf("machine %s on %s\n\n", mach.Name, mach.Topo.Name())
	fmt.Printf("%-12s %-11s %-14s %-14s %-12s %s\n", "scheme", "kind", "total", "comm", "events", "wall")
	for _, s := range ss {
		out, err := s.Run(tr, mach, scheme.Options{})
		if err != nil {
			fmt.Printf("%-12s %-11s failed: %v\n", s.Name(), s.Kind(), err)
			continue
		}
		fmt.Printf("%-12s %-11s %-14v %-14v %-12d %v\n",
			out.Scheme, out.Kind, out.Total, out.Comm, out.Events, out.Wall.Round(time.Microsecond))
	}
	return nil
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return nil, err
	}
	return tr, tr.Validate()
}
