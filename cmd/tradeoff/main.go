// Command tradeoff runs the paper's Section V study: it materializes
// the trace suite, runs MFACT modeling and the three SST/Macro-analog
// simulations on every trace, and prints Table I, Table II, and
// Figures 1–4.
//
// Usage:
//
//	tradeoff                          # full 235-trace study
//	tradeoff -stride 8 -maxranks 256  # quick reduced study
//	tradeoff -save results.json       # persist results for cmd/predictor
//	tradeoff -load results.json       # re-render from saved results
//
// Campaign specs (see internal/spec): drive the whole campaign from a
// declarative YAML/JSON file — manifest sweep, scheme selection,
// budgets, triage policy, and the platform-noise axis — instead of
// flags and the built-in suite:
//
//	tradeoff -spec specs/paper-235.yaml        # the study, as data
//	tradeoff -spec specs/variability.yaml      # the noise study
//	tradeoff -spec s.yaml -stride 8            # flags still filter/override
//
// Explicitly-set flags override the spec's values; -stride/-maxranks
// filter the compiled manifest. Checkpoints record the compiled spec
// hash and refuse to resume under a different spec (or under none).
// When results carry non-zero noise points, the variability study
// table renders after the figures.
//
// Campaign robustness (see internal/core's campaign runner):
//
//	tradeoff -keep-going              # isolate failing traces, render the rest
//	tradeoff -timeout 5m -max-events 2e9
//	                                  # budget each trace; runaways fail, not hang
//	tradeoff -checkpoint run.jsonl    # journal each completed trace
//	tradeoff -checkpoint run.jsonl -resume
//	                                  # re-execute only missing/failed traces
//
// A first SIGINT/SIGTERM cancels the campaign cleanly (in-flight
// replays stop through the DES engines' Stop path, completed traces
// stay journaled) and prints the exact -resume invocation; a second
// signal kills immediately.
//
// Scheme selection (see internal/scheme's registry):
//
//	tradeoff -schemes mfact,packet    # run a subset of the registered schemes
//	                                  # (checkpoints record the selection and
//	                                  # refuse to resume under a different one)
//
// Tiered triage (see internal/triage): run MFACT on everything, train
// the enhanced-MFACT classifier on a calibration split, and escalate
// only flagged traces to the simulation schemes:
//
//	tradeoff -triage                           # classifier-gated escalation
//	tradeoff -triage -triage-threshold 0.3     # escalate at P ≥ 0.3
//	tradeoff -triage -triage-budget 12,30s     # ≤12 escalations, ≤30s wall
//
// Threshold 0 escalates everything (bit-identical to the plain
// campaign); threshold 1 escalates nothing (bit-identical to
// -schemes mfact). Checkpoints journal every triage decision and
// refuse to resume under a different policy.
//
// Multi-process sharding (see internal/core's shard machinery): split
// the manifest into N contiguous ranges, run each range in its own
// worker process with its own checkpoint journal shard, then merge the
// shard journals into one ordinary checkpoint and render:
//
//	tradeoff -shards 4 -checkpoint run.jsonl
//
// Shards share nothing at runtime, so a crashed or killed worker loses
// only its own range; re-running the same command resumes every shard
// from its journal (completed shards fast-forward). Results are
// bit-identical to a single-process run of the same manifest. -shards
// requires -checkpoint and does not compose with -triage (the
// classifier trains on a global calibration split, which a shard
// cannot see). -shard-worker is internal: the parent re-execs itself
// with it to run one shard's range. The flags a worker inherits are
// the explicit shardForward table below — a new manifest- or
// config-shaping flag must be added there (the exhaustiveness test
// fails the build otherwise).
//
// Trace caching (see internal/tracecache): keep the ground-truth-stamped
// traces in a content-addressed on-disk cache, so repeated campaigns,
// triage escalation passes, resumes, and shard re-runs replay an mmap'd
// codec-v3 entry instead of regenerating and re-stamping the trace:
//
//	tradeoff -trace-cache .tradeoff-cache
//	tradeoff -trace-cache .tradeoff-cache -trace-cache-max-bytes 2000000000
//
// The directory is safe to share across shard processes and successive
// runs; results are bit-identical to an uncached campaign. Corrupt
// entries are detected (checksummed sidecar index), evicted, and
// regenerated with a warning.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"hpctradeoff/internal/core"
	"hpctradeoff/internal/scheme"
	"hpctradeoff/internal/spec"
	"hpctradeoff/internal/tracecache"
	"hpctradeoff/internal/triage"
	"hpctradeoff/internal/workload"
)

// The flag set lives at package level so the shard-forwarding tables
// below (and their exhaustiveness test) can enumerate it.
var (
	specPath = flag.String("spec", "", "drive the campaign from this YAML/JSON campaign spec (explicitly-set flags override spec values; -stride/-maxranks filter the compiled manifest)")
	stride   = flag.Int("stride", 1, "keep every Nth manifest entry")
	maxRanks = flag.Int("maxranks", 0, "skip traces larger than this (0 = no cap)")
	workers  = flag.Int("workers", runtime.NumCPU(), "parallel trace workers")
	minWall  = flag.Duration("minwall", 20*time.Millisecond,
		"Figure 1 drops traces whose slowest simulation is below this (the paper drops sub-second runs)")
	save       = flag.String("save", "", "save results JSON to this path (written atomically)")
	load       = flag.String("load", "", "load results JSON instead of running the suite")
	figDir     = flag.String("figdir", "", "write the figures as SVG files into this directory")
	quiet      = flag.Bool("q", false, "suppress per-trace progress")
	timeout    = flag.Duration("timeout", 0, "wall-clock budget per trace (0 = unlimited)")
	maxEvents  = flag.Uint64("max-events", 0, "DES event budget per simulation (0 = unlimited)")
	keepGoing  = flag.Bool("keep-going", false, "continue past failing traces and render from the survivors")
	retries    = flag.Int("retries", 0, "retry transiently failing traces up to N times")
	checkpoint = flag.String("checkpoint", "", "append completed traces to this JSONL journal")
	resume     = flag.Bool("resume", false, "skip traces already in -checkpoint; rerun only missing/failed ones")
	schemes    = flag.String("schemes", "", "comma-separated scheme subset to run (default: all registered: "+
		strings.Join(scheme.Names(), ",")+")")
	cpuprofile      = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile      = flag.String("memprofile", "", "write a heap profile at exit to this file")
	triageOn        = flag.Bool("triage", false, "run the campaign tiered: model everything, escalate only classifier-flagged traces to simulation")
	triageThreshold = flag.Float64("triage-threshold", 0.5, "escalate when the classifier's P(DIFF > 2%) is at or above this (0 = escalate all, 1 = escalate none)")
	triageBudget    = flag.String("triage-budget", "", "escalation budget: a count, a duration, or both comma-separated (e.g. 12,30s)")
	triageSeed      = flag.Int64("triage-seed", 1, "seed for the triage classifier's cross-validated training")
	shards          = flag.Int("shards", 0, "split the campaign across N worker processes with per-shard checkpoint journals (requires -checkpoint)")
	shardWorker     = flag.Int("shard-worker", -1, "internal: run as shard worker I of -shards (set by the parent process)")
	traceCache      = flag.String("trace-cache", "", "serve ground-truth-stamped traces from a content-addressed cache at this directory (created if missing; safe to share across shards and runs)")
	traceCacheMax   = flag.Int64("trace-cache-max-bytes", 0, "LRU-evict least-recently-used cache entries above this total size (0 = unbounded; requires -trace-cache)")
)

// shardForward lists every flag a shard worker must inherit from the
// parent: anything that shapes the manifest (the worker re-derives its
// range from the same manifest), the campaign config, or the journal
// location. The parent re-exec builds worker command lines from this
// table — os.Args is no longer forwarded wholesale — and
// TestShardFlagTablesExhaustive pins every defined flag to exactly one
// of the two tables, so a new flag cannot silently skip the decision.
var shardForward = []string{
	"spec", "stride", "maxranks", "workers", "q",
	"timeout", "max-events", "keep-going", "retries",
	"checkpoint", "resume", "schemes", "shards",
	"trace-cache", "trace-cache-max-bytes",
}

// shardLocal lists the flags that stay in the parent process: pure
// rendering and persistence (the parent renders after the merge),
// per-process profiling (worker profiles would clobber one file), the
// triage flags (-shards rejects -triage up front), and -shard-worker
// itself (appended per worker, never inherited).
var shardLocal = []string{
	"minwall", "save", "load", "figdir",
	"cpuprofile", "memprofile",
	"triage", "triage-threshold", "triage-budget", "triage-seed",
	"shard-worker",
}

// shardWorkerArgs builds shard i's command line: every explicitly-set
// forwarded flag with its current value, plus the worker marker. Only
// explicitly-set flags are passed, so the worker re-runs the same
// flag/spec merge the parent did.
func shardWorkerArgs(shard int) []string {
	forward := map[string]bool{}
	for _, n := range shardForward {
		forward[n] = true
	}
	var args []string
	flag.Visit(func(f *flag.Flag) {
		if forward[f.Name] {
			args = append(args, "-"+f.Name+"="+f.Value.String())
		}
	})
	return append(args, fmt.Sprintf("-shard-worker=%d", shard))
}

// finishProfiles finalizes any active pprof outputs; exit routes all
// early termination through it so profiles survive failed runs too.
var finishProfiles = func() {}

func exit(code int) {
	finishProfiles()
	os.Exit(code)
}

// startProfiles turns on the requested pprof outputs and installs the
// finalizer (stops the CPU profile, snapshots the heap after a GC).
func startProfiles(cpu, mem string) error {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
	}
	finishProfiles = func() {
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}
	return nil
}

// resumeInvocation reconstructs the exact command line that resumes an
// interrupted campaign: the original arguments plus -resume (if it was
// not already set).
func resumeInvocation(hadResume bool) string {
	args := append([]string(nil), os.Args...)
	if !hadResume {
		args = append(args, "-resume")
	}
	return strings.Join(args, " ")
}

// prefixWriter tags each output line of a shard worker with its shard
// label, so the interleaved output of N concurrent children stays
// attributable.
type prefixWriter struct {
	w      io.Writer
	prefix []byte
	buf    bytes.Buffer
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	p.buf.Write(b)
	for {
		line, err := p.buf.ReadBytes('\n')
		if err != nil {
			// Partial line: keep it buffered for the next Write.
			p.buf.Write(line)
			break
		}
		p.w.Write(p.prefix)
		p.w.Write(line)
	}
	return len(b), nil
}

// runShardParent forks one worker process per shard (this binary with
// the shardForward flags plus -shard-worker=i), waits for all of them,
// and merges their journal shards into the single checkpoint at
// ckptPath. Signals are forwarded so Ctrl-C interrupts every shard
// cleanly (each flushes its own journal and exits; re-running the same
// command resumes).
func runShardParent(shards int, ckptPath string, hadResume bool) error {
	fmt.Printf("sharding the campaign across %d worker processes...\n", shards)
	cmds := make([]*exec.Cmd, shards)
	for i := range cmds {
		cmd := exec.Command(os.Args[0], shardWorkerArgs(i)...)
		cmd.Stdout = &prefixWriter{w: os.Stdout, prefix: []byte(fmt.Sprintf("[shard %d] ", i))}
		cmd.Stderr = &prefixWriter{w: os.Stderr, prefix: []byte(fmt.Sprintf("[shard %d] ", i))}
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:i] {
				c.Process.Kill()
				c.Wait()
			}
			return fmt.Errorf("starting shard %d: %w", i, err)
		}
		cmds[i] = cmd
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		for s := range sigs {
			for _, c := range cmds {
				if c.Process != nil {
					c.Process.Signal(s)
				}
			}
		}
	}()

	failed := 0
	for i, c := range cmds {
		if err := c.Wait(); err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "tradeoff: shard %d: %v\n", i, err)
		}
	}
	signal.Stop(sigs)
	close(sigs)
	if failed > 0 {
		return fmt.Errorf("%d of %d shards did not complete; their progress is journaled — resume with:\n  %s",
			failed, shards, resumeInvocation(hadResume))
	}

	stats, err := core.MergeShardJournals(ckptPath, shards)
	if err != nil {
		return err
	}
	if err := core.RemoveShardJournals(ckptPath, shards); err != nil {
		return fmt.Errorf("cleaning up shard journals: %w", err)
	}
	fmt.Printf("merged %d results from %d shard journals into %s\n", stats.Results, shards, ckptPath)
	return nil
}

// loadSpec loads and compiles -spec, then folds its config into the
// flag-backed values: a flag the user set explicitly on the command
// line wins; otherwise the spec's value lands in the flag variable, so
// everything downstream (including the shard workers, which re-run
// this merge) reads one consistent configuration.
func loadSpec(path string, explicit map[string]bool) (*spec.Compiled, error) {
	s, err := spec.Load(path)
	if err != nil {
		return nil, err
	}
	c, err := spec.Compile(s)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !explicit["workers"] && c.Workers > 0 {
		*workers = c.Workers
	}
	if !explicit["timeout"] {
		*timeout = c.Timeout
	}
	if !explicit["max-events"] {
		*maxEvents = c.MaxEvents
	}
	if !explicit["keep-going"] {
		*keepGoing = c.KeepGoing
	}
	if !explicit["retries"] {
		*retries = c.MaxRetries
	}
	if !explicit["schemes"] && len(c.Schemes) > 0 {
		*schemes = strings.Join(c.Schemes, ",")
	}
	return c, nil
}

func main() {
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var compiled *spec.Compiled
	if *specPath != "" {
		if *load != "" {
			fmt.Fprintln(os.Stderr, "tradeoff: -spec is meaningless with -load (the results are already computed)")
			os.Exit(2)
		}
		var err error
		if compiled, err = loadSpec(*specPath, explicit); err != nil {
			fmt.Fprintln(os.Stderr, "tradeoff:", err)
			os.Exit(2)
		}
	}

	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "tradeoff: -resume requires -checkpoint")
		os.Exit(2)
	}
	var triagePolicy *triage.Policy
	switch {
	case *triageOn:
		triagePolicy = &triage.Policy{Threshold: *triageThreshold, Seed: *triageSeed}
		if err := core.ParseTriageBudget(*triageBudget, triagePolicy); err != nil {
			fmt.Fprintln(os.Stderr, "tradeoff:", err)
			os.Exit(2)
		}
	case *triageBudget != "":
		fmt.Fprintln(os.Stderr, "tradeoff: -triage-budget requires -triage")
		os.Exit(2)
	case compiled != nil && compiled.Triage != nil:
		triagePolicy = compiled.Triage
	}
	if *shards > 1 {
		if *checkpoint == "" {
			fmt.Fprintln(os.Stderr, "tradeoff: -shards requires -checkpoint (each shard journals to <checkpoint>.shardI-of-N)")
			os.Exit(2)
		}
		if triagePolicy != nil {
			fmt.Fprintln(os.Stderr, "tradeoff: -shards does not compose with triage (the classifier trains on a global calibration split)")
			os.Exit(2)
		}
		if *load != "" {
			fmt.Fprintln(os.Stderr, "tradeoff: -shards is meaningless with -load")
			os.Exit(2)
		}
	} else if *shards < 0 || *shards == 1 {
		fmt.Fprintln(os.Stderr, "tradeoff: -shards must be 2 or more")
		os.Exit(2)
	} else if *shardWorker >= 0 {
		fmt.Fprintln(os.Stderr, "tradeoff: -shard-worker is internal and requires -shards")
		os.Exit(2)
	}
	if *shards > 1 && *shardWorker >= *shards {
		fmt.Fprintf(os.Stderr, "tradeoff: -shard-worker %d out of range for %d shards\n", *shardWorker, *shards)
		os.Exit(2)
	}
	if *traceCacheMax != 0 && *traceCache == "" {
		fmt.Fprintln(os.Stderr, "tradeoff: -trace-cache-max-bytes requires -trace-cache")
		os.Exit(2)
	}
	if err := startProfiles(*cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "tradeoff:", err)
		exit(1)
	}
	defer finishProfiles()

	if *shards > 1 && *shardWorker < 0 {
		// Sharded parent: fork the workers, wait, merge their journals
		// into -checkpoint, then fall through to the ordinary campaign
		// path with -resume — it loads every merged result (re-running
		// only traces a failed shard left behind) and renders as usual.
		if err := runShardParent(*shards, *checkpoint, *resume); err != nil {
			fmt.Fprintln(os.Stderr, "tradeoff:", err)
			exit(1)
		}
		*resume = true
	}

	// A shard worker journals to its private shard journal, not the
	// merged campaign checkpoint.
	ckptPath := *checkpoint
	if *shardWorker >= 0 {
		ckptPath = core.ShardJournalPath(*checkpoint, *shardWorker, *shards)
	}

	var rs []*core.TraceResult
	var err error
	if *load != "" {
		rs, err = core.LoadResultsFile(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tradeoff:", err)
			exit(1)
		}
	} else {
		var suite []workload.Params
		var specHash string
		if compiled != nil {
			suite = workload.Filter(compiled.Manifest, *stride, *maxRanks)
			specHash = compiled.Hash()
			label := compiled.Name
			if label == "" {
				label = *specPath
			}
			fmt.Printf("campaign spec %s: %d traces compiled (%s)\n", label, len(compiled.Manifest), specHash)
		} else {
			suite = workload.SuiteSmall(*stride, *maxRanks)
		}
		if *shardWorker >= 0 {
			lo, hi := core.ShardRange(len(suite), *shardWorker, *shards)
			suite = suite[lo:hi]
			fmt.Printf("running manifest range [%d,%d) (%d traces) with %d workers...\n", lo, hi, len(suite), *workers)
		} else {
			fmt.Printf("running %d traces with %d workers...\n", len(suite), *workers)
		}
		progress := func(done, total int, r *core.TraceResult) {
			if *quiet || r == nil {
				return
			}
			fmt.Printf("[%3d/%3d] %-36s measured=%-12v model=%v\n",
				done, total, r.ID, r.Measured, r.ModelWall().Round(time.Microsecond))
		}

		// A first SIGINT/SIGTERM cancels the campaign cleanly: workers
		// stop through the DES engines' Stop path, every completed trace
		// is already journaled, and the run ends with a resume hint. A
		// second signal kills the process immediately.
		cancel := make(chan struct{})
		sigs := make(chan os.Signal, 2)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		go func() {
			s := <-sigs
			fmt.Fprintf(os.Stderr, "\ntradeoff: %v: stopping workers and flushing the checkpoint (signal again to kill)\n", s)
			close(cancel)
			<-sigs
			fmt.Fprintln(os.Stderr, "tradeoff: killed")
			exit(1)
		}()

		// One cache directory serves every process of the campaign: shard
		// workers inherit -trace-cache through the forwarded command line
		// and publish disjoint manifest ranges into the same dir, so the
		// parent's post-merge resume pass and any later run hit warm.
		var cache *tracecache.Cache
		if *traceCache != "" {
			cache, err = tracecache.Open(*traceCache, tracecache.Options{
				MaxBytes: *traceCacheMax,
				Warnf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "tradeoff: "+format+"\n", args...)
				},
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "tradeoff:", err)
				exit(1)
			}
		}

		var rep *core.CampaignReport
		rs, rep, err = core.RunCampaign(suite, core.CampaignConfig{
			Workers:        *workers,
			Cache:          cache,
			Policy:         core.FailurePolicy{KeepGoing: *keepGoing, MaxRetries: *retries},
			Run:            core.RunOptions{Timeout: *timeout, MaxEvents: *maxEvents},
			Schemes:        scheme.ParseList(*schemes),
			CheckpointPath: ckptPath,
			Resume:         *resume,
			Progress:       progress,
			Cancel:         cancel,
			Triage:         triagePolicy,
			SpecHash:       specHash,
			Warnf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "tradeoff: "+format+"\n", args...)
			},
		})
		signal.Stop(sigs)
		if rep != nil {
			fmt.Printf("%s\n\n", rep.Summary())
			if rep.Triage != nil {
				fmt.Printf("%s\n\n", rep.Triage.Summary())
				if *save != "" {
					if err := core.SaveTriageReport(*save+".triage.json", rep.Triage); err != nil {
						fmt.Fprintln(os.Stderr, "tradeoff:", err)
					} else {
						fmt.Printf("triage report saved to %s\n\n", *save+".triage.json")
					}
				}
			}
			for _, te := range rep.Errors {
				fmt.Fprintf(os.Stderr, "tradeoff: failed: %v\n", te)
			}
		}
		select {
		case <-cancel:
			fmt.Fprintln(os.Stderr, "tradeoff: interrupted; completed traces are journaled")
			if *checkpoint != "" {
				fmt.Fprintf(os.Stderr, "tradeoff: resume with:\n  %s\n", resumeInvocation(*resume))
			} else {
				fmt.Fprintln(os.Stderr, "tradeoff: (no -checkpoint was set, so a rerun starts from scratch)")
			}
			exit(130)
		default:
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tradeoff:", err)
			exit(1)
		}
		if *shardWorker >= 0 {
			// A shard worker's job ends with its journal complete —
			// possibly with zero records when the manifest slice is
			// smaller than the shard count. Rendering (and the
			// no-survivor guard below) is the parent's business after
			// the merge.
			exit(0)
		}
		if rep.Succeeded+rep.Skipped == 0 {
			fmt.Fprintln(os.Stderr, "tradeoff: no trace survived; nothing to render")
			exit(1)
		}
	}

	if *save != "" {
		// Persist only completed traces; failed entries are nil.
		saved := make([]*core.TraceResult, 0, len(rs))
		for _, r := range rs {
			if r != nil {
				saved = append(saved, r)
			}
		}
		if err := core.SaveResultsFile(*save, saved); err != nil {
			fmt.Fprintln(os.Stderr, "tradeoff:", err)
			exit(1)
		}
		fmt.Printf("results saved to %s\n\n", *save)
	}

	fmt.Println(core.BuildTable1(rs).Render())
	fmt.Println()

	t2 := core.BuildTable2(rs, map[string]int{"CMC": 1024, "LULESH": 512, "MiniFE": 1152})
	if len(t2) > 0 {
		fmt.Println(core.RenderTable2(t2))
		fmt.Println()
	}

	fmt.Println(core.BuildFigure1(rs, *minWall).Render())
	fmt.Println()
	fmt.Println(core.BuildFigure2(rs).Render())

	nas := []string{"CG", "MG", "FT", "IS", "LU", "BT", "EP", "DT"}
	doe := []string{"BigFFT", "CrystalRouter", "AMG", "MiniFE", "LULESH", "CNS", "CMC", "Nekbone", "MultiGrid", "FillBoundary"}
	fmt.Println(core.RenderAppAccuracy("Figure 3: NAS benchmarks (packet-flow vs MFACT, and vs measured)", core.BuildAppAccuracy(rs, nas)))
	fmt.Println()
	fmt.Println(core.RenderAppAccuracy("Figure 4: DOE applications (packet-flow vs MFACT, and vs measured)", core.BuildAppAccuracy(rs, doe)))

	// When the results sweep the platform-noise axis (a spec-driven
	// variability campaign), render the study table; a single baseline
	// cell means no noise points and nothing to report.
	if cells := core.BuildVariability(rs); len(cells) > 1 || (len(cells) == 1 && cells[0].Axis != "baseline") {
		fmt.Println()
		fmt.Println(core.RenderVariability(cells))
	}

	if *figDir != "" {
		paths, err := core.WriteFigures(*figDir, rs, *minWall)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tradeoff:", err)
			exit(1)
		}
		fmt.Printf("\nwrote %d SVG figures to %s\n", len(paths), *figDir)
	}
}
