package main

import (
	"flag"
	"slices"
	"strings"
	"testing"
)

// TestShardFlagTablesExhaustive pins every defined flag to exactly one
// of the two shard tables. Adding a flag without deciding whether a
// shard worker inherits it fails here — the failure mode this guards
// against is a new manifest-shaping flag (like -spec) that the parent
// honors but the workers silently ignore, which would make the shards
// run a different campaign than the parent merges.
func TestShardFlagTablesExhaustive(t *testing.T) {
	inTable := map[string]string{}
	for _, n := range shardForward {
		if flag.Lookup(n) == nil {
			t.Errorf("shardForward lists -%s, which is not a defined flag", n)
		}
		inTable[n] = "shardForward"
	}
	for _, n := range shardLocal {
		if flag.Lookup(n) == nil {
			t.Errorf("shardLocal lists -%s, which is not a defined flag", n)
		}
		if prev, dup := inTable[n]; dup {
			t.Errorf("-%s appears in both %s and shardLocal", n, prev)
		}
		inTable[n] = "shardLocal"
	}
	flag.VisitAll(func(f *flag.Flag) {
		// The test binary registers its own -test.* flags on the same
		// flag set; they are not tradeoff's to categorize.
		if strings.HasPrefix(f.Name, "test.") {
			return
		}
		if inTable[f.Name] == "" {
			t.Errorf("flag -%s is in neither shardForward nor shardLocal; decide whether shard workers inherit it", f.Name)
		}
	})
}

// TestShardWorkerArgsForwarding drives the arg builder the parent
// re-exec uses: explicitly-set forwarded flags (notably -spec) appear
// with their values, unset flags stay off the worker command line, and
// local flags never leak.
func TestShardWorkerArgsForwarding(t *testing.T) {
	for name, val := range map[string]string{
		"spec":       "specs/paper-235.yaml",
		"checkpoint": "run.jsonl",
		"shards":     "3",
		"schemes":    "mfact,packet",
		"minwall":    "1s", // local: must not be forwarded
	} {
		if err := flag.Set(name, val); err != nil {
			t.Fatalf("setting -%s: %v", name, err)
		}
	}
	args := shardWorkerArgs(2)

	for _, want := range []string{
		"-spec=specs/paper-235.yaml",
		"-checkpoint=run.jsonl",
		"-shards=3",
		"-schemes=mfact,packet",
		"-shard-worker=2",
	} {
		if !slices.Contains(args, want) {
			t.Errorf("worker args missing %q: %v", want, args)
		}
	}
	for _, arg := range args {
		if strings.HasPrefix(arg, "-minwall") {
			t.Errorf("local flag leaked to the worker: %v", args)
		}
		if strings.HasPrefix(arg, "-stride") {
			t.Errorf("unset flag forwarded: %v", args)
		}
	}
	if args[len(args)-1] != "-shard-worker=2" {
		t.Errorf("worker marker must come last (it must win any earlier value): %v", args)
	}
}
