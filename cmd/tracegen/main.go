// Command tracegen generates the study's synthetic DUMPI-like traces
// (program structure plus ground-truth "measured" timestamps) and
// writes them to disk in the binary trace format.
//
// Usage:
//
//	tracegen -out traces/ [-stride N] [-maxranks N] [-app NAME -class C -ranks N -machine M]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hpctradeoff/internal/trace"
	"hpctradeoff/internal/workload"
)

func main() {
	out := flag.String("out", "traces", "output directory")
	stride := flag.Int("stride", 1, "keep every Nth manifest entry")
	maxRanks := flag.Int("maxranks", 0, "skip traces larger than this (0 = no cap)")
	app := flag.String("app", "", "generate a single trace for this app instead of the manifest")
	specPath := flag.String("spec", "", "generate from a custom JSON workload spec instead of the manifest")
	class := flag.String("class", "B", "problem class for -app")
	ranks := flag.Int("ranks", 64, "rank count for -app")
	mach := flag.String("machine", "edison", "machine for -app")
	seed := flag.Int64("seed", 1, "seed for -app")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		spec, err := workload.ReadSpec(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		p := workload.Params{Class: *class, Ranks: *ranks, Machine: *mach, Seed: *seed}
		tr, err := workload.MaterializeSpec(spec, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		writeTrace(*out, tr, 1, 1)
		return
	}

	var suite []workload.Params
	if *app != "" {
		suite = []workload.Params{{App: *app, Class: *class, Ranks: *ranks, Machine: *mach, Seed: *seed}}
	} else {
		suite = workload.SuiteSmall(*stride, *maxRanks)
	}
	for i, p := range suite {
		tr, err := workload.Materialize(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		writeTrace(*out, tr, i+1, len(suite))
	}
}

func writeTrace(dir string, tr *trace.Trace, i, total int) {
	path := filepath.Join(dir, tr.Meta.ID()+".htrc")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := trace.Write(f, tr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("[%3d/%3d] %-32s ranks=%-5d events=%-8d measured=%v comm=%.0f%%\n",
		i, total, tr.Meta.ID(), tr.Meta.NumRanks, tr.NumEvents(),
		tr.MeasuredTotal(), 100*tr.CommFraction())
}
