// Command bench runs the repository's fixed performance scenarios —
// the DES event core, the three network models, the CMB-parallel
// packet network, and full trace replays — and writes a JSON snapshot
// (BENCH_<date>.json) so performance regressions become visible
// PR-to-PR. Every scenario reports per-event costs (ns/event,
// allocs/event) because the paper's cost model is "events executed":
// the event loop is the hottest path of the whole study.
//
// Usage:
//
//	bench [-out FILE] [-baseline FILE] [-short]
//
// -out "" prints the snapshot to stdout only. -baseline loads an
// earlier snapshot and prints per-scenario deltas (and embeds the
// baseline entries in the new snapshot for provenance). -short runs
// reduced workloads for CI gates.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"hpctradeoff/internal/core"
	"hpctradeoff/internal/des"
	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/mpisim"
	"hpctradeoff/internal/simnet"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/spec"
	"hpctradeoff/internal/trace"
	"hpctradeoff/internal/tracecache"
	"hpctradeoff/internal/triage"
	"hpctradeoff/internal/workload"
)

// Entry is one scenario's measured costs.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// EventsPerOp is the number of DES events one op executes; it is
	// deterministic for every scenario, which is what makes the
	// per-event normalization below meaningful across engine rewrites.
	EventsPerOp    float64 `json:"events_per_op"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	// PeakHeapBytes is a sampled peak-residency estimate (max HeapInuse
	// observed while the scenario ran); only the campaign scenarios
	// report it, because residency — not throughput — is what the
	// Source-native pipeline buys over materializing each trace.
	PeakHeapBytes float64 `json:"peak_heap_bytes,omitempty"`
	// CacheHits/CacheMisses are the trace-cache counters of one op;
	// only the cache scenarios report them. They are the snapshot's
	// evidence that the warm scenarios really served from the cache
	// (misses 0) and the cold ones really paid materialization.
	CacheHits   float64 `json:"cache_hits,omitempty"`
	CacheMisses float64 `json:"cache_misses,omitempty"`
}

// Snapshot is the on-disk benchmark record.
type Snapshot struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is the scheduler's actual parallelism at run time —
	// num_cpu alone misreads snapshots taken under GOMAXPROCS caps
	// (containers, taskset) as same-machine comparisons.
	GoMaxProcs int `json:"go_max_procs"`
	// Shards records the campaign shard count the snapshot was taken
	// under (1 = unsharded), so numbers from a sharded environment are
	// never compared against single-process ones unknowingly.
	Shards       int     `json:"shards"`
	Short        bool    `json:"short,omitempty"`
	Entries      []Entry `json:"entries"`
	BaselineFile string  `json:"baseline_file,omitempty"`
	// Baseline embeds the compared-against entries so the committed
	// snapshot is self-contained evidence of the delta.
	Baseline []Entry `json:"baseline,omitempty"`
}

// scenario is one named benchmark: body runs the workload once and
// returns the number of DES events it executed.
type scenario struct {
	name string
	body func(short bool) uint64
}

func scenarios() []scenario {
	return []scenario{
		{"des/chain", benchChain},
		{"des/fanout", benchFanout},
		{"des/phold-lps4", benchPHOLD},
		{"simnet/packet-small", mkTraffic(simnet.Packet, 512, 1<<10)},
		{"simnet/packet-large", mkTraffic(simnet.Packet, 64, 1<<20)},
		{"simnet/packetflow-large", mkTraffic(simnet.PacketFlow, 64, 1<<20)},
		{"simnet/flow-small", mkTraffic(simnet.Flow, 512, 1<<10)},
		{"simnet/parallel-packet-lps4", benchParallelPacket},
		{"mpisim/replay-packet", mkReplay(simnet.Packet)},
		{"mpisim/replay-packetflow", mkReplay(simnet.PacketFlow)},
		{"trace/replay-cursor", benchReplayCursor},
		{"trace/codec-roundtrip", benchCodecRoundtrip},
		{"trace/codec-roundtrip-v1", benchCodecRoundtripV1},
		{"trace/codec-decode-v2", benchCodecDecodeV2},
		{"trace/codec-open-v3", benchCodecOpenV3},
		{"trace/materialize-full", benchMaterializeFull},
		{"trace/materialize-vs-stream", benchStream},
		{"campaign/materialized", benchCampaignMaterialized},
		{"campaign/source-native", benchCampaignSource},
		{"tracecache/acquire-cold", benchAcquireCold},
		{"tracecache/acquire-warm", benchAcquireWarm},
		{"campaign/cold-cache", benchCampaignColdCache},
		{"campaign/warm-cache", benchCampaignWarmCache},
		{"campaign/triage-two-pass", benchCampaignTriageTwoPass},
	}
}

// benchChain drives a self-perpetuating event chain: the pure
// schedule-dispatch cost of the sequential engine with a near-empty
// queue.
func benchChain(short bool) uint64 {
	k := 200_000
	if short {
		k = 20_000
	}
	var e des.Engine
	n := 0
	var step func()
	step = func() {
		n++
		if n < k {
			e.After(simtime.Nanosecond, step)
		}
	}
	e.After(0, step)
	e.Run()
	return e.Steps()
}

// benchFanout preloads a wide queue (many resident events) and drains
// it: the heap's sift costs under depth.
func benchFanout(short bool) uint64 {
	k := 200_000
	if short {
		k = 20_000
	}
	var e des.Engine
	f := func() {}
	r := uint64(1)
	for i := 0; i < k; i++ {
		r = r*6364136223846793005 + 1442695040888963407 // deterministic LCG
		e.At(simtime.Time(r%100_000), f)
	}
	e.Run()
	return e.Steps()
}

// pholdActor bounces a hop counter between peers — the classic PDES
// stress pattern for the CMB engine.
type pholdActor struct {
	id    int
	peers []des.ActorID
	la    simtime.Time
}

func (a *pholdActor) Handle(_ simtime.Time, msg any, s des.Scheduler) {
	hops := msg.(int)
	if hops <= 0 {
		return
	}
	s.Schedule(a.peers[(a.id+1)%len(a.peers)], a.la, hops-1)
}

func benchPHOLD(short bool) uint64 {
	hops := 2000
	if short {
		hops = 200
	}
	la := simtime.Microsecond
	p, err := des.NewParallel(4, la)
	if err != nil {
		panic(err)
	}
	const actors = 16
	as := make([]*pholdActor, actors)
	ids := make([]des.ActorID, actors)
	for i := range as {
		as[i] = &pholdActor{id: i, la: la}
		ids[i] = p.AddActor(as[i], i%4)
	}
	for _, a := range as {
		a.peers = ids
	}
	for i := 0; i < actors; i++ {
		p.ScheduleInitial(ids[i], 0, hops)
	}
	p.Run()
	return p.Steps()
}

// mkTraffic returns a scenario body running a fixed permutation
// traffic pattern through one sequential network model.
func mkTraffic(m simnet.Model, msgs int, bytes int64) func(bool) uint64 {
	return func(short bool) uint64 {
		if short {
			msgs = max(msgs/4, 8)
		}
		mach, err := machine.Edison(96, 24)
		if err != nil {
			panic(err)
		}
		var eng des.Engine
		net, err := simnet.New(m, &eng, mach, simnet.Config{})
		if err != nil {
			panic(err)
		}
		delivered := 0
		for k := 0; k < msgs; k++ {
			src := int32(k % 96)
			dst := int32((k*37 + 11) % 96)
			if src == dst {
				dst = (dst + 1) % 96
			}
			net.Send(src, dst, bytes, func() { delivered++ })
		}
		eng.Run()
		if delivered != msgs {
			panic(fmt.Sprintf("%s delivered %d of %d", m, delivered, msgs))
		}
		return eng.Steps()
	}
}

func benchParallelPacket(short bool) uint64 {
	bytes := int64(256 << 10)
	if short {
		bytes = 32 << 10
	}
	mach, err := machine.Hopper(96, 8)
	if err != nil {
		panic(err)
	}
	pp, err := simnet.NewParallelPacket(mach, simnet.Config{}, 4)
	if err != nil {
		panic(err)
	}
	for r := 0; r < 96; r++ {
		d := (r*11 + 5) % 96
		if d != r {
			pp.Inject(0, int32(r), int32(d), bytes)
		}
	}
	pp.Run()
	return pp.Steps()
}

// replayTrace caches the materialized trace shared by the replay
// scenarios (materialization itself is benchmarked elsewhere), plus
// its columnar twin and encoded forms for the trace/* scenarios.
var (
	replayTr   *trace.Trace
	replayCols *trace.Columns
	replayMach *machine.Config
	replayEnc  struct{ v1, v2 []byte }
	// replayV3Path is the replay trace written in the zero-copy v3
	// format to a temp file, the input for trace/codec-open-v3.
	replayV3Path string
)

// replayParams is the shared replay workload.
func replayParams(short bool) workload.Params {
	class := "A"
	if short {
		class = "S"
	}
	return workload.Params{App: "MiniFE", Class: class, Ranks: 64, Machine: "hopper", Seed: 7}
}

func ensureReplay(short bool) {
	if replayTr != nil {
		return
	}
	p := replayParams(short)
	tr, err := workload.Materialize(p)
	if err != nil {
		panic(err)
	}
	mach, err := machine.New(p.Machine, p.Ranks, 0)
	if err != nil {
		panic(err)
	}
	replayTr, replayMach = tr, mach
	replayCols = trace.FromTrace(tr)
	var v1, v2 bytes.Buffer
	if err := trace.Write(&v1, tr); err != nil {
		panic(err)
	}
	if err := trace.WriteColumns(&v2, replayCols); err != nil {
		panic(err)
	}
	replayEnc.v1, replayEnc.v2 = v1.Bytes(), v2.Bytes()

	f, err := os.CreateTemp("", "bench-*.htrc3")
	if err != nil {
		panic(err)
	}
	if err := trace.WriteColumnsV3(f, replayCols); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	replayV3Path = f.Name()
}

func mkReplay(m simnet.Model) func(bool) uint64 {
	return func(short bool) uint64 {
		ensureReplay(short)
		res, err := mpisim.Replay(replayTr, m, replayMach, simnet.Config{}, mpisim.Options{})
		if err != nil {
			panic(err)
		}
		return res.Events
	}
}

// benchReplayCursor is mpisim/replay-packet over the columnar
// representation: the same trace replayed through the zero-copy
// Source/cursor path, so its per-event deltas against replay-packet
// isolate the cost of the access path itself.
func benchReplayCursor(short bool) uint64 {
	ensureReplay(short)
	res, err := mpisim.ReplaySource(replayCols, simnet.Packet, replayMach, simnet.Config{}, mpisim.Options{})
	if err != nil {
		panic(err)
	}
	return res.Events
}

// benchCodecRoundtrip encodes and decodes the columnar binary format
// (version 2); the v1 comparator below does the same through the
// array-of-structs format. "Events" is trace events moved per op.
func benchCodecRoundtrip(short bool) uint64 {
	ensureReplay(short)
	var buf bytes.Buffer
	buf.Grow(len(replayEnc.v2))
	if err := trace.WriteColumns(&buf, replayCols); err != nil {
		panic(err)
	}
	c, err := trace.ReadColumns(&buf)
	if err != nil {
		panic(err)
	}
	return uint64(c.NumEvents())
}

// benchCodecDecodeV2 is the decode half alone — the cost a campaign
// pays to open a stored v2 trace. Its v3 counterpart below opens the
// same trace through the zero-copy mmap path; the pair is the headline
// comparison for the v3 format (open cost per event ≈ 0).
func benchCodecDecodeV2(short bool) uint64 {
	ensureReplay(short)
	c, err := trace.ReadColumns(bytes.NewReader(replayEnc.v2))
	if err != nil {
		panic(err)
	}
	return uint64(c.NumEvents())
}

// benchCodecOpenV3 opens the replay trace from a version-3 file via
// OpenMapped: mmap, header/extent validation, and the per-event
// semantic scan — but no decode and no per-column allocation.
func benchCodecOpenV3(short bool) uint64 {
	ensureReplay(short)
	m, err := trace.OpenMapped(replayV3Path)
	if err != nil {
		panic(err)
	}
	n := uint64(m.NumEvents())
	if err := m.Close(); err != nil {
		panic(err)
	}
	return n
}

func benchCodecRoundtripV1(short bool) uint64 {
	ensureReplay(short)
	var buf bytes.Buffer
	buf.Grow(len(replayEnc.v1))
	if err := trace.Write(&buf, replayTr); err != nil {
		panic(err)
	}
	t, err := trace.Read(&buf)
	if err != nil {
		panic(err)
	}
	return uint64(t.NumEvents())
}

// benchMaterializeFull generates the replay workload's full trace in
// one resident build; benchStream regenerates it in 8-rank windows via
// the streaming path. Streaming allocates MORE total bytes per event
// delivered (the generator reruns once per window) — what it buys is
// peak residency bounded by one window instead of the whole trace.
// The pair pins that regeneration overhead so it stays deliberate.
func benchMaterializeFull(short bool) uint64 {
	p := replayParams(short)
	tr, err := workload.Generate(p)
	if err != nil {
		panic(err)
	}
	return uint64(tr.NumEvents())
}

func benchStream(short bool) uint64 {
	p := replayParams(short)
	var events uint64
	err := p.Stream(8, func(rank int, cur trace.Cursor) error {
		var e trace.Event
		for cur.Next(&e) {
			events++
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	return events
}

// specManifest, when non-nil (-spec), replaces the built-in campaign
// slice so the campaign scenarios benchmark a spec-compiled manifest.
var specManifest []workload.Params

// campaignSuite is the reduced campaign slice both campaign scenarios
// run: every scheme on a handful of class-S traces, exactly as one
// RunCampaign worker would.
func campaignSuite(short bool) []workload.Params {
	if specManifest != nil {
		if short && len(specManifest) > 2 {
			return specManifest[:2]
		}
		return specManifest
	}
	ps := []workload.Params{
		{App: "CG", Class: "S", Ranks: 16, Machine: "cielito", RanksPerNode: 4, Seed: 11},
		{App: "FT", Class: "S", Ranks: 16, Machine: "hopper", RanksPerNode: 4, Seed: 22},
		{App: "LULESH", Class: "S", Ranks: 16, Machine: "edison", RanksPerNode: 4, Seed: 33},
		{App: "IS", Class: "S", Ranks: 16, Machine: "cielito", RanksPerNode: 4, Seed: 44},
	}
	if short {
		return ps[:2]
	}
	return ps
}

// peakHeap is set by the campaign scenarios (sampled max HeapInuse
// during the run) and collected by measure() into the Entry.
var peakHeap uint64

// samplePeakHeap polls HeapInuse until stop is closed and records the
// maximum into peakHeap (keeping the largest across b.N iterations).
func samplePeakHeap(stop chan struct{}, done chan struct{}) {
	defer close(done)
	var m runtime.MemStats
	for {
		runtime.ReadMemStats(&m)
		if m.HeapInuse > peakHeap {
			peakHeap = m.HeapInuse
		}
		select {
		case <-stop:
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// benchCampaignMaterialized is the pre-registry campaign pipeline: each
// trace is materialized as an array-of-structs trace, then every scheme
// replays it (via the deprecated RunOnTrace path).
func benchCampaignMaterialized(short bool) uint64 {
	stop, done := make(chan struct{}), make(chan struct{})
	go samplePeakHeap(stop, done)
	defer func() { close(stop); <-done }()
	var events uint64
	for _, p := range campaignSuite(short) {
		tr, err := workload.Materialize(p)
		if err != nil {
			panic(err)
		}
		mach, err := machine.New(p.Machine, p.Ranks, p.RanksPerNode)
		if err != nil {
			panic(err)
		}
		r, err := core.RunOnTrace(tr, mach, p)
		if err != nil {
			panic(err)
		}
		events += uint64(r.Events)
	}
	return events
}

// benchCampaignSource is the Source-native pipeline: one Runner with
// per-scheme sessions, columnar materialization, no array-of-structs
// trace anywhere on the replay path.
func benchCampaignSource(short bool) uint64 {
	stop, done := make(chan struct{}), make(chan struct{})
	go samplePeakHeap(stop, done)
	defer func() { close(stop); <-done }()
	rn, err := core.NewRunner(nil)
	if err != nil {
		panic(err)
	}
	var events uint64
	for _, p := range campaignSuite(short) {
		r, err := rn.RunOne(p, core.RunOptions{})
		if err != nil {
			panic(err)
		}
		events += uint64(r.Events)
	}
	return events
}

// benchCacheStats is the cache scenarios' side-channel (the peakHeap
// pattern): each body stores its cache's counters here and measure()
// copies the final op's hits/misses into the Entry.
var benchCacheStats tracecache.Stats

// warmCacheDir is the pre-populated trace-cache directory shared by
// the warm scenarios, filled once by ensureWarmCache so the warm
// bodies never pay materialization.
var warmCacheDir string

func ensureWarmCache(short bool) {
	if warmCacheDir != "" {
		return
	}
	dir, err := os.MkdirTemp("", "bench-tracecache-*")
	if err != nil {
		panic(err)
	}
	c, err := tracecache.Open(dir, tracecache.Options{})
	if err != nil {
		panic(err)
	}
	for _, p := range campaignSuite(short) {
		p := p
		_, release, _, err := c.Acquire(p, func() (*trace.Columns, error) {
			return workload.MaterializeColumns(p)
		})
		if err != nil {
			panic(err)
		}
		release()
	}
	warmCacheDir = dir
}

// benchAcquireCold pays the full miss path for every suite trace:
// materialize, ground-truth stamp, v3 encode, atomic publish. Its warm
// twin below reacquires the same entries as verified mmap hits; the
// ns/op ratio of the pair is the committed evidence for the per-trace
// acquisition cost the cache removes from a warm campaign.
func benchAcquireCold(short bool) uint64 {
	dir, err := os.MkdirTemp("", "bench-tracecache-cold-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	c, err := tracecache.Open(dir, tracecache.Options{})
	if err != nil {
		panic(err)
	}
	var events uint64
	for _, p := range campaignSuite(short) {
		p := p
		cols, release, hit, err := c.Acquire(p, func() (*trace.Columns, error) {
			return workload.MaterializeColumns(p)
		})
		if err != nil {
			panic(err)
		}
		if hit {
			panic("cold acquire hit the cache")
		}
		events += uint64(cols.NumEvents())
		release()
	}
	benchCacheStats = c.Stats()
	return events
}

// benchAcquireWarm reacquires the pre-populated suite entries: sidecar
// verification, mmap, and a checksum pass — no generation, no
// stamping, no decode. The panicking materialize callback turns any
// silent miss into a loud failure.
func benchAcquireWarm(short bool) uint64 {
	ensureWarmCache(short)
	c, err := tracecache.Open(warmCacheDir, tracecache.Options{})
	if err != nil {
		panic(err)
	}
	var events uint64
	for _, p := range campaignSuite(short) {
		cols, release, hit, err := c.Acquire(p, func() (*trace.Columns, error) {
			panic("warm acquire missed the cache")
		})
		if err != nil {
			panic(err)
		}
		if !hit {
			panic("warm acquire did not hit")
		}
		events += uint64(cols.NumEvents())
		release()
	}
	benchCacheStats = c.Stats()
	return events
}

// benchCampaignColdCache is the Source-native campaign run through an
// empty trace cache: every acquisition materializes and publishes, so
// ns/op = campaign/warm-cache cost plus one-time cache population.
func benchCampaignColdCache(short bool) uint64 {
	stop, done := make(chan struct{}), make(chan struct{})
	go samplePeakHeap(stop, done)
	defer func() { close(stop); <-done }()
	dir, err := os.MkdirTemp("", "bench-campaign-cold-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	c, err := tracecache.Open(dir, tracecache.Options{})
	if err != nil {
		panic(err)
	}
	rs, _, err := core.RunCampaign(campaignSuite(short), core.CampaignConfig{Workers: 2, Cache: c})
	if err != nil {
		panic(err)
	}
	var events uint64
	for _, r := range rs {
		events += uint64(r.Events)
	}
	benchCacheStats = c.Stats()
	return events
}

// benchCampaignWarmCache replays the same campaign against the
// pre-populated cache: generation and stamping drop out entirely and
// the run is replay-bound. The gap to campaign/source-native is the
// wall-time the cache saves per repeated campaign.
func benchCampaignWarmCache(short bool) uint64 {
	stop, done := make(chan struct{}), make(chan struct{})
	go samplePeakHeap(stop, done)
	defer func() { close(stop); <-done }()
	ensureWarmCache(short)
	c, err := tracecache.Open(warmCacheDir, tracecache.Options{})
	if err != nil {
		panic(err)
	}
	rs, _, err := core.RunCampaign(campaignSuite(short), core.CampaignConfig{Workers: 2, Cache: c})
	if err != nil {
		panic(err)
	}
	if st := c.Stats(); st.Misses != 0 {
		panic(fmt.Sprintf("warm campaign missed the cache %d times", st.Misses))
	}
	var events uint64
	for _, r := range rs {
		events += uint64(r.Events)
	}
	benchCacheStats = c.Stats()
	return events
}

// benchCampaignTriageTwoPass is the two-pass schedule the cache was
// built for: the provisional model pass acquires (and publishes) every
// trace, then the escalation pass reacquires the escalated ones — warm
// hits against the entries the first pass just created, instead of a
// second materialization per escalated trace.
func benchCampaignTriageTwoPass(short bool) uint64 {
	stop, done := make(chan struct{}), make(chan struct{})
	go samplePeakHeap(stop, done)
	defer func() { close(stop); <-done }()
	dir, err := os.MkdirTemp("", "bench-campaign-triage-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	c, err := tracecache.Open(dir, tracecache.Options{})
	if err != nil {
		panic(err)
	}
	rs, rep, err := core.RunCampaign(campaignSuite(short), core.CampaignConfig{
		Workers: 2,
		Cache:   c,
		Triage:  &triage.Policy{Threshold: 0.5, Calibration: 1, Seed: 7},
	})
	if err != nil {
		panic(err)
	}
	if rep.Triage == nil || rep.Triage.Escalated == 0 {
		panic("triage scenario escalated nothing — the two-pass shape is gone")
	}
	var events uint64
	for _, r := range rs {
		events += uint64(r.Events)
	}
	benchCacheStats = c.Stats()
	return events
}

// startProfiles turns on the requested pprof outputs and returns the
// function that finalizes them (stops the CPU profile, snapshots the
// heap after a final GC).
func startProfiles(cpu, mem string) (func(), error) {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
	}
	return func() {
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}

func measure(sc scenario, short bool) Entry {
	var events uint64
	peakHeap = 0
	benchCacheStats = tracecache.Stats{}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			events = sc.body(short)
		}
	})
	e := Entry{
		Name:          sc.name,
		NsPerOp:       float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp:   float64(r.MemAllocs) / float64(r.N),
		BytesPerOp:    float64(r.MemBytes) / float64(r.N),
		EventsPerOp:   float64(events),
		PeakHeapBytes: float64(peakHeap),
		CacheHits:     float64(benchCacheStats.Hits),
		CacheMisses:   float64(benchCacheStats.Misses),
	}
	if events > 0 {
		e.NsPerEvent = e.NsPerOp / float64(events)
		e.AllocsPerEvent = e.AllocsPerOp / float64(events)
		e.BytesPerEvent = e.BytesPerOp / float64(events)
	}
	return e
}

func main() {
	out := flag.String("out", fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02")),
		"snapshot output path (empty = stdout only)")
	baselinePath := flag.String("baseline", "", "earlier snapshot to compare against and embed")
	short := flag.Bool("short", false, "reduced workloads (CI gate mode)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	shards := flag.Int("shards", 1, "campaign shard count this environment runs under (recorded in the snapshot; 1 = unsharded)")
	cmbOut := flag.String("cmb-scaling", "", "run the CMB scaling study (events/sec vs LP count, lookahead sensitivity, null-message overhead) and write it to this file instead of the scenario snapshot")
	specPath := flag.String("spec", "", "benchmark the campaign scenarios over this YAML/JSON campaign spec's manifest instead of the built-in slice")
	flag.Parse()

	if *specPath != "" {
		s, err := spec.Load(*specPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		c, err := spec.Compile(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		specManifest = c.Manifest
		fmt.Printf("bench: campaign scenarios use %d traces from %s (%s)\n", len(specManifest), *specPath, c.Hash())
	}

	if *cmbOut != "" {
		if err := runCMBScaling(*cmbOut, *short); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	defer stopProfiles()

	var baseline *Snapshot
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: reading baseline: %v\n", err)
			os.Exit(1)
		}
		baseline = &Snapshot{}
		if err := json.Unmarshal(data, baseline); err != nil {
			fmt.Fprintf(os.Stderr, "bench: parsing baseline: %v\n", err)
			os.Exit(1)
		}
	}
	base := map[string]Entry{}
	if baseline != nil {
		for _, e := range baseline.Entries {
			base[e.Name] = e
		}
	}

	snap := Snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Shards:     *shards,
		Short:      *short,
	}
	fmt.Printf("%-28s %14s %14s %14s\n", "scenario", "ns/event", "allocs/event", "B/event")
	for _, sc := range scenarios() {
		e := measure(sc, *short)
		snap.Entries = append(snap.Entries, e)
		line := fmt.Sprintf("%-28s %14.1f %14.4f %14.1f", e.Name, e.NsPerEvent, e.AllocsPerEvent, e.BytesPerEvent)
		if b, ok := base[e.Name]; ok && b.AllocsPerEvent > 0 {
			line += fmt.Sprintf("   allocs %+.1f%%, ns %+.1f%% vs baseline",
				100*(e.AllocsPerEvent/b.AllocsPerEvent-1), 100*(e.NsPerEvent/b.NsPerEvent-1))
		}
		fmt.Println(line)
	}
	if baseline != nil {
		snap.BaselineFile = *baselinePath
		snap.Baseline = baseline.Entries
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
