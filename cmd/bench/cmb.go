package main

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"hpctradeoff/internal/des"
	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simnet"
	"hpctradeoff/internal/simtime"
)

// The CMB scaling study characterizes the conservative parallel engine
// the way the paper characterizes its simulators — by cost per event —
// along the three axes that dominate a Chandy–Misra–Bryant deployment:
//
//   - LP count: more partitions mean more goroutines competing for
//     cores and, crucially, more null traffic (every guarantee is
//     broadcast to all peers, so null volume grows ~quadratically with
//     LPs at fixed blocking rate);
//   - lookahead: the protocol's fuel. Shrinking it forces LPs to block
//     and re-broadcast more often for the same event count;
//   - null-message overhead: nulls per real event, the fraction of the
//     engine's work that is pure synchronization.
//
// Event and null counts are deterministic (the engine's tie-break is
// seeded by sender sequence, not arrival timing); wall-clock columns
// are environment-dependent and recorded with the host's GOMAXPROCS so
// a single-core container's numbers are read as overhead curves, not
// speedup curves.

// cmbPoint is one run's measurements.
type cmbPoint struct {
	lps       int
	lookahead simtime.Time
	events    uint64
	nulls     uint64
	wall      time.Duration
	// minSteps/maxSteps bound the per-LP event counts — the partition
	// balance (1.0 = perfectly balanced).
	minSteps, maxSteps uint64
}

func (p cmbPoint) nullsPerEvent() float64 {
	if p.events == 0 {
		return 0
	}
	return float64(p.nulls) / float64(p.events)
}

func (p cmbPoint) eventsPerSec() float64 {
	if p.wall <= 0 {
		return 0
	}
	return float64(p.events) / p.wall.Seconds()
}

func (p cmbPoint) balance() float64 {
	if p.maxSteps == 0 {
		return 1
	}
	return float64(p.minSteps) / float64(p.maxSteps)
}

// runPHOLDPoint runs the PHOLD ring (the classic PDES stress pattern:
// every event schedules exactly one successor on the next actor) with
// the given partitioning and returns its measurements. The workload is
// fixed — only the partitioning and lookahead vary — so the event
// count is identical on every row and the deltas isolate protocol
// cost.
func runPHOLDPoint(lps, actors, hops, chains int, hopDelay, la simtime.Time) (cmbPoint, error) {
	p, err := des.NewParallel(lps, la)
	if err != nil {
		return cmbPoint{}, err
	}
	as := make([]*pholdActor, actors)
	ids := make([]des.ActorID, actors)
	for i := range as {
		as[i] = &pholdActor{id: i, la: hopDelay}
		ids[i] = p.AddActor(as[i], i%lps)
	}
	for _, a := range as {
		a.peers = ids
	}
	for i := 0; i < chains; i++ {
		p.ScheduleInitial(ids[i%actors], simtime.Time(i), hops)
	}
	start := time.Now()
	p.Run()
	pt := cmbPoint{
		lps:       lps,
		lookahead: la,
		events:    p.Steps(),
		nulls:     p.NullMessages(),
		wall:      time.Since(start),
	}
	for i, s := range p.PerLP() {
		if i == 0 || s.Steps < pt.minSteps {
			pt.minSteps = s.Steps
		}
		if s.Steps > pt.maxSteps {
			pt.maxSteps = s.Steps
		}
	}
	return pt, nil
}

// runPacketPoint runs the 96-rank permutation traffic pattern through
// the CMB-parallel packet network partitioned over lps LPs.
func runPacketPoint(lps int, bytes int64) (cmbPoint, error) {
	mach, err := machine.Hopper(96, 8)
	if err != nil {
		return cmbPoint{}, err
	}
	pp, err := simnet.NewParallelPacket(mach, simnet.Config{}, lps)
	if err != nil {
		return cmbPoint{}, err
	}
	for r := 0; r < 96; r++ {
		d := (r*11 + 5) % 96
		if d != r {
			pp.Inject(0, int32(r), int32(d), bytes)
		}
	}
	start := time.Now()
	pp.Run()
	pt := cmbPoint{
		lps:    lps,
		events: pp.Steps(),
		nulls:  pp.NullMessages(),
		wall:   time.Since(start),
	}
	for i, s := range pp.PerLP() {
		if i == 0 || s.Steps < pt.minSteps {
			pt.minSteps = s.Steps
		}
		if s.Steps > pt.maxSteps {
			pt.maxSteps = s.Steps
		}
	}
	return pt, nil
}

// runCMBScaling runs the full study and writes the report to path.
func runCMBScaling(path string, short bool) error {
	hops, chains := 20_000, 8
	packetBytes := int64(256 << 10)
	if short {
		hops, chains = 2_000, 4
		packetBytes = 32 << 10
	}
	const actors = 64
	baseLA := simtime.Microsecond

	var b strings.Builder
	fmt.Fprintf(&b, "CMB scaling study (%s, go %s, num_cpu=%d, GOMAXPROCS=%d)\n",
		time.Now().Format("2006-01-02"), runtime.Version(), runtime.NumCPU(), runtime.GOMAXPROCS(0))
	fmt.Fprintf(&b, "Event and null counts are deterministic; wall-clock columns depend on the host.\n")
	fmt.Fprintf(&b, "On a single-core host the LP sweep measures synchronization OVERHEAD, not speedup.\n\n")

	fmt.Fprintf(&b, "=== events/sec vs LP count (PHOLD: %d actors, %d chains x %d hops, lookahead %v) ===\n",
		actors, chains, hops, baseLA)
	fmt.Fprintf(&b, "%4s %12s %12s %12s %12s %14s %9s\n",
		"LPs", "events", "nulls", "nulls/event", "wall", "events/sec", "balance")
	for _, lps := range []int{1, 2, 4, 8, 16} {
		pt, err := runPHOLDPoint(lps, actors, hops, chains, baseLA, baseLA)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "%4d %12d %12d %12.3f %12v %14.0f %9.3f\n",
			pt.lps, pt.events, pt.nulls, pt.nullsPerEvent(), pt.wall.Round(time.Microsecond), pt.eventsPerSec(), pt.balance())
	}

	fmt.Fprintf(&b, "\n=== lookahead sensitivity (PHOLD as above, 4 LPs; event delay stays %v) ===\n", baseLA)
	fmt.Fprintf(&b, "%10s %12s %12s %12s %12s %14s\n",
		"lookahead", "events", "nulls", "nulls/event", "wall", "events/sec")
	for _, la := range []simtime.Time{
		100 * simtime.Nanosecond,
		250 * simtime.Nanosecond,
		simtime.Microsecond,
	} {
		// The actors still space events one microsecond apart (PHOLD's
		// hop delay must stay ≥ the engine lookahead, so we sweep the
		// lookahead downward from it): a smaller lookahead weakens every
		// guarantee without changing the event schedule.
		pt, err := runPHOLDPoint(4, actors, hops, chains, baseLA, la)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "%10v %12d %12d %12.3f %12v %14.0f\n",
			pt.lookahead, pt.events, pt.nulls, pt.nullsPerEvent(), pt.wall.Round(time.Microsecond), pt.eventsPerSec())
	}

	fmt.Fprintf(&b, "\n=== CMB-parallel packet network (hopper, 96-rank permutation, %d KiB/message) ===\n", packetBytes>>10)
	fmt.Fprintf(&b, "%4s %12s %12s %12s %12s %14s %9s\n",
		"LPs", "events", "nulls", "nulls/event", "wall", "events/sec", "balance")
	for _, lps := range []int{1, 2, 4, 8} {
		pt, err := runPacketPoint(lps, packetBytes)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "%4d %12d %12d %12.3f %12v %14.0f %9.3f\n",
			pt.lps, pt.events, pt.nulls, pt.nullsPerEvent(), pt.wall.Round(time.Microsecond), pt.eventsPerSec(), pt.balance())
	}

	if path == "-" {
		fmt.Print(b.String())
		return nil
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
