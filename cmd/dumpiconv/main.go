// Command dumpiconv imports dumpi2ascii-style per-rank text dumps and
// writes them as a binary trace usable by cmd/mfact and cmd/sstsim.
//
// Usage:
//
//	dumpiconv -app MyApp -machine edison -out my.htrc rank0.txt rank1.txt ...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hpctradeoff/internal/trace"
)

func main() {
	app := flag.String("app", "imported", "application name for the trace metadata")
	class := flag.String("class", "X", "problem-class label")
	machName := flag.String("machine", "edison", "machine the dump was collected on")
	rpn := flag.Int("rpn", 0, "ranks per node at collection (0 = machine default)")
	out := flag.String("out", "imported.htrc", "output trace path")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dumpiconv [-flags] rank0.txt rank1.txt ...")
		os.Exit(2)
	}

	var files []*os.File
	var readers []io.Reader
	for _, p := range flag.Args() {
		f, err := os.Open(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dumpiconv:", err)
			os.Exit(1)
		}
		files = append(files, f)
		readers = append(readers, f)
	}
	meta := trace.Meta{
		App: *app, Class: *class, Machine: *machName,
		NumRanks: len(readers), RanksPerNode: *rpn,
	}
	tr, err := trace.ReadDUMPIASCII(meta, readers)
	for _, f := range files {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dumpiconv:", err)
		os.Exit(1)
	}
	o, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dumpiconv:", err)
		os.Exit(1)
	}
	if err := trace.Write(o, tr); err != nil {
		fmt.Fprintln(os.Stderr, "dumpiconv:", err)
		os.Exit(1)
	}
	if err := o.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "dumpiconv:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d ranks, %d events, measured %v (%.1f%% communication)\n",
		*out, tr.Meta.NumRanks, tr.NumEvents(), tr.MeasuredTotal(), 100*tr.CommFraction())
}
