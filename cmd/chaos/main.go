// Command chaos soak-tests the campaign pipeline under deterministic,
// seeded fault schedules. For each seed it derives a random-but-
// reproducible schedule of injected faults (scheme errors and panics,
// budget blowups, DES-step faults, torn checkpoint appends, sync
// failures), runs the campaign under it twice, then disarms and
// resumes from the journal, asserting three invariants:
//
//  1. Reproducibility: two runs with the same seed fire the identical
//     fault schedule and produce identical results.
//  2. Durability: no result committed to the checkpoint journal before
//     a (simulated) kill is ever lost or rewritten by the recovery run.
//  3. Isolation: traces that survived the fault run untouched (all
//     schemes OK, original seed, not degraded) are bit-identical to a
//     fault-free run; degraded traces still carry the fault-free model
//     prediction.
//
// Usage:
//
//	chaos -seed 1              # one schedule
//	chaos -seed 1 -runs 20     # soak seeds 1..20 (make chaos-short)
//	chaos -seed 7 -v           # print the schedule and every firing
//
// Schedules use only count- and probability-based triggers (never
// wall-clock stalls) and the campaign runs with one worker, so a seed's
// behavior is identical across machines and runs.
//
// Each seed additionally soaks the tiered scheduler's classifier-down
// contract (soakTriage) and the trace cache's never-trust-damage
// contract (soakCache: a real on-disk bit flip plus a tracecache/open
// failpoint firing must regenerate, never change a result).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"hpctradeoff/internal/core"
	"hpctradeoff/internal/des"
	"hpctradeoff/internal/faultinject"
	"hpctradeoff/internal/scheme"
	"hpctradeoff/internal/spec"
	"hpctradeoff/internal/tracecache"
	"hpctradeoff/internal/triage"
	"hpctradeoff/internal/workload"
)

var verbose bool

func vlogf(format string, args ...any) {
	if verbose {
		fmt.Printf(format+"\n", args...)
	}
}

// suiteApps rotates through the full application set so soaking many
// seeds covers every generator.
var suiteApps = []string{
	"CG", "MG", "FT", "IS", "LU", "BT", "EP", "DT",
	"BigFFT", "CrystalRouter", "AMG", "MiniFE", "LULESH",
	"CNS", "CMC", "Nekbone", "MultiGrid", "FillBoundary",
}

func buildSuite(n int) []workload.Params {
	machines := []string{"cielito", "edison", "hopper"}
	ps := make([]workload.Params, n)
	for i := 0; i < n; i++ {
		ps[i] = workload.Params{
			App: suiteApps[i%len(suiteApps)], Class: "S", Ranks: 16,
			Machine: machines[i%len(machines)], Seed: int64(1000 + i),
		}
	}
	return ps
}

// makeSchedule derives seed's fault schedule: one to three rules drawn
// from the campaign's failure surfaces. Only count/probability triggers
// — wall-clock actions would make the schedule machine-dependent.
func makeSchedule(seed int64, schemes []string, traces int) []faultinject.Rule {
	rng := rand.New(rand.NewSource(seed))
	var rules []faultinject.Rule
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0: // per-scheme error: a flaky backend
			rules = append(rules, faultinject.Rule{
				Site: "scheme/run", Label: schemes[rng.Intn(len(schemes))],
				Action: faultinject.ActError,
				Every:  uint64(1 + rng.Intn(3)), MaxFires: 1 + rng.Intn(4),
			})
		case 1: // budget blowup: the whole trace fails, ladder degrades it
			rules = append(rules, faultinject.Rule{
				Site: "scheme/run", Label: schemes[rng.Intn(len(schemes))],
				Action: faultinject.ActError, Err: des.ErrBudgetExceeded,
				Hits: []uint64{uint64(1 + rng.Intn(traces))}, MaxFires: 1,
			})
		case 2: // panic inside a scheme adapter: exercises isolation + retry
			rules = append(rules, faultinject.Rule{
				Site: "scheme/run", Label: schemes[rng.Intn(len(schemes))],
				Action: faultinject.ActPanic,
				Hits:   []uint64{uint64(1 + rng.Intn(traces))}, MaxFires: 1,
			})
		case 3: // torn checkpoint append: the mid-write kill
			rules = append(rules, faultinject.Rule{
				Site: "core/checkpoint-append", Action: faultinject.ActTorn,
				Hits: []uint64{uint64(1 + rng.Intn(traces))}, MaxFires: 1,
			})
		case 4: // probabilistic DES-step fault: sporadic engine cancellation
			rules = append(rules, faultinject.Rule{
				Site: "des/step", Action: faultinject.ActError,
				Prob: 1e-5, MaxFires: 1 + rng.Intn(2),
			})
		}
	}
	return rules
}

func ruleString(r faultinject.Rule) string {
	s := r.Site
	if r.Label != "" {
		s += "[" + r.Label + "]"
	}
	switch {
	case len(r.Hits) > 0:
		s += fmt.Sprintf(" hits=%v", r.Hits)
	case r.Every > 0:
		s += fmt.Sprintf(" every=%d", r.Every)
	case r.Prob > 0:
		s += fmt.Sprintf(" prob=%g", r.Prob)
	}
	act := r.Action
	if act == "" {
		act = faultinject.ActError
	}
	s += fmt.Sprintf(" action=%s", act)
	if r.Err != nil {
		s += fmt.Sprintf(" err=%v", r.Err)
	}
	if r.MaxFires > 0 {
		s += fmt.Sprintf(" max=%d", r.MaxFires)
	}
	return s
}

// normalize renders a result for equality checks, dropping wall-clock
// durations (the only nondeterministic fields).
func normalize(r *core.TraceResult) string {
	if r == nil {
		return "<failed>"
	}
	c := *r
	c.Schemes = make(map[string]scheme.Outcome, len(r.Schemes))
	for k, v := range r.Schemes {
		v.Wall = 0
		c.Schemes[k] = v
	}
	b, err := json.Marshal(&c)
	if err != nil {
		return fmt.Sprintf("<unmarshalable: %v>", err)
	}
	return string(b)
}

func firedString(fs []faultinject.Firing) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return strings.Join(parts, " ")
}

// faultRun executes the campaign under the armed schedule and returns
// the (possibly partial) results plus the firing log. An infrastructure
// error (torn append, failed sync) is the simulated kill, not a soak
// failure.
func faultRun(ps []workload.Params, schemes []string, seed int64, ckpt string) ([]*core.TraceResult, []faultinject.Firing, error) {
	rs, _, err := core.RunCampaign(ps, core.CampaignConfig{
		Workers: 1,
		Schemes: schemes,
		Policy: core.FailurePolicy{
			KeepGoing: true, MaxRetries: 1, Backoff: 1,
			Seed: seed, BreakerThreshold: 3, DegradeToModel: true,
		},
		CheckpointPath: ckpt,
	})
	if err != nil {
		vlogf("  campaign stopped (simulated kill): %v", err)
	}
	return rs, faultinject.Fired(), nil
}

// soakOne runs the full protocol for one seed. Returned errors are
// invariant violations.
func soakOne(seed int64, ps []workload.Params, schemes []string, baseline []*core.TraceResult, dir string) error {
	rules := makeSchedule(seed, schemes, len(ps))
	vlogf("seed %d: %d rule(s):", seed, len(rules))
	for _, r := range rules {
		vlogf("  %s", ruleString(r))
	}

	// Two armed runs: the schedule and the results must be identical.
	ckptA := filepath.Join(dir, fmt.Sprintf("seed%d-a.jsonl", seed))
	ckptB := filepath.Join(dir, fmt.Sprintf("seed%d-b.jsonl", seed))
	if err := faultinject.Arm(seed, rules); err != nil {
		return fmt.Errorf("arm: %w", err)
	}
	rsA, firedA, err := faultRun(ps, schemes, seed, ckptA)
	if err != nil {
		return err
	}
	if err := faultinject.Arm(seed, rules); err != nil {
		return fmt.Errorf("re-arm: %w", err)
	}
	rsB, firedB, err := faultRun(ps, schemes, seed, ckptB)
	faultinject.Disarm()
	if err != nil {
		return err
	}
	vlogf("  fired: %s", firedString(firedA))
	if a, b := firedString(firedA), firedString(firedB); a != b {
		return fmt.Errorf("fault schedule not reproducible:\n  run1: %s\n  run2: %s", a, b)
	}
	for i := range ps {
		if a, b := normalize(rsA[i]), normalize(rsB[i]); a != b {
			return fmt.Errorf("results not reproducible for %s:\n  run1: %s\n  run2: %s",
				core.CampaignKey(ps[i]), a, b)
		}
	}

	// What the first run committed before any kill.
	committed, err := core.LoadCheckpoint(ckptA)
	if err != nil {
		return fmt.Errorf("journal after fault run must load: %w", err)
	}

	// Recovery: resume the first run's journal with faults disarmed.
	final, rep, err := core.RunCampaign(ps, core.CampaignConfig{
		Workers:        1,
		Schemes:        schemes,
		Policy:         core.FailurePolicy{KeepGoing: true},
		CheckpointPath: ckptA,
		Resume:         true,
	})
	if err != nil {
		return fmt.Errorf("recovery run failed: %w", err)
	}
	vlogf("  recovery: %s", rep.Summary())

	// Durability: every committed result survives recovery unchanged.
	after, err := core.LoadCheckpoint(ckptA)
	if err != nil {
		return fmt.Errorf("journal after recovery must load: %w", err)
	}
	for key, r := range committed {
		fr, ok := after[key]
		if !ok {
			return fmt.Errorf("committed result %s lost during recovery", key)
		}
		if normalize(fr) != normalize(r) {
			return fmt.Errorf("committed result %s rewritten during recovery", key)
		}
	}

	// Isolation: untouched survivors match the fault-free baseline;
	// every trace converged to some result.
	for i, p := range ps {
		r := final[i]
		if r == nil {
			return fmt.Errorf("trace %s did not converge after recovery", core.CampaignKey(p))
		}
		if r.Degraded {
			// Degraded results keep the fault-free model prediction.
			bo, fo := baseline[i].Schemes[scheme.MFACT], r.Schemes[scheme.MFACT]
			if !fo.OK || fo.Total != bo.Total || fo.Events != bo.Events {
				return fmt.Errorf("degraded trace %s lost the model prediction: %+v vs %+v",
					core.CampaignKey(p), fo, bo)
			}
			continue
		}
		if r.Params.Seed != p.Seed {
			// A retried trace ran with a derived seed; its ground truth
			// legitimately differs from the baseline's.
			continue
		}
		survived := true
		for _, o := range r.Schemes {
			if !o.OK {
				survived = false
			}
		}
		if survived && normalize(r) != normalize(baseline[i]) {
			return fmt.Errorf("surviving trace %s differs from fault-free run:\n  fault: %s\n  clean: %s",
				core.CampaignKey(p), normalize(r), normalize(baseline[i]))
		}
	}
	return nil
}

// soakTriage breaks the triage classifier under a tiered campaign and
// asserts the never-skip-silently contract: a classifier failure —
// whether training (even seeds) or a mid-plan scoring call (odd seeds)
// — must degrade the plan to escalate-always, be counted in the
// report, and leave every trace with a full-fidelity result that is
// bit-identical to the fault-free run-everything baseline. A broken
// classifier may waste wall clock; it may never silently trust the
// model tier.
func soakTriage(seed int64, ps []workload.Params, schemes []string, baseline []*core.TraceResult) error {
	rule := faultinject.Rule{
		Site: "triage/score", Label: "train",
		Action: faultinject.ActError, Hits: []uint64{1}, MaxFires: 1,
	}
	if seed%2 == 1 {
		// Break the first Score call instead (hit 1 at the site is the
		// Train call; hit 2 the first score): the plan must degrade
		// retroactively, flipping candidates already cleared.
		rule.Label = ""
		rule.Hits = []uint64{2}
	}
	vlogf("  triage rule: %s", ruleString(rule))
	if err := faultinject.Arm(seed, []faultinject.Rule{rule}); err != nil {
		return fmt.Errorf("triage arm: %w", err)
	}
	pol := &triage.Policy{Threshold: 0.5, Calibration: 2, Seed: seed}
	rs, rep, err := core.RunCampaign(ps, core.CampaignConfig{
		Workers: 1,
		Schemes: schemes,
		Policy:  core.FailurePolicy{KeepGoing: true},
		Triage:  pol,
	})
	faultinject.Disarm()
	if err != nil {
		return fmt.Errorf("tiered campaign under classifier fault failed: %w", err)
	}
	t := rep.Triage
	if t == nil {
		return fmt.Errorf("tiered campaign produced no triage report")
	}
	vlogf("  triage: %s", t.Summary())
	if !t.ClassifierDown {
		return fmt.Errorf("classifier fault fired but report does not count it as down")
	}
	if t.ModelOnly != 0 {
		return fmt.Errorf("classifier down but %d trace(s) skipped simulation", t.ModelOnly)
	}
	nonCal := 0
	for _, d := range t.Decisions {
		if d.Reason == triage.ReasonCalibration {
			continue
		}
		nonCal++
		if !d.Escalate || d.Reason != triage.ReasonClassifierDown {
			return fmt.Errorf("decision %s under a down classifier is %q escalate=%v, want forced escalation",
				d.Key, d.Reason, d.Escalate)
		}
	}
	if t.Forced != nonCal {
		return fmt.Errorf("report counts %d forced escalations, want %d", t.Forced, nonCal)
	}
	for i, p := range ps {
		r := rs[i]
		if r == nil {
			return fmt.Errorf("trace %s has no result under a down classifier", core.CampaignKey(p))
		}
		if len(r.Schemes) != len(schemes) {
			return fmt.Errorf("trace %s ran %d of %d schemes under a down classifier",
				core.CampaignKey(p), len(r.Schemes), len(schemes))
		}
		if normalize(r) != normalize(baseline[i]) {
			return fmt.Errorf("escalate-always result for %s differs from run-everything baseline:\n  triage: %s\n  plain:  %s",
				core.CampaignKey(p), normalize(r), normalize(baseline[i]))
		}
	}
	return nil
}

// soakCache soak-tests the trace cache's never-trust-damage contract:
// a cold cached campaign must match the uncached baseline bit for bit,
// then a warm re-run under real damage — one entry's trace file gets a
// byte flipped on disk, and the tracecache/open failpoint fires once —
// must detect every damaged open, evict, regenerate, and still match
// the baseline. A final run proves the repaired cache serves fully
// warm. A cache fault may cost regeneration; it may never change a
// result or fail a trace.
func soakCache(seed int64, ps []workload.Params, schemes []string, baseline []*core.TraceResult, dir string) error {
	rng := rand.New(rand.NewSource(seed ^ 0x7ca))
	cache, err := tracecache.Open(filepath.Join(dir, fmt.Sprintf("cache-seed%d", seed)), tracecache.Options{
		Warnf: func(format string, args ...any) { vlogf("  cache: "+format, args...) },
	})
	if err != nil {
		return fmt.Errorf("cache open: %w", err)
	}
	run := func() ([]*core.TraceResult, error) {
		rs, _, err := core.RunCampaign(ps, core.CampaignConfig{Workers: 1, Schemes: schemes, Cache: cache})
		return rs, err
	}
	match := func(rs []*core.TraceResult, pass string) error {
		for i, p := range ps {
			if normalize(rs[i]) != normalize(baseline[i]) {
				return fmt.Errorf("%s cached result for %s differs from uncached baseline:\n  cached:   %s\n  uncached: %s",
					pass, core.CampaignKey(p), normalize(rs[i]), normalize(baseline[i]))
			}
		}
		return nil
	}

	cold, err := run()
	if err != nil {
		return fmt.Errorf("cold cached campaign failed: %w", err)
	}
	if err := match(cold, "cold"); err != nil {
		return err
	}
	st := cache.Stats()
	if st.Misses != int64(len(ps)) || st.Hits != 0 {
		return fmt.Errorf("cold run: %d misses / %d hits, want %d / 0", st.Misses, st.Hits, len(ps))
	}

	// Real damage: flip one byte of a random entry's trace file.
	entries, err := cache.List()
	if err != nil || len(entries) == 0 {
		return fmt.Errorf("cache listing after cold run: %d entries, err %v", len(entries), err)
	}
	victim, _ := cache.EntryPaths(entries[rng.Intn(len(entries))].Hash)
	img, err := os.ReadFile(victim)
	if err != nil {
		return fmt.Errorf("reading victim entry: %w", err)
	}
	img[rng.Intn(len(img))] ^= 1 << uint(rng.Intn(8))
	if err := os.WriteFile(victim, img, 0o644); err != nil {
		return fmt.Errorf("flipping victim entry: %w", err)
	}

	// Injected damage: tracecache/open fires on one of the warm opens.
	if err := faultinject.Arm(seed, []faultinject.Rule{{
		Site: "tracecache/open", Action: faultinject.ActError,
		Hits: []uint64{uint64(1 + rng.Intn(len(ps)))}, MaxFires: 1,
	}}); err != nil {
		return fmt.Errorf("cache arm: %w", err)
	}
	warm, err := run()
	faultinject.Disarm()
	if err != nil {
		return fmt.Errorf("warm cached campaign under damage failed: %w", err)
	}
	if err := match(warm, "damaged-warm"); err != nil {
		return err
	}
	d := cache.Stats().Sub(st)
	// The failpoint may land on the flipped entry (1 corrupt open) or on
	// a healthy one (2); either way every corrupt open must have
	// regenerated and nothing else may have missed.
	if d.Corrupt < 1 || d.Corrupt > 2 {
		return fmt.Errorf("damaged-warm run evicted %d corrupt entries, want 1 or 2", d.Corrupt)
	}
	if d.Misses != d.Corrupt || d.Hits != int64(len(ps))-d.Corrupt {
		return fmt.Errorf("damaged-warm run: %d misses / %d hits with %d corrupt, want %d / %d",
			d.Misses, d.Hits, d.Corrupt, d.Corrupt, int64(len(ps))-d.Corrupt)
	}
	vlogf("  cache: damage run: %s", d)

	// The regenerated entries must serve the next campaign fully warm.
	prev := cache.Stats()
	third, err := run()
	if err != nil {
		return fmt.Errorf("post-repair cached campaign failed: %w", err)
	}
	if err := match(third, "repaired-warm"); err != nil {
		return err
	}
	if d := cache.Stats().Sub(prev); d.Misses != 0 || d.Hits != int64(len(ps)) {
		return fmt.Errorf("post-repair run: %d misses / %d hits, want 0 / %d", d.Misses, d.Hits, len(ps))
	}
	return nil
}

func main() {
	seed := flag.Int64("seed", 1, "first fault-schedule seed")
	runs := flag.Int("runs", 1, "number of consecutive seeds to soak")
	traces := flag.Int("traces", 6, "suite size (apps rotate through the full set; with -spec, caps the compiled manifest)")
	specPath := flag.String("spec", "", "soak the manifest of this YAML/JSON campaign spec instead of the built-in rotation")
	schemesFlag := flag.String("schemes", "mfact,packet", "scheme selection for the soak")
	flag.BoolVar(&verbose, "v", false, "print schedules, firings, and recovery summaries")
	flag.Parse()

	schemes := scheme.ParseList(*schemesFlag)
	if len(schemes) == 0 {
		fmt.Fprintln(os.Stderr, "chaos: empty scheme selection")
		os.Exit(2)
	}
	ps := buildSuite(*traces)
	if *specPath != "" {
		s, err := spec.Load(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(2)
		}
		c, err := spec.Compile(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(2)
		}
		ps = c.Manifest
		// Keep soak time bounded: -traces caps a spec manifest the same
		// way it sizes the built-in rotation.
		if len(ps) > *traces {
			ps = ps[:*traces]
		}
		fmt.Printf("chaos: soaking %d traces from campaign spec %s (%s)\n", len(ps), *specPath, c.Hash())
	}

	dir, err := os.MkdirTemp("", "chaos-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)

	// The fault-free baseline every seed's survivors are held against.
	baseline, _, err := core.RunCampaign(ps, core.CampaignConfig{Workers: 1, Schemes: schemes})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos: baseline run failed:", err)
		os.Exit(1)
	}

	var failedSeeds []int64
	for s := *seed; s < *seed+int64(*runs); s++ {
		err := soakOne(s, ps, schemes, baseline, dir)
		if err == nil {
			err = soakTriage(s, ps, schemes, baseline)
		}
		if err == nil {
			err = soakCache(s, ps, schemes, baseline, dir)
		}
		if err != nil {
			failedSeeds = append(failedSeeds, s)
			fmt.Fprintf(os.Stderr, "chaos: seed %d FAILED: %v\n", s, err)
		} else {
			fmt.Printf("chaos: seed %d ok\n", s)
		}
	}
	if len(failedSeeds) > 0 {
		// Surface every failing seed with its one-seed repro invocation,
		// so a CI log ends with the exact commands to debug locally.
		fmt.Fprintf(os.Stderr, "chaos: %d of %d seeds violated invariants:\n", len(failedSeeds), *runs)
		for _, s := range failedSeeds {
			fmt.Fprintf(os.Stderr, "  seed %d: rerun with: go run ./cmd/chaos -seed %d -traces %d -schemes %s -v\n",
				s, s, *traces, *schemesFlag)
		}
		os.Exit(1)
	}
	fmt.Printf("chaos: %d seed(s), %d traces each: all invariants held\n", *runs, *traces)
}
