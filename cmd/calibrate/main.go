// Command calibrate fits Hockney (α, β) parameters for a machine by
// running ping-pong benchmarks on its detailed simulator — the way
// MFACT's parameters are obtained on real systems — and compares them
// with the configured data-sheet values.
//
// Usage:
//
//	calibrate -machine edison [-ranks 48] [-model packetflow]
package main

import (
	"flag"
	"fmt"
	"os"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/mfact"
	"hpctradeoff/internal/simnet"
)

func main() {
	machName := flag.String("machine", "edison", "machine to calibrate")
	ranks := flag.Int("ranks", 48, "job size used for the ping-pong")
	model := flag.String("model", "packetflow", "simulation model to measure against")
	flag.Parse()

	mach, err := machine.New(*machName, *ranks, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	cal, err := mfact.Calibrate(mach, simnet.Model(*model), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	fmt.Printf("machine %s (%s), measured with the %s model:\n\n", mach.Name, mach.Topo.Name(), *model)
	fmt.Printf("  %-12s %-14s\n", "bytes", "one-way time")
	for _, s := range cal.Samples {
		fmt.Printf("  %-12d %-14v\n", s.Bytes, s.OneWay)
	}
	fmt.Printf("\n  fitted α  %v   (configured %v)\n", cal.Alpha, mach.Alpha)
	fmt.Printf("  fitted β  %.3g GB/s (configured %.3g GB/s)\n", cal.Beta/1e9, mach.Beta/1e9)
	fmt.Println("\nUse Calibration.Apply to model with the fitted parameters.")
}
