// Command mfact models an MPI trace with the MFACT modeling tool: one
// logical-clock replay predicts application performance across a sweep
// of network configurations and classifies the application.
//
// Usage:
//
//	mfact trace.htrc              # model a trace file
//	mfact -app FT -ranks 64       # generate and model a synthetic trace
//	mfact -schemes mfact,packet -app FT -ranks 64
//	                              # compare registry schemes on one trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/mfact"
	"hpctradeoff/internal/scheme"
	"hpctradeoff/internal/trace"
	"hpctradeoff/internal/workload"
)

func main() {
	app := flag.String("app", "", "generate a synthetic trace for this app")
	class := flag.String("class", "B", "problem class for -app")
	ranks := flag.Int("ranks", 64, "rank count for -app")
	machName := flag.String("machine", "edison", "target machine")
	seed := flag.Int64("seed", 1, "seed for -app")
	parallel := flag.Bool("parallel", false, "use the goroutine-per-rank replayer")
	grid := flag.Bool("grid", false, "print a 2-D bandwidth × latency what-if grid")
	schemes := flag.String("schemes", "", "run these registered schemes over the trace and compare "+
		"(comma-separated; available: "+strings.Join(scheme.Names(), ",")+")")
	flag.Parse()

	tr, err := loadOrGenerate(*app, *class, *ranks, *machName, *seed, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfact:", err)
		os.Exit(1)
	}
	mach, err := machine.New(tr.Meta.Machine, tr.Meta.NumRanks, tr.Meta.RanksPerNode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfact:", err)
		os.Exit(1)
	}

	if *schemes != "" {
		if err := runSchemes(tr, mach, *schemes); err != nil {
			fmt.Fprintln(os.Stderr, "mfact:", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	var res *mfact.Result
	if *parallel {
		res, err = mfact.ModelParallel(tr, mach, nil)
	} else {
		res, err = mfact.Model(tr, mach, nil)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfact:", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	fmt.Printf("trace       %s (%d ranks, %d events)\n", tr.Meta.ID(), tr.Meta.NumRanks, tr.NumEvents())
	fmt.Printf("machine     %s (α=%v, β=%.3g GB/s)\n", mach.Name, mach.Alpha, mach.Beta/1e9)
	fmt.Printf("modeled in  %v (%d events replayed once for %d configurations)\n",
		wall.Round(time.Microsecond), res.Events, len(res.Configs))
	fmt.Printf("\npredicted total time  %v\n", res.Total())
	fmt.Printf("predicted comm time   %v\n", res.Comm())
	if m := tr.MeasuredTotal(); m > 0 {
		fmt.Printf("measured total time   %v (prediction/measured = %.3f)\n",
			m, float64(res.Total())/float64(m))
	}
	fmt.Printf("\nclassification        %v\n", res.Class)
	fmt.Printf("bandwidth sensitivity %+.1f%% (total time under β/8)\n", 100*res.BandwidthSensitivity())
	fmt.Printf("latency sensitivity   %+.1f%% (total time under 8α)\n", 100*res.LatencySensitivity())
	fmt.Printf("wait fraction         %.1f%%\n", 100*res.WaitFraction())
	fmt.Printf("needs simulation?     %v (communication-sensitive: %v)\n\n",
		res.CommSensitive(), res.CommSensitive())

	fmt.Println("configuration sweep:")
	fmt.Printf("  %-22s %-14s %-14s\n", "config", "total", "comm")
	for k, c := range res.Configs {
		label := fmt.Sprintf("bw×%g lat×%g", c.BWScale, c.LatScale)
		fmt.Printf("  %-22s %-14v %-14v\n", label, res.Totals[k], res.Comms[k])
	}
	c := res.PerConfig[0]
	fmt.Printf("\nbaseline counters (per rank): wait=%v bandwidth=%v latency=%v compute=%v\n",
		c.Wait, c.Bandwidth, c.Latency, c.Compute)

	if *grid {
		g, err := mfact.GridSweep(tr, mach, nil, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mfact:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(g.Render())
	}
}

// runSchemes replays the trace through each selected registry scheme
// and prints a side-by-side comparison.
func runSchemes(tr *trace.Trace, mach *machine.Config, list string) error {
	ss, err := scheme.Resolve(scheme.ParseList(list))
	if err != nil {
		return err
	}
	fmt.Printf("trace   %s (%d ranks, %d events)\n\n", tr.Meta.ID(), tr.Meta.NumRanks, tr.NumEvents())
	fmt.Printf("%-12s %-11s %-14s %-14s %-12s %s\n", "scheme", "kind", "total", "comm", "events", "wall")
	for _, s := range ss {
		out, err := s.Run(tr, mach, scheme.Options{})
		if err != nil {
			fmt.Printf("%-12s %-11s failed: %v\n", s.Name(), s.Kind(), err)
			continue
		}
		fmt.Printf("%-12s %-11s %-14v %-14v %-12d %v\n",
			out.Scheme, out.Kind, out.Total, out.Comm, out.Events, out.Wall.Round(time.Microsecond))
	}
	return nil
}

func loadOrGenerate(app, class string, ranks int, machName string, seed int64, path string) (*trace.Trace, error) {
	if app != "" {
		return workload.Materialize(workload.Params{
			App: app, Class: class, Ranks: ranks, Machine: machName, Seed: seed,
		})
	}
	if path == "" {
		return nil, fmt.Errorf("need a trace file argument or -app")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
