// Command predictor runs the paper's Section VI study: it groups the
// traces by MFACT classification (Figure 5), trains the enhanced-MFACT
// need-for-simulation model with 100-fold Monte-Carlo cross-validation
// and step-wise AIC feature selection, and prints Table IV and the
// misclassification/FN/FP rates.
//
// Usage:
//
//	predictor -load results.json       # reuse a cmd/tradeoff run
//	predictor -stride 4 -maxranks 256  # run its own reduced suite
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hpctradeoff/internal/core"
	"hpctradeoff/internal/workload"
)

func main() {
	stride := flag.Int("stride", 1, "keep every Nth manifest entry")
	maxRanks := flag.Int("maxranks", 0, "skip traces larger than this (0 = no cap)")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel trace workers")
	load := flag.String("load", "", "load results JSON instead of running the suite")
	save := flag.String("save", "", "save results JSON to this path")
	runs := flag.Int("runs", 100, "Monte-Carlo cross-validation partitions")
	maxVars := flag.Int("maxvars", 5, "step-wise selection variable cap")
	seed := flag.Int64("seed", 2016, "cross-validation seed")
	flag.Parse()

	var rs []*core.TraceResult
	var err error
	if *load != "" {
		rs, err = core.LoadResultsFile(*load)
	} else {
		suite := workload.SuiteSmall(*stride, *maxRanks)
		fmt.Printf("running %d traces with %d workers...\n", len(suite), *workers)
		start := time.Now()
		rs, err = core.RunSuite(suite, *workers, nil)
		if err == nil {
			fmt.Printf("suite completed in %v\n\n", time.Since(start).Round(time.Second))
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "predictor:", err)
		os.Exit(1)
	}
	if *save != "" {
		if err := core.SaveResultsFile(*save, rs); err != nil {
			fmt.Fprintln(os.Stderr, "predictor:", err)
			os.Exit(1)
		}
	}

	fmt.Println(core.BuildFigure5(rs).Render())

	study, err := core.BuildPredictionStudy(rs, *runs, *maxVars, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predictor:", err)
		os.Exit(1)
	}
	fmt.Println(study.RenderTable4(10))
	fmt.Println()
	fmt.Println(study.RenderRates())
}
