package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {99, 1},
	}
	for _, tc := range cases {
		if got := c.FractionWithin(tc.x); got != tc.want {
			t.Errorf("FractionWithin(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.Max(); got != 4 {
		t.Errorf("Max = %v", got)
	}
	var empty CDF
	if empty.FractionWithin(1) != 0 || empty.Max() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty CDF misbehaves")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 1+rng.Intn(30))
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		c := NewCDF(vals)
		prev := -1.0
		for x := -3.0; x <= 3.0; x += 0.25 {
			f := c.FractionWithin(x)
			if f < prev || f < 0 || f > 1 {
				return false
			}
			prev = f
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRatioBuckets(t *testing.T) {
	ratios := []float64{1, 5, 50, 500, 5000}
	got := RatioBuckets(ratios, []float64{10, 100, 1000})
	want := []float64{0.4, 0.6, 0.8, 0.2}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	empty := RatioBuckets(nil, []float64{10})
	if empty[0] != 0 || empty[1] != 0 {
		t.Error("empty ratios should give zero buckets")
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"A", "Bee"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "A") || !strings.Contains(lines[0], "Bee") {
		t.Error("header missing")
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Error("separator missing")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "#####....." {
		t.Errorf("Bar(0.5) = %q", got)
	}
	if got := Bar(-1, 4); got != "...." {
		t.Errorf("Bar(-1) = %q", got)
	}
	if got := Bar(2, 4); got != "####" {
		t.Errorf("Bar(2) = %q", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.932); got != "93.2%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestCDFSeries(t *testing.T) {
	c := NewCDF([]float64{0.01, 0.03, 0.08})
	out := CDFSeries("x", c, []float64{0.02, 0.05}, func(f float64) string { return Pct(f) })
	if !strings.Contains(out, "n=3") || !strings.Contains(out, "33.3%") {
		t.Errorf("series output:\n%s", out)
	}
}
