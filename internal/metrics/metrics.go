// Package metrics provides the aggregation and presentation helpers
// the study's tables and figures are built from: empirical CDFs, ratio
// bucketing, and plain-text table/figure rendering.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution.
type CDF struct {
	xs []float64 // sorted
}

// NewCDF builds a CDF from values (copied and sorted).
func NewCDF(values []float64) CDF {
	xs := make([]float64, len(values))
	copy(xs, values)
	sort.Float64s(xs)
	return CDF{xs: xs}
}

// Len returns the sample count.
func (c CDF) Len() int { return len(c.xs) }

// FractionWithin returns the fraction of samples ≤ x.
func (c CDF) FractionWithin(x float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.xs))
}

// Quantile returns the q-quantile (nearest-rank).
func (c CDF) Quantile(q float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	i := int(q * float64(len(c.xs)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(c.xs) {
		i = len(c.xs) - 1
	}
	return c.xs[i]
}

// Max returns the largest sample (0 when empty).
func (c CDF) Max() float64 {
	if len(c.xs) == 0 {
		return 0
	}
	return c.xs[len(c.xs)-1]
}

// RatioBuckets returns, for each bound, the fraction of ratios ≤ that
// bound, plus a final entry for the fraction above the last bound —
// the structure of the paper's Figure 1 (≤10×, ≤100×, ≤1000×, >1000×).
func RatioBuckets(ratios []float64, bounds []float64) []float64 {
	out := make([]float64, len(bounds)+1)
	if len(ratios) == 0 {
		return out
	}
	c := NewCDF(ratios)
	var prev float64
	for i, b := range bounds {
		f := c.FractionWithin(b)
		out[i] = f
		prev = f
	}
	out[len(bounds)] = 1 - prev
	return out
}

// Table renders a fixed-width text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Bar renders a horizontal ASCII bar of fraction f (0..1) with the
// given width, e.g. "███████░░░ 70%".
func Bar(f float64, width int) string {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	fill := int(f*float64(width) + 0.5)
	return strings.Repeat("#", fill) + strings.Repeat(".", width-fill)
}

// CDFSeries renders an ASCII CDF listing at the given probe points.
func CDFSeries(name string, c CDF, probes []float64, format func(float64) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d):\n", name, c.Len())
	for _, p := range probes {
		f := c.FractionWithin(p)
		fmt.Fprintf(&b, "  ≤ %-10s %5.1f%%  %s\n", format(p), 100*f, Bar(f, 40))
	}
	return b.String()
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
