package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Minimal stdlib-only SVG charting, enough to regenerate the paper's
// figures as vector graphics: multi-series line charts (CDFs) and
// grouped bar charts.

// Series is one named line in a chart.
type Series struct {
	Name string
	X, Y []float64
}

// chartPalette holds fill/stroke colors for up to six series.
var chartPalette = []string{"#1b6ca8", "#d1495b", "#44a05b", "#8a5ab5", "#e0a200", "#5a5a5a"}

const (
	svgW, svgH             = 640, 400
	padL, padR, padT, padB = 64, 20, 36, 46
)

type svgDoc struct {
	b strings.Builder
}

func (d *svgDoc) open(title string) {
	fmt.Fprintf(&d.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`,
		svgW, svgH, svgW, svgH)
	d.b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&d.b, `<text x="%d" y="22" font-size="15" text-anchor="middle">%s</text>`, svgW/2, escape(title))
}

func (d *svgDoc) close() string {
	d.b.WriteString(`</svg>`)
	return d.b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// axis computes a "nice" rounded upper bound and tick step for a data
// maximum.
func axis(maxVal float64) (top, step float64) {
	if maxVal <= 0 {
		return 1, 0.25
	}
	mag := math.Pow(10, math.Floor(math.Log10(maxVal)))
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		if maxVal <= m*mag {
			return m * mag, m * mag / 4
		}
	}
	return 10 * mag, 2.5 * mag
}

func fmtTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2g", v)
}

// LineChart renders a multi-series line chart (e.g. CDFs). X and Y
// axes start at zero; axes are labeled and ticked.
func LineChart(title, xlabel, ylabel string, series []Series) string {
	var d svgDoc
	d.open(title)
	var maxX, maxY float64
	for _, s := range series {
		for i := range s.X {
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	topX, stepX := axis(maxX)
	topY, stepY := axis(maxY)
	plotW := float64(svgW - padL - padR)
	plotH := float64(svgH - padT - padB)
	px := func(x float64) float64 { return float64(padL) + x/topX*plotW }
	py := func(y float64) float64 { return float64(svgH-padB) - y/topY*plotH }

	// Grid + ticks.
	for v := 0.0; v <= topX+1e-9; v += stepX {
		x := px(v)
		fmt.Fprintf(&d.b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`, x, padT, x, svgH-padB)
		fmt.Fprintf(&d.b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`, x, svgH-padB+16, fmtTick(v))
	}
	for v := 0.0; v <= topY+1e-9; v += stepY {
		y := py(v)
		fmt.Fprintf(&d.b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`, padL, y, svgW-padR, y)
		fmt.Fprintf(&d.b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`, padL-6, y+4, fmtTick(v))
	}
	// Axes.
	fmt.Fprintf(&d.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, padL, svgH-padB, svgW-padR, svgH-padB)
	fmt.Fprintf(&d.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, padL, padT, padL, svgH-padB)
	fmt.Fprintf(&d.b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`, (padL+svgW-padR)/2, svgH-10, escape(xlabel))
	fmt.Fprintf(&d.b, `<text x="14" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`,
		(padT+svgH-padB)/2, (padT+svgH-padB)/2, escape(ylabel))

	// Series.
	for si, s := range series {
		color := chartPalette[si%len(chartPalette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&d.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`, strings.Join(pts, " "), color)
		// Legend.
		ly := padT + 8 + si*16
		fmt.Fprintf(&d.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`, padL+10, ly, padL+34, ly, color)
		fmt.Fprintf(&d.b, `<text x="%d" y="%d" font-size="11">%s</text>`, padL+40, ly+4, escape(s.Name))
	}
	return d.close()
}

// BarChart renders grouped bars: one group per label, one bar per
// series within each group.
func BarChart(title, ylabel string, groups, seriesNames []string, values [][]float64) string {
	var d svgDoc
	d.open(title)
	var maxY float64
	for _, row := range values {
		for _, v := range row {
			maxY = math.Max(maxY, v)
		}
	}
	topY, stepY := axis(maxY)
	plotW := float64(svgW - padL - padR)
	plotH := float64(svgH - padT - padB)
	py := func(y float64) float64 { return float64(svgH-padB) - y/topY*plotH }

	for v := 0.0; v <= topY+1e-9; v += stepY {
		y := py(v)
		fmt.Fprintf(&d.b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`, padL, y, svgW-padR, y)
		fmt.Fprintf(&d.b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`, padL-6, y+4, fmtTick(v))
	}
	fmt.Fprintf(&d.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, padL, svgH-padB, svgW-padR, svgH-padB)
	fmt.Fprintf(&d.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, padL, padT, padL, svgH-padB)
	fmt.Fprintf(&d.b, `<text x="14" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`,
		(padT+svgH-padB)/2, (padT+svgH-padB)/2, escape(ylabel))

	nG, nS := len(groups), len(seriesNames)
	if nG == 0 || nS == 0 {
		return d.close()
	}
	groupW := plotW / float64(nG)
	barW := groupW * 0.8 / float64(nS)
	for gi, g := range groups {
		gx := float64(padL) + float64(gi)*groupW
		for si := 0; si < nS; si++ {
			v := 0.0
			if gi < len(values) && si < len(values[gi]) {
				v = values[gi][si]
			}
			x := gx + groupW*0.1 + float64(si)*barW
			y := py(v)
			fmt.Fprintf(&d.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
				x, y, barW*0.92, float64(svgH-padB)-y, chartPalette[si%len(chartPalette)])
		}
		fmt.Fprintf(&d.b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`,
			gx+groupW/2, svgH-padB+16, escape(g))
	}
	for si, name := range seriesNames {
		ly := padT + 8 + si*16
		fmt.Fprintf(&d.b, `<rect x="%d" y="%d" width="16" height="10" fill="%s"/>`, padL+10, ly-8, chartPalette[si%len(chartPalette)])
		fmt.Fprintf(&d.b, `<text x="%d" y="%d" font-size="11">%s</text>`, padL+32, ly, escape(name))
	}
	return d.close()
}

// CDFSeriesPoints converts a CDF into plot points over [0, xmax] for
// LineChart (x in percent if scale is 100).
func CDFSeriesPoints(name string, c CDF, xmax, scale float64, n int) Series {
	s := Series{Name: name}
	for i := 0; i <= n; i++ {
		x := xmax * float64(i) / float64(n)
		s.X = append(s.X, x*scale)
		s.Y = append(s.Y, 100*c.FractionWithin(x))
	}
	return s
}
