package metrics

import (
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed parses the SVG as XML to catch broken markup.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg[:min(len(svg), 400)])
		}
	}
}

func TestLineChartWellFormed(t *testing.T) {
	c := NewCDF([]float64{0.01, 0.02, 0.05, 0.2})
	svg := LineChart("T < & >", "x \"quoted\"", "y", []Series{
		CDFSeriesPoints("a<b", c, 0.3, 100, 50),
		{Name: "raw", X: []float64{0, 1, 2}, Y: []float64{0, 50, 100}},
	})
	wellFormed(t, svg)
	if !strings.Contains(svg, "polyline") {
		t.Error("no polylines rendered")
	}
	if !strings.Contains(svg, "&lt;") {
		t.Error("titles not escaped")
	}
}

func TestBarChartWellFormed(t *testing.T) {
	svg := BarChart("bars", "%", []string{"g1", "g2"}, []string{"s1", "s2", "s3"},
		[][]float64{{10, 20, 30}, {5, 0, 90}})
	wellFormed(t, svg)
	if got := strings.Count(svg, "<rect"); got < 7 { // 6 bars + background + legend chips
		t.Errorf("only %d rects", got)
	}
}

func TestBarChartEmpty(t *testing.T) {
	wellFormed(t, BarChart("empty", "y", nil, nil, nil))
}

func TestAxisNiceBounds(t *testing.T) {
	cases := []struct{ in, top float64 }{
		{0, 1}, {0.9, 1}, {1.7, 2}, {2.2, 2.5}, {4, 5}, {7, 10}, {93, 100},
	}
	for _, c := range cases {
		top, step := axis(c.in)
		if top != c.top {
			t.Errorf("axis(%v) top = %v, want %v", c.in, top, c.top)
		}
		if step <= 0 || top/step < 2 {
			t.Errorf("axis(%v) step = %v (top %v)", c.in, step, top)
		}
	}
}

func TestCDFSeriesPoints(t *testing.T) {
	c := NewCDF([]float64{0.1, 0.2})
	s := CDFSeriesPoints("x", c, 0.2, 100, 4)
	if len(s.X) != 5 || s.X[4] != 20 {
		t.Errorf("X = %v", s.X)
	}
	if s.Y[0] != 0 || s.Y[4] != 100 {
		t.Errorf("Y = %v", s.Y)
	}
}
