package triage

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"hpctradeoff/internal/classifier"
	"hpctradeoff/internal/faultinject"
	"hpctradeoff/internal/features"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden frontier file instead of comparing")

const goldenFrontierPath = "testdata/frontier.golden"

// synthPoints fabricates a run-everything result population shaped
// like the study's: comm-sensitive traces mostly exceed the 2% DIFF
// threshold, insensitive ones mostly do not, simulation wall clock
// dominates the model pass. Deterministic in seed.
func synthPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	nf := len(features.Names())
	iCL := features.Index("CLncs")
	iPoSYN := features.Index("PoSYN")
	iR := features.Index("R")
	pts := make([]Point, n)
	for i := range pts {
		x := make([]float64, nf)
		for j := range x {
			x[j] = rng.Float64()
		}
		cs := rng.Float64() < 0.45
		if cs {
			x[iCL] = 0
		} else {
			x[iCL] = 1
		}
		x[iPoSYN] = rng.Float64() * 0.5
		ranks := int(64) << rng.Intn(5)
		x[iR] = float64(ranks)
		diff := 0.002 + 0.004*rng.Float64()
		if cs {
			diff += 0.04*rng.Float64() + 0.03*(x[iR]/1024) - 0.02*x[iPoSYN]
			if diff < 0 {
				diff = 0.001
			}
		}
		pts[i] = Point{
			Key:       fmt.Sprintf("trace-%03d", i),
			X:         x,
			Diff:      diff,
			ModelWall: time.Millisecond,
			SimWall:   time.Duration(ranks) * 2 * time.Millisecond,
		}
	}
	return pts
}

func candidates(pts []Point) []Candidate {
	cs := make([]Candidate, len(pts))
	for i, p := range pts {
		cs[i] = Candidate{Key: p.Key, X: p.X}
	}
	return cs
}

// trainedScheduler trains a scheduler on the first k synthetic points
// and returns it with the remainder as candidates.
func trainedScheduler(t *testing.T, thr float64, n, cal int, seed int64) (*Scheduler, []Point) {
	t.Helper()
	pts := synthPoints(n, seed)
	s := New(Policy{Threshold: thr, Calibration: cal, Seed: seed}.Normalize(n))
	var obs []classifier.Observation
	for _, p := range pts[:cal] {
		obs = append(obs, classifier.Observation{ID: p.Key, X: p.X, DiffTotal: p.Diff})
	}
	if err := s.Train(obs); err != nil {
		t.Fatalf("Train: %v", err)
	}
	return s, pts[cal:]
}

func TestPolicyNormalize(t *testing.T) {
	p := Policy{Threshold: 0.5}.Normalize(235)
	if p.Calibration != 23 {
		t.Errorf("Calibration = %d, want n/10 = 23", p.Calibration)
	}
	if p.CVRuns != defaultCVRuns || p.MaxVars != defaultMaxVars {
		t.Errorf("defaults not applied: %+v", p)
	}
	if got := (Policy{Threshold: 0.5}).Normalize(40).Calibration; got != defaultCalibrationLo {
		t.Errorf("small-manifest Calibration = %d, want floor %d", got, defaultCalibrationLo)
	}
	if got := (Policy{Threshold: 0.5, Calibration: 99}).Normalize(10).Calibration; got != 10 {
		t.Errorf("Calibration not clamped to n: %d", got)
	}
}

func TestPolicyEqualIsTheResumeGate(t *testing.T) {
	base := Policy{Threshold: 0.5, Seed: 1}.Normalize(100)
	if !base.Equal(base) {
		t.Fatal("policy not equal to itself")
	}
	variants := []Policy{
		{Threshold: 0.4, Seed: 1},
		{Threshold: 0.5, Seed: 2},
		{Threshold: 0.5, Seed: 1, MaxEscalations: 3},
		{Threshold: 0.5, Seed: 1, MaxWall: time.Second},
		{Threshold: 0.5, Seed: 1, Calibration: 7},
	}
	for _, v := range variants {
		if base.Equal(v.Normalize(100)) {
			t.Errorf("policy %s should differ from %s", v, base)
		}
	}
}

// TestCalibrationIndices pins the split's contract: deterministic in
// (n, policy), sorted, unique, the configured size, spread across the
// manifest rather than one prefix, and absent at the endpoints.
func TestCalibrationIndices(t *testing.T) {
	s := New(Policy{Threshold: 0.5, Calibration: 20}.Normalize(200))
	a, b := s.CalibrationIndices(200), s.CalibrationIndices(200)
	if len(a) != 20 {
		t.Fatalf("len = %d, want 20", len(a))
	}
	seen := map[int]bool{}
	for i, idx := range a {
		if idx != b[i] {
			t.Fatal("split not deterministic")
		}
		if seen[idx] {
			t.Fatalf("duplicate index %d", idx)
		}
		seen[idx] = true
		if i > 0 && a[i-1] >= idx {
			t.Fatal("split not sorted")
		}
		if idx < 0 || idx >= 200 {
			t.Fatalf("index %d out of range", idx)
		}
	}
	// Coverage: the last pick must land in the manifest's final decile.
	if a[len(a)-1] < 180 {
		t.Errorf("split is prefix-biased: last index %d", a[len(a)-1])
	}
	for _, thr := range []float64{0, 1, -0.5, 1.5} {
		if got := New(Policy{Threshold: thr}.Normalize(200)).CalibrationIndices(200); got != nil {
			t.Errorf("threshold %g must have no calibration split, got %v", thr, got)
		}
	}
}

// TestPlanEndpoints pins the bit-identity contract: at the endpoints
// the classifier is bypassed entirely — an untrained (or broken)
// scheduler still plans run-everything and model-only exactly.
func TestPlanEndpoints(t *testing.T) {
	pts := synthPoints(10, 1)
	cands := candidates(pts)
	cands[3].X = nil // a failed tier-0 model run

	for _, d := range New(Policy{Threshold: 0, Seed: 1}.Normalize(10)).Plan(cands) {
		if !d.Escalate || d.Reason != ReasonEscalateAll || d.Score != 0 {
			t.Fatalf("threshold 0: %+v, want unscored escalation", d)
		}
	}
	for i, d := range New(Policy{Threshold: 1, Seed: 1}.Normalize(10)).Plan(cands) {
		if i == 3 {
			if !d.Escalate || d.Reason != ReasonModelFailed {
				t.Fatalf("model-only endpoint must still escalate a failed model run: %+v", d)
			}
			continue
		}
		if d.Escalate || d.Reason != ReasonModelOnly {
			t.Fatalf("threshold 1: %+v, want model-only", d)
		}
	}
}

// TestPlanThresholds checks the scored interior: every decision is
// consistent with its own score and the threshold, scores lie strictly
// in (0,1), and raising the threshold only shrinks the escalated set
// (monotonicity of the frontier in the threshold).
func TestPlanThresholds(t *testing.T) {
	s, rest := trainedScheduler(t, 0.5, 200, 40, 3)
	cands := candidates(rest)
	escAt := func(thr float64) map[string]bool {
		s2 := New(Policy{Threshold: thr, Calibration: 40, Seed: 3}.Normalize(200))
		s2.model, s2.down, s2.downErr = s.model, s.down, s.downErr
		set := map[string]bool{}
		for _, d := range s2.Plan(cands) {
			if d.Reason == ReasonFlagged || d.Reason == ReasonCleared {
				if d.Score <= 0 || d.Score >= 1 {
					t.Fatalf("score %v outside (0,1) for %s", d.Score, d.Key)
				}
				if d.Escalate != (d.Score >= thr) {
					t.Fatalf("decision %+v inconsistent with threshold %g", d, thr)
				}
			}
			if d.Escalate {
				set[d.Key] = true
			}
		}
		return set
	}
	prev := escAt(0.1)
	for _, thr := range []float64{0.3, 0.5, 0.7, 0.9} {
		cur := escAt(thr)
		for k := range cur {
			if !prev[k] {
				t.Fatalf("trace %s escalates at threshold %g but not at a lower one", k, thr)
			}
		}
		prev = cur
	}
}

// TestPlanCountBudget checks the greedy count budget: only the
// MaxEscalations highest-scored flagged traces stay escalated, the
// rest demote to budget-count, and forced escalations are exempt.
func TestPlanCountBudget(t *testing.T) {
	s, rest := trainedScheduler(t, 0.2, 200, 40, 3)
	cands := candidates(rest)
	cands[0].X = nil // forced: model run failed
	free := s.Plan(cands)
	flagged := 0
	for _, d := range free {
		if d.Reason == ReasonFlagged {
			flagged++
		}
	}
	if flagged < 4 {
		t.Fatalf("need ≥ 4 flagged traces to exercise the budget, have %d", flagged)
	}

	budget := flagged / 2
	s2 := New(Policy{Threshold: 0.2, MaxEscalations: budget, Calibration: 40, Seed: 3}.Normalize(200))
	s2.model, s2.down, s2.downErr = s.model, s.down, s.downErr
	got := s2.Plan(cands)
	var kept, demoted []Decision
	for i, d := range got {
		switch d.Reason {
		case ReasonFlagged:
			kept = append(kept, d)
		case ReasonBudgetCount:
			if d.Escalate {
				t.Fatalf("demoted decision still escalates: %+v", d)
			}
			demoted = append(demoted, d)
		case ReasonModelFailed:
			if i != 0 || !d.Escalate {
				t.Fatalf("forced escalation was budget-demoted: %+v", d)
			}
		}
	}
	if len(kept) != budget || len(demoted) != flagged-budget {
		t.Fatalf("budget %d kept %d and demoted %d of %d flagged", budget, len(kept), len(demoted), flagged)
	}
	for _, k := range kept {
		for _, d := range demoted {
			if d.Score > k.Score {
				t.Fatalf("kept %s (%.3f) but demoted higher-scored %s (%.3f)", k.Key, k.Score, d.Key, d.Score)
			}
		}
	}
}

// TestTrainFailureDegrades pins the never-skip-silently posture for a
// training failure: too few observations marks the scheduler down and
// the whole plan escalates.
func TestTrainFailureDegrades(t *testing.T) {
	s := New(Policy{Threshold: 0.5, Calibration: 2, Seed: 1}.Normalize(10))
	pts := synthPoints(10, 1)
	var obs []classifier.Observation
	for _, p := range pts[:2] {
		obs = append(obs, classifier.Observation{ID: p.Key, X: p.X, DiffTotal: p.Diff})
	}
	if err := s.Train(obs); err == nil {
		t.Fatal("training on 2 observations should fail")
	}
	if down, err := s.Down(); !down || err == nil {
		t.Fatal("scheduler not marked down after training failure")
	}
	for _, d := range s.Plan(candidates(pts[2:])) {
		if !d.Escalate || d.Reason != ReasonClassifierDown {
			t.Fatalf("down scheduler planned %+v, want forced escalation", d)
		}
	}
}

// TestScoreFaultDegradesRetroactively arms the triage/score failpoint
// on one mid-plan scoring call and asserts the degradation is
// retroactive: candidates already cleared earlier in the same plan are
// flipped to forced escalation too.
func TestScoreFaultDegradesRetroactively(t *testing.T) {
	s, rest := trainedScheduler(t, 0.5, 200, 40, 3)
	cands := candidates(rest)

	// Break the 5th Score call of this plan.
	if err := faultinject.Arm(1, []faultinject.Rule{{
		Site: "triage/score", Action: faultinject.ActError,
		Hits: []uint64{5}, MaxFires: 1,
	}}); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()

	for _, d := range s.Plan(cands) {
		if !d.Escalate || d.Reason != ReasonClassifierDown {
			t.Fatalf("after a scoring fault every decision must force-escalate, got %+v", d)
		}
	}
	if down, err := s.Down(); !down || err == nil {
		t.Fatal("scoring fault did not mark the scheduler down")
	}
}

// TestApplyWallBudget checks the post-hoc wall budget mirror: the
// spend is greedy in descending score, demotions take the lowest
// scores, and a zero budget is a no-op.
func TestApplyWallBudget(t *testing.T) {
	pts := []Point{
		{Key: "a", ModelWall: time.Millisecond, SimWall: 10 * time.Millisecond},
		{Key: "b", ModelWall: time.Millisecond, SimWall: 10 * time.Millisecond},
		{Key: "c", ModelWall: time.Millisecond, SimWall: 10 * time.Millisecond},
		{Key: "d", ModelWall: time.Millisecond, SimWall: 10 * time.Millisecond},
	}
	mk := func() []Decision {
		return []Decision{
			{Key: "a", Score: 0.9, Escalate: true, Reason: ReasonFlagged},
			{Key: "b", Score: 0.3, Escalate: true, Reason: ReasonFlagged},
			{Key: "c", Score: 0.6, Escalate: true, Reason: ReasonFlagged},
			{Key: "d", Escalate: true, Reason: ReasonClassifierDown},
		}
	}
	ds := applyWallBudget(mk(), pts, 15*time.Millisecond)
	// 11ms spends under the 15ms budget on "a" (0.9); "c" (0.6) pushes
	// it to 22ms which exceeds it, so only "b" demotes.
	if !ds[0].Escalate || !ds[2].Escalate {
		t.Fatalf("high scores demoted: %+v", ds)
	}
	if ds[1].Escalate || ds[1].Reason != ReasonBudgetWall {
		t.Fatalf("lowest score not demoted: %+v", ds[1])
	}
	if !ds[3].Escalate || ds[3].Reason != ReasonClassifierDown {
		t.Fatalf("forced escalation demoted by wall budget: %+v", ds[3])
	}
	for i, d := range applyWallBudget(mk(), pts, 0) {
		if !d.Escalate {
			t.Fatalf("zero budget demoted %+v at %d", d, i)
		}
	}
}

// TestFrontierEndpoints checks the sweep's anchor rows: threshold 0
// escalates everything (zero accuracy loss, zero wall saved beyond
// rounding), threshold 1 escalates nothing (maximum saving, all DIFF
// mass missed), and interior rows land between them.
func TestFrontierEndpoints(t *testing.T) {
	pts := synthPoints(200, 3)
	rows, err := Frontier(pts, Policy{Seed: 3}, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	run, mid, mdl := rows[0], rows[1], rows[2]
	if run.Escalated != 200 || run.Calibration != 0 || run.MissedDiff != 0 || run.MissedNeedSim != 0 {
		t.Fatalf("run-everything row: %+v", run)
	}
	if run.WallSaved != 0 {
		t.Fatalf("run-everything saved %v wall", run.WallSaved)
	}
	if mdl.Escalated != 0 || mdl.Calibration != 0 || mdl.RescuedDiff != 0 {
		t.Fatalf("model-only row: %+v", mdl)
	}
	if mdl.WallSaved <= 0.9 {
		t.Fatalf("model-only saved only %v of the wall", mdl.WallSaved)
	}
	if mid.ClassifierDown {
		t.Fatalf("interior row degraded: %+v", mid)
	}
	if mid.WallSaved <= run.WallSaved || mid.WallSaved >= mdl.WallSaved {
		t.Fatalf("interior wall saving %v outside (%v, %v)", mid.WallSaved, run.WallSaved, mdl.WallSaved)
	}
	if mid.MissedDiff <= 0 || mid.MissedDiff >= mdl.MissedDiff {
		t.Fatalf("interior missed mass %v outside (0, %v)", mid.MissedDiff, mdl.MissedDiff)
	}
	if mid.Calibration == 0 {
		t.Fatal("interior row has no calibration split")
	}
}

// TestFrontierGolden pins the full rendered sweep over the synthetic
// population — the classifier's confusion-driven operating points,
// escalation rates, and wall savings — as a golden artifact.
// Regenerate deliberately with:
//
//	go test ./internal/triage/ -run TestFrontierGolden -update
func TestFrontierGolden(t *testing.T) {
	pts := synthPoints(200, 3)
	rows, err := Frontier(pts, Policy{Seed: 3}, []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1})
	if err != nil {
		t.Fatal(err)
	}
	got := RenderFrontier(rows)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFrontierPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenFrontierPath)
		return
	}
	want, err := os.ReadFile(goldenFrontierPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("frontier drifted from golden artifact:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
