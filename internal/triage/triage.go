// Package triage turns the paper's enhanced-MFACT classifier from a
// post-hoc analysis into the campaign's control loop: every trace is
// modeled with MFACT (tier 0, cheap), the classifier predicts from the
// modeling run's Table III features whether expensive simulation would
// disagree (DIFFtotal > 2%), and only flagged traces escalate to the
// simulation schemes — the cheap-tier-first, escalate-on-doubt shape
// that makes the 235-trace study affordable at volume.
//
// The scheduler is deterministic by construction: the calibration
// split is a fixed, evenly-spaced slice of the manifest, training is
// seeded (stats.MonteCarloCV), candidates are scored and planned in
// manifest order, and ties in the greedy budget spend break on the
// trace key. A campaign journals every decision (internal/core's
// checkpoint v3), so a killed-and-resumed campaign replays the exact
// same escalation set instead of re-deriving it.
//
// Failure posture: a broken classifier must never silently skip
// simulation. Any scoring or training failure — including faults
// injected at the triage/score failpoint — degrades the plan to
// escalate-always, and the degradation is counted in the frontier
// report.
package triage

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hpctradeoff/internal/classifier"
	"hpctradeoff/internal/faultinject"
)

// failScore is the classifier failpoint: hit once per Train call
// (label "train") and once per Score call (label = trace key), so a
// chaos schedule can break the classifier at an exact point and assert
// the scheduler degrades to escalate-always.
var failScore = faultinject.NewSite("triage/score")

// Policy configures the tiered triage scheduler. The zero value is not
// meaningful; use Normalize to apply defaults.
type Policy struct {
	// Threshold is the escalation cut on the classifier's predicted
	// probability that simulation would disagree: a trace escalates
	// when P ≥ Threshold. Threshold ≤ 0 escalates every trace (the
	// run-everything baseline, no classifier involved); Threshold ≥ 1
	// escalates none (the model-only baseline). The classifier's
	// probabilities are strictly inside (0, 1), so the endpoints are
	// exact, not approximate.
	Threshold float64 `json:"threshold"`
	// MaxEscalations caps how many traces may escalate beyond the
	// calibration split (0 = unlimited). The budget is spent greedily
	// by descending escalation score.
	MaxEscalations int `json:"max_escalations,omitempty"`
	// MaxWall is a wall-clock budget for the escalation phase, spent
	// greedily in descending-score order: once the cumulative wall time
	// of completed escalations reaches it, remaining flagged traces are
	// demoted to their tier-0 model result (0 = unlimited).
	MaxWall time.Duration `json:"max_wall,omitempty"`
	// Calibration is how many traces run the full scheme set to train
	// the classifier (the held-out calibration split). 0 applies the
	// default (max(16, n/10)); a value ≥ the manifest size runs
	// everything at full fidelity.
	Calibration int `json:"calibration,omitempty"`
	// CVRuns and MaxVars configure the training protocol
	// (stats.MonteCarloCV Monte-Carlo partitions, step-wise selection
	// cap). Zero applies the defaults (50 runs, 5 variables).
	CVRuns  int `json:"cv_runs,omitempty"`
	MaxVars int `json:"max_vars,omitempty"`
	// Seed seeds the Monte-Carlo cross-validation, making training —
	// and therefore every escalation decision — reproducible.
	Seed int64 `json:"seed,omitempty"`
}

// Defaults applied by Normalize.
const (
	defaultCVRuns        = 50
	defaultMaxVars       = 5
	defaultCalibrationLo = 16
)

// Normalize returns the policy with defaults applied for a manifest of
// n traces.
func (p Policy) Normalize(n int) Policy {
	if p.Calibration <= 0 {
		p.Calibration = defaultCalibrationLo
		if c := n / 10; c > p.Calibration {
			p.Calibration = c
		}
	}
	if p.Calibration > n {
		p.Calibration = n
	}
	if p.CVRuns <= 0 {
		p.CVRuns = defaultCVRuns
	}
	if p.MaxVars <= 0 {
		p.MaxVars = defaultMaxVars
	}
	return p
}

// Equal reports whether two policies would make identical decisions —
// the resume gate: a checkpoint journal written under one policy
// refuses to resume under a different one.
func (p Policy) Equal(q Policy) bool {
	return p.Threshold == q.Threshold &&
		p.MaxEscalations == q.MaxEscalations &&
		p.MaxWall == q.MaxWall &&
		p.Calibration == q.Calibration &&
		p.CVRuns == q.CVRuns &&
		p.MaxVars == q.MaxVars &&
		p.Seed == q.Seed
}

// String renders the policy for operator messages and resume errors.
func (p Policy) String() string {
	s := fmt.Sprintf("threshold=%g calibration=%d cvruns=%d maxvars=%d seed=%d",
		p.Threshold, p.Calibration, p.CVRuns, p.MaxVars, p.Seed)
	if p.MaxEscalations > 0 {
		s += fmt.Sprintf(" max-escalations=%d", p.MaxEscalations)
	}
	if p.MaxWall > 0 {
		s += fmt.Sprintf(" max-wall=%v", p.MaxWall)
	}
	return s
}

// Reason explains one triage decision; it is journaled with the
// decision so a resumed campaign and the frontier report can account
// for every trace.
type Reason string

// The decision reasons.
const (
	// ReasonEscalateAll marks threshold ≤ 0: every trace escalates,
	// no classifier involved.
	ReasonEscalateAll Reason = "threshold-all"
	// ReasonModelOnly marks threshold ≥ 1: no trace escalates.
	ReasonModelOnly Reason = "threshold-none"
	// ReasonCalibration marks a calibration-split trace: it runs the
	// full scheme set to train the classifier.
	ReasonCalibration Reason = "calibration"
	// ReasonFlagged marks a trace the classifier scored at or above the
	// threshold, within budget.
	ReasonFlagged Reason = "flagged"
	// ReasonCleared marks a trace the classifier scored below the
	// threshold: its tier-0 model result is final.
	ReasonCleared Reason = "cleared"
	// ReasonBudgetCount marks a flagged trace demoted because the
	// escalation-count budget was already spent on higher scores.
	ReasonBudgetCount Reason = "budget-count"
	// ReasonBudgetWall marks a flagged trace demoted at dispatch time
	// because the wall-clock budget ran out.
	ReasonBudgetWall Reason = "budget-wall"
	// ReasonClassifierDown marks an escalation forced by a training or
	// scoring failure: a broken classifier escalates everything rather
	// than silently trusting the model.
	ReasonClassifierDown Reason = "classifier-down"
	// ReasonModelFailed marks an escalation forced because the tier-0
	// modeling run itself failed, so there was nothing to score.
	ReasonModelFailed Reason = "model-failed"
)

// Decision is one trace's triage outcome. Decisions are journaled in
// the campaign checkpoint (v3) and replayed verbatim on resume.
type Decision struct {
	// Key is the trace's campaign key.
	Key string `json:"key"`
	// Score is the classifier's predicted probability that simulation
	// would disagree (0 when no classifier ran).
	Score float64 `json:"score,omitempty"`
	// Escalate is the verdict: true runs the full scheme set.
	Escalate bool `json:"escalate,omitempty"`
	// Reason explains the verdict.
	Reason Reason `json:"reason"`
}

// Candidate is one scored-or-scorable trace: its key and the Table III
// feature vector from its tier-0 modeling run (nil when the modeling
// run failed).
type Candidate struct {
	Key string
	X   []float64
}

// Scheduler makes escalation decisions for one campaign. It is not
// safe for concurrent use; the campaign plans on one goroutine.
type Scheduler struct {
	policy  Policy
	model   *classifier.Model
	down    bool
	downErr error
}

// New returns a scheduler for the normalized policy.
func New(p Policy) *Scheduler { return &Scheduler{policy: p} }

// Policy returns the scheduler's (normalized) policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// NeedsClassifier reports whether the policy's threshold is strictly
// inside (0, 1) — the only case where calibration and scoring run at
// all. At the endpoints the plan is decided by the threshold alone.
func (s *Scheduler) NeedsClassifier() bool {
	return s.policy.Threshold > 0 && s.policy.Threshold < 1
}

// CalibrationIndices returns the manifest indices of the calibration
// split for a manifest of n traces: Calibration evenly-spaced picks,
// deterministic in (n, policy), so every run and resume of a campaign
// derives the identical split. No classifier, no split.
func (s *Scheduler) CalibrationIndices(n int) []int {
	if !s.NeedsClassifier() || n == 0 {
		return nil
	}
	k := s.policy.Calibration
	if k >= n {
		k = n
	}
	out := make([]int, 0, k)
	seen := make(map[int]bool, k)
	for i := 0; i < k; i++ {
		// Evenly spaced over the manifest so the split covers the app ×
		// rank × machine axes rather than one prefix corner.
		idx := i * n / k
		for seen[idx] {
			idx++
		}
		seen[idx] = true
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Train fits the classifier on the calibration observations. A
// training failure (too few usable observations, non-finite features,
// an injected fault) does not fail the campaign: it marks the
// classifier down, and Plan escalates everything.
func (s *Scheduler) Train(obs []classifier.Observation) error {
	if !s.NeedsClassifier() {
		return nil
	}
	if err := failScore.FailLabel("train"); err != nil {
		s.down, s.downErr = true, err
		return err
	}
	m, err := classifier.Train(obs, s.policy.CVRuns, s.policy.MaxVars, s.policy.Seed)
	if err != nil {
		s.down, s.downErr = true, err
		return err
	}
	s.model = m
	return nil
}

// Down reports whether the classifier is unusable, and why.
func (s *Scheduler) Down() (bool, error) { return s.down || s.model == nil, s.downErr }

// Score returns the classifier's predicted probability that simulation
// would disagree for one full feature vector. Failures (including the
// triage/score failpoint) mark the classifier down.
func (s *Scheduler) Score(key string, x []float64) (float64, error) {
	if err := failScore.FailLabel(key); err != nil {
		s.down, s.downErr = true, err
		return 0, err
	}
	if s.model == nil {
		err := fmt.Errorf("triage: no trained classifier")
		s.down, s.downErr = true, err
		return 0, err
	}
	p := s.model.Score(x)
	if math.IsNaN(p) {
		err := fmt.Errorf("triage: classifier produced NaN score for %s", key)
		s.down, s.downErr = true, err
		return 0, err
	}
	return p, nil
}

// Plan scores every candidate and returns one decision per candidate,
// in the candidates' order. Flagged traces beyond the escalation-count
// budget — ranked by descending score, ties broken by key — are
// demoted to ReasonBudgetCount. The wall-clock budget is not applied
// here: it is spent at dispatch time by the campaign, which appends
// superseding ReasonBudgetWall decisions to the journal.
//
// If the threshold is at an endpoint the classifier is bypassed
// entirely. If training failed or any scoring call fails, the whole
// plan degrades to escalate-always (ReasonClassifierDown): a broken
// classifier must never silently skip simulation. Candidates with a
// nil feature vector (tier-0 modeling failed) always escalate.
func (s *Scheduler) Plan(cands []Candidate) []Decision {
	out := make([]Decision, len(cands))
	switch {
	case s.policy.Threshold <= 0:
		for i, c := range cands {
			out[i] = Decision{Key: c.Key, Escalate: true, Reason: ReasonEscalateAll}
		}
		return out
	case s.policy.Threshold >= 1:
		for i, c := range cands {
			if c.X == nil {
				// Even the model-only baseline cannot clear a trace whose
				// model run failed; it escalates so some scheme predicts it.
				out[i] = Decision{Key: c.Key, Escalate: true, Reason: ReasonModelFailed}
				continue
			}
			out[i] = Decision{Key: c.Key, Escalate: false, Reason: ReasonModelOnly}
		}
		return out
	}

	down, _ := s.Down()
	for i, c := range cands {
		if down {
			out[i] = Decision{Key: c.Key, Escalate: true, Reason: ReasonClassifierDown}
			continue
		}
		if c.X == nil {
			out[i] = Decision{Key: c.Key, Escalate: true, Reason: ReasonModelFailed}
			continue
		}
		p, err := s.Score(c.Key, c.X)
		if err != nil {
			// Degrade the entire plan, including candidates already
			// cleared in this loop: escalate-always, never skip-silently.
			down = true
			for j := 0; j <= i; j++ {
				out[j] = Decision{Key: cands[j].Key, Escalate: true, Reason: ReasonClassifierDown}
			}
			continue
		}
		if p >= s.policy.Threshold {
			out[i] = Decision{Key: c.Key, Score: p, Escalate: true, Reason: ReasonFlagged}
		} else {
			out[i] = Decision{Key: c.Key, Score: p, Escalate: false, Reason: ReasonCleared}
		}
	}

	// Greedy count budget: keep the MaxEscalations highest scores among
	// the classifier-flagged traces. Forced escalations (classifier
	// down, model failed) are not demotable — they have no model result
	// worth trusting.
	if s.policy.MaxEscalations > 0 {
		flagged := make([]int, 0, len(out))
		for i, d := range out {
			if d.Escalate && d.Reason == ReasonFlagged {
				flagged = append(flagged, i)
			}
		}
		if len(flagged) > s.policy.MaxEscalations {
			sort.Slice(flagged, func(a, b int) bool {
				da, db := out[flagged[a]], out[flagged[b]]
				if da.Score != db.Score {
					return da.Score > db.Score
				}
				return da.Key < db.Key
			})
			for _, i := range flagged[s.policy.MaxEscalations:] {
				out[i].Escalate = false
				out[i].Reason = ReasonBudgetCount
			}
		}
	}
	return out
}
