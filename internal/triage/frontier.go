package triage

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hpctradeoff/internal/classifier"
	"hpctradeoff/internal/metrics"
)

// The frontier report answers the question the tiered scheduler
// exists for: how much wall clock does triage save, and how much
// accuracy does it give up, as the threshold moves from run-everything
// (0) to model-only (1)? It is computed post hoc from a run-everything
// result set — there every trace carries both the model prediction and
// the simulation walls, so every point of the frontier is exact, not
// extrapolated.

// Point is one trace of a run-everything result set, reduced to what
// the frontier needs. Core builds these from TraceResults
// (core.TriagePoints); keeping the type here lets cmd/diffreport sweep
// without importing the campaign layer's internals.
type Point struct {
	// Key is the trace's campaign key.
	Key string
	// X is the full Table III feature vector (CL recomputed from the
	// stored sweep, as classifier training does).
	X []float64
	// Diff is the observed |T_sim/T_model − 1| the tier would rescue by
	// escalating (the study's packet-flow DIFFtotal; the largest sim
	// DIFF when packet-flow is absent).
	Diff float64
	// ModelWall and SimWall split the trace's cost: one MFACT pass vs
	// every simulation scheme's wall clock.
	ModelWall, SimWall time.Duration
}

// FrontierRow is one threshold's operating point.
type FrontierRow struct {
	Threshold float64
	// Total counts the swept traces; Calibration of them trained the
	// classifier (always run at full fidelity); Escalated counts the
	// escalations beyond calibration; Demoted counts flagged traces a
	// budget demoted.
	Total, Calibration, Escalated, Demoted int
	// EscalationRate is (Calibration + Escalated) / Total.
	EscalationRate float64
	// RescuedDiff is the Σ|DIFF| mass over traces that escalated (the
	// model error simulation corrected); MissedDiff the mass over
	// traces that did not (the error the tier accepts). MeanResidual is
	// MissedDiff / Total — the frontier's accuracy-loss axis.
	RescuedDiff, MissedDiff, MeanResidual float64
	// MissedNeedSim counts non-escalated traces whose DIFF exceeds the
	// 2% need-simulation threshold: the classifier's false negatives at
	// this operating point.
	MissedNeedSim int
	// WallFull is the run-everything cost; WallTiered what the tiered
	// pipeline spends (every trace's model pass, plus full runs for
	// calibration and escalated traces). WallSaved is their relative
	// difference — the frontier's cost axis.
	WallFull, WallTiered time.Duration
	WallSaved            float64
	// ClassifierDown marks a row produced under escalate-always
	// degradation (training or scoring failed).
	ClassifierDown bool
}

// Frontier sweeps the policy's scheduler over the given thresholds
// against a run-everything result set. Training happens once (the
// calibration split and seed come from the policy); each threshold
// then plans the remaining traces and the row accounts for the exact
// walls and DIFF mass the plan would have spent and rescued.
func Frontier(points []Point, p Policy, thresholds []float64) ([]FrontierRow, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("triage: no frontier points")
	}
	p = p.Normalize(len(points))

	// One trained model shared by every interior threshold. Calibration
	// indices depend only on (n, policy), not the threshold, so use a
	// probe scheduler with an interior threshold to derive them.
	probe := New(Policy{Threshold: 0.5, Calibration: p.Calibration,
		CVRuns: p.CVRuns, MaxVars: p.MaxVars, Seed: p.Seed})
	calIdx := probe.CalibrationIndices(len(points))
	isCal := make(map[int]bool, len(calIdx))
	var obs []classifier.Observation
	for _, i := range calIdx {
		isCal[i] = true
		if points[i].X != nil {
			obs = append(obs, classifier.Observation{ID: points[i].Key,
				X: points[i].X, DiffTotal: points[i].Diff})
		}
	}
	trainErr := probe.Train(obs)

	var rows []FrontierRow
	for _, thr := range thresholds {
		s := New(Policy{Threshold: thr, MaxEscalations: p.MaxEscalations, MaxWall: p.MaxWall,
			Calibration: p.Calibration, CVRuns: p.CVRuns, MaxVars: p.MaxVars, Seed: p.Seed})
		s.model, s.down, s.downErr = probe.model, probe.down, probe.downErr

		row := FrontierRow{Threshold: thr, Total: len(points)}
		if s.NeedsClassifier() {
			row.Calibration = len(calIdx)
			if down, _ := s.Down(); down {
				row.ClassifierDown = trainErr != nil || down
			}
		}

		var cands []Candidate
		var candPts []Point
		for i, pt := range points {
			if s.NeedsClassifier() && isCal[i] {
				// Calibration traces always run at full fidelity.
				row.WallTiered += pt.ModelWall + pt.SimWall
				row.RescuedDiff += pt.Diff
				continue
			}
			cands = append(cands, Candidate{Key: pt.Key, X: pt.X})
			candPts = append(candPts, pt)
		}
		decisions := s.Plan(cands)
		decisions = applyWallBudget(decisions, candPts, p.MaxWall)
		for i, d := range decisions {
			pt := candPts[i]
			if s.NeedsClassifier() {
				// The tiered pipeline models every non-calibration trace
				// first; escalation re-runs the full set on top.
				row.WallTiered += pt.ModelWall
			}
			if d.Escalate {
				row.Escalated++
				row.WallTiered += pt.ModelWall + pt.SimWall
				row.RescuedDiff += pt.Diff
			} else {
				if !s.NeedsClassifier() {
					// Model-only endpoint: the model pass is the only cost.
					row.WallTiered += pt.ModelWall
				}
				row.MissedDiff += pt.Diff
				if pt.Diff > classifier.NeedSimThreshold {
					row.MissedNeedSim++
				}
				if d.Reason == ReasonBudgetCount || d.Reason == ReasonBudgetWall {
					row.Demoted++
				}
			}
		}
		for _, pt := range points {
			row.WallFull += pt.ModelWall + pt.SimWall
		}
		row.EscalationRate = float64(row.Calibration+row.Escalated) / float64(row.Total)
		row.MeanResidual = row.MissedDiff / float64(row.Total)
		if row.WallFull > 0 {
			row.WallSaved = 1 - float64(row.WallTiered)/float64(row.WallFull)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// applyWallBudget demotes flagged escalations, lowest score first,
// until the planned escalation wall fits the budget — the post-hoc
// mirror of the campaign's greedy dispatch-time spend (which takes
// candidates in descending score order until the budget runs out).
func applyWallBudget(ds []Decision, pts []Point, budget time.Duration) []Decision {
	if budget <= 0 {
		return ds
	}
	order := make([]int, 0, len(ds))
	for i, d := range ds {
		if d.Escalate && (d.Reason == ReasonFlagged || d.Reason == ReasonEscalateAll) {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := ds[order[a]], ds[order[b]]
		if da.Score != db.Score {
			return da.Score > db.Score
		}
		return da.Key < db.Key
	})
	var spent time.Duration
	for _, i := range order {
		if spent >= budget {
			ds[i].Escalate = false
			ds[i].Reason = ReasonBudgetWall
			continue
		}
		spent += pts[i].ModelWall + pts[i].SimWall
	}
	return ds
}

// RenderFrontier formats the sweep as the study's frontier table.
func RenderFrontier(rows []FrontierRow) string {
	var b strings.Builder
	b.WriteString("Accuracy-vs-cost frontier (tiered triage vs run-everything)\n")
	var trows [][]string
	for _, r := range rows {
		note := ""
		if r.ClassifierDown {
			note = "classifier down: escalate-always"
		}
		trows = append(trows, []string{
			fmt.Sprintf("%.2f", r.Threshold),
			fmt.Sprintf("%d+%d/%d", r.Escalated, r.Calibration, r.Total),
			metrics.Pct(r.EscalationRate),
			metrics.Pct(r.MeanResidual),
			fmt.Sprint(r.MissedNeedSim),
			metrics.Pct(r.WallSaved),
			note,
		})
	}
	b.WriteString(metrics.Table(
		[]string{"Thresh", "Esc+cal", "EscRate", "AccLoss", "MissedNeedSim", "WallSaved", ""}, trows))
	return b.String()
}
