package des

import (
	"fmt"
	"sync/atomic"
	"testing"

	"hpctradeoff/internal/simtime"
)

// BenchmarkSequentialEngine measures raw event throughput of the
// event-heap engine (schedule + dispatch of a self-perpetuating chain).
func BenchmarkSequentialEngine(b *testing.B) {
	var e Engine
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(simtime.Nanosecond, step)
		}
	}
	b.ResetTimer()
	e.After(0, step)
	e.Run()
}

// BenchmarkSequentialEngineFanout measures heap behaviour under wide
// fan-out (many events resident at once).
func BenchmarkSequentialEngineFanout(b *testing.B) {
	var e Engine
	for i := 0; i < b.N; i++ {
		e.At(simtime.Time(i%1024), func() {})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkParallelCMB runs the PHOLD-style workload on the
// conservative null-message engine with varying LP counts — the
// ablation for the "conservative PDES engine" design choice. On a
// single-core host the parallel engine shows its synchronization
// overhead; with cores it shows speedup.
func BenchmarkParallelCMB(b *testing.B) {
	for _, lps := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("lps=%d", lps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				la := simtime.Microsecond
				p, err := NewParallel(lps, la)
				if err != nil {
					b.Fatal(err)
				}
				var s, c atomic.Int64
				const actors = 16
				ids := make([]ActorID, actors)
				as := make([]*pholdActor, actors)
				for j := range as {
					as[j] = &pholdActor{id: j, la: la, sum: &s, count: &c}
					ids[j] = p.AddActor(as[j], j%lps)
				}
				for _, a := range as {
					a.peers = ids
				}
				for j := 0; j < actors; j++ {
					p.ScheduleInitial(ids[j], 0, 500)
				}
				p.Run()
			}
		})
	}
}
