package des

import (
	"math/rand"
	"sort"
	"testing"

	"hpctradeoff/internal/simtime"
)

// TestQuadHeapPopsSortedOrder pushes a randomized workload (duplicate
// timestamps included) and checks pops come out in exact (at, seq)
// order — the determinism contract the engines document.
func TestQuadHeapPopsSortedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h quadHeap[schedEvent]
	var ref []schedEvent
	var seq uint64
	for round := 0; round < 50; round++ {
		// Interleave pushes with pops to exercise sift-down on partially
		// drained heaps, not just a single fill-then-drain pass.
		for i := 0; i < 100; i++ {
			seq++
			ev := schedEvent{at: simtime.Time(rng.Intn(64)), seq: seq}
			h.push(ev)
			ref = append(ref, ev)
		}
		for i := 0; i < 30 && h.len() > 0; i++ {
			got := h.pop()
			want := popRef(&ref)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("round %d pop %d: got (at=%v seq=%d), want (at=%v seq=%d)",
					round, i, got.at, got.seq, want.at, want.seq)
			}
		}
	}
	for h.len() > 0 {
		got := h.pop()
		want := popRef(&ref)
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("drain: got (at=%v seq=%d), want (at=%v seq=%d)", got.at, got.seq, want.at, want.seq)
		}
	}
	if len(ref) != 0 {
		t.Fatalf("heap drained with %d reference events left", len(ref))
	}
}

// popRef removes and returns the (at, seq)-minimum of the reference
// slice — an O(n) oracle the heap must agree with.
func popRef(ref *[]schedEvent) schedEvent {
	s := *ref
	m := 0
	for i := 1; i < len(s); i++ {
		if s[i].less(s[m]) {
			m = i
		}
	}
	out := s[m]
	s[m] = s[len(s)-1]
	*ref = s[:len(s)-1]
	return out
}

// TestQuadHeapMinMatchesPop checks min() previews exactly what pop()
// returns next.
func TestQuadHeapMinMatchesPop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h quadHeap[schedEvent]
	for i := 0; i < 500; i++ {
		h.push(schedEvent{at: simtime.Time(rng.Intn(100)), seq: uint64(i)})
	}
	var prev schedEvent
	for i := 0; h.len() > 0; i++ {
		top := *h.min()
		got := h.pop()
		if got.at != top.at || got.seq != top.seq {
			t.Fatalf("pop %d returned (at=%v seq=%d), min previewed (at=%v seq=%d)",
				i, got.at, got.seq, top.at, top.seq)
		}
		if i > 0 && got.less(prev) {
			t.Fatalf("pop %d out of order: (at=%v seq=%d) after (at=%v seq=%d)",
				i, got.at, got.seq, prev.at, prev.seq)
		}
		prev = got
	}
}

// TestEngineFIFOAmongTies schedules many callbacks at the same instant
// and checks they run in scheduling order — the documented tie-break.
func TestEngineFIFOAmongTies(t *testing.T) {
	var e Engine
	const n = 200
	var order []int
	for i := 0; i < n; i++ {
		i := i
		e.At(simtime.Microsecond, func() { order = append(order, i) })
	}
	e.Run()
	if len(order) != n {
		t.Fatalf("ran %d callbacks, want %d", len(order), n)
	}
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-timestamp callbacks ran out of scheduling order: %v", order[:10])
	}
}
