package des

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"hpctradeoff/internal/simtime"
)

// runaway returns an engine whose single event reschedules itself
// forever — the shape of a livelocked model.
func runaway() *Engine {
	e := &Engine{}
	var tick func()
	tick = func() { e.After(simtime.Microsecond, tick) }
	e.At(0, tick)
	return e
}

func TestEngineMaxEvents(t *testing.T) {
	e := runaway()
	e.SetBudget(Budget{MaxEvents: 1000})
	e.Run()
	if err := e.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Err = %v, want ErrBudgetExceeded", err)
	}
	if e.Steps() != 1000 {
		t.Errorf("steps = %d, want exactly 1000", e.Steps())
	}
}

func TestEngineMaxSimTime(t *testing.T) {
	e := runaway()
	e.SetBudget(Budget{MaxTime: 10 * simtime.Microsecond})
	e.Run()
	if err := e.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Err = %v, want ErrBudgetExceeded", err)
	}
	if e.Now() > 10*simtime.Microsecond {
		t.Errorf("clock ran to %v, past the cap", e.Now())
	}
}

func TestEngineDeadlineAlreadyPassed(t *testing.T) {
	e := runaway()
	e.SetBudget(Budget{Deadline: time.Now().Add(-time.Second)})
	e.Run()
	if err := e.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Err = %v, want ErrBudgetExceeded", err)
	}
	if e.Steps() != 0 {
		t.Errorf("steps = %d, want 0 (deadline was already passed)", e.Steps())
	}
}

func TestEngineStopFromWatchdog(t *testing.T) {
	e := runaway()
	go func() {
		time.Sleep(5 * time.Millisecond)
		e.Stop()
	}()
	done := make(chan struct{})
	go func() {
		e.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after Stop")
	}
	if err := e.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Err = %v, want ErrCanceled", err)
	}
}

func TestEngineNoBudgetDrainsNormally(t *testing.T) {
	e := &Engine{}
	n := 0
	for i := 0; i < 10; i++ {
		e.At(simtime.Time(i), func() { n++ })
	}
	e.Run()
	if e.Err() != nil || n != 10 {
		t.Fatalf("err = %v, executed = %d", e.Err(), n)
	}
}

// echoActor bounces every message straight back to its peer — an
// infinite cross-LP ping-pong.
type echoActor struct {
	peer *ActorID
}

func (a *echoActor) Handle(now simtime.Time, msg any, s Scheduler) {
	s.Schedule(*a.peer, simtime.Microsecond, msg)
}

func newPingPong(t *testing.T) *Parallel {
	t.Helper()
	p, err := NewParallel(2, simtime.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	var a0, a1 ActorID
	a0 = p.AddActor(&echoActor{peer: &a1}, 0)
	a1 = p.AddActor(&echoActor{peer: &a0}, 1)
	p.ScheduleInitial(a0, 0, "ball")
	return p
}

// settleGoroutines polls until the goroutine count returns to the
// baseline or the deadline expires, and returns the final count.
func settleGoroutines(baseline int) int {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline || time.Now().After(deadline) {
			return n
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestParallelMaxEventsNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	p := newPingPong(t)
	p.SetBudget(Budget{MaxEvents: 5000})
	done := make(chan struct{})
	go func() {
		p.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("budget-limited Run did not terminate")
	}
	if err := p.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Err = %v, want ErrBudgetExceeded", err)
	}
	if n := settleGoroutines(baseline); n > baseline {
		t.Errorf("goroutine leak: %d before Run, %d after", baseline, n)
	}
}

func TestParallelMaxSimTime(t *testing.T) {
	p := newPingPong(t)
	p.SetBudget(Budget{MaxTime: 50 * simtime.Microsecond})
	maxT := p.Run()
	if err := p.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Err = %v, want ErrBudgetExceeded", err)
	}
	if maxT > 50*simtime.Microsecond {
		t.Errorf("executed up to %v, past the cap", maxT)
	}
}

func TestParallelStop(t *testing.T) {
	baseline := runtime.NumGoroutine()
	p := newPingPong(t)
	go func() {
		time.Sleep(5 * time.Millisecond)
		p.Stop()
	}()
	done := make(chan struct{})
	go func() {
		p.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after Stop")
	}
	if err := p.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Err = %v, want ErrCanceled", err)
	}
	if n := settleGoroutines(baseline); n > baseline {
		t.Errorf("goroutine leak: %d before Run, %d after", baseline, n)
	}
}

func TestParallelCompleteRunHasNoError(t *testing.T) {
	p, err := NewParallel(2, simtime.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	id := p.AddActor(actorFunc(func(now simtime.Time, msg any, s Scheduler) { count++ }), 0)
	p.SetBudget(Budget{MaxEvents: 100})
	for i := 0; i < 5; i++ {
		p.ScheduleInitial(id, simtime.Time(i), i)
	}
	p.Run()
	if p.Err() != nil {
		t.Fatalf("Err = %v on a run well inside budget", p.Err())
	}
	if count != 5 {
		t.Errorf("executed %d events, want 5", count)
	}
}

// actorFunc adapts a function to the Actor interface.
type actorFunc func(now simtime.Time, msg any, s Scheduler)

func (f actorFunc) Handle(now simtime.Time, msg any, s Scheduler) { f(now, msg, s) }
