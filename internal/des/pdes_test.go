package des

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"hpctradeoff/internal/simtime"
)

// ringActor passes a token around a ring a fixed number of times,
// recording the time of every visit. The schedule is fully
// deterministic, so sequential and parallel engines must agree exactly.
type ringActor struct {
	id, n  int
	hop    simtime.Time
	visits *atomic.Int64
	last   simtime.Time
	next   ActorID
	left   *int // remaining hops, shared via pointer on same-LP test only
}

type token struct{ remaining int }

func (r *ringActor) Handle(now simtime.Time, msg any, s Scheduler) {
	tk := msg.(token)
	r.visits.Add(1)
	r.last = now
	if tk.remaining > 0 {
		s.Schedule(r.next, r.hop, token{tk.remaining - 1})
	}
}

func TestParallelRingMatchesSequentialTime(t *testing.T) {
	const (
		n    = 8
		hops = 1000
		hop  = 5 * simtime.Microsecond
	)
	for _, lps := range []int{1, 2, 4} {
		p, err := NewParallel(lps, hop)
		if err != nil {
			t.Fatal(err)
		}
		var visits atomic.Int64
		actors := make([]*ringActor, n)
		for i := range actors {
			actors[i] = &ringActor{id: i, n: n, hop: hop, visits: &visits}
		}
		ids := make([]ActorID, n)
		for i, a := range actors {
			ids[i] = p.AddActor(a, i%lps)
		}
		for i, a := range actors {
			a.next = ids[(i+1)%n]
		}
		p.ScheduleInitial(ids[0], 0, token{hops})
		end := p.Run()
		wantEnd := simtime.Time(hops) * hop
		if end != wantEnd {
			t.Errorf("lps=%d: end = %v, want %v", lps, end, wantEnd)
		}
		if got := visits.Load(); got != hops+1 {
			t.Errorf("lps=%d: visits = %d, want %d", lps, got, hops+1)
		}
		if p.Steps() != hops+1 {
			t.Errorf("lps=%d: steps = %d, want %d", lps, p.Steps(), hops+1)
		}
	}
}

// pholdActor implements a PHOLD-like workload: every event spawns one
// successor at a pseudorandom (but deterministic, state-derived) future
// time on a pseudorandom actor, for a fixed per-actor budget. The total
// event count and the global sum of event times are engine-invariant.
type pholdActor struct {
	id    int
	peers []ActorID
	la    simtime.Time
	sum   *atomic.Int64
	count *atomic.Int64
}

func (a *pholdActor) Handle(now simtime.Time, msg any, s Scheduler) {
	budget := msg.(int)
	a.sum.Add(int64(now))
	a.count.Add(1)
	if budget <= 0 {
		return
	}
	// Deterministic pseudo-random successor derived from (id, budget).
	h := uint64(a.id*2654435761) ^ uint64(budget)*0x9e3779b97f4a7c15
	next := a.peers[h%uint64(len(a.peers))]
	delay := a.la + simtime.Time(h%1000)*simtime.Nanosecond
	s.Schedule(next, delay, budget-1)
}

func runPhold(t *testing.T, lps int) (count, sum int64) {
	t.Helper()
	const n = 16
	la := simtime.Microsecond
	p, err := NewParallel(lps, la)
	if err != nil {
		t.Fatal(err)
	}
	var s, c atomic.Int64
	ids := make([]ActorID, n)
	actors := make([]*pholdActor, n)
	for i := range actors {
		actors[i] = &pholdActor{id: i, la: la, sum: &s, count: &c}
		ids[i] = p.AddActor(actors[i], i%lps)
	}
	for _, a := range actors {
		a.peers = ids
	}
	for i := 0; i < n; i++ {
		p.ScheduleInitial(ids[i], simtime.Time(i)*simtime.Nanosecond, 200)
	}
	p.Run()
	return c.Load(), s.Load()
}

func TestParallelPholdInvariants(t *testing.T) {
	c1, s1 := runPhold(t, 1)
	if c1 != 16*201 {
		t.Fatalf("count = %d, want %d", c1, 16*201)
	}
	for _, lps := range []int{2, 3, 8} {
		c, s := runPhold(t, lps)
		if c != c1 || s != s1 {
			t.Errorf("lps=%d: (count,sum) = (%d,%d), want (%d,%d)", lps, c, s, c1, s1)
		}
	}
}

// historyActor records a rolling hash of its own execution history
// (time, payload). Each actor is owned by one LP, so the hash needs no
// synchronization; comparing per-actor hashes across runs checks that
// the engine executes the exact same event sequence every time.
type historyActor struct {
	id    int
	peers []ActorID
	la    simtime.Time
	hash  uint64
}

func (a *historyActor) Handle(now simtime.Time, msg any, s Scheduler) {
	budget := msg.(int)
	a.hash = a.hash*0x100000001b3 ^ uint64(now)
	a.hash = a.hash*0x100000001b3 ^ uint64(budget)
	if budget <= 0 {
		return
	}
	h := uint64(a.id*2654435761) ^ uint64(budget)*0x9e3779b97f4a7c15
	next := a.peers[h%uint64(len(a.peers))]
	// Coarse delay quantization forces frequent equal-timestamp events
	// from different LPs, exercising the deterministic cross-LP
	// tie-break rather than letting unique timestamps hide it.
	delay := a.la + simtime.Time(h%4)*simtime.Microsecond
	s.Schedule(next, delay, budget-1)
}

func runHistory(t *testing.T, lps int) []uint64 {
	t.Helper()
	const n = 12
	la := simtime.Microsecond
	p, err := NewParallel(lps, la)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]ActorID, n)
	actors := make([]*historyActor, n)
	for i := range actors {
		actors[i] = &historyActor{id: i, la: la}
		ids[i] = p.AddActor(actors[i], i%lps)
	}
	for _, a := range actors {
		a.peers = ids
	}
	for i := 0; i < n; i++ {
		p.ScheduleInitial(ids[i], 0, 150)
	}
	p.Run()
	out := make([]uint64, n)
	for i, a := range actors {
		out[i] = a.hash
	}
	return out
}

// TestParallelRunToRunDeterminism runs an identical tie-heavy workload
// repeatedly: at a fixed LP count, every actor must see the identical
// event history on every run. This is the guarantee the (timestamp,
// scheduling LP, sender sequence) tie-break buys: CMB output
// independent of goroutine interleaving and channel arrival timing.
// (Across different LP counts the tie order may legitimately differ —
// the key includes the scheduling LP — which is why the contract is
// per-configuration; TestParallelPholdInvariants covers the
// permutation-invariant quantities across partitionings.)
func TestParallelRunToRunDeterminism(t *testing.T) {
	for _, lps := range []int{1, 2, 4} {
		want := runHistory(t, lps)
		for run := 0; run < 3; run++ {
			got := runHistory(t, lps)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("lps=%d run %d: actor %d history hash %#x, want %#x",
						lps, run, i, got[i], want[i])
				}
			}
		}
	}
}

// bombActor panics (by scheduling with negative delay — a causality
// bug) when its countdown payload reaches zero; otherwise it forwards.
type bombActor struct {
	next ActorID
	la   simtime.Time
}

func (a *bombActor) Handle(now simtime.Time, msg any, s Scheduler) {
	budget := msg.(int)
	if budget <= 0 {
		s.Schedule(a.next, -simtime.Microsecond, nil) // boom
		return
	}
	s.Schedule(a.next, a.la, budget-1)
}

// TestParallelLPPanicPropagates checks the panic-isolation contract:
// a panic inside an LP goroutine must not kill the process from an
// unrecoverable worker goroutine — Run re-raises it on the caller's
// goroutine as *LPPanic (original value + LP + stack), after shutting
// the other LPs down cleanly (the test returning at all proves no
// deadlock; -race covers the handshake).
func TestParallelLPPanicPropagates(t *testing.T) {
	la := simtime.Microsecond
	p, err := NewParallel(2, la)
	if err != nil {
		t.Fatal(err)
	}
	a0 := &bombActor{la: la}
	a1 := &bombActor{la: la}
	id0 := p.AddActor(a0, 0)
	id1 := p.AddActor(a1, 1)
	a0.next, a1.next = id1, id0
	p.ScheduleInitial(id0, 0, 9) // bomb goes off on LP 1 (odd countdown)

	var rec any
	func() {
		defer func() { rec = recover() }()
		p.Run()
	}()
	lpp, ok := rec.(*LPPanic)
	if !ok {
		t.Fatalf("Run recovered %T (%v), want *LPPanic", rec, rec)
	}
	if lpp.LP != 1 {
		t.Errorf("panic attributed to LP %d, want 1", lpp.LP)
	}
	if !strings.Contains(fmt.Sprint(lpp.Value), "negative delay") {
		t.Errorf("panic value %v does not mention the causality bug", lpp.Value)
	}
	if len(lpp.Stack) == 0 {
		t.Error("LPPanic carries no stack")
	}
	if !strings.Contains(lpp.Error(), "LP 1") {
		t.Errorf("Error() = %q lacks LP attribution", lpp.Error())
	}
}

func TestParallelEmptyRun(t *testing.T) {
	p, err := NewParallel(4, simtime.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	var s atomic.Int64
	for i := 0; i < 4; i++ {
		p.AddActor(&pholdActor{id: i, la: simtime.Microsecond, sum: &s, count: &s}, i)
	}
	if end := p.Run(); end != 0 {
		t.Errorf("empty run end = %v, want 0", end)
	}
}

func TestParallelRejectsBadConfig(t *testing.T) {
	if _, err := NewParallel(0, simtime.Microsecond); err == nil {
		t.Error("0 LPs accepted")
	}
	if _, err := NewParallel(2, 0); err == nil {
		t.Error("zero lookahead accepted")
	}
}

type panicProbe struct {
	got chan any
	to  ActorID
	la  simtime.Time
}

func (a *panicProbe) Handle(now simtime.Time, msg any, s Scheduler) {
	defer func() { a.got <- recover() }()
	s.Schedule(a.to, a.la/2, nil) // below lookahead: must panic
}

func TestParallelLookaheadViolationPanics(t *testing.T) {
	la := simtime.Microsecond
	p, err := NewParallel(2, la)
	if err != nil {
		t.Fatal(err)
	}
	probe := &panicProbe{got: make(chan any, 1), la: la}
	id0 := p.AddActor(probe, 0)
	id1 := p.AddActor(&pholdActor{}, 1)
	probe.to = id1
	p.ScheduleInitial(id0, 0, nil)
	p.Run()
	if r := <-probe.got; r == nil {
		t.Error("cross-LP schedule below lookahead did not panic")
	}
}

func TestParallelNullMessageAccounting(t *testing.T) {
	// A 2-LP ping-pong forces null exchanges; the counter must be > 0.
	const hops = 50
	hop := simtime.Microsecond
	p, err := NewParallel(2, hop)
	if err != nil {
		t.Fatal(err)
	}
	var visits atomic.Int64
	a0 := &ringActor{id: 0, hop: hop, visits: &visits}
	a1 := &ringActor{id: 1, hop: hop, visits: &visits}
	id0 := p.AddActor(a0, 0)
	id1 := p.AddActor(a1, 1)
	a0.next, a1.next = id1, id0
	p.ScheduleInitial(id0, 0, token{hops})
	p.Run()
	if visits.Load() != hops+1 {
		t.Fatalf("visits = %d", visits.Load())
	}
	if p.NullMessages() == 0 {
		t.Error("expected null messages in a 2-LP ping-pong")
	}
}
