package des

import (
	"testing"

	"hpctradeoff/internal/simtime"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	// Same-time events run in scheduling order.
	e.At(20, func() { got = append(got, 22) })
	end := e.Run()
	if end != 30 {
		t.Errorf("final time = %v, want 30", end)
	}
	want := []int{1, 2, 22, 3}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Steps() != 4 {
		t.Errorf("Steps = %d, want 4", e.Steps())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	var fired []simtime.Time
	e.At(5, func() {
		e.After(10, func() { fired = append(fired, e.Now()) })
		e.At(7, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 7 || fired[1] != 15 {
		t.Errorf("fired = %v, want [7 15]", fired)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(simtime.Time(i*10), func() { count++ })
	}
	n := e.RunUntil(50)
	if n != 5 || count != 5 {
		t.Errorf("RunUntil executed %d (count %d), want 5", n, count)
	}
	if e.Now() != 50 {
		t.Errorf("Now = %v, want 50", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("Pending = %d, want 5", e.Pending())
	}
	e.Run()
	if count != 10 {
		t.Errorf("count = %d, want 10 after Run", count)
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	var e Engine
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Errorf("Now = %v, want 1000", e.Now())
	}
}
