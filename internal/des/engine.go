// Package des provides the discrete-event simulation engines the
// network simulators run on: a sequential event-heap engine (the
// workhorse every network model in internal/simnet uses) and a
// conservative parallel engine using the Chandy–Misra–Bryant
// null-message protocol over goroutines (the engine family SST/Macro's
// PDES core belongs to), exposed through an actor/message API.
package des

import (
	"container/heap"

	"hpctradeoff/internal/simtime"
)

// Engine is a sequential discrete-event engine. Events are closures
// executed in nondecreasing timestamp order; ties are broken by
// scheduling order, which makes runs fully deterministic.
//
// The zero value is ready to use.
type Engine struct {
	now   simtime.Time
	queue eventHeap
	seq   uint64
	steps uint64
}

type schedEvent struct {
	at  simtime.Time
	seq uint64
	fn  func()
}

type eventHeap []schedEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(schedEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = schedEvent{}
	*h = old[:n-1]
	return ev
}

// Now returns the current simulation time.
func (e *Engine) Now() simtime.Time { return e.now }

// Steps returns the number of events executed so far. The paper's
// complexity comparisons are in terms of event counts; Steps is the
// simulators' cost metric alongside wall-clock time.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled, not-yet-executed events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it indicates a causality bug in the model.
func (e *Engine) At(t simtime.Time, fn func()) {
	if t < e.now {
		panic("des: scheduling into the past")
	}
	e.seq++
	heap.Push(&e.queue, schedEvent{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d simtime.Time, fn func()) { e.At(e.now+d, fn) }

// Run executes events until the queue is empty and returns the final
// simulation time.
func (e *Engine) Run() simtime.Time {
	for len(e.queue) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps ≤ limit and then sets the
// clock to limit (if it has not already passed it). It returns the
// number of events executed.
func (e *Engine) RunUntil(limit simtime.Time) uint64 {
	start := e.steps
	for len(e.queue) > 0 && e.queue[0].at <= limit {
		e.step()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.steps - start
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(schedEvent)
	e.now = ev.at
	e.steps++
	ev.fn()
}
