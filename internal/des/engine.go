// Package des provides the discrete-event simulation engines the
// network simulators run on: a sequential event-heap engine (the
// workhorse every network model in internal/simnet uses) and a
// conservative parallel engine using the Chandy–Misra–Bryant
// null-message protocol over goroutines (the engine family SST/Macro's
// PDES core belongs to), exposed through an actor/message API.
package des

import (
	"fmt"
	"sync/atomic"
	"time"

	"hpctradeoff/internal/faultinject"
	"hpctradeoff/internal/simtime"
)

// failStep is the event-loop failpoint, hit once per executed event in
// both engines. An injected stall sleeps inside the loop — the shape
// of a livelocked model that only a wall-clock Deadline can catch, so
// the budget watchdog is exercisable deterministically — and an
// injected error halts the run through the cooperative-cancellation
// path (as Stop would). Disarmed it costs one atomic load, alongside
// the stop-flag load the loop already pays.
var failStep = faultinject.NewSite("des/step")

// Engine is a sequential discrete-event engine. Events are closures
// executed in nondecreasing timestamp order; ties are broken by
// scheduling order, which makes runs fully deterministic.
//
// The zero value is ready to use.
type Engine struct {
	now   simtime.Time
	queue quadHeap[schedEvent]
	seq   uint64
	steps uint64

	budget  Budget
	limited bool
	stopReq atomic.Bool
	err     error
}

type schedEvent struct {
	at  simtime.Time
	seq uint64
	fn  func()
}

// less orders events by (timestamp, scheduling sequence); seq is
// unique, so the order is total — the determinism contract.
func (e schedEvent) less(o schedEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Now returns the current simulation time.
func (e *Engine) Now() simtime.Time { return e.now }

// Steps returns the number of events executed so far. The paper's
// complexity comparisons are in terms of event counts; Steps is the
// simulators' cost metric alongside wall-clock time.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled, not-yet-executed events.
func (e *Engine) Pending() int { return e.queue.len() }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it indicates a causality bug in the model. The
// campaign layer's panic isolation converts such a panic into a
// classified TraceError instead of killing the process.
func (e *Engine) At(t simtime.Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling into the past (t=%v < now=%v)", t, e.now))
	}
	e.seq++
	e.queue.push(schedEvent{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d simtime.Time, fn func()) { e.At(e.now+d, fn) }

// SetBudget bounds the run. It may be called before Run or between
// RunUntil slices; a zero Budget removes all limits.
func (e *Engine) SetBudget(b Budget) {
	e.budget = b
	e.limited = b.limited()
}

// Stop requests cooperative cancellation: the engine finishes the
// event in flight and returns from Run with Err() wrapping
// ErrCanceled. Stop is the one Engine method safe to call from another
// goroutine (a wall-clock watchdog, a signal handler).
func (e *Engine) Stop() { e.stopReq.Store(true) }

// Err reports why the last Run (or RunUntil) stopped early: an error
// wrapping ErrBudgetExceeded or ErrCanceled, or nil if the queue
// drained normally.
func (e *Engine) Err() error { return e.err }

// Run executes events until the queue is empty — or until the budget
// is exhausted or Stop is called, in which case Err reports the typed
// reason — and returns the final simulation time.
func (e *Engine) Run() simtime.Time {
	for e.queue.len() > 0 && !e.halted() {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps ≤ limit and then sets the
// clock to limit (if it has not already passed it). It returns the
// number of events executed. Budget and Stop apply as in Run.
func (e *Engine) RunUntil(limit simtime.Time) uint64 {
	start := e.steps
	for e.queue.len() > 0 && e.queue.min().at <= limit && !e.halted() {
		e.step()
	}
	if e.now < limit && e.err == nil {
		e.now = limit
	}
	return e.steps - start
}

// halted checks the stop flag and the budget, recording the typed
// error on the first limit hit. Once halted, the engine stays halted.
func (e *Engine) halted() bool {
	if e.err != nil {
		return true
	}
	if e.stopReq.Load() {
		e.err = fmt.Errorf("%w after %d events at t=%v", ErrCanceled, e.steps, e.now)
		return true
	}
	if err := failStep.Fail(); err != nil {
		e.err = fmt.Errorf("%w after %d events at t=%v: %v", ErrCanceled, e.steps, e.now, err)
		return true
	}
	if !e.limited {
		return false
	}
	b := e.budget
	switch {
	case b.MaxEvents > 0 && e.steps >= b.MaxEvents:
		e.err = fmt.Errorf("%w: %d events executed (cap %d)", ErrBudgetExceeded, e.steps, b.MaxEvents)
	case b.MaxTime > 0 && e.queue.min().at > b.MaxTime:
		e.err = fmt.Errorf("%w: next event at %v is past the simulated-time cap %v", ErrBudgetExceeded, e.queue.min().at, b.MaxTime)
	case !b.Deadline.IsZero() && e.steps&(deadlineCheckInterval-1) == 0 && time.Now().After(b.Deadline):
		e.err = fmt.Errorf("%w: wall-clock deadline passed after %d events", ErrBudgetExceeded, e.steps)
	default:
		return false
	}
	return true
}

func (e *Engine) step() {
	ev := e.queue.pop()
	e.now = ev.at
	e.steps++
	ev.fn()
}
