package des

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hpctradeoff/internal/simtime"
)

// ActorID identifies an actor registered with a Parallel engine.
type ActorID int32

// Scheduler is the interface handlers use to schedule follow-up events.
// Cross-LP (cross-partition) events must be scheduled at least one
// lookahead into the future; that bound is what makes conservative
// synchronization possible.
type Scheduler interface {
	// Now returns the executing LP's local clock.
	Now() simtime.Time
	// Schedule delivers msg to actor 'to' at time Now()+delay. delay
	// must be ≥ 0 for a local actor and ≥ the engine lookahead for an
	// actor on another LP.
	Schedule(to ActorID, delay simtime.Time, msg any)
}

// Actor is a unit of simulation state owned by exactly one logical
// process. Handle is invoked in nondecreasing timestamp order with
// respect to the owning LP's clock, never concurrently with another
// handler on the same LP.
type Actor interface {
	Handle(now simtime.Time, msg any, s Scheduler)
}

// Parallel is a conservative parallel discrete-event engine using the
// Chandy–Misra–Bryant null-message protocol. Actors are partitioned
// over logical processes (one goroutine each); events between LPs are
// carried by channels whose per-sender timestamp monotonicity, plus a
// positive lookahead, yields each LP a safe lower bound on future
// input.
type Parallel struct {
	lookahead simtime.Time
	lps       []*lp
	owner     []int32 // actor -> LP index
	actors    []Actor
	started   bool

	totalSteps uint64

	// outstanding counts events that exist anywhere (queued locally or
	// in flight between LPs). When it reaches zero the simulation is
	// globally quiescent: no handler is running (a running handler's
	// own event has not been decremented yet) so no new event can ever
	// be created, and every LP can stop.
	outstanding atomic.Int64
	quiescent   atomic.Bool

	budget    Budget
	limited   bool
	execCount atomic.Uint64
	haltClaim atomic.Bool  // first-wins claim on recording the stop reason
	stopped   atomic.Bool  // the flag LPs poll; set after stopErr is stored
	stopErr   atomic.Value // error: why the run was halted early

	// panicClaim and lpPanic capture the first panic recovered in an LP
	// goroutine; Run re-raises it on the caller's goroutine so an
	// actor's causality bug (e.g. scheduling into the past) reaches the
	// campaign layer's panic isolation instead of killing the process
	// from an unrecoverable worker goroutine.
	panicClaim atomic.Bool
	lpPanic    *LPPanic
}

// LPPanic is the value Parallel.Run re-panics with after recovering a
// panic inside a logical-process goroutine. It preserves the original
// panic value and the panicking LP's stack so campaign-level recovery
// can classify and report the causality bug.
type LPPanic struct {
	LP    int32
	Value any
	Stack []byte
}

// Error makes an LPPanic readable when printed by a recover site.
func (p *LPPanic) Error() string {
	return fmt.Sprintf("des: panic on LP %d: %v\n%s", p.LP, p.Value, p.Stack)
}

// NewParallel creates an engine with numLPs logical processes and the
// given lookahead (the minimum cross-LP scheduling delay; it must be
// positive — in a network simulation it is the minimum link latency).
func NewParallel(numLPs int, lookahead simtime.Time) (*Parallel, error) {
	if numLPs < 1 {
		return nil, fmt.Errorf("des: need ≥1 LP, got %d", numLPs)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("des: lookahead must be positive, got %v", lookahead)
	}
	p := &Parallel{lookahead: lookahead}
	p.lps = make([]*lp, numLPs)
	for i := range p.lps {
		p.lps[i] = &lp{
			engine: p,
			index:  int32(i),
			inbox:  make(chan pmsg, 4096),
		}
	}
	return p, nil
}

// AddActor registers a on logical process lpIndex and returns its ID.
// All actors must be added before Run.
func (p *Parallel) AddActor(a Actor, lpIndex int) ActorID {
	if p.started {
		panic("des: AddActor after Run")
	}
	if lpIndex < 0 || lpIndex >= len(p.lps) {
		panic(fmt.Sprintf("des: LP index %d out of range", lpIndex))
	}
	id := ActorID(len(p.actors))
	p.actors = append(p.actors, a)
	p.owner = append(p.owner, int32(lpIndex))
	return id
}

// ScheduleInitial enqueues an event before the run starts.
func (p *Parallel) ScheduleInitial(to ActorID, at simtime.Time, msg any) {
	if p.started {
		panic("des: ScheduleInitial after Run")
	}
	if at < 0 {
		panic("des: negative initial time")
	}
	l := p.lps[p.owner[to]]
	p.outstanding.Add(1)
	l.seq++
	l.queue.push(schedPMsg{at: at, from: l.index, seq: l.seq, to: to, data: msg})
}

// Run executes every scheduled event and returns the maximum timestamp
// executed. The run terminates when the system is globally quiescent
// (no queued or in-flight events remain). Run may be called once.
func (p *Parallel) Run() simtime.Time {
	if p.started {
		panic("des: Run called twice")
	}
	p.started = true
	if p.outstanding.Load() == 0 {
		p.quiescent.Store(true)
	}
	var wg sync.WaitGroup
	for _, l := range p.lps {
		l.initClocks(len(p.lps))
		wg.Add(1)
		go func(l *lp) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if p.panicClaim.CompareAndSwap(false, true) {
						p.lpPanic = &LPPanic{LP: l.index, Value: rec, Stack: debug.Stack()}
					}
					p.halt(fmt.Errorf("des: LP %d panicked: %v", l.index, rec))
					// Best-effort shutdown handshake so peers blocked on
					// this LP's guarantees or inbox can still terminate.
					l.shutdown()
				}
			}()
			l.run()
		}(l)
	}
	wg.Wait()
	var maxT simtime.Time
	var steps uint64
	for _, l := range p.lps {
		maxT = simtime.Max(maxT, l.lastExec)
		steps += l.steps
	}
	p.totalSteps = steps
	if p.lpPanic != nil {
		panic(p.lpPanic)
	}
	return maxT
}

// Steps returns the total number of events executed across all LPs
// (valid after Run returns).
func (p *Parallel) Steps() uint64 { return p.totalSteps }

// SetBudget bounds the run. It must be called before Run.
func (p *Parallel) SetBudget(b Budget) {
	if p.started {
		panic("des: SetBudget after Run")
	}
	p.budget = b
	p.limited = b.limited()
}

// Stop requests cooperative cancellation from any goroutine. Every LP
// stops at its next scheduling boundary, the usual shutdown handshake
// drains in-flight messages, and Run returns with Err() wrapping
// ErrCanceled.
func (p *Parallel) Stop() { p.halt(ErrCanceled) }

// Err reports why Run stopped early: an error wrapping
// ErrBudgetExceeded or ErrCanceled, or nil for normal quiescence.
func (p *Parallel) Err() error {
	if v := p.stopErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// halt records the first stop reason and wakes LPs blocked on empty
// inboxes. The sends are best-effort and non-blocking: a full inbox
// means the LP has input to absorb and will observe the stop flag at
// its next loop boundary anyway.
func (p *Parallel) halt(err error) {
	if !p.haltClaim.CompareAndSwap(false, true) {
		return
	}
	p.stopErr.Store(err)
	p.stopped.Store(true)
	for _, l := range p.lps {
		select {
		case l.inbox <- pmsg{to: wakeupMsg}:
		default:
		}
	}
}

// NullMessages returns the total number of null (synchronization-only)
// messages exchanged, a cost metric for the CMB protocol (valid after
// Run returns).
func (p *Parallel) NullMessages() uint64 {
	var n uint64
	for _, l := range p.lps {
		n += l.nulls
	}
	return n
}

// LPStats is one logical process's execution counters — the raw data
// for CMB scaling studies (events per LP show partition balance, nulls
// per LP show where synchronization cost concentrates).
type LPStats struct {
	// Steps is the number of real events this LP executed.
	Steps uint64
	// Nulls is the number of null messages this LP broadcast.
	Nulls uint64
}

// PerLP returns each logical process's counters, indexed by LP (valid
// after Run returns).
func (p *Parallel) PerLP() []LPStats {
	out := make([]LPStats, len(p.lps))
	for i, l := range p.lps {
		out[i] = LPStats{Steps: l.steps, Nulls: l.nulls}
	}
	return out
}

// pmsg is a cross-LP message: a real event (to ≥ 0), a null/done
// guarantee (to == nullMsg), or a quiescence wakeup (to == wakeupMsg).
// 'at' is the event time or the sender's guarantee that it will send
// nothing earlier. seq is the sender's monotone scheduling counter; it
// makes the receiver's tie-break deterministic (see schedPMsg.less).
type pmsg struct {
	from int32
	at   simtime.Time
	seq  uint64
	to   ActorID
	data any
}

const (
	nullMsg   ActorID = -1
	wakeupMsg ActorID = -2
)

type schedPMsg struct {
	at   simtime.Time
	from int32
	seq  uint64
	to   ActorID
	data any
}

// less orders an LP's pending events by (timestamp, scheduling LP,
// sender sequence). The sender stamps seq when it schedules, so the
// order is independent of channel arrival timing — equal-timestamp
// events from different LPs execute in the same order on every run,
// which makes the CMB engine deterministic, not just correct.
func (e schedPMsg) less(o schedPMsg) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.from != o.from {
		return e.from < o.from
	}
	return e.seq < o.seq
}

type lp struct {
	engine *Parallel
	index  int32
	inbox  chan pmsg
	queue  quadHeap[schedPMsg]
	seq    uint64

	now      simtime.Time
	lastExec simtime.Time
	steps    uint64
	nulls    uint64

	inClock   []simtime.Time // per-sender guarantee
	lastNull  simtime.Time   // last guarantee we broadcast
	doneFrom  int            // peers that sent their final guarantee
	finalSent bool           // final Forever guarantee already broadcast
}

func (l *lp) initClocks(numLPs int) {
	l.inClock = make([]simtime.Time, numLPs)
	l.lastNull = -1
	for i := range l.inClock {
		if int32(i) == l.index {
			l.inClock[i] = simtime.Forever
		}
	}
}

// Now implements Scheduler.
func (l *lp) Now() simtime.Time { return l.now }

// Schedule implements Scheduler.
func (l *lp) Schedule(to ActorID, delay simtime.Time, msg any) {
	if delay < 0 {
		panic("des: negative delay")
	}
	at := l.now + delay
	target := l.engine.owner[to]
	if target == l.index {
		l.engine.outstanding.Add(1)
		l.seq++
		l.queue.push(schedPMsg{at: at, from: l.index, seq: l.seq, to: to, data: msg})
		return
	}
	if delay < l.engine.lookahead {
		panic(fmt.Sprintf("des: cross-LP delay %v below lookahead %v", delay, l.engine.lookahead))
	}
	l.engine.outstanding.Add(1)
	l.seq++
	l.send(l.engine.lps[target], pmsg{from: l.index, at: at, seq: l.seq, to: to, data: msg})
}

// retire marks one executed event and triggers global termination when
// it was the last one anywhere.
func (l *lp) retire() {
	if l.engine.outstanding.Add(-1) == 0 {
		l.engine.quiescent.Store(true)
		for i, peer := range l.engine.lps {
			if int32(i) != l.index {
				l.send(peer, pmsg{from: l.index, at: 0, to: wakeupMsg})
			}
		}
	}
}

// send delivers m to the target LP, draining our own inbox while the
// target's is full so send cycles cannot deadlock.
func (l *lp) send(target *lp, m pmsg) {
	for {
		select {
		case target.inbox <- m:
			return
		default:
		}
		select {
		case target.inbox <- m:
			return
		case in := <-l.inbox:
			l.absorb(in)
		}
	}
}

// absorb applies an incoming message: clock advance for nulls, queue
// insertion for real events, nothing for wakeups.
func (l *lp) absorb(m pmsg) {
	switch {
	case m.to >= 0:
		if m.at > l.inClock[m.from] {
			l.inClock[m.from] = m.at
		}
		l.queue.push(schedPMsg{at: m.at, from: m.from, seq: m.seq, to: m.to, data: m.data})
	case m.to == nullMsg:
		if m.at > l.inClock[m.from] {
			l.inClock[m.from] = m.at
		}
		if m.at >= simtime.Forever {
			l.doneFrom++
		}
	}
}

func (l *lp) safe() simtime.Time {
	s := simtime.Forever
	for _, c := range l.inClock {
		s = simtime.Min(s, c)
	}
	return s
}

// guarantee is this LP's lower bound on the timestamp of any future
// outgoing message.
func (l *lp) guarantee() simtime.Time {
	bound := l.safe()
	if l.queue.len() > 0 {
		bound = simtime.Min(bound, l.queue.min().at)
	}
	bound = simtime.Max(bound, l.now)
	g := bound + l.engine.lookahead
	if g > simtime.Forever {
		g = simtime.Forever
	}
	return g
}

func (l *lp) broadcast(at simtime.Time, final bool) {
	if !final && at <= l.lastNull {
		return
	}
	l.lastNull = at
	for i, peer := range l.engine.lps {
		if int32(i) == l.index {
			continue
		}
		l.nulls++
		l.send(peer, pmsg{from: l.index, at: at, to: nullMsg})
	}
}

// budgetOK charges one event about to execute at time 'at' against the
// engine budget, halting the whole engine on the first limit hit.
func (l *lp) budgetOK(at simtime.Time) bool {
	eng := l.engine
	if err := failStep.Fail(); err != nil {
		eng.halt(fmt.Errorf("%w: %v", ErrCanceled, err))
		return false
	}
	b := eng.budget
	if b.MaxTime > 0 && at > b.MaxTime {
		eng.halt(fmt.Errorf("%w: event at %v is past the simulated-time cap %v", ErrBudgetExceeded, at, b.MaxTime))
		return false
	}
	n := eng.execCount.Add(1)
	if b.MaxEvents > 0 && n > b.MaxEvents {
		eng.halt(fmt.Errorf("%w: %d events executed (cap %d)", ErrBudgetExceeded, n, b.MaxEvents))
		return false
	}
	if !b.Deadline.IsZero() && n&(deadlineCheckInterval-1) == 1 && time.Now().After(b.Deadline) {
		eng.halt(fmt.Errorf("%w: wall-clock deadline passed after %d events", ErrBudgetExceeded, n))
		return false
	}
	return true
}

func (l *lp) run() {
	eng := l.engine
	single := len(eng.lps) == 1
	for !eng.quiescent.Load() && !eng.stopped.Load() {
		// Execute everything both locally ready and provably safe.
		for l.queue.len() > 0 && l.queue.min().at <= l.safe() {
			if eng.stopped.Load() || (eng.limited && !l.budgetOK(l.queue.min().at)) {
				break
			}
			ev := l.queue.pop()
			l.now = ev.at
			l.lastExec = ev.at
			l.steps++
			eng.actors[ev.to].Handle(ev.at, ev.data, l)
			l.retire()
			if eng.quiescent.Load() {
				break
			}
		}
		if eng.quiescent.Load() || eng.stopped.Load() || single {
			break
		}
		// Blocked: publish our guarantee, then wait for input.
		l.broadcast(l.guarantee(), false)
		l.absorb(<-l.inbox)
	}
	l.shutdown()
}

// shutdown runs the termination handshake: broadcast a final Forever
// guarantee, wait for every peer's final guarantee, then drain
// stragglers so no peer is blocked sending to us. It is idempotent
// enough to be re-entered by the panic-recovery path: the final
// broadcast is suppressed if it was already sent.
func (l *lp) shutdown() {
	if len(l.engine.lps) == 1 {
		return
	}
	if !l.finalSent {
		l.finalSent = true
		l.broadcast(simtime.Forever, true)
	}
	for l.doneFrom < len(l.engine.lps)-1 {
		l.absorb(<-l.inbox)
	}
	for {
		select {
		case m := <-l.inbox:
			l.absorb(m)
		default:
			return
		}
	}
}
