package des

import (
	"errors"
	"time"

	"hpctradeoff/internal/simtime"
)

// ErrBudgetExceeded is returned (wrapped) by an engine whose run was
// cut short because a Budget limit — event count, simulated time, or
// wall-clock deadline — was reached. A campaign treats it as "this
// trace is a runaway", not "the runner is broken".
var ErrBudgetExceeded = errors.New("des: budget exceeded")

// ErrCanceled is returned (wrapped) by an engine stopped through Stop
// before its event queue drained.
var ErrCanceled = errors.New("des: run canceled")

// Budget bounds a simulation run. Zero values mean "unlimited"; the
// zero Budget imposes no limits at all. Limits are cooperative: they
// are checked on event-scheduling boundaries, so a run may overshoot
// by the events already in flight (at most one per logical process).
type Budget struct {
	// MaxEvents caps the number of events executed (summed over all
	// logical processes for a parallel engine).
	MaxEvents uint64
	// MaxTime caps the simulated clock: no event with a timestamp past
	// it is executed.
	MaxTime simtime.Time
	// Deadline is a wall-clock cutoff. It is polled every
	// deadlineCheckInterval events to keep time.Now off the hot path,
	// so enforcement granularity is that many events.
	Deadline time.Time
}

// limited reports whether any bound is set.
func (b Budget) limited() bool {
	return b.MaxEvents > 0 || b.MaxTime > 0 || !b.Deadline.IsZero()
}

// deadlineCheckInterval throttles wall-clock reads on the event loop;
// it must be a power of two (used as a mask).
const deadlineCheckInterval = 2048
