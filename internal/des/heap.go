package des

// quadHeap is a concrete 4-ary min-heap used as the event queue of
// both engines. It replaces container/heap, whose interface-based API
// boxes every pushed event into an `any` (one allocation per event for
// the pointer-bearing event types here) and dispatches Less/Swap
// through the interface on every sift step. The concrete generic form
// pushes and pops with zero allocations beyond the backing array.
//
// A 4-ary layout halves tree depth versus binary, trading slightly
// wider sibling scans on sift-down for fewer cache-missing levels —
// the standard shape for DES pending-event sets, whose queues are
// popped exactly as often as they are pushed.
//
// Ordering is total and deterministic: the element types compare by
// (timestamp, sequence) with unique sequence numbers, so pop order
// never depends on heap internals. That property is what lets the
// engines document "ties broken by scheduling order" as a guarantee
// rather than an accident.
type quadHeap[T interface{ less(T) bool }] struct {
	items []T
}

func (h *quadHeap[T]) len() int { return len(h.items) }

// min returns the smallest element without removing it. It must not be
// called on an empty heap.
func (h *quadHeap[T]) min() *T { return &h.items[0] }

func (h *quadHeap[T]) push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

func (h *quadHeap[T]) pop() T {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	var zero T
	h.items[n] = zero // release pointers for GC
	h.items = h.items[:n]
	if n > 1 {
		h.down(0)
	}
	return top
}

func (h *quadHeap[T]) up(i int) {
	for i > 0 {
		p := (i - 1) >> 2
		if !h.items[i].less(h.items[p]) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *quadHeap[T]) down(i int) {
	n := len(h.items)
	for {
		c := i<<2 + 1
		if c >= n {
			return
		}
		m := c
		end := min(c+4, n)
		for j := c + 1; j < end; j++ {
			if h.items[j].less(h.items[m]) {
				m = j
			}
		}
		if !h.items[m].less(h.items[i]) {
			return
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
}
