package stats

// StepwiseForward selects features by greedy forward selection on AIC:
// starting from the intercept-only model, repeatedly add the feature
// that improves AIC the most, stopping when no feature improves it or
// maxVars are selected (the paper caps at five to avoid over-fitting
// and multi-collinearity).
//
// It returns the selected column indices (in selection order) and the
// final fitted model.
func StepwiseForward(d *Dataset, maxVars int) ([]int, *LogitModel, error) {
	if maxVars <= 0 || maxVars > len(d.Cols) {
		maxVars = len(d.Cols)
	}
	rows := make([]int, d.Len())
	for i := range rows {
		rows[i] = i
	}
	var selected []int
	base, err := FitLogistic(d.Subset(rows, nil))
	if err != nil {
		return nil, nil, err
	}
	bestAIC := base.AIC
	bestModel := base

	used := make([]bool, len(d.Cols))
	for len(selected) < maxVars {
		bestJ := -1
		var bestCand *LogitModel
		for j := range d.Cols {
			if used[j] {
				continue
			}
			cand, err := FitLogistic(d.Subset(rows, append(append([]int(nil), selected...), j)))
			if err != nil {
				continue // singular with this column; skip it
			}
			if cand.AIC < bestAIC-1e-9 && (bestCand == nil || cand.AIC < bestCand.AIC) {
				bestJ = j
				bestCand = cand
			}
		}
		if bestJ < 0 {
			break
		}
		selected = append(selected, bestJ)
		used[bestJ] = true
		bestAIC = bestCand.AIC
		bestModel = bestCand
	}
	return selected, bestModel, nil
}
