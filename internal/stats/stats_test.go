package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDescriptive(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if m := Mean(xs); m != 2.5 {
		t.Errorf("Mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-1.2909944) > 1e-6 {
		t.Errorf("StdDev = %v", s)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	if s := StdDev([]float64{1}); s != 0 {
		t.Errorf("StdDev(1 elem) = %v", s)
	}
}

func TestTrimmedMean(t *testing.T) {
	// 100 values 1..100 with the paper's 2% trim: drop {1,2} and
	// {99,100}, mean of 3..98 = 50.5.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	if m := TrimmedMean(xs, 0.02); m != 50.5 {
		t.Errorf("TrimmedMean = %v, want 50.5", m)
	}
	// Outliers get trimmed.
	xs[99] = 1e12
	if m := TrimmedMean(xs, 0.02); m > 51 {
		t.Errorf("TrimmedMean with outlier = %v", m)
	}
	// Degenerate trim falls back to the plain mean.
	if m := TrimmedMean([]float64{1, 2}, 0.5); m != 1.5 {
		t.Errorf("degenerate trim = %v", m)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSolveSym(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 8] → x = [1.75, 1.5].
	x, err := solveSym([]float64{4, 2, 2, 3}, []float64{10, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1.75) > 1e-9 || math.Abs(x[1]-1.5) > 1e-9 {
		t.Errorf("x = %v", x)
	}
}

// synthDataset builds n observations where y = 1 iff 2*x1 - x2 + noise > 0.
func synthDataset(n int, seed int64, noise float64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Cols: []string{"x1", "x2", "junk"}}
	for i := 0; i < n; i++ {
		x1 := rng.NormFloat64()
		x2 := rng.NormFloat64()
		junk := rng.NormFloat64()
		eta := 2*x1 - x2 + noise*rng.NormFloat64()
		d.X = append(d.X, []float64{x1, x2, junk})
		d.Y = append(d.Y, eta > 0)
	}
	return d
}

func TestFitLogisticRecoversSigns(t *testing.T) {
	d := synthDataset(2000, 1, 0.5)
	m, err := FitLogistic(d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Coef[0] <= 0 {
		t.Errorf("coef(x1) = %v, want > 0", m.Coef[0])
	}
	if m.Coef[1] >= 0 {
		t.Errorf("coef(x2) = %v, want < 0", m.Coef[1])
	}
	if math.Abs(m.Coef[2]) > math.Abs(m.Coef[0])/4 {
		t.Errorf("junk coef %v too large vs signal %v", m.Coef[2], m.Coef[0])
	}
	// In-sample accuracy should be high.
	correct := 0
	for i := range d.X {
		if m.Predict(d.X[i]) == d.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(d.X)); acc < 0.9 {
		t.Errorf("in-sample accuracy = %v", acc)
	}
}

func TestFitLogisticRawScaleInvariance(t *testing.T) {
	// Scaling a feature by 1000 must scale its raw coefficient by
	// 1/1000 and leave predictions identical.
	d := synthDataset(500, 2, 0.5)
	m1, err := FitLogistic(d)
	if err != nil {
		t.Fatal(err)
	}
	d2 := &Dataset{Cols: d.Cols, Y: d.Y}
	for _, row := range d.X {
		r := append([]float64(nil), row...)
		r[0] *= 1000
		d2.X = append(d2.X, r)
	}
	m2, err := FitLogistic(d2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2.Coef[0]*1000-m1.Coef[0]) > 1e-3*math.Abs(m1.Coef[0]) {
		t.Errorf("coef not scale-consistent: %v vs %v/1000", m2.Coef[0], m1.Coef[0])
	}
	for i := 0; i < 20; i++ {
		p1 := m1.Prob(d.X[i])
		p2 := m2.Prob(d2.X[i])
		if math.Abs(p1-p2) > 1e-6 {
			t.Fatalf("prediction differs after rescale: %v vs %v", p1, p2)
		}
	}
}

func TestFitLogisticSeparation(t *testing.T) {
	// Perfectly separable data: the fit must flag separation and still
	// predict perfectly rather than blowing up.
	d := &Dataset{Cols: []string{"x"}}
	for i := -20; i <= 20; i++ {
		if i == 0 {
			continue
		}
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, i > 0)
	}
	m, err := FitLogistic(d)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Separated {
		t.Error("separation not flagged")
	}
	for i := range d.X {
		if m.Predict(d.X[i]) != d.Y[i] {
			t.Fatalf("separated fit mispredicts at %v", d.X[i])
		}
	}
}

func TestFitLogisticConstantFeature(t *testing.T) {
	d := synthDataset(200, 3, 0.5)
	for i := range d.X {
		d.X[i][2] = 7 // constant
	}
	m, err := FitLogistic(d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Coef[2] != 0 {
		t.Errorf("constant feature coef = %v, want 0", m.Coef[2])
	}
}

func TestStepwisePicksSignalFirst(t *testing.T) {
	d := synthDataset(1000, 4, 0.5)
	selected, model, err := StepwiseForward(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(selected) == 0 || d.Cols[selected[0]] != "x1" {
		t.Errorf("first selected = %v, want x1", selected)
	}
	found := map[string]bool{}
	for _, j := range selected {
		found[d.Cols[j]] = true
	}
	if found["junk"] {
		t.Error("junk feature selected")
	}
	if model.AIC <= 0 {
		t.Errorf("AIC = %v", model.AIC)
	}
}

func TestAICPenalizesUselessFeatures(t *testing.T) {
	d := synthDataset(400, 5, 1.5)
	rows := allRows(d)
	m1, err := FitLogistic(d.Subset(rows, []int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := FitLogistic(d.Subset(rows, []int{0, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	// Deviance can only go down with more features; AIC should not
	// improve much (junk is noise).
	if m2.Deviance > m1.Deviance+1e-6 {
		t.Errorf("deviance increased with extra feature: %v -> %v", m1.Deviance, m2.Deviance)
	}
	if m2.AIC < m1.AIC-2 {
		t.Errorf("AIC improved too much with junk: %v -> %v", m1.AIC, m2.AIC)
	}
}

func TestMonteCarloCV(t *testing.T) {
	d := synthDataset(300, 6, 0.5)
	res, err := MonteCarloCV(d, 50, 2, 0.8, 99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 50 || len(res.MRs) != 50 {
		t.Fatalf("runs = %d, MRs = %d", res.Runs, len(res.MRs))
	}
	if mr := res.TrimmedMR(); mr > 0.15 {
		t.Errorf("trimmed MR = %v, want < 0.15 on easy data", mr)
	}
	if sr := res.SuccessRate(); sr < 0.85 {
		t.Errorf("success rate = %v", sr)
	}
	ranked := res.Ranked()
	if len(ranked) == 0 || ranked[0].Name != "x1" {
		t.Errorf("top feature = %+v, want x1", ranked)
	}
	if ranked[0].Fraction < 0.9 {
		t.Errorf("x1 selected only %v of runs", ranked[0].Fraction)
	}
	if ranked[0].MeanCoef <= 0 {
		t.Errorf("x1 mean coef = %v, want > 0", ranked[0].MeanCoef)
	}
	if res.FinalModel == nil || len(res.FinalCols) == 0 {
		t.Fatal("no final model")
	}
}

func TestMonteCarloCVDeterministic(t *testing.T) {
	d := synthDataset(200, 7, 0.8)
	a, err := MonteCarloCV(d, 20, 3, 0.8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarloCV(d, 20, 3, 0.8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.TrimmedMR() != b.TrimmedMR() || a.TrimmedFN() != b.TrimmedFN() {
		t.Error("CV not deterministic for fixed seed")
	}
}

func TestMonteCarloCVTooSmall(t *testing.T) {
	d := synthDataset(5, 8, 0.5)
	if _, err := MonteCarloCV(d, 10, 2, 0.8, 1); err == nil {
		t.Error("tiny dataset accepted")
	}
}

func TestConfusionRates(t *testing.T) {
	c := Confusion{TP: 8, TN: 5, FP: 1, FN: 2}
	if mr := c.MR(); math.Abs(mr-3.0/16) > 1e-12 {
		t.Errorf("MR = %v", mr)
	}
	if fn := c.FNRate(); math.Abs(fn-0.2) > 1e-12 {
		t.Errorf("FN = %v", fn)
	}
	if fp := c.FPRate(); math.Abs(fp-1.0/6) > 1e-12 {
		t.Errorf("FP = %v", fp)
	}
	var zero Confusion
	if zero.MR() != 0 || zero.FNRate() != 0 || zero.FPRate() != 0 {
		t.Error("zero confusion rates not 0")
	}
}

// Property: TrimmedMean lies within [min, max].
func TestTrimmedMeanBounded(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		m := TrimmedMean(xs, 0.02)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
