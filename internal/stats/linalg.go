// Package stats implements the statistical method of the paper's
// Section VI from scratch: descriptive statistics (trimmed means),
// logistic regression fit by iteratively-reweighted least squares,
// the Akaike information criterion, step-wise forward feature
// selection, Monte-Carlo cross-validation, and the confusion metrics
// (misclassification, false-negative and false-positive rates) the
// paper reports.
package stats

import (
	"errors"
	"math"
)

// ErrSingular reports a numerically singular normal-equation system.
var ErrSingular = errors.New("stats: singular system")

// solveSym solves A x = b for a symmetric positive-definite A (given
// as a dense row-major n×n slice) using Cholesky decomposition with a
// small ridge fallback. A and b are not modified.
func solveSym(a []float64, b []float64, n int) ([]float64, error) {
	for attempt := 0; attempt < 4; attempt++ {
		ridge := 0.0
		if attempt > 0 {
			ridge = math.Pow(10, float64(attempt)-9) // 1e-8, 1e-7, 1e-6
		}
		l := make([]float64, n*n)
		ok := true
		for i := 0; i < n && ok; i++ {
			for j := 0; j <= i; j++ {
				sum := a[i*n+j]
				if i == j {
					sum += ridge
				}
				for k := 0; k < j; k++ {
					sum -= l[i*n+k] * l[j*n+k]
				}
				if i == j {
					if sum <= 0 || math.IsNaN(sum) {
						ok = false
						break
					}
					l[i*n+i] = math.Sqrt(sum)
				} else {
					l[i*n+j] = sum / l[j*n+j]
				}
			}
		}
		if !ok {
			continue
		}
		// Forward substitution L y = b.
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			sum := b[i]
			for k := 0; k < i; k++ {
				sum -= l[i*n+k] * y[k]
			}
			y[i] = sum / l[i*n+i]
		}
		// Back substitution Lᵀ x = y.
		x := make([]float64, n)
		for i := n - 1; i >= 0; i-- {
			sum := y[i]
			for k := i + 1; k < n; k++ {
				sum -= l[k*n+i] * x[k]
			}
			x[i] = sum / l[i*n+i]
		}
		return x, nil
	}
	return nil, ErrSingular
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// TrimmedMean discards the ⌈frac·n⌉ smallest and largest values and
// averages the rest — the paper trims the top and bottom 2% of its 100
// cross-validation runs.
func TrimmedMean(xs []float64, frac float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	insertionSort(sorted)
	k := int(math.Ceil(frac * float64(n)))
	if 2*k >= n {
		return Mean(sorted)
	}
	return Mean(sorted[k : n-k])
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear
// interpolation.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	insertionSort(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
