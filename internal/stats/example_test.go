package stats_test

import (
	"fmt"

	"hpctradeoff/internal/stats"
)

func ExampleTrimmedMean() {
	// The paper reports trimmed means that discard the top and bottom
	// 2% of its 100 cross-validation runs.
	runs := make([]float64, 100)
	for i := range runs {
		runs[i] = 0.07
	}
	runs[0], runs[99] = 0.9, 0.0 // two outlier runs
	fmt.Printf("%.3f\n", stats.TrimmedMean(runs, 0.02))
	// Output: 0.070
}

func ExampleFitLogistic() {
	// y = 1 exactly when x > 2: a cleanly separable rule the fit
	// recovers (flagging the separation, as R's glm warns).
	d := &stats.Dataset{Cols: []string{"x"}}
	for i := 0; i < 40; i++ {
		x := float64(i) / 10
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, x > 2)
	}
	m, err := stats.FitLogistic(d)
	if err != nil {
		panic(err)
	}
	fmt.Println("separated:", m.Separated)
	fmt.Println("predict x=1:", m.Predict([]float64{1}))
	fmt.Println("predict x=3:", m.Predict([]float64{3}))
	// Output:
	// separated: true
	// predict x=1: false
	// predict x=3: true
}
