package stats

import (
	"fmt"
	"math"
)

// Dataset is a design matrix with a binary response. Rows are
// observations; Cols[j] names feature j.
type Dataset struct {
	Cols []string
	X    [][]float64 // X[i][j] = feature j of observation i
	Y    []bool
}

// Len returns the number of observations.
func (d *Dataset) Len() int { return len(d.X) }

// Subset returns the dataset restricted to the given row indices and
// feature columns (by index).
func (d *Dataset) Subset(rows []int, cols []int) *Dataset {
	out := &Dataset{Cols: make([]string, len(cols))}
	for j, c := range cols {
		out.Cols[j] = d.Cols[c]
	}
	out.X = make([][]float64, len(rows))
	out.Y = make([]bool, len(rows))
	for i, r := range rows {
		row := make([]float64, len(cols))
		for j, c := range cols {
			row[j] = d.X[r][c]
		}
		out.X[i] = row
		out.Y[i] = d.Y[r]
	}
	return out
}

// LogitModel is a fitted logistic regression.
type LogitModel struct {
	// Cols names the features, aligned with Coef (intercept excluded).
	Cols []string
	// Intercept and Coef are on the raw (unstandardized) feature scale.
	Intercept float64
	Coef      []float64
	// Deviance is −2 × log-likelihood at the fit.
	Deviance float64
	// AIC = Deviance + 2 × (len(Coef)+1).
	AIC float64
	// Iterations the IRLS loop used.
	Iterations int
	// Separated reports quasi-complete separation (coefficients pushed
	// to the clamp; predictions remain usable, as in R's glm warnings).
	Separated bool
}

// irls configuration.
const (
	irlsMaxIter   = 40
	irlsTol       = 1e-8
	irlsCoefClamp = 30 // standardized log-odds per SD; anything here means separation
)

// FitLogistic fits y ~ X by maximum likelihood (IRLS). Features are
// standardized internally for numerical stability; returned
// coefficients are on the raw scale. Constant features get a zero
// coefficient.
func FitLogistic(d *Dataset) (*LogitModel, error) {
	n := d.Len()
	p := len(d.Cols)
	if n == 0 {
		return nil, fmt.Errorf("stats: empty dataset")
	}
	// Standardize.
	mean := make([]float64, p)
	sd := make([]float64, p)
	col := make([]float64, n)
	for j := 0; j < p; j++ {
		for i := 0; i < n; i++ {
			col[i] = d.X[i][j]
		}
		mean[j] = Mean(col)
		sd[j] = StdDev(col)
	}
	// Design matrix with intercept first.
	q := p + 1
	xs := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, q)
		row[0] = 1
		for j := 0; j < p; j++ {
			if sd[j] > 0 {
				row[j+1] = (d.X[i][j] - mean[j]) / sd[j]
			}
		}
		xs[i] = row
	}

	beta := make([]float64, q)
	var iter int
	separated := false
	for iter = 0; iter < irlsMaxIter; iter++ {
		// Build XᵀWX and XᵀWz.
		a := make([]float64, q*q)
		b := make([]float64, q)
		maxBeta := 0.0
		for i := 0; i < n; i++ {
			eta := 0.0
			for j := 0; j < q; j++ {
				eta += xs[i][j] * beta[j]
			}
			mu := 1 / (1 + math.Exp(-eta))
			w := mu * (1 - mu)
			if w < 1e-10 {
				w = 1e-10
			}
			y := 0.0
			if d.Y[i] {
				y = 1
			}
			z := eta + (y-mu)/w
			for j := 0; j < q; j++ {
				wx := w * xs[i][j]
				b[j] += wx * z
				for k := 0; k <= j; k++ {
					a[j*q+k] += wx * xs[i][k]
				}
			}
		}
		for j := 0; j < q; j++ {
			for k := j + 1; k < q; k++ {
				a[j*q+k] = a[k*q+j]
			}
		}
		next, err := solveSym(a, b, q)
		if err != nil {
			return nil, err
		}
		delta := 0.0
		for j := 0; j < q; j++ {
			delta = math.Max(delta, math.Abs(next[j]-beta[j]))
			if math.Abs(next[j]) > irlsCoefClamp {
				// Quasi-separation: clamp and stop growing.
				if next[j] > 0 {
					next[j] = irlsCoefClamp
				} else {
					next[j] = -irlsCoefClamp
				}
				separated = true
			}
			maxBeta = math.Max(maxBeta, math.Abs(next[j]))
		}
		beta = next
		if delta < irlsTol || (separated && maxBeta >= irlsCoefClamp) {
			break
		}
	}

	// Deviance on the standardized fit.
	dev := 0.0
	for i := 0; i < n; i++ {
		eta := 0.0
		for j := 0; j < q; j++ {
			eta += xs[i][j] * beta[j]
		}
		mu := 1 / (1 + math.Exp(-eta))
		mu = math.Min(math.Max(mu, 1e-12), 1-1e-12)
		if d.Y[i] {
			dev -= 2 * math.Log(mu)
		} else {
			dev -= 2 * math.Log(1-mu)
		}
	}

	// Unstandardize.
	m := &LogitModel{
		Cols:       append([]string(nil), d.Cols...),
		Coef:       make([]float64, p),
		Deviance:   dev,
		AIC:        dev + 2*float64(q),
		Iterations: iter + 1,
		Separated:  separated,
	}
	m.Intercept = beta[0]
	for j := 0; j < p; j++ {
		if sd[j] > 0 {
			m.Coef[j] = beta[j+1] / sd[j]
			m.Intercept -= beta[j+1] * mean[j] / sd[j]
		}
	}
	return m, nil
}

// Prob returns the predicted probability for one raw feature row.
func (m *LogitModel) Prob(x []float64) float64 {
	eta := m.Intercept
	for j, c := range m.Coef {
		eta += c * x[j]
	}
	return 1 / (1 + math.Exp(-eta))
}

// Predict returns the hard classification at threshold 0.5.
func (m *LogitModel) Predict(x []float64) bool { return m.Prob(x) > 0.5 }
