package stats

import (
	"fmt"
	"math/rand"
	"sort"
)

// Confusion holds binary-classification error rates for one test set.
// The paper's definitions: FN rate = FN/(FN+TP), FP rate = FP/(FP+TN),
// MR = (FN+FP)/total.
type Confusion struct {
	TP, TN, FP, FN int
}

// MR returns the misclassification rate.
func (c Confusion) MR() float64 {
	n := c.TP + c.TN + c.FP + c.FN
	if n == 0 {
		return 0
	}
	return float64(c.FP+c.FN) / float64(n)
}

// FNRate returns FN/(FN+TP) (0 when no positives).
func (c Confusion) FNRate() float64 {
	if c.FN+c.TP == 0 {
		return 0
	}
	return float64(c.FN) / float64(c.FN+c.TP)
}

// FPRate returns FP/(FP+TN) (0 when no negatives).
func (c Confusion) FPRate() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// CVResult aggregates a Monte-Carlo cross-validation.
type CVResult struct {
	// Runs is the number of train/test partitions evaluated.
	Runs int
	// MRs, FNs, FPs are the per-run rates.
	MRs, FNs, FPs []float64
	// Selected[name] counts how many runs selected the feature.
	Selected map[string]int
	// CoefSum[name] accumulates the feature's fitted coefficient over
	// the runs that selected it.
	CoefSum map[string]float64
	// FinalModel is fitted on the full dataset with the overall
	// most-selected features (at most maxVars).
	FinalModel *LogitModel
	// FinalCols are the column names of FinalModel.
	FinalCols []string
}

// TrimmedMR returns the trimmed-mean misclassification rate (the
// paper trims 2% from each end).
func (r *CVResult) TrimmedMR() float64 { return TrimmedMean(r.MRs, 0.02) }

// TrimmedFN returns the trimmed-mean false-negative rate.
func (r *CVResult) TrimmedFN() float64 { return TrimmedMean(r.FNs, 0.02) }

// TrimmedFP returns the trimmed-mean false-positive rate.
func (r *CVResult) TrimmedFP() float64 { return TrimmedMean(r.FPs, 0.02) }

// SuccessRate returns 1 − trimmed MR, the paper's headline number.
func (r *CVResult) SuccessRate() float64 { return 1 - r.TrimmedMR() }

// RankedFeatures returns feature names by descending selection count
// (ties broken alphabetically), with selection fraction and mean
// coefficient — the contents of the paper's Table IV.
type RankedFeature struct {
	Name     string
	Fraction float64
	MeanCoef float64
}

// Ranked lists all ever-selected features, most-selected first.
func (r *CVResult) Ranked() []RankedFeature {
	out := make([]RankedFeature, 0, len(r.Selected))
	for name, cnt := range r.Selected {
		out = append(out, RankedFeature{
			Name:     name,
			Fraction: float64(cnt) / float64(r.Runs),
			MeanCoef: r.CoefSum[name] / float64(cnt),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fraction != out[j].Fraction {
			return out[i].Fraction > out[j].Fraction
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// MonteCarloCV runs the paper's training protocol: `runs` random
// 80/20 train/test partitions (sampling without replacement); on each
// training set, step-wise forward selection (≤ maxVars features by
// AIC) fits a logistic model, which is then scored on the held-out
// test set. Selection frequencies and coefficients are aggregated, and
// a final model is fitted on the full data with the most-selected
// features.
func MonteCarloCV(d *Dataset, runs, maxVars int, trainFrac float64, seed int64) (*CVResult, error) {
	n := d.Len()
	if n < 10 {
		return nil, fmt.Errorf("stats: need ≥ 10 observations, have %d", n)
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		trainFrac = 0.8
	}
	rng := rand.New(rand.NewSource(seed))
	res := &CVResult{
		Runs:     runs,
		Selected: make(map[string]int),
		CoefSum:  make(map[string]float64),
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	nTrain := int(trainFrac * float64(n))
	for run := 0; run < runs; run++ {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		train := append([]int(nil), idx[:nTrain]...)
		test := idx[nTrain:]

		trainSet := d.Subset(train, allCols(d))
		selected, model, err := StepwiseForward(trainSet, maxVars)
		if err != nil {
			return nil, fmt.Errorf("stats: run %d: %w", run, err)
		}
		for k, j := range selected {
			name := trainSet.Cols[j]
			res.Selected[name]++
			// model.Coef is ordered by selection order (k), not by j.
			res.CoefSum[name] += model.Coef[k]
		}
		// Score on the held-out rows.
		var c Confusion
		colIdx := make([]int, len(selected))
		copy(colIdx, selected)
		for _, r := range test {
			x := make([]float64, len(colIdx))
			for j, cj := range colIdx {
				x[j] = d.X[r][cj]
			}
			pred := model.Predict(x)
			switch {
			case pred && d.Y[r]:
				c.TP++
			case !pred && !d.Y[r]:
				c.TN++
			case pred && !d.Y[r]:
				c.FP++
			default:
				c.FN++
			}
		}
		res.MRs = append(res.MRs, c.MR())
		res.FNs = append(res.FNs, c.FNRate())
		res.FPs = append(res.FPs, c.FPRate())
	}

	// Final model: the maxVars most-selected features on all data.
	ranked := res.Ranked()
	var finalCols []int
	var finalNames []string
	for _, rf := range ranked {
		if len(finalCols) >= maxVars {
			break
		}
		for j, name := range d.Cols {
			if name == rf.Name {
				finalCols = append(finalCols, j)
				finalNames = append(finalNames, name)
			}
		}
	}
	rows := allRows(d)
	final, err := FitLogistic(d.Subset(rows, finalCols))
	if err != nil {
		return nil, err
	}
	res.FinalModel = final
	res.FinalCols = finalNames
	return res, nil
}

func allCols(d *Dataset) []int {
	out := make([]int, len(d.Cols))
	for i := range out {
		out[i] = i
	}
	return out
}

func allRows(d *Dataset) []int {
	out := make([]int, d.Len())
	for i := range out {
		out[i] = i
	}
	return out
}
