package simnet

import (
	"math"

	"hpctradeoff/internal/des"
	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/topology"
)

// flowNet is the flow-level (fluid) model: each message is a flow that
// traverses its path as a fluid, sharing every link's bandwidth
// max-min-fairly with the competing flows. Whenever flows start or
// finish, the rates of all active flows are recomputed — the "ripple
// effect" that makes fluid simulation expensive under churn, which the
// paper (citing Liu et al.) identifies as the flow model's cost.
//
// Rate recomputations triggered at the same instant (e.g. a halo
// exchange posting thousands of flows in one event round) are coalesced
// into a single progressive-filling pass.
type flowNet struct {
	eng  *des.Engine
	mach *machine.Config
	cfg  Config

	routes routeCache
	flows  []*flow // active flows, compacted on completion
	free   []*flow // completed flow objects recycled by Send
	stats  Stats

	// Per-link scratch state indexed by topology.LinkID, epoch-stamped
	// so recompute never clears the whole array.
	linkAvail []float64
	linkCount []int32
	linkEpoch []uint32
	epoch     uint32
	// bwOf caches per-link bandwidth.
	bwOf []float64

	// recomputeAt coalesces recompute requests within a small quantum;
	// version stamps invalidate stale completion timers.
	recomputePending bool
	version          int64
	// activeLinks lists the links touched by the current flow set
	// (scratch, rebuilt each recompute).
	activeLinks []topology.LinkID
}

// recomputeQuantum batches flow-set changes that occur within a couple
// of microseconds into one rate recomputation. The timing error is
// bounded by the quantum, which is on the order of the network's α.
const recomputeQuantum = 2 * simtime.Microsecond

type flow struct {
	path      []topology.LinkID
	remaining float64 // bytes
	rate      float64 // bytes/s
	updated   simtime.Time
	tail      simtime.Time // propagation latency appended after drain
	onDone    func()
	frozen    bool // scratch flag for progressive filling
}

func newFlowNet(eng *des.Engine, mach *machine.Config, cfg Config) *flowNet {
	n := mach.Topo.NumLinks()
	f := &flowNet{
		eng:       eng,
		mach:      mach,
		cfg:       cfg,
		routes:    newRouteCache(mach),
		linkAvail: make([]float64, n),
		linkCount: make([]int32, n),
		linkEpoch: make([]uint32, n),
		bwOf:      make([]float64, n),
	}
	for id := 0; id < n; id++ {
		switch mach.Topo.Link(topology.LinkID(id)).Kind {
		case topology.Injection, topology.Ejection:
			f.bwOf[id] = mach.InjectionBandwidth
		default:
			f.bwOf[id] = mach.LinkBandwidth
		}
		if mach.LinkBWScale != nil {
			f.bwOf[id] *= mach.LinkBWScale[id]
		}
	}
	return f
}

// Model implements Network.
func (f *flowNet) Model() Model { return Flow }

// Stats implements Network.
func (f *flowNet) Stats() Stats { return f.stats }

// Send implements Network.
func (f *flowNet) Send(src, dst int32, bytes int64, onDelivered func()) {
	f.stats.Messages++
	f.stats.BytesSent += bytes
	srcNode, dstNode := f.mach.NodeOf[src], f.mach.NodeOf[dst]
	if srcNode == dstNode {
		f.eng.After(loopback(bytes, f.cfg, f.mach), onDelivered)
		return
	}
	path := f.routes.get(int(srcNode), int(dstNode))
	latency := 2*f.mach.NICLatency + simtime.Time(len(path))*f.mach.LinkLatency
	if bytes <= 0 {
		f.eng.After(latency, onDelivered)
		return
	}
	fl := f.getFlow()
	fl.path, fl.remaining, fl.rate = path, float64(bytes), 0
	fl.updated, fl.tail, fl.onDone = f.eng.Now(), latency, onDelivered
	f.flows = append(f.flows, fl)
	f.requestRecompute()
}

// getFlow takes a flow object from the free-list or allocates one; a
// steady message stream recycles its flow objects instead of leaving
// one garbage struct per message.
func (f *flowNet) getFlow() *flow {
	if n := len(f.free); n > 0 {
		fl := f.free[n-1]
		f.free = f.free[:n-1]
		return fl
	}
	return &flow{}
}

// requestRecompute schedules one recompute within the coalescing
// quantum, batching all flow-set changes issued in the meantime.
func (f *flowNet) requestRecompute() {
	if f.recomputePending {
		return
	}
	f.recomputePending = true
	f.version++
	f.eng.After(recomputeQuantum, func() {
		f.recomputePending = false
		f.recompute()
	})
}

// recompute advances every flow's progress to now, completes drained
// flows, recomputes max-min fair rates with progressive filling, and
// schedules the next completion event.
func (f *flowNet) recompute() {
	now := f.eng.Now()
	f.stats.FlowUpdates++

	// Advance progress and complete drained flows, compacting in place.
	live := f.flows[:0]
	for _, fl := range f.flows {
		if fl.rate > 0 {
			fl.remaining -= fl.rate * (now - fl.updated).Seconds()
		}
		fl.updated = now
		if fl.remaining <= 0.5 { // sub-byte residue is numeric noise
			f.eng.After(fl.tail, fl.onDone)
			fl.path, fl.onDone = nil, nil
			f.free = append(f.free, fl)
		} else {
			live = append(live, fl)
		}
	}
	for i := len(live); i < len(f.flows); i++ {
		f.flows[i] = nil
	}
	f.flows = live
	if len(f.flows) == 0 {
		return
	}

	// Progressive filling (max-min fairness): raise all unfrozen flows'
	// rates uniformly until a link saturates, freeze the flows crossing
	// it, repeat. Link state is epoch-stamped scratch.
	f.epoch++
	f.activeLinks = f.activeLinks[:0]
	touch := func(id topology.LinkID) {
		if f.linkEpoch[id] != f.epoch {
			f.linkEpoch[id] = f.epoch
			f.linkAvail[id] = f.bwOf[id]
			f.linkCount[id] = 0
			f.activeLinks = append(f.activeLinks, id)
		}
	}
	for _, fl := range f.flows {
		fl.frozen = false
		fl.rate = 0
		for _, l := range fl.path {
			touch(l)
			f.linkCount[l]++
		}
	}
	// Progressive filling runs at most maxFillTiers bottleneck tiers
	// exactly; any flows still unfrozen then receive their current
	// fair share (avail/count on their own bottleneck) in one pass.
	// Heterogeneous all-to-all traffic can otherwise produce thousands
	// of distinct tiers, each an O(flows·path) pass.
	const maxFillTiers = 6
	unfrozen := len(f.flows)
	for tier := 0; unfrozen > 0 && tier < maxFillTiers; tier++ {
		// Bottleneck share: min over links carrying unfrozen flows.
		delta := math.Inf(1)
		for _, l := range f.activeLinks {
			if c := f.linkCount[l]; c > 0 {
				if s := f.linkAvail[l] / float64(c); s < delta {
					delta = s
				}
			}
		}
		if math.IsInf(delta, 1) {
			break
		}
		if delta < 0 {
			delta = 0
		}
		// Consume the uniform increment on every link with unfrozen
		// flows, then freeze flows crossing saturated links.
		for _, fl := range f.flows {
			if fl.frozen {
				continue
			}
			fl.rate += delta
			for _, l := range fl.path {
				f.linkAvail[l] -= delta
			}
		}
		froze := false
		for _, fl := range f.flows {
			if fl.frozen {
				continue
			}
			saturated := false
			for _, l := range fl.path {
				if f.linkAvail[l] <= 1e-6*f.bwOf[l] {
					saturated = true
					break
				}
			}
			if saturated {
				fl.frozen = true
				froze = true
				unfrozen--
				for _, l := range fl.path {
					f.linkCount[l]--
				}
			}
		}
		if !froze {
			break // numeric stall; the fair-share pass finishes below
		}
	}
	if unfrozen > 0 {
		// Fair-share finish: every remaining flow takes avail/count on
		// its most constrained link. Flows sharing a link split its
		// residue evenly, so capacity is never oversubscribed.
		for _, fl := range f.flows {
			if fl.frozen {
				continue
			}
			share := math.Inf(1)
			for _, l := range fl.path {
				if c := f.linkCount[l]; c > 0 {
					if s := f.linkAvail[l] / float64(c); s < share {
						share = s
					}
				}
			}
			if !math.IsInf(share, 1) && share > 0 {
				fl.rate += share
			}
		}
		for _, fl := range f.flows {
			fl.frozen = true
		}
	}

	// Schedule the earliest completion, nudged forward by a small grain
	// (1% of the shortest remaining drain, ≤ 50 µs) so the thousands of
	// near-symmetric flows a halo exchange or an all-to-all storm
	// creates complete in batches instead of one recompute each. The
	// per-flow timing error is bounded by the grain.
	next := simtime.Forever
	for _, fl := range f.flows {
		if fl.rate <= 0 {
			continue
		}
		t := now + simtime.FromSeconds(fl.remaining/fl.rate)
		if t <= now {
			t = now + 1
		}
		next = simtime.Min(next, t)
	}
	if next < simtime.Forever {
		grain := (next - now) / 100
		if grain > 50*simtime.Microsecond {
			grain = 50 * simtime.Microsecond
		}
		next += grain
		f.version++
		v := f.version
		f.eng.At(next, func() {
			if v == f.version && !f.recomputePending {
				f.recompute()
			}
		})
	}
}
