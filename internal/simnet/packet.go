package simnet

import (
	"hpctradeoff/internal/des"
	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/topology"
)

// packetNet implements both the packet model and the hybrid
// packet-flow model; the two differ in how a packet occupies a link:
//
//   - packet (SST/Macro 3.0 style): every packet exclusively reserves
//     each channel on its path for its full serialization time
//     (store-and-forward with FIFO queueing). This is the source of the
//     serialization-latency overestimation the paper describes.
//
//   - packet-flow (SST/Macro 6.1 style): packets "sample" the
//     congestion of each channel: a link keeps a fluid backlog that
//     drains at link bandwidth, and a packet's traversal delay is the
//     backlog (including itself) divided by bandwidth. Channels are
//     multiplexed rather than exclusively reserved, and packets are
//     coarser, so the model is cheaper and avoids the overestimation.
type packetNet struct {
	eng       *des.Engine
	mach      *machine.Config
	cfg       Config
	multiplex bool // true for packet-flow

	// Per-link occupancy state, indexed by topology.LinkID.
	busyUntil []simtime.Time // packet model: exclusive reservation
	backlog   []float64      // packet-flow: fluid backlog in bytes
	lastDrain []simtime.Time // packet-flow: last backlog update

	routes routeCache
	stats  Stats

	// free is the packet free-list. A packet object (with its bound hop
	// callback) is recycled when its last hop completes, so a steady
	// packet stream allocates nothing per packet after warm-up — the
	// packet scheme's event rate is the study's highest, which made
	// per-packet garbage the process's dominant allocation source.
	free []*packet
}

func newPacketNet(eng *des.Engine, mach *machine.Config, cfg Config, multiplex bool) *packetNet {
	n := mach.Topo.NumLinks()
	p := &packetNet{
		eng:       eng,
		mach:      mach,
		cfg:       cfg,
		multiplex: multiplex,
		routes:    newRouteCache(mach),
	}
	if multiplex {
		p.backlog = make([]float64, n)
		p.lastDrain = make([]simtime.Time, n)
	} else {
		p.busyUntil = make([]simtime.Time, n)
	}
	return p
}

// Model implements Network.
func (p *packetNet) Model() Model {
	if p.multiplex {
		return PacketFlow
	}
	return Packet
}

// Stats implements Network.
func (p *packetNet) Stats() Stats { return p.stats }

// Send implements Network.
func (p *packetNet) Send(src, dst int32, bytes int64, onDelivered func()) {
	p.stats.Messages++
	p.stats.BytesSent += bytes
	srcNode, dstNode := p.mach.NodeOf[src], p.mach.NodeOf[dst]
	if srcNode == dstNode {
		p.eng.After(loopback(bytes, p.cfg, p.mach), onDelivered)
		return
	}
	path := p.routes.get(int(srcNode), int(dstNode))
	nPackets := int((bytes + p.cfg.PacketBytes - 1) / p.cfg.PacketBytes)
	if nPackets == 0 {
		nPackets = 1 // zero-byte message still sends a header packet
	}
	remaining := nPackets
	last := bytes - int64(nPackets-1)*p.cfg.PacketBytes
	start := p.eng.Now() + p.mach.NICLatency
	// One completion closure per message, shared by its packets.
	done := func() {
		remaining--
		if remaining == 0 {
			p.eng.After(p.mach.NICLatency, onDelivered)
		}
	}
	for i := 0; i < nPackets; i++ {
		size := p.cfg.PacketBytes
		if i == nPackets-1 {
			size = last
		}
		if size <= 0 {
			size = 1
		}
		p.stats.Packets++
		pk := p.getPacket()
		pk.path, pk.size, pk.onDone = path, size, done
		p.eng.At(start, pk.hopFn)
	}
}

// packet walks its path one link per event.
type packet struct {
	net    *packetNet
	path   []topology.LinkID
	size   int64
	hopIdx int
	onDone func()
	// hopFn is the hop method bound once at allocation; scheduling it
	// repeatedly costs nothing, where scheduling pk.hop directly would
	// allocate a fresh method value on every hop.
	hopFn func()
}

// getPacket takes a packet from the free-list or allocates one.
func (p *packetNet) getPacket() *packet {
	if n := len(p.free); n > 0 {
		pk := p.free[n-1]
		p.free = p.free[:n-1]
		return pk
	}
	pk := &packet{net: p}
	pk.hopFn = pk.hop
	return pk
}

// putPacket recycles a completed packet.
func (p *packetNet) putPacket(pk *packet) {
	pk.path, pk.onDone, pk.size, pk.hopIdx = nil, nil, 0, 0
	p.free = append(p.free, pk)
}

// hop processes the packet's arrival at its current link and schedules
// arrival at the next.
func (pk *packet) hop() {
	n := pk.net
	if pk.hopIdx >= len(pk.path) {
		done := pk.onDone
		n.putPacket(pk)
		done()
		return
	}
	link := pk.path[pk.hopIdx]
	pk.hopIdx++
	now := n.eng.Now()
	bw := n.linkBandwidth(link)
	var departure simtime.Time
	if n.multiplex {
		// Drain the fluid backlog, add ourselves, sample the delay.
		elapsed := now - n.lastDrain[link]
		n.backlog[link] -= elapsed.Seconds() * bw
		if n.backlog[link] < 0 {
			n.backlog[link] = 0
		}
		n.lastDrain[link] = now
		n.backlog[link] += float64(pk.size)
		departure = now + simtime.FromSeconds(n.backlog[link]/bw)
	} else {
		// Exclusive reservation: wait for the channel, then hold it for
		// the full serialization time.
		begin := simtime.Max(now, n.busyUntil[link])
		departure = begin + simtime.TransferTime(pk.size, bw)
		n.busyUntil[link] = departure
	}
	n.eng.At(departure+n.mach.LinkLatency, pk.hopFn)
}

func (p *packetNet) linkBandwidth(id topology.LinkID) float64 {
	var bw float64
	switch p.mach.Topo.Link(id).Kind {
	case topology.Injection, topology.Ejection:
		bw = p.mach.InjectionBandwidth
	default:
		bw = p.mach.LinkBandwidth
	}
	if p.mach.LinkBWScale != nil {
		bw *= p.mach.LinkBWScale[id]
	}
	return bw
}

// routeCache memoizes node-pair routes.
type routeCache struct {
	mach  *machine.Config
	cache map[int64][]topology.LinkID
}

func newRouteCache(mach *machine.Config) routeCache {
	return routeCache{mach: mach, cache: make(map[int64][]topology.LinkID)}
}

func (rc *routeCache) get(srcNode, dstNode int) []topology.LinkID {
	key := int64(srcNode)<<32 | int64(uint32(dstNode))
	if path, ok := rc.cache[key]; ok {
		return path
	}
	path := rc.mach.Topo.Route(nil, srcNode, dstNode)
	rc.cache[key] = path
	return path
}
