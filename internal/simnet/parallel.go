package simnet

import (
	"fmt"
	"sync/atomic"

	"hpctradeoff/internal/des"
	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/topology"
)

// ParallelPacket is a packet-level network simulation on the
// conservative (Chandy–Misra–Bryant) parallel engine — the
// architecture SST/Macro's PDES core uses for large-scale runs. Every
// router is an actor owning the occupancy state of its outgoing links;
// packets hop between actors as timestamped messages, and the engine's
// lookahead is the link latency.
//
// It simulates preloaded synthetic traffic (the trace-replay driver is
// coupled to the sequential engine); inject all messages, then Run.
type ParallelPacket struct {
	par  *des.Parallel
	mach *machine.Config
	cfg  Config

	actorOf   map[int32]des.ActorID // topology element → actor
	delivered atomic.Int64
	makespan  atomic.Int64 // latest delivery, in ticks
	packets   int64
	started   bool
}

// routerActor owns the busy-until state of the links departing one
// topology element.
type routerActor struct {
	net  *ParallelPacket
	self des.ActorID
	busy map[topology.LinkID]simtime.Time
}

// pktHop is the message: a packet arriving at path[idx]. remaining is
// the message's undelivered-packet counter, shared by its packets.
// One pktHop is allocated per packet at injection and rides the whole
// path as a pointer (idx advancing in place): exactly one event
// references it at any time, and passing a pointer through the
// engine's `any` message slot does not allocate, where a struct copy
// would box on every hop.
type pktHop struct {
	path      []topology.LinkID
	size      int64
	idx       int
	remaining *atomic.Int64
}

// NewParallelPacket builds the actor graph over numLPs logical
// processes. The engine lookahead is the machine's link latency, which
// must be positive.
func NewParallelPacket(mach *machine.Config, cfg Config, numLPs int) (*ParallelPacket, error) {
	if mach.LinkLatency <= 0 {
		return nil, fmt.Errorf("simnet: parallel packet needs positive link latency for lookahead")
	}
	par, err := des.NewParallel(numLPs, mach.LinkLatency)
	if err != nil {
		return nil, err
	}
	pp := &ParallelPacket{
		par:     par,
		mach:    mach,
		cfg:     cfg.withDefaults(Packet),
		actorOf: make(map[int32]des.ActorID),
	}
	// One actor per distinct link-owning element, round-robin over LPs.
	topo := mach.Topo
	lp := 0
	for id := 0; id < topo.NumLinks(); id++ {
		owner := pp.ownerElem(topology.LinkID(id))
		if _, ok := pp.actorOf[owner]; !ok {
			a := &routerActor{net: pp, busy: make(map[topology.LinkID]simtime.Time)}
			a.self = par.AddActor(a, lp%numLPs)
			pp.actorOf[owner] = a.self
			lp++
		}
	}
	return pp, nil
}

// ownerElem returns the element whose actor owns a link's occupancy:
// the element the link departs from, except injection links, which are
// owned by the router they enter (nodes are not actors).
func (pp *ParallelPacket) ownerElem(id topology.LinkID) int32 {
	l := pp.mach.Topo.Link(id)
	if l.Kind == topology.Injection {
		return l.To
	}
	return l.From
}

// Inject schedules a message from rank src to rank dst at the given
// time. Must be called before Run. Same-node messages are counted as
// delivered immediately (no network traversal).
func (pp *ParallelPacket) Inject(at simtime.Time, src, dst int32, bytes int64) {
	if pp.started {
		panic("simnet: Inject after Run")
	}
	srcNode, dstNode := pp.mach.NodeOf[src], pp.mach.NodeOf[dst]
	if srcNode == dstNode {
		pp.delivered.Add(1)
		return
	}
	path := pp.mach.Topo.Route(nil, int(srcNode), int(dstNode))
	n := int((bytes + pp.cfg.PacketBytes - 1) / pp.cfg.PacketBytes)
	if n == 0 {
		n = 1
	}
	last := bytes - int64(n-1)*pp.cfg.PacketBytes
	remaining := &atomic.Int64{}
	remaining.Store(int64(n))
	for i := 0; i < n; i++ {
		size := pp.cfg.PacketBytes
		if i == n-1 {
			size = max(last, 1)
		}
		pp.packets++
		first := pp.actorOf[pp.ownerElem(path[0])]
		pp.par.ScheduleInitial(first, at+pp.mach.NICLatency, &pktHop{path: path, size: size, remaining: remaining})
	}
}

// Run executes the simulation to quiescence and returns the makespan
// (latest delivery time). When a budget or Stop cut the run short, Err
// reports the typed reason and the makespan covers only the executed
// prefix.
func (pp *ParallelPacket) Run() simtime.Time {
	pp.started = true
	pp.par.Run()
	return simtime.Time(pp.makespan.Load())
}

// SetBudget bounds the run (see des.Budget). Must be called before Run.
func (pp *ParallelPacket) SetBudget(b des.Budget) { pp.par.SetBudget(b) }

// Stop cooperatively cancels the run from any goroutine.
func (pp *ParallelPacket) Stop() { pp.par.Stop() }

// Err reports why Run stopped early (wrapping des.ErrBudgetExceeded or
// des.ErrCanceled), or nil after a complete run.
func (pp *ParallelPacket) Err() error { return pp.par.Err() }

// Delivered returns the number of delivered messages (counting each
// injected message once; multi-packet messages count per packet).
func (pp *ParallelPacket) Delivered() int64 { return pp.delivered.Load() }

// Packets returns the number of packets injected.
func (pp *ParallelPacket) Packets() int64 { return pp.packets }

// Steps returns the total number of DES events executed across all
// LPs (valid after Run returns) — the cost metric differential tests
// compare across engine configurations.
func (pp *ParallelPacket) Steps() uint64 { return pp.par.Steps() }

// NullMessages exposes the engine's synchronization-message count.
func (pp *ParallelPacket) NullMessages() uint64 { return pp.par.NullMessages() }

// PerLP exposes the engine's per-logical-process counters.
func (pp *ParallelPacket) PerLP() []des.LPStats { return pp.par.PerLP() }

// Handle implements des.Actor: process a packet's arrival at one link.
func (a *routerActor) Handle(now simtime.Time, msg any, s des.Scheduler) {
	hop := msg.(*pktHop)
	net := a.net
	if hop.idx >= len(hop.path) {
		// Delivery notice scheduled below: the message is delivered now.
		// Recording delivery in its own event (rather than inline at the
		// ejection hop with a future timestamp) keeps the accounting
		// event-timed exactly like the sequential model, so a budget that
		// halts before the delivery time excludes the same deliveries in
		// both engines.
		net.delivered.Add(1)
		at := int64(now)
		for {
			cur := net.makespan.Load()
			if at <= cur || net.makespan.CompareAndSwap(cur, at) {
				break
			}
		}
		return
	}
	link := hop.path[hop.idx]
	bw := net.linkBW(link)
	begin := simtime.Max(now, a.busy[link])
	departure := begin + simtime.TransferTime(hop.size, bw)
	a.busy[link] = departure

	if hop.idx+1 >= len(hop.path) {
		// Ejected: the message lands when its last packet clears the
		// ejection wire and NIC. Per-link FIFO makes the final packet's
		// departure the message's latest, so only it posts the notice.
		if hop.remaining.Add(-1) == 0 {
			hop.idx = len(hop.path) // repurpose the hop as a delivery notice
			s.Schedule(a.self, departure-now+net.mach.LinkLatency+net.mach.NICLatency, hop)
		}
		return
	}
	next := hop.path[hop.idx+1]
	target := net.actorOf[net.ownerElem(next)]
	// Delay to the next hop: remaining occupancy plus wire latency;
	// always ≥ link latency, the engine lookahead. The same pktHop
	// object rides the whole path; only idx advances.
	hop.idx++
	s.Schedule(target, departure-now+net.mach.LinkLatency, hop)
}

func (pp *ParallelPacket) linkBW(id topology.LinkID) float64 {
	var bw float64
	switch pp.mach.Topo.Link(id).Kind {
	case topology.Injection, topology.Ejection:
		bw = pp.mach.InjectionBandwidth
	default:
		bw = pp.mach.LinkBandwidth
	}
	if pp.mach.LinkBWScale != nil {
		bw *= pp.mach.LinkBWScale[id]
	}
	return bw
}
