package simnet

import (
	"errors"
	"fmt"
	"testing"

	"hpctradeoff/internal/des"
	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
)

// permutation returns a deterministic traffic pattern: each rank sends
// one message to (rank*5+3) mod n.
func permutationTraffic(n int) [][2]int32 {
	var out [][2]int32
	for r := 0; r < n; r++ {
		d := (r*5 + 3) % n
		if d != r {
			out = append(out, [2]int32{int32(r), int32(d)})
		}
	}
	return out
}

// sequentialMakespan runs the same traffic through the sequential
// packet model.
func sequentialMakespan(t *testing.T, mach *machine.Config, traffic [][2]int32, bytes int64) (simtime.Time, int) {
	t.Helper()
	var eng des.Engine
	net, err := New(Packet, &eng, mach, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var last simtime.Time
	delivered := 0
	for _, p := range traffic {
		net.Send(p[0], p[1], bytes, func() {
			delivered++
			last = simtime.Max(last, eng.Now())
		})
	}
	eng.Run()
	return last, delivered
}

func TestParallelPacketMatchesSequential(t *testing.T) {
	mach, err := machine.Hopper(48, 8)
	if err != nil {
		t.Fatal(err)
	}
	traffic := permutationTraffic(48)
	const bytes = 96 << 10

	seqTime, seqDelivered := sequentialMakespan(t, mach, traffic, bytes)

	for _, lps := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("lps=%d", lps), func(t *testing.T) {
			pp, err := NewParallelPacket(mach, Config{}, lps)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range traffic {
				pp.Inject(0, p[0], p[1], bytes)
			}
			end := pp.Run()
			// Every cross-node message must be delivered exactly once.
			if got := int(pp.Delivered()); got != seqDelivered {
				t.Errorf("delivered %d messages, want %d", got, seqDelivered)
			}
			// Makespan must agree with the sequential model within a
			// small tolerance (tie-breaking order differs; the delivery
			// NIC hop is counted slightly differently).
			lo, hi := seqTime.Scale(0.9), seqTime.Scale(1.15)
			if end < lo || end > hi {
				t.Errorf("parallel makespan %v outside [%v, %v] of sequential %v", end, lo, hi, seqTime)
			}
		})
	}
}

// diffTraffic is a tie-free cross-node pattern for the differential
// tests: staggered start times and distinct sizes ensure no two
// packets from different senders ever contend for a link at the same
// timestamp, so sequential and parallel tie-breaking cannot diverge.
type diffMsg struct {
	at       simtime.Time
	src, dst int32
	bytes    int64
}

func diffTraffic(mach *machine.Config, n int) []diffMsg {
	var out []diffMsg
	for r := 0; r < n; r++ {
		d := (r*7 + 5) % n
		if d == r || mach.NodeOf[r] == mach.NodeOf[d] {
			continue // keep the comparison free of loopback asymmetry
		}
		out = append(out, diffMsg{
			at:    simtime.Time(r) * 5 * simtime.Microsecond,
			src:   int32(r),
			dst:   int32(d),
			bytes: 48<<10 + int64(r)<<10,
		})
	}
	return out
}

// runSequentialPacket replays traffic on the sequential packet model,
// returning (last delivery time, delivered count, packet count, error).
func runSequentialPacket(t *testing.T, mach *machine.Config, traffic []diffMsg, b des.Budget) (simtime.Time, int, int64, error) {
	t.Helper()
	var eng des.Engine
	eng.SetBudget(b)
	net, err := New(Packet, &eng, mach, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var last simtime.Time
	delivered := 0
	for _, m := range traffic {
		m := m
		eng.At(m.at, func() {
			net.Send(m.src, m.dst, m.bytes, func() {
				delivered++
				last = simtime.Max(last, eng.Now())
			})
		})
	}
	eng.Run()
	return last, delivered, net.Stats().Packets, eng.Err()
}

// TestDifferentialSequentialVsCMB pins the optimized engines to each
// other: the same workload through the sequential event loop and the
// CMB parallel engine must produce bit-identical predicted times and
// event counts, at every LP count. This is the determinism contract
// the engine rewrite (4-ary heap, pooled packets, deterministic
// cross-LP tie-break) must not bend.
func TestDifferentialSequentialVsCMB(t *testing.T) {
	mach, err := machine.Hopper(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	traffic := diffTraffic(mach, 64)
	if len(traffic) < 32 {
		t.Fatalf("degenerate traffic pattern: %d messages", len(traffic))
	}
	seqTime, seqDelivered, seqPackets, seqErr := runSequentialPacket(t, mach, traffic, des.Budget{})
	if seqErr != nil {
		t.Fatalf("sequential run failed: %v", seqErr)
	}

	var steps1 uint64
	for _, lps := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("lps=%d", lps), func(t *testing.T) {
			pp, err := NewParallelPacket(mach, Config{}, lps)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range traffic {
				pp.Inject(m.at, m.src, m.dst, m.bytes)
			}
			end := pp.Run()
			if err := pp.Err(); err != nil {
				t.Fatalf("parallel run failed: %v", err)
			}
			if end != seqTime {
				t.Errorf("parallel makespan %v != sequential %v (drift %v)", end, seqTime, end-seqTime)
			}
			if got := int(pp.Delivered()); got != seqDelivered {
				t.Errorf("delivered %d, want %d", got, seqDelivered)
			}
			if pp.Packets() != seqPackets {
				t.Errorf("packets %d, want %d", pp.Packets(), seqPackets)
			}
			// Event counts must be identical across LP partitions: the
			// same packets make the same hops no matter how routers are
			// spread over goroutines.
			if lps == 1 {
				steps1 = pp.Steps()
			} else if pp.Steps() != steps1 {
				t.Errorf("lps=%d executed %d events, lps=1 executed %d", lps, pp.Steps(), steps1)
			}
		})
	}
}

// TestDifferentialBudgetHalt runs the same workload under a
// simulated-time budget that halts mid-run. With one LP the parallel
// engine sees the global timestamp order, so the executed prefix —
// and therefore delivered count and last delivery — must match the
// sequential engine exactly; with more LPs the halt point is only
// locally ordered, so the test asserts the typed error and that the
// parallel run delivered a prefix, never more than the full run.
func TestDifferentialBudgetHalt(t *testing.T) {
	mach, err := machine.Hopper(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	traffic := diffTraffic(mach, 64)
	fullTime, fullDelivered, _, _ := runSequentialPacket(t, mach, traffic, des.Budget{})
	budget := des.Budget{MaxTime: fullTime / 2}

	seqTime, seqDelivered, _, seqErr := runSequentialPacket(t, mach, traffic, budget)
	if !errors.Is(seqErr, des.ErrBudgetExceeded) {
		t.Fatalf("sequential budget err = %v, want ErrBudgetExceeded", seqErr)
	}
	if seqDelivered >= fullDelivered {
		t.Fatalf("budget did not bite: %d of %d delivered", seqDelivered, fullDelivered)
	}

	for _, lps := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("lps=%d", lps), func(t *testing.T) {
			pp, err := NewParallelPacket(mach, Config{}, lps)
			if err != nil {
				t.Fatal(err)
			}
			pp.SetBudget(budget)
			for _, m := range traffic {
				pp.Inject(m.at, m.src, m.dst, m.bytes)
			}
			end := pp.Run()
			if !errors.Is(pp.Err(), des.ErrBudgetExceeded) {
				t.Fatalf("parallel budget err = %v, want ErrBudgetExceeded", pp.Err())
			}
			if int(pp.Delivered()) > fullDelivered {
				t.Errorf("delivered %d, more than the complete run's %d", pp.Delivered(), fullDelivered)
			}
			if lps == 1 {
				// Single LP: identical halt point, bit-identical prefix.
				if int(pp.Delivered()) != seqDelivered {
					t.Errorf("delivered %d, want sequential's %d", pp.Delivered(), seqDelivered)
				}
				if end != seqTime {
					t.Errorf("halted makespan %v != sequential %v", end, seqTime)
				}
			}
		})
	}
}

func TestParallelPacketLoopbackCountsDelivered(t *testing.T) {
	mach, err := machine.Cielito(8, 8) // all ranks one node
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewParallelPacket(mach, Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	pp.Inject(0, 0, 1, 4096)
	pp.Inject(0, 2, 3, 4096)
	end := pp.Run()
	if pp.Delivered() != 2 {
		t.Errorf("delivered = %d, want 2", pp.Delivered())
	}
	if end != 0 {
		t.Errorf("loopback-only makespan = %v, want 0", end)
	}
}

func TestParallelPacketInjectAfterRunPanics(t *testing.T) {
	mach, err := machine.Edison(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewParallelPacket(mach, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pp.Inject(0, 0, 7, 1024)
	pp.Run()
	defer func() {
		if recover() == nil {
			t.Error("Inject after Run did not panic")
		}
	}()
	pp.Inject(0, 0, 7, 1024)
}

func TestParallelPacketSynchronizationCost(t *testing.T) {
	// With more LPs the CMB protocol exchanges null messages; the count
	// must be observable and grow with LP count.
	mach, err := machine.Edison(48, 8)
	if err != nil {
		t.Fatal(err)
	}
	traffic := permutationTraffic(48)
	var prev uint64
	for _, lps := range []int{1, 4} {
		pp, err := NewParallelPacket(mach, Config{}, lps)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range traffic {
			pp.Inject(0, p[0], p[1], 32<<10)
		}
		pp.Run()
		nulls := pp.NullMessages()
		if lps == 1 && nulls != 0 {
			t.Errorf("single LP exchanged %d null messages", nulls)
		}
		if lps > 1 && nulls <= prev {
			t.Errorf("lps=%d: null messages = %d, want > %d", lps, nulls, prev)
		}
		prev = nulls
	}
}
