package simnet

import (
	"fmt"
	"testing"

	"hpctradeoff/internal/des"
	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
)

// permutation returns a deterministic traffic pattern: each rank sends
// one message to (rank*5+3) mod n.
func permutationTraffic(n int) [][2]int32 {
	var out [][2]int32
	for r := 0; r < n; r++ {
		d := (r*5 + 3) % n
		if d != r {
			out = append(out, [2]int32{int32(r), int32(d)})
		}
	}
	return out
}

// sequentialMakespan runs the same traffic through the sequential
// packet model.
func sequentialMakespan(t *testing.T, mach *machine.Config, traffic [][2]int32, bytes int64) (simtime.Time, int) {
	t.Helper()
	var eng des.Engine
	net, err := New(Packet, &eng, mach, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var last simtime.Time
	delivered := 0
	for _, p := range traffic {
		net.Send(p[0], p[1], bytes, func() {
			delivered++
			last = simtime.Max(last, eng.Now())
		})
	}
	eng.Run()
	return last, delivered
}

func TestParallelPacketMatchesSequential(t *testing.T) {
	mach, err := machine.Hopper(48, 8)
	if err != nil {
		t.Fatal(err)
	}
	traffic := permutationTraffic(48)
	const bytes = 96 << 10

	seqTime, seqDelivered := sequentialMakespan(t, mach, traffic, bytes)

	for _, lps := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("lps=%d", lps), func(t *testing.T) {
			pp, err := NewParallelPacket(mach, Config{}, lps)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range traffic {
				pp.Inject(0, p[0], p[1], bytes)
			}
			end := pp.Run()
			// Every cross-node message must be delivered exactly once.
			if got := int(pp.Delivered()); got != seqDelivered {
				t.Errorf("delivered %d messages, want %d", got, seqDelivered)
			}
			// Makespan must agree with the sequential model within a
			// small tolerance (tie-breaking order differs; the delivery
			// NIC hop is counted slightly differently).
			lo, hi := seqTime.Scale(0.9), seqTime.Scale(1.15)
			if end < lo || end > hi {
				t.Errorf("parallel makespan %v outside [%v, %v] of sequential %v", end, lo, hi, seqTime)
			}
		})
	}
}

func TestParallelPacketLoopbackCountsDelivered(t *testing.T) {
	mach, err := machine.Cielito(8, 8) // all ranks one node
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewParallelPacket(mach, Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	pp.Inject(0, 0, 1, 4096)
	pp.Inject(0, 2, 3, 4096)
	end := pp.Run()
	if pp.Delivered() != 2 {
		t.Errorf("delivered = %d, want 2", pp.Delivered())
	}
	if end != 0 {
		t.Errorf("loopback-only makespan = %v, want 0", end)
	}
}

func TestParallelPacketInjectAfterRunPanics(t *testing.T) {
	mach, err := machine.Edison(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewParallelPacket(mach, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pp.Inject(0, 0, 7, 1024)
	pp.Run()
	defer func() {
		if recover() == nil {
			t.Error("Inject after Run did not panic")
		}
	}()
	pp.Inject(0, 0, 7, 1024)
}

func TestParallelPacketSynchronizationCost(t *testing.T) {
	// With more LPs the CMB protocol exchanges null messages; the count
	// must be observable and grow with LP count.
	mach, err := machine.Edison(48, 8)
	if err != nil {
		t.Fatal(err)
	}
	traffic := permutationTraffic(48)
	var prev uint64
	for _, lps := range []int{1, 4} {
		pp, err := NewParallelPacket(mach, Config{}, lps)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range traffic {
			pp.Inject(0, p[0], p[1], 32<<10)
		}
		pp.Run()
		nulls := pp.NullMessages()
		if lps == 1 && nulls != 0 {
			t.Errorf("single LP exchanged %d null messages", nulls)
		}
		if lps > 1 && nulls <= prev {
			t.Errorf("lps=%d: null messages = %d, want > %d", lps, nulls, prev)
		}
		prev = nulls
	}
}
