package simnet

import (
	"fmt"
	"testing"

	"hpctradeoff/internal/des"
	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
)

func benchMach(b *testing.B) *machine.Config {
	b.Helper()
	m, err := machine.Edison(96, 24)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// benchTraffic injects a random-permutation traffic pattern and runs
// the network to completion.
func benchTraffic(b *testing.B, m Model, cfg Config, msgs int, bytes int64) {
	mach := benchMach(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var eng des.Engine
		net, err := New(m, &eng, mach, cfg)
		if err != nil {
			b.Fatal(err)
		}
		delivered := 0
		for k := 0; k < msgs; k++ {
			src := int32(k % 96)
			dst := int32((k*37 + 11) % 96)
			if src == dst {
				dst = (dst + 1) % 96
			}
			net.Send(src, dst, bytes, func() { delivered++ })
		}
		eng.Run()
		if delivered != msgs {
			b.Fatalf("delivered %d of %d", delivered, msgs)
		}
	}
}

// Per-model message throughput at the two ends of the size range.
func BenchmarkPacketSmallMsgs(b *testing.B)     { benchTraffic(b, Packet, Config{}, 512, 1024) }
func BenchmarkPacketLargeMsgs(b *testing.B)     { benchTraffic(b, Packet, Config{}, 64, 1<<20) }
func BenchmarkFlowSmallMsgs(b *testing.B)       { benchTraffic(b, Flow, Config{}, 512, 1024) }
func BenchmarkFlowLargeMsgs(b *testing.B)       { benchTraffic(b, Flow, Config{}, 64, 1<<20) }
func BenchmarkPacketFlowSmallMsgs(b *testing.B) { benchTraffic(b, PacketFlow, Config{}, 512, 1024) }
func BenchmarkPacketFlowLargeMsgs(b *testing.B) { benchTraffic(b, PacketFlow, Config{}, 64, 1<<20) }

// BenchmarkPacketSizeAblation sweeps the packet model's granularity:
// smaller packets mean more events (the accuracy/cost knob).
func BenchmarkPacketSizeAblation(b *testing.B) {
	for _, sz := range []int64{256, 512, 1024, 4096} {
		b.Run(fmt.Sprintf("%dB", sz), func(b *testing.B) {
			benchTraffic(b, Packet, Config{PacketBytes: sz}, 64, 1<<20)
		})
	}
}

// BenchmarkFlowChurn stresses the ripple path: many short flows
// starting and finishing while long flows persist.
func BenchmarkFlowChurn(b *testing.B) {
	mach := benchMach(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var eng des.Engine
		net, err := New(Flow, &eng, mach, Config{})
		if err != nil {
			b.Fatal(err)
		}
		// Four long background flows.
		for k := 0; k < 4; k++ {
			net.Send(int32(k), int32(95-k), 8<<20, func() {})
		}
		// A stream of short flows arriving over time.
		var spawn func(k int)
		spawn = func(k int) {
			if k >= 400 {
				return
			}
			net.Send(int32(8+k%40), int32(50+k%40), 64<<10, func() {})
			eng.After(20*simtime.Microsecond, func() { spawn(k + 1) })
		}
		eng.After(0, func() { spawn(0) })
		eng.Run()
	}
	b.StopTimer()
}

// BenchmarkParallelPacketLPs scales the CMB-parallel packet network
// over LP counts (uniform random-permutation traffic). On multicore
// hosts this shows PDES speedup; the null-message overhead is visible
// either way.
func BenchmarkParallelPacketLPs(b *testing.B) {
	mach, err := machine.Hopper(96, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, lps := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("lps=%d", lps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pp, err := NewParallelPacket(mach, Config{}, lps)
				if err != nil {
					b.Fatal(err)
				}
				for r := 0; r < 96; r++ {
					d := (r*11 + 5) % 96
					if d != r {
						pp.Inject(0, int32(r), int32(d), 256<<10)
					}
				}
				pp.Run()
			}
		})
	}
}
