// Package simnet provides the SST/Macro-analog network simulation
// models the study compares: a packet-level model (per-packet
// store-and-forward with exclusive channel reservation), a flow-level
// model (fluid max-min bandwidth sharing with ripple updates), and the
// hybrid packet-flow model (coarse packets that sample congestion with
// channel multiplexing). All three run on the sequential DES engine
// and route messages over the machine's topology, so all three observe
// network contention — the capability that distinguishes simulation
// from Hockney-style modeling.
package simnet

import (
	"errors"
	"fmt"

	"hpctradeoff/internal/des"
	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
)

// Model names the simulation granularity, mirroring SST/Macro's packet
// (3.0), flow (3.0), and packet-flow (6.1) models.
type Model string

// The three SST/Macro-analog models.
const (
	Packet     Model = "packet"
	Flow       Model = "flow"
	PacketFlow Model = "packetflow"
)

// Models lists the simulation models in the order the paper reports
// them.
func Models() []Model { return []Model{Packet, Flow, PacketFlow} }

// ErrUnsupportedTrace is returned by networks that cannot replay a
// trace's feature set (the analog of SST/Macro 3.0's packet and flow
// models failing on complex MPI grouping and multi-threaded traces).
var ErrUnsupportedTrace = errors.New("simnet: trace uses features this model does not support")

// Network delivers messages between ranks under some timing model.
// Implementations are driven by a DES engine; Send must be called from
// engine context (time = engine.Now()).
type Network interface {
	// Model identifies the timing model.
	Model() Model
	// Send injects a message of the given size from rank src to rank
	// dst; onDelivered runs (in engine context) when the last byte
	// arrives at dst. Loopback (same node) messages are delivered after
	// a memcpy-speed delay.
	Send(src, dst int32, bytes int64, onDelivered func())
	// Stats reports cumulative cost counters.
	Stats() Stats
}

// Stats are the cost counters of a network simulation; the study's
// complexity comparisons are in terms of these.
type Stats struct {
	// Messages is the number of Send calls.
	Messages int64
	// Packets is the number of packet events created (0 for flow).
	Packets int64
	// FlowUpdates is the number of fluid rate recomputations (0 for
	// packet models).
	FlowUpdates int64
	// BytesSent is the total payload injected.
	BytesSent int64
}

// Config tunes a model instance.
type Config struct {
	// PacketBytes is the packet size. Defaults: 512 B for the packet
	// model (fine-grained serialization, the expensive end of the
	// "hundreds of bytes" range) and 4 KiB for the packet-flow model
	// (the SST/Macro developers recommend 1–8 KiB).
	PacketBytes int64
	// LoopbackBandwidth is the intra-node copy bandwidth in bytes/s
	// (default 8 GB/s).
	LoopbackBandwidth float64
}

func (c Config) withDefaults(m Model) Config {
	if c.PacketBytes <= 0 {
		if m == Packet {
			c.PacketBytes = 512
		} else {
			c.PacketBytes = 4 << 10
		}
	}
	if c.LoopbackBandwidth <= 0 {
		c.LoopbackBandwidth = 8e9
	}
	return c
}

// New constructs a network of the given model bound to a machine and a
// DES engine.
func New(m Model, eng *des.Engine, mach *machine.Config, cfg Config) (Network, error) {
	cfg = cfg.withDefaults(m)
	switch m {
	case Packet:
		return newPacketNet(eng, mach, cfg, false), nil
	case PacketFlow:
		return newPacketNet(eng, mach, cfg, true), nil
	case Flow:
		return newFlowNet(eng, mach, cfg), nil
	}
	return nil, fmt.Errorf("simnet: unknown model %q", m)
}

// Supports reports whether the model can replay a trace with the given
// capability flags. SST/Macro 3.0's packet and flow models cannot
// handle complex communicator grouping or MPI thread-multiple traces;
// the 6.1 packet-flow model handles everything.
func Supports(m Model, usesCommSplit, usesThreadMultiple bool) bool {
	switch m {
	case Packet:
		return !usesThreadMultiple
	case Flow:
		return !usesThreadMultiple && !usesCommSplit
	default:
		return true
	}
}

// loopback computes the delivery delay for intra-node messages.
func loopback(bytes int64, cfg Config, mach *machine.Config) simtime.Time {
	return mach.NICLatency + simtime.TransferTime(bytes, cfg.LoopbackBandwidth)
}
