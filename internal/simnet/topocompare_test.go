package simnet

import (
	"testing"

	"hpctradeoff/internal/des"
	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
)

// TestTopologyContentionComparison runs the same all-to-all-style
// traffic over the three topology classes and checks basic sanity: all
// deliver everything, and every topology's makespan is bounded by the
// serialized worst case.
func TestTopologyContentionComparison(t *testing.T) {
	const ranks = 96
	const bytes = 64 << 10
	machines := map[string]*machine.Config{}
	for _, name := range []string{"cielito", "hopper", "edison", "fattree"} {
		m, err := machine.New(name, ranks, 8)
		if err != nil {
			t.Fatal(err)
		}
		machines[name] = m
	}
	results := map[string]simtime.Time{}
	for name, mach := range machines {
		var eng des.Engine
		net, err := New(PacketFlow, &eng, mach, Config{})
		if err != nil {
			t.Fatal(err)
		}
		delivered := 0
		var last simtime.Time
		// Shifted permutation rounds: every rank sends to three
		// offsets, all at once (a burst pattern).
		for _, off := range []int{1, ranks / 3, ranks / 2} {
			for r := 0; r < ranks; r++ {
				dst := int32((r + off) % ranks)
				if dst == int32(r) {
					continue
				}
				net.Send(int32(r), dst, bytes, func() {
					delivered++
					last = simtime.Max(last, eng.Now())
				})
			}
		}
		eng.Run()
		if delivered == 0 {
			t.Fatalf("%s: nothing delivered", name)
		}
		results[name] = last
		// Upper bound: all traffic through one link, serially.
		worst := simtime.TransferTime(int64(delivered)*bytes, mach.LinkBandwidth)
		if last > worst {
			t.Errorf("%s: makespan %v exceeds fully-serialized bound %v", name, last, worst)
		}
	}
	// The 100 Gb/s fat-tree cluster must beat 10 Gb/s Cielito.
	if results["fattree"] >= results["cielito"] {
		t.Errorf("fattree (%v) not faster than cielito (%v)", results["fattree"], results["cielito"])
	}
	t.Logf("burst makespans: %v", results)
}
