package simnet

import (
	"math"
	"testing"

	"hpctradeoff/internal/des"
	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
)

func testMachine(t *testing.T, ranks int) *machine.Config {
	t.Helper()
	m, err := machine.Cielito(ranks, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func deliverOne(t *testing.T, model Model, mach *machine.Config, src, dst int32, bytes int64) simtime.Time {
	t.Helper()
	var eng des.Engine
	net, err := New(model, &eng, mach, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var at simtime.Time = -1
	net.Send(src, dst, bytes, func() { at = eng.Now() })
	eng.Run()
	if at < 0 {
		t.Fatalf("%s: message never delivered", model)
	}
	return at
}

func TestSingleMessageLatencyAllModels(t *testing.T) {
	mach := testMachine(t, 32)
	for _, m := range Models() {
		t.Run(string(m), func(t *testing.T) {
			// A small cross-node message's delivery time should be on
			// the order of α (within a small factor: per-hop
			// serialization differs by model).
			got := deliverOne(t, m, mach, 0, 31, 64)
			if got <= 0 {
				t.Fatalf("delivery at %v", got)
			}
			lo, hi := mach.Alpha.Scale(0.3), mach.Alpha.Scale(4)
			if got < lo || got > hi {
				t.Errorf("64B delivery = %v, want within [%v, %v] (α=%v)", got, lo, hi, mach.Alpha)
			}
		})
	}
}

func TestLargeMessageBandwidthBound(t *testing.T) {
	mach := testMachine(t, 32)
	const bytes = 10 << 20
	serialization := simtime.TransferTime(bytes, mach.LinkBandwidth)
	for _, m := range Models() {
		t.Run(string(m), func(t *testing.T) {
			got := deliverOne(t, m, mach, 0, 31, bytes)
			// At least one full serialization; at most ~hops+2 of them
			// (packet model store-and-forward pipelines packets, so it
			// should be close to 1×, definitely below 3×).
			if got < serialization {
				t.Errorf("10MB delivered in %v, faster than line rate %v", got, serialization)
			}
			if got > serialization.Scale(3) {
				t.Errorf("10MB delivered in %v, more than 3× line rate %v", got, serialization)
			}
		})
	}
}

func TestLoopbackFastPath(t *testing.T) {
	mach := testMachine(t, 8) // ranks 0-3 share node 0
	for _, m := range Models() {
		net := deliverOne(t, m, mach, 0, 1, 4096)
		cross := deliverOne(t, m, mach, 0, 7, 4096)
		if net >= cross {
			t.Errorf("%s: loopback %v not faster than cross-node %v", m, net, cross)
		}
	}
}

// TestContentionSharing: two messages crossing the same link should
// each take roughly twice as long as an uncontended one, in every
// model — this is exactly what modeling (Hockney) cannot see.
func TestContentionSharing(t *testing.T) {
	mach := testMachine(t, 32)
	const bytes = 4 << 20
	for _, m := range Models() {
		t.Run(string(m), func(t *testing.T) {
			solo := deliverOne(t, m, mach, 0, 31, bytes)

			var eng des.Engine
			net, err := New(m, &eng, mach, Config{})
			if err != nil {
				t.Fatal(err)
			}
			var last simtime.Time
			done := 0
			cb := func() { done++; last = eng.Now() }
			// Same source node (ranks 0..3 on node 0): they share the
			// injection link.
			net.Send(0, 31, bytes, cb)
			net.Send(1, 30, bytes, cb)
			eng.Run()
			if done != 2 {
				t.Fatalf("delivered %d of 2", done)
			}
			ratio := float64(last) / float64(solo)
			if ratio < 1.6 || ratio > 2.6 {
				t.Errorf("contended/solo = %.2f, want ≈2", ratio)
			}
		})
	}
}

// TestNoContentionDisjointPaths: messages on disjoint paths should not
// slow each other down.
func TestNoContentionDisjointPaths(t *testing.T) {
	mach := testMachine(t, 32)
	const bytes = 4 << 20
	for _, m := range Models() {
		solo := deliverOne(t, m, mach, 0, 4, bytes)
		var eng des.Engine
		net, _ := New(m, &eng, mach, Config{})
		var last simtime.Time
		net.Send(0, 4, bytes, func() { last = simtime.Max(last, eng.Now()) })
		net.Send(31, 27, bytes, func() { last = simtime.Max(last, eng.Now()) })
		eng.Run()
		if ratio := float64(last) / float64(solo); ratio > 1.3 {
			t.Errorf("%s: disjoint concurrent/solo = %.2f, want ≈1", m, ratio)
		}
	}
}

func TestPacketModelSlowestUnderContention(t *testing.T) {
	// The packet model reserves channels exclusively, so under heavy
	// fan-in it must predict times at least as long as packet-flow.
	mach := testMachine(t, 32)
	times := map[Model]simtime.Time{}
	for _, m := range Models() {
		var eng des.Engine
		net, _ := New(m, &eng, mach, Config{})
		var last simtime.Time
		for r := int32(4); r < 20; r++ {
			net.Send(r, 0, 1<<20, func() { last = simtime.Max(last, eng.Now()) })
		}
		eng.Run()
		times[m] = last
	}
	// Both are bound by the saturated ejection link, so they converge;
	// packet must never be meaningfully faster than packet-flow.
	if float64(times[Packet]) < 0.98*float64(times[PacketFlow]) {
		t.Errorf("packet %v faster than packet-flow %v under fan-in", times[Packet], times[PacketFlow])
	}
}

func TestStatsCounters(t *testing.T) {
	mach := testMachine(t, 32)
	for _, m := range Models() {
		var eng des.Engine
		net, _ := New(m, &eng, mach, Config{})
		net.Send(0, 31, 10000, func() {})
		net.Send(4, 8, 1, func() {})
		eng.Run()
		s := net.Stats()
		if s.Messages != 2 || s.BytesSent != 10001 {
			t.Errorf("%s: stats = %+v", m, s)
		}
		switch m {
		case Packet:
			// 10000B at 512B packets = 20 packets, plus 1 for the 1B msg.
			if s.Packets != 21 {
				t.Errorf("packet: Packets = %d, want 21", s.Packets)
			}
		case PacketFlow:
			// 10000B at 4KiB packets = 3 packets, plus 1.
			if s.Packets != 4 {
				t.Errorf("packetflow: Packets = %d, want 4", s.Packets)
			}
		case Flow:
			if s.FlowUpdates == 0 {
				t.Error("flow: no rate updates recorded")
			}
		}
	}
}

func TestFlowMaxMinFairness(t *testing.T) {
	// Two flows share a bottleneck; a third on a disjoint path gets
	// full bandwidth. Completion times must reflect 1/2 vs full rate.
	mach := testMachine(t, 32)
	var eng des.Engine
	net, _ := New(Flow, &eng, mach, Config{})
	const bytes = 8 << 20
	full := simtime.TransferTime(bytes, mach.LinkBandwidth)
	var tShared, tSolo simtime.Time
	cb := func(dst *simtime.Time) func() {
		return func() { *dst = simtime.Max(*dst, eng.Now()) }
	}
	net.Send(0, 31, bytes, cb(&tShared)) // shares node-0 injection
	net.Send(1, 30, bytes, cb(&tShared))
	net.Send(8, 12, bytes, cb(&tSolo)) // disjoint
	eng.Run()
	if r := float64(tShared) / float64(full); math.Abs(r-2) > 0.4 {
		t.Errorf("shared flows finished at %.2f× line time, want ≈2", r)
	}
	if r := float64(tSolo) / float64(full); r > 1.4 {
		t.Errorf("solo flow finished at %.2f× line time, want ≈1", r)
	}
}

func TestZeroByteMessages(t *testing.T) {
	mach := testMachine(t, 32)
	for _, m := range Models() {
		got := deliverOne(t, m, mach, 0, 31, 0)
		if got <= 0 || got > mach.Alpha.Scale(4) {
			t.Errorf("%s: 0B delivery = %v", m, got)
		}
	}
}

func TestSupportsMatrix(t *testing.T) {
	cases := []struct {
		m          Model
		split, thr bool
		want       bool
	}{
		{Packet, false, false, true},
		{Packet, true, false, true},
		{Packet, false, true, false},
		{Flow, false, false, true},
		{Flow, true, false, false},
		{Flow, false, true, false},
		{PacketFlow, true, true, true},
	}
	for _, c := range cases {
		if got := Supports(c.m, c.split, c.thr); got != c.want {
			t.Errorf("Supports(%s, split=%v, thr=%v) = %v, want %v", c.m, c.split, c.thr, got, c.want)
		}
	}
}

func TestUnknownModel(t *testing.T) {
	var eng des.Engine
	if _, err := New(Model("quantum"), &eng, testMachine(t, 8), Config{}); err == nil {
		t.Fatal("want error")
	}
}

func TestDeterminism(t *testing.T) {
	mach := testMachine(t, 32)
	for _, m := range Models() {
		run := func() simtime.Time {
			var eng des.Engine
			net, _ := New(m, &eng, mach, Config{})
			var last simtime.Time
			for r := int32(0); r < 16; r++ {
				dst := (r + 16) % 32
				net.Send(r, dst, int64(1000*(r+1)), func() { last = simtime.Max(last, eng.Now()) })
			}
			eng.Run()
			return last
		}
		if a, b := run(), run(); a != b {
			t.Errorf("%s: nondeterministic results %v vs %v", m, a, b)
		}
	}
}
