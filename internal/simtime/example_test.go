package simtime_test

import (
	"fmt"

	"hpctradeoff/internal/simtime"
)

func ExampleTransferTime() {
	// Moving 1 MiB over a 10 Gb/s (1.25 GB/s) link.
	t := simtime.TransferTime(1<<20, 1.25e9)
	fmt.Println(t)
	// Output: 838.9µs
}

func ExampleTime_Scale() {
	alpha := simtime.FromNanoseconds(2500)
	fmt.Println(alpha, "→ 8× slower:", alpha.Scale(8))
	// Output: 2.5µs → 8× slower: 20µs
}
