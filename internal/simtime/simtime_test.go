package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUnitRelations(t *testing.T) {
	if Nanosecond != 1000*Picosecond || Second != 1e12*Picosecond {
		t.Fatal("unit constants inconsistent")
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	prop := func(ms uint16) bool {
		s := float64(ms) / 1000.0
		return math.Abs(FromSeconds(s).Seconds()-s) < 1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromNanoseconds(t *testing.T) {
	if got := FromNanoseconds(2500); got != 2500*Nanosecond {
		t.Errorf("FromNanoseconds(2500) = %v", got)
	}
	if got := FromNanoseconds(0.5); got != 500*Picosecond {
		t.Errorf("FromNanoseconds(0.5) = %v, want 500ps", got)
	}
}

func TestScale(t *testing.T) {
	if got := (10 * Microsecond).Scale(0.5); got != 5*Microsecond {
		t.Errorf("Scale(0.5) = %v", got)
	}
	if got := Time(3).Scale(1.0 / 3.0); got != 1 {
		t.Errorf("Scale rounding = %v, want 1", got)
	}
	if got := Time(0).Scale(1e9); got != 0 {
		t.Errorf("Scale of zero = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 || Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Fatal("Min/Max wrong")
	}
}

func TestTransferTime(t *testing.T) {
	// 1 GiB/s moving 1 GiB takes 1 s.
	const gib = 1 << 30
	if got := TransferTime(gib, gib); got != Second {
		t.Errorf("TransferTime = %v, want 1s", got)
	}
	if got := TransferTime(100, 0); got != Forever {
		t.Errorf("zero bandwidth = %v, want Forever", got)
	}
	if got := TransferTime(0, gib); got != 0 {
		t.Errorf("zero bytes = %v, want 0", got)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{500, "500ps"},
		{2500 * Nanosecond, "2.5µs"},
		{-Second, "-1s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

// Property: TransferTime is monotone in bytes for fixed bandwidth.
func TestTransferTimeMonotone(t *testing.T) {
	prop := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return TransferTime(x, 1e9) <= TransferTime(y, 1e9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
