// Package simtime provides the discrete time base shared by every
// simulator and model in this repository.
//
// Time is measured in integer picoseconds. An integer base makes
// discrete-event simulation deterministic (no float rounding drift when
// events are reordered) while picosecond resolution keeps quantization
// error negligible for the nanosecond-scale network latencies and
// multi-gigabit bandwidths the machine models use.
package simtime

import (
	"fmt"
	"math"
)

// Time is an absolute simulation time or a duration, in picoseconds.
// The zero value is the simulation epoch.
type Time int64

// Common duration units expressed in Time ticks.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a sentinel meaning "later than any event". It is far from
// overflow when added to realistic simulation times.
const Forever Time = math.MaxInt64 / 4

// FromSeconds converts a floating-point duration in seconds to Time,
// rounding to the nearest picosecond.
func FromSeconds(s float64) Time {
	return Time(math.Round(s * float64(Second)))
}

// FromNanoseconds converts a floating-point duration in nanoseconds to
// Time, rounding to the nearest picosecond.
func FromNanoseconds(ns float64) Time {
	return Time(math.Round(ns * float64(Nanosecond)))
}

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Scale multiplies t by the dimensionless factor f, rounding to the
// nearest tick. It is used to speed up or slow down recorded computation
// intervals and model parameters.
func (t Time) Scale(f float64) Time {
	return Time(math.Round(float64(t) * f))
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// String formats t with an auto-selected unit, e.g. "1.234ms".
func (t Time) String() string {
	switch abs := t; {
	case abs < 0:
		return "-" + (-t).String()
	case t == 0:
		return "0s"
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%.4gµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	}
}

// TransferTime returns the Hockney-model serialization time for moving
// bytes at bandwidth bytesPerSec (latency excluded). A zero or negative
// bandwidth yields Forever, representing an unusable channel.
func TransferTime(bytes int64, bytesPerSec float64) Time {
	if bytesPerSec <= 0 {
		return Forever
	}
	return FromSeconds(float64(bytes) / bytesPerSec)
}
