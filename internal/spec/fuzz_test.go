package spec

import (
	"errors"
	"testing"
)

// FuzzSpecParse holds the whole front end — YAML subset, JSON path,
// schema validation, and compilation — to "valid or typed error":
// arbitrary input must either compile or fail with *Error, with no
// panics, hangs, or untyped errors leaking from strconv/json/etc.
// The committed corpus under testdata/fuzz covers the interesting
// failure classes: an invalid sweep (unterminated flow sequence), an
// unknown app, and a cross-product past the manifest cap.
func FuzzSpecParse(f *testing.F) {
	f.Add([]byte(sample))
	f.Add([]byte("{\"groups\": [{\"apps\": [\"CG\"], \"classes\": [\"B\"], \"ranks\": [64], \"machines\": [\"edison\"], \"seeds\": [1]}]}"))
	f.Add([]byte("groups:\n  - apps: [CG\n    classes: B\n"))
	f.Add([]byte("a: [1, [2, [3, [4]]]]\n"))
	f.Add([]byte("- - - -\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			requireTyped(t, err)
			return
		}
		c, err := Compile(s)
		if err != nil {
			requireTyped(t, err)
			return
		}
		// A successful compile must also be deterministic and bounded.
		if len(c.Manifest) > MaxManifest {
			t.Fatalf("compiled %d entries past the %d cap", len(c.Manifest), MaxManifest)
		}
		c2, err := Compile(s)
		if err != nil || c2.Hash() != c.Hash() {
			t.Fatalf("recompilation diverged: err=%v, %s vs %s", err, c.Hash(), c2.Hash())
		}
	})
}

func requireTyped(t *testing.T, err error) {
	t.Helper()
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *spec.Error: %v", err, err)
	}
	if se.Error() == "" {
		t.Fatal("typed error with empty message")
	}
}
