package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"hpctradeoff/internal/core"
	"hpctradeoff/internal/triage"
	"hpctradeoff/internal/workload"
)

// MaxManifest caps the compiled manifest size. The cap is a validation
// rule, not a truncation: a spec whose cross-product exceeds it fails
// with a typed *Error before any Params are materialized (the fuzz
// corpus carries a huge-cross-product seed holding this).
const MaxManifest = 100_000

// Compiled is a spec compiled to its manifest and campaign
// configuration. Compilation is deterministic: the same spec document
// always yields byte-identical manifests and the same Hash.
type Compiled struct {
	Name       string
	Manifest   []workload.Params
	Schemes    []string
	Triage     *triage.Policy
	Workers    int
	KeepGoing  bool
	MaxRetries int
	Timeout    time.Duration
	MaxEvents  uint64
	hash       string
}

// Compile expands the spec's groups into the campaign manifest,
// applying the documented sweep order and threading the global
// manifest index across groups for the rotate/derived/auto policies.
func Compile(s *Spec) (*Compiled, error) {
	total := 0
	for gi := range s.Groups {
		n := s.Groups[gi].size()
		if n < 0 || total+n > MaxManifest {
			return nil, errf(0, fmt.Sprintf("groups[%d]", gi),
				"cross-product exceeds the %d-entry manifest cap", MaxManifest)
		}
		total += n
	}

	c := &Compiled{
		Name:       s.Name,
		Manifest:   make([]workload.Params, 0, total),
		Schemes:    append([]string(nil), s.Schemes...),
		Triage:     s.Triage,
		Workers:    s.Workers,
		KeepGoing:  s.KeepGoing,
		MaxRetries: s.MaxRetries,
		Timeout:    s.Timeout,
		MaxEvents:  s.MaxEvents,
	}
	for gi := range s.Groups {
		expandGroup(&s.Groups[gi], &c.Manifest)
	}
	h, err := hashCompiled(c)
	if err != nil {
		return nil, errf(0, "", "hashing compiled spec: %v", err)
	}
	c.hash = h
	return c, nil
}

// size is the group's cross-product cardinality before exclusions,
// or -1 on overflow past MaxManifest.
func (g *Group) size() int {
	mul := func(n, f int) int {
		if n < 0 || f <= 0 || n > MaxManifest/f {
			return -1
		}
		return n * f
	}
	or1 := func(n int) int {
		if n == 0 {
			return 1
		}
		return n
	}
	n := or1(g.Repeat)
	n = mul(n, len(g.Apps))
	n = mul(n, len(g.Classes))
	n = mul(n, len(g.Ranks))
	n = mul(n, or1(len(g.Machines)))
	n = mul(n, or1(len(g.RanksPerNode)))
	n = mul(n, or1(len(g.Seeds)))
	n = mul(n, or1(len(g.Iters)))
	n = mul(n, or1(len(g.Noise.LinkJitter)))
	n = mul(n, or1(len(g.Noise.NodeHetero)))
	n = mul(n, or1(len(g.Noise.OSNoise)))
	n = mul(n, or1(len(g.Noise.Seeds)))
	return n
}

// expandGroup appends the group's combinations to the manifest in the
// documented sweep order. The rotate/derived policies see the global
// index len(*out), exactly as workload.Suite's add() does, which is
// what makes specs/paper-235.yaml reproduce Suite() bit for bit.
func expandGroup(g *Group, out *[]workload.Params) {
	repeat := g.Repeat
	if repeat == 0 {
		repeat = 1
	}
	machines := g.Machines
	if g.Rotate || len(machines) == 0 {
		machines = []string{""} // placeholder: resolved per-index below
	}
	rpns := g.RanksPerNode
	if len(rpns) == 0 {
		rpns = []int{0}
	}
	seeds := g.Seeds
	if g.Derived || len(seeds) == 0 {
		seeds = []int64{0}
	}
	iters := g.Iters
	if g.Auto || len(iters) == 0 {
		iters = []int{0}
	}
	or0f := func(v []float64) []float64 {
		if len(v) == 0 {
			return []float64{0}
		}
		return v
	}
	njitter := or0f(g.Noise.LinkJitter)
	nhetero := or0f(g.Noise.NodeHetero)
	nos := or0f(g.Noise.OSNoise)
	nseeds := g.Noise.Seeds
	if len(nseeds) == 0 {
		nseeds = []int64{0}
	}

	for rep := 0; rep < repeat; rep++ {
		for _, app := range g.Apps {
			for _, class := range g.Classes {
				for _, ranks := range g.Ranks {
					for _, mach := range machines {
						for _, rpn := range rpns {
							for _, seed := range seeds {
								for _, it := range iters {
									for _, lj := range njitter {
										for _, nh := range nhetero {
											for _, osn := range nos {
												for _, ns := range nseeds {
													index := len(*out)
													m := mach
													if g.Rotate {
														m = workload.SuiteMachine(index, ranks)
													}
													sd := seed
													if g.Derived {
														sd = workload.SuiteSeed(app, class, ranks, m, index)
													}
													i := it
													if g.Auto {
														i = workload.SuiteIters(ranks)
													}
													p := workload.Params{
														App:          app,
														Class:        class,
														Ranks:        ranks,
														Machine:      m,
														RanksPerNode: rpn,
														Seed:         sd,
														Iters:        i,
														Noise: workload.Noise{
															LinkJitter: lj,
															NodeHetero: nh,
															OSNoise:    osn,
															Seed:       ns,
														},
													}
													if excluded(g.Exclude, p) {
														continue
													}
													*out = append(*out, p)
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

func excluded(matches []Match, p workload.Params) bool {
	for _, m := range matches {
		if m.hits(p) {
			return true
		}
	}
	return false
}

// hashDoc is the canonical form the spec hash covers: everything that
// changes what a campaign computes. Name is deliberately excluded —
// relabeling a spec must not orphan its checkpoint journals — and so
// is formatting, because the hash is taken over the compiled output,
// not the source text.
type hashDoc struct {
	Manifest   []workload.Params `json:"manifest"`
	Schemes    []string          `json:"schemes,omitempty"`
	Triage     *triage.Policy    `json:"triage,omitempty"`
	Workers    int               `json:"workers,omitempty"`
	KeepGoing  bool              `json:"keep_going,omitempty"`
	MaxRetries int               `json:"max_retries,omitempty"`
	TimeoutNS  int64             `json:"timeout_ns,omitempty"`
	MaxEvents  uint64            `json:"max_events,omitempty"`
}

func hashCompiled(c *Compiled) (string, error) {
	h := sha256.New()
	if err := json.NewEncoder(h).Encode(hashDoc{
		Manifest:   c.Manifest,
		Schemes:    c.Schemes,
		Triage:     c.Triage,
		Workers:    c.Workers,
		KeepGoing:  c.KeepGoing,
		MaxRetries: c.MaxRetries,
		TimeoutNS:  int64(c.Timeout),
		MaxEvents:  c.MaxEvents,
	}); err != nil {
		return "", err
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))[:32], nil
}

// Hash identifies the compiled campaign; core.CampaignConfig.SpecHash
// carries it into the checkpoint header, where the resume gate holds
// journals to the spec that wrote them.
func (c *Compiled) Hash() string { return c.hash }

// Config builds the core.CampaignConfig the spec describes. The
// caller still owns the runtime-only fields (checkpoint path, resume,
// progress, cache, cancel).
func (c *Compiled) Config() core.CampaignConfig {
	return core.CampaignConfig{
		Workers: c.Workers,
		Schemes: append([]string(nil), c.Schemes...),
		Policy: core.FailurePolicy{
			KeepGoing:  c.KeepGoing,
			MaxRetries: c.MaxRetries,
		},
		Run: core.RunOptions{
			Timeout:   c.Timeout,
			MaxEvents: c.MaxEvents,
		},
		Triage:   c.Triage,
		SpecHash: c.hash,
	}
}
