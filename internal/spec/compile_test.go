package spec

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hpctradeoff/internal/workload"
)

const sample = `
name: sample
schemes: [mfact, packetflow]
workers: 2
keep_going: true
max_retries: 1
timeout: 90s
defaults:
  machines: rotate
  seeds: derived
  iters: auto
groups:
  - apps: [CG, MG]
    classes: [A, B]
    ranks: [64, 128]
    repeat: 2
  - apps: EP
    classes: S
    ranks: 64
    machines: [edison]
    seeds: [7, 8]
    noise:
      link_jitter: [0, 0.1]
      seeds: 1
    exclude:
      - app: EP
        ranks: 128
`

func mustCompile(t *testing.T, doc string) *Compiled {
	t.Helper()
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

// TestCompileDeterministic holds the core contract: compiling the same
// document twice yields identical manifests, configs, and hashes.
func TestCompileDeterministic(t *testing.T) {
	a, b := mustCompile(t, sample), mustCompile(t, sample)
	if !reflect.DeepEqual(a.Manifest, b.Manifest) {
		t.Error("two compilations of one document disagree on the manifest")
	}
	if a.Hash() != b.Hash() {
		t.Errorf("two compilations of one document disagree on the hash: %s vs %s", a.Hash(), b.Hash())
	}
	if a.Hash() == "" {
		t.Error("empty spec hash")
	}
}

// TestCompileSample spot-checks the sweep semantics on a small spec.
func TestCompileSample(t *testing.T) {
	c := mustCompile(t, sample)
	// Group 1: 2 repeats × 2 apps × 2 classes × 2 rank counts = 16.
	// Group 2: 1 app × 1 class × 1 ranks × 2 seeds × 2 jitters = 4.
	if got, want := len(c.Manifest), 20; got != want {
		t.Fatalf("manifest size = %d, want %d", got, want)
	}
	// The rotate/derived policies must match Suite's add() exactly.
	p0 := c.Manifest[0]
	if p0.Machine != workload.SuiteMachine(0, 64) {
		t.Errorf("entry 0 machine = %s, want the index-0 rotation %s", p0.Machine, workload.SuiteMachine(0, 64))
	}
	if p0.Seed != workload.SuiteSeed("CG", "A", 64, p0.Machine, 0) {
		t.Errorf("entry 0 seed = %d, want the derived seed", p0.Seed)
	}
	// Group 2's explicit axes land verbatim; noise sweeps innermost.
	g2 := c.Manifest[16:]
	for i, p := range g2 {
		if p.App != "EP" || p.Class != "S" || p.Machine != "edison" {
			t.Fatalf("group-2 entry %d = %+v", i, p)
		}
	}
	if g2[0].Seed != 7 || g2[1].Seed != 7 || g2[2].Seed != 8 {
		t.Errorf("seeds sweep out of order: %d, %d, %d", g2[0].Seed, g2[1].Seed, g2[2].Seed)
	}
	if g2[0].Noise.LinkJitter != 0 || g2[1].Noise.LinkJitter != 0.1 {
		t.Errorf("noise sweeps out of order: %v then %v", g2[0].Noise, g2[1].Noise)
	}
	if g2[1].Noise.Seed != 1 {
		t.Errorf("noise seed not applied: %+v", g2[1].Noise)
	}
	if c.Config().SpecHash != c.Hash() {
		t.Error("Config().SpecHash disagrees with Hash()")
	}
}

// TestHashSensitivity: the hash must move with anything that changes
// the computation and stay put for pure relabeling.
func TestHashSensitivity(t *testing.T) {
	base := mustCompile(t, sample)
	renamed := mustCompile(t, "name: other\n"+sample[len("\nname: sample\n"):])
	if base.Hash() != renamed.Hash() {
		t.Error("renaming the spec changed its hash; journals would be orphaned by a relabel")
	}
	reordered := mustCompile(t, `
groups:
  - apps: [MG, CG]
    classes: B
    ranks: 64
    machines: [edison]
    seeds: [1]
`)
	reordered2 := mustCompile(t, `
groups:
  - apps: [CG, MG]
    classes: B
    ranks: 64
    machines: [edison]
    seeds: [1]
`)
	if reordered.Hash() == reordered2.Hash() {
		t.Error("reordering the app sweep kept the hash; resume would silently remap indices")
	}
}

// TestPaper235SpecMatchesSuite is the differential test the refactor
// hangs on: the committed spec file reproduces workload.Suite() bit
// for bit — every field of all 235 Params, including machine
// rotation, derived seeds, and trimmed iteration counts.
func TestPaper235SpecMatchesSuite(t *testing.T) {
	s, err := Load(filepath.Join("..", "..", "specs", "paper-235.yaml"))
	if err != nil {
		t.Fatalf("loading the committed spec: %v", err)
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatalf("compiling the committed spec: %v", err)
	}
	suite := workload.Suite()
	if len(c.Manifest) != len(suite) {
		t.Fatalf("spec compiles to %d traces, Suite() has %d", len(c.Manifest), len(suite))
	}
	for i := range suite {
		if c.Manifest[i] != suite[i] {
			t.Fatalf("trace %d diverges:\n  spec : %+v\n  suite: %+v", i, c.Manifest[i], suite[i])
		}
	}
}

// TestCrossProductCap: an over-large sweep must fail with a typed
// error, before materializing anything.
func TestCrossProductCap(t *testing.T) {
	doc := `
groups:
  - apps: [CG, MG, FT, IS, LU, BT, EP, DT]
    classes: [S, A, B, C]
    ranks: [16, 32, 64, 128]
    machines: [cielito, hopper, edison]
    seeds: [1, 2, 3, 4, 5, 6, 7, 8]
    repeat: 1000
`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := Compile(s); err == nil {
		t.Fatal("a 3M-entry cross-product compiled without error")
	} else if _, ok := err.(*Error); !ok {
		t.Fatalf("cap violation surfaced as %T, want *Error: %v", err, err)
	}
}

// TestParseErrors: representative invalid documents fail with typed
// errors naming the field.
func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown app":     "groups:\n  - apps: NoSuchApp\n    classes: B\n    ranks: 64\n    machines: [edison]\n    seeds: [1]\n",
		"unknown class":   "groups:\n  - apps: CG\n    classes: Z\n    ranks: 64\n    machines: [edison]\n    seeds: [1]\n",
		"unknown machine": "groups:\n  - apps: CG\n    classes: B\n    ranks: 64\n    machines: [vulcan]\n    seeds: [1]\n",
		"unknown scheme":  "schemes: [psychic]\ngroups:\n  - apps: CG\n    classes: B\n    ranks: 64\n    machines: [edison]\n    seeds: [1]\n",
		"unknown key":     "grupos: []\n",
		"missing groups":  "name: empty\n",
		"empty exclude":   "groups:\n  - apps: CG\n    classes: B\n    ranks: 64\n    machines: [edison]\n    seeds: [1]\n    exclude:\n      - {}\n",
		"bad sweep type":  "groups:\n  - apps: CG\n    classes: B\n    ranks: [sixty-four]\n    machines: [edison]\n    seeds: [1]\n",
		"tab indent":      "groups:\n\t- apps: CG\n",
		"negative noise":  "groups:\n  - apps: CG\n    classes: B\n    ranks: 64\n    machines: [edison]\n    seeds: [1]\n    noise:\n      link_jitter: [-0.5]\n",
	}
	for name, doc := range cases {
		s, err := Parse([]byte(doc))
		if err == nil {
			if _, err = Compile(s); err == nil {
				t.Errorf("%s: accepted", name)
				continue
			}
		}
		if _, ok := err.(*Error); !ok {
			t.Errorf("%s: error is %T, want *Error: %v", name, err, err)
		}
	}
	// "empty exclude" uses a flow mapping, which the subset rejects —
	// make sure the block form is also covered.
	doc := "groups:\n  - apps: CG\n    classes: B\n    ranks: 64\n    machines: [edison]\n    seeds: [1]\n    exclude:\n      - app: CG\n"
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("exclude block: %v", err)
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatalf("exclude block compile: %v", err)
	}
	if len(c.Manifest) != 0 {
		t.Errorf("excluding the only app left %d entries", len(c.Manifest))
	}
}

// TestJSONEquivalence: the same spec as JSON compiles to the same
// hash as its YAML form.
func TestJSONEquivalence(t *testing.T) {
	yamlDoc := `
groups:
  - apps: [CG]
    classes: [B]
    ranks: [64]
    machines: [edison]
    seeds: [5]
    noise:
      os_noise: [0, 2.5]
`
	jsonDoc := `{"groups": [{"apps": ["CG"], "classes": ["B"], "ranks": [64],
	  "machines": ["edison"], "seeds": [5], "noise": {"os_noise": [0, 2.5]}}]}`
	a, b := mustCompile(t, yamlDoc), mustCompile(t, jsonDoc)
	if a.Hash() != b.Hash() {
		t.Errorf("YAML and JSON forms of one spec hash differently:\n%v\n%v", a.Manifest, b.Manifest)
	}
}

// TestLoadMissing keeps Load's error shape stable for the CLIs.
func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.yaml")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}

// TestVariabilitySpecCompiles keeps the committed variability study
// spec compiling, with a zero-noise baseline present and at least
// three distinct non-zero amplitudes per swept axis.
func TestVariabilitySpecCompiles(t *testing.T) {
	path := filepath.Join("..", "..", "specs", "variability.yaml")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("specs/variability.yaml not present: %v", err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatalf("loading: %v", err)
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatalf("compiling: %v", err)
	}
	zero := 0
	amp := map[string]map[float64]bool{"lj": {}, "nh": {}, "os": {}}
	for _, p := range c.Manifest {
		if p.Noise.IsZero() {
			zero++
		}
		if p.Noise.LinkJitter > 0 {
			amp["lj"][p.Noise.LinkJitter] = true
		}
		if p.Noise.NodeHetero > 0 {
			amp["nh"][p.Noise.NodeHetero] = true
		}
		if p.Noise.OSNoise > 0 {
			amp["os"][p.Noise.OSNoise] = true
		}
	}
	if zero == 0 {
		t.Error("variability spec has no zero-noise baseline point")
	}
	for axis, set := range amp {
		if len(set) < 3 {
			t.Errorf("axis %s sweeps %d non-zero amplitudes, want ≥ 3", axis, len(set))
		}
	}
	seen := map[workload.Params]bool{}
	for _, p := range c.Manifest {
		if seen[p] {
			t.Fatalf("duplicate manifest entry %+v (breaks resume maps and shard merges)", p)
		}
		seen[p] = true
	}
}
