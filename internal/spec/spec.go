package spec

// Package spec lifts campaign scenarios out of code: a YAML (or JSON)
// document names the apps, classes, rank counts, machines, seeds,
// iteration counts, and platform-noise amplitudes to sweep, and
// Compile turns it deterministically into the []workload.Params
// manifest plus the core.CampaignConfig that cmd/tradeoff, tracegen,
// chaos, and bench previously hard-coded. The committed
// specs/paper-235.yaml compiles bit-identically to workload.Suite()
// (TestPaper235SpecMatchesSuite), so the study manifest is now data.
//
// Schema (every list also accepts a single scalar):
//
//	name: paper-235              # label; not part of the spec hash
//	schemes: [mfact, packetflow] # default: every registered scheme
//	workers: 4                   # default 0 = all cores
//	keep_going: true
//	max_retries: 1
//	timeout: 90s                 # per-trace wall budget
//	max_events: 0                # per-trace event budget
//	triage:                      # optional tiered-campaign policy
//	  threshold: 0.35
//	  max_escalations: 0
//	  max_wall: 10m
//	  calibration: 0
//	  cv_runs: 0
//	  max_vars: 0
//	  seed: 0
//	defaults:                    # merged field-wise into every group
//	  machines: rotate
//	  seeds: derived
//	  iters: auto
//	groups:
//	  - apps: [CG, MG]
//	    classes: [A, B]
//	    ranks: [64, 256]
//	    repeat: 2                # default 1
//	    machines: rotate         # or an explicit list
//	    ranks_per_node: [0]      # default [0] = machine default
//	    seeds: derived           # or an explicit list
//	    iters: auto              # or an explicit list (0 = app default)
//	    noise:                   # default: the single zero-noise point
//	      link_jitter: [0, 0.1]
//	      node_hetero: [0]
//	      os_noise: [0]
//	      seeds: [0]
//	    exclude:                 # drop matching combinations
//	      - app: FT
//	        ranks: 256
//
// The sweep order inside a group is fixed and documented here because
// it is part of the deterministic-compilation contract: repeat, then
// apps, classes, ranks, machines, ranks_per_node, seeds, iters, and
// innermost the noise axes (link_jitter, node_hetero, os_noise,
// seeds). `machines: rotate`, `seeds: derived`, and `iters: auto`
// defer to the suite policies (workload.SuiteMachine / SuiteSeed /
// SuiteIters) keyed by the global manifest index, which threads across
// groups; excluded combinations do not consume an index.

import (
	"fmt"
	"os"
	"time"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/scheme"
	"hpctradeoff/internal/triage"
	"hpctradeoff/internal/workload"
)

// Spec is a parsed, validated campaign spec, ready to Compile.
type Spec struct {
	Name       string
	Schemes    []string
	Workers    int
	KeepGoing  bool
	MaxRetries int
	Timeout    time.Duration
	MaxEvents  uint64
	Triage     *triage.Policy
	Groups     []Group
}

// Group is one sweep block: the cross-product of its axes, minus
// exclusions.
type Group struct {
	Apps         []string
	Classes      []string
	Ranks        []int
	Machines     []string // nil when Rotate
	Rotate       bool
	RanksPerNode []int
	Seeds        []int64 // nil when Derived
	Derived      bool
	Iters        []int // nil when Auto
	Auto         bool
	Repeat       int
	Noise        NoiseSweep
	Exclude      []Match
}

// NoiseSweep is the platform-variability axis of a group. Empty lists
// mean the single zero point on that axis.
type NoiseSweep struct {
	LinkJitter []float64
	NodeHetero []float64
	OSNoise    []float64
	Seeds      []int64
}

// Match selects combinations to exclude; empty/zero fields match
// anything, set fields must all match.
type Match struct {
	App     string
	Class   string
	Ranks   int
	Machine string
}

func (m Match) hits(p workload.Params) bool {
	return (m.App == "" || m.App == p.App) &&
		(m.Class == "" || m.Class == p.Class) &&
		(m.Ranks == 0 || m.Ranks == p.Ranks) &&
		(m.Machine == "" || m.Machine == p.Machine)
}

// Load reads and parses the campaign spec at path.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Parse parses and validates a campaign spec document (the YAML subset
// of yaml.go, or JSON when the document starts with '{'). Every
// failure is a *Error naming the offending field.
func Parse(data []byte) (*Spec, error) {
	doc, err := parseDocument(data)
	if err != nil {
		return nil, err
	}
	d := decoder{}
	s := &Spec{}
	d.keys(doc, "", "name", "schemes", "workers", "keep_going", "max_retries",
		"timeout", "max_events", "triage", "defaults", "groups")
	s.Name = d.str(doc, "name", "")
	s.Schemes = d.strList(doc, "schemes", "schemes")
	s.Workers = d.num(doc, "workers", "workers", 0, 1<<16)
	s.KeepGoing = d.boolean(doc, "keep_going", "keep_going")
	s.MaxRetries = d.num(doc, "max_retries", "max_retries", 0, 1<<16)
	s.Timeout = d.duration(doc, "timeout", "timeout")
	s.MaxEvents = uint64(d.num64(doc, "max_events", "max_events", 0, 1<<62))
	s.Triage = d.triage(doc)

	defaults := d.group(doc["defaults"], "defaults", Group{}, true)
	groups, ok := doc["groups"]
	if !ok {
		d.fail("groups", "required")
	} else {
		for i, g := range listOf(groups) {
			field := fmt.Sprintf("groups[%d]", i)
			s.Groups = append(s.Groups, d.group(g, field, defaults, false))
		}
		if len(s.Groups) == 0 {
			d.fail("groups", "must list at least one group")
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// validate cross-checks names against the live registries.
func (s *Spec) validate() error {
	schemes := map[string]bool{}
	for _, n := range scheme.Names() {
		schemes[n] = true
	}
	for _, n := range s.Schemes {
		if !schemes[n] {
			return errf(0, "schemes", "unknown scheme %q (have %v)", n, scheme.Names())
		}
	}
	apps := map[string]bool{}
	for _, n := range workload.Apps() {
		apps[n] = true
	}
	machines := map[string]bool{"fattree": true}
	for _, n := range machine.Names() {
		machines[n] = true
	}
	for gi := range s.Groups {
		g := &s.Groups[gi]
		field := fmt.Sprintf("groups[%d]", gi)
		if len(g.Apps) == 0 {
			return errf(0, field+".apps", "required")
		}
		if len(g.Classes) == 0 {
			return errf(0, field+".classes", "required")
		}
		if len(g.Ranks) == 0 {
			return errf(0, field+".ranks", "required")
		}
		for _, a := range g.Apps {
			if !apps[a] {
				return errf(0, field+".apps", "unknown app %q", a)
			}
		}
		for _, c := range g.Classes {
			switch c {
			case "S", "A", "B", "C":
			default:
				return errf(0, field+".classes", "unknown class %q (want S, A, B, or C)", c)
			}
		}
		for _, r := range g.Ranks {
			if r < 1 {
				return errf(0, field+".ranks", "rank count %d < 1", r)
			}
		}
		if !g.Rotate {
			if len(g.Machines) == 0 {
				return errf(0, field+".machines", "required (a machine list or \"rotate\")")
			}
			for _, m := range g.Machines {
				if !machines[m] {
					return errf(0, field+".machines", "unknown machine %q", m)
				}
			}
		}
		for _, r := range g.RanksPerNode {
			if r < 0 {
				return errf(0, field+".ranks_per_node", "negative ranks per node %d", r)
			}
		}
		for _, ex := range g.Exclude {
			if ex == (Match{}) {
				return errf(0, field+".exclude", "an empty match would exclude every combination")
			}
			if ex.Machine != "" && !machines[ex.Machine] {
				return errf(0, field+".exclude", "unknown machine %q", ex.Machine)
			}
			if ex.App != "" && !apps[ex.App] {
				return errf(0, field+".exclude", "unknown app %q", ex.App)
			}
		}
		for axis, vals := range map[string][]float64{
			"link_jitter": g.Noise.LinkJitter,
			"node_hetero": g.Noise.NodeHetero,
			"os_noise":    g.Noise.OSNoise,
		} {
			for _, v := range vals {
				if v < 0 || v != v || v > 1e6 {
					return errf(0, field+".noise."+axis, "amplitude %v out of range [0, 1e6]", v)
				}
			}
		}
	}
	return nil
}

// decoder accumulates the first typed error while walking the generic
// document, so call sites stay linear.
type decoder struct {
	err *Error
}

func (d *decoder) fail(field, format string, args ...any) {
	if d.err == nil {
		d.err = errf(0, field, format, args...)
	}
}

// keys rejects unknown keys — typos in a spec must not silently
// no-op.
func (d *decoder) keys(m map[string]any, prefix string, allowed ...string) {
	ok := map[string]bool{}
	for _, k := range allowed {
		ok[k] = true
	}
	for k := range m {
		if !ok[k] {
			name := k
			if prefix != "" {
				name = prefix + "." + k
			}
			d.fail(name, "unknown key (allowed: %v)", allowed)
			return
		}
	}
}

func (d *decoder) str(m map[string]any, key, field string) string {
	v, ok := m[key]
	if !ok || v == nil {
		return ""
	}
	s, ok := v.(string)
	if !ok {
		d.fail(field, "want a string, got %T", v)
		return ""
	}
	return s
}

func (d *decoder) boolean(m map[string]any, key, field string) bool {
	v, ok := m[key]
	if !ok || v == nil {
		return false
	}
	b, ok := v.(bool)
	if !ok {
		d.fail(field, "want true or false, got %v", v)
		return false
	}
	return b
}

func (d *decoder) num64(m map[string]any, key, field string, lo, hi int64) int64 {
	v, ok := m[key]
	if !ok || v == nil {
		return 0
	}
	i, ok := v.(int64)
	if !ok {
		d.fail(field, "want an integer, got %v", v)
		return 0
	}
	if i < lo || i > hi {
		d.fail(field, "%d out of range [%d, %d]", i, lo, hi)
		return 0
	}
	return i
}

func (d *decoder) num(m map[string]any, key, field string, lo, hi int64) int {
	return int(d.num64(m, key, field, lo, hi))
}

func (d *decoder) duration(m map[string]any, key, field string) time.Duration {
	v, ok := m[key]
	if !ok || v == nil {
		return 0
	}
	s, ok := v.(string)
	if !ok {
		d.fail(field, "want a duration string like \"90s\", got %v", v)
		return 0
	}
	dur, err := time.ParseDuration(s)
	if err != nil || dur < 0 {
		d.fail(field, "bad duration %q", s)
		return 0
	}
	return dur
}

func (d *decoder) float(v any, field string) float64 {
	switch t := v.(type) {
	case float64:
		return t
	case int64:
		return float64(t)
	}
	d.fail(field, "want a number, got %v", v)
	return 0
}

// listOf promotes a scalar to a one-element list, so `classes: B`
// and `classes: [B]` read the same.
func listOf(v any) []any {
	if l, ok := v.([]any); ok {
		return l
	}
	if v == nil {
		return nil
	}
	return []any{v}
}

func (d *decoder) strList(m map[string]any, key, field string) []string {
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	var out []string
	for _, e := range listOf(v) {
		s, ok := e.(string)
		if !ok {
			d.fail(field, "want strings, got %v", e)
			return nil
		}
		out = append(out, s)
	}
	return out
}

func (d *decoder) intList(v any, field string, lo, hi int64) []int {
	var out []int
	for _, e := range listOf(v) {
		i, ok := e.(int64)
		if !ok {
			d.fail(field, "want integers, got %v", e)
			return nil
		}
		if i < lo || i > hi {
			d.fail(field, "%d out of range [%d, %d]", i, lo, hi)
			return nil
		}
		out = append(out, int(i))
	}
	return out
}

func (d *decoder) int64List(v any, field string) []int64 {
	var out []int64
	for _, e := range listOf(v) {
		i, ok := e.(int64)
		if !ok {
			d.fail(field, "want integers, got %v", e)
			return nil
		}
		out = append(out, i)
	}
	return out
}

func (d *decoder) floatList(v any, field string) []float64 {
	var out []float64
	for _, e := range listOf(v) {
		out = append(out, d.float(e, field))
	}
	return out
}

// group decodes one group block over base (the merged defaults).
// isDefaults relaxes the required-axis checks (done later, per merged
// group, in validate).
func (d *decoder) group(v any, field string, base Group, isDefaults bool) Group {
	g := base
	if v == nil {
		if !isDefaults {
			d.fail(field, "want a mapping")
		}
		return g
	}
	m, ok := v.(map[string]any)
	if !ok {
		d.fail(field, "want a mapping, got %T", v)
		return g
	}
	d.keys(m, field, "apps", "classes", "ranks", "machines", "ranks_per_node",
		"seeds", "iters", "repeat", "noise", "exclude")
	if _, ok := m["apps"]; ok {
		g.Apps = d.strList(m, "apps", field+".apps")
	}
	if _, ok := m["classes"]; ok {
		g.Classes = d.strList(m, "classes", field+".classes")
	}
	if w, ok := m["ranks"]; ok {
		g.Ranks = d.intList(w, field+".ranks", 1, 1<<24)
	}
	if w, ok := m["machines"]; ok {
		if s, isStr := w.(string); isStr && s == "rotate" {
			g.Rotate, g.Machines = true, nil
		} else {
			g.Rotate = false
			g.Machines = d.strList(m, "machines", field+".machines")
		}
	}
	if w, ok := m["ranks_per_node"]; ok {
		g.RanksPerNode = d.intList(w, field+".ranks_per_node", 0, 1<<20)
	}
	if w, ok := m["seeds"]; ok {
		if s, isStr := w.(string); isStr && s == "derived" {
			g.Derived, g.Seeds = true, nil
		} else {
			g.Derived = false
			g.Seeds = d.int64List(w, field+".seeds")
		}
	}
	if w, ok := m["iters"]; ok {
		if s, isStr := w.(string); isStr && s == "auto" {
			g.Auto, g.Iters = true, nil
		} else {
			g.Auto = false
			g.Iters = d.intList(w, field+".iters", 0, 1<<24)
		}
	}
	if _, ok := m["repeat"]; ok {
		g.Repeat = d.num(m, "repeat", field+".repeat", 1, 1<<16)
	}
	if w, ok := m["noise"]; ok {
		nm, ok := w.(map[string]any)
		if !ok {
			d.fail(field+".noise", "want a mapping, got %T", w)
			return g
		}
		d.keys(nm, field+".noise", "link_jitter", "node_hetero", "os_noise", "seeds")
		if x, ok := nm["link_jitter"]; ok {
			g.Noise.LinkJitter = d.floatList(x, field+".noise.link_jitter")
		}
		if x, ok := nm["node_hetero"]; ok {
			g.Noise.NodeHetero = d.floatList(x, field+".noise.node_hetero")
		}
		if x, ok := nm["os_noise"]; ok {
			g.Noise.OSNoise = d.floatList(x, field+".noise.os_noise")
		}
		if x, ok := nm["seeds"]; ok {
			g.Noise.Seeds = d.int64List(x, field+".noise.seeds")
		}
	}
	if w, ok := m["exclude"]; ok {
		for i, e := range listOf(w) {
			ef := fmt.Sprintf("%s.exclude[%d]", field, i)
			em, ok := e.(map[string]any)
			if !ok {
				d.fail(ef, "want a mapping, got %T", e)
				return g
			}
			d.keys(em, ef, "app", "class", "ranks", "machine")
			g.Exclude = append(g.Exclude, Match{
				App:     d.str(em, "app", ef+".app"),
				Class:   d.str(em, "class", ef+".class"),
				Ranks:   d.num(em, "ranks", ef+".ranks", 0, 1<<24),
				Machine: d.str(em, "machine", ef+".machine"),
			})
		}
	}
	return g
}

func (d *decoder) triage(doc map[string]any) *triage.Policy {
	v, ok := doc["triage"]
	if !ok || v == nil {
		return nil
	}
	m, ok := v.(map[string]any)
	if !ok {
		d.fail("triage", "want a mapping, got %T", v)
		return nil
	}
	d.keys(m, "triage", "threshold", "max_escalations", "max_wall",
		"calibration", "cv_runs", "max_vars", "seed")
	p := &triage.Policy{
		MaxEscalations: d.num(m, "max_escalations", "triage.max_escalations", 0, 1<<31),
		MaxWall:        d.duration(m, "max_wall", "triage.max_wall"),
		Calibration:    d.num(m, "calibration", "triage.calibration", 0, 1<<31),
		CVRuns:         d.num(m, "cv_runs", "triage.cv_runs", 0, 1<<20),
		MaxVars:        d.num(m, "max_vars", "triage.max_vars", 0, 1<<20),
		Seed:           d.num64(m, "seed", "triage.seed", -1<<62, 1<<62),
	}
	if t, ok := m["threshold"]; ok {
		p.Threshold = d.float(t, "triage.threshold")
		if p.Threshold < 0 || p.Threshold > 1 || p.Threshold != p.Threshold {
			d.fail("triage.threshold", "%v out of range [0, 1]", p.Threshold)
		}
	}
	return p
}
