package spec

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// A hand-written parser for the YAML subset campaign specs use. The
// repo deliberately has zero dependencies, so rather than vendoring a
// YAML library this accepts the structural slice of YAML the schema
// needs — block mappings, block sequences, flow sequences, scalars,
// comments, quoted strings — and rejects everything else with a typed
// *Error naming the line. Specs are also accepted as plain JSON (the
// subset's semantics are identical), so anything the parser cannot
// express has an escape hatch.
//
// The parser is a fuzz target (FuzzSpecParse): every input must either
// parse or fail with *Error — no panics, no hangs — which is why the
// limits below are hard caps, not suggestions.

const (
	maxYAMLBytes = 1 << 20
	maxYAMLLines = 1 << 16
	maxYAMLDepth = 48
	maxYAMLNodes = 1 << 18
)

// Error is the typed parse/validation error every spec failure
// surfaces as. Line is 1-based (0 when the error is not tied to a
// line); Field names the schema path for validation errors.
type Error struct {
	Line  int
	Field string
	Msg   string
}

func (e *Error) Error() string {
	switch {
	case e.Line > 0 && e.Field != "":
		return fmt.Sprintf("spec: line %d: %s: %s", e.Line, e.Field, e.Msg)
	case e.Line > 0:
		return fmt.Sprintf("spec: line %d: %s", e.Line, e.Msg)
	case e.Field != "":
		return fmt.Sprintf("spec: %s: %s", e.Field, e.Msg)
	}
	return "spec: " + e.Msg
}

func errf(line int, field, format string, args ...any) *Error {
	return &Error{Line: line, Field: field, Msg: fmt.Sprintf(format, args...)}
}

// yamlLine is one significant (non-blank, non-comment) input line.
type yamlLine struct {
	indent int
	text   string
	num    int
}

type yamlParser struct {
	lines []yamlLine
	pos   int
	nodes int
}

// parseDocument parses a spec document: YAML subset, or JSON when the
// first significant byte is '{'.
func parseDocument(data []byte) (map[string]any, error) {
	if len(data) > maxYAMLBytes {
		return nil, errf(0, "", "document exceeds %d bytes", maxYAMLBytes)
	}
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if strings.HasPrefix(trimmed, "{") {
		var m map[string]any
		dec := json.NewDecoder(strings.NewReader(trimmed))
		dec.UseNumber()
		if err := dec.Decode(&m); err != nil {
			return nil, errf(0, "", "invalid JSON: %v", err)
		}
		out, err := normalizeJSON(m, 0)
		if err != nil {
			return nil, err
		}
		return out.(map[string]any), nil
	}
	p, err := splitLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(p.lines) == 0 {
		return map[string]any{}, nil
	}
	v, err := p.parseBlock(0, 0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, errf(l.num, "", "unexpected content at indent %d after the document block", l.indent)
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, errf(p.lines[0].num, "", "document root must be a mapping, not a sequence or scalar")
	}
	return m, nil
}

// normalizeJSON converts json.Number values to int64/float64 so the
// two input formats decode identically, enforcing the node cap.
func normalizeJSON(v any, depth int) (any, error) {
	if depth > maxYAMLDepth {
		return nil, errf(0, "", "nesting exceeds depth %d", maxYAMLDepth)
	}
	switch t := v.(type) {
	case json.Number:
		if i, err := strconv.ParseInt(string(t), 10, 64); err == nil {
			return i, nil
		}
		f, err := t.Float64()
		if err != nil {
			return nil, errf(0, "", "bad number %q", t)
		}
		return f, nil
	case map[string]any:
		for k, e := range t {
			n, err := normalizeJSON(e, depth+1)
			if err != nil {
				return nil, err
			}
			t[k] = n
		}
		return t, nil
	case []any:
		for i, e := range t {
			n, err := normalizeJSON(e, depth+1)
			if err != nil {
				return nil, err
			}
			t[i] = n
		}
		return t, nil
	}
	return v, nil
}

// splitLines strips comments and blanks, records indentation, and
// rejects tabs in indentation (YAML forbids them; silently treating a
// tab as one column would mis-nest the document).
func splitLines(s string) (*yamlParser, error) {
	raw := strings.Split(s, "\n")
	if len(raw) > maxYAMLLines {
		return nil, errf(0, "", "document exceeds %d lines", maxYAMLLines)
	}
	p := &yamlParser{}
	for i, line := range raw {
		num := i + 1
		line = strings.TrimRight(line, " \t\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, errf(num, "", "tab in indentation (use spaces)")
		}
		text := stripComment(line[indent:])
		text = strings.TrimRight(text, " \t")
		if text == "" {
			continue
		}
		if text == "---" && len(p.lines) == 0 {
			continue // tolerate a leading document marker
		}
		p.lines = append(p.lines, yamlLine{indent: indent, text: text, num: num})
	}
	return p, nil
}

// stripComment removes a trailing "#"-comment, honoring quotes.
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses the run of lines sharing the indentation of the
// line at p.pos, which must be ≥ minIndent; the block's kind (sequence
// vs mapping) is set by its first line.
func (p *yamlParser) parseBlock(minIndent, depth int) (any, error) {
	if depth > maxYAMLDepth {
		return nil, errf(p.lines[p.pos].num, "", "nesting exceeds depth %d", maxYAMLDepth)
	}
	first := p.lines[p.pos]
	if first.indent < minIndent {
		return nil, errf(first.num, "", "expected a nested block indented past column %d", minIndent)
	}
	blockIndent := first.indent
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.parseSequence(blockIndent, depth)
	}
	return p.parseMapping(blockIndent, depth)
}

func (p *yamlParser) parseSequence(indent, depth int) (any, error) {
	var out []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, errf(l.num, "", "unexpected indent %d inside a sequence at indent %d", l.indent, indent)
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			break
		}
		if err := p.countNode(l.num); err != nil {
			return nil, err
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		switch {
		case rest == "":
			// "-" alone: the item is the following deeper block.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				out = append(out, nil)
				continue
			}
			v, err := p.parseBlock(indent+1, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		case isMappingLine(rest):
			// "- key: v": the item is a mapping whose first entry sits on
			// the dash line. Re-home the line two columns deeper and
			// parse the mapping block from here.
			p.lines[p.pos] = yamlLine{indent: indent + 2, text: rest, num: l.num}
			v, err := p.parseBlock(indent+1, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		default:
			v, err := parseScalarOrFlow(rest, l.num, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			p.pos++
		}
	}
	return out, nil
}

func (p *yamlParser) parseMapping(indent, depth int) (any, error) {
	out := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, errf(l.num, "", "unexpected indent %d inside a mapping at indent %d", l.indent, indent)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, errf(l.num, "", "sequence item inside a mapping block")
		}
		if err := p.countNode(l.num); err != nil {
			return nil, err
		}
		key, rest, err := splitKey(l.text, l.num)
		if err != nil {
			return nil, err
		}
		if _, dup := out[key]; dup {
			return nil, errf(l.num, "", "duplicate key %q", key)
		}
		if rest == "" {
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				out[key] = nil
				continue
			}
			v, err := p.parseBlock(indent+1, depth+1)
			if err != nil {
				return nil, err
			}
			out[key] = v
		} else {
			v, err := parseScalarOrFlow(rest, l.num, depth+1)
			if err != nil {
				return nil, err
			}
			out[key] = v
			p.pos++
		}
	}
	return out, nil
}

func (p *yamlParser) countNode(line int) error {
	p.nodes++
	if p.nodes > maxYAMLNodes {
		return errf(line, "", "document exceeds %d nodes", maxYAMLNodes)
	}
	return nil
}

// isMappingLine reports whether s begins a mapping entry: a bare key
// followed by ":" at end or ": ".
func isMappingLine(s string) bool {
	_, _, err := splitKey(s, 0)
	return err == nil
}

// splitKey splits "key: value" / "key:" into key and the raw value
// text. Keys are bare identifiers (letters, digits, '_', '-', '.'),
// which is all the schema ever uses.
func splitKey(s string, num int) (key, rest string, err error) {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return "", "", errf(num, "", "expected \"key: value\", got %q", s)
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return "", "", errf(num, "", "missing space after %q:", s[:i])
	}
	key = s[:i]
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return "", "", errf(num, "", "key %q has unsupported character %q", key, c)
		}
	}
	return key, strings.TrimSpace(s[i+1:]), nil
}

// parseScalarOrFlow parses an inline value: a flow sequence "[a, b]"
// or a scalar.
func parseScalarOrFlow(s string, num, depth int) (any, error) {
	if depth > maxYAMLDepth {
		return nil, errf(num, "", "nesting exceeds depth %d", maxYAMLDepth)
	}
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, errf(num, "", "unterminated flow sequence %q", s)
		}
		items, err := splitFlow(s[1:len(s)-1], num)
		if err != nil {
			return nil, err
		}
		out := make([]any, 0, len(items))
		for _, it := range items {
			v, err := parseScalarOrFlow(it, num, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, errf(num, "", "flow mappings are not supported; use a block mapping")
	}
	return parseScalar(s, num)
}

// splitFlow splits a flow sequence's interior on top-level commas,
// honoring quotes and nested brackets.
func splitFlow(s string, num int) ([]string, error) {
	var items []string
	start, brackets := 0, 0
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '[':
			if !inS && !inD {
				brackets++
			}
		case ']':
			if !inS && !inD {
				brackets--
				if brackets < 0 {
					return nil, errf(num, "", "unbalanced brackets in flow sequence")
				}
			}
		case ',':
			if !inS && !inD && brackets == 0 {
				items = append(items, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if inS || inD {
		return nil, errf(num, "", "unterminated quote in flow sequence")
	}
	if brackets != 0 {
		return nil, errf(num, "", "unbalanced brackets in flow sequence")
	}
	last := strings.TrimSpace(s[start:])
	if last != "" {
		items = append(items, last)
	} else if len(items) > 0 {
		return nil, errf(num, "", "trailing comma in flow sequence")
	}
	return items, nil
}

// parseScalar interprets one scalar token.
func parseScalar(s string, num int) (any, error) {
	switch {
	case s == "null" || s == "~":
		return nil, nil
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case strings.HasPrefix(s, "\""):
		var out string
		if err := json.Unmarshal([]byte(s), &out); err != nil {
			return nil, errf(num, "", "bad double-quoted string %s", s)
		}
		return out, nil
	case strings.HasPrefix(s, "'"):
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return nil, errf(num, "", "unterminated single-quoted string %s", s)
		}
		body := s[1 : len(s)-1]
		if strings.Contains(strings.ReplaceAll(body, "''", ""), "'") {
			return nil, errf(num, "", "stray quote in single-quoted string %s", s)
		}
		return strings.ReplaceAll(body, "''", "'"), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
