package mpisim

import (
	"errors"
	"fmt"
	"time"

	"hpctradeoff/internal/des"
	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simnet"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// ErrDeadlock is wrapped by replay errors reporting that ranks got
// permanently stuck (unmatched sends/receives, circular waits).
var ErrDeadlock = errors.New("mpisim: deadlock")

// ErrUnknownRequest is wrapped by lowering errors reporting a wait on
// a request id that was never posted by an isend/irecv — a malformed
// trace rather than a simulator failure.
var ErrUnknownRequest = errors.New("mpisim: wait on unknown request")

// Perturber injects nondeterministic-looking (but seeded) system
// effects into a replay. The ground-truth executor uses one to make the
// "measured" times in generated traces include OS noise and software
// overhead jitter that prediction replays (which run without a
// Perturber) cannot see — mirroring how real measured times exceed
// trace-replay predictions in the paper.
type Perturber interface {
	// Compute returns the perturbed duration of a compute interval.
	Compute(rank int32, ev int32, d simtime.Time) simtime.Time
	// Overhead returns extra per-call software overhead for one MPI
	// operation on the given rank.
	Overhead(rank int32) simtime.Time
}

// Background describes neighbor-job interference traffic injected into
// the network while the trace replays. The paper (§II-C) points out
// that inter-job interference is exactly the scenario where simulation
// beats modeling — a model has no way to see another job's traffic on
// shared links. Sources fire periodic messages between pseudo-random
// endpoints for as long as the application runs.
type Background struct {
	// Sources is the number of concurrent background streams.
	Sources int
	// MsgBytes is the size of each background message.
	MsgBytes int64
	// Interval is each source's injection period (jittered ±50%).
	Interval simtime.Time
	// Seed drives endpoint and jitter selection.
	Seed int64
}

// Options configure a replay.
type Options struct {
	// CompScale scales recorded compute durations (1.0 = as recorded;
	// the tools' what-if knob for faster/slower processors). Zero means
	// 1.0.
	CompScale float64
	// Perturb, when non-nil, injects noise (ground-truth executor mode).
	Perturb Perturber
	// Record, when true, writes the replayed entry/exit times back into
	// the trace (used to stamp ground-truth timestamps).
	Record bool
	// Background, when non-nil, injects neighbor-job traffic that
	// contends for the same network links.
	Background *Background

	// MaxEvents caps the number of DES events the replay may execute;
	// past the cap Replay fails with an error wrapping
	// des.ErrBudgetExceeded. Zero means unlimited. This is the campaign
	// layer's defense against runaway or livelocked replays.
	MaxEvents uint64
	// MaxSimTime caps the simulated clock the same way. Zero means
	// unlimited.
	MaxSimTime simtime.Time
	// Deadline is a wall-clock cutoff for the replay (zero value means
	// none); it is polled periodically on the event loop.
	Deadline time.Time
	// Cancel, when non-nil, stops the replay when closed: a watcher
	// calls the engine's Stop(), the run halts at its next scheduling
	// boundary, and Replay fails with an error wrapping
	// des.ErrCanceled. This is how a signal handler shuts a campaign
	// down without losing journaled results.
	Cancel <-chan struct{}
}

// Result carries the outcome of one replay.
type Result struct {
	// Model is the network model used.
	Model simnet.Model
	// Total is the predicted application time (latest rank finish).
	Total simtime.Time
	// Comm is the predicted communication time, averaged over ranks.
	Comm simtime.Time
	// RankFinish and RankComm are the per-rank breakdowns.
	RankFinish []simtime.Time
	RankComm   []simtime.Time
	// Events is the number of DES events the replay executed.
	Events uint64
	// Net reports the network model's cost counters.
	Net simnet.Stats
}

// Replay runs tr through the given network model on machine mach and
// returns predictions. The trace must be valid (trace.Validate).
func Replay(tr *trace.Trace, model simnet.Model, mach *machine.Config, netCfg simnet.Config, opts Options) (*Result, error) {
	return ReplaySource(tr, model, mach, netCfg, opts)
}

// ReplaySource is Replay over any trace representation: the replay
// walks src through the Source access path only, so array-of-structs
// and columnar traces replay identically (and, by the determinism
// contract, bit-identically).
func ReplaySource(src trace.Source, model simnet.Model, mach *machine.Config, netCfg simnet.Config, opts Options) (*Result, error) {
	return replaySource(src, model, mach, netCfg, opts, nil)
}

// replaySource is the shared replay body; a non-nil sess supplies the
// lowering and request-flag arenas.
func replaySource(src trace.Source, model simnet.Model, mach *machine.Config, netCfg simnet.Config, opts Options, sess *Session) (*Result, error) {
	meta := src.TraceMeta()
	if !simnet.Supports(model, meta.UsesCommSplit, meta.UsesThreadMultiple) {
		return nil, fmt.Errorf("%w: %s on %s", simnet.ErrUnsupportedTrace, model, meta.ID())
	}
	if len(mach.NodeOf) < meta.NumRanks {
		return nil, fmt.Errorf("mpisim: machine hosts %d ranks, trace has %d", len(mach.NodeOf), meta.NumRanks)
	}
	prog, err := lower(src, sess)
	if err != nil {
		return nil, err
	}
	eng := &des.Engine{}
	net, err := simnet.New(model, eng, mach, netCfg)
	if err != nil {
		return nil, err
	}
	d := &driver{
		eng:  eng,
		net:  net,
		mach: mach,
		src:  src,
		opts: opts,
		sess: sess,
	}
	if d.opts.CompScale == 0 {
		d.opts.CompScale = 1
	}
	if opts.MaxEvents > 0 || opts.MaxSimTime > 0 || !opts.Deadline.IsZero() {
		eng.SetBudget(des.Budget{MaxEvents: opts.MaxEvents, MaxTime: opts.MaxSimTime, Deadline: opts.Deadline})
	}
	if opts.Cancel != nil {
		// The watcher routes external cancellation through the engine's
		// cooperative Stop path; done unblocks it when the replay ends
		// on its own.
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-opts.Cancel:
				eng.Stop()
			case <-done:
			}
		}()
	}
	d.run(prog)
	// A blown budget must be reported before the finish check: a
	// truncated run always looks deadlocked.
	if err := eng.Err(); err != nil {
		return nil, fmt.Errorf("mpisim: replay of %s on %s aborted after %d events: %w",
			meta.ID(), model, eng.Steps(), err)
	}
	if err := d.checkFinished(); err != nil {
		return nil, err
	}
	if opts.Record {
		d.writeBack()
	}
	var comm simtime.Time
	for _, c := range d.rankComm {
		comm += c
	}
	n := simtime.Time(max(1, meta.NumRanks))
	var total simtime.Time
	for _, f := range d.finish {
		total = simtime.Max(total, f)
	}
	return &Result{
		Model:      model,
		Total:      total,
		Comm:       comm / n,
		RankFinish: d.finish,
		RankComm:   d.rankComm,
		Events:     eng.Steps(),
		Net:        net.Stats(),
	}, nil
}

type chanKey struct {
	src, dst, tag int32
	comm          int32
}

type sendRec struct {
	bytes     int64
	eager     bool
	delivered bool
	rv        *recvRec // paired receive, nil until matched
	// onSendDone resumes the sender for rendezvous sends (eager sender
	// completion is scheduled independently at injection end).
	onSendDone func()
	src, dst   int32
}

type recvRec struct {
	rank       int32
	onComplete func()
}

type channel struct {
	sends []*sendRec
	recvs []*recvRec
}

type rankState struct {
	id  int32
	ops []rop
	pc  int
	// Request state is tracked in flat arrays indexed by the replay
	// request id (lowering renumbers densely from 0): done marks
	// requests completed before being waited on, waiting the requests
	// the current wait still needs, nwait how many of those remain.
	done    []bool
	waiting []bool
	nwait   int
	opStart simtime.Time
	waitEv  int32 // event of the wait currently blocking, for exit recording
	blocked bool
	finish  simtime.Time
	fin     bool
	// Pre-bound continuations, reused for every op when the replay is
	// not recording timestamps (markExit is a no-op then, so the
	// continuation does not depend on the event index). They keep the
	// hot path from minting a fresh closure per replayed event.
	advanceFn func()
	resumeFn  func()
}

type driver struct {
	eng  *des.Engine
	net  simnet.Network
	mach *machine.Config
	src  trace.Source
	opts Options
	sess *Session

	ranks         []*rankState
	chans         map[chanKey]*channel
	rankComm      []simtime.Time
	finish        []simtime.Time
	finishedRanks int

	// Per-rank, per-original-event first-start and last-finish times
	// (allocated only when recording).
	entry, exit [][]simtime.Time
}

func (d *driver) run(prog *program) {
	n := d.src.TraceMeta().NumRanks
	d.ranks = make([]*rankState, n)
	d.chans = make(map[chanKey]*channel)
	d.rankComm = make([]simtime.Time, n)
	d.finish = make([]simtime.Time, n)
	if d.opts.Record {
		d.entry = make([][]simtime.Time, n)
		d.exit = make([][]simtime.Time, n)
		for r := 0; r < n; r++ {
			d.entry[r] = make([]simtime.Time, prog.evCount[r])
			d.exit[r] = make([]simtime.Time, prog.evCount[r])
			for i := range d.entry[r] {
				d.entry[r][i] = -1
			}
		}
	}
	// One arena backs every rank's request-state flags.
	var totalReqs int32
	for _, c := range prog.reqCount {
		totalReqs += c
	}
	flags := d.sess.flagArena(int(2 * totalReqs))
	for r, off := 0, int32(0); r < n; r++ {
		c := prog.reqCount[r]
		rs := &rankState{
			id:      int32(r),
			ops:     prog.ops[r],
			done:    flags[off : off+c : off+c],
			waiting: flags[off+c : off+2*c : off+2*c],
		}
		off += 2 * c
		if !d.opts.Record {
			rs.advanceFn = func() { d.advance(rs) }
			rs.resumeFn = func() { d.resume(rs, rs.waitEv) }
		}
		d.ranks[r] = rs
	}
	for _, rs := range d.ranks {
		if rs.advanceFn != nil {
			d.eng.At(0, rs.advanceFn)
		} else {
			rs := rs
			d.eng.At(0, func() { d.advance(rs) })
		}
	}
	if bg := d.opts.Background; bg != nil && bg.Sources > 0 && n >= 2 {
		for s := 0; s < bg.Sources; s++ {
			d.scheduleBackground(bg, uint64(s), 0)
		}
	}
	d.eng.Run()
}

// scheduleBackground fires one background message and reschedules
// itself until every application rank has finished. Endpoints and
// jitter derive deterministically from (seed, source, round).
func (d *driver) scheduleBackground(bg *Background, source, round uint64) {
	if d.finishedRanks >= len(d.ranks) {
		return // the application is done; stop injecting
	}
	n := uint64(len(d.ranks))
	h := bgHash(uint64(bg.Seed), source, round)
	src := int32(h % n)
	dst := int32((h >> 20) % n)
	if dst == src {
		dst = (dst + 1) % int32(n)
	}
	d.net.Send(src, dst, bg.MsgBytes, func() {})
	jitter := 0.5 + float64((h>>40)&0xffff)/65536.0 // 0.5 .. 1.5
	d.eng.After(bg.Interval.Scale(jitter), func() {
		d.scheduleBackground(bg, source, round+1)
	})
}

func bgHash(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9 ^ c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

func (d *driver) checkFinished() error {
	for _, rs := range d.ranks {
		if !rs.fin {
			op := "end"
			if rs.pc < len(rs.ops) {
				op = fmt.Sprintf("%s(peer=%d tag=%d)", rs.ops[rs.pc].kind, rs.ops[rs.pc].peer, rs.ops[rs.pc].tag)
			}
			return fmt.Errorf("%w: rank %d stuck at op %d/%d (%s)", ErrDeadlock, rs.id, rs.pc, len(rs.ops), op)
		}
	}
	return nil
}

// overhead returns the per-call software cost for rank r.
func (d *driver) overhead(r int32) simtime.Time {
	o := d.mach.MPIOverhead
	if d.opts.Perturb != nil {
		o += d.opts.Perturb.Overhead(r)
	}
	return o
}

func (d *driver) markEntry(rs *rankState, ev int32) {
	if d.entry != nil && d.entry[rs.id][ev] < 0 {
		d.entry[rs.id][ev] = d.eng.Now()
	}
}

func (d *driver) markExit(rs *rankState, ev int32) {
	if d.exit != nil {
		d.exit[rs.id][ev] = d.eng.Now()
	}
}

// advance executes ops for rs until it blocks or finishes. Called from
// engine context only.
func (d *driver) advance(rs *rankState) {
	for rs.pc < len(rs.ops) {
		op := &rs.ops[rs.pc]
		now := d.eng.Now()
		d.markEntry(rs, op.ev)
		switch op.kind {
		case ropCompute:
			dur := op.dur.Scale(d.opts.CompScale)
			if d.opts.Perturb != nil {
				dur = d.opts.Perturb.Compute(rs.id, op.ev, dur)
			}
			rs.pc++
			if rs.advanceFn != nil {
				d.eng.After(dur, rs.advanceFn)
			} else {
				ev := op.ev
				d.eng.After(dur, func() {
					d.markExit(rs, ev)
					d.advance(rs)
				})
			}
			return

		case ropSend:
			rs.opStart = now
			rs.blocked = true
			rs.waitEv = op.ev
			if rs.resumeFn != nil {
				d.postSend(rs, op, rs.resumeFn)
			} else {
				d.postSend(rs, op, func() { d.resume(rs, op.ev) })
			}
			return

		case ropIsend:
			req := op.req
			d.postSend(rs, op, func() { d.completeReq(rs, req) })
			d.stepOverhead(rs, op.ev)
			return

		case ropRecv:
			rs.opStart = now
			rs.blocked = true
			rs.waitEv = op.ev
			if rs.resumeFn != nil {
				d.postRecv(rs, op, rs.resumeFn)
			} else {
				d.postRecv(rs, op, func() { d.resume(rs, op.ev) })
			}
			return

		case ropIrecv:
			req := op.req
			d.postRecv(rs, op, func() { d.completeReq(rs, req) })
			d.stepOverhead(rs, op.ev)
			return

		case ropWait:
			outstanding := 0
			for _, q := range op.reqs {
				if rs.done[q] {
					rs.done[q] = false
				} else {
					rs.waiting[q] = true
					outstanding++
				}
			}
			if outstanding == 0 {
				d.stepOverhead(rs, op.ev)
				return
			}
			rs.nwait = outstanding
			rs.opStart = now
			rs.blocked = true
			// resume happens in completeReq when the set drains
			d.pendingWaitEv(rs, op.ev)
			return
		}
	}
	rs.fin = true
	rs.finish = d.eng.Now()
	d.finish[rs.id] = rs.finish
	d.finishedRanks++
}

// stepOverhead charges one MPI call's software overhead and continues;
// the overhead counts as communication time.
func (d *driver) stepOverhead(rs *rankState, ev int32) {
	o := d.overhead(rs.id)
	d.rankComm[rs.id] += o
	rs.pc++
	if rs.advanceFn != nil {
		d.eng.After(o, rs.advanceFn)
		return
	}
	d.eng.After(o, func() {
		d.markExit(rs, ev)
		d.advance(rs)
	})
}

// waitEv remembers which event a blocked wait belongs to, for exit
// recording.
func (d *driver) pendingWaitEv(rs *rankState, ev int32) {
	rs.waitEv = ev
}

// resume unblocks rs after a blocking comm op, charging the blocked
// interval as communication time.
func (d *driver) resume(rs *rankState, ev int32) {
	now := d.eng.Now()
	d.rankComm[rs.id] += now - rs.opStart
	rs.blocked = false
	d.markExit(rs, ev)
	rs.pc++
	d.advance(rs)
}

// completeReq marks a request done; if the rank is blocked in a wait
// that drains, it resumes.
func (d *driver) completeReq(rs *rankState, req int32) {
	if rs.waiting[req] {
		rs.waiting[req] = false
		rs.nwait--
		if rs.nwait == 0 && rs.blocked {
			d.resume(rs, rs.waitEv)
		}
		return
	}
	rs.done[req] = true
}

func (d *driver) channelFor(k chanKey) *channel {
	ch := d.chans[k]
	if ch == nil {
		ch = &channel{}
		d.chans[k] = ch
	}
	return ch
}

// postSend starts the send protocol for op on rank rs. onSenderDone is
// invoked when the send operation (not necessarily the delivery)
// completes: at injection end for eager, at delivery for rendezvous.
func (d *driver) postSend(rs *rankState, op *rop, onSenderDone func()) {
	k := chanKey{src: rs.id, dst: op.peer, tag: op.tag, comm: op.comm}
	ch := d.channelFor(k)
	s := &sendRec{bytes: op.bytes, src: rs.id, dst: op.peer}
	s.eager = op.bytes <= d.mach.EagerThreshold
	o := d.overhead(rs.id)
	if s.eager {
		// Sender completes after the local injection cost, independent
		// of matching; the payload travels immediately.
		inject := simtime.TransferTime(op.bytes, d.mach.InjectionBandwidth)
		d.eng.After(o+inject, onSenderDone)
		d.eng.After(o, func() {
			d.net.Send(s.src, s.dst, s.bytes, func() {
				s.delivered = true
				if s.rv != nil {
					d.completeRecv(s.rv)
				}
			})
		})
	} else {
		s.onSendDone = onSenderDone
	}
	// Match in posting order.
	if len(ch.recvs) > 0 {
		rv := ch.recvs[0]
		ch.recvs = ch.recvs[1:]
		d.pair(s, rv)
	} else {
		ch.sends = append(ch.sends, s)
	}
}

// postRecv posts a receive; onComplete fires when the payload has
// arrived and been matched.
func (d *driver) postRecv(rs *rankState, op *rop, onComplete func()) {
	k := chanKey{src: op.peer, dst: rs.id, tag: op.tag, comm: op.comm}
	ch := d.channelFor(k)
	rv := &recvRec{rank: rs.id, onComplete: onComplete}
	if len(ch.sends) > 0 {
		s := ch.sends[0]
		ch.sends = ch.sends[1:]
		d.pair(s, rv)
	} else {
		ch.recvs = append(ch.recvs, rv)
	}
}

// pair links a send with its matching receive and, for rendezvous
// sends, starts the deferred transfer.
func (d *driver) pair(s *sendRec, rv *recvRec) {
	s.rv = rv
	if s.eager {
		if s.delivered {
			d.completeRecv(rv)
		}
		return
	}
	// Rendezvous: the transfer begins only now that both sides are
	// ready (the handshake cost is folded into the NIC/MPI overheads).
	d.net.Send(s.src, s.dst, s.bytes, func() {
		d.completeRecv(rv)
		if s.onSendDone != nil {
			s.onSendDone()
		}
	})
}

// completeRecv finishes a matched, delivered receive after the
// receiver-side software overhead.
func (d *driver) completeRecv(rv *recvRec) {
	d.eng.After(d.overhead(rv.rank), rv.onComplete)
}

// writeBack stamps the replayed entry/exit times into the trace.
func (d *driver) writeBack() {
	for r := range d.entry {
		cursor := simtime.Time(0)
		for i := range d.entry[r] {
			en, ex := d.entry[r][i], d.exit[r][i]
			if en < 0 {
				// Event never started (cannot happen after a finished
				// replay); keep monotonicity anyway.
				en = cursor
			}
			if en < cursor {
				en = cursor
			}
			if ex < en {
				ex = en
			}
			d.src.SetEventTimes(r, i, en, ex)
			cursor = ex
		}
	}
}
