package mpisim

import (
	"testing"

	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// tb is a tiny trace builder for tests: it tracks per-rank cursors so
// generated timestamps satisfy trace.Validate's monotonicity.
type tb struct {
	tr     *trace.Trace
	cursor []simtime.Time
	req    []int32
}

func newTB(ranks int) *tb {
	return &tb{
		tr:     trace.New(trace.Meta{App: "test", Class: "T", Machine: "cielito", NumRanks: ranks, RanksPerNode: 4}),
		cursor: make([]simtime.Time, ranks),
		req:    make([]int32, ranks),
	}
}

func (b *tb) push(r int, e trace.Event) {
	e.Entry = b.cursor[r]
	if e.Op == trace.OpCompute {
		e.Exit = e.Entry + e.Exit // Exit passed as duration
	} else {
		e.Exit = e.Entry
	}
	b.cursor[r] = e.Exit
	b.tr.Ranks[r] = append(b.tr.Ranks[r], e)
}

func (b *tb) compute(r int, d simtime.Time) {
	b.push(r, trace.Event{Op: trace.OpCompute, Exit: d, Peer: trace.NoPeer, Req: trace.NoReq})
}

func (b *tb) send(r, peer, tag int, bytes int64) {
	b.push(r, trace.Event{Op: trace.OpSend, Peer: int32(peer), Tag: int32(tag), Bytes: bytes, Comm: trace.CommWorld, Req: trace.NoReq})
}

func (b *tb) recv(r, peer, tag int, bytes int64) {
	b.push(r, trace.Event{Op: trace.OpRecv, Peer: int32(peer), Tag: int32(tag), Bytes: bytes, Comm: trace.CommWorld, Req: trace.NoReq})
}

func (b *tb) isend(r, peer, tag int, bytes int64) int32 {
	id := b.req[r]
	b.req[r]++
	b.push(r, trace.Event{Op: trace.OpIsend, Peer: int32(peer), Tag: int32(tag), Bytes: bytes, Comm: trace.CommWorld, Req: id})
	return id
}

func (b *tb) irecv(r, peer, tag int, bytes int64) int32 {
	id := b.req[r]
	b.req[r]++
	b.push(r, trace.Event{Op: trace.OpIrecv, Peer: int32(peer), Tag: int32(tag), Bytes: bytes, Comm: trace.CommWorld, Req: id})
	return id
}

func (b *tb) waitall(r int, reqs ...int32) {
	b.push(r, trace.Event{Op: trace.OpWaitall, Peer: trace.NoPeer, Req: trace.NoReq, Reqs: reqs})
}

func (b *tb) coll(r int, op trace.Op, comm trace.CommID, root int, bytes int64) {
	b.push(r, trace.Event{Op: op, Peer: trace.NoPeer, Req: trace.NoReq, Comm: comm, Root: int32(root), Bytes: bytes})
}

func (b *tb) alltoallv(r int, comm trace.CommID, sendBytes []int64) {
	b.push(r, trace.Event{Op: trace.OpAlltoallv, Peer: trace.NoPeer, Req: trace.NoReq, Comm: comm, SendBytes: sendBytes})
}

func (b *tb) build(t *testing.T) *trace.Trace {
	t.Helper()
	if err := b.tr.Validate(); err != nil {
		t.Fatalf("test trace invalid: %v", err)
	}
	return b.tr
}
