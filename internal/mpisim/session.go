package mpisim

import (
	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simnet"
	"hpctradeoff/internal/trace"
)

// Session owns the flat arenas a replay lowers into — the rop arena,
// the wait-set arena, and the request-flag arena — so a campaign
// worker replaying hundreds of traces amortizes its three big
// allocations across them instead of re-making them per trace. The
// fill pass overwrites every arena element it hands out (and the flag
// arena is cleared explicitly), so reuse cannot leak state between
// traces and session replays stay bit-identical to stateless ones.
//
// A Session is not safe for concurrent use; give each worker its own.
type Session struct {
	opArena  []rop
	reqArena []int32
	flags    []bool
}

// NewSession returns an empty Session.
func NewSession() *Session { return &Session{} }

// Replay is ReplaySource drawing its arenas from the session.
func (s *Session) Replay(src trace.Source, model simnet.Model, mach *machine.Config, netCfg simnet.Config, opts Options) (*Result, error) {
	return replaySource(src, model, mach, netCfg, opts, s)
}

// ops returns a rop arena of length n, reusing the session's backing
// array when it is large enough. Every element is overwritten by the
// fill pass. A nil session always allocates.
func (s *Session) ops(n int) []rop {
	if s == nil {
		return make([]rop, n)
	}
	if cap(s.opArena) < n {
		s.opArena = make([]rop, n)
	}
	s.opArena = s.opArena[:n]
	return s.opArena
}

// reqs is ops for the wait-set arena.
func (s *Session) reqs(n int) []int32 {
	if s == nil {
		return make([]int32, n)
	}
	if cap(s.reqArena) < n {
		s.reqArena = make([]int32, n)
	}
	s.reqArena = s.reqArena[:n]
	return s.reqArena
}

// flagArena returns a zeroed bool arena of length n; the driver's
// request-state tracking relies on starting from all-false.
func (s *Session) flagArena(n int) []bool {
	if s == nil {
		return make([]bool, n)
	}
	if cap(s.flags) < n {
		s.flags = make([]bool, n)
	} else {
		s.flags = s.flags[:n]
		clear(s.flags)
	}
	return s.flags
}
