package mpisim

import (
	"strings"
	"testing"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simnet"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

func testMach(t *testing.T, ranks int) *machine.Config {
	t.Helper()
	m, err := machine.Cielito(ranks, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func replayAll(t *testing.T, tr *trace.Trace, opts Options) map[simnet.Model]*Result {
	t.Helper()
	out := map[simnet.Model]*Result{}
	mach := testMach(t, tr.Meta.NumRanks)
	for _, m := range simnet.Models() {
		res, err := Replay(tr, m, mach, simnet.Config{}, opts)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		out[m] = res
	}
	return out
}

func TestReplayComputeOnly(t *testing.T) {
	b := newTB(4)
	for r := 0; r < 4; r++ {
		b.compute(r, simtime.Time(r+1)*simtime.Millisecond)
	}
	tr := b.build(t)
	for m, res := range replayAll(t, tr, Options{}) {
		if res.Total != 4*simtime.Millisecond {
			t.Errorf("%s: total = %v, want 4ms", m, res.Total)
		}
		if res.Comm != 0 {
			t.Errorf("%s: comm = %v, want 0", m, res.Comm)
		}
	}
}

func TestReplayComputeScaling(t *testing.T) {
	b := newTB(2)
	b.compute(0, 10*simtime.Millisecond)
	b.compute(1, 10*simtime.Millisecond)
	tr := b.build(t)
	mach := testMach(t, 2)
	half, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{CompScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if half.Total != 5*simtime.Millisecond {
		t.Errorf("CompScale 0.5: total = %v, want 5ms", half.Total)
	}
}

func TestReplayPingPong(t *testing.T) {
	b := newTB(8)
	const bytes = 4096
	b.send(0, 7, 1, bytes)
	b.recv(7, 0, 1, bytes)
	b.send(7, 0, 2, bytes)
	b.recv(0, 7, 2, bytes)
	tr := b.build(t)
	for m, res := range replayAll(t, tr, Options{}) {
		// Two one-way trips: total should be ~2(α + bytes/β) plus
		// overheads, well under a millisecond but positive.
		if res.Total <= 0 || res.Total > simtime.Millisecond {
			t.Errorf("%s: total = %v", m, res.Total)
		}
		if res.Comm <= 0 {
			t.Errorf("%s: comm = %v, want > 0", m, res.Comm)
		}
	}
}

func TestReplayNonblockingOverlap(t *testing.T) {
	// Communication overlapped with computation should cost less than
	// their sum: isend/irecv, compute, waitall.
	const bytes = 256 << 10
	mk := func(overlap bool) *trace.Trace {
		b := newTB(8)
		if overlap {
			r0 := b.irecv(0, 7, 1, bytes)
			s0 := b.isend(0, 7, 2, bytes)
			b.compute(0, 5*simtime.Millisecond)
			b.waitall(0, r0, s0)
			r7 := b.irecv(7, 0, 2, bytes)
			s7 := b.isend(7, 0, 1, bytes)
			b.compute(7, 5*simtime.Millisecond)
			b.waitall(7, r7, s7)
		} else {
			b.recv(0, 7, 1, bytes)
			b.send(0, 7, 2, bytes)
			b.compute(0, 5*simtime.Millisecond)
			b.send(7, 0, 1, bytes)
			b.recv(7, 0, 2, bytes)
			b.compute(7, 5*simtime.Millisecond)
		}
		return b.build(t)
	}
	mach := testMach(t, 8)
	ov, err := Replay(mk(true), simnet.PacketFlow, mach, simnet.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Replay(mk(false), simnet.PacketFlow, mach, simnet.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ov.Total >= seq.Total {
		t.Errorf("overlapped %v not faster than sequential %v", ov.Total, seq.Total)
	}
}

func TestReplayAllCollectives(t *testing.T) {
	ops := []trace.Op{
		trace.OpBarrier, trace.OpBcast, trace.OpReduce, trace.OpAllreduce,
		trace.OpGather, trace.OpScatter, trace.OpAllgather,
		trace.OpAlltoall, trace.OpReduceScatter,
	}
	for _, n := range []int{2, 3, 4, 5, 8, 13, 16} {
		for _, op := range ops {
			b := newTB(n)
			root := n / 2
			for r := 0; r < n; r++ {
				b.coll(r, op, trace.CommWorld, root, 2048)
			}
			tr := b.build(t)
			mach := testMach(t, n)
			res, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{})
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, op, err)
			}
			if res.Total <= 0 {
				t.Errorf("n=%d %v: total = %v", n, op, res.Total)
			}
		}
	}
}

func TestReplayBruckVsPairwiseAlltoall(t *testing.T) {
	// Small payload uses Bruck (log rounds); both must complete.
	for _, bytes := range []int64{64, 64 << 10} {
		b := newTB(16)
		for r := 0; r < 16; r++ {
			b.coll(r, trace.OpAlltoall, trace.CommWorld, 0, bytes)
		}
		tr := b.build(t)
		mach := testMach(t, 16)
		res, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{})
		if err != nil {
			t.Fatalf("bytes=%d: %v", bytes, err)
		}
		if res.Total <= 0 {
			t.Errorf("bytes=%d: total = %v", bytes, res.Total)
		}
	}
}

func TestReplayAlltoallvAsymmetric(t *testing.T) {
	const n = 4
	b := newTB(n)
	for r := 0; r < n; r++ {
		sb := make([]int64, n)
		for d := 0; d < n; d++ {
			if d != r {
				sb[d] = int64((r + 1) * (d + 1) * 100)
			}
		}
		b.alltoallv(r, trace.CommWorld, sb)
	}
	tr := b.build(t)
	mach := testMach(t, n)
	res, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 {
		t.Error("alltoallv produced zero total")
	}
}

func TestReplaySubCommunicator(t *testing.T) {
	const n = 8
	b := newTB(n)
	evens := []int32{0, 2, 4, 6}
	sub := b.tr.Comms.Add(evens)
	b.tr.Meta.UsesCommSplit = true
	for _, r := range evens {
		b.coll(int(r), trace.OpAllreduce, sub, 0, 4096)
	}
	tr := b.build(t)
	mach := testMach(t, n)
	res, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 {
		t.Error("sub-communicator allreduce produced zero total")
	}
	// Flow (SST/Macro 3.0 analog) must refuse comm-split traces.
	if _, err := Replay(tr, simnet.Flow, mach, simnet.Config{}, Options{}); err == nil {
		t.Error("flow model accepted a comm-split trace")
	}
}

func TestReplayUnsupportedThreadMultiple(t *testing.T) {
	b := newTB(2)
	b.compute(0, simtime.Millisecond)
	b.compute(1, simtime.Millisecond)
	tr := b.build(t)
	tr.Meta.UsesThreadMultiple = true
	mach := testMach(t, 2)
	for _, m := range []simnet.Model{simnet.Packet, simnet.Flow} {
		if _, err := Replay(tr, m, mach, simnet.Config{}, Options{}); err == nil {
			t.Errorf("%s accepted a thread-multiple trace", m)
		}
	}
	if _, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{}); err != nil {
		t.Errorf("packet-flow rejected a thread-multiple trace: %v", err)
	}
}

func TestReplayDetectsRendezvousDeadlock(t *testing.T) {
	// Two ranks that both send a rendezvous-sized message before
	// receiving: a classic unsafe MPI program. Validation passes
	// (messages match), but the replay must report the deadlock.
	b := newTB(8)
	big := int64(1 << 20) // above the eager threshold
	b.send(0, 7, 1, big)
	b.recv(0, 7, 2, big)
	b.send(7, 0, 2, big)
	b.recv(7, 0, 1, big)
	tr := b.build(t)
	mach := testMach(t, 8)
	_, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock report", err)
	}
}

func TestReplayEagerCrossDoesNotDeadlock(t *testing.T) {
	// The same exchange with eager-sized messages completes fine.
	b := newTB(8)
	small := int64(1024)
	b.send(0, 7, 1, small)
	b.recv(0, 7, 2, small)
	b.send(7, 0, 2, small)
	b.recv(7, 0, 1, small)
	tr := b.build(t)
	mach := testMach(t, 8)
	if _, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayRecordWritesValidTimestamps(t *testing.T) {
	b := newTB(8)
	for r := 0; r < 8; r++ {
		b.compute(r, simtime.Time(r+1)*100*simtime.Microsecond)
		b.coll(r, trace.OpAllreduce, trace.CommWorld, 0, 8192)
		b.compute(r, 50*simtime.Microsecond)
	}
	tr := b.build(t)
	mach := testMach(t, 8)
	res, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
	if got := tr.MeasuredTotal(); got != res.Total {
		t.Errorf("recorded total %v != replay total %v", got, res.Total)
	}
	// The slowest rank computes 800µs; the allreduce must make everyone
	// wait for it.
	if res.Total < 850*simtime.Microsecond {
		t.Errorf("total %v too small to include the straggler", res.Total)
	}
}

func TestReplayNoiseIncreasesAndIsDeterministic(t *testing.T) {
	b := newTB(8)
	for r := 0; r < 8; r++ {
		for i := 0; i < 20; i++ {
			b.compute(r, simtime.Millisecond)
			b.coll(r, trace.OpBarrier, trace.CommWorld, 0, 0)
		}
	}
	tr := b.build(t)
	mach := testMach(t, 8)
	clean, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := func() simtime.Time {
		res, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{},
			Options{Perturb: DefaultNoise(42, 8)})
		if err != nil {
			t.Fatal(err)
		}
		return res.Total
	}
	n1, n2 := run(), run()
	if n1 != n2 {
		t.Errorf("noise not deterministic: %v vs %v", n1, n2)
	}
	if n1 <= clean.Total {
		t.Errorf("noisy total %v not above clean %v", n1, clean.Total)
	}
}

func TestReplayLoadImbalanceShowsAsCommTime(t *testing.T) {
	// One slow rank: the others' barrier wait shows up as comm time.
	b := newTB(4)
	for r := 0; r < 4; r++ {
		d := simtime.Millisecond
		if r == 0 {
			d = 10 * simtime.Millisecond
		}
		b.compute(r, d)
		b.coll(r, trace.OpBarrier, trace.CommWorld, 0, 0)
	}
	tr := b.build(t)
	mach := testMach(t, 4)
	res, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Ranks 1..3 each wait ~9ms; average comm ≈ 27/4 ≈ 6.75ms.
	if res.Comm < 5*simtime.Millisecond {
		t.Errorf("comm = %v, want > 5ms of imbalance wait", res.Comm)
	}
	if res.Total < 10*simtime.Millisecond {
		t.Errorf("total = %v, want ≥ 10ms", res.Total)
	}
}

func TestReplayEventsCounted(t *testing.T) {
	b := newTB(16) // 4 nodes at 4 ranks/node, so traffic crosses the network
	for r := 0; r < 16; r++ {
		b.coll(r, trace.OpAlltoall, trace.CommWorld, 0, 64<<10)
	}
	tr := b.build(t)
	mach := testMach(t, 16)
	pkt, err := Replay(tr, simnet.Packet, mach, simnet.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pfl, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Events <= pfl.Events {
		t.Errorf("packet events %d not above packet-flow %d (1KiB vs 4KiB packets)", pkt.Events, pfl.Events)
	}
	if pkt.Net.Packets <= pfl.Net.Packets {
		t.Errorf("packet packets %d not above packet-flow %d", pkt.Net.Packets, pfl.Net.Packets)
	}
}
