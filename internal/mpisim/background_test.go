package mpisim

import (
	"testing"

	"hpctradeoff/internal/simnet"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// TestBackgroundInterferenceSlowsCommApp demonstrates the paper's
// §II-C point: neighbor-job traffic on shared links slows a
// communication-heavy application in simulation, while a Hockney-style
// model has no mechanism to see it.
func TestBackgroundInterferenceSlowsCommApp(t *testing.T) {
	b := newTB(32)
	const bytes = 256 << 10
	for it := 0; it < 10; it++ {
		for r := 0; r < 32; r++ {
			b.coll(r, trace.OpAlltoall, trace.CommWorld, 0, 16<<10)
		}
		for r := 0; r < 32; r++ {
			b.compute(r, simtime.Millisecond)
		}
	}
	_ = bytes
	tr := b.build(t)
	mach := testMach(t, 32)

	clean, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{
		Background: &Background{
			Sources:  8,
			MsgBytes: 64 << 10,
			Interval: 400 * simtime.Microsecond,
			Seed:     9,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Total <= clean.Total {
		t.Errorf("background traffic did not slow the app: %v vs %v", noisy.Total, clean.Total)
	}
	slowdown := float64(noisy.Total)/float64(clean.Total) - 1
	if slowdown < 0.02 {
		t.Errorf("interference slowdown only %.2f%%; want a visible effect", 100*slowdown)
	}
	t.Logf("interference slowdown: %.1f%% (clean %v, contended %v)", 100*slowdown, clean.Total, noisy.Total)
}

// TestBackgroundDeterministic: the interference stream is seeded.
func TestBackgroundDeterministic(t *testing.T) {
	b := newTB(8)
	for r := 0; r < 8; r++ {
		b.compute(r, simtime.Millisecond)
		b.coll(r, trace.OpAllreduce, trace.CommWorld, 0, 8192)
	}
	tr := b.build(t)
	mach := testMach(t, 8)
	opts := Options{Background: &Background{Sources: 4, MsgBytes: 64 << 10, Interval: 50 * simtime.Microsecond, Seed: 3}}
	r1, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Total != r2.Total {
		t.Errorf("background replay not deterministic: %v vs %v", r1.Total, r2.Total)
	}
}

// TestBackgroundStops: the injector must not keep the engine alive
// forever after the application finishes.
func TestBackgroundStops(t *testing.T) {
	b := newTB(4)
	for r := 0; r < 4; r++ {
		b.compute(r, simtime.Millisecond)
	}
	tr := b.build(t)
	mach := testMach(t, 4)
	res, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{
		Background: &Background{Sources: 2, MsgBytes: 4096, Interval: 10 * simtime.Microsecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The app computes 1ms; the run must terminate shortly after.
	if res.Total > 2*simtime.Millisecond {
		t.Errorf("total = %v; background injector kept running?", res.Total)
	}
}
