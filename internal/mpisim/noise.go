package mpisim

import (
	"math"

	"hpctradeoff/internal/simtime"
)

// Noise is the deterministic system-noise model the ground-truth
// executor uses. Real measured traces embed effects that trace-driven
// replay cannot reproduce — OS scheduling noise, MPI software overhead
// jitter, TLB/cache variation — which is why both SST/Macro's and
// MFACT's predictions undershoot the measured times in the paper
// (Figures 3c and 4c). Noise reproduces that structural gap.
//
// All draws are pure functions of (Seed, rank, event), so ground-truth
// generation is reproducible regardless of simulator event order.
type Noise struct {
	// Seed isolates traces from one another.
	Seed int64
	// CompSigma is the standard deviation of the multiplicative
	// lognormal jitter on compute intervals (e.g. 0.02 = 2%).
	CompSigma float64
	// SpikeProb is the per-compute-event probability of an OS
	// interruption spike.
	SpikeProb float64
	// SpikeMean is the mean duration of such a spike.
	SpikeMean simtime.Time
	// OverheadJitter is the mean extra per-call MPI software overhead
	// (exponentially distributed).
	OverheadJitter simtime.Time
	// RankSpeed, when non-nil, is a deterministic per-rank compute
	// slowdown (heterogeneous node speeds) applied before the random
	// jitter. Nil means homogeneous ranks.
	RankSpeed []float64

	// overheadCalls distinguishes successive Overhead draws on a rank.
	overheadCalls []uint32
}

// DefaultNoise returns the noise model used for ground-truth trace
// generation: 2% compute jitter, 1-in-2000 events hit by a ~150 µs OS
// spike, and ~80 ns of per-call overhead jitter.
func DefaultNoise(seed int64, ranks int) *Noise {
	return &Noise{
		Seed:           seed,
		CompSigma:      0.02,
		SpikeProb:      0.0005,
		SpikeMean:      150 * simtime.Microsecond,
		OverheadJitter: 80 * simtime.Nanosecond,
		overheadCalls:  make([]uint32, ranks),
	}
}

// VariabilityNoise returns the ground-truth noise model under swept
// platform variability: the default model with its compute jitter,
// spike probability, and overhead jitter scaled by (1 + osScale), plus
// an optional deterministic per-rank slowdown from heterogeneous node
// speeds. VariabilityNoise(seed, ranks, 0, nil) is DefaultNoise — the
// zero point of the sweep reproduces the historical model exactly.
func VariabilityNoise(seed int64, ranks int, osScale float64, rankSpeed []float64) *Noise {
	n := DefaultNoise(seed, ranks)
	if osScale != 0 {
		n.CompSigma *= 1 + osScale
		n.SpikeProb *= 1 + osScale
		n.OverheadJitter = n.OverheadJitter.Scale(1 + osScale)
	}
	n.RankSpeed = rankSpeed
	return n
}

// Compute implements Perturber.
func (n *Noise) Compute(rank int32, ev int32, d simtime.Time) simtime.Time {
	if d <= 0 {
		return d
	}
	if n.RankSpeed != nil && int(rank) < len(n.RankSpeed) {
		d = d.Scale(n.RankSpeed[rank])
	}
	h := n.hash(uint64(rank), uint64(ev), 1)
	// Lognormal multiplicative jitter via Box–Muller.
	u1 := uniform(h)
	u2 := uniform(n.hash(uint64(rank), uint64(ev), 2))
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	out := d.Scale(math.Exp(n.CompSigma*z - n.CompSigma*n.CompSigma/2))
	// Occasional OS interruption.
	if uniform(n.hash(uint64(rank), uint64(ev), 3)) < n.SpikeProb {
		mag := -math.Log(uniform(n.hash(uint64(rank), uint64(ev), 4)))
		out += n.SpikeMean.Scale(mag)
	}
	return out
}

// Overhead implements Perturber.
func (n *Noise) Overhead(rank int32) simtime.Time {
	if n.OverheadJitter <= 0 {
		return 0
	}
	var call uint32
	if int(rank) < len(n.overheadCalls) {
		call = n.overheadCalls[rank]
		n.overheadCalls[rank]++
	}
	u := uniform(n.hash(uint64(rank), uint64(call), 5))
	return n.OverheadJitter.Scale(-math.Log(u))
}

// hash is a splitmix64-style mix of the seed and three words.
func (n *Noise) hash(a, b, c uint64) uint64 {
	x := uint64(n.Seed) ^ a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9 ^ c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// uniform maps a hash to (0,1], avoiding log(0).
func uniform(h uint64) float64 {
	return (float64(h>>11) + 1) / float64(1<<53)
}
