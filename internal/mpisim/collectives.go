package mpisim

import (
	"fmt"
	"math/bits"

	"hpctradeoff/internal/trace"
)

// The collective algorithms below are the Thakur & Gropp suite MPICH
// uses on switched networks, which is what MFACT's collective cost
// models and SST/Macro's MPI layer assume:
//
//	barrier        dissemination
//	bcast          binomial tree
//	reduce         binomial tree (leaves toward root)
//	allreduce      recursive doubling with non-power-of-two fold
//	gather/scatter binomial tree with subtree-sized payloads
//	allgather      ring
//	alltoall       Bruck (small payloads) / pairwise rotation (large)
//	alltoallv      pairwise rotation with per-peer sizes
//	reducescatter  pairwise exchange
//
// Each algorithm is lowered to isend/irecv/wait rounds so the replay's
// protocol handling (eager vs rendezvous, contention) applies to
// collective traffic exactly as it does to application traffic.

// bruckThreshold is the per-member payload below which alltoall uses
// the Bruck algorithm (log rounds of aggregated blocks), and
// scatteredThreshold the payload below which the "scattered" storm of
// nonblocking sends/receives is used; only large payloads pay the
// memory-bounded pairwise rotation.
const (
	bruckThreshold     = 256
	scatteredThreshold = 32 << 10
)

func (lw *lowerer) lowerCollective(rank int, e *trace.Event, ev int32, seq int, vIndex map[vKey][][]int64) error {
	members := lw.comms.Members(e.Comm)
	n := len(members)
	pos := lw.comms.Position(e.Comm, int32(rank))
	if pos < 0 {
		return fmt.Errorf("mpisim: rank %d not in comm %d", rank, e.Comm)
	}
	tag := collTagBase | int32(e.Comm)<<12 | int32(seq&0xfff)
	c := collCtx{lw: lw, rank: rank, ev: ev, tag: tag, members: members, n: n, pos: pos}
	if n == 1 {
		return nil // single-member collective is a no-op
	}
	switch e.Op {
	case trace.OpBarrier:
		c.dissemination(0)
	case trace.OpBcast:
		c.binomialBcast(int(lw.comms.Position(e.Comm, e.Root)), e.Bytes)
	case trace.OpReduce:
		c.binomialReduce(int(lw.comms.Position(e.Comm, e.Root)), e.Bytes)
	case trace.OpAllreduce:
		c.recursiveDoublingAllreduce(e.Bytes)
	case trace.OpGather:
		c.binomialGather(int(lw.comms.Position(e.Comm, e.Root)), e.Bytes)
	case trace.OpScatter:
		c.binomialScatter(int(lw.comms.Position(e.Comm, e.Root)), e.Bytes)
	case trace.OpAllgather:
		c.ringAllgather(e.Bytes)
	case trace.OpAlltoall:
		switch {
		case e.Bytes <= bruckThreshold:
			c.bruckAlltoall(e.Bytes)
		case e.Bytes <= scatteredThreshold:
			c.scatteredAlltoall(e.Bytes)
		default:
			c.pairwiseAlltoall(e.Bytes)
		}
	case trace.OpAlltoallv:
		tbl := vIndex[vKey{e.Comm, seq}]
		if alltoallvAvg(tbl, c.pos, n) <= scatteredThreshold {
			c.scatteredAlltoallv(tbl)
		} else {
			c.pairwiseAlltoallv(tbl)
		}
	case trace.OpReduceScatter:
		c.pairwiseReduceScatter(e.Bytes)
	default:
		return fmt.Errorf("mpisim: unknown collective %v", e.Op)
	}
	return nil
}

// collCtx carries one rank's view of one collective instance.
type collCtx struct {
	lw      *lowerer
	rank    int
	ev      int32
	tag     int32
	members []int32
	n, pos  int
}

func (c *collCtx) world(pos int) int32 { return c.members[pos] }

// sendRecv emits a deadlock-free exchange round: irecv (if recvFrom ≥
// 0), isend (if sendTo ≥ 0), then a wait on both. Positions are member
// positions; -1 skips that side.
func (c *collCtx) sendRecv(sendTo int, sendBytes int64, recvFrom int, recvBytes int64) {
	reqs := c.lw.scratch[:0]
	if recvFrom >= 0 {
		req := c.lw.synth(c.rank)
		c.lw.emit(c.rank, rop{kind: ropIrecv, peer: c.world(recvFrom), tag: c.tag, bytes: recvBytes, req: req, ev: c.ev})
		reqs = append(reqs, req)
	}
	if sendTo >= 0 {
		req := c.lw.synth(c.rank)
		c.lw.emit(c.rank, rop{kind: ropIsend, peer: c.world(sendTo), tag: c.tag, bytes: sendBytes, req: req, ev: c.ev})
		reqs = append(reqs, req)
	}
	c.lw.scratch = reqs
	if len(reqs) > 0 {
		c.lw.emit(c.rank, rop{kind: ropWait, reqs: reqs, ev: c.ev})
	}
}

// send and recv emit one-sided blocking halves for tree algorithms.
func (c *collCtx) send(to int, bytes int64) {
	c.lw.emit(c.rank, rop{kind: ropSend, peer: c.world(to), tag: c.tag, bytes: bytes, ev: c.ev})
}

func (c *collCtx) recv(from int, bytes int64) {
	c.lw.emit(c.rank, rop{kind: ropRecv, peer: c.world(from), tag: c.tag, bytes: bytes, ev: c.ev})
}

// dissemination implements the dissemination barrier: ceil(log2 n)
// rounds; in round k, pos sends to (pos+2^k) mod n and receives from
// (pos-2^k) mod n.
func (c *collCtx) dissemination(bytes int64) {
	for k := 1; k < c.n; k <<= 1 {
		to := (c.pos + k) % c.n
		from := (c.pos - k + c.n) % c.n
		c.sendRecv(to, bytes, from, bytes)
	}
}

// binomialBcast implements the binomial-tree broadcast rooted at
// member position root.
func (c *collCtx) binomialBcast(root int, bytes int64) {
	rel := (c.pos - root + c.n) % c.n
	mask := 1
	for mask < c.n {
		if rel&mask != 0 {
			c.recv((rel-mask+root)%c.n, bytes)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < c.n {
			c.send((rel+mask+root)%c.n, bytes)
		}
		mask >>= 1
	}
}

// binomialReduce is the mirror image of binomialBcast: leaves send
// toward the root.
func (c *collCtx) binomialReduce(root int, bytes int64) {
	rel := (c.pos - root + c.n) % c.n
	mask := 1
	for mask < c.n {
		if rel&mask == 0 {
			if rel+mask < c.n {
				c.recv((rel+mask+root)%c.n, bytes)
			}
		} else {
			c.send((rel-mask+root)%c.n, bytes)
			break
		}
		mask <<= 1
	}
}

// recursiveDoublingAllreduce implements allreduce via recursive
// doubling with the standard fold for non-power-of-two sizes: the
// excess ranks fold into partners first, sit out the doubling, and
// receive the result at the end.
func (c *collCtx) recursiveDoublingAllreduce(bytes int64) {
	pof2 := 1 << (bits.Len(uint(c.n)) - 1)
	if pof2 > c.n {
		pof2 >>= 1
	}
	rem := c.n - pof2
	newpos := -1
	switch {
	case c.pos < 2*rem && c.pos%2 == 0:
		c.send(c.pos+1, bytes) // fold into odd partner, sit out
	case c.pos < 2*rem:
		c.recv(c.pos-1, bytes)
		newpos = c.pos / 2
	default:
		newpos = c.pos - rem
	}
	if newpos >= 0 {
		toOld := func(np int) int {
			if np < rem {
				return np*2 + 1
			}
			return np + rem
		}
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := toOld(newpos ^ mask)
			c.sendRecv(partner, bytes, partner, bytes)
		}
	}
	// Unfold: odd partners return the result to the evens that sat out.
	switch {
	case c.pos < 2*rem && c.pos%2 == 0:
		c.recv(c.pos+1, bytes)
	case c.pos < 2*rem:
		c.send(c.pos-1, bytes)
	}
}

// binomialGather gathers bytes-per-member to the root; each tree edge
// carries the sender's accumulated subtree.
func (c *collCtx) binomialGather(root int, bytes int64) {
	rel := (c.pos - root + c.n) % c.n
	mask := 1
	for mask < c.n {
		if rel&mask == 0 {
			if rel+mask < c.n {
				sub := min(mask, c.n-(rel+mask))
				c.recv((rel+mask+root)%c.n, bytes*int64(sub))
			}
		} else {
			sub := min(mask, c.n-rel)
			c.send((rel-mask+root)%c.n, bytes*int64(sub))
			break
		}
		mask <<= 1
	}
}

// binomialScatter is the mirror image of binomialGather.
func (c *collCtx) binomialScatter(root int, bytes int64) {
	rel := (c.pos - root + c.n) % c.n
	// Receive our subtree from the parent (non-roots only).
	mask := 1
	for mask < c.n {
		if rel&mask != 0 {
			sub := min(mask, c.n-rel)
			c.recv((rel-mask+root)%c.n, bytes*int64(sub))
			break
		}
		mask <<= 1
	}
	// Forward sub-subtrees downward.
	mask >>= 1
	for mask > 0 {
		if rel+mask < c.n {
			sub := min(mask, c.n-(rel+mask))
			c.send((rel+mask+root)%c.n, bytes*int64(sub))
		}
		mask >>= 1
	}
}

// ringAllgather implements the (n-1)-round ring: in each round, pass
// one block to the right neighbor and receive one from the left.
func (c *collCtx) ringAllgather(bytes int64) {
	right := (c.pos + 1) % c.n
	left := (c.pos - 1 + c.n) % c.n
	for k := 0; k < c.n-1; k++ {
		c.sendRecv(right, bytes, left, bytes)
	}
}

// alltoallvAvg returns the caller's average per-peer payload, the
// algorithm-selection metric for alltoallv.
func alltoallvAvg(tbl [][]int64, pos, n int) int64 {
	if n <= 1 || pos >= len(tbl) || tbl[pos] == nil {
		return 0
	}
	var sum int64
	for _, b := range tbl[pos] {
		sum += b
	}
	return sum / int64(n-1)
}

// scatteredAlltoall implements the medium-payload "scattered"
// algorithm: post every receive, then every send (rotated so sends
// spread over destinations), then wait for everything. No round
// barriers, so transfers overlap freely.
func (c *collCtx) scatteredAlltoall(bytes int64) {
	reqs := c.lw.scratch[:0]
	for k := 1; k < c.n; k++ {
		from := (c.pos - k + c.n) % c.n
		req := c.lw.synth(c.rank)
		c.lw.emit(c.rank, rop{kind: ropIrecv, peer: c.world(from), tag: c.tag, bytes: bytes, req: req, ev: c.ev})
		reqs = append(reqs, req)
	}
	for k := 1; k < c.n; k++ {
		to := (c.pos + k) % c.n
		req := c.lw.synth(c.rank)
		c.lw.emit(c.rank, rop{kind: ropIsend, peer: c.world(to), tag: c.tag, bytes: bytes, req: req, ev: c.ev})
		reqs = append(reqs, req)
	}
	c.lw.scratch = reqs
	c.lw.emit(c.rank, rop{kind: ropWait, reqs: reqs, ev: c.ev})
}

// scatteredAlltoallv is scatteredAlltoall with per-peer payloads.
func (c *collCtx) scatteredAlltoallv(tbl [][]int64) {
	reqs := c.lw.scratch[:0]
	for k := 1; k < c.n; k++ {
		from := (c.pos - k + c.n) % c.n
		var b int64
		if from < len(tbl) && tbl[from] != nil {
			b = tbl[from][c.pos]
		}
		req := c.lw.synth(c.rank)
		c.lw.emit(c.rank, rop{kind: ropIrecv, peer: c.world(from), tag: c.tag, bytes: b, req: req, ev: c.ev})
		reqs = append(reqs, req)
	}
	for k := 1; k < c.n; k++ {
		to := (c.pos + k) % c.n
		var b int64
		if c.pos < len(tbl) && tbl[c.pos] != nil {
			b = tbl[c.pos][to]
		}
		req := c.lw.synth(c.rank)
		c.lw.emit(c.rank, rop{kind: ropIsend, peer: c.world(to), tag: c.tag, bytes: b, req: req, ev: c.ev})
		reqs = append(reqs, req)
	}
	c.lw.scratch = reqs
	c.lw.emit(c.rank, rop{kind: ropWait, reqs: reqs, ev: c.ev})
}

// pairwiseAlltoall implements the (n-1)-round rotation: in round k,
// send the block for (pos+k) mod n and receive from (pos-k) mod n.
func (c *collCtx) pairwiseAlltoall(bytes int64) {
	for k := 1; k < c.n; k++ {
		to := (c.pos + k) % c.n
		from := (c.pos - k + c.n) % c.n
		c.sendRecv(to, bytes, from, bytes)
	}
}

// bruckAlltoall implements the Bruck algorithm for small payloads:
// ceil(log2 n) rounds; round k ships every block whose rotated
// destination has bit k set, i.e. about n/2 blocks per round.
func (c *collCtx) bruckAlltoall(bytes int64) {
	for k := 1; k < c.n; k <<= 1 {
		blocks := 0
		for j := 1; j < c.n; j++ {
			if j&k != 0 {
				blocks++
			}
		}
		to := (c.pos + k) % c.n
		from := (c.pos - k + c.n) % c.n
		c.sendRecv(to, bytes*int64(blocks), from, bytes*int64(blocks))
	}
}

// pairwiseAlltoallv is the rotation algorithm with per-destination
// payloads. tbl[p] is member p's SendBytes table.
func (c *collCtx) pairwiseAlltoallv(tbl [][]int64) {
	for k := 1; k < c.n; k++ {
		to := (c.pos + k) % c.n
		from := (c.pos - k + c.n) % c.n
		var sendB, recvB int64
		if c.pos < len(tbl) && tbl[c.pos] != nil {
			sendB = tbl[c.pos][to]
		}
		if from < len(tbl) && tbl[from] != nil {
			recvB = tbl[from][c.pos]
		}
		c.sendRecv(to, sendB, from, recvB)
	}
}

// pairwiseReduceScatter exchanges one reduced chunk with every peer.
func (c *collCtx) pairwiseReduceScatter(bytes int64) {
	for k := 1; k < c.n; k++ {
		to := (c.pos + k) % c.n
		from := (c.pos - k + c.n) % c.n
		c.sendRecv(to, bytes, from, bytes)
	}
}
