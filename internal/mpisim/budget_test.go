package mpisim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"hpctradeoff/internal/des"
	"hpctradeoff/internal/simnet"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// busyTrace builds a long but perfectly legal trace: every rank
// alternates compute with a ring exchange, generating plenty of DES
// events for the budget to cut off.
func busyTrace(t *testing.T, ranks, rounds int) *trace.Trace {
	t.Helper()
	b := newTB(ranks)
	for i := 0; i < rounds; i++ {
		for r := 0; r < ranks; r++ {
			b.compute(r, simtime.Microsecond)
		}
		for r := 0; r < ranks; r++ {
			rq := b.irecv(r, (r+ranks-1)%ranks, i, 1024)
			sq := b.isend(r, (r+1)%ranks, i, 1024)
			b.waitall(r, rq, sq)
		}
	}
	return b.build(t)
}

func TestReplayMaxEvents(t *testing.T) {
	tr := busyTrace(t, 4, 100)
	mach := testMach(t, 4)
	_, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{MaxEvents: 64})
	if !errors.Is(err, des.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if !strings.Contains(err.Error(), "aborted") {
		t.Errorf("error %q does not say the replay was aborted", err)
	}
	// A truncated run must NOT be misreported as a deadlock.
	if errors.Is(err, ErrDeadlock) {
		t.Errorf("budget abort misclassified as deadlock: %v", err)
	}
}

func TestReplayDeadlinePassed(t *testing.T) {
	tr := busyTrace(t, 4, 100)
	mach := testMach(t, 4)
	_, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{},
		Options{Deadline: time.Now().Add(-time.Hour)})
	if !errors.Is(err, des.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestReplayMaxSimTime(t *testing.T) {
	tr := busyTrace(t, 4, 100)
	mach := testMach(t, 4)
	_, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{},
		Options{MaxSimTime: 3 * simtime.Microsecond})
	if !errors.Is(err, des.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestReplayWithinBudgetSucceeds(t *testing.T) {
	tr := busyTrace(t, 4, 3)
	mach := testMach(t, 4)
	res, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{},
		Options{MaxEvents: 10_000_000, Deadline: time.Now().Add(time.Minute)})
	if err != nil {
		t.Fatalf("replay inside budget failed: %v", err)
	}
	if res.Total <= 0 {
		t.Errorf("predicted total = %v, want > 0", res.Total)
	}
}

func TestReplayDeadlockIsTyped(t *testing.T) {
	// Rank 0 receives a message nobody sends. trace.Validate would
	// reject this, so assemble it by hand (Replay does not re-validate
	// — corrupt converted traces reach it as-is).
	tr := trace.New(trace.Meta{App: "dl", Class: "T", Machine: "cielito", NumRanks: 2, RanksPerNode: 2})
	tr.Ranks[0] = append(tr.Ranks[0],
		trace.Event{Op: trace.OpRecv, Peer: 1, Tag: 7, Bytes: 64, Comm: trace.CommWorld, Req: trace.NoReq})
	tr.Ranks[1] = append(tr.Ranks[1],
		trace.Event{Op: trace.OpCompute, Peer: trace.NoPeer, Req: trace.NoReq, Exit: simtime.Microsecond})
	mach := testMach(t, 2)
	_, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestReplayUnknownRequestDiagnosed(t *testing.T) {
	// A wait on a request that was never posted. The builder can't
	// express this (it hands out real request IDs), so assemble the
	// trace by hand; Replay does not re-validate.
	tr := trace.New(trace.Meta{App: "bad", Class: "T", Machine: "cielito", NumRanks: 1, RanksPerNode: 1})
	tr.Ranks[0] = append(tr.Ranks[0],
		trace.Event{Op: trace.OpWait, Peer: trace.NoPeer, Req: 42})
	mach := testMach(t, 1)
	_, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{})
	if !errors.Is(err, ErrUnknownRequest) {
		t.Fatalf("err = %v, want ErrUnknownRequest", err)
	}
	for _, want := range []string{"rank 0", "request 42"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}
