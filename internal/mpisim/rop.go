// Package mpisim replays MPI traces on a simulated network. It
// implements the MPI semantics layer of the SST/Macro-analog
// simulators: message matching, eager/rendezvous protocols, nonblocking
// requests, and collectives lowered onto point-to-point algorithms
// (binomial trees, recursive doubling, dissemination, ring, Bruck, and
// pairwise exchange — the Thakur & Gropp algorithm suite).
//
// The same replay driver also serves as the ground-truth executor: run
// with a Perturber (OS noise + software overhead jitter), it produces
// the "measured" timestamps recorded in the synthetic traces.
package mpisim

import (
	"hpctradeoff/internal/simtime"
)

// ropKind enumerates the primitive replay operations the driver
// executes after collectives are lowered away.
type ropKind uint8

const (
	ropCompute ropKind = iota
	ropSend
	ropIsend
	ropRecv
	ropIrecv
	ropWait // completes a set of requests (Wait and Waitall unified)
)

var ropNames = [...]string{"compute", "send", "isend", "recv", "irecv", "wait"}

func (k ropKind) String() string { return ropNames[k] }

// rop is one primitive replay operation on one rank.
type rop struct {
	kind  ropKind
	peer  int32 // world rank of the p2p peer
	tag   int32
	comm  int32 // communicator for matching (0 for lowered collective rounds, whose tags disambiguate)
	bytes int64
	dur   simtime.Time // compute duration (unscaled trace time)
	req   int32        // request id for isend/irecv
	reqs  []int32      // request set for wait
	ev    int32        // index of the originating event in the rank's trace stream
}

// program is the fully lowered per-rank replay program. All per-rank
// op slices view one shared arena, as do the wait request sets.
type program struct {
	ops [][]rop
	// evCount[r] is the number of original events on rank r (for
	// timestamp write-back).
	evCount []int
	// reqCount[r] is the number of replay request ids rank r uses.
	// Lowering renumbers requests densely from 0, so the driver tracks
	// request state in flat arrays instead of maps.
	reqCount []int32
}
