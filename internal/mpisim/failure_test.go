package mpisim

import (
	"strings"
	"testing"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simnet"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// Failure-injection tests: the replay driver must diagnose broken
// inputs rather than hang or crash.

func TestReplayRejectsUndersizedMachine(t *testing.T) {
	b := newTB(8)
	b.compute(0, simtime.Millisecond)
	for r := 1; r < 8; r++ {
		b.compute(r, simtime.Millisecond)
	}
	tr := b.build(t)
	mach, err := machine.Cielito(4, 4) // hosts only 4 ranks
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{}); err == nil {
		t.Fatal("undersized machine accepted")
	}
}

func TestReplayDeadlockReportNamesTheRank(t *testing.T) {
	// A three-way rendezvous cycle: 0→1→2→0, all sending before
	// receiving.
	b := newTB(12)
	big := int64(1 << 20)
	ring := []int{0, 1, 2}
	for i, r := range ring {
		nxt := ring[(i+1)%3]
		b.send(r, nxt, 5, big)
	}
	for i, r := range ring {
		prv := ring[(i+2)%3]
		b.recv(r, prv, 5, big)
	}
	tr := b.build(t)
	mach := testMach(t, 12)
	_, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{})
	if err == nil {
		t.Fatal("rendezvous cycle not detected")
	}
	if !strings.Contains(err.Error(), "deadlock") || !strings.Contains(err.Error(), "rank") {
		t.Fatalf("unhelpful deadlock report: %v", err)
	}
}

func TestReplayMixedEagerBreaksCycle(t *testing.T) {
	// Same cycle but one eager-sized message: the cycle is broken and
	// the replay completes.
	b := newTB(12)
	big := int64(1 << 20)
	b.send(0, 1, 5, 64) // eager
	b.send(1, 2, 5, big)
	b.send(2, 0, 5, big)
	b.recv(1, 0, 5, 64)
	b.recv(2, 1, 5, big)
	b.recv(0, 2, 5, big)
	tr := b.build(t)
	mach := testMach(t, 12)
	if _, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{}); err != nil {
		t.Fatalf("eager-broken cycle failed: %v", err)
	}
}

func TestReplayZeroRanksAndSingleRank(t *testing.T) {
	// Single-rank traces (compute only) are degenerate but legal.
	b := newTB(1)
	b.compute(0, simtime.Millisecond)
	tr := b.build(t)
	mach := testMach(t, 4)
	res, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != simtime.Millisecond {
		t.Errorf("total = %v", res.Total)
	}
}

func TestReplayManySmallCollectivesStress(t *testing.T) {
	// A stress mix: hundreds of tiny collectives across overlapping
	// sub-communicators; exercises the tag/sequence bookkeeping.
	b := newTB(12)
	evens := b.tr.Comms.Add([]int32{0, 2, 4, 6, 8, 10})
	odds := b.tr.Comms.Add([]int32{1, 3, 5, 7, 9, 11})
	b.tr.Meta.UsesCommSplit = true
	for it := 0; it < 50; it++ {
		for r := 0; r < 12; r++ {
			b.coll(r, trace.OpBarrier, trace.CommWorld, 0, 0)
		}
		for _, r := range []int{0, 2, 4, 6, 8, 10} {
			b.coll(r, trace.OpAllreduce, evens, 0, 16)
		}
		for _, r := range []int{1, 3, 5, 7, 9, 11} {
			b.coll(r, trace.OpBcast, odds, 1, 256)
		}
	}
	tr := b.build(t)
	mach := testMach(t, 12)
	res, err := Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 {
		t.Error("zero total")
	}
}

func TestNoiseProperties(t *testing.T) {
	n := DefaultNoise(7, 4)
	// Compute jitter is multiplicative around 1 and deterministic.
	d := 10 * simtime.Millisecond
	a := n.Compute(1, 5, d)
	bv := n.Compute(1, 5, d)
	if a != bv {
		t.Error("noise not deterministic per (rank, event)")
	}
	if a < d.Scale(0.8) || a > d.Scale(1.5) {
		t.Errorf("jittered compute %v too far from %v", a, d)
	}
	if n.Compute(1, 5, 0) != 0 {
		t.Error("zero compute must stay zero")
	}
	// Overhead draws advance per call and stay positive.
	o1 := n.Overhead(2)
	o2 := n.Overhead(2)
	if o1 < 0 || o2 < 0 {
		t.Error("negative overhead")
	}
	if o1 == o2 {
		t.Error("overhead should vary across calls")
	}
	// Spikes occur at roughly the configured probability. Use a short
	// base interval so a ~150µs OS interruption is unmistakable.
	short := 100 * simtime.Microsecond
	spikes := 0
	const events = 40000
	for ev := int32(0); ev < events; ev++ {
		if n.Compute(0, ev, short) > short.Scale(1.5) {
			spikes++
		}
	}
	rate := float64(spikes) / events
	if rate < 0.0001 || rate > 0.002 {
		t.Errorf("spike rate = %v, want ≈ 0.0005", rate)
	}
}
