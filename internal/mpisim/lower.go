package mpisim

import (
	"fmt"

	"hpctradeoff/internal/trace"
)

// Collective traffic uses a reserved tag space far above application
// tags so lowered rounds never match application messages.
const collTagBase int32 = 1 << 20

// lowerer accumulates per-rank replay programs while walking a trace.
//
// Lowering runs twice over the same logic: a counting pass sizes every
// per-rank program and wait-set arena, then a fill pass writes rops
// into exactly-sized flat arenas. Replay is run once per (trace, model,
// config) tuple across the campaign, so the slice-doubling garbage a
// single append-driven pass would leave behind is a per-replay cost
// worth two cheap walks to avoid: after the fill pass the whole
// program is two allocations (rop arena + wait-set arena) per trace.
type lowerer struct {
	src      trace.Source
	comms    *trace.CommTable
	counting bool

	// Counting pass outputs.
	nOps  []int // rops per rank
	nReqs []int // wait-set ints per rank

	// Fill pass state: exactly-sized per-rank views into shared arenas.
	out      [][]rop
	used     []int
	reqsOut  [][]int32
	reqsUsed []int

	scratch []int32 // transient wait-set buffer, owned until the emit

	nextReq []int32 // per-rank fresh request ids
	reqMap  []map[int32]int32
}

// lower translates a validated trace into primitive replay programs:
// point-to-point and compute events copy through (with requests
// renumbered into a fresh namespace), and every collective expands into
// the point-to-point rounds of its algorithm. A non-nil sess supplies
// the arenas, reused across traces.
func lower(src trace.Source, sess *Session) (*program, error) {
	n := src.TraceMeta().NumRanks
	lw := &lowerer{
		src:      src,
		comms:    src.TraceComms(),
		counting: true,
		nOps:     make([]int, n),
		nReqs:    make([]int, n),
		nextReq:  make([]int32, n),
		reqMap:   make([]map[int32]int32, n),
	}
	for r := range lw.reqMap {
		lw.reqMap[r] = make(map[int32]int32)
	}

	// Index alltoallv events by (comm, instance) so every member can
	// see every other member's send counts.
	vIndex := buildAlltoallvIndex(src)

	if err := lw.pass(vIndex); err != nil {
		return nil, err
	}

	// Size the arenas from the counting pass and run again, filling.
	totalOps, totalReqs := 0, 0
	for r := 0; r < n; r++ {
		totalOps += lw.nOps[r]
		totalReqs += lw.nReqs[r]
	}
	opArena := sess.ops(totalOps)
	reqArena := sess.reqs(totalReqs)
	lw.out = make([][]rop, n)
	lw.used = make([]int, n)
	lw.reqsOut = make([][]int32, n)
	lw.reqsUsed = make([]int, n)
	for r, opOff, reqOff := 0, 0, 0; r < n; r++ {
		lw.out[r] = opArena[opOff : opOff+lw.nOps[r] : opOff+lw.nOps[r]]
		lw.reqsOut[r] = reqArena[reqOff : reqOff+lw.nReqs[r] : reqOff+lw.nReqs[r]]
		opOff += lw.nOps[r]
		reqOff += lw.nReqs[r]
	}
	lw.counting = false
	for r := range lw.reqMap {
		clear(lw.reqMap[r])
		lw.nextReq[r] = 0
	}
	if err := lw.pass(vIndex); err != nil {
		return nil, err
	}

	evCount := make([]int, n)
	reqCount := make([]int32, n)
	for r := 0; r < n; r++ {
		evCount[r] = src.RankLen(r)
		reqCount[r] = lw.nextReq[r]
	}
	return &program{ops: lw.out, evCount: evCount, reqCount: reqCount}, nil
}

// pass walks every rank's event stream once, emitting (or counting)
// the lowered program.
func (lw *lowerer) pass(vIndex map[vKey][][]int64) error {
	n := lw.src.TraceMeta().NumRanks
	collSeq := make([]int, lw.comms.Len())
	var e trace.Event
	for rank := 0; rank < n; rank++ {
		clear(collSeq)
		m := lw.src.RankLen(rank)
		for i := 0; i < m; i++ {
			lw.src.EventAt(rank, i, &e)
			ev := int32(i)
			switch e.Op {
			case trace.OpCompute:
				lw.emit(rank, rop{kind: ropCompute, dur: e.Duration(), ev: ev})
			case trace.OpSend:
				lw.emit(rank, rop{kind: ropSend, peer: e.Peer, tag: e.Tag, comm: int32(e.Comm), bytes: e.Bytes, ev: ev})
			case trace.OpRecv:
				lw.emit(rank, rop{kind: ropRecv, peer: e.Peer, tag: e.Tag, comm: int32(e.Comm), bytes: e.Bytes, ev: ev})
			case trace.OpIsend:
				lw.emit(rank, rop{kind: ropIsend, peer: e.Peer, tag: e.Tag, comm: int32(e.Comm), bytes: e.Bytes, req: lw.fresh(rank, e.Req), ev: ev})
			case trace.OpIrecv:
				lw.emit(rank, rop{kind: ropIrecv, peer: e.Peer, tag: e.Tag, comm: int32(e.Comm), bytes: e.Bytes, req: lw.fresh(rank, e.Req), ev: ev})
			case trace.OpWait:
				id, err := lw.lookup(rank, i, e.Req)
				if err != nil {
					return err
				}
				lw.scratch = append(lw.scratch[:0], id)
				lw.emit(rank, rop{kind: ropWait, reqs: lw.scratch, ev: ev})
			case trace.OpWaitall:
				lw.scratch = lw.scratch[:0]
				for _, r := range e.Reqs {
					id, err := lw.lookup(rank, i, r)
					if err != nil {
						return err
					}
					lw.scratch = append(lw.scratch, id)
				}
				lw.emit(rank, rop{kind: ropWait, reqs: lw.scratch, ev: ev})
			default:
				if !e.Op.IsCollective() {
					return fmt.Errorf("mpisim: rank %d event %d: unsupported op %v", rank, i, e.Op)
				}
				if int(e.Comm) < 0 || int(e.Comm) >= len(collSeq) {
					return fmt.Errorf("mpisim: rank %d event %d: comm %d out of range", rank, i, e.Comm)
				}
				seq := collSeq[e.Comm]
				collSeq[e.Comm]++
				if err := lw.lowerCollective(rank, &e, ev, seq, vIndex); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// emit appends op to rank's program (or just counts it). op.reqs is
// only read during the call: the fill pass copies it into the wait-set
// arena, so callers may pass a reused scratch buffer.
func (lw *lowerer) emit(rank int, op rop) {
	if lw.counting {
		lw.nOps[rank]++
		lw.nReqs[rank] += len(op.reqs)
		return
	}
	if len(op.reqs) > 0 {
		start := lw.reqsUsed[rank]
		end := start + len(op.reqs)
		copy(lw.reqsOut[rank][start:end], op.reqs)
		op.reqs = lw.reqsOut[rank][start:end:end]
		lw.reqsUsed[rank] = end
	}
	lw.out[rank][lw.used[rank]] = op
	lw.used[rank]++
}

// fresh allocates a new request id for rank and records the mapping
// from the trace's id.
func (lw *lowerer) fresh(rank int, orig int32) int32 {
	id := lw.nextReq[rank]
	lw.nextReq[rank]++
	lw.reqMap[rank][orig] = id
	return id
}

// synth allocates a request id for a synthetic (lowered) operation.
func (lw *lowerer) synth(rank int) int32 {
	id := lw.nextReq[rank]
	lw.nextReq[rank]++
	return id
}

// lookup resolves a trace request id to its renumbered replay id.
// Validated traces never miss, but Replay accepts unvalidated traces,
// so a miss is reported as a diagnosable malformed-trace error (in the
// style of the deadlock report) rather than a panic.
func (lw *lowerer) lookup(rank, event int, orig int32) (int32, error) {
	id, ok := lw.reqMap[rank][orig]
	if !ok {
		return 0, fmt.Errorf("%w: rank %d event %d waits on request %d, which was never posted or was already completed",
			ErrUnknownRequest, rank, event, orig)
	}
	delete(lw.reqMap[rank], orig)
	return id, nil
}

type vKey struct {
	comm trace.CommID
	seq  int
}

// buildAlltoallvIndex maps (comm, per-comm alltoallv instance) to the
// per-member SendBytes tables, indexed by member position. The tables
// alias the trace's backing storage and are read-only.
func buildAlltoallvIndex(src trace.Source) map[vKey][][]int64 {
	var idx map[vKey][][]int64 // most traces have none; allocate lazily
	comms := src.TraceComms()
	n := src.TraceMeta().NumRanks
	counts := make([]int, comms.Len())
	var e trace.Event
	for rank := 0; rank < n; rank++ {
		clear(counts)
		m := src.RankLen(rank)
		for i := 0; i < m; i++ {
			src.EventAt(rank, i, &e)
			if !e.Op.IsCollective() || int(e.Comm) < 0 || int(e.Comm) >= len(counts) {
				continue
			}
			seq := counts[e.Comm]
			counts[e.Comm]++
			if e.Op != trace.OpAlltoallv {
				continue
			}
			if idx == nil {
				idx = make(map[vKey][][]int64)
			}
			k := vKey{e.Comm, seq}
			tbl := idx[k]
			if tbl == nil {
				tbl = make([][]int64, comms.Size(e.Comm))
				idx[k] = tbl
			}
			pos := comms.Position(e.Comm, int32(rank))
			tbl[pos] = e.SendBytes
		}
	}
	return idx
}
