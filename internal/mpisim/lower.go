package mpisim

import (
	"fmt"

	"hpctradeoff/internal/trace"
)

// Collective traffic uses a reserved tag space far above application
// tags so lowered rounds never match application messages.
const collTagBase int32 = 1 << 20

// lowerer accumulates per-rank replay programs while walking a trace.
type lowerer struct {
	tr      *trace.Trace
	out     [][]rop
	nextReq []int32 // per-rank fresh request ids
	reqMap  []map[int32]int32
}

// lower translates a validated trace into primitive replay programs:
// point-to-point and compute events copy through (with requests
// renumbered into a fresh namespace), and every collective expands into
// the point-to-point rounds of its algorithm.
func lower(tr *trace.Trace) (*program, error) {
	n := tr.Meta.NumRanks
	lw := &lowerer{
		tr:      tr,
		out:     make([][]rop, n),
		nextReq: make([]int32, n),
		reqMap:  make([]map[int32]int32, n),
	}
	for r := range lw.reqMap {
		lw.reqMap[r] = make(map[int32]int32)
	}

	// Index alltoallv events by (comm, instance) so every member can
	// see every other member's send counts.
	vIndex := buildAlltoallvIndex(tr)

	evCount := make([]int, n)
	for rank := 0; rank < n; rank++ {
		evCount[rank] = len(tr.Ranks[rank])
		collSeq := make(map[trace.CommID]int)
		for i := range tr.Ranks[rank] {
			e := &tr.Ranks[rank][i]
			ev := int32(i)
			switch e.Op {
			case trace.OpCompute:
				lw.emit(rank, rop{kind: ropCompute, dur: e.Duration(), ev: ev})
			case trace.OpSend:
				lw.emit(rank, rop{kind: ropSend, peer: e.Peer, tag: e.Tag, comm: int32(e.Comm), bytes: e.Bytes, ev: ev})
			case trace.OpRecv:
				lw.emit(rank, rop{kind: ropRecv, peer: e.Peer, tag: e.Tag, comm: int32(e.Comm), bytes: e.Bytes, ev: ev})
			case trace.OpIsend:
				lw.emit(rank, rop{kind: ropIsend, peer: e.Peer, tag: e.Tag, comm: int32(e.Comm), bytes: e.Bytes, req: lw.fresh(rank, e.Req), ev: ev})
			case trace.OpIrecv:
				lw.emit(rank, rop{kind: ropIrecv, peer: e.Peer, tag: e.Tag, comm: int32(e.Comm), bytes: e.Bytes, req: lw.fresh(rank, e.Req), ev: ev})
			case trace.OpWait:
				id, err := lw.lookup(rank, i, e.Req)
				if err != nil {
					return nil, err
				}
				lw.emit(rank, rop{kind: ropWait, reqs: []int32{id}, ev: ev})
			case trace.OpWaitall:
				reqs := make([]int32, len(e.Reqs))
				for j, r := range e.Reqs {
					id, err := lw.lookup(rank, i, r)
					if err != nil {
						return nil, err
					}
					reqs[j] = id
				}
				lw.emit(rank, rop{kind: ropWait, reqs: reqs, ev: ev})
			default:
				if !e.Op.IsCollective() {
					return nil, fmt.Errorf("mpisim: rank %d event %d: unsupported op %v", rank, i, e.Op)
				}
				seq := collSeq[e.Comm]
				collSeq[e.Comm]++
				if err := lw.lowerCollective(rank, e, ev, seq, vIndex); err != nil {
					return nil, err
				}
			}
		}
	}
	return &program{ops: lw.out, evCount: evCount}, nil
}

func (lw *lowerer) emit(rank int, op rop) {
	lw.out[rank] = append(lw.out[rank], op)
}

// fresh allocates a new request id for rank and records the mapping
// from the trace's id.
func (lw *lowerer) fresh(rank int, orig int32) int32 {
	id := lw.nextReq[rank]
	lw.nextReq[rank]++
	lw.reqMap[rank][orig] = id
	return id
}

// synth allocates a request id for a synthetic (lowered) operation.
func (lw *lowerer) synth(rank int) int32 {
	id := lw.nextReq[rank]
	lw.nextReq[rank]++
	return id
}

// lookup resolves a trace request id to its renumbered replay id.
// Validated traces never miss, but Replay accepts unvalidated traces,
// so a miss is reported as a diagnosable malformed-trace error (in the
// style of the deadlock report) rather than a panic.
func (lw *lowerer) lookup(rank, event int, orig int32) (int32, error) {
	id, ok := lw.reqMap[rank][orig]
	if !ok {
		return 0, fmt.Errorf("%w: rank %d event %d waits on request %d, which was never posted or was already completed",
			ErrUnknownRequest, rank, event, orig)
	}
	delete(lw.reqMap[rank], orig)
	return id, nil
}

type vKey struct {
	comm trace.CommID
	seq  int
}

// buildAlltoallvIndex maps (comm, per-comm alltoallv instance) to the
// per-member SendBytes tables, indexed by member position.
func buildAlltoallvIndex(tr *trace.Trace) map[vKey][][]int64 {
	idx := make(map[vKey][][]int64)
	for rank := range tr.Ranks {
		counts := make(map[trace.CommID]int)
		for i := range tr.Ranks[rank] {
			e := &tr.Ranks[rank][i]
			if !e.Op.IsCollective() {
				continue
			}
			seq := counts[e.Comm]
			counts[e.Comm]++
			if e.Op != trace.OpAlltoallv {
				continue
			}
			k := vKey{e.Comm, seq}
			tbl := idx[k]
			if tbl == nil {
				tbl = make([][]int64, tr.Comms.Size(e.Comm))
				idx[k] = tbl
			}
			pos := tr.Comms.Position(e.Comm, int32(rank))
			tbl[pos] = e.SendBytes
		}
	}
	return idx
}
