package workload

import (
	"reflect"
	"testing"
)

// TestSuiteSmallEdgeCases pins the degenerate corners of manifest
// filtering: non-positive strides clamp to 1, a cap below the smallest
// trace yields an empty (not nil-panicking) manifest, and a stride
// larger than the suite keeps exactly the first entry.
func TestSuiteSmallEdgeCases(t *testing.T) {
	full := Suite()

	for _, stride := range []int{0, -1, -100} {
		got := SuiteSmall(stride, 0)
		if !reflect.DeepEqual(got, full) {
			t.Errorf("SuiteSmall(%d, 0) = %d traces, want the full %d-trace suite", stride, len(got), len(full))
		}
	}

	if got := SuiteSmall(1, 1); len(got) != 0 {
		t.Errorf("SuiteSmall(1, 1) kept %d traces; maxRanks=1 should exclude every trace", len(got))
	}

	if got := SuiteSmall(len(full)+1, 0); len(got) != 1 || !reflect.DeepEqual(got[0], full[0]) {
		t.Errorf("SuiteSmall(%d, 0) = %v, want exactly the first suite entry", len(full)+1, got)
	}

	// Stride and cap compose: stride selects by original index first,
	// then the cap filters, so the result is a subset of the strided set.
	strided := SuiteSmall(7, 0)
	capped := SuiteSmall(7, 256)
	j := 0
	for _, p := range strided {
		if p.Ranks <= 256 {
			if j >= len(capped) || !reflect.DeepEqual(capped[j], p) {
				t.Fatalf("SuiteSmall(7, 256) is not the ≤256-rank subsequence of SuiteSmall(7, 0)")
			}
			j++
		}
	}
	if j != len(capped) {
		t.Fatalf("SuiteSmall(7, 256) has %d extra traces beyond the strided subsequence", len(capped)-j)
	}
}

// TestFilterMatchesSuiteSmall holds the exported Filter to the
// SuiteSmall semantics it extracts, over an arbitrary manifest.
func TestFilterMatchesSuiteSmall(t *testing.T) {
	ps := Suite()[:20]
	for _, tc := range []struct{ stride, maxRanks int }{
		{1, 0}, {2, 0}, {3, 128}, {0, 64}, {25, 0},
	} {
		got := Filter(ps, tc.stride, tc.maxRanks)
		stride := max(tc.stride, 1)
		var want []Params
		for i, p := range ps {
			if i%stride == 0 && (tc.maxRanks <= 0 || p.Ranks <= tc.maxRanks) {
				want = append(want, p)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Filter(ps, %d, %d) = %d traces, want %d", tc.stride, tc.maxRanks, len(got), len(want))
		}
	}
}

// TestSuitePolicyHelpers pins the exported policy functions to the
// manifest behavior Suite has always had; specs/paper-235.yaml leans
// on these being exactly the historical formulas.
func TestSuitePolicyHelpers(t *testing.T) {
	if m := SuiteMachine(0, 64); m != "cielito" {
		t.Errorf("SuiteMachine(0, 64) = %q, want cielito", m)
	}
	if m := SuiteMachine(0, 1728); m != "hopper" {
		t.Errorf("SuiteMachine(0, 1728) = %q, want hopper (cielito caps at 1024 cores)", m)
	}
	if m := SuiteMachine(3, 1728); m != "hopper" {
		t.Errorf("SuiteMachine(3, 1728) = %q, want hopper", m)
	}
	if m := SuiteMachine(2, 1728); m != "edison" {
		t.Errorf("SuiteMachine(2, 1728) = %q, want edison (rotation unaffected below the cap)", m)
	}
	for _, tc := range []struct{ ranks, want int }{
		{64, 0}, {511, 0}, {512, 4}, {1023, 4}, {1024, 3}, {1728, 3},
	} {
		if got := SuiteIters(tc.ranks); got != tc.want {
			t.Errorf("SuiteIters(%d) = %d, want %d", tc.ranks, got, tc.want)
		}
	}
	// The seed must depend on every coordinate, including the index.
	base := SuiteSeed("CG", "B", 64, "cielito", 0)
	for name, other := range map[string]int64{
		"app":     SuiteSeed("MG", "B", 64, "cielito", 0),
		"class":   SuiteSeed("CG", "A", 64, "cielito", 0),
		"ranks":   SuiteSeed("CG", "B", 128, "cielito", 0),
		"machine": SuiteSeed("CG", "B", 64, "hopper", 0),
		"index":   SuiteSeed("CG", "B", 64, "cielito", 1),
	} {
		if other == base {
			t.Errorf("SuiteSeed ignores the %s coordinate", name)
		}
	}
}
