package workload

import (
	"testing"

	"hpctradeoff/internal/trace"
)

// streamParams is a small cross-section of the suite: a stencil code,
// a comm-split app, and an alltoallv-heavy app, so the streamed path
// covers every event family.
func streamParams() []Params {
	return []Params{
		{App: "MiniFE", Class: "S", Ranks: 8, Machine: "hopper", Seed: 11},
		{App: "BigFFT", Class: "S", Ranks: 8, Machine: "hopper", Seed: 12},
		{App: "CrystalRouter", Class: "S", Ranks: 6, Machine: "edison", Seed: 13},
	}
}

func TestGenerateColumnsMatchesGenerate(t *testing.T) {
	for _, p := range streamParams() {
		t.Run(p.App, func(t *testing.T) {
			tr, err := Generate(p)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			cols, err := GenerateColumns(p)
			if err != nil {
				t.Fatalf("GenerateColumns: %v", err)
			}
			if cols.Meta != tr.Meta {
				t.Fatalf("meta differs: %+v vs %+v", cols.Meta, tr.Meta)
			}
			requireSourceEqual(t, tr, cols)
		})
	}
}

func TestStreamMatchesGenerate(t *testing.T) {
	for _, p := range streamParams() {
		for _, chunk := range []int{1, 3, p.Ranks} {
			tr, err := Generate(p)
			if err != nil {
				t.Fatalf("%s: Generate: %v", p.App, err)
			}
			seen := make([]bool, p.Ranks)
			err = p.Stream(chunk, func(rank int, cur trace.Cursor) error {
				if seen[rank] {
					t.Fatalf("%s chunk %d: rank %d streamed twice", p.App, chunk, rank)
				}
				seen[rank] = true
				if cur.Len() != len(tr.Ranks[rank]) {
					t.Fatalf("%s chunk %d rank %d: %d events streamed, want %d",
						p.App, chunk, rank, cur.Len(), len(tr.Ranks[rank]))
				}
				var e trace.Event
				for i := 0; cur.Next(&e); i++ {
					if !sameEvent(&e, &tr.Ranks[rank][i]) {
						t.Fatalf("%s chunk %d rank %d event %d: streamed %+v, generated %+v",
							p.App, chunk, rank, i, e, tr.Ranks[rank][i])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%s: Stream: %v", p.App, err)
			}
			for r, ok := range seen {
				if !ok {
					t.Fatalf("%s chunk %d: rank %d never streamed", p.App, chunk, r)
				}
			}
		}
	}
}

func requireSourceEqual(t *testing.T, want *trace.Trace, got trace.Source) {
	t.Helper()
	var e trace.Event
	for r := range want.Ranks {
		if got.RankLen(r) != len(want.Ranks[r]) {
			t.Fatalf("rank %d: %d events, want %d", r, got.RankLen(r), len(want.Ranks[r]))
		}
		for i := range want.Ranks[r] {
			got.EventAt(r, i, &e)
			if !sameEvent(&e, &want.Ranks[r][i]) {
				t.Fatalf("rank %d event %d: %+v, want %+v", r, i, e, want.Ranks[r][i])
			}
		}
	}
}

func sameEvent(a, b *trace.Event) bool {
	if a.Op != b.Op || a.Entry != b.Entry || a.Exit != b.Exit ||
		a.Peer != b.Peer || a.Tag != b.Tag || a.Root != b.Root ||
		a.Req != b.Req || a.Comm != b.Comm || a.Bytes != b.Bytes ||
		len(a.Reqs) != len(b.Reqs) || len(a.SendBytes) != len(b.SendBytes) {
		return false
	}
	for i := range a.Reqs {
		if a.Reqs[i] != b.Reqs[i] {
			return false
		}
	}
	for i := range a.SendBytes {
		if a.SendBytes[i] != b.SendBytes[i] {
			return false
		}
	}
	return true
}
