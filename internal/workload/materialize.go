package workload

import (
	"fmt"
	"time"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/mpisim"
	"hpctradeoff/internal/simnet"
	"hpctradeoff/internal/trace"
)

// MaterializeSpec generates a custom-spec trace and stamps measured
// timestamps, like Materialize does for built-in applications.
func MaterializeSpec(s *Spec, p Params) (*trace.Trace, error) {
	tr, err := FromSpec(s, p)
	if err != nil {
		return nil, err
	}
	return stamp(tr, p, time.Time{}, 0)
}

// Materialize generates the program for p and stamps "measured"
// timestamps into it by executing it on p.Machine's detailed
// packet-flow contention simulator with the default system-noise
// model. The result plays the role of a DUMPI trace collected on the
// real machine: its times embed contention and noise that prediction
// replays do not reproduce.
func Materialize(p Params) (*trace.Trace, error) {
	return MaterializeBudget(p, time.Time{}, 0)
}

// MaterializeBudget is Materialize with a bound on the ground-truth
// execution: deadline is a wall-clock cutoff and maxEvents caps the
// DES events of the stamping replay (zero values mean unlimited). A
// blown budget fails with an error wrapping des.ErrBudgetExceeded, so
// a campaign can classify the trace as a runaway instead of hanging.
func MaterializeBudget(p Params, deadline time.Time, maxEvents uint64) (*trace.Trace, error) {
	tr, err := Generate(p)
	if err != nil {
		return nil, err
	}
	return stamp(tr, p, deadline, maxEvents)
}

// Limits bound a ground-truth materialization: a wall-clock deadline,
// a DES event cap, and a cancellation channel (closed = stop now via
// the engine's Stop path). Zero values mean unlimited.
type Limits struct {
	Deadline  time.Time
	MaxEvents uint64
	Cancel    <-chan struct{}
}

// MaterializeColumns is Materialize building and stamping the columnar
// representation directly: generation, ground-truth execution, and
// write-back all go through the Source access path, so no
// array-of-structs trace is ever built.
func MaterializeColumns(p Params) (*trace.Columns, error) {
	return MaterializeColumnsLimits(p, Limits{})
}

// MaterializeColumnsBudget is MaterializeColumns with the
// MaterializeBudget bounds.
func MaterializeColumnsBudget(p Params, deadline time.Time, maxEvents uint64) (*trace.Columns, error) {
	return MaterializeColumnsLimits(p, Limits{Deadline: deadline, MaxEvents: maxEvents})
}

// MaterializeColumnsLimits is MaterializeColumns under the full set of
// run bounds, including cancellation.
func MaterializeColumnsLimits(p Params, lim Limits) (*trace.Columns, error) {
	c, err := GenerateColumns(p)
	if err != nil {
		return nil, err
	}
	if err := stampSource(c, p, lim); err != nil {
		return nil, err
	}
	return c, nil
}

// stamp executes the program on its machine's detailed simulator with
// noise and writes the measured timestamps into the trace.
func stamp(tr *trace.Trace, p Params, deadline time.Time, maxEvents uint64) (*trace.Trace, error) {
	if err := stampSource(tr, p, Limits{Deadline: deadline, MaxEvents: maxEvents}); err != nil {
		return nil, err
	}
	return tr, nil
}

// stampSource is stamp over any trace representation; the ground-truth
// replay and its timestamp write-back run through the Source path, so
// array-of-structs and columnar builds stamp bit-identically.
//
// Params.Noise perturbs only this execution: a non-zero configuration
// jitters the machine's per-link bandwidths, slows heterogeneous
// nodes, and scales the OS-noise model, all seeded — the prediction
// replays still run on the nominal machine, so the variability ends up
// embedded in the "measured" times exactly as it would in a real
// collection. A zero Noise takes the identical code path and floats as
// before the field existed (TestZeroNoiseGroundTruthUnchanged).
func stampSource(src trace.Source, p Params, lim Limits) error {
	mach, err := machine.New(p.Machine, p.Ranks, p.RanksPerNode)
	if err != nil {
		return err
	}
	perturb := mpisim.DefaultNoise(p.Seed, p.Ranks)
	if !p.Noise.IsZero() {
		mach.ApplyVariability(machine.Variability{
			LinkJitter: p.Noise.LinkJitter,
			NodeHetero: p.Noise.NodeHetero,
			Seed:       noiseSeed(p),
		})
		perturb = mpisim.VariabilityNoise(noiseSeed(p), p.Ranks, p.Noise.OSNoise, mach.RankSpeeds())
	}
	meta := src.TraceMeta()
	if meta.RanksPerNode == 0 {
		// Record the machine's actual placement density so the RN/N
		// features reflect the collection configuration.
		meta.RanksPerNode = mach.RanksPerNode
	}
	_, err = mpisim.ReplaySource(src, simnet.PacketFlow, mach, simnet.Config{}, mpisim.Options{
		Record:    true,
		Perturb:   perturb,
		Deadline:  lim.Deadline,
		MaxEvents: lim.MaxEvents,
		Cancel:    lim.Cancel,
	})
	if err != nil {
		return fmt.Errorf("workload: ground-truth execution of %s: %w", meta.ID(), err)
	}
	return nil
}

// noiseSeed isolates the platform-variability draws: the trace seed
// keeps distinct traces on independent streams, and Noise.Seed lets a
// sweep resample one trace's platform at the same amplitudes.
func noiseSeed(p Params) int64 {
	return p.Seed ^ (p.Noise.Seed+1)*-0x61c8864680b583eb // golden-ratio odd constant
}
