package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"hpctradeoff/internal/trace"
)

// Spec describes a synthetic application as a JSON-serializable phase
// program, for studying communication patterns without writing a Go
// generator. A spec plays the role of the paper's "workload generation
// is a separate issue" hook: if you can describe a future workload's
// pattern, the trade-off analysis applies to it.
//
// Example:
//
//	{
//	  "name": "mykernel",
//	  "iters": 10,
//	  "imbalance": 0.05,
//	  "phases": [
//	    {"computeMs": 2.5},
//	    {"halo": {"neighbors": "faces", "bytes": 16384}},
//	    {"collective": {"op": "allreduce", "bytes": 8}}
//	  ]
//	}
type Spec struct {
	// Name labels the trace's App metadata.
	Name string `json:"name"`
	// Iters repeats the phase list (default 1).
	Iters int `json:"iters"`
	// Imbalance adds a persistent per-rank compute skew in [0, x].
	Imbalance float64 `json:"imbalance"`
	// UsesCommSplit / UsesThreadMultiple set the capability flags.
	UsesCommSplit      bool `json:"usesCommSplit"`
	UsesThreadMultiple bool `json:"usesThreadMultiple"`
	// Phases execute in order each iteration.
	Phases []Phase `json:"phases"`
}

// Phase is one step; exactly one field must be set.
type Phase struct {
	// ComputeMs is a computation interval (mean per rank,
	// milliseconds).
	ComputeMs float64 `json:"computeMs,omitempty"`
	// Halo is a nonblocking neighbor exchange.
	Halo *HaloPhase `json:"halo,omitempty"`
	// Collective is a single collective over MPI_COMM_WORLD.
	Collective *CollectivePhase `json:"collective,omitempty"`
	// Exchange is a random symmetric pairwise exchange.
	Exchange *ExchangePhase `json:"exchange,omitempty"`
}

// HaloPhase describes a stencil exchange.
type HaloPhase struct {
	// Neighbors selects the stencil: "faces" (6-point 3-D), "all"
	// (26-point 3-D), or "hypercube" (log₂ n partners).
	Neighbors string `json:"neighbors"`
	// Bytes is the per-neighbor payload.
	Bytes int64 `json:"bytes"`
}

// CollectivePhase describes one collective call.
type CollectivePhase struct {
	// Op is the lowercase collective name: "barrier", "bcast",
	// "reduce", "allreduce", "gather", "scatter", "allgather",
	// "alltoall", "reducescatter".
	Op string `json:"op"`
	// Bytes is the per-member payload.
	Bytes int64 `json:"bytes"`
	// Root is the world rank for rooted collectives.
	Root int32 `json:"root"`
}

// ExchangePhase describes irregular pairwise traffic.
type ExchangePhase struct {
	// Degree is the approximate number of partners per rank.
	Degree int `json:"degree"`
	// Bytes is the per-message payload.
	Bytes int64 `json:"bytes"`
}

// specCollectives maps spec op names to trace operations.
var specCollectives = map[string]trace.Op{
	"barrier": trace.OpBarrier, "bcast": trace.OpBcast,
	"reduce": trace.OpReduce, "allreduce": trace.OpAllreduce,
	"gather": trace.OpGather, "scatter": trace.OpScatter,
	"allgather": trace.OpAllgather, "alltoall": trace.OpAlltoall,
	"reducescatter": trace.OpReduceScatter,
}

// Validate checks the spec's structure.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec needs a name")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: spec %q has no phases", s.Name)
	}
	if s.Imbalance < 0 {
		return fmt.Errorf("workload: negative imbalance")
	}
	for i, ph := range s.Phases {
		set := 0
		if ph.ComputeMs != 0 {
			set++
			if ph.ComputeMs < 0 {
				return fmt.Errorf("workload: phase %d: negative compute", i)
			}
		}
		if ph.Halo != nil {
			set++
			switch ph.Halo.Neighbors {
			case "faces", "all", "hypercube":
			default:
				return fmt.Errorf("workload: phase %d: unknown stencil %q", i, ph.Halo.Neighbors)
			}
			if ph.Halo.Bytes < 0 {
				return fmt.Errorf("workload: phase %d: negative halo bytes", i)
			}
		}
		if ph.Collective != nil {
			set++
			if _, ok := specCollectives[ph.Collective.Op]; !ok {
				return fmt.Errorf("workload: phase %d: unknown collective %q", i, ph.Collective.Op)
			}
		}
		if ph.Exchange != nil {
			set++
			if ph.Exchange.Degree < 1 {
				return fmt.Errorf("workload: phase %d: exchange degree must be ≥ 1", i)
			}
		}
		if set != 1 {
			return fmt.Errorf("workload: phase %d must set exactly one of computeMs/halo/collective/exchange", i)
		}
	}
	return nil
}

// ReadSpec parses a JSON spec.
func ReadSpec(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// FromSpec generates the structural trace for a custom spec. The
// Params' App field is ignored (the spec's name is used); Class scales
// nothing — spec values are taken literally.
func FromSpec(s *Spec, p Params) (*trace.Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if p.Ranks < 2 {
		return nil, fmt.Errorf("workload: need ≥ 2 ranks")
	}
	iters := s.Iters
	if p.Iters > 0 {
		iters = p.Iters
	}
	if iters <= 0 {
		iters = 1
	}
	meta := trace.Meta{
		App:                s.Name,
		Class:              p.Class,
		Machine:            p.Machine,
		NumRanks:           p.Ranks,
		RanksPerNode:       p.RanksPerNode,
		Seed:               p.Seed,
		UsesCommSplit:      s.UsesCommSplit,
		UsesThreadMultiple: s.UsesThreadMultiple,
	}
	g := &gen{
		p:     p,
		b:     trace.NewBuilder(meta),
		rng:   newGenRNG(p, s.Name),
		n:     p.Ranks,
		iters: iters,
		scale: 1,
	}
	grid := newGrid3(g.n)
	var skew []float64
	if s.Imbalance > 0 {
		skew = g.skewProfile(s.Imbalance)
	}
	for it := 0; it < g.iters; it++ {
		for pi, ph := range s.Phases {
			switch {
			case ph.ComputeMs > 0:
				if skew != nil {
					g.computeSkewed(ms(ph.ComputeMs), skew)
				} else {
					g.computeAll(ms(ph.ComputeMs), 0.02)
				}
			case ph.Halo != nil:
				tag := int32(200 + pi)
				sz := ph.Halo.Bytes
				switch ph.Halo.Neighbors {
				case "faces":
					g.haloExchange(grid.faceNeighbors, tag, func(r, nbr int) int64 { return sz })
				case "all":
					g.haloExchange(grid.allNeighbors, tag, func(r, nbr int) int64 { return sz })
				case "hypercube":
					for d := 0; (1 << d) < g.n; d++ {
						mask := 1 << d
						g.haloExchange(func(r int) []int {
							if q := r ^ mask; q < g.n && q != r {
								return []int{q}
							}
							return nil
						}, tag+int32(d)<<8, func(r, nbr int) int64 { return sz })
					}
				}
			case ph.Collective != nil:
				g.collectiveAll(specCollectives[ph.Collective.Op], ph.Collective.Root, ph.Collective.Bytes)
			case ph.Exchange != nil:
				pairs := g.randomPairs(ph.Exchange.Degree)
				sz := ph.Exchange.Bytes
				g.pairExchange(pairs, int32(300+pi), func(a, b int) int64 { return sz })
			}
		}
	}
	return g.b.Build()
}

// newGenRNG mirrors Generate's seeding for custom specs.
func newGenRNG(p Params, name string) *rand.Rand {
	return rand.New(rand.NewSource(p.Seed ^ int64(p.Ranks)*0x9e37 ^ hashName(name)))
}
