package workload

import (
	"math/bits"

	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// NAS Parallel Benchmark generators. All NPB codes strong-scale: the
// problem is fixed per class, so per-rank compute shrinks with rank
// count while per-rank communication shrinks more slowly (halo) or not
// at all (transpose), pushing the communication fraction up with
// scale — which is exactly the behaviour the study's Table Ib spread
// relies on.

// strongCompute returns the per-rank per-iteration compute duration
// for a code whose class-B total work is base (summed over 64 ranks).
// NPB codes strong-scale: fixed problem, so per-rank work shrinks with
// rank count.
func (g *gen) strongCompute(base simtime.Time) simtime.Time {
	return base.Scale(g.scale * 64 / float64(g.n))
}

// weakCompute returns the per-rank per-iteration compute duration for a
// weak-scaled code: constant per-rank work, as the DOE mini-apps and
// production codes are run (bigger machines solve bigger problems).
func (g *gen) weakCompute(base simtime.Time) simtime.Time {
	return base.Scale(g.scale)
}

// weakFaceBytes returns the face-halo payload for a weak-scaled 3-D
// decomposition with cellsPerRank cells per rank (class B) and w words
// per cell — independent of rank count.
func (g *gen) weakFaceBytes(cellsPerRank int, w int64) int64 {
	per := float64(cellsPerRank) * g.scale
	b := int64(pow23(per) * 8 * float64(w))
	if b < 64 {
		b = 64
	}
	return b
}

// subgridFaceBytes returns the face-halo payload for a strong-scaled
// 3-D grid of baseCells³ cells (class B) split over n ranks, w words
// per cell.
func (g *gen) subgridFaceBytes(baseCells int, w int64) int64 {
	cells := float64(baseCells*baseCells*baseCells) * g.scale
	per := cells / float64(g.n)
	face := pow23(per)
	b := int64(face * 8 * float64(w))
	if b < 64 {
		b = 64
	}
	return b
}

// pow23 computes x^(2/3) without importing math for clarity elsewhere.
func pow23(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// x^(2/3) = exp(2/3 ln x); cheap Newton-free approximation via
	// repeated sqrt: x^(2/3) = (x^2)^(1/3); use math.Cbrt equivalent.
	return cbrt(x * x)
}

func cbrt(x float64) float64 {
	if x == 0 {
		return 0
	}
	y := x
	for i := 0; i < 40; i++ {
		y = (2*y + x/(y*y)) / 3
	}
	return y
}

// genCG models NPB CG: per iteration, log2(n) pairwise reduce
// exchanges along a hypercube-like pattern (the row/column sum
// exchanges of the 2-D decomposition) plus two scalar allreduces.
func genCG(g *gen) error {
	bytes := g.subgridFaceBytes(96, 1)
	for it := 0; it < g.iters; it++ {
		g.computeAll(g.strongCompute(ms(4.5)), 0.02)
		dims := bits.Len(uint(g.n)) - 1
		for d := 0; d < dims; d++ {
			mask := 1 << d
			g.haloExchange(func(r int) []int {
				p := r ^ mask
				if p < g.n && p != r {
					return []int{p}
				}
				return nil
			}, int32(10+d), func(r, nbr int) int64 { return bytes })
		}
		g.collectiveAll(trace.OpAllreduce, 0, 8)
		g.collectiveAll(trace.OpAllreduce, 0, 8)
	}
	return nil
}

// genMG models NPB MG: V-cycles over 4 grid levels; each level does a
// 6-face halo whose payload shrinks 4× per level, with one allreduce
// per cycle (the norm).
func genMG(g *gen) error {
	grid := newGrid3(g.n)
	base := g.subgridFaceBytes(128, 1)
	for it := 0; it < g.iters; it++ {
		for level := 0; level < 4; level++ {
			g.computeAll(g.strongCompute(ms(1.8)).Scale(1/float64(int(1)<<(2*level))), 0.02)
			sz := base >> (2 * level)
			if sz < 64 {
				sz = 64
			}
			g.haloExchange(grid.faceNeighbors, int32(20+level), func(r, nbr int) int64 { return sz })
		}
		g.collectiveAll(trace.OpAllreduce, 0, 8)
	}
	return nil
}

// genFT models NPB FT: each iteration transposes the pencil
// decomposition with one global all-to-all of the full volume, plus an
// occasional checksum allreduce. Strongly communication-bound at scale.
func genFT(g *gen) error {
	cells := 190.0 * 190 * 190 * g.scale
	perPair := int64(cells * 16 / float64(g.n) / float64(g.n))
	if perPair < 64 {
		perPair = 64
	}
	for it := 0; it < g.iters; it++ {
		g.computeAll(g.strongCompute(ms(32)), 0.02)
		g.collectiveAll(trace.OpAlltoall, 0, perPair)
		g.computeAll(g.strongCompute(ms(14)), 0.02)
		g.collectiveAll(trace.OpAllreduce, 0, 16)
	}
	return nil
}

// genIS models NPB IS: bucket sort — per iteration an allreduce on
// bucket counts, an alltoallv with uneven buckets (±40%), and a small
// local sort. Communication dominates.
func genIS(g *gen) error {
	cells := 2.0 * 1024 * 1024 * g.scale // keys, class B = 2^21-ish
	perPair := cells * 4 / float64(g.n) / float64(g.n)
	for it := 0; it < g.iters; it++ {
		g.computeAll(g.strongCompute(ms(2.5)), 0.05)
		g.collectiveAll(trace.OpAllreduce, 0, int64(4*g.n))
		for r := 0; r < g.n; r++ {
			sb := make([]int64, g.n)
			for d := 0; d < g.n; d++ {
				if d == r {
					continue
				}
				f := 0.6 + 0.8*g.rng.Float64()
				sb[d] = int64(perPair * f)
				if sb[d] < 32 {
					sb[d] = 32
				}
			}
			g.b.Alltoallv(r, trace.CommWorld, sb)
		}
		g.computeAll(g.strongCompute(ms(0.3)), 0.05)
	}
	return nil
}

// genLU models NPB LU: SSOR wavefront sweeps over a 2-D process grid —
// long chains of small blocking messages (latency-sensitive) followed
// by a norm allreduce.
func genLU(g *gen) error {
	grid := newGrid2(g.n)
	bytes := g.subgridFaceBytes(102, 1) / 8
	if bytes < 400 {
		bytes = 400
	}
	slice := g.strongCompute(ms(2.8)).Scale(0.25)
	for it := 0; it < g.iters; it++ {
		// Lower-triangular sweep: receive from west/north, compute,
		// send to east/south; then the mirrored upper sweep.
		for pass := 0; pass < 2; pass++ {
			dx, dy := 1, 1
			if pass == 1 {
				dx, dy = -1, -1
			}
			for r := 0; r < g.n; r++ {
				if w := grid.neighbor(r, -dx, 0); w >= 0 {
					g.b.Recv(r, int32(w), int32(40+pass), bytes, trace.CommWorld)
				}
				if nn := grid.neighbor(r, 0, -dy); nn >= 0 {
					g.b.Recv(r, int32(nn), int32(42+pass), bytes, trace.CommWorld)
				}
				g.compute(r, slice, 0.02)
				if e := grid.neighbor(r, dx, 0); e >= 0 {
					g.b.Send(r, int32(e), int32(40+pass), bytes, trace.CommWorld)
				}
				if s := grid.neighbor(r, 0, dy); s >= 0 {
					g.b.Send(r, int32(s), int32(42+pass), bytes, trace.CommWorld)
				}
			}
		}
		g.collectiveAll(trace.OpAllreduce, 0, 40)
	}
	return nil
}

// genBT models NPB BT: per iteration, three directional face-exchange
// phases on a 3-D grid with substantial compute between them.
func genBT(g *gen) error {
	grid := newGrid3(g.n)
	bytes := g.subgridFaceBytes(102, 3)
	dirs := [3][2][3]int{
		{{1, 0, 0}, {-1, 0, 0}},
		{{0, 1, 0}, {0, -1, 0}},
		{{0, 0, 1}, {0, 0, -1}},
	}
	for it := 0; it < g.iters; it++ {
		for d := 0; d < 3; d++ {
			g.computeAll(g.strongCompute(ms(4.2)), 0.02)
			dd := dirs[d]
			g.haloExchange(func(r int) []int {
				var out []int
				seen := map[int]bool{}
				for _, v := range dd {
					if nr := grid.neighbor(r, v[0], v[1], v[2]); nr >= 0 && !seen[nr] {
						seen[nr] = true
						out = append(out, nr)
					}
				}
				return out
			}, int32(50+d), func(r, nbr int) int64 { return bytes })
		}
		g.collectiveAll(trace.OpAllreduce, 0, 40)
	}
	return nil
}

// genEP models NPB EP: pure computation with a final three-way scalar
// reduction. The canonical computation-bound case.
func genEP(g *gen) error {
	g.computeAll(g.strongCompute(ms(420)), 0.01)
	for i := 0; i < 3; i++ {
		g.collectiveAll(trace.OpAllreduce, 0, 16)
	}
	return nil
}

// genDT models NPB DT (data traffic): a source→middle→sink reduction
// graph shipping sizeable blobs with almost no compute.
func genDT(g *gen) error {
	n := g.n
	blob := int64(12<<10) * int64(g.scale*10) / 10
	if blob < 4096 {
		blob = 4096
	}
	third := max(n/3, 1)
	// Sources 0..third-1 send to middles third..2*third-1 (wrapped),
	// middles forward to sinks.
	for s := 0; s < third; s++ {
		m := third + s%third
		g.compute(s, us(500), 0.1)
		g.b.Send(s, int32(m), 60, blob, trace.CommWorld)
	}
	for s := 0; s < third; s++ {
		m := third + s%third
		g.b.Recv(m, int32(s), 60, blob, trace.CommWorld)
		g.compute(m, us(300), 0.1)
	}
	if sinks := n - 2*third; sinks > 0 {
		for m := third; m < 2*third; m++ {
			k := 2*third + (m-third)%sinks
			g.b.Send(m, int32(k), 61, blob, trace.CommWorld)
			g.b.Recv(k, int32(m), 61, blob, trace.CommWorld)
			g.compute(k, us(200), 0.1)
		}
	}
	return nil
}
