package workload

import (
	"hpctradeoff/internal/trace"
)

// Process-grid helpers shared by the stencil-style generators.

// factor2 splits n into the most square a×b with a·b = n, a ≤ b.
func factor2(n int) (int, int) {
	best := 1
	for a := 1; a*a <= n; a++ {
		if n%a == 0 {
			best = a
		}
	}
	return best, n / best
}

// factor3 splits n into the most cubic a×b×c with a·b·c = n.
func factor3(n int) (int, int, int) {
	bestA, bestB, bestC := 1, 1, n
	bestScore := n * n
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		b, c := factor2(n / a)
		if score := (c - a) * (c - a); score < bestScore {
			bestScore = score
			bestA, bestB, bestC = a, b, c
		}
	}
	return bestA, bestB, bestC
}

// grid3 is a 3-D process decomposition over ranks 0..n-1.
type grid3 struct {
	nx, ny, nz int
}

func newGrid3(n int) grid3 {
	a, b, c := factor3(n)
	return grid3{a, b, c}
}

func (g grid3) coords(r int) (x, y, z int) {
	x = r % g.nx
	y = (r / g.nx) % g.ny
	z = r / (g.nx * g.ny)
	return
}

func (g grid3) rank(x, y, z int) int {
	return (z*g.ny+y)*g.nx + x
}

// neighbor returns the rank offset by (dx,dy,dz) with periodic
// wrap-around, or -1 if it would be the rank itself.
func (g grid3) neighbor(r, dx, dy, dz int) int {
	x, y, z := g.coords(r)
	nx := (x + dx + g.nx) % g.nx
	ny := (y + dy + g.ny) % g.ny
	nz := (z + dz + g.nz) % g.nz
	nr := g.rank(nx, ny, nz)
	if nr == r {
		return -1
	}
	return nr
}

// faceNeighbors returns the up-to-6 distinct face neighbors of r.
func (g grid3) faceNeighbors(r int) []int {
	dirs := [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
	var out []int
	seen := map[int]bool{}
	for _, d := range dirs {
		if nr := g.neighbor(r, d[0], d[1], d[2]); nr >= 0 && !seen[nr] {
			seen[nr] = true
			out = append(out, nr)
		}
	}
	return out
}

// allNeighbors returns the up-to-26 distinct face/edge/corner
// neighbors of r (the LULESH ghost-exchange stencil).
func (g grid3) allNeighbors(r int) []int {
	var out []int
	seen := map[int]bool{}
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				if nr := g.neighbor(r, dx, dy, dz); nr >= 0 && !seen[nr] {
					seen[nr] = true
					out = append(out, nr)
				}
			}
		}
	}
	return out
}

// haloExchange emits a nonblocking halo exchange: every rank posts
// irecvs and isends to each neighbor, then waits on all. sizeOf gives
// the payload toward each neighbor (both directions use the sender's
// size; for symmetric stencils sizes match).
func (g *gen) haloExchange(neighbors func(r int) []int, tag int32, sizeOf func(r, nbr int) int64) {
	type pend struct{ reqs []int32 }
	pends := make([]pend, g.n)
	for r := 0; r < g.n; r++ {
		for _, nbr := range neighbors(r) {
			// The message nbr→r carries nbr's size toward r.
			req := g.b.Irecv(r, int32(nbr), tag, sizeOf(nbr, r), trace.CommWorld)
			pends[r].reqs = append(pends[r].reqs, req)
		}
	}
	for r := 0; r < g.n; r++ {
		for _, nbr := range neighbors(r) {
			req := g.b.Isend(r, int32(nbr), tag, sizeOf(r, nbr), trace.CommWorld)
			pends[r].reqs = append(pends[r].reqs, req)
		}
	}
	for r := 0; r < g.n; r++ {
		g.b.Waitall(r, pends[r].reqs...)
	}
}

// grid2 is a 2-D process decomposition.
type grid2 struct {
	nx, ny int
}

func newGrid2(n int) grid2 {
	a, b := factor2(n)
	return grid2{a, b}
}

func (g grid2) coords(r int) (x, y int) { return r % g.nx, r / g.nx }
func (g grid2) rank(x, y int) int       { return y*g.nx + x }

// neighbor returns the non-periodic neighbor or -1 at the boundary.
func (g grid2) neighbor(r, dx, dy int) int {
	x, y := g.coords(r)
	nx, ny := x+dx, y+dy
	if nx < 0 || nx >= g.nx || ny < 0 || ny >= g.ny {
		return -1
	}
	nr := g.rank(nx, ny)
	if nr == r {
		return -1
	}
	return nr
}

// rowComms and colComms split the world into per-row / per-column
// sub-communicators (the BigFFT pencil decomposition).
func (g *gen) rowComms(gr grid2) []trace.CommID {
	out := make([]trace.CommID, gr.ny)
	for y := 0; y < gr.ny; y++ {
		members := make([]int32, gr.nx)
		for x := 0; x < gr.nx; x++ {
			members[x] = int32(gr.rank(x, y))
		}
		out[y] = g.b.AddComm(members)
	}
	return out
}

func (g *gen) colComms(gr grid2) []trace.CommID {
	out := make([]trace.CommID, gr.nx)
	for x := 0; x < gr.nx; x++ {
		members := make([]int32, gr.ny)
		for y := 0; y < gr.ny; y++ {
			members[y] = int32(gr.rank(x, y))
		}
		out[x] = g.b.AddComm(members)
	}
	return out
}
