// Package workload synthesizes MPI communication traces for the
// application suite of the study: eight NAS Parallel Benchmarks (CG,
// MG, FT, IS, LU, BT, EP, DT), the DOE DesignForward extracted kernels
// (Big FFT, Crystal Router), mini-apps (AMG, MiniFE, LULESH, CNS, CMC,
// Nekbone), and full applications (MultiGrid, FillBoundary).
//
// The paper's traces are proprietary DUMPI collections; these
// generators substitute synthetic programs that reproduce each code's
// published communication structure — stencil halos, transposes,
// all-to-all(v) exchanges, wavefront pipelines, irregular routing — and
// compute/communication balance. A generated trace is a *program*
// (compute durations plus communication structure); the ground-truth
// executor stamps "measured" timestamps by running it through the
// detailed contention simulator with system noise (see Materialize).
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// SchemaVersion identifies the generator + ground-truth-stamping
// semantics: two builds with the same SchemaVersion produce
// bit-identical stamped traces for the same Params. Bump it whenever a
// generator, the noise model, or the stamping executor changes observed
// output — content-addressed caches fold it into their keys, so a bump
// invalidates every cached trace instead of silently replaying stale
// ground truth.
//
// Version 2: Params grew the Noise sub-struct (platform variability as
// a swept campaign axis). A zero Noise stamps bit-identically to
// version 1, but the cache key space must not collide with entries
// keyed before the field existed.
const SchemaVersion = 2

// Noise selects the platform-variability model applied while stamping
// ground truth — the swept axis of the variability study. The zero
// value reproduces the historical stamping exactly (the paper's fixed
// collection conditions); non-zero amplitudes perturb only the
// ground-truth execution, never the prediction replays, so they widen
// the gap every scheme is measured against.
type Noise struct {
	// LinkJitter is the sigma of the lognormal per-link bandwidth
	// multiplier drawn once per link of the ground-truth machine
	// (0 = every link at nominal bandwidth).
	LinkJitter float64 `json:",omitempty"`
	// NodeHetero is the amplitude of heterogeneous node speeds: each
	// node's compute runs slower by a factor drawn uniformly from
	// [1, 1+NodeHetero] (0 = homogeneous nodes).
	NodeHetero float64 `json:",omitempty"`
	// OSNoise scales the OS-noise model's spike probability, compute
	// jitter sigma, and per-call overhead jitter by (1 + OSNoise)
	// (0 = the paper-default noise model unchanged).
	OSNoise float64 `json:",omitempty"`
	// Seed offsets the noise draws from the trace seed, so a sweep can
	// resample the same amplitudes with independent streams.
	Seed int64 `json:",omitempty"`
}

// IsZero reports whether n is the zero (historical, noise-default)
// configuration.
func (n Noise) IsZero() bool { return n == Noise{} }

// Params selects one generated trace.
type Params struct {
	// App is one of Apps().
	App string
	// Class scales the problem (NPB-style): "S", "A", "B", or "C".
	Class string
	// Ranks is the number of MPI ranks.
	Ranks int
	// Machine names the system the trace is (nominally) collected on;
	// it is recorded in the metadata and selects the ground-truth
	// machine model.
	Machine string
	// RanksPerNode is the placement density (0 = machine default).
	RanksPerNode int
	// Seed drives all randomness in the generator.
	Seed int64
	// Iters overrides the app's default iteration count when > 0.
	Iters int
	// Noise is the platform-variability configuration the ground-truth
	// stamper applies; the zero value is the historical fixed platform.
	Noise Noise `json:",omitzero"`
}

// generator builds the program for one application.
type generator struct {
	fn func(g *gen) error
	// defaultIters is the app's default outer iteration count.
	defaultIters int
	// usesCommSplit marks apps that create sub-communicators with
	// complex grouping (SST/Macro 3.0's flow model cannot replay them).
	usesCommSplit bool
	// usesThreadMultiple marks apps traced with MPI_THREAD_MULTIPLE
	// (neither 3.0 model can replay them).
	usesThreadMultiple bool
}

var registry = map[string]generator{
	// NAS Parallel Benchmarks.
	"CG": {fn: genCG, defaultIters: 15},
	"MG": {fn: genMG, defaultIters: 4},
	"FT": {fn: genFT, defaultIters: 6},
	"IS": {fn: genIS, defaultIters: 10},
	"LU": {fn: genLU, defaultIters: 12},
	"BT": {fn: genBT, defaultIters: 8},
	"EP": {fn: genEP, defaultIters: 1},
	"DT": {fn: genDT, defaultIters: 1},
	// DOE DesignForward kernels and applications.
	"BigFFT":        {fn: genBigFFT, defaultIters: 4, usesCommSplit: true},
	"CrystalRouter": {fn: genCR, defaultIters: 6},
	"AMG":           {fn: genAMG, defaultIters: 5},
	"MiniFE":        {fn: genMiniFE, defaultIters: 12},
	"LULESH":        {fn: genLULESH, defaultIters: 10},
	"CNS":           {fn: genCNS, defaultIters: 8},
	"CMC":           {fn: genCMC, defaultIters: 8},
	"Nekbone":       {fn: genNekbone, defaultIters: 12},
	"MultiGrid":     {fn: genMultiGrid, defaultIters: 4, usesCommSplit: true},
	"FillBoundary":  {fn: genFB, defaultIters: 6, usesThreadMultiple: true},
}

// Apps lists the application names in a stable order.
func Apps() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// classScale maps a problem class to a work multiplier (B = 1).
func classScale(class string) (float64, error) {
	switch class {
	case "S":
		return 0.05, nil
	case "A":
		return 0.3, nil
	case "B":
		return 1, nil
	case "C":
		return 3, nil
	}
	return 0, fmt.Errorf("workload: unknown class %q", class)
}

// gen is the per-generation context handed to app builders.
type gen struct {
	p     Params
	b     *trace.Builder
	rng   *rand.Rand
	n     int
	iters int
	// scale is the class work multiplier.
	scale float64
}

// Generate builds the structural trace (program) for p. Timestamps
// carry only the intended compute durations; see Materialize for
// stamping measured times.
func Generate(p Params) (*trace.Trace, error) {
	b, g, err := generateWindow(p, 0, -1)
	if err != nil {
		return nil, err
	}
	tr, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", p.App, err)
	}
	if g.usesCommSplit && !tr.Meta.UsesCommSplit {
		// The generator is expected to have split communicators; keep
		// the capability flag truthful either way.
		tr.Meta.UsesCommSplit = true
	}
	return tr, nil
}

// GenerateColumns is Generate building the columnar representation
// directly: no []Event rows are ever materialized.
func GenerateColumns(p Params) (*trace.Columns, error) {
	b, g, err := generateWindow(p, 0, -1)
	if err != nil {
		return nil, err
	}
	c, err := b.BuildColumns()
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", p.App, err)
	}
	if g.usesCommSplit && !c.Meta.UsesCommSplit {
		c.Meta.UsesCommSplit = true
	}
	return c, nil
}

// Stream regenerates p's trace in windows of chunkRanks ranks and
// hands fn one zero-copy cursor per rank, in rank order. Only one
// window's events are resident at a time, so a wide trace streams in
// a fraction of its full footprint; the trade is regeneration (the
// generator reruns once per window with identical RNG consumption, so
// the streamed events are bit-identical to a Generate build —
// TestStreamMatchesGenerate holds the two paths together). Windowed
// builds cannot run cross-rank validation; stream consumers that need
// a validated trace should validate a full build once elsewhere.
func (p Params) Stream(chunkRanks int, fn func(rank int, cur trace.Cursor) error) error {
	if chunkRanks <= 0 {
		chunkRanks = p.Ranks
	}
	for lo := 0; lo < p.Ranks; lo += chunkRanks {
		hi := min(lo+chunkRanks, p.Ranks)
		b, _, err := generateWindow(p, lo, hi)
		if err != nil {
			return err
		}
		chunk := b.BuildChunk()
		for r := lo; r < hi; r++ {
			if err := fn(r, chunk.Cursor(r)); err != nil {
				return err
			}
		}
	}
	return nil
}

// generateWindow runs p's generator storing only ranks in [lo, hi)
// (hi < 0 means all ranks).
func generateWindow(p Params, lo, hi int) (*trace.Builder, generator, error) {
	g, ok := registry[p.App]
	if !ok {
		return nil, g, fmt.Errorf("workload: unknown app %q (have %v)", p.App, Apps())
	}
	if p.Ranks < 2 {
		return nil, g, fmt.Errorf("workload: need ≥ 2 ranks, got %d", p.Ranks)
	}
	scale, err := classScale(p.Class)
	if err != nil {
		return nil, g, err
	}
	iters := p.Iters
	if iters <= 0 {
		iters = g.defaultIters
	}
	meta := trace.Meta{
		App:                p.App,
		Class:              p.Class,
		Machine:            p.Machine,
		NumRanks:           p.Ranks,
		RanksPerNode:       p.RanksPerNode,
		Seed:               p.Seed,
		UsesThreadMultiple: g.usesThreadMultiple,
	}
	if hi < 0 {
		hi = p.Ranks
	}
	ctx := &gen{
		p:     p,
		b:     trace.NewBuilderWindow(meta, lo, hi),
		rng:   rand.New(rand.NewSource(p.Seed ^ int64(p.Ranks)*0x9e37 ^ hashName(p.App))),
		n:     p.Ranks,
		iters: iters,
		scale: scale,
	}
	if err := g.fn(ctx); err != nil {
		return nil, g, fmt.Errorf("workload: %s: %w", p.App, err)
	}
	return ctx.b, g, nil
}

func hashName(s string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= int64(s[i])
		h *= 1099511628211
	}
	return h
}

// compute emits a compute interval of mean duration d on rank r with
// the given relative jitter (uniform ±jitter) and per-rank skew factor.
func (g *gen) compute(r int, d simtime.Time, jitter float64) {
	if d <= 0 {
		return
	}
	f := 1.0
	if jitter > 0 {
		f += jitter * (2*g.rng.Float64() - 1)
	}
	g.b.Compute(r, d.Scale(f))
}

// computeAll emits the same mean compute on every rank.
func (g *gen) computeAll(d simtime.Time, jitter float64) {
	for r := 0; r < g.n; r++ {
		g.compute(r, d, jitter)
	}
}

// computeSkewed emits per-rank compute with a fixed skew profile drawn
// once per trace: skew[r] ∈ [1, 1+imbalance]. It is how generators
// model application load imbalance (which persists across iterations,
// unlike OS noise).
func (g *gen) computeSkewed(d simtime.Time, skew []float64) {
	for r := 0; r < g.n; r++ {
		g.b.Compute(r, d.Scale(skew[r]))
	}
}

// skewProfile draws a per-rank multiplier profile with the given
// imbalance amplitude.
func (g *gen) skewProfile(imbalance float64) []float64 {
	s := make([]float64, g.n)
	for r := range s {
		s[r] = 1 + imbalance*g.rng.Float64()
	}
	return s
}

// collectiveAll emits a collective on every rank of the world.
func (g *gen) collectiveAll(op trace.Op, root int32, bytes int64) {
	for r := 0; r < g.n; r++ {
		g.b.Collective(r, op, trace.CommWorld, root, bytes)
	}
}

// ms and us are convenience duration constructors.
func ms(f float64) simtime.Time { return simtime.FromSeconds(f / 1e3) }
func us(f float64) simtime.Time { return simtime.FromSeconds(f / 1e6) }
