package workload

import (
	"hpctradeoff/internal/trace"
)

// DOE DesignForward / co-design center application generators.

// pairExchange emits a symmetric nonblocking exchange over the given
// unordered pairs: both endpoints irecv+isend, then waitall. sizeOf
// must be symmetric in its arguments.
func (g *gen) pairExchange(pairs [][2]int, tag int32, sizeOf func(a, b int) int64) {
	reqs := make([][]int32, g.n)
	for _, p := range pairs {
		a, b := p[0], p[1]
		sz := sizeOf(a, b)
		reqs[a] = append(reqs[a], g.b.Irecv(a, int32(b), tag, sz, trace.CommWorld))
		reqs[b] = append(reqs[b], g.b.Irecv(b, int32(a), tag, sz, trace.CommWorld))
	}
	for _, p := range pairs {
		a, b := p[0], p[1]
		sz := sizeOf(a, b)
		reqs[a] = append(reqs[a], g.b.Isend(a, int32(b), tag, sz, trace.CommWorld))
		reqs[b] = append(reqs[b], g.b.Isend(b, int32(a), tag, sz, trace.CommWorld))
	}
	for r := 0; r < g.n; r++ {
		if len(reqs[r]) > 0 {
			g.b.Waitall(r, reqs[r]...)
		}
	}
}

// randomPairs draws approximately degree partners per rank,
// deduplicated, seeded by the generation RNG.
func (g *gen) randomPairs(degree int) [][2]int {
	seen := map[[2]int]bool{}
	var out [][2]int
	for r := 0; r < g.n; r++ {
		for k := 0; k < degree; k++ {
			p := g.rng.Intn(g.n)
			if p == r {
				continue
			}
			a, b := min(r, p), max(r, p)
			key := [2]int{a, b}
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
	}
	return out
}

// genBigFFT models the DesignForward Big FFT kernel: a 2-D pencil
// decomposition performing row-communicator and column-communicator
// all-to-alls each step (the two transposes of a 3-D FFT). The
// sub-communicator grouping is what SST/Macro 3.0's flow model cannot
// replay.
func genBigFFT(g *gen) error {
	grid := newGrid2(g.n)
	rows := g.rowComms(grid)
	cols := g.colComms(grid)
	cells := 60.0 * 60 * 60 * g.scale
	rowPair := int64(cells * 16 / float64(g.n) / float64(grid.nx))
	colPair := int64(cells * 16 / float64(g.n) / float64(grid.ny))
	for it := 0; it < g.iters; it++ {
		g.computeAll(g.strongCompute(ms(2.4)), 0.02)
		for r := 0; r < g.n; r++ {
			_, y := grid.coords(r)
			g.b.Collective(r, trace.OpAlltoall, rows[y], 0, max(rowPair, 64))
		}
		g.computeAll(g.strongCompute(ms(1.2)), 0.02)
		for r := 0; r < g.n; r++ {
			x, _ := grid.coords(r)
			g.b.Collective(r, trace.OpAlltoall, cols[x], 0, max(colPair, 64))
		}
	}
	return nil
}

// genCR models the Crystal Router kernel: staged irregular routing —
// each stage exchanges variable-sized bundles with hypercube partners
// plus a handful of random long-range partners. Intensive and
// irregular; the paper singles it out (with FB) as benefiting from
// detailed simulation.
func genCR(g *gen) error {
	scaleDown := cbrt(64 / float64(g.n))
	base := int64(float64(26<<10) * g.scale * scaleDown * scaleDown * scaleDown * scaleDown) // (64/n)^{4/3}
	for it := 0; it < g.iters; it++ {
		g.computeAll(g.strongCompute(ms(1.6)), 0.05)
		// Hypercube stages.
		for d := 0; d < 3; d++ {
			mask := 1 << (uint(it+d) % uint(maxBit(g.n)))
			var pairs [][2]int
			for r := 0; r < g.n; r++ {
				p := r ^ mask
				if p < g.n && r < p {
					pairs = append(pairs, [2]int{r, p})
				}
			}
			g.pairExchange(pairs, int32(70+d), func(a, b int) int64 {
				f := 0.3 + 1.4*hashUnit(int64(a*g.n+b), g.p.Seed, int64(it*4+d))
				return int64(float64(base) * f)
			})
		}
		// Random long-range scatter.
		pairs := g.randomPairs(2)
		g.pairExchange(pairs, 79, func(a, b int) int64 {
			f := 0.1 + 0.9*hashUnit(int64(a*g.n+b), g.p.Seed, int64(it))
			return int64(float64(base) * f / 2)
		})
	}
	return nil
}

func maxBit(n int) int {
	b := 0
	for 1<<(b+1) < n {
		b++
	}
	return b + 1
}

// hashUnit maps (a, seed, salt) to a deterministic uniform in [0,1).
func hashUnit(a, seed, salt int64) float64 {
	x := uint64(a)*0x9e3779b97f4a7c15 ^ uint64(seed)*0xbf58476d1ce4e5b9 ^ uint64(salt)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return float64(x>>11) / float64(1<<53)
}

// genAMG models the AMG mini-app: multilevel halo exchanges with
// shrinking payloads plus frequent small allreduces (coarse-level
// solves are latency-bound).
func genAMG(g *gen) error {
	grid := newGrid3(g.n)
	base := g.weakFaceBytes(6000, 1)
	for it := 0; it < g.iters; it++ {
		for level := 0; level < 5; level++ {
			g.computeAll(g.weakCompute(ms(1.2)).Scale(1/float64(int(1)<<level)), 0.04)
			sz := base >> (2 * level)
			if sz < 64 {
				sz = 64
			}
			g.haloExchange(grid.faceNeighbors, int32(80+level), func(r, nbr int) int64 { return sz })
			g.collectiveAll(trace.OpAllreduce, 0, 8)
		}
		g.collectiveAll(trace.OpAllreduce, 0, 8)
	}
	return nil
}

// genMiniFE models MiniFE: a conjugate-gradient solve on an FE mesh —
// one 6-face halo plus three scalar allreduces (dot products) per
// iteration, with assembly compute up front.
func genMiniFE(g *gen) error {
	grid := newGrid3(g.n)
	bytes := g.weakFaceBytes(46000, 1)
	g.computeAll(g.weakCompute(ms(14)), 0.03) // assembly
	for it := 0; it < g.iters; it++ {
		g.computeAll(g.weakCompute(ms(2.1)), 0.03)
		g.haloExchange(grid.faceNeighbors, 90, func(r, nbr int) int64 { return bytes })
		for k := 0; k < 3; k++ {
			g.collectiveAll(trace.OpAllreduce, 0, 8)
		}
	}
	return nil
}

// genLULESH models LULESH: a 26-neighbor ghost exchange (faces carry
// full planes, edges lines, corners points), one timestep allreduce,
// and heavy compute with mild built-in imbalance.
func genLULESH(g *gen) error {
	grid := newGrid3(g.n)
	face := g.weakFaceBytes(27000, 2)
	skew := g.skewProfile(0.08)
	for it := 0; it < g.iters; it++ {
		g.computeSkewed(g.weakCompute(ms(7.5)), skew)
		g.haloExchange(grid.allNeighbors, 100, func(r, nbr int) int64 {
			// Classify the neighbor as face, edge, or corner by how
			// many coordinates differ.
			ax, ay, az := grid.coords(r)
			bx, by, bz := grid.coords(nbr)
			diff := 0
			if ax != bx {
				diff++
			}
			if ay != by {
				diff++
			}
			if az != bz {
				diff++
			}
			switch diff {
			case 1:
				return face
			case 2:
				return max(face/32, 256)
			default:
				return 128
			}
		})
		g.collectiveAll(trace.OpAllreduce, 0, 8)
	}
	return nil
}

// genCNS models the CNS compressible Navier-Stokes mini-app: wide
// ghost zones (4 layers, 5 components) make the 6-face halo
// bandwidth-hungry.
func genCNS(g *gen) error {
	grid := newGrid3(g.n)
	bytes := g.weakFaceBytes(33000, 3)
	for it := 0; it < g.iters; it++ {
		g.computeAll(g.weakCompute(ms(5.4)), 0.03)
		g.haloExchange(grid.faceNeighbors, 110, func(r, nbr int) int64 { return bytes })
		g.computeAll(g.weakCompute(ms(2.2)), 0.03)
		g.collectiveAll(trace.OpReduce, 0, 40)
	}
	return nil
}

// genCMC models the CMC Monte Carlo mini-app: long, strongly
// imbalanced compute phases with light particle migration to a few
// random partners and a tally allreduce. Load-imbalance-bound.
func genCMC(g *gen) error {
	skew := g.skewProfile(0.30)
	for it := 0; it < g.iters; it++ {
		g.computeSkewed(g.weakCompute(ms(16)), skew)
		pairs := g.randomPairs(2)
		g.pairExchange(pairs, int32(120+it%4), func(a, b int) int64 {
			return 2048 + int64(38*1024*hashUnit(int64(a*g.n+b), g.p.Seed, int64(it)))
		})
		g.collectiveAll(trace.OpAllreduce, 0, 64)
	}
	return nil
}

// genNekbone models Nekbone: a spectral-element CG loop — small
// nearest-neighbor gather/scatter halos plus two scalar allreduces per
// iteration. Latency-leaning.
func genNekbone(g *gen) error {
	grid := newGrid3(g.n)
	bytes := max(g.weakFaceBytes(4100, 1)/2, 512)
	for it := 0; it < g.iters; it++ {
		g.computeAll(g.weakCompute(ms(1.7)), 0.02)
		g.haloExchange(grid.faceNeighbors, 130, func(r, nbr int) int64 { return bytes })
		g.collectiveAll(trace.OpAllreduce, 0, 8)
		g.collectiveAll(trace.OpAllreduce, 0, 8)
	}
	return nil
}

// genMultiGrid models the full MultiGrid application: like NPB MG but
// deeper cycles whose coarse levels run on shrinking sub-communicators
// (ranks idle below their level), exercising communicator grouping.
func genMultiGrid(g *gen) error {
	grid := newGrid3(g.n)
	base := g.weakFaceBytes(64000, 1)
	// Build level communicators: level L contains ranks 0..n/2^L-1.
	var comms []trace.CommID
	active := g.n
	for level := 0; level < 4 && active >= 2; level++ {
		members := make([]int32, active)
		for i := range members {
			members[i] = int32(i)
		}
		comms = append(comms, g.b.AddComm(members))
		active /= 2
	}
	for it := 0; it < g.iters; it++ {
		// Fine level: full halo.
		g.computeAll(g.weakCompute(ms(3.6)), 0.03)
		g.haloExchange(grid.faceNeighbors, 140, func(r, nbr int) int64 { return base })
		// Coarse levels: allreduces on shrinking communicators.
		active := g.n
		for level, comm := range comms {
			sz := base >> (2 * (level + 1))
			if sz < 64 {
				sz = 64
			}
			for r := 0; r < active; r++ {
				g.b.Collective(r, trace.OpAllreduce, comm, 0, sz)
			}
			for r := 0; r < active; r++ {
				g.compute(r, g.weakCompute(ms(0.5)).Scale(1/float64(level+1)), 0.03)
			}
			active /= 2
		}
		g.collectiveAll(trace.OpAllreduce, 0, 8)
	}
	return nil
}

// genFB models FillBoundary (BoxLib/AMReX AMR ghost-cell fill): bursty
// irregular many-to-many exchanges whose partner sets and sizes come
// from the (synthetic) patch layout. Traced with MPI_THREAD_MULTIPLE,
// which the SST/Macro 3.0 models cannot replay.
func genFB(g *gen) error {
	base := int64(float64(6<<10) * g.scale) // weak-scaled patch volume
	for it := 0; it < g.iters; it++ {
		g.computeAll(g.weakCompute(ms(0.9)), 0.06)
		for phase := 0; phase < 2; phase++ {
			// Partner set: 6 structured neighbors + random AMR overlaps.
			grid := newGrid3(g.n)
			var pairs [][2]int
			seen := map[[2]int]bool{}
			add := func(a, b int) {
				if a == b {
					return
				}
				if a > b {
					a, b = b, a
				}
				k := [2]int{a, b}
				if !seen[k] {
					seen[k] = true
					pairs = append(pairs, k)
				}
			}
			for r := 0; r < g.n; r++ {
				for _, nbr := range grid.faceNeighbors(r) {
					add(r, nbr)
				}
			}
			for _, p := range g.randomPairs(2) {
				add(p[0], p[1])
			}
			g.pairExchange(pairs, int32(150+phase), func(a, b int) int64 {
				f := 0.05 + 2.4*hashUnit(int64(a*g.n+b), g.p.Seed, int64(it*2+phase))
				return max(int64(float64(base)*f), 128)
			})
		}
	}
	return nil
}
