package workload

import (
	"testing"

	"hpctradeoff/internal/trace"
)

// Structural tests: each generator must reproduce its code's published
// communication pattern, not merely produce a valid trace.

func genTrace(t *testing.T, app string, ranks int) *trace.Trace {
	t.Helper()
	tr, err := Generate(Params{App: app, Class: "A", Ranks: ranks, Machine: "edison", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// opCount tallies per-op event counts over the whole trace.
func opCount(tr *trace.Trace) map[trace.Op]int {
	out := map[trace.Op]int{}
	for _, evs := range tr.Ranks {
		for i := range evs {
			out[evs[i].Op]++
		}
	}
	return out
}

// p2pPeers returns the distinct send destinations of a rank.
func p2pPeers(tr *trace.Trace, r int) map[int32]bool {
	out := map[int32]bool{}
	for _, e := range tr.Ranks[r] {
		if e.Op == trace.OpSend || e.Op == trace.OpIsend {
			out[e.Peer] = true
		}
	}
	return out
}

func TestCGHypercubePartners(t *testing.T) {
	tr := genTrace(t, "CG", 64)
	peers := p2pPeers(tr, 0)
	// Rank 0's partners must be exactly the hypercube neighbors
	// 1, 2, 4, 8, 16, 32.
	want := map[int32]bool{1: true, 2: true, 4: true, 8: true, 16: true, 32: true}
	for p := range want {
		if !peers[p] {
			t.Errorf("rank 0 missing hypercube partner %d", p)
		}
	}
	for p := range peers {
		if !want[p] {
			t.Errorf("rank 0 has non-hypercube partner %d", p)
		}
	}
	if c := opCount(tr)[trace.OpAllreduce]; c == 0 {
		t.Error("CG has no allreduces (dot products)")
	}
}

func TestLULESHNeighborhood(t *testing.T) {
	tr := genTrace(t, "LULESH", 64) // 4×4×4 grid: interior ranks have 26 neighbors
	peers := p2pPeers(tr, 21)       // (1,1,1) is interior
	if len(peers) != 26 {
		t.Errorf("interior rank has %d distinct neighbors, want 26", len(peers))
	}
	// Face payloads must exceed corner payloads.
	var face, corner int64
	for _, e := range tr.Ranks[21] {
		if e.Op != trace.OpIsend {
			continue
		}
		if e.Bytes > face {
			face = e.Bytes
		}
		if corner == 0 || e.Bytes < corner {
			corner = e.Bytes
		}
	}
	if face <= corner {
		t.Errorf("face payload %d not above corner payload %d", face, corner)
	}
}

func TestFTAlltoallStructure(t *testing.T) {
	tr := genTrace(t, "FT", 64)
	c := opCount(tr)
	if c[trace.OpAlltoall] != 64*6 { // one per rank per default iteration
		t.Errorf("alltoall count = %d, want %d", c[trace.OpAlltoall], 64*6)
	}
	if c[trace.OpSend]+c[trace.OpIsend] != 0 {
		t.Error("FT should communicate only via collectives")
	}
}

func TestISAlltoallvUneven(t *testing.T) {
	tr := genTrace(t, "IS", 16)
	var sizes []int64
	for _, e := range tr.Ranks[0] {
		if e.Op == trace.OpAlltoallv {
			sizes = append(sizes, e.SendBytes...)
			break
		}
	}
	if len(sizes) != 16 {
		t.Fatalf("alltoallv has %d counts", len(sizes))
	}
	var lo, hi int64 = 1 << 62, 0
	for i, s := range sizes {
		if i == 0 {
			continue // self entry is zero
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi == lo {
		t.Error("IS buckets are perfectly even; want ±40% spread")
	}
	if float64(hi) > 3*float64(lo) {
		t.Errorf("IS bucket spread too extreme: %d..%d", lo, hi)
	}
}

func TestLUWavefrontUsesBlockingPipeline(t *testing.T) {
	tr := genTrace(t, "LU", 16)
	c := opCount(tr)
	if c[trace.OpSend] == 0 || c[trace.OpRecv] == 0 {
		t.Error("LU should use blocking sends/recvs (pipeline)")
	}
	// Corner rank 0 sends east and south only in the forward sweep.
	peers := p2pPeers(tr, 0)
	if len(peers) != 2 {
		t.Errorf("LU corner rank has %d peers, want 2 (east, south)", len(peers))
	}
}

func TestBigFFTUsesSubCommunicators(t *testing.T) {
	tr := genTrace(t, "BigFFT", 16)
	if tr.Comms.Len() < 3 {
		t.Fatalf("BigFFT has %d communicators, want world + rows + cols", tr.Comms.Len())
	}
	// All alltoalls must run on sub-communicators, never on world.
	for r := range tr.Ranks {
		for _, e := range tr.Ranks[r] {
			if e.Op == trace.OpAlltoall && e.Comm == trace.CommWorld {
				t.Fatal("BigFFT alltoall on MPI_COMM_WORLD; want row/col comms")
			}
		}
	}
}

func TestCRIrregularSizes(t *testing.T) {
	tr := genTrace(t, "CrystalRouter", 32)
	sizes := map[int64]bool{}
	for _, e := range tr.Ranks[3] {
		if e.Op == trace.OpIsend {
			sizes[e.Bytes] = true
		}
	}
	if len(sizes) < 4 {
		t.Errorf("CR rank sends only %d distinct sizes; want irregular mix", len(sizes))
	}
}

func TestEPAlmostNoCommunication(t *testing.T) {
	tr := genTrace(t, "EP", 64)
	c := opCount(tr)
	comm := 0
	for op, n := range c {
		if op != trace.OpCompute {
			comm += n
		}
	}
	if comm != 64*3 { // three allreduces per rank
		t.Errorf("EP comm events = %d, want %d", comm, 64*3)
	}
}

func TestMultiGridShrinkingCommunicators(t *testing.T) {
	tr := genTrace(t, "MultiGrid", 64)
	if !tr.Meta.UsesCommSplit {
		t.Fatal("MultiGrid must flag comm split")
	}
	// Level communicators shrink: world(64) plus 64, 32, 16, 8.
	sizes := []int{}
	for c := 1; c < tr.Comms.Len(); c++ {
		sizes = append(sizes, tr.Comms.Size(trace.CommID(c)))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] >= sizes[i-1] {
			t.Errorf("level comms do not shrink: %v", sizes)
		}
	}
}

func TestCMCImbalancePersistsAcrossIterations(t *testing.T) {
	tr := genTrace(t, "CMC", 16)
	// The same ranks should be slow in every iteration (a skew profile,
	// not per-iteration noise): compare per-rank total compute.
	var tot [16]float64
	for r := 0; r < 16; r++ {
		for _, e := range tr.Ranks[r] {
			if e.Op == trace.OpCompute {
				tot[r] += e.Duration().Seconds()
			}
		}
	}
	lo, hi := tot[0], tot[0]
	for _, v := range tot {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi/lo < 1.10 {
		t.Errorf("CMC imbalance %.3f too small; want ≥ 1.10× spread", hi/lo)
	}
}

func TestDTPipelineRoles(t *testing.T) {
	tr := genTrace(t, "DT", 24)
	// Sources (0-7) only send; sinks (16-23) only receive.
	for r := 0; r < 8; r++ {
		for _, e := range tr.Ranks[r] {
			if e.Op == trace.OpRecv || e.Op == trace.OpIrecv {
				t.Fatalf("source rank %d receives", r)
			}
		}
	}
	for r := 16; r < 24; r++ {
		for _, e := range tr.Ranks[r] {
			if e.Op == trace.OpSend || e.Op == trace.OpIsend {
				t.Fatalf("sink rank %d sends", r)
			}
		}
	}
}
