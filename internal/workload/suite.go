package workload

// The 235-trace study manifest. The rank-bucket distribution mirrors
// the paper's Table Ia exactly:
//
//	ranks      traces
//	64         72
//	65–128     18
//	129–256    80
//	257–512    12
//	513–1024   37
//	1025–1728  16
//	total      235
//
// All-to-all-heavy codes (FT, IS, BigFFT, CrystalRouter, DT, FB) stay
// at ≤256 ranks (as extracted kernels do in the original collection),
// while stencil codes carry the large-rank buckets; the three traces
// the paper's Table II names (CMC@1024, LULESH@512, MiniFE@1152)
// appear at those exact sizes.

// machines rotates deterministically over the three systems.
var suiteMachines = []string{"cielito", "hopper", "edison"}

// stencilApps are the codes cheap enough (per-rank halos shrink with
// scale) to run at ≥512 ranks.
var stencilApps = []string{
	"LULESH", "MiniFE", "CMC", "Nekbone", "AMG", "MG",
	"CNS", "BT", "LU", "CG", "EP", "MultiGrid",
}

// allApps is the full 18-code suite.
var allApps = []string{
	"CG", "MG", "FT", "IS", "LU", "BT", "EP", "DT",
	"BigFFT", "CrystalRouter", "AMG", "MiniFE", "LULESH",
	"CNS", "CMC", "Nekbone", "MultiGrid", "FillBoundary",
}

// SuiteMachine is the manifest's deterministic machine-rotation
// policy: the global manifest index rotates over the three systems,
// except that jobs above 1024 ranks skip Cielito (a 64-node, 1024-core
// machine) and land on Hopper. Campaign specs reference it as
// `machine: rotate`.
func SuiteMachine(index, ranks int) string {
	m := suiteMachines[index%len(suiteMachines)]
	if m == "cielito" && ranks > 1024 {
		m = "hopper"
	}
	return m
}

// SuiteSeed is the manifest's derived-seed policy: a hash of the
// scenario coordinates plus the global manifest index, so every trace
// gets an independent noise/generator stream and re-orderings of the
// manifest are detectable. Campaign specs reference it as
// `seed: derived`.
func SuiteSeed(app, class string, ranks int, machine string, index int) int64 {
	return hashName(app) ^ int64(ranks)<<17 ^ hashName(class) ^ hashName(machine) ^ int64(index)<<37
}

// SuiteIters is the manifest's iteration-count policy: large runs trim
// outer iterations to keep ground-truth stamping affordable (0 means
// the app default). Campaign specs reference it as `iters: auto`.
func SuiteIters(ranks int) int {
	switch {
	case ranks >= 1024:
		return 3
	case ranks >= 512:
		return 4
	}
	return 0
}

// Suite returns the 235 trace parameter sets of the study.
func Suite() []Params {
	var out []Params
	add := func(app, class string, ranks int) {
		m := SuiteMachine(len(out), ranks)
		out = append(out, Params{
			App:     app,
			Class:   class,
			Ranks:   ranks,
			Machine: m,
			Seed:    SuiteSeed(app, class, ranks, m, len(out)),
			Iters:   SuiteIters(ranks),
		})
	}

	// Bucket 1 — 64 ranks, 72 traces: all 18 apps × 2 classes × 2
	// machine rotations.
	for rep := 0; rep < 2; rep++ {
		for _, app := range allApps {
			for _, class := range []string{"A", "B"} {
				add(app, class, 64)
			}
		}
	}

	// Bucket 2 — 65–128 ranks, 18 traces: all apps at 128, class B.
	for _, app := range allApps {
		add(app, "B", 128)
	}

	// Bucket 3 — 129–256 ranks, 80 traces: all apps × 2 classes × 2
	// rotations at 256 (72), plus 8 stencil codes at 192.
	for rep := 0; rep < 2; rep++ {
		for _, app := range allApps {
			for _, class := range []string{"A", "B"} {
				add(app, class, 256)
			}
		}
	}
	for _, app := range stencilApps[:8] {
		add(app, "B", 192)
	}

	// Bucket 4 — 257–512 ranks, 12 traces: the stencil codes at 512
	// (includes LULESH@512, a Table II entry).
	for _, app := range stencilApps {
		add(app, "B", 512)
	}

	// Bucket 5 — 513–1024 ranks, 37 traces: stencils at 1024 and 768,
	// plus 13 at 576 (the 12 stencils + DT is too small — use class A
	// variants of the first 13 stencil rotations at 576).
	for _, app := range stencilApps {
		add(app, "B", 1024) // includes CMC@1024 (Table II)
	}
	for _, app := range stencilApps {
		add(app, "B", 768)
	}
	for i := 0; i < 13; i++ {
		add(stencilApps[i%len(stencilApps)], "A", 576)
	}

	// Bucket 6 — 1025–1728 ranks, 16 traces: 8 large-scale codes at
	// 1728 and at 1152/1296 (includes MiniFE@1152, a Table II entry).
	large := []string{"LULESH", "CMC", "Nekbone", "AMG", "MG", "EP", "CNS", "MiniFE"}
	for _, app := range large {
		add(app, "B", 1728)
	}
	for _, app := range large {
		if app == "MiniFE" {
			add(app, "B", 1152)
		} else {
			add(app, "B", 1296)
		}
	}

	return out
}

// SuiteSmall returns a reduced manifest (every nth trace, ranks capped)
// for tests and quick studies.
func SuiteSmall(stride, maxRanks int) []Params {
	return Filter(Suite(), stride, maxRanks)
}

// Filter reduces any manifest the way SuiteSmall reduces the study
// manifest: keep every stride-th entry (stride < 1 means every entry),
// then drop traces above maxRanks (0 = no cap). Spec-driven campaigns
// apply it after compilation, so -stride/-maxranks keep working as
// manifest filters under -spec.
func Filter(ps []Params, stride, maxRanks int) []Params {
	if stride < 1 {
		stride = 1
	}
	var out []Params
	for i, p := range ps {
		if i%stride != 0 {
			continue
		}
		if maxRanks > 0 && p.Ranks > maxRanks {
			continue
		}
		out = append(out, p)
	}
	return out
}
