package workload

import (
	"fmt"
	"testing"

	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// This file is a property-based check on the trace generators: for
// every app in the 235-trace manifest, across several seeds, the
// generated trace must be causally well-formed. The checks are
// implemented here from scratch — independently of trace.Validate —
// so a bug shared by the generator and the validator cannot hide.

// propKey identifies a point-to-point channel; messages on one channel
// match in FIFO order.
type propKey struct {
	src, dst, tag int32
	comm          trace.CommID
}

type propMsg struct {
	bytes int64
	// avail is when the message could first exist (the send's entry);
	// done is when the receive completed (recv exit, or the retiring
	// wait's exit for nonblocking receives).
	avail simtime.Time
	done  simtime.Time
}

// checkCausalOrder verifies, from first principles, that a trace could
// have been produced by a real MPI run:
//
//  1. per-rank timestamps are monotone: every event's Exit ≥ Entry and
//     Entry ≥ the previous event's Exit;
//  2. every receive has a matching send (FIFO per channel, equal
//     bytes), and — when temporal is set — no receive completes
//     before its matching send began: a message cannot arrive before
//     it exists;
//  3. p2p peers are real ranks and never the sender itself.
//
// The temporal check only applies to materialized traces. A freshly
// generated program trace carries intended compute durations with
// zero-duration communication placeholders, so its per-rank clocks
// drift independently; only the ground-truth execution (Materialize)
// stamps times in which cross-rank causality is meaningful.
func checkCausalOrder(t *testing.T, tr *trace.Trace, temporal bool) {
	t.Helper()
	n := int32(tr.Meta.NumRanks)
	sends := map[propKey][]propMsg{}
	recvs := map[propKey][]propMsg{}

	for rank, evs := range tr.Ranks {
		var prevExit simtime.Time = -1
		// reqDone[i] is the index in the rank's recv list whose
		// completion time is fixed by the wait retiring request r.
		pendingRecv := map[int32]int{}
		var rankRecvs []*propMsg
		for i := range evs {
			e := &evs[i]
			if e.Exit < e.Entry {
				t.Fatalf("%s rank %d event %d: exit %v before entry %v", tr.Meta.ID(), rank, i, e.Exit, e.Entry)
			}
			if e.Entry < prevExit {
				t.Fatalf("%s rank %d event %d: entry %v before previous exit %v (non-monotone stream)",
					tr.Meta.ID(), rank, i, e.Entry, prevExit)
			}
			prevExit = e.Exit

			switch e.Op {
			case trace.OpSend, trace.OpIsend:
				if e.Peer < 0 || e.Peer >= n || int(e.Peer) == rank {
					t.Fatalf("%s rank %d event %d: bad send peer %d", tr.Meta.ID(), rank, i, e.Peer)
				}
				k := propKey{int32(rank), e.Peer, e.Tag, e.Comm}
				sends[k] = append(sends[k], propMsg{bytes: e.Bytes, avail: e.Entry})
			case trace.OpRecv, trace.OpIrecv:
				if e.Peer < 0 || e.Peer >= n || int(e.Peer) == rank {
					t.Fatalf("%s rank %d event %d: bad recv peer %d", tr.Meta.ID(), rank, i, e.Peer)
				}
				k := propKey{e.Peer, int32(rank), e.Tag, e.Comm}
				recvs[k] = append(recvs[k], propMsg{bytes: e.Bytes, done: e.Exit})
				if e.Op == trace.OpIrecv {
					rankRecvs = append(rankRecvs, &recvs[k][len(recvs[k])-1])
					pendingRecv[e.Req] = len(rankRecvs) - 1
				}
			case trace.OpWait:
				if idx, ok := pendingRecv[e.Req]; ok {
					rankRecvs[idx].done = e.Exit
					delete(pendingRecv, e.Req)
				}
			case trace.OpWaitall:
				for _, r := range e.Reqs {
					if idx, ok := pendingRecv[r]; ok {
						rankRecvs[idx].done = e.Exit
						delete(pendingRecv, r)
					}
				}
			}
		}
		if len(pendingRecv) != 0 {
			t.Fatalf("%s rank %d: %d nonblocking receives never completed by a wait", tr.Meta.ID(), rank, len(pendingRecv))
		}
	}

	for k, ss := range recvs {
		if len(sends[k]) != len(ss) {
			t.Fatalf("%s channel %d->%d tag %d: %d recvs vs %d sends",
				tr.Meta.ID(), k.src, k.dst, k.tag, len(ss), len(sends[k]))
		}
	}
	for k, ss := range sends {
		rs := recvs[k]
		if len(ss) != len(rs) {
			t.Fatalf("%s channel %d->%d tag %d: %d sends vs %d recvs",
				tr.Meta.ID(), k.src, k.dst, k.tag, len(ss), len(rs))
		}
		for i := range ss {
			if ss[i].bytes != rs[i].bytes {
				t.Fatalf("%s channel %d->%d tag %d msg %d: sent %d bytes, received %d",
					tr.Meta.ID(), k.src, k.dst, k.tag, i, ss[i].bytes, rs[i].bytes)
			}
			if temporal && rs[i].done < ss[i].avail {
				t.Fatalf("%s channel %d->%d tag %d msg %d: receive completed at %v before matching send began at %v",
					tr.Meta.ID(), k.src, k.dst, k.tag, i, rs[i].done, ss[i].avail)
			}
		}
	}
}

// smallestPerAppClass returns the smallest-rank manifest entry per
// (app, class) pair.
func smallestPerAppClass() map[string]Params {
	picked := map[string]Params{}
	for _, p := range Suite() {
		key := p.App + "/" + p.Class
		if cur, ok := picked[key]; !ok || p.Ranks < cur.Ranks {
			picked[key] = p
		}
	}
	return picked
}

// TestGeneratorsProduceWellFormedPrograms generates, for every app the
// manifest names, its smallest-rank configuration under several seeds
// and asserts structural well-formedness (monotone per-rank streams,
// exactly matched sends and receives). Seeds perturb the generators'
// jitter and random pairings, so each one is a distinct sample of the
// generator's output space.
func TestGeneratorsProduceWellFormedPrograms(t *testing.T) {
	seeds := []int64{0, 7, 1_000_003}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, p := range smallestPerAppClass() {
		for _, ds := range seeds {
			p := p
			p.Seed += ds
			t.Run(fmt.Sprintf("%s.%s+%d", p.App, p.Class, ds), func(t *testing.T) {
				tr, err := Generate(p)
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				if len(tr.Ranks) != p.Ranks {
					t.Fatalf("trace has %d rank streams, params say %d", len(tr.Ranks), p.Ranks)
				}
				if tr.NumEvents() == 0 {
					t.Fatal("generator produced an empty trace")
				}
				checkCausalOrder(t, tr, false)
			})
		}
	}
}

// TestMaterializedTracesAreCausal runs the full causality check —
// including "no receive completes before its matching send began" —
// on materialized traces, whose timestamps come from the ground-truth
// contention simulation and therefore claim to be physically
// realizable measurements. One configuration per app, at the app's
// smallest manifest scale.
func TestMaterializedTracesAreCausal(t *testing.T) {
	perApp := map[string]Params{}
	for _, p := range smallestPerAppClass() {
		if cur, ok := perApp[p.App]; !ok || p.Class < cur.Class {
			perApp[p.App] = p
		}
	}
	for _, p := range perApp {
		p := p
		t.Run(fmt.Sprintf("%s.%s.x%d", p.App, p.Class, p.Ranks), func(t *testing.T) {
			if testing.Short() && p.Ranks > 64 {
				t.Skip("short mode")
			}
			tr, err := Materialize(p)
			if err != nil {
				t.Fatalf("materialize: %v", err)
			}
			checkCausalOrder(t, tr, true)
		})
	}
}

// TestSuiteMatchesTableIDistribution asserts the manifest's rank
// distribution against the paper's Table Ia, bucket by bucket. (The
// generators' per-trace properties above are only meaningful if the
// manifest actually spans the study's scale mix.)
func TestSuiteMatchesTableIDistribution(t *testing.T) {
	want := map[string]int{
		"64": 72, "65-128": 18, "129-256": 80,
		"257-512": 12, "513-1024": 37, "1025-1728": 16,
	}
	got := map[string]int{}
	for _, p := range Suite() {
		switch r := p.Ranks; {
		case r == 64:
			got["64"]++
		case r > 64 && r <= 128:
			got["65-128"]++
		case r <= 256:
			got["129-256"]++
		case r <= 512:
			got["257-512"]++
		case r <= 1024:
			got["513-1024"]++
		case r <= 1728:
			got["1025-1728"]++
		default:
			t.Errorf("trace %s.%s at %d ranks is outside every Table Ia bucket", p.App, p.Class, p.Ranks)
		}
	}
	total := 0
	for bucket, n := range want {
		if got[bucket] != n {
			t.Errorf("bucket %s has %d traces, Table Ia says %d", bucket, got[bucket], n)
		}
		total += got[bucket]
	}
	if total != 235 {
		t.Errorf("manifest has %d traces, the study has 235", total)
	}
}
