package workload

import (
	"testing"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/mfact"
	"hpctradeoff/internal/mpisim"
	"hpctradeoff/internal/simnet"
)

func TestGenerateAllAppsValidate(t *testing.T) {
	for _, app := range Apps() {
		for _, ranks := range []int{8, 27, 64} {
			p := Params{App: app, Class: "S", Ranks: ranks, Machine: "edison", Seed: 1}
			tr, err := Generate(p)
			if err != nil {
				t.Fatalf("%s/%d: %v", app, ranks, err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("%s/%d: invalid: %v", app, ranks, err)
			}
			if tr.NumEvents() == 0 {
				t.Errorf("%s/%d: empty trace", app, ranks)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{App: "CrystalRouter", Class: "A", Ranks: 16, Machine: "hopper", Seed: 99}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEvents() != b.NumEvents() {
		t.Fatalf("event counts differ: %d vs %d", a.NumEvents(), b.NumEvents())
	}
	for r := range a.Ranks {
		for i := range a.Ranks[r] {
			ea, eb := a.Ranks[r][i], b.Ranks[r][i]
			if ea.Op != eb.Op || ea.Bytes != eb.Bytes || ea.Peer != eb.Peer {
				t.Fatalf("rank %d event %d differs: %v vs %v", r, i, ea.String(), eb.String())
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Params{App: "HPL", Class: "B", Ranks: 8}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := Generate(Params{App: "CG", Class: "Z", Ranks: 8}); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := Generate(Params{App: "CG", Class: "B", Ranks: 1}); err == nil {
		t.Error("1 rank accepted")
	}
}

func TestCapabilityFlags(t *testing.T) {
	bf, err := Generate(Params{App: "BigFFT", Class: "S", Ranks: 16, Machine: "edison", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bf.Meta.UsesCommSplit {
		t.Error("BigFFT should use comm split")
	}
	fb, err := Generate(Params{App: "FillBoundary", Class: "S", Ranks: 16, Machine: "edison", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !fb.Meta.UsesThreadMultiple {
		t.Error("FillBoundary should use thread multiple")
	}
	ep, err := Generate(Params{App: "EP", Class: "S", Ranks: 16, Machine: "edison", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ep.Meta.UsesCommSplit || ep.Meta.UsesThreadMultiple {
		t.Error("EP should have no special capabilities")
	}
}

func TestMaterializeStampsMeasuredTimes(t *testing.T) {
	p := Params{App: "MiniFE", Class: "S", Ranks: 16, Machine: "cielito", Seed: 5}
	tr, err := Materialize(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("materialized trace invalid: %v", err)
	}
	if tr.MeasuredTotal() <= 0 {
		t.Error("no measured total time")
	}
	if f := tr.CommFraction(); f <= 0 || f >= 1 {
		t.Errorf("comm fraction = %v, want in (0,1)", f)
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 235 {
		t.Fatalf("suite has %d traces, want 235", len(suite))
	}
	// Table Ia buckets.
	buckets := map[string]int{}
	bucketOf := func(r int) string {
		switch {
		case r == 64:
			return "64"
		case r <= 128:
			return "65-128"
		case r <= 256:
			return "129-256"
		case r <= 512:
			return "257-512"
		case r <= 1024:
			return "513-1024"
		default:
			return "1025-1728"
		}
	}
	ids := map[string]bool{}
	for _, p := range suite {
		buckets[bucketOf(p.Ranks)]++
		if p.Ranks < 64 || p.Ranks > 1728 {
			t.Errorf("ranks %d outside the paper's range", p.Ranks)
		}
		id := p.App + p.Class + string(rune(p.Ranks)) + p.Machine
		ids[id] = true
	}
	want := map[string]int{
		"64": 72, "65-128": 18, "129-256": 80,
		"257-512": 12, "513-1024": 37, "1025-1728": 16,
	}
	for k, v := range want {
		if buckets[k] != v {
			t.Errorf("bucket %s has %d traces, want %d", k, buckets[k], v)
		}
	}
	// The Table II configurations must be present.
	for _, wantP := range []struct {
		app   string
		ranks int
	}{{"CMC", 1024}, {"LULESH", 512}, {"MiniFE", 1152}} {
		found := false
		for _, p := range suite {
			if p.App == wantP.app && p.Ranks == wantP.ranks {
				found = true
			}
		}
		if !found {
			t.Errorf("suite missing %s@%d (Table II)", wantP.app, wantP.ranks)
		}
	}
}

func TestSuiteSmall(t *testing.T) {
	s := SuiteSmall(10, 128)
	if len(s) == 0 {
		t.Fatal("empty small suite")
	}
	for _, p := range s {
		if p.Ranks > 128 {
			t.Errorf("rank cap violated: %d", p.Ranks)
		}
	}
}

// TestEndToEndClassBehaviours checks that the suite produces the
// qualitative classes the study depends on: EP computation-bound, CMC
// load-imbalanced, FT/IS communication-sensitive.
func TestEndToEndClassBehaviours(t *testing.T) {
	cases := []struct {
		app  string
		want func(*mfact.Result) bool
		desc string
	}{
		{"EP", func(r *mfact.Result) bool { return r.Class == mfact.ComputationBound }, "computation-bound"},
		{"CMC", func(r *mfact.Result) bool {
			return r.Class == mfact.LoadImbalanceBound || r.Class == mfact.ComputationBound
		}, "imbalance/compute-bound"},
		// FT sits near the sensitivity boundary at 64 ranks (heavy FFT
		// compute dilutes the transpose); require meaningful bandwidth
		// sensitivity rather than the full 5% cut.
		{"FT", func(r *mfact.Result) bool { return r.BandwidthSensitivity() > 0.03 }, "bandwidth-leaning"},
		{"IS", func(r *mfact.Result) bool { return r.CommSensitive() }, "communication-sensitive"},
	}
	for _, c := range cases {
		p := Params{App: c.app, Class: "A", Ranks: 64, Machine: "edison", Seed: 3}
		tr, err := Materialize(p)
		if err != nil {
			t.Fatalf("%s: %v", c.app, err)
		}
		mach, err := machine.New(p.Machine, p.Ranks, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mfact.Model(tr, mach, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.app, err)
		}
		if !c.want(res) {
			t.Errorf("%s: class=%v bwSens=%.3f latSens=%.3f waitFrac=%.3f, want %s",
				c.app, res.Class, res.BandwidthSensitivity(), res.LatencySensitivity(),
				res.WaitFraction(), c.desc)
		}
	}
}

// TestModelVsSimulationAgreement: for a compute-bound app the packet-
// flow simulation and MFACT model must agree within a few percent
// (the paper's central DIFF ≤ 2% population).
func TestModelVsSimulationAgreement(t *testing.T) {
	p := Params{App: "EP", Class: "S", Ranks: 32, Machine: "hopper", Seed: 9}
	tr, err := Materialize(p)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := machine.New(p.Machine, p.Ranks, 0)
	if err != nil {
		t.Fatal(err)
	}
	model, err := mfact.Model(tr, mach, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := mpisim.Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, mpisim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	diff := float64(sim.Total)/float64(model.Total()) - 1
	if diff < -0.05 || diff > 0.05 {
		t.Errorf("EP DIFFtotal = %.3f, want within ±5%% (sim %v vs model %v)", diff, sim.Total, model.Total())
	}
}

// TestFatTreeMachineEndToEnd runs the full pipeline on the hypothetical
// fat-tree cluster, exercising the third topology class.
func TestFatTreeMachineEndToEnd(t *testing.T) {
	p := Params{App: "CG", Class: "A", Ranks: 64, Machine: "fattree", Seed: 12}
	tr, err := Materialize(p)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := machine.New("fattree", p.Ranks, 0)
	if err != nil {
		t.Fatal(err)
	}
	model, err := mfact.Model(tr, mach, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := mpisim.Replay(tr, simnet.PacketFlow, mach, simnet.Config{}, mpisim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(sim.Total) / float64(model.Total())
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("fat-tree sim/model = %.3f, want near 1", ratio)
	}
}
