package workload

import (
	"strings"
	"testing"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/mfact"
	"hpctradeoff/internal/mpisim"
	"hpctradeoff/internal/simnet"
	"hpctradeoff/internal/trace"
)

const specJSON = `{
  "name": "mykernel",
  "iters": 4,
  "imbalance": 0.05,
  "phases": [
    {"computeMs": 2.0},
    {"halo": {"neighbors": "faces", "bytes": 16384}},
    {"collective": {"op": "allreduce", "bytes": 8}},
    {"exchange": {"degree": 2, "bytes": 4096}}
  ]
}`

func TestReadSpecAndGenerate(t *testing.T) {
	spec, err := ReadSpec(strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := FromSpec(spec, Params{Ranks: 27, Machine: "edison", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.App != "mykernel" {
		t.Errorf("app = %q", tr.Meta.App)
	}
	c := map[trace.Op]int{}
	for _, evs := range tr.Ranks {
		for i := range evs {
			c[evs[i].Op]++
		}
	}
	if c[trace.OpAllreduce] != 27*4 {
		t.Errorf("allreduces = %d, want %d", c[trace.OpAllreduce], 27*4)
	}
	if c[trace.OpIsend] == 0 || c[trace.OpIrecv] == 0 {
		t.Error("no halo/exchange traffic")
	}
	// Imbalance is a persistent profile.
	var t0, t26 float64
	for _, e := range tr.Ranks[0] {
		if e.Op == trace.OpCompute {
			t0 += e.Duration().Seconds()
		}
	}
	for _, e := range tr.Ranks[26] {
		if e.Op == trace.OpCompute {
			t26 += e.Duration().Seconds()
		}
	}
	if t0 == t26 {
		t.Error("no skew applied")
	}
}

func TestSpecEndToEnd(t *testing.T) {
	spec, err := ReadSpec(strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Ranks: 16, Machine: "hopper", Seed: 8}
	tr, err := FromSpec(spec, p)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := machine.New(p.Machine, p.Ranks, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth + model + simulation must all work on spec traces.
	if _, err := mpisim.Replay(tr, simnet.PacketFlow, mach, simnet.Config{},
		mpisim.Options{Record: true, Perturb: mpisim.DefaultNoise(p.Seed, p.Ranks)}); err != nil {
		t.Fatal(err)
	}
	res, err := mfact.Model(tr, mach, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() <= 0 {
		t.Error("zero modeled total")
	}
}

func TestSpecHypercubeStencil(t *testing.T) {
	spec := &Spec{Name: "hc", Phases: []Phase{{Halo: &HaloPhase{Neighbors: "hypercube", Bytes: 1024}}}}
	tr, err := FromSpec(spec, Params{Ranks: 16, Machine: "edison", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	peers := map[int32]bool{}
	for _, e := range tr.Ranks[0] {
		if e.Op == trace.OpIsend {
			peers[e.Peer] = true
		}
	}
	for _, want := range []int32{1, 2, 4, 8} {
		if !peers[want] {
			t.Errorf("missing hypercube partner %d", want)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []string{
		`{"phases":[{"computeMs":1}]}`, // no name
		`{"name":"x","phases":[]}`,     // no phases
		`{"name":"x","phases":[{}]}`,   // empty phase
		`{"name":"x","phases":[{"computeMs":1,"halo":{"neighbors":"faces"}}]}`, // two kinds
		`{"name":"x","phases":[{"halo":{"neighbors":"torus"}}]}`,               // bad stencil
		`{"name":"x","phases":[{"collective":{"op":"gossip"}}]}`,               // bad collective
		`{"name":"x","phases":[{"exchange":{"degree":0}}]}`,                    // bad degree
		`{"name":"x","imbalance":-1,"phases":[{"computeMs":1}]}`,               // bad imbalance
		`{"name":"x","bogus":true,"phases":[{"computeMs":1}]}`,                 // unknown field
		`not json`,
	}
	for _, in := range bad {
		if _, err := ReadSpec(strings.NewReader(in)); err == nil {
			t.Errorf("spec %q accepted", in)
		}
	}
	if _, err := FromSpec(&Spec{Name: "x", Phases: []Phase{{ComputeMs: 1}}}, Params{Ranks: 1}); err == nil {
		t.Error("1 rank accepted")
	}
}
