package workload

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"testing"

	"hpctradeoff/internal/trace"
)

// zeroNoiseGolden mirrors testdata/zero_noise_golden.json, captured
// from the tree before Params grew the Noise field. It pins the whole
// stamped output — event count, measured totals, and an FNV-64a hash
// over every event's Entry/Exit pair in rank order — so the zero-noise
// path provably produces the same floats it did before the
// variability refactor (acceptance criterion: the sweep's zero point
// is bit-identical to the historical ground truth).
type zeroNoiseGolden struct {
	App          string
	Class        string
	Machine      string
	Ranks        int
	Seed         int64
	Events       int
	Measured     int64
	MeasuredComm int64
	TimesHash    uint64
}

func stampedFingerprint(t *testing.T, p Params) zeroNoiseGolden {
	t.Helper()
	c, err := MaterializeColumns(p)
	if err != nil {
		t.Fatalf("MaterializeColumns(%+v): %v", p, err)
	}
	h := fnv.New64a()
	var ev trace.Event
	for r := 0; r < c.TraceMeta().NumRanks; r++ {
		cur := c.Cursor(r)
		for cur.Next(&ev) {
			fmt.Fprintf(h, "%d,%d;", int64(ev.Entry), int64(ev.Exit))
		}
	}
	return zeroNoiseGolden{
		App: p.App, Class: p.Class, Machine: p.Machine, Ranks: p.Ranks, Seed: p.Seed,
		Events:       c.NumEvents(),
		Measured:     int64(trace.SourceMeasuredTotal(c)),
		MeasuredComm: int64(trace.SourceMeasuredComm(c)),
		TimesHash:    h.Sum64(),
	}
}

func TestZeroNoiseGroundTruthUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("materializes four traces")
	}
	data, err := os.ReadFile("testdata/zero_noise_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var want []zeroNoiseGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for _, w := range want {
		p := Params{App: w.App, Class: w.Class, Ranks: w.Ranks, Machine: w.Machine, Seed: w.Seed}
		got := stampedFingerprint(t, p)
		if got != w {
			t.Errorf("%s.%s.x%d.%s.s%d: stamped output drifted from pre-Noise golden:\n got %+v\nwant %+v",
				w.App, w.Class, w.Ranks, w.Machine, w.Seed, got, w)
		}
	}
}

// TestNoiseChangesGroundTruth is the other direction: each axis at a
// non-zero amplitude must actually move the measured times (otherwise
// the variability study would sweep a dead knob), and distinct noise
// seeds must resample the platform.
func TestNoiseChangesGroundTruth(t *testing.T) {
	// 64 ranks span three edison nodes, so messages actually cross
	// fabric links (16 ranks would fit on one node and see only
	// loopback, making LinkJitter a no-op by construction).
	base := Params{App: "CG", Class: "S", Ranks: 64, Machine: "edison", Seed: 42}
	ref := stampedFingerprint(t, base)
	axes := map[string]Noise{
		"link-jitter": {LinkJitter: 0.3},
		"node-hetero": {NodeHetero: 0.3},
		"os-noise":    {OSNoise: 4},
	}
	for name, n := range axes {
		p := base
		p.Noise = n
		got := stampedFingerprint(t, p)
		if got.TimesHash == ref.TimesHash {
			t.Errorf("%s: noise %+v left stamped times bit-identical to the zero-noise trace", name, n)
		}
		if got.Events != ref.Events {
			t.Errorf("%s: noise changed the program structure (%d events vs %d) — it must only perturb stamping",
				name, got.Events, ref.Events)
		}
		reseeded := p
		reseeded.Noise.Seed = 1
		if r := stampedFingerprint(t, reseeded); r.TimesHash == got.TimesHash {
			t.Errorf("%s: Noise.Seed=1 did not resample the platform draws", name)
		}
	}
}
