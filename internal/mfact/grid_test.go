package mfact

import (
	"strings"
	"testing"

	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

func TestGridSweep(t *testing.T) {
	b := trace.NewBuilder(trace.Meta{App: "g", NumRanks: 16})
	for r := 0; r < 16; r++ {
		b.Collective(r, trace.OpAlltoall, trace.CommWorld, 0, 1<<20)
	}
	tr := build(t, b)
	mach := testMach(t, 16)
	g, err := GridSweep(tr, mach, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Totals) != 5 || len(g.Totals[0]) != 5 {
		t.Fatalf("grid shape %dx%d", len(g.Totals), len(g.Totals[0]))
	}
	// Monotone: total decreases (weakly) as bandwidth grows, for a
	// bandwidth-bound workload, at fixed latency.
	for j := range g.LatScales {
		for i := 1; i < len(g.BWScales); i++ {
			if g.Totals[i][j] > g.Totals[i-1][j] {
				t.Errorf("total rose with bandwidth at lat ×%g: %v -> %v",
					g.LatScales[j], g.Totals[i-1][j], g.Totals[i][j])
			}
		}
	}
	// At() cross-checks the layout.
	if g.At(1, 1) != g.Totals[2][2] {
		t.Error("At(1,1) wrong cell")
	}
	if g.At(7, 7) != -1 {
		t.Error("At off-grid should be -1")
	}
	if !strings.Contains(g.Render(), "bw\\lat") {
		t.Error("render broken")
	}
}

func TestGridSweepCustomAxes(t *testing.T) {
	b := trace.NewBuilder(trace.Meta{App: "g2", NumRanks: 4})
	for r := 0; r < 4; r++ {
		b.Compute(r, simtime.Millisecond)
	}
	tr := build(t, b)
	g, err := GridSweep(tr, testMach(t, 4), []float64{1, 10}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Totals) != 2 || len(g.Totals[0]) != 1 {
		t.Fatalf("grid shape %dx%d", len(g.Totals), len(g.Totals[0]))
	}
	// Compute-only: identical everywhere.
	if g.Totals[0][0] != g.Totals[1][0] {
		t.Error("compute-only workload should be network-invariant")
	}
}
