// Package mfact implements the MFACT modeling tool (MPI Fast
// Application Classification Tool, Tong et al., IPDPS 2016), the
// trace-driven modeling side of the study.
//
// MFACT replays a DUMPI-like trace once using Lamport logical clocks
// augmented with non-unit communication and computation times. The
// interconnect is abstracted by Hockney's two-parameter (α, β) model
// for point-to-point transfers and Thakur & Gropp's algorithm cost
// formulas for collectives. Because a replay never simulates network
// state, one pass can maintain a logical clock per *network
// configuration* and predict application performance on many
// configurations simultaneously; four logical time counters (wait,
// bandwidth, latency, computation) per configuration drive the
// classification of the application as computation-bound,
// load-imbalance-bound, bandwidth-bound, latency-bound, or
// communication-bound.
//
// Two replayers are provided: a deterministic sequential dataflow
// replayer (the default) and a goroutine-per-rank parallel replayer
// exchanging logical-clock vectors over channels, mirroring the MPI
// implementation of the original tool (one MFACT process per traced
// rank, timestamps transmitted instead of payloads). Both produce
// identical results.
package mfact

import (
	"fmt"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// NetConfig is one what-if network configuration: dimensionless
// multipliers on the machine's base bandwidth, latency, and compute
// speed. {1,1,1} is the machine as configured.
type NetConfig struct {
	// BWScale multiplies the Hockney β (bandwidth). 0.5 = half speed.
	BWScale float64
	// LatScale multiplies the Hockney α (latency). 2 = twice as slow.
	LatScale float64
	// CompScale multiplies recorded compute durations. 0.5 = a 2×
	// faster processor.
	CompScale float64
}

// Baseline is the as-configured network configuration.
var Baseline = NetConfig{BWScale: 1, LatScale: 1, CompScale: 1}

// StandardSweep returns the configuration grid MFACT replays by
// default: the baseline plus bandwidth slow-downs/speed-ups of 2/4/8×
// and latency slow-downs/speed-ups of 2/4/8×. The sweep is what the
// classifier's sensitivity analysis reads. Index 0 is always the
// baseline.
func StandardSweep() []NetConfig {
	cfgs := []NetConfig{Baseline}
	for _, s := range []float64{0.125, 0.25, 0.5, 2, 4, 8} {
		cfgs = append(cfgs, NetConfig{BWScale: s, LatScale: 1, CompScale: 1})
	}
	for _, s := range []float64{0.125, 0.25, 0.5, 2, 4, 8} {
		cfgs = append(cfgs, NetConfig{BWScale: 1, LatScale: s, CompScale: 1})
	}
	return cfgs
}

// Counters are MFACT's four logical time counters for one network
// configuration, averaged over ranks. They attribute each rank's
// elapsed logical time to causes:
//
//	Wait       time blocked on peers beyond pure transfer cost
//	           (late senders, collective synchronization slack)
//	Bandwidth  byte-volume terms (bytes/β')
//	Latency    per-message latency and software-overhead terms
//	Compute    scaled computation intervals
type Counters struct {
	Wait, Bandwidth, Latency, Compute simtime.Time
}

// Result is the outcome of one MFACT replay over a configuration set.
type Result struct {
	// Configs echoes the replayed configurations; index 0 is the
	// baseline used by Total(), Comm(), and the classifier.
	Configs []NetConfig
	// Totals[k] is the predicted application time under Configs[k].
	Totals []simtime.Time
	// Comms[k] is the predicted communication time (average over
	// ranks) under Configs[k].
	Comms []simtime.Time
	// PerConfig[k] holds the four counters under Configs[k].
	PerConfig []Counters
	// Class is the application classification derived from the sweep.
	Class Class
	// Events is the number of trace events processed (the modeling
	// cost metric; compare simnet.Stats for the simulators).
	Events int
}

// Total returns the baseline predicted application time.
func (r *Result) Total() simtime.Time { return r.Totals[0] }

// Comm returns the baseline predicted communication time.
func (r *Result) Comm() simtime.Time { return r.Comms[0] }

// TotalAt returns the predicted total under the first configuration
// matching cfg, or -1 if the sweep does not contain it.
func (r *Result) TotalAt(cfg NetConfig) simtime.Time {
	for i, c := range r.Configs {
		if c == cfg {
			return r.Totals[i]
		}
	}
	return -1
}

// Model replays tr once with the sequential replayer over the given
// configurations (StandardSweep if nil) and classifies the
// application.
func Model(tr *trace.Trace, mach *machine.Config, configs []NetConfig) (*Result, error) {
	return run(tr, mach, configs, false, nil)
}

// ModelParallel is Model using the goroutine-per-rank replayer.
func ModelParallel(tr *trace.Trace, mach *machine.Config, configs []NetConfig) (*Result, error) {
	return run(tr, mach, configs, true, nil)
}

// ModelSource is Model over any trace representation (array-of-structs
// or columnar); by the determinism contract both replay bit-identically.
func ModelSource(src trace.Source, mach *machine.Config, configs []NetConfig) (*Result, error) {
	return run(src, mach, configs, false, nil)
}

// ModelParallelSource is ModelParallel over any trace representation.
func ModelParallelSource(src trace.Source, mach *machine.Config, configs []NetConfig) (*Result, error) {
	return run(src, mach, configs, true, nil)
}

// Session owns replay state reused across traces — the sequential
// replayer's clock-vector free list — so a campaign worker modeling
// hundreds of traces amortizes its per-trace allocations. Recycled
// vectors are fully overwritten before use, so session replays stay
// bit-identical to stateless ones. A Session is not safe for
// concurrent use.
type Session struct {
	pool vecPool
}

// NewSession returns an empty Session.
func NewSession() *Session { return &Session{} }

// Model is ModelSource drawing clock vectors from the session's free
// list.
func (s *Session) Model(src trace.Source, mach *machine.Config, configs []NetConfig) (*Result, error) {
	return run(src, mach, configs, false, &s.pool)
}

func run(src trace.Source, mach *machine.Config, configs []NetConfig, parallel bool, pool *vecPool) (*Result, error) {
	if configs == nil {
		configs = StandardSweep()
	}
	if len(configs) == 0 || configs[0] != Baseline {
		return nil, fmt.Errorf("mfact: configuration 0 must be the baseline {1,1,1}")
	}
	for i, c := range configs {
		if c.BWScale <= 0 || c.LatScale <= 0 || c.CompScale <= 0 {
			return nil, fmt.Errorf("mfact: config %d has non-positive scale %+v", i, c)
		}
	}
	if len(mach.NodeOf) < src.TraceMeta().NumRanks {
		return nil, fmt.Errorf("mfact: machine hosts %d ranks, trace has %d", len(mach.NodeOf), src.TraceMeta().NumRanks)
	}
	var st *state
	var err error
	if parallel {
		st, err = replayParallel(src, mach, configs)
	} else {
		st, err = replaySequential(src, mach, configs, pool)
	}
	if err != nil {
		return nil, err
	}
	res := st.result()
	res.Configs = configs
	res.Class = Classify(res)
	return res, nil
}
