package mfact

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

func testMach(t *testing.T, ranks int) *machine.Config {
	t.Helper()
	m, err := machine.Edison(ranks, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func build(t *testing.T, b *trace.Builder) *trace.Trace {
	t.Helper()
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestComputeOnlyPrediction(t *testing.T) {
	b := trace.NewBuilder(trace.Meta{App: "t", NumRanks: 4})
	for r := 0; r < 4; r++ {
		b.Compute(r, simtime.Time(r+1)*simtime.Millisecond)
	}
	tr := build(t, b)
	mach := testMach(t, 4)
	res, err := Model(tr, mach, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() != 4*simtime.Millisecond {
		t.Errorf("Total = %v, want 4ms", res.Total())
	}
	if res.Comm() != 0 {
		t.Errorf("Comm = %v, want 0", res.Comm())
	}
	if res.Class != ComputationBound {
		t.Errorf("Class = %v, want computation-bound", res.Class)
	}
	// All bandwidth configs must predict the same total.
	for k, total := range res.Totals {
		if total != res.Total() {
			t.Errorf("config %d (%+v): total %v differs", k, res.Configs[k], total)
		}
	}
}

func TestHockneyPingPrediction(t *testing.T) {
	b := trace.NewBuilder(trace.Meta{App: "t", NumRanks: 8})
	const bytes = 1 << 20
	b.Send(0, 7, 0, bytes, trace.CommWorld)
	b.Recv(7, 0, 0, bytes, trace.CommWorld)
	tr := build(t, b)
	mach := testMach(t, 8)
	res, err := Model(tr, mach, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Receiver completion: arrival = sendPost + o + α + b/β, plus the
	// receiver-side call overhead (injection overlaps the transfer).
	xfer := simtime.TransferTime(bytes, mach.Beta)
	want := 2*mach.MPIOverhead + mach.Alpha + xfer
	if got := res.Total(); got != want {
		t.Errorf("Total = %v, want %v", got, want)
	}
	if res.Comm() <= 0 {
		t.Error("Comm = 0, want > 0")
	}
}

func TestBandwidthScalingMonotone(t *testing.T) {
	b := trace.NewBuilder(trace.Meta{App: "t", NumRanks: 16})
	for r := 0; r < 16; r++ {
		b.Collective(r, trace.OpAlltoall, trace.CommWorld, 0, 1<<20)
	}
	tr := build(t, b)
	res, err := Model(tr, testMach(t, 16), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Totals must decrease (weakly) as BWScale increases.
	type pt struct {
		scale float64
		total simtime.Time
	}
	var pts []pt
	for k, c := range res.Configs {
		if c.LatScale == 1 && c.CompScale == 1 {
			pts = append(pts, pt{c.BWScale, res.Totals[k]})
		}
	}
	for i := range pts {
		for j := range pts {
			if pts[i].scale < pts[j].scale && pts[i].total < pts[j].total {
				t.Errorf("bw %gx total %v < bw %gx total %v (should be slower)",
					pts[i].scale, pts[i].total, pts[j].scale, pts[j].total)
			}
		}
	}
	if res.Class != BandwidthBound && res.Class != CommunicationBound {
		t.Errorf("alltoall-heavy app classified %v", res.Class)
	}
	if !res.CommSensitive() {
		t.Error("alltoall-heavy app not communication-sensitive")
	}
}

func TestLatencyBoundClassification(t *testing.T) {
	// Many tiny blocking ping-pongs: latency-dominated.
	b := trace.NewBuilder(trace.Meta{App: "t", NumRanks: 8})
	for i := 0; i < 400; i++ {
		b.Send(0, 7, 0, 8, trace.CommWorld)
		b.Recv(7, 0, 0, 8, trace.CommWorld)
		b.Send(7, 0, 1, 8, trace.CommWorld)
		b.Recv(0, 7, 1, 8, trace.CommWorld)
	}
	tr := build(t, b)
	res, err := Model(tr, testMach(t, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencySensitivity() <= SensitivityThreshold {
		t.Errorf("latency sensitivity = %v, want > 5%%", res.LatencySensitivity())
	}
	if res.Class != LatencyBound && res.Class != CommunicationBound {
		t.Errorf("Class = %v, want latency-bound", res.Class)
	}
}

func TestLoadImbalanceClassification(t *testing.T) {
	b := trace.NewBuilder(trace.Meta{App: "t", NumRanks: 8})
	for i := 0; i < 5; i++ {
		for r := 0; r < 8; r++ {
			d := simtime.Millisecond
			if r == 0 {
				d = 8 * simtime.Millisecond
			}
			b.Compute(r, d)
			b.Collective(r, trace.OpBarrier, trace.CommWorld, 0, 0)
		}
	}
	tr := build(t, b)
	res, err := Model(tr, testMach(t, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != LoadImbalanceBound {
		t.Errorf("Class = %v (waitFrac=%.3f bwSens=%.3f), want load-imbalance-bound",
			res.Class, res.WaitFraction(), res.BandwidthSensitivity())
	}
	if res.CommSensitive() {
		t.Error("imbalanced app flagged communication-sensitive")
	}
}

func TestSweepMatchesSingleConfigRuns(t *testing.T) {
	tr := randomMixedTrace(t, rand.New(rand.NewSource(7)), 12)
	mach := testMach(t, 12)
	sweep, err := Model(tr, mach, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, cfg := range sweep.Configs {
		if k%3 != 0 {
			continue // spot-check a third of the grid
		}
		solo, err := Model(tr, mach, []NetConfig{Baseline, cfg})
		if err != nil {
			t.Fatal(err)
		}
		if solo.Totals[1] != sweep.Totals[k] {
			t.Errorf("config %+v: solo total %v != sweep total %v", cfg, solo.Totals[1], sweep.Totals[k])
		}
	}
}

// randomMixedTrace builds a random valid trace exercising p2p,
// nonblocking ops, and collectives.
func randomMixedTrace(t *testing.T, rng *rand.Rand, n int) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder(trace.Meta{App: "rand", NumRanks: n})
	colls := []trace.Op{trace.OpBarrier, trace.OpBcast, trace.OpAllreduce, trace.OpAllgather, trace.OpAlltoall, trace.OpReduce}
	for step := 0; step < 12; step++ {
		switch rng.Intn(3) {
		case 0: // compute on all ranks
			for r := 0; r < n; r++ {
				b.Compute(r, simtime.Time(rng.Intn(1000))*simtime.Microsecond)
			}
		case 1: // random collective
			op := colls[rng.Intn(len(colls))]
			root := int32(rng.Intn(n))
			bytes := int64(rng.Intn(1 << 16))
			for r := 0; r < n; r++ {
				b.Collective(r, op, trace.CommWorld, root, bytes)
			}
		case 2: // neighbor exchange with nonblocking ops
			for r := 0; r < n; r++ {
				right := int32((r + 1) % n)
				left := int32((r - 1 + n) % n)
				rq := b.Irecv(r, left, int32(step), 4096, trace.CommWorld)
				sq := b.Isend(r, right, int32(step), 4096, trace.CommWorld)
				b.Waitall(r, rq, sq)
			}
		}
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestParallelMatchesSequentialProperty(t *testing.T) {
	mach := testMach(t, 12)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomMixedTrace(t, rng, 12)
		seq, err := Model(tr, mach, nil)
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}
		par, err := ModelParallel(tr, mach, nil)
		if err != nil {
			t.Fatalf("parallel: %v", err)
		}
		return reflect.DeepEqual(seq.Totals, par.Totals) &&
			reflect.DeepEqual(seq.Comms, par.Comms) &&
			reflect.DeepEqual(seq.PerConfig, par.PerConfig) &&
			seq.Class == par.Class
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEventsMatchTraceSize(t *testing.T) {
	tr := randomMixedTrace(t, rand.New(rand.NewSource(3)), 8)
	res, err := Model(tr, testMach(t, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != tr.NumEvents() {
		t.Errorf("Events = %d, want %d (one per trace event)", res.Events, tr.NumEvents())
	}
}

func TestSubCommunicatorCollectives(t *testing.T) {
	b := trace.NewBuilder(trace.Meta{App: "t", NumRanks: 8})
	sub := b.AddComm([]int32{0, 2, 4, 6})
	for _, r := range []int{0, 2, 4, 6} {
		b.Collective(r, trace.OpAllreduce, sub, 0, 4096)
	}
	for _, r := range []int{1, 3, 5, 7} {
		b.Compute(r, simtime.Millisecond)
	}
	tr := build(t, b)
	res, err := Model(tr, testMach(t, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() < simtime.Millisecond {
		t.Errorf("Total = %v, want ≥ 1ms", res.Total())
	}
}

func TestRejectsBadConfigs(t *testing.T) {
	b := trace.NewBuilder(trace.Meta{App: "t", NumRanks: 2})
	b.Compute(0, simtime.Millisecond)
	b.Compute(1, simtime.Millisecond)
	tr := build(t, b)
	mach := testMach(t, 2)
	if _, err := Model(tr, mach, []NetConfig{{BWScale: 2, LatScale: 1, CompScale: 1}}); err == nil {
		t.Error("non-baseline config 0 accepted")
	}
	if _, err := Model(tr, mach, []NetConfig{Baseline, {BWScale: -1, LatScale: 1, CompScale: 1}}); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestCollectiveCostShapes(t *testing.T) {
	// Barrier cost grows logarithmically; alltoall linearly.
	b8 := collectiveCost(trace.OpBarrier, 8, 0, 0)
	b64 := collectiveCost(trace.OpBarrier, 64, 0, 0)
	if b8.rounds != 3 || b64.rounds != 6 {
		t.Errorf("barrier rounds: %d, %d; want 3, 6", b8.rounds, b64.rounds)
	}
	a8 := collectiveCost(trace.OpAlltoall, 8, 1<<20, 0)
	a64 := collectiveCost(trace.OpAlltoall, 64, 1<<20, 0)
	if a8.rounds != 7 || a64.rounds != 63 {
		t.Errorf("pairwise alltoall rounds: %d, %d", a8.rounds, a64.rounds)
	}
	// Small alltoall switches to Bruck: log rounds.
	s64 := collectiveCost(trace.OpAlltoall, 64, 64, 0)
	if s64.rounds != 6 {
		t.Errorf("bruck rounds = %d, want 6", s64.rounds)
	}
	// Bruck total bytes = b × Σ_k blocks(k) = b × (n/2)·log2(n) for pow2.
	if want := int64(64 * 32 * 6); s64.bytes != want {
		t.Errorf("bruck bytes = %d, want %d", s64.bytes, want)
	}
	// Allreduce non-power-of-two pays the fold.
	r16 := collectiveCost(trace.OpAllreduce, 16, 1024, 0)
	r17 := collectiveCost(trace.OpAllreduce, 17, 1024, 0)
	if r17.rounds != r16.rounds+2 {
		t.Errorf("allreduce rounds 16→%d, 17→%d; want +2 fold", r16.rounds, r17.rounds)
	}
	// Single-member collectives are free.
	if c := collectiveCost(trace.OpAllreduce, 1, 1024, 0); c.rounds != 0 || c.bytes != 0 {
		t.Errorf("n=1 cost = %+v", c)
	}
}

func TestClassStrings(t *testing.T) {
	for c := ComputationBound; c <= CommunicationBound; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty name", c)
		}
	}
}

func TestModelingFasterThanTraceGrowth(t *testing.T) {
	// Sanity: modeling cost is linear in events — a 2× trace runs ~2×
	// events, not more.
	rng := rand.New(rand.NewSource(11))
	tr1 := randomMixedTrace(t, rng, 8)
	res1, err := Model(tr1, testMach(t, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Events != tr1.NumEvents() {
		t.Errorf("events %d != trace events %d", res1.Events, tr1.NumEvents())
	}
}
