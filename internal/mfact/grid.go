package mfact

import (
	"fmt"
	"strings"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// Grid is a two-dimensional what-if sweep: predicted application time
// for every (bandwidth scale, latency scale) combination, from one
// replay. This is the "predict performance on numerous network
// configurations from a single trace replay" capability the MFACT
// paper demonstrates, in its most tabular form.
type Grid struct {
	// BWScales and LatScales are the axes.
	BWScales, LatScales []float64
	// Totals[i][j] is the predicted total under BWScales[i] and
	// LatScales[j].
	Totals [][]simtime.Time
	// Class is the application classification from the same replay.
	Class Class
}

// GridSweep replays tr once over the full bw × lat cross product.
// Nil axes default to {1/4, 1/2, 1, 2, 4}.
func GridSweep(tr *trace.Trace, mach *machine.Config, bwScales, latScales []float64) (*Grid, error) {
	if bwScales == nil {
		bwScales = []float64{0.25, 0.5, 1, 2, 4}
	}
	if latScales == nil {
		latScales = []float64{0.25, 0.5, 1, 2, 4}
	}
	cfgs := []NetConfig{Baseline}
	for _, bw := range bwScales {
		for _, lat := range latScales {
			cfgs = append(cfgs, NetConfig{BWScale: bw, LatScale: lat, CompScale: 1})
		}
	}
	res, err := Model(tr, mach, cfgs)
	if err != nil {
		return nil, err
	}
	g := &Grid{
		BWScales:  append([]float64(nil), bwScales...),
		LatScales: append([]float64(nil), latScales...),
		Class:     res.Class,
	}
	k := 1
	g.Totals = make([][]simtime.Time, len(bwScales))
	for i := range bwScales {
		g.Totals[i] = make([]simtime.Time, len(latScales))
		for j := range latScales {
			g.Totals[i][j] = res.Totals[k]
			k++
		}
	}
	return g, nil
}

// At returns the predicted total for the given scales, or -1 when the
// combination is not on the grid.
func (g *Grid) At(bw, lat float64) simtime.Time {
	for i, b := range g.BWScales {
		if b != bw {
			continue
		}
		for j, l := range g.LatScales {
			if l == lat {
				return g.Totals[i][j]
			}
		}
	}
	return -1
}

// Render formats the grid as a table (rows: bandwidth scale; columns:
// latency scale).
func (g *Grid) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "predicted total time by network configuration (%v)\n", g.Class)
	fmt.Fprintf(&b, "%-8s", "bw\\lat")
	for _, l := range g.LatScales {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("×%g", l))
	}
	b.WriteByte('\n')
	for i, bw := range g.BWScales {
		fmt.Fprintf(&b, "%-8s", fmt.Sprintf("×%g", bw))
		for j := range g.LatScales {
			fmt.Fprintf(&b, " %10v", g.Totals[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
