package mfact

import (
	"fmt"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/mpisim"
	"hpctradeoff/internal/simnet"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// Calibration fits the Hockney parameters the way the real MFACT gets
// them: run ping-pong benchmarks on the target system (here: on its
// detailed simulator) over a range of message sizes and least-squares
// fit one-way time ≈ α + bytes/β. This closes the loop between the
// machine's configured (α, β) and what the simulators actually deliver
// at zero load.

// Calibration holds fitted Hockney parameters.
type Calibration struct {
	// Alpha is the fitted zero-size one-way latency.
	Alpha simtime.Time
	// Beta is the fitted asymptotic bandwidth in bytes/s.
	Beta float64
	// Samples holds the (bytes, one-way time) measurements the fit used.
	Samples []CalSample
}

// CalSample is one ping-pong measurement.
type CalSample struct {
	Bytes  int64
	OneWay simtime.Time
}

// Calibrate measures ping-pong times between the two most distant
// ranks of a small job on the machine, using the given simulation
// model, and fits (α, β). sizes defaults to a 64 B – 1 MiB sweep.
func Calibrate(mach *machine.Config, model simnet.Model, sizes []int64) (*Calibration, error) {
	if len(mach.NodeOf) < 2 {
		return nil, fmt.Errorf("mfact: calibration needs ≥ 2 ranks")
	}
	if sizes == nil {
		sizes = []int64{64, 256, 1024, 4096, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	}
	cal := &Calibration{}
	peer := int32(len(mach.NodeOf) - 1)
	for _, sz := range sizes {
		// Build a one-round ping-pong trace and replay it; the one-way
		// time is half the round trip.
		b := trace.NewBuilder(trace.Meta{App: "pingpong", NumRanks: len(mach.NodeOf)})
		const rounds = 4
		for i := 0; i < rounds; i++ {
			b.Send(0, peer, int32(i), sz, trace.CommWorld)
			b.Recv(int(peer), 0, int32(i), sz, trace.CommWorld)
			b.Send(int(peer), 0, int32(1000+i), sz, trace.CommWorld)
			b.Recv(0, peer, int32(1000+i), sz, trace.CommWorld)
		}
		tr, err := b.Build()
		if err != nil {
			return nil, err
		}
		res, err := mpisim.Replay(tr, model, mach, simnet.Config{}, mpisim.Options{})
		if err != nil {
			return nil, err
		}
		oneWay := res.Total / (2 * rounds)
		cal.Samples = append(cal.Samples, CalSample{Bytes: sz, OneWay: oneWay})
	}

	// Two-regime fit, the standard ping-pong methodology: β from the
	// slope between the two largest sizes (per-hop pipeline fill and
	// protocol switches cancel in the difference), α from the smallest
	// sizes after subtracting the transfer term.
	if len(cal.Samples) < 3 {
		return nil, fmt.Errorf("mfact: calibration needs ≥ 3 sizes")
	}
	a := cal.Samples[len(cal.Samples)-2]
	bS := cal.Samples[len(cal.Samples)-1]
	dt := (bS.OneWay - a.OneWay).Seconds()
	ds := float64(bS.Bytes - a.Bytes)
	if dt <= 0 || ds <= 0 {
		return nil, fmt.Errorf("mfact: calibration sweep not monotone")
	}
	beta := ds / dt
	var alphaSum float64
	nSmall := 0
	for _, s := range cal.Samples[:2] {
		alphaSum += s.OneWay.Seconds() - float64(s.Bytes)/beta
		nSmall++
	}
	alpha := alphaSum / float64(nSmall)
	if alpha <= 0 {
		return nil, fmt.Errorf("mfact: calibration fit non-physical (α=%g s)", alpha)
	}
	cal.Alpha = simtime.FromSeconds(alpha)
	cal.Beta = beta
	return cal, nil
}

// Apply returns a copy of mach with the fitted Hockney parameters, for
// modeling with calibrated rather than data-sheet numbers.
func (c *Calibration) Apply(mach *machine.Config) *machine.Config {
	out := *mach
	out.Alpha = c.Alpha
	out.Beta = c.Beta
	return &out
}
