package mfact

import (
	"fmt"
	"math/rand"
	"testing"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// benchTrace builds a mid-sized mixed trace (stencil + collectives +
// nonblocking p2p) for replayer benchmarks.
func benchTraceN(b *testing.B, ranks, steps int) *trace.Trace {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	bld := trace.NewBuilder(trace.Meta{App: "bench", NumRanks: ranks})
	for s := 0; s < steps; s++ {
		for r := 0; r < ranks; r++ {
			bld.Compute(r, simtime.Time(100+rng.Intn(50))*simtime.Microsecond)
		}
		for r := 0; r < ranks; r++ {
			right := int32((r + 1) % ranks)
			left := int32((r - 1 + ranks) % ranks)
			rq := bld.Irecv(r, left, int32(s), 8192, trace.CommWorld)
			sq := bld.Isend(r, right, int32(s), 8192, trace.CommWorld)
			bld.Waitall(r, rq, sq)
		}
		for r := 0; r < ranks; r++ {
			bld.Collective(r, trace.OpAllreduce, trace.CommWorld, 0, 64)
		}
	}
	tr, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func benchMach(b *testing.B, ranks int) *machine.Config {
	b.Helper()
	m, err := machine.Hopper(ranks, 0)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkReplaySequential vs BenchmarkReplayParallel: the ablation
// between the deterministic dataflow replayer and the goroutine-per-
// rank replayer (the original MFACT's MPI structure).
func BenchmarkReplaySequential(b *testing.B) {
	tr := benchTraceN(b, 64, 30)
	mach := benchMach(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Model(tr, mach, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.NumEvents()), "events/replay")
}

func BenchmarkReplayParallel(b *testing.B) {
	tr := benchTraceN(b, 64, 30)
	mach := benchMach(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ModelParallel(tr, mach, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepWidth shows the payoff of MFACT's multi-configuration
// single-pass replay: K configurations cost far less than K replays.
func BenchmarkSweepWidth(b *testing.B) {
	tr := benchTraceN(b, 64, 30)
	mach := benchMach(b, 64)
	for _, k := range []int{1, 4, 13, 26} {
		cfgs := []NetConfig{Baseline}
		for len(cfgs) < k {
			cfgs = append(cfgs, NetConfig{
				BWScale: 1 + float64(len(cfgs))*0.25, LatScale: 1, CompScale: 1,
			})
		}
		b.Run(fmt.Sprintf("configs=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Model(tr, mach, cfgs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnePassVsPerConfig is the direct ablation: one 13-config
// pass against 13 single-config passes.
func BenchmarkOnePassVsPerConfig(b *testing.B) {
	tr := benchTraceN(b, 64, 30)
	mach := benchMach(b, 64)
	sweep := StandardSweep()
	b.Run("one-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Model(tr, mach, sweep); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-config", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, cfg := range sweep[1:] {
				if _, err := Model(tr, mach, []NetConfig{Baseline, cfg}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
