package mfact

import (
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// state holds the logical clocks and counters of a replay in progress.
// Rank r's rows are touched only by the code replaying rank r, so the
// parallel replayer shares one state without locking.
type state struct {
	cm *costModel
	K  int
	// clocks[r][k] is rank r's logical clock under config k.
	clocks [][]simtime.Time
	// cnt[r][k] are rank r's counters under config k.
	cnt [][]Counters
	// comm[r][k] is rank r's accumulated communication time.
	comm   [][]simtime.Time
	events []int // per-rank event counts (summed at the end)
}

func newState(n int, cm *costModel) *state {
	st := &state{
		cm: cm, K: cm.K,
		clocks: make([][]simtime.Time, n),
		cnt:    make([][]Counters, n),
		comm:   make([][]simtime.Time, n),
		events: make([]int, n),
	}
	for r := 0; r < n; r++ {
		st.clocks[r] = make([]simtime.Time, cm.K)
		st.cnt[r] = make([]Counters, cm.K)
		st.comm[r] = make([]simtime.Time, cm.K)
	}
	return st
}

// snapshot copies rank r's clock vector (for transmitting as a
// logical timestamp).
func (st *state) snapshot(r int32) []simtime.Time {
	out := make([]simtime.Time, st.K)
	copy(out, st.clocks[r])
	return out
}

// applyCompute advances rank r by a scaled computation interval.
func (st *state) applyCompute(r int32, dur simtime.Time) {
	st.events[r]++
	for k := 0; k < st.K; k++ {
		d := dur.Scale(st.cm.comp[k])
		st.clocks[r][k] += d
		st.cnt[r][k].Compute += d
	}
}

// applySend advances rank r past a send. A blocking send occupies the
// sender for the call overhead plus the wire serialization (the
// Hockney o + b/β); a nonblocking send only pays the call overhead —
// its injection overlaps with whatever follows, which is the point of
// MPI_Isend and what the simulators' concurrent NIC reproduces.
func (st *state) applySend(r int32, bytes int64, blocking bool) {
	st.events[r]++
	o := st.cm.overhead
	for k := 0; k < st.K; k++ {
		d := o
		if blocking {
			b := st.cm.xfer(k, bytes)
			d += b
			st.cnt[r][k].Bandwidth += b
		}
		st.clocks[r][k] += d
		st.cnt[r][k].Latency += o
		st.comm[r][k] += d
	}
}

// applyRecvArrival completes a blocking receive on rank r whose
// matched message arrives at the given vector (arrival = sender post +
// o + α' + bytes/β', see recvArrival). The receive completes at
// max(own, arrival) + o; wait is charged for sender lateness.
func (st *state) applyRecvArrival(r int32, arrival []simtime.Time, bytes int64) {
	st.events[r]++
	o := st.cm.overhead
	for k := 0; k < st.K; k++ {
		entry := st.clocks[r][k]
		b := st.cm.xfer(k, bytes)
		end := simtime.Max(entry, arrival[k]) + o
		st.clocks[r][k] = end
		st.cnt[r][k].Latency += st.cm.alpha[k] + o
		st.cnt[r][k].Bandwidth += b
		// Sender post = arrival − (o + α' + transfer); positive excess
		// over our entry is wait.
		if late := arrival[k] - (o + st.cm.alpha[k] + b) - entry; late > 0 {
			st.cnt[r][k].Wait += late
		}
		st.comm[r][k] += end - entry
	}
}

// applyCall advances rank r past a zero-communication MPI call
// (irecv posting, wait that found everything complete).
func (st *state) applyCall(r int32) {
	st.events[r]++
	o := st.cm.overhead
	for k := 0; k < st.K; k++ {
		st.clocks[r][k] += o
		st.cnt[r][k].Latency += o
		st.comm[r][k] += o
	}
}

// applyWait completes a wait whose request arrivals are the element-wise
// maxima in arrivals (nil means all requests were locally complete).
func (st *state) applyWait(r int32, arrivals []simtime.Time) {
	st.events[r]++
	o := st.cm.overhead
	for k := 0; k < st.K; k++ {
		entry := st.clocks[r][k]
		end := entry + o
		if arrivals != nil && arrivals[k]+o > end {
			end = arrivals[k] + o
			st.cnt[r][k].Wait += arrivals[k] - entry
		}
		st.clocks[r][k] = end
		st.cnt[r][k].Latency += o
		st.comm[r][k] += end - entry
	}
}

// accumulateArrival element-wise maxes an arrival vector into acc,
// returning acc (allocating it on first use).
func accumulateArrival(acc, arrival []simtime.Time) []simtime.Time {
	if arrival == nil {
		return acc
	}
	if acc == nil {
		acc = make([]simtime.Time, len(arrival))
		copy(acc, arrival)
		return acc
	}
	for k := range acc {
		acc[k] = simtime.Max(acc[k], arrival[k])
	}
	return acc
}

// applyCollective completes a collective on rank r.
//
//   - Non-rooted ops (barrier, allreduce, allgather, alltoall(v),
//     reducescatter) synchronize: completion = maxEntry + cost.
//   - Bcast/scatter: data flows from the root;
//     completion = max(ownEntry + o, rootEntry + cost).
//   - Reduce/gather: the root absorbs everyone (completion = maxEntry +
//     cost); non-roots only pay their own leaf send.
func (st *state) applyCollective(r int32, e *trace.Event, n int, isRoot bool, maxEntry, rootEntry []simtime.Time) {
	st.events[r]++
	o := st.cm.overhead
	var sendTotal int64
	if e.Op == trace.OpAlltoallv {
		for _, b := range e.SendBytes {
			sendTotal += b
		}
	}
	cc := collectiveCost(e.Op, n, e.Bytes, sendTotal)
	for k := 0; k < st.K; k++ {
		entry := st.clocks[r][k]
		// Each algorithm round costs one message latency plus the
		// software cost of a nonblocking exchange (the posts; the wait
		// overlaps the partner's round) — the 2o term calibrates the
		// model to the MPI implementation the simulators replay.
		lat := simtime.Time(cc.posts)*2*o + simtime.Time(cc.rounds)*(2*o+st.cm.alpha[k])
		bw := st.cm.xfer(k, cc.bytes)
		cost := o + lat + bw
		var end simtime.Time
		var waitBase simtime.Time
		switch {
		case e.Op == trace.OpBcast || e.Op == trace.OpScatter:
			end = simtime.Max(entry+o, rootEntry[k]+cost)
			waitBase = rootEntry[k]
		case (e.Op == trace.OpReduce || e.Op == trace.OpGather) && !isRoot:
			// Leaf cost: one send up the tree.
			end = entry + o + st.cm.alpha[k] + st.cm.xfer(k, e.Bytes)
			waitBase = entry
		default:
			end = maxEntry[k] + cost
			waitBase = maxEntry[k]
		}
		if end < entry+o {
			end = entry + o
		}
		st.clocks[r][k] = end
		st.cnt[r][k].Latency += o + lat
		st.cnt[r][k].Bandwidth += bw
		if late := waitBase - entry; late > 0 {
			st.cnt[r][k].Wait += late
		}
		st.comm[r][k] += end - entry
	}
}

// result aggregates the per-rank state into a Result (Class left for
// the caller).
func (st *state) result() *Result {
	n := len(st.clocks)
	res := &Result{
		Totals:    make([]simtime.Time, st.K),
		Comms:     make([]simtime.Time, st.K),
		PerConfig: make([]Counters, st.K),
	}
	for k := 0; k < st.K; k++ {
		var total, comm simtime.Time
		var c Counters
		for r := 0; r < n; r++ {
			total = simtime.Max(total, st.clocks[r][k])
			comm += st.comm[r][k]
			c.Wait += st.cnt[r][k].Wait
			c.Bandwidth += st.cnt[r][k].Bandwidth
			c.Latency += st.cnt[r][k].Latency
			c.Compute += st.cnt[r][k].Compute
		}
		d := simtime.Time(max(1, n))
		res.Totals[k] = total
		res.Comms[k] = comm / d
		res.PerConfig[k] = Counters{
			Wait:      c.Wait / d,
			Bandwidth: c.Bandwidth / d,
			Latency:   c.Latency / d,
			Compute:   c.Compute / d,
		}
	}
	for _, e := range st.events {
		res.Events += e
	}
	return res
}
