package mfact

import (
	"testing"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simnet"
)

func TestCalibrateRecoversMachineParameters(t *testing.T) {
	for _, name := range machine.Names() {
		mach, err := machine.New(name, 48, 0)
		if err != nil {
			t.Fatal(err)
		}
		cal, err := Calibrate(mach, simnet.PacketFlow, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The fitted α includes the MPI software overheads the replay
		// charges on top of the wire latency, so expect α ≤ fitted ≤ 4α.
		if cal.Alpha < mach.Alpha.Scale(0.5) || cal.Alpha > mach.Alpha.Scale(4) {
			t.Errorf("%s: fitted α = %v, configured %v", name, cal.Alpha, mach.Alpha)
		}
		// Fitted bandwidth should be within a factor ~2 of the link rate
		// (per-hop pipelining and packet quantization cost some).
		if cal.Beta < 0.4*mach.Beta || cal.Beta > 1.6*mach.Beta {
			t.Errorf("%s: fitted β = %.3g, configured %.3g", name, cal.Beta, mach.Beta)
		}
		if len(cal.Samples) == 0 {
			t.Error("no samples recorded")
		}
		// Monotone one-way times in message size.
		for i := 1; i < len(cal.Samples); i++ {
			if cal.Samples[i].OneWay < cal.Samples[i-1].OneWay {
				t.Errorf("%s: one-way time not monotone at %d bytes", name, cal.Samples[i].Bytes)
			}
		}
	}
}

func TestCalibrationApply(t *testing.T) {
	mach, err := machine.Edison(48, 0)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(mach, simnet.PacketFlow, []int64{64, 4096, 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	tuned := cal.Apply(mach)
	if tuned.Alpha != cal.Alpha || tuned.Beta != cal.Beta {
		t.Error("Apply did not install fitted parameters")
	}
	if mach.Alpha == tuned.Alpha && mach.Beta == tuned.Beta {
		t.Log("fitted parameters happen to equal configured ones (fine)")
	}
	// The original config must be untouched.
	if mach.Topo != tuned.Topo {
		t.Error("Apply should share the topology")
	}
}

func TestCalibrateErrors(t *testing.T) {
	mach, err := machine.Edison(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Calibrate(mach, simnet.PacketFlow, nil); err == nil {
		t.Error("single-rank calibration accepted")
	}
}
