package mfact

import (
	"fmt"
	"sync"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// The parallel replayer mirrors the original MFACT implementation: one
// worker per traced rank (an MPI process there, a goroutine here), with
// logical-clock vectors transmitted instead of message payloads.
// Matching follows the same per-channel FIFO discipline as the
// sequential replayer — receive claims are made in posting order — so
// both replayers produce bit-identical results.

// mailbox is one rank's incoming logical-timestamp store.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[chanKey][]seqSend
}

func newMailbox() *mailbox {
	m := &mailbox{queues: make(map[chanKey][]seqSend)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) post(k chanKey, s seqSend) {
	m.mu.Lock()
	m.queues[k] = append(m.queues[k], s)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// receive blocks until a message is available on channel k.
func (m *mailbox) receive(k chanKey) seqSend {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queues[k]) == 0 {
		m.cond.Wait()
	}
	q := m.queues[k]
	s := q[0]
	m.queues[k] = q[1:]
	return s
}

// parColl is one collective instance's rendezvous point.
type parColl struct {
	mu        sync.Mutex
	cond      *sync.Cond
	arrived   int
	n         int
	maxEntry  []simtime.Time
	rootEntry []simtime.Time
	done      bool
}

// collTable hands out collective instances keyed by (comm, sequence).
type collTable struct {
	mu    sync.Mutex
	insts map[collKey]*parColl
}

func (ct *collTable) get(k collKey, n int) *parColl {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	inst := ct.insts[k]
	if inst == nil {
		inst = &parColl{n: n}
		inst.cond = sync.NewCond(&inst.mu)
		ct.insts[k] = inst
	}
	return inst
}

// claim is a receive posted but not yet matched (parallel replayer).
type parClaim struct {
	key   chanKey
	bytes int64
	// arrival is filled when the claim is matched.
	arrival []simtime.Time
}

func replayParallel(src trace.Source, mach *machine.Config, configs []NetConfig) (*state, error) {
	// The parallel replayer blocks goroutines on real condition
	// variables, so structurally invalid traces would hang rather than
	// fail; validate first. Both trace representations expose Validate.
	if v, ok := src.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	st := newState(src.TraceMeta().NumRanks, newCostModel(mach, configs))
	n := src.TraceMeta().NumRanks
	boxes := make([]*mailbox, n)
	for r := range boxes {
		boxes[r] = newMailbox()
	}
	colls := &collTable{insts: make(map[collKey]*parColl)}

	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rid int32) {
			defer wg.Done()
			errs[rid] = replayRank(st, src, rid, boxes, colls)
		}(int32(r))
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mfact: rank %d: %w", r, err)
		}
	}
	return st, nil
}

func replayRank(st *state, src trace.Source, rid int32, boxes []*mailbox, colls *collTable) error {
	// claims[k] holds this rank's unmatched receives on channel k, in
	// posting order; they must be resolved FIFO.
	claims := make(map[chanKey][]*parClaim)
	reqs := make(map[int32]*parClaim)
	comms := src.TraceComms()
	collSeq := make([]int, comms.Len())
	myBox := boxes[rid]

	// resolveUntil matches queued claims on k (in order) until the
	// given claim is filled, blocking for messages as needed.
	resolveUntil := func(k chanKey, target *parClaim) {
		for target.arrival == nil {
			q := claims[k]
			c := q[0]
			claims[k] = q[1:]
			s := myBox.receive(k)
			c.arrival = recvArrival(st, s.post, c.bytes)
		}
	}

	var ev trace.Event
	m := src.RankLen(int(rid))
	for i := 0; i < m; i++ {
		src.EventAt(int(rid), i, &ev)
		e := &ev
		switch e.Op {
		case trace.OpCompute:
			st.applyCompute(rid, e.Duration())

		case trace.OpSend, trace.OpIsend:
			post := st.snapshot(rid)
			k := chanKey{src: rid, dst: e.Peer, tag: e.Tag, comm: e.Comm}
			boxes[e.Peer].post(k, seqSend{post: post, bytes: e.Bytes})
			st.applySend(rid, e.Bytes, e.Op == trace.OpSend)
			if e.Op == trace.OpIsend {
				reqs[e.Req] = &parClaim{arrival: st.snapshot(rid)}
			}

		case trace.OpRecv:
			k := chanKey{src: e.Peer, dst: rid, tag: e.Tag, comm: e.Comm}
			c := &parClaim{key: k, bytes: e.Bytes}
			claims[k] = append(claims[k], c)
			resolveUntil(k, c)
			st.applyRecvArrival(rid, c.arrival, e.Bytes)

		case trace.OpIrecv:
			k := chanKey{src: e.Peer, dst: rid, tag: e.Tag, comm: e.Comm}
			c := &parClaim{key: k, bytes: e.Bytes}
			claims[k] = append(claims[k], c)
			reqs[e.Req] = c
			st.applyCall(rid)

		case trace.OpWait, trace.OpWaitall:
			ids := e.Reqs
			if e.Op == trace.OpWait {
				ids = []int32{e.Req}
			}
			var acc []simtime.Time
			for _, id := range ids {
				c := reqs[id]
				if c == nil {
					return fmt.Errorf("wait on unknown request %d", id)
				}
				if c.arrival == nil {
					resolveUntil(c.key, c)
				}
				acc = accumulateArrival(acc, c.arrival)
				delete(reqs, id)
			}
			st.applyWait(rid, acc)

		default:
			if !e.Op.IsCollective() {
				return fmt.Errorf("event %d: unsupported op %v", i, e.Op)
			}
			nMembers := comms.Size(e.Comm)
			if nMembers <= 1 {
				st.applyCall(rid)
				continue
			}
			seq := collSeq[e.Comm]
			collSeq[e.Comm]++
			inst := colls.get(collKey{e.Comm, seq}, nMembers)
			entry := st.snapshot(rid)
			inst.mu.Lock()
			inst.maxEntry = accumulateArrival(inst.maxEntry, entry)
			if e.Op.IsRooted() && rid == e.Root {
				inst.rootEntry = entry
			}
			inst.arrived++
			if inst.arrived == inst.n {
				inst.done = true
				inst.cond.Broadcast()
			}
			for !inst.done {
				inst.cond.Wait()
			}
			maxEntry, rootEntry := inst.maxEntry, inst.rootEntry
			inst.mu.Unlock()
			st.applyCollective(rid, e, nMembers, e.Op.IsRooted() && rid == e.Root, maxEntry, rootEntry)
		}
	}
	return nil
}
