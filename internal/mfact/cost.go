package mfact

import (
	"math/bits"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// costModel precomputes, per network configuration, the Hockney
// parameters α' = α·LatScale and 1/β' = 1/(β·BWScale), plus the
// per-call software overhead o (unscaled: it is a host property).
type costModel struct {
	K        int
	alpha    []simtime.Time // α' per config
	invBeta  []float64      // seconds per byte per config
	comp     []float64      // compute duration multiplier per config
	overhead simtime.Time
}

func newCostModel(mach *machine.Config, configs []NetConfig) *costModel {
	cm := &costModel{
		K:        len(configs),
		alpha:    make([]simtime.Time, len(configs)),
		invBeta:  make([]float64, len(configs)),
		comp:     make([]float64, len(configs)),
		overhead: mach.MPIOverhead,
	}
	for k, c := range configs {
		cm.alpha[k] = mach.Alpha.Scale(c.LatScale)
		cm.invBeta[k] = 1 / (mach.Beta * c.BWScale)
		cm.comp[k] = c.CompScale
	}
	return cm
}

// xfer returns the serialization time of bytes under config k.
func (cm *costModel) xfer(k int, bytes int64) simtime.Time {
	return simtime.FromSeconds(float64(bytes) * cm.invBeta[k])
}

// collCost is the closed-form critical-path cost of one collective
// under the Thakur & Gropp algorithm suite (matching the algorithms
// internal/mpisim lowers to): posting software costs, sequential
// message-latency rounds, and a byte volume.
type collCost struct {
	posts  int   // nonblocking postings off the critical rounds, 2o each
	rounds int   // each costs 2o + α' (post, post; waits overlap)
	bytes  int64 // divided by β'
}

// log2ceil returns ceil(log2(n)) for n ≥ 1.
func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// collectiveCost returns the critical-path cost of op over an
// n-member communicator with per-member payload b. sendTotal is the
// caller's total alltoallv send volume (ignored for other ops).
func collectiveCost(op trace.Op, n int, b int64, sendTotal int64) collCost {
	if n <= 1 {
		return collCost{}
	}
	lg := log2ceil(n)
	switch op {
	case trace.OpBarrier:
		return collCost{rounds: lg}
	case trace.OpBcast, trace.OpReduce:
		return collCost{rounds: lg, bytes: int64(lg) * b}
	case trace.OpAllreduce:
		pof2 := 1 << (bits.Len(uint(n)) - 1)
		if pof2 > n {
			pof2 >>= 1
		}
		rounds := log2ceil(pof2)
		if n != pof2 {
			rounds += 2 // fold and unfold
		}
		return collCost{rounds: rounds, bytes: int64(rounds) * b}
	case trace.OpGather, trace.OpScatter:
		// Binomial tree; the root's serialization of (n-1) blocks
		// dominates the byte term.
		return collCost{rounds: lg, bytes: int64(n-1) * b}
	case trace.OpAllgather, trace.OpReduceScatter:
		// Ring / pairwise: n-1 rounds of one block each.
		return collCost{rounds: n - 1, bytes: int64(n-1) * b}
	case trace.OpAlltoall:
		switch {
		case b <= bruckThresholdModel:
			// Bruck: ceil(log2 n) rounds; round k ships the blocks
			// whose offset has bit k set.
			var total int64
			for k := 1; k < n; k <<= 1 {
				blocks := 0
				for j := 1; j < n; j++ {
					if j&k != 0 {
						blocks++
					}
				}
				total += int64(blocks) * b
			}
			return collCost{rounds: lg, bytes: total}
		case b <= scatteredThresholdModel:
			// Scattered storm: n-1 postings, one latency, overlapped
			// transfers.
			return collCost{posts: n - 1, rounds: 1, bytes: int64(n-1) * b}
		default:
			return collCost{rounds: n - 1, bytes: int64(n-1) * b}
		}
	case trace.OpAlltoallv:
		if n > 1 && sendTotal/int64(n-1) <= scatteredThresholdModel {
			return collCost{posts: n - 1, rounds: 1, bytes: sendTotal}
		}
		return collCost{rounds: n - 1, bytes: sendTotal}
	}
	return collCost{}
}

// bruckThresholdModel and scatteredThresholdModel mirror mpisim's
// payload-based algorithm switches so model and simulation cost the
// same algorithm.
const (
	bruckThresholdModel     = 256
	scatteredThresholdModel = 32 << 10
)
