package mfact

import (
	"fmt"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// The sequential replayer executes the trace as a dataflow: each rank
// runs until it blocks on an unmatched receive, an incomplete wait, or
// a collective whose members have not all arrived; matching events wake
// blocked ranks through a worklist. The result is deterministic and
// identical to the parallel replayer's.
//
// Clock vectors ([]simtime.Time of length K) are the replayer's only
// per-event allocation, so the sequential path recycles them through a
// free list: a vector is released once its reader has consumed it and
// reallocated fully overwritten (snapshot copies, recvArrivalInto
// writes every element), keeping values bit-identical to the
// allocate-always parallel replayer. The parallel replayer cannot share
// the list (its ranks run concurrently) and keeps allocating.

type chanKey struct {
	src, dst, tag int32
	comm          trace.CommID
}

// seqPending is a receive awaiting its matching send.
type seqPending struct {
	rank     int32
	sendPost []simtime.Time // filled by the matching send
	bytes    int64
	filled   bool
	req      int32 // NoReq for blocking receives
}

type seqChannel struct {
	sends   []seqSend
	waiters []*seqPending
}

type seqSend struct {
	post  []simtime.Time
	bytes int64
}

// seqReq tracks one nonblocking request's completion.
type seqReq struct {
	// arrival is the request's completion clock vector; nil until the
	// match happens (recv) — send requests are filled at post.
	arrival []simtime.Time
	pending *seqPending // for recv requests still awaiting a send
}

type seqRank struct {
	id          int32
	pc          int
	reqs        map[int32]*seqReq
	recvBuf     *seqPending // pending blocking receive
	waitingColl *seqColl    // collective this rank has arrived at
	collSeq     []int       // per-comm collective sequence numbers
	queued      bool
	done        bool
}

type collKey struct {
	comm trace.CommID
	seq  int
}

type seqColl struct {
	arrived   int
	applied   int
	n         int
	maxEntry  []simtime.Time
	rootEntry []simtime.Time
	members   []int32 // blocked members to wake
	complete  bool
}

// vecPool recycles clock vectors of length K. Vectors handed out are
// NOT zeroed; every producer fully overwrites them.
type vecPool struct {
	free [][]simtime.Time
	k    int
}

func (p *vecPool) get() []simtime.Time {
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free = p.free[:n-1]
		return v
	}
	return make([]simtime.Time, p.k)
}

func (p *vecPool) put(v []simtime.Time) {
	if v != nil {
		p.free = append(p.free, v)
	}
}

func replaySequential(src trace.Source, mach *machine.Config, configs []NetConfig, pool *vecPool) (*state, error) {
	st := newState(src.TraceMeta().NumRanks, newCostModel(mach, configs))
	comms := src.TraceComms()
	n := src.TraceMeta().NumRanks
	if pool == nil {
		pool = &vecPool{}
	}
	if pool.k != st.K {
		// Recycled vectors have the wrong length for this sweep; drop
		// them and let get() mint fresh ones.
		pool.free = pool.free[:0]
		pool.k = st.K
	}
	ranks := make([]*seqRank, n)
	for r := 0; r < n; r++ {
		ranks[r] = &seqRank{
			id:      int32(r),
			reqs:    make(map[int32]*seqReq),
			collSeq: make([]int, comms.Len()),
		}
	}
	chans := make(map[chanKey]*seqChannel)
	colls := make(map[collKey]*seqColl)

	work := make([]int32, 0, n)
	push := func(r int32) {
		if !ranks[r].queued && !ranks[r].done {
			ranks[r].queued = true
			work = append(work, r)
		}
	}
	for r := 0; r < n; r++ {
		push(int32(r))
	}

	channelFor := func(k chanKey) *seqChannel {
		ch := chans[k]
		if ch == nil {
			ch = &seqChannel{}
			chans[k] = ch
		}
		return ch
	}

	// snapshot clones rank r's clock vector from the pool.
	snapshot := func(r int32) []simtime.Time {
		v := pool.get()
		copy(v, st.clocks[r])
		return v
	}

	var e trace.Event
	var one [1]int32 // scratch for single-request waits
	for len(work) > 0 {
		rid := work[0]
		work = work[1:]
		rs := ranks[rid]
		rs.queued = false
		m := src.RankLen(int(rid))

	rankLoop:
		for rs.pc < m {
			src.EventAt(int(rid), rs.pc, &e)
			switch e.Op {
			case trace.OpCompute:
				st.applyCompute(rid, e.Duration())

			case trace.OpSend, trace.OpIsend:
				post := snapshot(rid)
				k := chanKey{src: rid, dst: e.Peer, tag: e.Tag, comm: e.Comm}
				ch := channelFor(k)
				// Wake the first waiting receiver, else queue the send.
				if len(ch.waiters) > 0 {
					w := ch.waiters[0]
					ch.waiters = ch.waiters[1:]
					w.sendPost = post
					w.filled = true
					push(w.rank)
				} else {
					ch.sends = append(ch.sends, seqSend{post: post, bytes: e.Bytes})
				}
				st.applySend(rid, e.Bytes, e.Op == trace.OpSend)
				if e.Op == trace.OpIsend {
					// The send cost was charged inline; the request is
					// complete as of the current clock.
					rs.reqs[e.Req] = &seqReq{arrival: snapshot(rid)}
				}

			case trace.OpRecv:
				if rs.recvBuf == nil {
					k := chanKey{src: e.Peer, dst: rid, tag: e.Tag, comm: e.Comm}
					ch := channelFor(k)
					if len(ch.sends) > 0 {
						s := ch.sends[0]
						ch.sends = ch.sends[1:]
						arr := recvArrivalInto(pool.get(), st, s.post, e.Bytes)
						st.applyRecvArrival(rid, arr, e.Bytes)
						pool.put(arr)
						pool.put(s.post)
						break // proceed to pc++
					}
					rs.recvBuf = &seqPending{rank: rid, bytes: e.Bytes, req: trace.NoReq}
					ch.waiters = append(ch.waiters, rs.recvBuf)
					break rankLoop
				}
				if !rs.recvBuf.filled {
					break rankLoop
				}
				arr := recvArrivalInto(pool.get(), st, rs.recvBuf.sendPost, e.Bytes)
				st.applyRecvArrival(rid, arr, e.Bytes)
				pool.put(arr)
				pool.put(rs.recvBuf.sendPost)
				rs.recvBuf = nil

			case trace.OpIrecv:
				k := chanKey{src: e.Peer, dst: rid, tag: e.Tag, comm: e.Comm}
				ch := channelFor(k)
				req := &seqReq{}
				if len(ch.sends) > 0 {
					s := ch.sends[0]
					ch.sends = ch.sends[1:]
					req.arrival = recvArrivalInto(pool.get(), st, s.post, e.Bytes)
					pool.put(s.post)
				} else {
					p := &seqPending{rank: rid, bytes: e.Bytes, req: e.Req}
					ch.waiters = append(ch.waiters, p)
					req.pending = p
				}
				rs.reqs[e.Req] = req
				st.applyCall(rid)

			case trace.OpWait, trace.OpWaitall:
				ids := e.Reqs
				if e.Op == trace.OpWait {
					one[0] = e.Req
					ids = one[:]
				}
				// First resolve any pendings that have been filled.
				ready := true
				for _, id := range ids {
					rq := rs.reqs[id]
					if rq == nil {
						return nil, fmt.Errorf("mfact: rank %d wait on unknown request %d", rid, id)
					}
					if rq.arrival == nil {
						if rq.pending != nil && rq.pending.filled {
							rq.arrival = recvArrivalInto(pool.get(), st, rq.pending.sendPost, rq.pending.bytes)
							pool.put(rq.pending.sendPost)
							rq.pending = nil
						} else {
							ready = false
						}
					}
				}
				if !ready {
					break rankLoop
				}
				// Fold the arrivals, reusing the first vector as the
				// accumulator and releasing the rest.
				var acc []simtime.Time
				for _, id := range ids {
					rq := rs.reqs[id]
					if acc == nil {
						acc = rq.arrival
					} else {
						for k := range acc {
							acc[k] = simtime.Max(acc[k], rq.arrival[k])
						}
						pool.put(rq.arrival)
					}
					delete(rs.reqs, id)
				}
				st.applyWait(rid, acc)
				pool.put(acc)

			default: // collectives
				if !e.Op.IsCollective() {
					return nil, fmt.Errorf("mfact: rank %d event %d: unsupported op %v", rid, rs.pc, e.Op)
				}
				nMembers := comms.Size(e.Comm)
				if nMembers <= 1 {
					st.applyCall(rid)
					break
				}
				seq := rs.collSeq[e.Comm]
				ck := collKey{e.Comm, seq}
				inst := colls[ck]
				if inst == nil {
					inst = &seqColl{n: nMembers}
					colls[ck] = inst
				}
				if rs.waitingColl != inst {
					// First visit: register our entry.
					entry := snapshot(rid)
					if inst.maxEntry == nil {
						inst.maxEntry = pool.get()
						copy(inst.maxEntry, entry)
					} else {
						for k := range inst.maxEntry {
							inst.maxEntry[k] = simtime.Max(inst.maxEntry[k], entry[k])
						}
					}
					if e.Op.IsRooted() && rid == e.Root {
						inst.rootEntry = entry
					} else {
						pool.put(entry)
					}
					inst.arrived++
					inst.members = append(inst.members, rid)
					rs.waitingColl = inst
					if inst.arrived == inst.n {
						inst.complete = true
						for _, m := range inst.members {
							if m != rid {
								push(m)
							}
						}
					}
				}
				if !inst.complete {
					break rankLoop
				}
				st.applyCollective(rid, &e, nMembers, e.Op.IsRooted() && rid == e.Root, inst.maxEntry, inst.rootEntry)
				rs.waitingColl = nil
				rs.collSeq[e.Comm]++
				inst.applied++
				if inst.applied == inst.n {
					pool.put(inst.maxEntry)
					pool.put(inst.rootEntry)
					delete(colls, ck)
				}
			}
			rs.pc++
		}
		if rs.pc >= m {
			rs.done = true
		}
	}

	for _, rs := range ranks {
		if !rs.done {
			return nil, fmt.Errorf("mfact: deadlock: rank %d stuck at event %d/%d", rs.id, rs.pc, src.RankLen(int(rs.id)))
		}
	}
	return st, nil
}

// recvArrival computes the arrival vector of a message sent at
// sendPost (without completing a receive op).
func recvArrival(st *state, sendPost []simtime.Time, bytes int64) []simtime.Time {
	return recvArrivalInto(make([]simtime.Time, st.K), st, sendPost, bytes)
}

// recvArrivalInto is recvArrival writing into a caller-provided vector
// (every element is overwritten).
func recvArrivalInto(out []simtime.Time, st *state, sendPost []simtime.Time, bytes int64) []simtime.Time {
	o := st.cm.overhead
	for k := 0; k < st.K; k++ {
		out[k] = sendPost[k] + o + st.cm.alpha[k] + st.cm.xfer(k, bytes)
	}
	return out
}
