package mfact

import (
	"fmt"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// The sequential replayer executes the trace as a dataflow: each rank
// runs until it blocks on an unmatched receive, an incomplete wait, or
// a collective whose members have not all arrived; matching events wake
// blocked ranks through a worklist. The result is deterministic and
// identical to the parallel replayer's.

type chanKey struct {
	src, dst, tag int32
	comm          trace.CommID
}

// seqPending is a receive awaiting its matching send.
type seqPending struct {
	rank     int32
	sendPost []simtime.Time // filled by the matching send
	bytes    int64
	filled   bool
	req      int32 // NoReq for blocking receives
}

type seqChannel struct {
	sends   []seqSend
	waiters []*seqPending
}

type seqSend struct {
	post  []simtime.Time
	bytes int64
}

// seqReq tracks one nonblocking request's completion.
type seqReq struct {
	// arrival is the request's completion clock vector; nil until the
	// match happens (recv) — send requests are filled at post.
	arrival []simtime.Time
	pending *seqPending // for recv requests still awaiting a send
}

type seqRank struct {
	id          int32
	pc          int
	reqs        map[int32]*seqReq
	recvBuf     *seqPending // pending blocking receive
	waitingColl *seqColl    // collective this rank has arrived at
	collSeq     map[trace.CommID]int
	queued      bool
	done        bool
}

type collKey struct {
	comm trace.CommID
	seq  int
}

type seqColl struct {
	arrived   int
	applied   int
	n         int
	maxEntry  []simtime.Time
	rootEntry []simtime.Time
	members   []int32 // blocked members to wake
	complete  bool
}

func replaySequential(tr *trace.Trace, mach *machine.Config, configs []NetConfig) (*state, error) {
	st := newState(tr, newCostModel(mach, configs))
	n := tr.Meta.NumRanks
	ranks := make([]*seqRank, n)
	for r := 0; r < n; r++ {
		ranks[r] = &seqRank{
			id:      int32(r),
			reqs:    make(map[int32]*seqReq),
			collSeq: make(map[trace.CommID]int),
		}
	}
	chans := make(map[chanKey]*seqChannel)
	colls := make(map[collKey]*seqColl)

	work := make([]int32, 0, n)
	push := func(r int32) {
		if !ranks[r].queued && !ranks[r].done {
			ranks[r].queued = true
			work = append(work, r)
		}
	}
	for r := 0; r < n; r++ {
		push(int32(r))
	}

	channelFor := func(k chanKey) *seqChannel {
		ch := chans[k]
		if ch == nil {
			ch = &seqChannel{}
			chans[k] = ch
		}
		return ch
	}

	for len(work) > 0 {
		rid := work[0]
		work = work[1:]
		rs := ranks[rid]
		rs.queued = false
		evs := tr.Ranks[rid]

	rankLoop:
		for rs.pc < len(evs) {
			e := &evs[rs.pc]
			switch e.Op {
			case trace.OpCompute:
				st.applyCompute(rid, e.Duration())

			case trace.OpSend, trace.OpIsend:
				post := st.snapshot(rid)
				k := chanKey{src: rid, dst: e.Peer, tag: e.Tag, comm: e.Comm}
				ch := channelFor(k)
				// Wake the first waiting receiver, else queue the send.
				if len(ch.waiters) > 0 {
					w := ch.waiters[0]
					ch.waiters = ch.waiters[1:]
					w.sendPost = post
					w.filled = true
					push(w.rank)
				} else {
					ch.sends = append(ch.sends, seqSend{post: post, bytes: e.Bytes})
				}
				st.applySend(rid, e.Bytes, e.Op == trace.OpSend)
				if e.Op == trace.OpIsend {
					// The send cost was charged inline; the request is
					// complete as of the current clock.
					rs.reqs[e.Req] = &seqReq{arrival: st.snapshot(rid)}
				}

			case trace.OpRecv:
				if rs.recvBuf == nil {
					k := chanKey{src: e.Peer, dst: rid, tag: e.Tag, comm: e.Comm}
					ch := channelFor(k)
					if len(ch.sends) > 0 {
						s := ch.sends[0]
						ch.sends = ch.sends[1:]
						st.applyRecvArrival(rid, recvArrival(st, s.post, e.Bytes), e.Bytes)
						break // proceed to pc++
					}
					rs.recvBuf = &seqPending{rank: rid, bytes: e.Bytes, req: trace.NoReq}
					ch.waiters = append(ch.waiters, rs.recvBuf)
					break rankLoop
				}
				if !rs.recvBuf.filled {
					break rankLoop
				}
				st.applyRecvArrival(rid, recvArrival(st, rs.recvBuf.sendPost, e.Bytes), e.Bytes)
				rs.recvBuf = nil

			case trace.OpIrecv:
				k := chanKey{src: e.Peer, dst: rid, tag: e.Tag, comm: e.Comm}
				ch := channelFor(k)
				req := &seqReq{}
				if len(ch.sends) > 0 {
					s := ch.sends[0]
					ch.sends = ch.sends[1:]
					req.arrival = recvArrival(st, s.post, e.Bytes)
				} else {
					p := &seqPending{rank: rid, bytes: e.Bytes, req: e.Req}
					ch.waiters = append(ch.waiters, p)
					req.pending = p
				}
				rs.reqs[e.Req] = req
				st.applyCall(rid)

			case trace.OpWait, trace.OpWaitall:
				ids := e.Reqs
				if e.Op == trace.OpWait {
					ids = []int32{e.Req}
				}
				// First resolve any pendings that have been filled.
				ready := true
				for _, id := range ids {
					rq := rs.reqs[id]
					if rq == nil {
						return nil, fmt.Errorf("mfact: rank %d wait on unknown request %d", rid, id)
					}
					if rq.arrival == nil {
						if rq.pending != nil && rq.pending.filled {
							rq.arrival = recvArrival(st, rq.pending.sendPost, rq.pending.bytes)
							rq.pending = nil
						} else {
							ready = false
						}
					}
				}
				if !ready {
					break rankLoop
				}
				var acc []simtime.Time
				for _, id := range ids {
					acc = accumulateArrival(acc, rs.reqs[id].arrival)
					delete(rs.reqs, id)
				}
				st.applyWait(rid, acc)

			default: // collectives
				if !e.Op.IsCollective() {
					return nil, fmt.Errorf("mfact: rank %d event %d: unsupported op %v", rid, rs.pc, e.Op)
				}
				nMembers := tr.Comms.Size(e.Comm)
				if nMembers <= 1 {
					st.applyCall(rid)
					break
				}
				seq := rs.collSeq[e.Comm]
				ck := collKey{e.Comm, seq}
				inst := colls[ck]
				if inst == nil {
					inst = &seqColl{n: nMembers}
					colls[ck] = inst
				}
				if rs.waitingColl != inst {
					// First visit: register our entry.
					entry := st.snapshot(rid)
					inst.maxEntry = accumulateArrival(inst.maxEntry, entry)
					if e.Op.IsRooted() && rid == e.Root {
						inst.rootEntry = entry
					}
					inst.arrived++
					inst.members = append(inst.members, rid)
					rs.waitingColl = inst
					if inst.arrived == inst.n {
						inst.complete = true
						for _, m := range inst.members {
							if m != rid {
								push(m)
							}
						}
					}
				}
				if !inst.complete {
					break rankLoop
				}
				st.applyCollective(rid, e, nMembers, e.Op.IsRooted() && rid == e.Root, inst.maxEntry, inst.rootEntry)
				rs.waitingColl = nil
				rs.collSeq[e.Comm]++
				inst.applied++
				if inst.applied == inst.n {
					delete(colls, ck)
				}
			}
			rs.pc++
		}
		if rs.pc >= len(evs) {
			rs.done = true
		}
	}

	for _, rs := range ranks {
		if !rs.done {
			return nil, fmt.Errorf("mfact: deadlock: rank %d stuck at event %d/%d", rs.id, rs.pc, len(tr.Ranks[rs.id]))
		}
	}
	return st, nil
}

// recvArrival computes the arrival vector of a message sent at
// sendPost (without completing a receive op).
func recvArrival(st *state, sendPost []simtime.Time, bytes int64) []simtime.Time {
	out := make([]simtime.Time, st.K)
	o := st.cm.overhead
	for k := 0; k < st.K; k++ {
		out[k] = sendPost[k] + o + st.cm.alpha[k] + st.cm.xfer(k, bytes)
	}
	return out
}
