package mfact_test

import (
	"fmt"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/mfact"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// ExampleModel models a tiny two-rank program on Edison and reads the
// prediction for a what-if network with half the bandwidth.
func ExampleModel() {
	b := trace.NewBuilder(trace.Meta{App: "example", NumRanks: 2})
	b.Compute(0, 10*simtime.Millisecond)
	b.Compute(1, 10*simtime.Millisecond)
	b.Send(0, 1, 0, 1<<20, trace.CommWorld)
	b.Recv(1, 0, 0, 1<<20, trace.CommWorld)
	tr, err := b.Build()
	if err != nil {
		panic(err)
	}

	mach, err := machine.Edison(2, 2)
	if err != nil {
		panic(err)
	}
	res, err := mfact.Model(tr, mach, []mfact.NetConfig{
		mfact.Baseline,
		{BWScale: 0.5, LatScale: 1, CompScale: 1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("baseline:", res.Total())
	fmt.Println("half bandwidth:", res.Totals[1])
	fmt.Println("class:", res.Class)
	// Output:
	// baseline: 10.35ms
	// half bandwidth: 10.7ms
	// class: computation-bound
}
