package mfact

import "fmt"

// Class is MFACT's application classification, derived from how the
// predicted total time reacts to bandwidth and latency scaling across
// the replayed configuration sweep.
type Class uint8

// The five MFACT classes.
const (
	// ComputationBound applications are insensitive to the network and
	// spend their time computing.
	ComputationBound Class = iota
	// LoadImbalanceBound applications are network-insensitive but spend
	// substantial time waiting for stragglers.
	LoadImbalanceBound
	// BandwidthBound applications slow down when bandwidth shrinks.
	BandwidthBound
	// LatencyBound applications slow down when latency grows.
	LatencyBound
	// CommunicationBound applications are sensitive to both.
	CommunicationBound
)

var classNames = [...]string{
	ComputationBound:   "computation-bound",
	LoadImbalanceBound: "load-imbalance-bound",
	BandwidthBound:     "bandwidth-bound",
	LatencyBound:       "latency-bound",
	CommunicationBound: "communication-bound",
}

// String returns the class's hyphenated name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Classification thresholds, following the paper: an application is
// communication-sensitive if its estimated total time increases by more
// than 5% when bandwidth decreases by a factor of 8 (and analogously
// for an 8× latency increase). The wait-fraction threshold separates
// load-imbalance-bound from computation-bound among the insensitive.
const (
	// SensitivityThreshold is the fractional total-time increase that
	// marks sensitivity (0.05 = 5%).
	SensitivityThreshold = 0.05
	// sensitivityScale is the slow-down factor probed (8×).
	sensitivityScale = 8.0
	// imbalanceWaitFraction is the baseline wait-time fraction above
	// which an insensitive application is load-imbalance-bound.
	imbalanceWaitFraction = 0.10
)

// BandwidthSensitivity returns T(β/8)/T(baseline) − 1, the paper's
// communication-sensitivity probe, or 0 if the sweep lacks the probe
// configuration.
func (r *Result) BandwidthSensitivity() float64 {
	return r.sensitivity(NetConfig{BWScale: 1 / sensitivityScale, LatScale: 1, CompScale: 1})
}

// LatencySensitivity returns T(α×8)/T(baseline) − 1, or 0 if absent.
func (r *Result) LatencySensitivity() float64 {
	return r.sensitivity(NetConfig{BWScale: 1, LatScale: sensitivityScale, CompScale: 1})
}

func (r *Result) sensitivity(probe NetConfig) float64 {
	t := r.TotalAt(probe)
	base := r.Total()
	if t < 0 || base <= 0 {
		return 0
	}
	return float64(t)/float64(base) - 1
}

// WaitFraction returns the baseline wait counter as a fraction of the
// average per-rank logical time.
func (r *Result) WaitFraction() float64 {
	c := r.PerConfig[0]
	denom := c.Wait + c.Bandwidth + c.Latency + c.Compute
	if denom <= 0 {
		return 0
	}
	return float64(c.Wait) / float64(denom)
}

// CommSensitive reports whether the application falls in the paper's
// "cs" group (recommend simulation): the total time rises more than 5%
// as bandwidth decreases by a factor of 8. The paper takes the same
// conservative bandwidth-only rule, noting that very few applications
// in the dataset show latency sensitivity alone.
func (r *Result) CommSensitive() bool {
	return r.BandwidthSensitivity() > SensitivityThreshold
}

// Classify derives the application class from a sweep result.
func Classify(r *Result) Class {
	bw := r.BandwidthSensitivity() > SensitivityThreshold
	lat := r.LatencySensitivity() > SensitivityThreshold
	switch {
	case bw && lat:
		return CommunicationBound
	case bw:
		return BandwidthBound
	case lat:
		return LatencyBound
	case r.WaitFraction() > imbalanceWaitFraction:
		return LoadImbalanceBound
	default:
		return ComputationBound
	}
}
