package machine

import "math"

// Variability perturbs a nominal machine the way a real production
// system deviates from its spec sheet: per-link bandwidth jitter
// (degraded optics, background congestion on shared uplinks) and
// heterogeneous node speeds (thermal throttling, DVFS, part-to-part
// variation). Cornebize & Legrand's "Variability Matters" shows these
// effects dominate prediction error at scale; the variability study
// sweeps them as first-class campaign axes.
//
// All draws are pure functions of (Seed, link/node index), so the same
// Variability always builds the same perturbed machine — ground truth
// stays reproducible and cacheable.
type Variability struct {
	// LinkJitter is the sigma of the mean-1 lognormal multiplier drawn
	// per link (0 = nominal links).
	LinkJitter float64
	// NodeHetero is the amplitude of node slowdowns: each node's speed
	// factor is uniform in [1, 1+NodeHetero] (0 = homogeneous).
	NodeHetero float64
	// Seed drives all draws.
	Seed int64
}

// IsZero reports whether v perturbs nothing.
func (v Variability) IsZero() bool { return v == Variability{} }

// ApplyVariability populates LinkBWScale and NodeSpeed from v's
// amplitudes. A zero amplitude leaves the corresponding field nil, so
// ApplyVariability of the zero Variability is a no-op and the machine
// stays bit-identical to its nominal build.
func (c *Config) ApplyVariability(v Variability) {
	if v.LinkJitter > 0 {
		scale := make([]float64, c.Topo.NumLinks())
		for id := range scale {
			// Mean-corrected lognormal via Box–Muller: E[scale] = 1, so
			// jitter redistributes bandwidth without shifting the
			// fabric's aggregate capacity.
			u1 := vuniform(vhash(v.Seed, uint64(id), 1))
			u2 := vuniform(vhash(v.Seed, uint64(id), 2))
			z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
			scale[id] = math.Exp(v.LinkJitter*z - v.LinkJitter*v.LinkJitter/2)
		}
		c.LinkBWScale = scale
	}
	if v.NodeHetero > 0 {
		speed := make([]float64, c.Topo.Nodes())
		for n := range speed {
			speed[n] = 1 + v.NodeHetero*vuniform(vhash(v.Seed, uint64(n), 3))
		}
		c.NodeSpeed = speed
	}
}

// RankSpeeds maps NodeSpeed down to a per-rank slowdown vector for the
// compute-time perturber, or nil for a homogeneous machine.
func (c *Config) RankSpeeds() []float64 {
	if c.NodeSpeed == nil {
		return nil
	}
	out := make([]float64, len(c.NodeOf))
	for r, n := range c.NodeOf {
		out[r] = c.NodeSpeed[n]
	}
	return out
}

// vhash is a splitmix64-style mix of the seed and two words, kept
// separate from mpisim's event-noise hash so the two streams never
// correlate.
func vhash(seed int64, a, b uint64) uint64 {
	x := uint64(seed) ^ a*0xbf58476d1ce4e5b9 ^ b*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// vuniform maps a hash to (0,1], avoiding log(0).
func vuniform(h uint64) float64 {
	return (float64(h>>11) + 1) / float64(1<<53)
}
