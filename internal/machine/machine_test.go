package machine

import (
	"testing"

	"hpctradeoff/internal/simtime"
)

func TestAllMachinesBuildAndValidate(t *testing.T) {
	for _, name := range Names() {
		for _, ranks := range []int{1, 16, 64, 256, 1728} {
			if name == "cielito" && ranks > 1024 {
				continue // 64-node machine; capacity covered below
			}
			cfg, err := New(name, ranks, 0)
			if err != nil {
				t.Fatalf("New(%s, %d): %v", name, ranks, err)
			}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("New(%s, %d).Validate: %v", name, ranks, err)
			}
			if len(cfg.NodeOf) != ranks {
				t.Errorf("%s/%d: NodeOf has %d entries", name, ranks, len(cfg.NodeOf))
			}
			if cfg.Topo.Nodes() < cfg.Nodes() {
				t.Errorf("%s/%d: topology smaller than job", name, ranks)
			}
		}
	}
}

func TestPaperParameters(t *testing.T) {
	cases := []struct {
		name  string
		gbits float64
		alpha simtime.Time
	}{
		{"cielito", 10, simtime.FromNanoseconds(2500)},
		{"hopper", 35, simtime.FromNanoseconds(2575)},
		{"edison", 24, simtime.FromNanoseconds(1300)},
	}
	for _, c := range cases {
		cfg, err := New(c.name, 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := c.gbits * 1e9 / 8; cfg.Beta != want {
			t.Errorf("%s Beta = %g, want %g", c.name, cfg.Beta, want)
		}
		if cfg.Alpha != c.alpha {
			t.Errorf("%s Alpha = %v, want %v", c.name, cfg.Alpha, c.alpha)
		}
	}
}

func TestLatencySplitConsistent(t *testing.T) {
	// The simulators' zero-load end-to-end latency (2×NIC + per-hop ×
	// typical path) should approximate the Hockney α within a factor
	// governed by path-length variance, and never exceed ~2α.
	for _, name := range Names() {
		cfg, err := New(name, 256, 0)
		if err != nil {
			t.Fatal(err)
		}
		hops := cfg.Topo.Diameter()/2 + 2
		e2e := 2*cfg.NICLatency + simtime.Time(hops)*cfg.LinkLatency
		lo, hi := cfg.Alpha.Scale(0.5), cfg.Alpha.Scale(2.0)
		if e2e < lo || e2e > hi {
			t.Errorf("%s: typical zero-load latency %v not within [%v, %v]", name, e2e, lo, hi)
		}
	}
}

func TestRanksPerNodeOverride(t *testing.T) {
	cfg, err := New("cielito", 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RanksPerNode != 8 {
		t.Errorf("RanksPerNode = %d, want 8", cfg.RanksPerNode)
	}
	if cfg.Nodes() != 8 {
		t.Errorf("Nodes = %d, want 8", cfg.Nodes())
	}
	// Strided placement: ranks on the same node share it; different
	// node groups land on distinct, spread-out nodes.
	if cfg.NodeOf[0] != cfg.NodeOf[7] {
		t.Error("ranks 0-7 should share a node")
	}
	if cfg.NodeOf[8] == cfg.NodeOf[7] {
		t.Error("rank 8 should start a new node")
	}
	seen := map[int32]bool{}
	for _, n := range cfg.NodeOf {
		seen[n] = true
	}
	if len(seen) != 8 {
		t.Errorf("placement uses %d nodes, want 8", len(seen))
	}
}

func TestCielitoCapacity(t *testing.T) {
	if _, err := New("cielito", 1025, 16); err == nil {
		t.Error("cielito accepted more ranks than its 64 nodes hold")
	}
	if _, err := New("cielito", 1024, 16); err != nil {
		t.Errorf("cielito rejected a full-machine job: %v", err)
	}
	if _, err := New("hopper", 1728, 24); err != nil {
		t.Errorf("hopper rejected 1728 ranks: %v", err)
	}
}

func TestUnknownMachine(t *testing.T) {
	if _, err := New("summit", 64, 0); err == nil {
		t.Fatal("want error for unknown machine")
	}
	if _, err := New("cielito", 0, 0); err == nil {
		t.Fatal("want error for zero ranks")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cfg, err := New("edison", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NodeOf[0] = int32(cfg.Topo.Nodes())
	if err := cfg.Validate(); err == nil {
		t.Error("want error for out-of-range node")
	}
	cfg, _ = New("edison", 64, 0)
	cfg.Beta = 0
	if err := cfg.Validate(); err == nil {
		t.Error("want error for zero beta")
	}
	cfg, _ = New("edison", 64, 0)
	cfg.Alpha = -1
	if err := cfg.Validate(); err == nil {
		t.Error("want error for negative alpha")
	}
}

func TestPlacementPolicies(t *testing.T) {
	for _, p := range []Placement{PlaceLinear, PlaceStrided, PlaceScattered} {
		cfg, err := New("hopper", 96, 8)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Place(p)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("policy %v: %v", p, err)
		}
		if cfg.Nodes() != 12 {
			t.Errorf("policy %v: %d nodes occupied, want 12", p, cfg.Nodes())
		}
		// Ranks sharing a node group stay together.
		if cfg.NodeOf[0] != cfg.NodeOf[7] || cfg.NodeOf[8] == cfg.NodeOf[7] {
			t.Errorf("policy %v: rank grouping broken", p)
		}
	}
	// Linear placement is contiguous; strided is not.
	lin, _ := New("hopper", 96, 8)
	lin.Place(PlaceLinear)
	if lin.NodeOf[95] != 11 {
		t.Errorf("linear placement last node = %d, want 11", lin.NodeOf[95])
	}
	str, _ := New("hopper", 96, 8)
	str.Place(PlaceStrided)
	if str.NodeOf[95] == 11 {
		t.Error("strided placement looks contiguous")
	}
}

func TestFatTreeCluster(t *testing.T) {
	for _, ranks := range []int{2, 64, 512} {
		cfg, err := New("fattree", ranks, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		if cfg.Beta != 100e9/8 {
			t.Errorf("Beta = %g", cfg.Beta)
		}
	}
}
