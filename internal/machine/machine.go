// Package machine defines the target-system models of the study: the
// three supercomputers the paper collects traces on and simulates
// (Cielito, Hopper, Edison), described by their topology, link
// bandwidth/latency, NIC parameters, and rank-to-node placement.
//
// The bandwidth/latency numbers are the ones the paper quotes from
// public system documentation: {10 Gb/s, 2500 ns} for Cielito,
// {35 Gb/s, 2575 ns} for Hopper, and {24 Gb/s, 1300 ns} for Edison.
package machine

import (
	"fmt"

	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/topology"
)

// Config describes one target system sized to host a particular rank
// count. It carries both the fine-grained parameters the simulators
// need (per-link numbers, placement) and the two-parameter Hockney
// abstraction the modeling tool uses (Alpha, Beta).
type Config struct {
	// Name is the system name ("cielito", "hopper", "edison").
	Name string
	// Topo is the interconnect sized to host the job.
	Topo topology.Topology
	// NodeOf maps each rank to its compute node in Topo.
	NodeOf []int32
	// RanksPerNode is the placement density used to build NodeOf.
	RanksPerNode int

	// LinkBandwidth is the payload bandwidth of one network link, in
	// bytes per second.
	LinkBandwidth float64
	// LinkLatency is the per-hop (router traversal + wire) latency.
	LinkLatency simtime.Time
	// InjectionBandwidth is the NIC injection bandwidth in bytes/s.
	InjectionBandwidth float64
	// NICLatency is the per-message software+NIC overhead paid at each
	// endpoint.
	NICLatency simtime.Time

	// Alpha is the end-to-end small-message latency (the Hockney α).
	Alpha simtime.Time
	// Beta is the end-to-end asymptotic bandwidth in bytes/s (the
	// Hockney 1/β slope).
	Beta float64

	// EagerThreshold is the message size above which the rendezvous
	// protocol adds a round-trip handshake.
	EagerThreshold int64
	// MPIOverhead is the per-call software overhead of an MPI
	// operation, paid even by calls that complete immediately.
	MPIOverhead simtime.Time

	// LinkBWScale, when non-nil, multiplies each link's bandwidth by
	// LinkBWScale[id] — the per-link variability of a real fabric
	// (degraded optics, congested uplinks). Nil means every link runs
	// at nominal LinkBandwidth; the simulators treat the two
	// identically for a scale of all-ones. Populated by
	// ApplyVariability.
	LinkBWScale []float64
	// NodeSpeed, when non-nil, is a per-node compute slowdown factor
	// (≥ 1): node n's compute intervals stretch by NodeSpeed[n]. Nil
	// means homogeneous nodes. Populated by ApplyVariability; consumed
	// via RankSpeeds.
	NodeSpeed []float64
}

// Nodes returns the number of compute nodes the job occupies.
func (c *Config) Nodes() int {
	if len(c.NodeOf) == 0 {
		return 0
	}
	seen := make(map[int32]bool)
	for _, n := range c.NodeOf {
		seen[n] = true
	}
	return len(seen)
}

// Validate checks internal consistency.
func (c *Config) Validate() error {
	if c.Topo == nil {
		return fmt.Errorf("machine %s: nil topology", c.Name)
	}
	if c.LinkBandwidth <= 0 || c.Beta <= 0 || c.InjectionBandwidth <= 0 {
		return fmt.Errorf("machine %s: non-positive bandwidth", c.Name)
	}
	if c.Alpha < 0 || c.LinkLatency < 0 || c.NICLatency < 0 || c.MPIOverhead < 0 {
		return fmt.Errorf("machine %s: negative latency", c.Name)
	}
	for r, n := range c.NodeOf {
		if int(n) < 0 || int(n) >= c.Topo.Nodes() {
			return fmt.Errorf("machine %s: rank %d mapped to node %d of %d", c.Name, r, n, c.Topo.Nodes())
		}
	}
	if c.LinkBWScale != nil {
		if len(c.LinkBWScale) != c.Topo.NumLinks() {
			return fmt.Errorf("machine %s: %d link scales for %d links", c.Name, len(c.LinkBWScale), c.Topo.NumLinks())
		}
		for id, s := range c.LinkBWScale {
			if s <= 0 {
				return fmt.Errorf("machine %s: non-positive scale %g on link %d", c.Name, s, id)
			}
		}
	}
	if c.NodeSpeed != nil {
		if len(c.NodeSpeed) != c.Topo.Nodes() {
			return fmt.Errorf("machine %s: %d node speeds for %d nodes", c.Name, len(c.NodeSpeed), c.Topo.Nodes())
		}
		for n, s := range c.NodeSpeed {
			if s <= 0 {
				return fmt.Errorf("machine %s: non-positive speed %g on node %d", c.Name, s, n)
			}
		}
	}
	return nil
}

// gbps converts gigabits per second to bytes per second.
func gbps(g float64) float64 { return g * 1e9 / 8 }

// Placement selects how a job's ranks map onto the machine's nodes.
type Placement int

// Placement policies.
const (
	// PlaceStrided spreads the job's nodes across the fabric the way a
	// fragmented ALPS/SLURM allocation does (the default; matches how
	// the study's traces were collected).
	PlaceStrided Placement = iota
	// PlaceLinear packs the job onto contiguous nodes (best-case
	// locality, worst-case bisection).
	PlaceLinear
	// PlaceScattered hashes ranks' nodes over the fabric (maximum
	// fragmentation).
	PlaceScattered
)

// spreadFactor sizes the interconnect with headroom over the job: real
// systems are much larger than any one job, and ALPS/SLURM hand out
// fragmented allocations, so a job's nodes are spread over the fabric
// and see far more bisection than a minimal contiguous sub-machine
// would offer.
const spreadFactor = 4

// Place rebuilds the rank-to-node map under the given policy, keeping
// ranks-per-node density. It is the task-mapping ablation knob (the
// paper replays with "the same task-mapping as the original
// application execution"; this explores the alternatives).
func (c *Config) Place(p Placement) {
	jobNodes := (len(c.NodeOf) + c.RanksPerNode - 1) / c.RanksPerNode
	topoNodes := c.Topo.Nodes()
	nodeAt := func(k int) int32 {
		switch p {
		case PlaceLinear:
			return int32(k % topoNodes)
		case PlaceScattered:
			h := uint64(k)*0x9e3779b97f4a7c15 + 0x94d049bb133111eb
			h ^= h >> 29
			return int32(h % uint64(topoNodes))
		default:
			stride := max(topoNodes/max(jobNodes, 1), 1)
			return int32(k * stride % topoNodes)
		}
	}
	// Scattered placement must not collide two rank-groups onto one
	// node; resolve collisions by linear probing.
	used := make(map[int32]bool, jobNodes)
	assign := make([]int32, jobNodes)
	for k := 0; k < jobNodes; k++ {
		n := nodeAt(k)
		for used[n] {
			n = (n + 1) % int32(topoNodes)
		}
		used[n] = true
		assign[k] = n
	}
	for r := range c.NodeOf {
		c.NodeOf[r] = assign[r/c.RanksPerNode]
	}
}

// stridedPlacement maps ranks to nodes in blocks of ranksPerNode,
// striding the job's nodes across the topology the way a fragmented
// allocation does.
func stridedPlacement(numRanks, ranksPerNode, topoNodes int) []int32 {
	jobNodes := (numRanks + ranksPerNode - 1) / ranksPerNode
	stride := topoNodes / jobNodes
	if stride < 1 {
		stride = 1
	}
	m := make([]int32, numRanks)
	for r := range m {
		m[r] = int32((r / ranksPerNode) * stride % topoNodes)
	}
	return m
}

// perHopLatency splits the end-to-end α over a typical path: half the
// topology diameter of router hops plus injection, ejection, and two
// NIC traversals. The split keeps the simulators' zero-load latency
// consistent with the Hockney α the modeling tool uses.
func perHopLatency(alpha simtime.Time, topo topology.Topology, nicShare float64) (link, nic simtime.Time) {
	nic = alpha.Scale(nicShare / 2) // per endpoint
	hops := topo.Diameter()/2 + 2   // typical router hops + inj + ej
	if hops < 1 {
		hops = 1
	}
	link = (alpha - 2*nic) / simtime.Time(hops)
	if link < 0 {
		link = 0
	}
	return link, nic
}

// New builds the named machine ("cielito", "hopper", or "edison")
// sized to host numRanks ranks at ranksPerNode ranks per node. If
// ranksPerNode is 0 the machine's native core count is used.
func New(name string, numRanks, ranksPerNode int) (*Config, error) {
	switch name {
	case "cielito":
		return Cielito(numRanks, ranksPerNode)
	case "hopper":
		return Hopper(numRanks, ranksPerNode)
	case "edison":
		return Edison(numRanks, ranksPerNode)
	case "fattree":
		return FatTreeCluster(numRanks, ranksPerNode)
	}
	return nil, fmt.Errorf("machine: unknown system %q", name)
}

// Cielito models the LANL Cray XE6 (Gemini 3-D torus, 16 cores/node):
// 10 Gb/s link bandwidth, 2500 ns end-to-end latency.
func Cielito(numRanks, ranksPerNode int) (*Config, error) {
	if ranksPerNode <= 0 {
		ranksPerNode = 16
	}
	return buildTorusMachine("cielito", numRanks, ranksPerNode, gbps(10), simtime.FromNanoseconds(2500))
}

// Hopper models the NERSC Cray XE6 (Gemini 3-D torus, 24 cores/node):
// 35 Gb/s link bandwidth, 2575 ns end-to-end latency.
func Hopper(numRanks, ranksPerNode int) (*Config, error) {
	if ranksPerNode <= 0 {
		ranksPerNode = 24
	}
	return buildTorusMachine("hopper", numRanks, ranksPerNode, gbps(35), simtime.FromNanoseconds(2575))
}

func buildTorusMachine(name string, numRanks, ranksPerNode int, bw float64, alpha simtime.Time) (*Config, error) {
	if numRanks < 1 {
		return nil, fmt.Errorf("machine %s: need ≥1 rank", name)
	}
	nodes := (numRanks + ranksPerNode - 1) / ranksPerNode
	fabricNodes := nodes * spreadFactor
	if name == "cielito" {
		// Cielito really is a 64-node machine; jobs spread within it.
		fabricNodes = max(nodes, 64)
		if nodes > 64 {
			return nil, fmt.Errorf("machine cielito: %d ranks exceed the 64-node machine", numRanks)
		}
	}
	topo, err := topology.FitTorus3D(fabricNodes, 2) // Gemini: 2 nodes per router
	if err != nil {
		return nil, err
	}
	link, nic := perHopLatency(alpha, topo, 0.4)
	return &Config{
		Name:               name,
		Topo:               topo,
		NodeOf:             stridedPlacement(numRanks, ranksPerNode, topo.Nodes()),
		RanksPerNode:       ranksPerNode,
		LinkBandwidth:      bw,
		LinkLatency:        link,
		InjectionBandwidth: 4 * bw, // the Gemini NIC injects faster than one fabric link
		NICLatency:         nic,
		Alpha:              alpha,
		Beta:               bw,
		EagerThreshold:     8 << 10,
		MPIOverhead:        simtime.FromNanoseconds(350),
	}, nil
}

// Edison models the NERSC Cray XC30 (Aries dragonfly, 24 cores/node):
// 24 Gb/s link bandwidth, 1300 ns end-to-end latency.
func Edison(numRanks, ranksPerNode int) (*Config, error) {
	if ranksPerNode <= 0 {
		ranksPerNode = 24
	}
	if numRanks < 1 {
		return nil, fmt.Errorf("machine edison: need ≥1 rank")
	}
	nodes := (numRanks + ranksPerNode - 1) / ranksPerNode
	topo, err := topology.FitDragonfly(nodes*spreadFactor, 4) // Aries: 4 nodes per router
	if err != nil {
		return nil, err
	}
	alpha := simtime.FromNanoseconds(1300)
	bw := gbps(24)
	link, nic := perHopLatency(alpha, topo, 0.4)
	return &Config{
		Name:               "edison",
		Topo:               topo,
		NodeOf:             stridedPlacement(numRanks, ranksPerNode, topo.Nodes()),
		RanksPerNode:       ranksPerNode,
		LinkBandwidth:      bw,
		LinkLatency:        link,
		InjectionBandwidth: 4 * bw, // Aries NICs likewise outrun a single link
		NICLatency:         nic,
		Alpha:              alpha,
		Beta:               bw,
		EagerThreshold:     8 << 10,
		MPIOverhead:        simtime.FromNanoseconds(250),
	}, nil
}

// FatTreeCluster models a hypothetical commodity cluster with a
// two-level fat tree (2:1 oversubscribed) of 100 Gb/s links and
// 1200 ns end-to-end latency, 32 ranks per node — a what-if target for
// exploring how the study's conclusions transfer to a different
// topology class. It is not part of the paper's three systems and does
// not appear in the default manifest.
func FatTreeCluster(numRanks, ranksPerNode int) (*Config, error) {
	if ranksPerNode <= 0 {
		ranksPerNode = 32
	}
	if numRanks < 1 {
		return nil, fmt.Errorf("machine fattree: need ≥1 rank")
	}
	nodes := (numRanks + ranksPerNode - 1) / ranksPerNode
	topo, err := topology.FitFatTree(nodes*spreadFactor, 16)
	if err != nil {
		return nil, err
	}
	alpha := simtime.FromNanoseconds(1200)
	bw := gbps(100)
	link, nic := perHopLatency(alpha, topo, 0.4)
	return &Config{
		Name:               "fattree",
		Topo:               topo,
		NodeOf:             stridedPlacement(numRanks, ranksPerNode, topo.Nodes()),
		RanksPerNode:       ranksPerNode,
		LinkBandwidth:      bw,
		LinkLatency:        link,
		InjectionBandwidth: 4 * bw,
		NICLatency:         nic,
		Alpha:              alpha,
		Beta:               bw,
		EagerThreshold:     8 << 10,
		MPIOverhead:        simtime.FromNanoseconds(250),
	}, nil
}

// Names lists the paper's three systems. The hypothetical
// FatTreeCluster is additionally accepted by New as "fattree".
func Names() []string { return []string{"cielito", "hopper", "edison"} }
