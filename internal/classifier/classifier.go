// Package classifier implements the "enhanced MFACT" of the paper's
// Section VI: a statistical model that predicts, from one cheap
// modeling run, whether detailed simulation of an application would
// produce a significantly different answer (DIFFtotal > 2%) and is
// therefore worth its cost.
package classifier

import (
	"fmt"
	"math"

	"hpctradeoff/internal/features"
	"hpctradeoff/internal/stats"
)

// NeedSimThreshold is the paper's definition: an application "requires
// simulation" when |simulated/modeled − 1| exceeds 2%.
const NeedSimThreshold = 0.02

// Observation is one trace's data point: the Table III feature vector
// and the observed model to simulation discrepancy.
type Observation struct {
	// ID identifies the trace (trace.Meta.ID()).
	ID string
	// X is the 35-entry feature vector (features.Extract order).
	X []float64
	// DiffTotal is |T_sim / T_model − 1| for the packet-flow model.
	DiffTotal float64
}

// NeedsSimulation is the training label.
func (o Observation) NeedsSimulation() bool { return o.DiffTotal > NeedSimThreshold }

// CommSensitive reads the CL feature back out of the vector.
func (o Observation) CommSensitive() bool {
	return o.X[features.Index("CLncs")] == 0
}

// BuildDataset assembles the stats design matrix from observations.
func BuildDataset(obs []Observation) (*stats.Dataset, error) {
	names := features.Names()
	d := &stats.Dataset{Cols: names}
	for _, o := range obs {
		if len(o.X) != len(names) {
			return nil, fmt.Errorf("classifier: observation %s has %d features, want %d", o.ID, len(o.X), len(names))
		}
		for _, x := range o.X {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("classifier: observation %s has non-finite feature", o.ID)
			}
		}
		d.X = append(d.X, o.X)
		d.Y = append(d.Y, o.NeedsSimulation())
	}
	return d, nil
}

// NaiveSuccessRate evaluates the paper's baseline heuristic —
// recommend simulation exactly for the MFACT-classified
// communication-sensitive applications — over the full dataset.
func NaiveSuccessRate(obs []Observation) float64 {
	if len(obs) == 0 {
		return 0
	}
	correct := 0
	for _, o := range obs {
		if o.CommSensitive() == o.NeedsSimulation() {
			correct++
		}
	}
	return float64(correct) / float64(len(obs))
}

// Model is the trained enhanced-MFACT predictor.
type Model struct {
	// CV carries the Monte-Carlo cross-validation record (per-run error
	// rates, feature selection frequencies — Table IV's contents).
	CV *stats.CVResult
	// colIdx maps the final model's columns into the full feature
	// vector.
	colIdx []int
}

// Train runs the paper's protocol on the observations: `runs`
// Monte-Carlo 80/20 partitions, step-wise forward selection capped at
// maxVars features, and a final model fitted on the full data with the
// most-selected features.
func Train(obs []Observation, runs, maxVars int, seed int64) (*Model, error) {
	d, err := BuildDataset(obs)
	if err != nil {
		return nil, err
	}
	cv, err := stats.MonteCarloCV(d, runs, maxVars, 0.8, seed)
	if err != nil {
		return nil, err
	}
	m := &Model{CV: cv}
	for _, name := range cv.FinalCols {
		idx := features.Index(name)
		if idx < 0 {
			return nil, fmt.Errorf("classifier: unknown selected feature %q", name)
		}
		m.colIdx = append(m.colIdx, idx)
	}
	return m, nil
}

// NeedsSimulation predicts from a full 35-entry feature vector.
func (m *Model) NeedsSimulation(x []float64) bool {
	return m.Score(x) > 0.5
}

// scoreClamp keeps Score strictly inside (0, 1): the logistic link is
// mathematically interior but saturates to exactly 0 or 1 in float64
// once |z| passes ~37.
const scoreClamp = 1e-9

// Score returns the predicted probability that simulation would
// disagree (DIFFtotal > 2%), from a full 35-entry feature vector. The
// result is strictly inside (0, 1), which the triage scheduler relies
// on: threshold 0 escalates everything and threshold 1 escalates
// nothing, exactly.
func (m *Model) Score(x []float64) float64 {
	sub := make([]float64, len(m.colIdx))
	for j, c := range m.colIdx {
		sub[j] = x[c]
	}
	p := m.CV.FinalModel.Prob(sub)
	return math.Min(1-scoreClamp, math.Max(scoreClamp, p))
}

// SelectedFeatures returns the final model's feature names with their
// fitted coefficients, in selection-frequency order — what the
// monotonicity property tests and the triage report inspect.
func (m *Model) SelectedFeatures() ([]string, []float64) {
	return append([]string(nil), m.CV.FinalCols...), append([]float64(nil), m.CV.FinalModel.Coef...)
}

// SuccessRate is the cross-validated success rate (1 − trimmed MR),
// the paper's headline 93.2%.
func (m *Model) SuccessRate() float64 { return m.CV.SuccessRate() }
