package classifier

import (
	"math/rand"
	"testing"

	"hpctradeoff/internal/features"
)

// synthObs fabricates a plausible observation population: comm-
// sensitive traces mostly need simulation, insensitive ones mostly do
// not, with some overlap controlled by PoSYN and rank count (echoing
// the paper's selected predictors).
func synthObs(n int, seed int64) []Observation {
	rng := rand.New(rand.NewSource(seed))
	nf := len(features.Names())
	iCL := features.Index("CLncs")
	iPoSYN := features.Index("PoSYN")
	iR := features.Index("R")
	var out []Observation
	for i := 0; i < n; i++ {
		x := make([]float64, nf)
		for j := range x {
			x[j] = rng.Float64()
		}
		cs := rng.Float64() < 0.45
		if cs {
			x[iCL] = 0
		} else {
			x[iCL] = 1
		}
		x[iPoSYN] = rng.Float64() * 0.5
		x[iR] = float64(int(64) << rng.Intn(5))
		// DIFF generative model: sensitive + high ranks + low PoSYN →
		// larger DIFF.
		diff := 0.002 + 0.004*rng.Float64()
		if cs {
			diff += 0.04*rng.Float64() + 0.03*(x[iR]/1024) - 0.02*x[iPoSYN]
			if diff < 0 {
				diff = 0.001
			}
		}
		out = append(out, Observation{ID: "synth", X: x, DiffTotal: diff})
	}
	return out
}

func TestLabeling(t *testing.T) {
	if (Observation{DiffTotal: 0.019}).NeedsSimulation() {
		t.Error("1.9% should not need simulation")
	}
	if !(Observation{DiffTotal: 0.021}).NeedsSimulation() {
		t.Error("2.1% should need simulation")
	}
}

func TestBuildDatasetValidation(t *testing.T) {
	obs := synthObs(20, 1)
	d, err := BuildDataset(obs)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 20 || len(d.Cols) != 35 {
		t.Fatalf("dataset %dx%d", d.Len(), len(d.Cols))
	}
	obs[0].X = obs[0].X[:10]
	if _, err := BuildDataset(obs); err == nil {
		t.Error("short feature vector accepted")
	}
}

func TestNaiveVsTrainedModel(t *testing.T) {
	obs := synthObs(235, 7)
	naive := NaiveSuccessRate(obs)
	if naive < 0.5 || naive > 0.98 {
		t.Fatalf("naive success rate = %v, expected informative baseline", naive)
	}
	m, err := Train(obs, 40, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	sr := m.SuccessRate()
	if sr < naive-0.02 {
		t.Errorf("trained success %v worse than naive %v", sr, naive)
	}
	// CL must be the dominant predictor, as in Table IV.
	ranked := m.CV.Ranked()
	if len(ranked) == 0 || ranked[0].Name != "CLncs" {
		t.Errorf("top feature = %+v, want CLncs", ranked[:min(3, len(ranked))])
	}
	if ranked[0].MeanCoef >= 0 {
		t.Errorf("CLncs coefficient = %v, want negative (ncs → no simulation)", ranked[0].MeanCoef)
	}
	// Prediction from a full vector must work.
	pred := m.NeedsSimulation(obs[0].X)
	_ = pred
	if got := m.CV.TrimmedFN(); got < 0 || got > 1 {
		t.Errorf("FN rate = %v", got)
	}
}

func TestTrainDeterministic(t *testing.T) {
	obs := synthObs(120, 3)
	a, err := Train(obs, 20, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(obs, 20, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.SuccessRate() != b.SuccessRate() {
		t.Error("training not deterministic")
	}
}
