package classifier

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"hpctradeoff/internal/features"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden confusion-matrix file instead of comparing")

const goldenConfusionPath = "testdata/confusion.golden"

// synthObs fabricates a plausible observation population: comm-
// sensitive traces mostly need simulation, insensitive ones mostly do
// not, with some overlap controlled by PoSYN and rank count (echoing
// the paper's selected predictors).
func synthObs(n int, seed int64) []Observation {
	rng := rand.New(rand.NewSource(seed))
	nf := len(features.Names())
	iCL := features.Index("CLncs")
	iPoSYN := features.Index("PoSYN")
	iR := features.Index("R")
	var out []Observation
	for i := 0; i < n; i++ {
		x := make([]float64, nf)
		for j := range x {
			x[j] = rng.Float64()
		}
		cs := rng.Float64() < 0.45
		if cs {
			x[iCL] = 0
		} else {
			x[iCL] = 1
		}
		x[iPoSYN] = rng.Float64() * 0.5
		x[iR] = float64(int(64) << rng.Intn(5))
		// DIFF generative model: sensitive + high ranks + low PoSYN →
		// larger DIFF.
		diff := 0.002 + 0.004*rng.Float64()
		if cs {
			diff += 0.04*rng.Float64() + 0.03*(x[iR]/1024) - 0.02*x[iPoSYN]
			if diff < 0 {
				diff = 0.001
			}
		}
		out = append(out, Observation{ID: "synth", X: x, DiffTotal: diff})
	}
	return out
}

func TestLabeling(t *testing.T) {
	if (Observation{DiffTotal: 0.019}).NeedsSimulation() {
		t.Error("1.9% should not need simulation")
	}
	if !(Observation{DiffTotal: 0.021}).NeedsSimulation() {
		t.Error("2.1% should need simulation")
	}
}

func TestBuildDatasetValidation(t *testing.T) {
	obs := synthObs(20, 1)
	d, err := BuildDataset(obs)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 20 || len(d.Cols) != 35 {
		t.Fatalf("dataset %dx%d", d.Len(), len(d.Cols))
	}
	obs[0].X = obs[0].X[:10]
	if _, err := BuildDataset(obs); err == nil {
		t.Error("short feature vector accepted")
	}
}

func TestNaiveVsTrainedModel(t *testing.T) {
	obs := synthObs(235, 7)
	naive := NaiveSuccessRate(obs)
	if naive < 0.5 || naive > 0.98 {
		t.Fatalf("naive success rate = %v, expected informative baseline", naive)
	}
	m, err := Train(obs, 40, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	sr := m.SuccessRate()
	if sr < naive-0.02 {
		t.Errorf("trained success %v worse than naive %v", sr, naive)
	}
	// CL must be the dominant predictor, as in Table IV.
	ranked := m.CV.Ranked()
	if len(ranked) == 0 || ranked[0].Name != "CLncs" {
		t.Errorf("top feature = %+v, want CLncs", ranked[:min(3, len(ranked))])
	}
	if ranked[0].MeanCoef >= 0 {
		t.Errorf("CLncs coefficient = %v, want negative (ncs → no simulation)", ranked[0].MeanCoef)
	}
	// Prediction from a full vector must work.
	pred := m.NeedsSimulation(obs[0].X)
	_ = pred
	if got := m.CV.TrimmedFN(); got < 0 || got > 1 {
		t.Errorf("FN rate = %v", got)
	}
}

// TestScoreStrictlyInterior pins the contract the triage scheduler's
// endpoint exactness rests on: Score never returns 0 or 1, even on
// feature vectors extreme enough to saturate the logistic link.
func TestScoreStrictlyInterior(t *testing.T) {
	obs := synthObs(235, 7)
	m, err := Train(obs, 40, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	nf := len(features.Names())
	extremes := [][]float64{make([]float64, nf), make([]float64, nf)}
	for j := range extremes[0] {
		extremes[0][j] = -1e6
		extremes[1][j] = 1e6
	}
	for _, o := range obs {
		extremes = append(extremes, o.X)
	}
	for i, x := range extremes {
		if p := m.Score(x); p <= 0 || p >= 1 {
			t.Fatalf("Score(vector %d) = %v, want strictly inside (0,1)", i, p)
		}
	}
}

// TestScoreMonotonePerFeature checks the logistic model's structural
// property the escalation ordering depends on: moving one selected
// feature in the direction of its fitted coefficient can only raise
// the predicted probability (and against it, only lower it), holding
// everything else fixed.
func TestScoreMonotonePerFeature(t *testing.T) {
	obs := synthObs(235, 7)
	m, err := Train(obs, 40, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	names, coefs := m.SelectedFeatures()
	if len(names) == 0 {
		t.Fatal("no features selected")
	}
	base := append([]float64(nil), obs[0].X...)
	for k, name := range names {
		idx := features.Index(name)
		if idx < 0 {
			t.Fatalf("selected feature %q not in the vector", name)
		}
		lo, hi := base[idx]-50, base[idx]+50
		x := append([]float64(nil), base...)
		prev := 0.0
		for step := 0; step <= 20; step++ {
			x[idx] = lo + (hi-lo)*float64(step)/20
			p := m.Score(x)
			if step > 0 {
				switch {
				case coefs[k] > 0 && p < prev:
					t.Fatalf("%s (coef %+.3g): Score fell from %v to %v as the feature rose", name, coefs[k], prev, p)
				case coefs[k] < 0 && p > prev:
					t.Fatalf("%s (coef %+.3g): Score rose from %v to %v as the feature rose", name, coefs[k], prev, p)
				}
			}
			prev = p
		}
	}
}

// TestConfusionGolden pins the trained model's full operating point on
// the synthetic population — selected features, coefficient signs,
// and the confusion matrix at the 0.5 decision cut — as a golden
// artifact. Regenerate deliberately with:
//
//	go test ./internal/classifier/ -run TestConfusionGolden -update
func TestConfusionGolden(t *testing.T) {
	obs := synthObs(235, 7)
	m, err := Train(obs, 40, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	tp, fp, tn, fn := 0, 0, 0, 0
	for _, o := range obs {
		switch pred, want := m.NeedsSimulation(o.X), o.NeedsSimulation(); {
		case pred && want:
			tp++
		case pred && !want:
			fp++
		case !pred && !want:
			tn++
		default:
			fn++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "population: 235 synthetic traces (seed 7), protocol: 40 CV runs, 5 vars, seed 11\n")
	names, coefs := m.SelectedFeatures()
	fmt.Fprintf(&b, "selected features:\n")
	for i, n := range names {
		fmt.Fprintf(&b, "  %-8s %+.6f\n", n, coefs[i])
	}
	fmt.Fprintf(&b, "confusion matrix at P > 0.5 (rows: predicted, cols: observed need-sim):\n")
	fmt.Fprintf(&b, "  TP=%d FP=%d\n  FN=%d TN=%d\n", tp, fp, fn, tn)
	fmt.Fprintf(&b, "in-sample accuracy: %.4f\n", float64(tp+tn)/235)
	fmt.Fprintf(&b, "cross-validated success rate: %.4f\n", m.SuccessRate())
	got := b.String()

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenConfusionPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenConfusionPath)
		return
	}
	want, err := os.ReadFile(goldenConfusionPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("confusion matrix drifted from golden artifact:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestTrainDeterministic(t *testing.T) {
	obs := synthObs(120, 3)
	a, err := Train(obs, 20, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(obs, 20, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.SuccessRate() != b.SuccessRate() {
		t.Error("training not deterministic")
	}
}
