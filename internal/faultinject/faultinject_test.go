package faultinject

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// fresh arms rules on a uniquely-named site and returns it; the
// cleanup disarms so tests do not leak schedules into each other.
func fresh(t *testing.T, name string, seed int64, rules ...Rule) *Site {
	t.Helper()
	s := NewSite(name)
	for i := range rules {
		rules[i].Site = name
	}
	if err := Arm(seed, rules); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(Disarm)
	return s
}

func TestDisarmedSiteIsFree(t *testing.T) {
	s := NewSite("test/disarmed")
	if s.Enabled() {
		t.Fatal("fresh site reports enabled")
	}
	for i := 0; i < 1000; i++ {
		if err := s.Fail(); err != nil {
			t.Fatalf("disarmed site failed: %v", err)
		}
	}
}

func TestNewSiteIdempotent(t *testing.T) {
	a := NewSite("test/idempotent")
	b := NewSite("test/idempotent")
	if a != b {
		t.Fatal("NewSite returned distinct sites for one name")
	}
}

func TestHitScheduleFiresExactIndices(t *testing.T) {
	s := fresh(t, "test/hits", 1, Rule{Hits: []uint64{2, 5}})
	var fired []int
	for i := 1; i <= 6; i++ {
		if err := s.Fail(); err != nil {
			fired = append(fired, i)
			var inj *Injected
			if !errors.As(err, &inj) || !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error has wrong shape: %v", err)
			}
			if inj.Hit != uint64(i) {
				t.Errorf("hit index %d reported as %d", i, inj.Hit)
			}
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Fatalf("fired on hits %v, want [2 5]", fired)
	}
}

func TestEveryAndMaxFires(t *testing.T) {
	s := fresh(t, "test/every", 1, Rule{Every: 3, MaxFires: 2})
	var fired []int
	for i := 1; i <= 12; i++ {
		if s.Fail() != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 6 {
		t.Fatalf("fired on hits %v, want [3 6] (MaxFires=2)", fired)
	}
}

// A probabilistic schedule is a pure function of (seed, rules): two
// passes with the same seed fire on identical hit indices, and a
// different seed gives a different schedule.
func TestProbDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []uint64 {
		s := fresh(t, "test/prob", seed, Rule{Prob: 0.3})
		for i := 0; i < 200; i++ {
			s.Fail()
		}
		var hits []uint64
		for _, f := range Fired() {
			hits = append(hits, f.Hit)
		}
		return hits
	}
	a, b := run(42), run(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed fired differently:\n%v\n%v", a, b)
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("prob 0.3 fired %d/200 times; schedule degenerate", len(a))
	}
	c := run(43)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestLabelFilter(t *testing.T) {
	s := fresh(t, "test/label", 1, Rule{Label: "packet", Hits: []uint64{2}})
	// Non-matching labels never fire and never advance the rule.
	for i := 0; i < 5; i++ {
		if err := s.FailLabel("flow"); err != nil {
			t.Fatalf("non-matching label fired: %v", err)
		}
	}
	if err := s.FailLabel("packet"); err != nil {
		t.Fatalf("first matching hit fired early: %v", err)
	}
	if err := s.FailLabel("packet"); err == nil {
		t.Fatal("second matching hit did not fire")
	}
}

func TestPanicAction(t *testing.T) {
	s := fresh(t, "test/panic", 1, Rule{Action: ActPanic})
	defer func() {
		rec := recover()
		inj, ok := rec.(*Injected)
		if !ok {
			t.Fatalf("panicked with %T, want *Injected", rec)
		}
		if inj.Action != ActPanic || inj.Site != "test/panic" {
			t.Fatalf("panic payload %+v", inj)
		}
	}()
	s.Fail()
	t.Fatal("ActPanic did not panic")
}

func TestStallActionSleepsThenContinues(t *testing.T) {
	const d = 30 * time.Millisecond
	s := fresh(t, "test/stall", 1, Rule{Action: ActStall, Stall: d, MaxFires: 1})
	start := time.Now()
	if err := s.Fail(); err != nil {
		t.Fatalf("stall returned an error: %v", err)
	}
	if el := time.Since(start); el < d {
		t.Fatalf("stall slept %v, want >= %v", el, d)
	}
}

func TestTypedCause(t *testing.T) {
	sentinel := errors.New("enospc")
	s := fresh(t, "test/cause", 1, Rule{Err: sentinel})
	err := s.Fail()
	if !errors.Is(err, sentinel) {
		t.Fatalf("injected error does not unwrap to the rule's cause: %v", err)
	}
	if errors.Is(err, ErrInjected) {
		t.Fatal("a typed cause should replace ErrInjected, not accompany it")
	}
}

func TestFiredLogRecordsSchedule(t *testing.T) {
	s := fresh(t, "test/log", 1, Rule{Hits: []uint64{1, 3}})
	s.FailLabel("x")
	s.FailLabel("x")
	s.FailLabel("x")
	got := Fired()
	if len(got) != 2 {
		t.Fatalf("log has %d firings, want 2: %v", len(got), got)
	}
	if got[0].Hit != 1 || got[1].Hit != 3 || got[0].Label != "x" {
		t.Fatalf("log contents wrong: %v", got)
	}
	// Disarm keeps the log (for post-run inspection); Arm resets it.
	Disarm()
	if len(Fired()) != 2 {
		t.Fatal("Disarm cleared the firing log")
	}
	if err := Arm(1, nil); err != nil {
		t.Fatal(err)
	}
	if len(Fired()) != 0 {
		t.Fatal("Arm did not reset the firing log")
	}
}

func TestArmUnknownSite(t *testing.T) {
	if err := Arm(1, []Rule{{Site: "no/such/site"}}); err == nil {
		t.Fatal("arming an unknown site did not fail")
	}
	t.Cleanup(Disarm)
}

// Two rules at one site: the first firing rule wins the hit, but later
// rules still observe it, so their schedules stay aligned to the hit
// stream, not to the winner's behavior.
func TestRulePriorityAndCounting(t *testing.T) {
	s := fresh(t, "test/multi", 1,
		Rule{Hits: []uint64{2}, Action: ActPanic},
		Rule{Hits: []uint64{2, 3}})
	if err := s.Fail(); err != nil {
		t.Fatalf("hit 1 fired: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("hit 2 should have panicked via the first rule")
			}
		}()
		s.Fail()
	}()
	err := s.Fail() // hit 3: only the second rule matches
	var inj *Injected
	if !errors.As(err, &inj) || inj.Hit != 3 {
		t.Fatalf("hit 3 = %v, want second rule firing at hit 3", err)
	}
}

func BenchmarkDisarmedFail(b *testing.B) {
	s := NewSite("bench/disarmed")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.Fail() != nil {
			b.Fatal("fired")
		}
	}
}
