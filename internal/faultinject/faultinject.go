// Package faultinject is a deterministic, seeded failpoint registry:
// named sites compiled into the pipeline's failure surfaces (trace
// codec reads, scheme execution, checkpoint and results I/O, the DES
// step loop) that do nothing until a test or the chaos harness arms
// them with a schedule of injected faults.
//
// The design goals, in order:
//
//  1. Zero cost when disarmed. A disarmed Site.Fail() is one atomic
//     pointer load and a nil check — no map lookup, no lock, no time
//     read — so production binaries keep every site compiled in.
//  2. Determinism. A fault schedule is a seed plus a rule list; two
//     runs with the same seed, rules, and hit order fire identically.
//     Probabilistic rules draw from a per-rule rand.Rand seeded from
//     the schedule seed and the rule's identity, never from global
//     randomness or the clock.
//  3. Observability. Every firing is appended to a log (site, label,
//     hit index, action) so a harness can assert two runs saw the
//     same schedule, and a failed soak can print exactly what it
//     injected.
//
// Sites are package-level variables created with NewSite at init time.
// Call sites decide what a returned error means: the trace codec turns
// it into a read error, the checkpoint appender into an I/O failure,
// the scheme adapters return it as a scheme error. ActPanic fires by
// panicking (exercising recover paths), ActStall by sleeping (
// exercising wall-clock budgets and watchdogs) and then continuing.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default cause carried by injected errors; callers
// and tests match it with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Action is what a rule does when it fires.
type Action string

// The supported fault actions.
const (
	// ActError makes Fail return an *Injected error.
	ActError Action = "error"
	// ActPanic makes Fail panic with an *Injected value, exercising
	// the caller's recover/isolation path.
	ActPanic Action = "panic"
	// ActStall makes Fail sleep for the rule's Stall duration and then
	// return nil: the operation proceeds, late — the shape of a hung
	// I/O or a livelocked peer that a wall-clock budget must catch.
	ActStall Action = "stall"
	// ActTorn makes Fail return an *Injected error that the call site
	// interprets as "crash mid-write": sites that know how (the
	// checkpoint appender) emit a torn partial record before failing.
	ActTorn Action = "torn-write"
)

// Rule schedules faults at one site. A rule fires on a hit when the
// hit matches its trigger (Hits, Every, or Prob — checked in that
// order; a rule with none of them set fires on every hit) and it has
// fired fewer than MaxFires times. Hit indices are 1-based and count
// only hits whose label matches the rule's Label filter.
type Rule struct {
	// Site names the failpoint this rule arms (must exist).
	Site string
	// Label, when non-empty, restricts the rule to hits carrying this
	// label (e.g. one scheme's name at the scheme-run site).
	Label string
	// Hits lists the 1-based matching-hit indices that fire.
	Hits []uint64
	// Every fires on every Nth matching hit (when Hits is empty).
	Every uint64
	// Prob fires each matching hit with this probability (when Hits
	// and Every are unset), drawn from the rule's seeded RNG.
	Prob float64
	// MaxFires caps the rule's total firings; 0 means unlimited.
	MaxFires int
	// Action is what firing does. Empty means ActError.
	Action Action
	// Err, when non-nil, is the cause wrapped by the injected error
	// (so a schedule can inject typed failures like ENOSPC analogues);
	// nil wraps ErrInjected.
	Err error
	// Stall is ActStall's sleep duration.
	Stall time.Duration
}

// Injected is the error returned (or the value panicked) by a firing
// rule. It unwraps to the rule's Err, or ErrInjected when none was
// set, so call sites classify injected faults with errors.Is.
type Injected struct {
	Site   string
	Label  string
	Hit    uint64
	Action Action
	Cause  error
}

// Error implements error.
func (e *Injected) Error() string {
	if e.Label != "" {
		return fmt.Sprintf("faultinject: %s at %s[%s] (hit %d): %v", e.Action, e.Site, e.Label, e.Hit, e.Unwrap())
	}
	return fmt.Sprintf("faultinject: %s at %s (hit %d): %v", e.Action, e.Site, e.Hit, e.Unwrap())
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Injected) Unwrap() error {
	if e.Cause != nil {
		return e.Cause
	}
	return ErrInjected
}

// Firing is one log entry: rule r fired at site/label on the given
// matching-hit index.
type Firing struct {
	Site   string
	Label  string
	Hit    uint64
	Action Action
}

// String renders the firing for schedule logs.
func (f Firing) String() string {
	if f.Label != "" {
		return fmt.Sprintf("%s[%s]#%d:%s", f.Site, f.Label, f.Hit, f.Action)
	}
	return fmt.Sprintf("%s#%d:%s", f.Site, f.Hit, f.Action)
}

// Site is a named failpoint. Create sites with NewSite at package init
// and call Fail (or FailLabel) where the fault would surface.
type Site struct {
	name string
	arm  atomic.Pointer[armedSite]
}

// Name returns the site's registry name.
func (s *Site) Name() string { return s.name }

// Enabled reports whether any rule is armed at this site.
func (s *Site) Enabled() bool { return s.arm.Load() != nil }

// Fail is FailLabel with no label.
func (s *Site) Fail() error { return s.FailLabel("") }

// FailLabel records one hit at the site and runs the first armed rule
// that fires: ActError/ActTorn return an *Injected error, ActPanic
// panics with one, ActStall sleeps and returns nil. With nothing
// armed it returns nil after a single atomic load.
func (s *Site) FailLabel(label string) error {
	a := s.arm.Load()
	if a == nil {
		return nil
	}
	return a.hit(s.name, label)
}

// armedRule is one rule plus its firing state.
type armedRule struct {
	rule  Rule
	rng   *rand.Rand
	seen  uint64 // matching hits observed
	fires int
	hits  map[uint64]bool // set form of rule.Hits
}

// fire decides whether this matching hit fires. Caller holds the
// site lock.
func (r *armedRule) fire() bool {
	r.seen++
	if r.rule.MaxFires > 0 && r.fires >= r.rule.MaxFires {
		return false
	}
	hit := false
	switch {
	case len(r.hits) > 0:
		hit = r.hits[r.seen]
	case r.rule.Every > 0:
		hit = r.seen%r.rule.Every == 0
	case r.rule.Prob > 0:
		hit = r.rng.Float64() < r.rule.Prob
	default:
		hit = true
	}
	if hit {
		r.fires++
	}
	return hit
}

// armedSite is a site's armed state: its rules, in arm order.
type armedSite struct {
	mu    sync.Mutex
	rules []*armedRule
}

// hit evaluates the site's rules for one hit. Every rule whose label
// filter matches advances its counter; the first that fires wins.
func (a *armedSite) hit(site, label string) error {
	var won *armedRule
	var inj *Injected
	a.mu.Lock()
	for _, r := range a.rules {
		if r.rule.Label != "" && r.rule.Label != label {
			continue
		}
		if won == nil && r.fire() {
			won = r
			inj = &Injected{Site: site, Label: label, Hit: r.seen, Action: r.action(), Cause: r.rule.Err}
		} else if won != nil {
			// Later rules still count the hit so their schedules do not
			// depend on which earlier rule happened to fire first.
			r.seen++
		}
	}
	a.mu.Unlock()
	if won == nil {
		return nil
	}
	recordFiring(Firing{Site: inj.Site, Label: inj.Label, Hit: inj.Hit, Action: inj.Action})
	switch inj.Action {
	case ActPanic:
		panic(inj)
	case ActStall:
		time.Sleep(won.rule.Stall)
		return nil
	default:
		return inj
	}
}

// action returns the rule's action with the ActError default applied.
func (r *armedRule) action() Action {
	if r.rule.Action == "" {
		return ActError
	}
	return r.rule.Action
}

// The registry: every site ever created, plus the firing log of the
// currently-armed schedule.
var (
	regMu sync.Mutex
	sites = map[string]*Site{}
	log   []Firing
	logMu sync.Mutex
)

// NewSite returns the site registered under name, creating it if
// needed. Calling NewSite twice with one name yields the same site, so
// packages can share a site without import-order coupling.
func NewSite(name string) *Site {
	regMu.Lock()
	defer regMu.Unlock()
	if s, ok := sites[name]; ok {
		return s
	}
	s := &Site{name: name}
	sites[name] = s
	return s
}

// Sites lists the registered site names (sorted by creation is not
// guaranteed; callers sort if they need a stable order).
func Sites() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(sites))
	for n := range sites {
		out = append(out, n)
	}
	return out
}

// Arm installs a fault schedule: the rules are grouped by site and
// armed atomically per site, replacing any previous schedule, and the
// firing log is reset. Each rule's RNG is seeded from the schedule
// seed and the rule's identity (site, label, index), so the same
// (seed, rules) always produce the same probabilistic decisions. An
// unknown site name is an error and arms nothing.
func Arm(seed int64, rules []Rule) error {
	regMu.Lock()
	defer regMu.Unlock()
	bySite := map[string][]*armedRule{}
	for i, r := range rules {
		if _, ok := sites[r.Site]; !ok {
			return fmt.Errorf("faultinject: unknown site %q", r.Site)
		}
		ar := &armedRule{rule: r, rng: rand.New(rand.NewSource(ruleSeed(seed, r.Site, r.Label, i)))}
		if len(r.Hits) > 0 {
			ar.hits = make(map[uint64]bool, len(r.Hits))
			for _, h := range r.Hits {
				ar.hits[h] = true
			}
		}
		bySite[r.Site] = append(bySite[r.Site], ar)
	}
	for name, s := range sites {
		if rs := bySite[name]; rs != nil {
			s.arm.Store(&armedSite{rules: rs})
		} else {
			s.arm.Store(nil)
		}
	}
	logMu.Lock()
	log = nil
	logMu.Unlock()
	return nil
}

// Disarm removes every armed rule; all sites return to their zero-cost
// disabled state. The firing log is kept until the next Arm so a
// harness can inspect what a finished run injected.
func Disarm() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, s := range sites {
		s.arm.Store(nil)
	}
}

// Fired returns a copy of the firing log accumulated since the last
// Arm, in firing order.
func Fired() []Firing {
	logMu.Lock()
	defer logMu.Unlock()
	return append([]Firing(nil), log...)
}

func recordFiring(f Firing) {
	logMu.Lock()
	log = append(log, f)
	logMu.Unlock()
}

// ruleSeed derives a rule's RNG seed from the schedule seed and the
// rule's identity, via FNV-1a so nearby seeds do not correlate.
func ruleSeed(seed int64, site, label string, index int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", seed, site, label, index)
	return int64(h.Sum64())
}
