// Package topology models interconnection network shapes — 3-D torus
// (Cray Gemini), dragonfly (Cray Aries), and fat tree — together with
// their deterministic routing functions.
//
// A Topology exposes compute nodes (endpoints), directed links, and a
// Route function that returns the ordered link path a message follows
// from one node to another. Simulators attach queues or fluid state to
// the link IDs; the modeling tool only needs hop counts.
package topology

import "fmt"

// LinkID indexes a directed link within a topology.
type LinkID int32

// LinkKind classifies a link's role, mainly for reporting and for
// ablation studies that scale one class of link.
type LinkKind uint8

// Link role vocabulary.
const (
	// Injection connects a compute node into its router.
	Injection LinkKind = iota
	// Ejection connects a router out to a compute node.
	Ejection
	// TorusDim is a torus neighbor link (any dimension).
	TorusDim
	// Local is an intra-group dragonfly link.
	Local
	// Global is an inter-group dragonfly link.
	Global
	// Up is a fat-tree child-to-parent link.
	Up
	// Down is a fat-tree parent-to-child link.
	Down
)

var linkKindNames = [...]string{
	Injection: "injection",
	Ejection:  "ejection",
	TorusDim:  "torus",
	Local:     "local",
	Global:    "global",
	Up:        "up",
	Down:      "down",
}

// String returns the link kind's lowercase name.
func (k LinkKind) String() string {
	if int(k) < len(linkKindNames) {
		return linkKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Link describes one directed link between two elements (routers or
// node endpoints; the endpoint namespace is private to each topology).
type Link struct {
	Kind LinkKind
	// From and To identify the link's endpoints in a topology-private
	// namespace; they are exposed for debugging and visualization only.
	From, To int32
}

// Topology is a network shape with deterministic routing.
//
// Implementations must be safe for concurrent Route calls.
type Topology interface {
	// Name identifies the topology instance, e.g. "torus3d(8x8x4)".
	Name() string
	// Nodes returns the number of compute-node endpoints.
	Nodes() int
	// NumLinks returns the number of directed links; LinkIDs are
	// 0..NumLinks-1.
	NumLinks() int
	// Link returns the descriptor of a link.
	Link(id LinkID) Link
	// Route appends the ordered link path from node src to node dst
	// (including the injection and ejection links) to buf and returns
	// the extended slice. src == dst yields an empty path (loopback
	// messages do not enter the network).
	Route(buf []LinkID, src, dst int) []LinkID
	// Diameter returns the maximum hop count (router-to-router links on
	// the longest minimal route, excluding injection/ejection).
	Diameter() int
}

// PathHops returns the number of router-to-router hops in a path
// produced by Route (i.e. excluding injection and ejection links).
func PathHops(path []LinkID, t Topology) int {
	hops := 0
	for _, id := range path {
		switch t.Link(id).Kind {
		case Injection, Ejection:
		default:
			hops++
		}
	}
	return hops
}

// ValidateSampled checks the same invariants as Validate on a
// deterministic sample of at most samples (src,dst) pairs, for
// topologies too large for the O(nodes²) full walk.
func ValidateSampled(t Topology, samples int) error {
	n := t.Nodes()
	if n*n <= samples {
		return Validate(t)
	}
	var buf []LinkID
	// Deterministic stride-based sample covering diverse pairs.
	state := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < samples; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		s := int(state>>33) % n
		state = state*6364136223846793005 + 1442695040888963407
		d := int(state>>33) % n
		buf = t.Route(buf[:0], s, d)
		if err := checkPath(t, buf, s, d); err != nil {
			return err
		}
	}
	return nil
}

// Validate walks every pair-free structural invariant common to all
// topologies: every node can route to every other node, paths begin
// with an injection link and end with an ejection link, and every link
// ID on a path is in range. It is O(nodes²) and intended for tests.
func Validate(t Topology) error {
	n := t.Nodes()
	var buf []LinkID
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			buf = t.Route(buf[:0], s, d)
			if err := checkPath(t, buf, s, d); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkPath(t Topology, path []LinkID, s, d int) error {
	if s == d {
		if len(path) != 0 {
			return fmt.Errorf("%s: route %d->%d: self route must be empty", t.Name(), s, d)
		}
		return nil
	}
	if len(path) < 2 {
		return fmt.Errorf("%s: route %d->%d: too short (%d links)", t.Name(), s, d, len(path))
	}
	for _, id := range path {
		if id < 0 || int(id) >= t.NumLinks() {
			return fmt.Errorf("%s: route %d->%d: link %d out of range", t.Name(), s, d, id)
		}
	}
	if t.Link(path[0]).Kind != Injection {
		return fmt.Errorf("%s: route %d->%d: first link is %v, not injection", t.Name(), s, d, t.Link(path[0]).Kind)
	}
	if t.Link(path[len(path)-1]).Kind != Ejection {
		return fmt.Errorf("%s: route %d->%d: last link is %v, not ejection", t.Name(), s, d, t.Link(path[len(path)-1]).Kind)
	}
	for i := 1; i < len(path)-1; i++ {
		k := t.Link(path[i]).Kind
		if k == Injection || k == Ejection {
			return fmt.Errorf("%s: route %d->%d: interior link %d has kind %v", t.Name(), s, d, i, k)
		}
	}
	// Link continuity: each link must start where the previous ended.
	for i := 1; i < len(path); i++ {
		prev, cur := t.Link(path[i-1]), t.Link(path[i])
		if prev.To != cur.From {
			return fmt.Errorf("%s: route %d->%d: discontinuity at hop %d (%d != %d)",
				t.Name(), s, d, i, prev.To, cur.From)
		}
	}
	return nil
}
