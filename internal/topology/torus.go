package topology

import "fmt"

// Torus3D is a 3-dimensional torus (the shape of Cray Gemini systems
// such as Cielito and Hopper) with dimension-order routing. Each router
// hosts NodesPerRouter compute nodes (Gemini attaches two nodes per
// router chip).
type Torus3D struct {
	dims           [3]int
	nodesPerRouter int
	links          []Link
	// dimLink[router][dim][dir] is the LinkID leaving router along dim
	// in direction dir (0 = +, 1 = -), or -1 when the dimension is
	// degenerate.
	dimLink [][3][2]LinkID
	injBase int // first injection link; node i injects on injBase+i
	ejBase  int // first ejection link
	name    string
}

// NewTorus3D builds an x × y × z torus with nodesPerRouter nodes
// attached to every router. All dimensions must be ≥ 1 and
// nodesPerRouter ≥ 1.
func NewTorus3D(x, y, z, nodesPerRouter int) (*Torus3D, error) {
	if x < 1 || y < 1 || z < 1 || nodesPerRouter < 1 {
		return nil, fmt.Errorf("topology: bad torus shape %dx%dx%d, %d nodes/router", x, y, z, nodesPerRouter)
	}
	t := &Torus3D{
		dims:           [3]int{x, y, z},
		nodesPerRouter: nodesPerRouter,
		name:           fmt.Sprintf("torus3d(%dx%dx%d,%dn)", x, y, z, nodesPerRouter),
	}
	nr := x * y * z
	t.dimLink = make([][3][2]LinkID, nr)
	for r := 0; r < nr; r++ {
		for d := 0; d < 3; d++ {
			t.dimLink[r][d][0], t.dimLink[r][d][1] = -1, -1
		}
	}
	for r := 0; r < nr; r++ {
		c := t.coords(r)
		for d := 0; d < 3; d++ {
			if t.dims[d] == 1 {
				continue
			}
			for dir := 0; dir < 2; dir++ {
				if t.dims[d] == 2 && dir == 1 {
					// +1 and -1 reach the same neighbor; keep one
					// physical link and route both directions over it.
					t.dimLink[r][d][1] = t.dimLink[r][d][0]
					continue
				}
				nc := c
				if dir == 0 {
					nc[d] = (c[d] + 1) % t.dims[d]
				} else {
					nc[d] = (c[d] - 1 + t.dims[d]) % t.dims[d]
				}
				id := LinkID(len(t.links))
				t.links = append(t.links, Link{Kind: TorusDim, From: int32(r), To: int32(t.routerAt(nc))})
				t.dimLink[r][d][dir] = id
			}
		}
	}
	n := nr * nodesPerRouter
	t.injBase = len(t.links)
	for i := 0; i < n; i++ {
		t.links = append(t.links, Link{Kind: Injection, From: int32(nr + i), To: int32(i / nodesPerRouter)})
	}
	t.ejBase = len(t.links)
	for i := 0; i < n; i++ {
		t.links = append(t.links, Link{Kind: Ejection, From: int32(i / nodesPerRouter), To: int32(nr + i)})
	}
	return t, nil
}

// FitTorus3D returns a torus with nodesPerRouter nodes per router whose
// node count is at least n, choosing near-cubic dimensions. It is the
// auto-sizing constructor machine configs use to host a trace.
func FitTorus3D(n, nodesPerRouter int) (*Torus3D, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: need at least 1 node, got %d", n)
	}
	routers := (n + nodesPerRouter - 1) / nodesPerRouter
	// Find x ≤ y ≤ z with x*y*z ≥ routers, as close to cubic as possible.
	best := [3]int{1, 1, routers}
	bestScore := 1 << 62
	for x := 1; x*x*x <= routers*8; x++ {
		for y := x; x*y <= routers*4; y++ {
			z := (routers + x*y - 1) / (x * y)
			if z < y {
				z = y
			}
			// Score prefers balanced dims and little slack.
			slack := x*y*z - routers
			score := slack*16 + (z-x)*(z-x)
			if score < bestScore {
				bestScore = score
				best = [3]int{x, y, z}
			}
		}
	}
	return NewTorus3D(best[0], best[1], best[2], nodesPerRouter)
}

func (t *Torus3D) routerAt(c [3]int) int {
	return (c[2]*t.dims[1]+c[1])*t.dims[0] + c[0]
}

func (t *Torus3D) coords(r int) [3]int {
	x := r % t.dims[0]
	y := (r / t.dims[0]) % t.dims[1]
	z := r / (t.dims[0] * t.dims[1])
	return [3]int{x, y, z}
}

// Name implements Topology.
func (t *Torus3D) Name() string { return t.name }

// Dims returns the torus dimensions.
func (t *Torus3D) Dims() (x, y, z int) { return t.dims[0], t.dims[1], t.dims[2] }

// Nodes implements Topology.
func (t *Torus3D) Nodes() int {
	return t.dims[0] * t.dims[1] * t.dims[2] * t.nodesPerRouter
}

// NumLinks implements Topology.
func (t *Torus3D) NumLinks() int { return len(t.links) }

// Link implements Topology.
func (t *Torus3D) Link(id LinkID) Link { return t.links[id] }

// Diameter implements Topology.
func (t *Torus3D) Diameter() int {
	d := 0
	for i := 0; i < 3; i++ {
		d += t.dims[i] / 2
	}
	return d
}

// Route implements Topology using deterministic dimension-order (X then
// Y then Z) routing, taking the shorter wraparound direction in each
// dimension (ties break positive).
func (t *Torus3D) Route(buf []LinkID, src, dst int) []LinkID {
	if src == dst {
		return buf
	}
	buf = append(buf, LinkID(t.injBase+src))
	cur := t.coords(src / t.nodesPerRouter)
	dstC := t.coords(dst / t.nodesPerRouter)
	for d := 0; d < 3; d++ {
		for cur[d] != dstC[d] {
			size := t.dims[d]
			fwd := (dstC[d] - cur[d] + size) % size
			dir := 0
			if fwd > size/2 { // ties (fwd == size/2) break positive
				dir = 1
			}
			r := t.routerAt(cur)
			buf = append(buf, t.dimLink[r][d][dir])
			if dir == 0 {
				cur[d] = (cur[d] + 1) % size
			} else {
				cur[d] = (cur[d] - 1 + size) % size
			}
		}
	}
	buf = append(buf, LinkID(t.ejBase+dst))
	return buf
}
