package topology

import (
	"testing"
)

// Routing throughput benchmarks — Route is the hot path of every
// packet event in the simulators (amortized by the route cache, but
// cold routes matter at scale).

func BenchmarkTorusRoute(b *testing.B) {
	torus, err := NewTorus3D(16, 16, 16, 2)
	if err != nil {
		b.Fatal(err)
	}
	n := torus.Nodes()
	var buf []LinkID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = torus.Route(buf[:0], i%n, (i*7+13)%n)
	}
}

func BenchmarkDragonflyRoute(b *testing.B) {
	df, err := NewDragonfly(17, 8, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	n := df.Nodes()
	var buf []LinkID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = df.Route(buf[:0], i%n, (i*7+13)%n)
	}
}

// BenchmarkDragonflyMinimalVsValiant is the routing-policy ablation:
// Valiant doubles the global-link traversals for load balance.
func BenchmarkDragonflyMinimalVsValiant(b *testing.B) {
	for _, valiant := range []bool{false, true} {
		name := "minimal"
		if valiant {
			name = "valiant"
		}
		b.Run(name, func(b *testing.B) {
			df, err := NewDragonfly(17, 8, 4, 4)
			if err != nil {
				b.Fatal(err)
			}
			df.SetValiant(valiant)
			n := df.Nodes()
			var buf []LinkID
			hops := 0
			for i := 0; i < b.N; i++ {
				buf = df.Route(buf[:0], i%n, (i*7+13)%n)
				hops += PathHops(buf, df)
			}
			b.ReportMetric(float64(hops)/float64(b.N), "hops/route")
		})
	}
}

func BenchmarkFatTreeRoute(b *testing.B) {
	ft, err := NewFatTree(64, 32, 16)
	if err != nil {
		b.Fatal(err)
	}
	n := ft.Nodes()
	var buf []LinkID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ft.Route(buf[:0], i%n, (i*7+13)%n)
	}
}
