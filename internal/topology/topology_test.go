package topology

import (
	"testing"
	"testing/quick"
)

func allTopologies(t *testing.T) map[string]Topology {
	t.Helper()
	torus, err := NewTorus3D(4, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := NewTorus3D(2, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	df, err := NewDragonfly(5, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := NewFatTree(6, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Topology{
		"torus":     torus,
		"tinyTorus": tiny,
		"dragonfly": df,
		"fattree":   ft,
	}
}

func TestValidateAll(t *testing.T) {
	for name, topo := range allTopologies(t) {
		t.Run(name, func(t *testing.T) {
			if err := Validate(topo); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTorusShape(t *testing.T) {
	torus, err := NewTorus3D(4, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := torus.Nodes(); got != 48 {
		t.Errorf("Nodes = %d, want 48", got)
	}
	x, y, z := torus.Dims()
	if x != 4 || y != 3 || z != 2 {
		t.Errorf("Dims = %d,%d,%d", x, y, z)
	}
	if got := torus.Diameter(); got != 2+1+1 {
		t.Errorf("Diameter = %d, want 4", got)
	}
	// Hop count of a route must never exceed the diameter.
	var buf []LinkID
	for s := 0; s < torus.Nodes(); s++ {
		for d := 0; d < torus.Nodes(); d++ {
			buf = torus.Route(buf[:0], s, d)
			if h := PathHops(buf, torus); h > torus.Diameter() {
				t.Fatalf("route %d->%d has %d hops > diameter %d", s, d, h, torus.Diameter())
			}
		}
	}
}

func TestTorusShortestDirection(t *testing.T) {
	// In an 8x1x1 torus with 1 node/router, going from 0 to 7 should
	// take 1 hop (wraparound), not 7.
	torus, err := NewTorus3D(8, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := torus.Route(nil, 0, 7)
	if h := PathHops(path, torus); h != 1 {
		t.Errorf("0->7 hops = %d, want 1 (wraparound)", h)
	}
	path = torus.Route(nil, 0, 3)
	if h := PathHops(path, torus); h != 3 {
		t.Errorf("0->3 hops = %d, want 3", h)
	}
	// Tie at distance 4: either way is minimal.
	path = torus.Route(nil, 0, 4)
	if h := PathHops(path, torus); h != 4 {
		t.Errorf("0->4 hops = %d, want 4", h)
	}
}

func TestFitTorus3D(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 108, 1000} {
		torus, err := FitTorus3D(n, 2)
		if err != nil {
			t.Fatalf("FitTorus3D(%d): %v", n, err)
		}
		if torus.Nodes() < n {
			t.Errorf("FitTorus3D(%d) holds only %d nodes", n, torus.Nodes())
		}
		if torus.Nodes() > 4*n+8 {
			t.Errorf("FitTorus3D(%d) wastes too much: %d nodes", n, torus.Nodes())
		}
	}
}

func TestDragonflyRouting(t *testing.T) {
	df, err := NewDragonfly(5, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := df.Nodes(); got != 40 {
		t.Errorf("Nodes = %d, want 40", got)
	}
	// Minimal routing: at most 3 router hops.
	var buf []LinkID
	for s := 0; s < df.Nodes(); s++ {
		for d := 0; d < df.Nodes(); d++ {
			buf = df.Route(buf[:0], s, d)
			if h := PathHops(buf, df); h > 3 {
				t.Fatalf("route %d->%d has %d hops, want ≤3", s, d, h)
			}
		}
	}
	// Same-router nodes: no router-router hops.
	path := df.Route(nil, 0, 1)
	if h := PathHops(path, df); h != 0 {
		t.Errorf("same-router route has %d hops, want 0", h)
	}
	// A cross-group route must contain exactly one global link.
	path = df.Route(nil, 0, df.Nodes()-1)
	globals := 0
	for _, id := range path {
		if df.Link(id).Kind == Global {
			globals++
		}
	}
	if globals != 1 {
		t.Errorf("cross-group route has %d global links, want 1", globals)
	}
}

func TestDragonflyValiant(t *testing.T) {
	df, err := NewDragonfly(5, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	df.SetValiant(true)
	if err := Validate(df); err != nil {
		t.Fatal(err)
	}
	// Valiant paths may use up to 2 global links.
	var buf []LinkID
	maxGlobals := 0
	for s := 0; s < df.Nodes(); s++ {
		for d := 0; d < df.Nodes(); d++ {
			buf = df.Route(buf[:0], s, d)
			globals := 0
			for _, id := range buf {
				if df.Link(id).Kind == Global {
					globals++
				}
			}
			if globals > 2 {
				t.Fatalf("valiant route %d->%d uses %d global links", s, d, globals)
			}
			if globals > maxGlobals {
				maxGlobals = globals
			}
		}
	}
	if maxGlobals != 2 {
		t.Errorf("no valiant route used an intermediate group (max globals = %d)", maxGlobals)
	}
}

func TestDragonflyRejectsUnderProvisionedGlobals(t *testing.T) {
	if _, err := NewDragonfly(10, 2, 1, 1); err == nil {
		t.Fatal("want error: 9 peers but only 2 global links per group")
	}
}

func TestFitDragonfly(t *testing.T) {
	for _, n := range []int{1, 24, 100, 1728} {
		df, err := FitDragonfly(n, 4)
		if err != nil {
			t.Fatalf("FitDragonfly(%d): %v", n, err)
		}
		if df.Nodes() < n {
			t.Errorf("FitDragonfly(%d) holds only %d", n, df.Nodes())
		}
		if err := ValidateSampled(df, 200); err != nil {
			t.Errorf("FitDragonfly(%d): %v", n, err)
		}
	}
}

func TestFatTreeRouting(t *testing.T) {
	ft, err := NewFatTree(6, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Nodes() != 24 {
		t.Errorf("Nodes = %d, want 24", ft.Nodes())
	}
	// Same-leaf route: zero switch hops.
	path := ft.Route(nil, 0, 1)
	if h := PathHops(path, ft); h != 0 {
		t.Errorf("same-leaf hops = %d, want 0", h)
	}
	// Cross-leaf: exactly 2 switch-to-switch hops (up, down).
	path = ft.Route(nil, 0, 23)
	if h := PathHops(path, ft); h != 2 {
		t.Errorf("cross-leaf hops = %d, want 2", h)
	}
	// Distinct destinations on one leaf should spread over spines.
	spinesSeen := map[int32]bool{}
	for d := 4; d < 8; d++ {
		p := ft.Route(nil, 0, d)
		for _, id := range p {
			if ft.Link(id).Kind == Up {
				spinesSeen[ft.Link(id).To] = true
			}
		}
	}
	if len(spinesSeen) < 2 {
		t.Errorf("static spine selection does not spread: %d spines", len(spinesSeen))
	}
}

func TestFitFatTree(t *testing.T) {
	ft, err := FitFatTree(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Nodes() < 100 {
		t.Errorf("FitFatTree(100) holds %d", ft.Nodes())
	}
}

// Property: routes are symmetric in hop count for the torus (dimension
// order with shortest direction gives equal-length forward and reverse
// paths).
func TestTorusHopSymmetryProperty(t *testing.T) {
	torus, err := NewTorus3D(5, 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := torus.Nodes()
	prop := func(a, b uint16) bool {
		s, d := int(a)%n, int(b)%n
		fwd := PathHops(torus.Route(nil, s, d), torus)
		rev := PathHops(torus.Route(nil, d, s), torus)
		return fwd == rev
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkKindString(t *testing.T) {
	for k := Injection; k <= Down; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if LinkKind(200).String() != "kind(200)" {
		t.Error("unknown kind formatting wrong")
	}
}

func TestBadShapes(t *testing.T) {
	if _, err := NewTorus3D(0, 1, 1, 1); err == nil {
		t.Error("torus with zero dim accepted")
	}
	if _, err := NewDragonfly(1, 0, 1, 1); err == nil {
		t.Error("dragonfly with zero routers accepted")
	}
	if _, err := NewFatTree(0, 1, 1); err == nil {
		t.Error("fat tree with zero leaves accepted")
	}
	if _, err := FitTorus3D(0, 1); err == nil {
		t.Error("FitTorus3D(0) accepted")
	}
	if _, err := FitDragonfly(0, 1); err == nil {
		t.Error("FitDragonfly(0) accepted")
	}
	if _, err := FitFatTree(0, 1); err == nil {
		t.Error("FitFatTree(0) accepted")
	}
}
