package topology

import "fmt"

// Dragonfly is a canonical dragonfly (the shape of Cray Aries systems
// such as Edison): g groups of a routers each, p compute nodes per
// router, h global links per router. Routers within a group are fully
// connected by local links; groups are connected by global links spread
// round-robin over each group's routers.
//
// Routing is minimal: at most one local hop to the router holding the
// right global link, one global hop, and one local hop inside the
// destination group. SetValiant enables Valiant randomized routing
// through a deterministically chosen intermediate group (used by
// ablation benches; minimal is the default, as in SST/Macro's Aries
// model).
type Dragonfly struct {
	groups, routersPerGroup, nodesPerRouter, globalPerRouter int

	links []Link
	// localLink[g][i][j] is the link from router i to router j inside
	// group g (i ≠ j).
	localLink [][][]LinkID
	// globalLink[g][t] is the link from group g's designated router to
	// group t; globalFrom[g][t] is that router's index within g.
	globalLink [][]LinkID
	globalFrom [][]int
	injBase    int
	ejBase     int
	valiant    bool
	name       string
}

// NewDragonfly builds a dragonfly with g groups, a routers per group,
// p nodes per router, and h global links per router. It requires
// g-1 ≤ a*h so every group pair gets a dedicated global link.
func NewDragonfly(g, a, p, h int) (*Dragonfly, error) {
	if g < 1 || a < 1 || p < 1 || h < 1 {
		return nil, fmt.Errorf("topology: bad dragonfly shape g=%d a=%d p=%d h=%d", g, a, p, h)
	}
	if g > 1 && g-1 > a*h {
		return nil, fmt.Errorf("topology: dragonfly g=%d needs g-1 ≤ a*h=%d global links per group", g, a*h)
	}
	d := &Dragonfly{
		groups: g, routersPerGroup: a, nodesPerRouter: p, globalPerRouter: h,
		name: fmt.Sprintf("dragonfly(g=%d,a=%d,p=%d,h=%d)", g, a, p, h),
	}
	// Local all-to-all links within each group.
	d.localLink = make([][][]LinkID, g)
	for gi := 0; gi < g; gi++ {
		d.localLink[gi] = make([][]LinkID, a)
		for i := 0; i < a; i++ {
			d.localLink[gi][i] = make([]LinkID, a)
			for j := 0; j < a; j++ {
				if i == j {
					d.localLink[gi][i][j] = -1
					continue
				}
				id := LinkID(len(d.links))
				d.links = append(d.links, Link{Kind: Local, From: int32(d.routerID(gi, i)), To: int32(d.routerID(gi, j))})
				d.localLink[gi][i][j] = id
			}
		}
	}
	// Global links: group gi's k-th outgoing connection (to group tj,
	// skipping itself) leaves router k mod a.
	d.globalLink = make([][]LinkID, g)
	d.globalFrom = make([][]int, g)
	for gi := 0; gi < g; gi++ {
		d.globalLink[gi] = make([]LinkID, g)
		d.globalFrom[gi] = make([]int, g)
		k := 0
		for tj := 0; tj < g; tj++ {
			if tj == gi {
				d.globalLink[gi][tj] = -1
				d.globalFrom[gi][tj] = -1
				continue
			}
			r := k % a
			id := LinkID(len(d.links))
			d.links = append(d.links, Link{Kind: Global, From: int32(d.routerID(gi, r)), To: int32(d.routerID(tj, d.entryRouter(tj, gi)))})
			d.globalLink[gi][tj] = id
			d.globalFrom[gi][tj] = r
			k++
		}
	}
	n := d.Nodes()
	nr := g * a
	d.injBase = len(d.links)
	for i := 0; i < n; i++ {
		d.links = append(d.links, Link{Kind: Injection, From: int32(nr + i), To: int32(i / p)})
	}
	d.ejBase = len(d.links)
	for i := 0; i < n; i++ {
		d.links = append(d.links, Link{Kind: Ejection, From: int32(i / p), To: int32(nr + i)})
	}
	return d, nil
}

// FitDragonfly returns a dragonfly sized to hold at least n nodes with
// p nodes per router, using a = 2h and balanced group counts in the
// spirit of the canonical a = 2h, g = ah+1 sizing rule.
func FitDragonfly(n, p int) (*Dragonfly, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: need at least 1 node, got %d", n)
	}
	routers := (n + p - 1) / p
	for h := 1; ; h++ {
		a := 2 * h
		g := a*h + 1
		if g*a >= routers {
			// Shrink group count to fit, keeping g-1 ≤ a*h.
			for g > 1 && (g-1)*a >= routers {
				g--
			}
			return NewDragonfly(g, a, p, h)
		}
	}
}

// SetValiant switches between minimal (false) and Valiant (true)
// routing. It must not be called concurrently with Route.
func (d *Dragonfly) SetValiant(v bool) { d.valiant = v }

func (d *Dragonfly) routerID(g, r int) int { return g*d.routersPerGroup + r }

// entryRouter returns the router index in group g that terminates the
// global link arriving from group 'from'. It mirrors the round-robin
// used for outgoing links so both ends agree.
func (d *Dragonfly) entryRouter(g, from int) int {
	k := from
	if from > g {
		k--
	}
	return k % d.routersPerGroup
}

// Name implements Topology.
func (d *Dragonfly) Name() string { return d.name }

// Nodes implements Topology.
func (d *Dragonfly) Nodes() int { return d.groups * d.routersPerGroup * d.nodesPerRouter }

// NumLinks implements Topology.
func (d *Dragonfly) NumLinks() int { return len(d.links) }

// Link implements Topology.
func (d *Dragonfly) Link(id LinkID) Link { return d.links[id] }

// Diameter implements Topology.
func (d *Dragonfly) Diameter() int {
	if d.groups == 1 {
		if d.routersPerGroup > 1 {
			return 1
		}
		return 0
	}
	return 3 // local, global, local
}

// Route implements Topology with minimal (or Valiant) dragonfly routing.
func (d *Dragonfly) Route(buf []LinkID, src, dst int) []LinkID {
	if src == dst {
		return buf
	}
	buf = append(buf, LinkID(d.injBase+src))
	sr := src / d.nodesPerRouter
	dr := dst / d.nodesPerRouter
	sg, si := sr/d.routersPerGroup, sr%d.routersPerGroup
	dg := dr / d.routersPerGroup

	if d.valiant && sg != dg && d.groups > 2 {
		// Deterministic "random" intermediate group derived from the
		// pair, so replays are reproducible.
		mid := (src*31 + dst*17) % d.groups
		if mid != sg && mid != dg {
			buf, sg, si = d.routeToGroup(buf, sg, si, mid)
		}
	}
	if sg != dg {
		buf, sg, si = d.routeToGroup(buf, sg, si, dg)
	}
	di := dr % d.routersPerGroup
	if si != di {
		buf = append(buf, d.localLink[sg][si][di])
	}
	buf = append(buf, LinkID(d.ejBase+dst))
	return buf
}

// routeToGroup appends the links taking a message from router (g,i) to
// the entry router of group tg, returning the new position.
func (d *Dragonfly) routeToGroup(buf []LinkID, g, i, tg int) ([]LinkID, int, int) {
	exit := d.globalFrom[g][tg]
	if i != exit {
		buf = append(buf, d.localLink[g][i][exit])
	}
	buf = append(buf, d.globalLink[g][tg])
	return buf, tg, d.entryRouter(tg, g)
}
