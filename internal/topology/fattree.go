package topology

import "fmt"

// FatTree is a two-level folded-Clos / fat-tree: leaf switches hold the
// compute nodes, every leaf connects up to every spine switch, and
// routing is deterministic up*/down* with the up-link (spine) selected
// by destination node modulo the spine count, which spreads distinct
// destinations over distinct spines like static D-mod-k routing.
type FatTree struct {
	leaves, spines, nodesPerLeaf int

	links []Link
	// upLink[l][s] is the link from leaf l to spine s; downLink[s][l]
	// the reverse.
	upLink   [][]LinkID
	downLink [][]LinkID
	injBase  int
	ejBase   int
	name     string
}

// NewFatTree builds a fat tree with the given number of leaf switches,
// spine switches, and nodes per leaf switch.
func NewFatTree(leaves, spines, nodesPerLeaf int) (*FatTree, error) {
	if leaves < 1 || spines < 1 || nodesPerLeaf < 1 {
		return nil, fmt.Errorf("topology: bad fat tree shape leaves=%d spines=%d nodes/leaf=%d", leaves, spines, nodesPerLeaf)
	}
	f := &FatTree{
		leaves: leaves, spines: spines, nodesPerLeaf: nodesPerLeaf,
		name: fmt.Sprintf("fattree(l=%d,s=%d,n=%d)", leaves, spines, nodesPerLeaf),
	}
	// Switch namespace: leaves 0..leaves-1, spines leaves..leaves+spines-1.
	f.upLink = make([][]LinkID, leaves)
	f.downLink = make([][]LinkID, spines)
	for s := range f.downLink {
		f.downLink[s] = make([]LinkID, leaves)
	}
	for l := 0; l < leaves; l++ {
		f.upLink[l] = make([]LinkID, spines)
		for s := 0; s < spines; s++ {
			f.upLink[l][s] = LinkID(len(f.links))
			f.links = append(f.links, Link{Kind: Up, From: int32(l), To: int32(leaves + s)})
		}
	}
	for s := 0; s < spines; s++ {
		for l := 0; l < leaves; l++ {
			f.downLink[s][l] = LinkID(len(f.links))
			f.links = append(f.links, Link{Kind: Down, From: int32(leaves + s), To: int32(l)})
		}
	}
	n := f.Nodes()
	sw := leaves + spines
	f.injBase = len(f.links)
	for i := 0; i < n; i++ {
		f.links = append(f.links, Link{Kind: Injection, From: int32(sw + i), To: int32(i / nodesPerLeaf)})
	}
	f.ejBase = len(f.links)
	for i := 0; i < n; i++ {
		f.links = append(f.links, Link{Kind: Ejection, From: int32(i / nodesPerLeaf), To: int32(sw + i)})
	}
	return f, nil
}

// FitFatTree returns a fat tree holding at least n nodes with
// nodesPerLeaf nodes per leaf and a spine count of half the leaf count
// (2:1 oversubscription, a common deployment point), minimum 1.
func FitFatTree(n, nodesPerLeaf int) (*FatTree, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: need at least 1 node, got %d", n)
	}
	leaves := (n + nodesPerLeaf - 1) / nodesPerLeaf
	spines := (leaves + 1) / 2
	return NewFatTree(leaves, spines, nodesPerLeaf)
}

// Name implements Topology.
func (f *FatTree) Name() string { return f.name }

// Nodes implements Topology.
func (f *FatTree) Nodes() int { return f.leaves * f.nodesPerLeaf }

// NumLinks implements Topology.
func (f *FatTree) NumLinks() int { return len(f.links) }

// Link implements Topology.
func (f *FatTree) Link(id LinkID) Link { return f.links[id] }

// Diameter implements Topology.
func (f *FatTree) Diameter() int {
	if f.leaves == 1 {
		return 0
	}
	return 2
}

// Route implements Topology with deterministic up*/down* routing.
func (f *FatTree) Route(buf []LinkID, src, dst int) []LinkID {
	if src == dst {
		return buf
	}
	buf = append(buf, LinkID(f.injBase+src))
	sl := src / f.nodesPerLeaf
	dl := dst / f.nodesPerLeaf
	if sl != dl {
		s := dst % f.spines // destination-based static spine selection
		buf = append(buf, f.upLink[sl][s], f.downLink[s][dl])
	}
	buf = append(buf, LinkID(f.ejBase+dst))
	return buf
}
