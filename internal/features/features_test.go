package features

import (
	"testing"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/mfact"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
	"hpctradeoff/internal/workload"
)

func TestNamesCount(t *testing.T) {
	if got := len(Names()); got != 35 {
		t.Fatalf("have %d features, Table III lists 35", got)
	}
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Errorf("duplicate feature %q", n)
		}
		seen[n] = true
		if Index(n) < 0 {
			t.Errorf("Index(%q) = -1", n)
		}
	}
	if Index("nope") != -1 {
		t.Error("Index of unknown feature should be -1")
	}
}

func TestExtractHandBuilt(t *testing.T) {
	b := trace.NewBuilder(trace.Meta{App: "t", NumRanks: 2, RanksPerNode: 2})
	b.Compute(0, simtime.Second)
	b.Compute(1, simtime.Second)
	b.Send(0, 1, 0, 1000, trace.CommWorld)
	b.Recv(1, 0, 0, 1000, trace.CommWorld)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Stamp plausible measured times: sends/recvs take 1 ms.
	tr.Ranks[0][1].Entry, tr.Ranks[0][1].Exit = simtime.Second, simtime.Second+simtime.Millisecond
	tr.Ranks[1][1].Entry, tr.Ranks[1][1].Exit = simtime.Second, simtime.Second+simtime.Millisecond

	v := Extract(tr, nil)
	get := func(name string) float64 { return v[Index(name)] }
	if get("R") != 2 || get("RN") != 2 || get("N") != 1 {
		t.Errorf("R/RN/N = %v/%v/%v", get("R"), get("RN"), get("N"))
	}
	if got := get("T"); got != 1.001 {
		t.Errorf("T = %v, want 1.001", got)
	}
	if got := get("Tcp"); got != 1.0 {
		t.Errorf("Tcp = %v, want 1.0 (per-rank average)", got)
	}
	if got := get("Tc"); got != 0.001 {
		t.Errorf("Tc = %v, want 0.001", got)
	}
	if got := get("TB"); got != 1000 {
		t.Errorf("TB = %v", got)
	}
	if got := get("TBp2p"); got != 1000 {
		t.Errorf("TBp2p = %v", got)
	}
	if got := get("NoM"); got != 1 {
		t.Errorf("NoM = %v", got)
	}
	if got := get("NoS"); got != 1 {
		t.Errorf("NoS = %v", got)
	}
	if got := get("NoR"); got != 1 {
		t.Errorf("NoR = %v", got)
	}
	if got := get("NoCALL"); got != 2 {
		t.Errorf("NoCALL = %v", got)
	}
	if got := get("CR"); got != 0.5 {
		t.Errorf("CR = %v, want 0.5 (1 dest over 2 ranks)", got)
	}
	if got := get("CRComm"); got != 1000 {
		t.Errorf("CRComm = %v", got)
	}
	if got := get("CLncs"); got != 1 {
		t.Errorf("CLncs = %v, want 1 with nil model", got)
	}
	if got := get("PoCP"); got < 0.99 || got > 1 {
		t.Errorf("PoCP = %v", got)
	}
}

func TestExtractOnRealTrace(t *testing.T) {
	p := workload.Params{App: "FT", Class: "S", Ranks: 16, Machine: "edison", Seed: 7}
	tr, err := workload.Materialize(p)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := machine.New(p.Machine, p.Ranks, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mfact.Model(tr, mach, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := Extract(tr, res)
	if len(v) != 35 {
		t.Fatalf("vector has %d entries", len(v))
	}
	get := func(name string) float64 { return v[Index(name)] }
	if get("T") <= 0 || get("Tc") <= 0 || get("Tcp") <= 0 {
		t.Errorf("degenerate times: T=%v Tc=%v Tcp=%v", get("T"), get("Tc"), get("Tcp"))
	}
	if get("PoC")+get("PoCP") > 1.05 {
		t.Errorf("fractions exceed 1: PoC=%v PoCP=%v", get("PoC"), get("PoCP"))
	}
	if get("NoC") == 0 {
		t.Error("FT should have collectives")
	}
	if get("Tfcoll") <= 0 {
		t.Error("FT should have a first all-to-all time")
	}
	// FT at 16 ranks is comm-sensitive, so CLncs should be 0.
	if res.CommSensitive() && get("CLncs") != 0 {
		t.Errorf("CLncs = %v for a comm-sensitive app", get("CLncs"))
	}
	for i, x := range v {
		if x < 0 {
			t.Errorf("feature %s negative: %v", Names()[i], x)
		}
	}
}

func TestExtractBarrierAndWaitPaths(t *testing.T) {
	b := trace.NewBuilder(trace.Meta{App: "t2", NumRanks: 2, RanksPerNode: 2})
	for r := 0; r < 2; r++ {
		b.Collective(r, trace.OpBarrier, trace.CommWorld, 0, 0)
	}
	q0 := b.Irecv(0, 1, 0, 256, trace.CommWorld)
	q1 := b.Isend(1, 0, 0, 256, trace.CommWorld)
	b.Wait(0, q0)
	b.Wait(1, q1)
	for r := 0; r < 2; r++ {
		b.Collective(r, trace.OpAlltoall, trace.CommWorld, 0, 64)
		b.Collective(r, trace.OpBarrier, trace.CommWorld, 0, 0)
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Give the first barrier a visible duration on rank 0 so Tfbr > 0.
	for i := range tr.Ranks {
		cursor := simtime.Time(0)
		for j := range tr.Ranks[i] {
			tr.Ranks[i][j].Entry = cursor
			tr.Ranks[i][j].Exit = cursor + simtime.Microsecond
			cursor = tr.Ranks[i][j].Exit
		}
	}
	v := Extract(tr, nil)
	get := func(name string) float64 { return v[Index(name)] }
	if get("NoB") != 4 {
		t.Errorf("NoB = %v, want 4", get("NoB"))
	}
	if get("Tbr") <= 0 || get("Tfbr") <= 0 {
		t.Errorf("barrier times: Tbr=%v Tfbr=%v", get("Tbr"), get("Tfbr"))
	}
	if get("Tfcoll") <= 0 {
		t.Errorf("Tfcoll = %v, want > 0 (alltoall present)", get("Tfcoll"))
	}
	if get("NoIS") != 1 || get("NoIR") != 1 {
		t.Errorf("NoIS/NoIR = %v/%v", get("NoIS"), get("NoIR"))
	}
	if get("Tasyn") <= 0 {
		t.Errorf("Tasyn = %v", get("Tasyn"))
	}
	if get("PoBR") <= 0 || get("PoFBR") <= 0 || get("PoFCOLL") <= 0 {
		t.Errorf("fractions: PoBR=%v PoFBR=%v PoFCOLL=%v", get("PoBR"), get("PoFBR"), get("PoFCOLL"))
	}
}
