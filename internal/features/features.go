// Package features extracts the 35 candidate features of the paper's
// Table III from a trace and its MFACT modeling result. They feed the
// enhanced-MFACT statistical model that predicts whether detailed
// simulation of an application is worthwhile.
package features

import (
	"hpctradeoff/internal/mfact"
	"hpctradeoff/internal/trace"
)

// Feature names, in Table III order. "CLncs" encodes the CL
// classification with levels {cs, ncs} as an indicator that the
// application is *not* communication-sensitive.
var names = []string{
	// Application
	"R", "RN", "N",
	// Execution
	"T", "Tcp", "PoCP", "Tc", "PoC",
	// Collective
	"Tbr", "PoBR", "Tfbr", "PoFBR", "Tcoll", "PoCOLL", "Tfcoll", "PoFCOLL",
	// Point-to-point
	"Tp2p", "PoTp2p", "Tsyn", "PoSYN", "Tasyn", "PoASYN",
	// Message
	"TB", "NoM", "TBp2p", "CR", "CRComm",
	// MPI
	"NoCALL", "NoS", "NoIS", "NoR", "NoIR", "NoB", "NoC",
	// Classification
	"CLncs",
}

// Names returns the 35 feature names in Table III order.
func Names() []string { return append([]string(nil), names...) }

// Index returns the position of a feature name, or -1.
func Index(name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

// Extract computes the feature vector for a measured trace and its
// MFACT result. Time-valued features are in seconds; counts are raw.
func Extract(tr *trace.Trace, model *mfact.Result) []float64 {
	return ExtractSource(tr, model)
}

// ExtractSource is Extract over any trace representation: the walk
// goes through the Source access path only, so array-of-structs and
// columnar traces produce bit-identical feature vectors.
func ExtractSource(src trace.Source, model *mfact.Result) []float64 {
	meta := src.TraceMeta()
	comms := src.TraceComms()
	n := meta.NumRanks
	ranks := float64(max(n, 1))

	var (
		tcp, tc, tbr, tfbr, tcoll, tfcoll   float64 // summed seconds
		tp2p, tsyn, tasyn                   float64
		totalBytes, p2pBytes                int64
		noM, noCall                         int
		noS, noIS, noR, noIR, noB, noC      int
		firstBarrierSeen, firstAllToAllSeen bool
	)
	destsPerSrc := make([]map[int32]bool, n)
	for r := range destsPerSrc {
		destsPerSrc[r] = make(map[int32]bool)
	}

	var e trace.Event
	for r := 0; r < n; r++ {
		m := src.RankLen(r)
		for i := 0; i < m; i++ {
			src.EventAt(r, i, &e)
			dur := e.Duration().Seconds()
			if e.Op == trace.OpCompute {
				tcp += dur
				continue
			}
			noCall++
			tc += dur
			nMembers := 0
			if e.Op.IsCollective() {
				nMembers = comms.Size(e.Comm)
			}
			totalBytes += e.TotalSendBytes(nMembers)
			switch e.Op {
			case trace.OpSend:
				noS++
				noM++
				tsyn += dur
				tp2p += dur
				p2pBytes += e.Bytes
				destsPerSrc[r][e.Peer] = true
			case trace.OpIsend:
				noIS++
				noM++
				tasyn += dur
				tp2p += dur
				p2pBytes += e.Bytes
				destsPerSrc[r][e.Peer] = true
			case trace.OpRecv:
				noR++
				tsyn += dur
				tp2p += dur
			case trace.OpIrecv:
				noIR++
				tasyn += dur
				tp2p += dur
			case trace.OpWait, trace.OpWaitall:
				tasyn += dur
				tp2p += dur
			case trace.OpBarrier:
				noB++
				noC++
				tbr += dur
				tcoll += dur
				if !firstBarrierSeen && r == 0 {
					tfbr = dur
					firstBarrierSeen = true
				}
			default: // remaining collectives
				noC++
				tcoll += dur
				if (e.Op == trace.OpAlltoall || e.Op == trace.OpAlltoallv) &&
					!firstAllToAllSeen && r == 0 {
					tfcoll = dur
					firstAllToAllSeen = true
				}
			}
		}
	}

	total := trace.SourceMeasuredTotal(src).Seconds()
	// Per-rank averages for time features.
	tcp /= ranks
	tc /= ranks
	tbr /= ranks
	tcoll /= ranks
	tp2p /= ranks
	tsyn /= ranks
	tasyn /= ranks

	frac := func(x float64) float64 {
		if total <= 0 {
			return 0
		}
		return x / total
	}

	var totalDests int
	for _, d := range destsPerSrc {
		totalDests += len(d)
	}
	cr := float64(totalDests) / ranks
	crComm := 0.0
	if totalDests > 0 {
		crComm = float64(p2pBytes) / float64(totalDests)
	}

	rpn := meta.RanksPerNode
	if rpn <= 0 {
		rpn = 1
	}
	nodes := (n + rpn - 1) / rpn

	clNcs := 1.0
	if model != nil && model.CommSensitive() {
		clNcs = 0
	}

	return []float64{
		float64(n), float64(rpn), float64(nodes),
		total, tcp, frac(tcp), tc, frac(tc),
		tbr, frac(tbr), tfbr, frac(tfbr), tcoll, frac(tcoll), tfcoll, frac(tfcoll),
		tp2p, frac(tp2p), tsyn, frac(tsyn), tasyn, frac(tasyn),
		float64(totalBytes), float64(noM), float64(p2pBytes), cr, crComm,
		float64(noCall), float64(noS), float64(noIS), float64(noR), float64(noIR),
		float64(noB), float64(noC),
		clNcs,
	}
}
