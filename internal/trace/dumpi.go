package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hpctradeoff/internal/simtime"
)

// DUMPI ASCII importer. The study's original traces are DUMPI binary
// files, conventionally inspected through SST's dumpi2ascii tool. This
// reader accepts a documented subset of that textual form — one file
// per rank — so real dumps (or hand-written ones) can feed the
// modeling and simulation tools.
//
// Accepted grammar, per MPI call:
//
//	MPI_<Name> entering at walltime <sec>[, ...]
//	[<type> <field>=<value>[ (...)] lines, one per argument]
//	MPI_<Name> returning at walltime <sec>[, ...]
//
// Recognized calls: Send, Isend, Recv, Irecv, Wait, Waitall, Barrier,
// Bcast, Reduce, Allreduce, Gather, Allgather, Scatter, Alltoall,
// Alltoallv, Reduce_scatter. Recognized fields: count, datatype, dest,
// source, tag, comm, root, request, requests, sendcounts. Datatypes
// may be numeric with a parenthesized name, e.g. "2 (MPI_CHAR)"; sizes
// follow the usual MPI type widths. Unrecognized calls and fields are
// skipped. Time between calls becomes computation.
//
// Because DUMPI records per-rank local views, communicators other than
// MPI_COMM_WORLD cannot be reconstructed from the dump alone; calls on
// other communicators are rejected.

// datatypeBytes maps MPI datatype names to their widths.
var datatypeBytes = map[string]int64{
	"MPI_CHAR": 1, "MPI_SIGNED_CHAR": 1, "MPI_UNSIGNED_CHAR": 1, "MPI_BYTE": 1,
	"MPI_SHORT": 2, "MPI_UNSIGNED_SHORT": 2,
	"MPI_INT": 4, "MPI_UNSIGNED": 4, "MPI_FLOAT": 4,
	"MPI_LONG": 8, "MPI_UNSIGNED_LONG": 8, "MPI_DOUBLE": 8,
	"MPI_LONG_LONG": 8, "MPI_UNSIGNED_LONG_LONG": 8, "MPI_LONG_LONG_INT": 8,
	"MPI_LONG_DOUBLE": 16,
}

// dumpiOps maps MPI call names to trace operations.
var dumpiOps = map[string]Op{
	"MPI_Send": OpSend, "MPI_Isend": OpIsend,
	"MPI_Recv": OpRecv, "MPI_Irecv": OpIrecv,
	"MPI_Wait": OpWait, "MPI_Waitall": OpWaitall,
	"MPI_Barrier": OpBarrier, "MPI_Bcast": OpBcast,
	"MPI_Reduce": OpReduce, "MPI_Allreduce": OpAllreduce,
	"MPI_Gather": OpGather, "MPI_Allgather": OpAllgather,
	"MPI_Scatter": OpScatter, "MPI_Alltoall": OpAlltoall,
	"MPI_Alltoallv": OpAlltoallv, "MPI_Reduce_scatter": OpReduceScatter,
}

// ReadDUMPIASCII parses one dumpi2ascii-style stream per rank and
// assembles a trace. meta supplies identity; its NumRanks must equal
// len(rankStreams).
func ReadDUMPIASCII(meta Meta, rankStreams []io.Reader) (*Trace, error) {
	if meta.NumRanks != len(rankStreams) {
		return nil, fmt.Errorf("trace: meta says %d ranks, got %d streams", meta.NumRanks, len(rankStreams))
	}
	t := New(meta)
	for r, in := range rankStreams {
		evs, err := parseDumpiRank(in, r)
		if err != nil {
			return nil, fmt.Errorf("trace: rank %d: %w", r, err)
		}
		t.Ranks[r] = evs
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// dumpiCall accumulates one call's fields.
type dumpiCall struct {
	name     string
	enter    simtime.Time
	count    int64
	dtBytes  int64
	peer     int32
	hasPeer  bool
	tag      int32
	root     int32
	request  int32
	hasReq   bool
	requests []int32
	sendcnts []int64
	worldOK  bool
	sawComm  bool
}

func parseDumpiRank(in io.Reader, rank int) ([]Event, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var evs []Event
	var cur *dumpiCall
	cursor := simtime.Time(0)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(raw, "MPI_") && strings.Contains(raw, " entering at walltime "):
			if cur != nil {
				return nil, fmt.Errorf("line %d: %s entered while %s is open", line, firstWord(raw), cur.name)
			}
			name := firstWord(raw)
			at, err := walltime(raw)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			cur = &dumpiCall{name: name, enter: at, dtBytes: 1, peer: NoPeer, worldOK: true}

		case strings.HasPrefix(raw, "MPI_") && strings.Contains(raw, " returning at walltime "):
			if cur == nil || firstWord(raw) != cur.name {
				return nil, fmt.Errorf("line %d: unmatched return %q", line, firstWord(raw))
			}
			exit, err := walltime(raw)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			ev, keep, err := cur.event(exit)
			if err != nil {
				return nil, fmt.Errorf("line %d: %s: %v", line, cur.name, err)
			}
			if keep {
				if ev.Entry < cursor {
					return nil, fmt.Errorf("line %d: %s walltime goes backwards", line, cur.name)
				}
				if ev.Entry > cursor {
					evs = append(evs, Event{Op: OpCompute, Entry: cursor, Exit: ev.Entry, Peer: NoPeer, Req: NoReq})
				}
				evs = append(evs, ev)
				cursor = ev.Exit
			}
			cur = nil

		case cur != nil && strings.Contains(raw, "="):
			if err := cur.field(raw); err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("stream ends inside %s", cur.name)
	}
	return evs, nil
}

func firstWord(s string) string {
	if i := strings.IndexByte(s, ' '); i > 0 {
		return s[:i]
	}
	return s
}

// walltime extracts the number after "at walltime ".
func walltime(s string) (simtime.Time, error) {
	const key = "at walltime "
	i := strings.Index(s, key)
	if i < 0 {
		return 0, fmt.Errorf("no walltime in %q", s)
	}
	rest := s[i+len(key):]
	end := strings.IndexAny(rest, ", ")
	if end < 0 {
		end = len(rest)
	}
	sec, err := strconv.ParseFloat(strings.TrimSuffix(rest[:end], "."), 64)
	if err != nil {
		return 0, fmt.Errorf("bad walltime %q", rest[:end])
	}
	return simtime.FromSeconds(sec), nil
}

// field parses one "type name=value [...]" argument line.
func (c *dumpiCall) field(raw string) error {
	eq := strings.IndexByte(raw, '=')
	left, right := raw[:eq], strings.TrimSpace(raw[eq+1:])
	name := left
	if i := strings.LastIndexByte(left, ' '); i >= 0 {
		name = left[i+1:]
	}
	// Values may carry a parenthesized annotation: "2 (MPI_CHAR)".
	valStr := right
	annot := ""
	if i := strings.IndexByte(right, '('); i >= 0 {
		valStr = strings.TrimSpace(right[:i])
		annot = strings.Trim(right[i:], "() ")
	}
	switch name {
	case "count", "sendcount":
		v, err := strconv.ParseInt(valStr, 10, 64)
		if err != nil {
			return fmt.Errorf("bad count %q", right)
		}
		c.count = v
	case "datatype", "sendtype":
		if b, ok := datatypeBytes[annot]; ok {
			c.dtBytes = b
		} else if b, ok := datatypeBytes[valStr]; ok {
			c.dtBytes = b
		}
		// Unknown datatypes keep width 1 (bytes).
	case "dest", "source":
		v, err := strconv.ParseInt(valStr, 10, 32)
		if err != nil {
			return fmt.Errorf("bad %s %q", name, right)
		}
		c.peer = int32(v)
		c.hasPeer = true
	case "tag":
		v, err := strconv.ParseInt(valStr, 10, 32)
		if err != nil {
			return fmt.Errorf("bad tag %q", right)
		}
		c.tag = int32(v)
	case "root":
		v, err := strconv.ParseInt(valStr, 10, 32)
		if err != nil {
			return fmt.Errorf("bad root %q", right)
		}
		c.root = int32(v)
	case "comm":
		c.sawComm = true
		c.worldOK = valStr == "2" || annot == "MPI_COMM_WORLD" || valStr == "MPI_COMM_WORLD"
	case "request":
		v, err := strconv.ParseInt(valStr, 10, 32)
		if err != nil {
			return fmt.Errorf("bad request %q", right)
		}
		c.request = int32(v)
		c.hasReq = true
	case "requests":
		for _, f := range strings.FieldsFunc(valStr, func(r rune) bool { return r == '[' || r == ']' || r == ',' || r == ' ' }) {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return fmt.Errorf("bad requests %q", right)
			}
			c.requests = append(c.requests, int32(v))
		}
	case "sendcounts":
		for _, f := range strings.FieldsFunc(valStr, func(r rune) bool { return r == '[' || r == ']' || r == ',' || r == ' ' }) {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return fmt.Errorf("bad sendcounts %q", right)
			}
			c.sendcnts = append(c.sendcnts, v)
		}
	}
	return nil
}

// event converts the accumulated call into a trace event. keep=false
// skips unrecognized calls (treated as compute time).
func (c *dumpiCall) event(exit simtime.Time) (Event, bool, error) {
	op, ok := dumpiOps[c.name]
	if !ok {
		return Event{}, false, nil
	}
	if c.sawComm && !c.worldOK {
		return Event{}, false, fmt.Errorf("only MPI_COMM_WORLD dumps are importable")
	}
	e := Event{Op: op, Entry: c.enter, Exit: exit, Peer: NoPeer, Req: NoReq, Comm: CommWorld}
	bytes := c.count * c.dtBytes
	switch op {
	case OpSend, OpIsend, OpRecv, OpIrecv:
		if !c.hasPeer {
			return Event{}, false, fmt.Errorf("missing dest/source")
		}
		e.Peer = c.peer
		e.Tag = c.tag
		e.Bytes = bytes
		if op == OpIsend || op == OpIrecv {
			if !c.hasReq {
				return Event{}, false, fmt.Errorf("missing request")
			}
			e.Req = c.request
		}
	case OpWait:
		if !c.hasReq {
			return Event{}, false, fmt.Errorf("missing request")
		}
		e.Req = c.request
	case OpWaitall:
		if len(c.requests) == 0 {
			return Event{}, false, fmt.Errorf("missing requests")
		}
		e.Reqs = c.requests
	case OpAlltoallv:
		e.SendBytes = make([]int64, len(c.sendcnts))
		for i, n := range c.sendcnts {
			e.SendBytes[i] = n * c.dtBytes
		}
	case OpBarrier:
	default: // remaining collectives
		e.Root = c.root
		e.Bytes = bytes
	}
	return e, true, nil
}
