package trace

import (
	"fmt"

	"hpctradeoff/internal/simtime"
)

// Builder incrementally constructs a structurally valid trace. It
// tracks per-rank time cursors (so timestamps satisfy Validate's
// monotonicity) and per-rank request counters. Workload generators
// build "programs" with it: compute events carry intended durations
// and communication events carry zero durations; the ground-truth
// executor later overwrites all timestamps with executed times.
//
// Storage is columnar: events append straight into a Columns store, so
// a build never materializes []Event rows. Build returns the classic
// array-of-structs *Trace for existing consumers; BuildColumns returns
// the columnar form directly. A windowed builder (NewBuilderWindow)
// additionally discards events outside a rank window — the streaming
// generation path uses it to keep only a chunk of ranks resident.
type Builder struct {
	cols   *Columns
	cursor []simtime.Time
	req    []int32
	open   []map[int32]bool // requests issued and not yet waited, per rank
	lo, hi int              // stored rank window [lo, hi)
}

// NewBuilder starts a trace for the given metadata.
func NewBuilder(meta Meta) *Builder {
	return NewBuilderWindow(meta, 0, max(meta.NumRanks, 0))
}

// NewBuilderWindow starts a trace that stores only ranks in [lo, hi).
// The generator still drives all ranks (time cursors and request
// counters cover the whole world, and the RNG consumption of a
// generator is untouched), but events of out-of-window ranks are
// dropped at append time, bounding residency to the window. Windowed
// builds skip cross-rank validation (a window cannot see its match
// partners); BuildColumns validates fully only when the window covers
// every rank.
func NewBuilderWindow(meta Meta, lo, hi int) *Builder {
	c := NewColumns(meta)
	n := c.Meta.NumRanks
	lo = max(lo, 0)
	hi = min(hi, n)
	b := &Builder{
		cols:   c,
		cursor: make([]simtime.Time, n),
		req:    make([]int32, n),
		open:   make([]map[int32]bool, n),
		lo:     lo,
		hi:     hi,
	}
	for r := range b.open {
		b.open[r] = make(map[int32]bool)
	}
	return b
}

// Comms exposes the communicator table for adding sub-communicators.
func (b *Builder) Comms() *CommTable { return &b.cols.Comms }

// AddComm registers a sub-communicator and marks the trace as using
// communicator grouping.
func (b *Builder) AddComm(members []int32) CommID {
	b.cols.Meta.UsesCommSplit = true
	return b.cols.Comms.Add(members)
}

func (b *Builder) push(r int, e Event) {
	e.Entry = b.cursor[r]
	e.Exit = e.Entry
	b.cursor[r] = e.Exit
	if r >= b.lo && r < b.hi {
		b.cols.append(r, &e)
	}
}

// Compute appends a computation interval of duration d on rank r.
func (b *Builder) Compute(r int, d simtime.Time) {
	e := Event{Op: OpCompute, Peer: NoPeer, Req: NoReq, Entry: b.cursor[r], Exit: b.cursor[r] + d}
	b.cursor[r] = e.Exit
	if r >= b.lo && r < b.hi {
		b.cols.append(r, &e)
	}
}

// Send appends a blocking send on rank r.
func (b *Builder) Send(r int, peer int32, tag int32, bytes int64, comm CommID) {
	b.push(r, Event{Op: OpSend, Peer: peer, Tag: tag, Bytes: bytes, Comm: comm, Req: NoReq})
}

// Recv appends a blocking receive on rank r.
func (b *Builder) Recv(r int, peer int32, tag int32, bytes int64, comm CommID) {
	b.push(r, Event{Op: OpRecv, Peer: peer, Tag: tag, Bytes: bytes, Comm: comm, Req: NoReq})
}

// Isend appends a nonblocking send and returns its request id.
func (b *Builder) Isend(r int, peer int32, tag int32, bytes int64, comm CommID) int32 {
	id := b.nextReq(r)
	b.push(r, Event{Op: OpIsend, Peer: peer, Tag: tag, Bytes: bytes, Comm: comm, Req: id})
	return id
}

// Irecv appends a nonblocking receive and returns its request id.
func (b *Builder) Irecv(r int, peer int32, tag int32, bytes int64, comm CommID) int32 {
	id := b.nextReq(r)
	b.push(r, Event{Op: OpIrecv, Peer: peer, Tag: tag, Bytes: bytes, Comm: comm, Req: id})
	return id
}

func (b *Builder) nextReq(r int) int32 {
	id := b.req[r]
	b.req[r]++
	b.open[r][id] = true
	return id
}

// Wait appends a single-request wait.
func (b *Builder) Wait(r int, req int32) {
	delete(b.open[r], req)
	b.push(r, Event{Op: OpWait, Peer: NoPeer, Req: req})
}

// Waitall appends a wait on the given requests.
func (b *Builder) Waitall(r int, reqs ...int32) {
	if len(reqs) == 0 {
		return
	}
	for _, q := range reqs {
		delete(b.open[r], q)
	}
	b.push(r, Event{Op: OpWaitall, Peer: NoPeer, Req: NoReq, Reqs: reqs})
}

// WaitOpen appends a waitall on every outstanding request of rank r.
func (b *Builder) WaitOpen(r int) {
	if len(b.open[r]) == 0 {
		return
	}
	reqs := make([]int32, 0, len(b.open[r]))
	for q := range b.open[r] {
		reqs = append(reqs, q)
	}
	// Deterministic order.
	for i := 1; i < len(reqs); i++ {
		for j := i; j > 0 && reqs[j] < reqs[j-1]; j-- {
			reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
		}
	}
	b.Waitall(r, reqs...)
}

// Collective appends a collective with per-member payload bytes on
// rank r. Root is a world rank (ignored for non-rooted ops).
func (b *Builder) Collective(r int, op Op, comm CommID, root int32, bytes int64) {
	b.push(r, Event{Op: op, Peer: NoPeer, Req: NoReq, Comm: comm, Root: root, Bytes: bytes})
}

// Alltoallv appends an alltoallv with the given per-member send sizes.
func (b *Builder) Alltoallv(r int, comm CommID, sendBytes []int64) {
	b.push(r, Event{Op: OpAlltoallv, Peer: NoPeer, Req: NoReq, Comm: comm, SendBytes: sendBytes})
}

// fullWindow reports whether the builder stored every rank.
func (b *Builder) fullWindow() bool { return b.lo == 0 && b.hi == b.cols.Meta.NumRanks }

// Build validates and returns the trace in array-of-structs form.
func (b *Builder) Build() (*Trace, error) {
	if !b.fullWindow() {
		return nil, fmt.Errorf("trace: Build on a windowed builder (ranks [%d,%d) of %d); use BuildChunk", b.lo, b.hi, b.cols.Meta.NumRanks)
	}
	tr := b.cols.Materialize()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace builder produced invalid trace: %w", err)
	}
	return tr, nil
}

// BuildColumns validates and returns the trace in columnar form
// without ever materializing []Event rows.
func (b *Builder) BuildColumns() (*Columns, error) {
	if !b.fullWindow() {
		return nil, fmt.Errorf("trace: BuildColumns on a windowed builder (ranks [%d,%d) of %d); use BuildChunk", b.lo, b.hi, b.cols.Meta.NumRanks)
	}
	if err := b.cols.Validate(); err != nil {
		return nil, fmt.Errorf("trace builder produced invalid trace: %w", err)
	}
	return b.cols, nil
}

// BuildChunk returns the columnar store of a windowed build without
// cross-rank validation (a window cannot see its match partners; the
// streaming tests anchor correctness by comparing chunks against a
// validated full build). Ranks outside the window have empty streams.
func (b *Builder) BuildChunk() *Columns { return b.cols }
