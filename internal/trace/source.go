package trace

import "hpctradeoff/internal/simtime"

// Source is the uniform access path replay engines walk a trace
// through. Both representations implement it — the array-of-structs
// *Trace and the columnar *Columns — so MFACT and the simulators are
// written once and replay either form bit-identically (the determinism
// contract extension documented in DESIGN.md).
//
// EventAt fills the caller's Event instead of returning one so a tight
// replay loop reuses a single stack buffer: reading an event never
// allocates. Variable-length payloads (Waitall request sets, Alltoallv
// send tables) are subslices of the trace's backing storage and must
// be treated as read-only.
type Source interface {
	// TraceMeta returns the trace identity and capability metadata.
	TraceMeta() *Meta
	// TraceComms returns the communicator table.
	TraceComms() *CommTable
	// RankLen returns the number of events on rank r.
	RankLen(r int) int
	// EventAt fills e with rank r's i-th event.
	EventAt(r, i int, e *Event)
	// SetEventTimes overwrites the entry/exit timestamps of rank r's
	// i-th event (the ground-truth executor's write-back path).
	SetEventTimes(r, i int, entry, exit simtime.Time)
}

// Statically assert both representations satisfy Source.
var (
	_ Source = (*Trace)(nil)
	_ Source = (*Columns)(nil)
)

// Cursor iterates one rank's event stream in order, yielding events by
// value with zero per-event allocation. The zero Cursor is empty; use
// RankCursor (or Trace.Cursor / Columns.Cursor) to position one.
type Cursor struct {
	src  Source
	rank int
	next int
	n    int
}

// RankCursor returns a cursor over rank r of src.
func RankCursor(src Source, r int) Cursor {
	return Cursor{src: src, rank: r, n: src.RankLen(r)}
}

// Len returns the total number of events the cursor covers.
func (c *Cursor) Len() int { return c.n }

// Index returns the index of the event most recently yielded by Next,
// or -1 before the first Next.
func (c *Cursor) Index() int { return c.next - 1 }

// Rank returns the rank this cursor walks.
func (c *Cursor) Rank() int { return c.rank }

// Next fills e with the next event and reports whether one was
// available. e's slice fields alias trace storage; treat as read-only.
func (c *Cursor) Next(e *Event) bool {
	if c.next >= c.n {
		return false
	}
	c.src.EventAt(c.rank, c.next, e)
	c.next++
	return true
}

// Reset rewinds the cursor to the start of its rank.
func (c *Cursor) Reset() { c.next = 0 }

// Trace's Source implementation: thin views over the Ranks slices.

// TraceMeta implements Source.
func (t *Trace) TraceMeta() *Meta { return &t.Meta }

// TraceComms implements Source.
func (t *Trace) TraceComms() *CommTable { return &t.Comms }

// RankLen implements Source.
func (t *Trace) RankLen(r int) int { return len(t.Ranks[r]) }

// EventAt implements Source.
func (t *Trace) EventAt(r, i int, e *Event) { *e = t.Ranks[r][i] }

// SetEventTimes implements Source.
func (t *Trace) SetEventTimes(r, i int, entry, exit simtime.Time) {
	t.Ranks[r][i].Entry, t.Ranks[r][i].Exit = entry, exit
}

// Cursor returns a zero-allocation cursor over rank r.
func (t *Trace) Cursor(r int) Cursor { return RankCursor(t, r) }
