package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"hpctradeoff/internal/simtime"
)

// JSON codec: a self-describing interchange format for traces, much
// larger than the binary format but convenient for inspection and for
// feeding external tools. Times are picosecond integers.

type jsonTrace struct {
	Meta  Meta        `json:"meta"`
	Comms [][]int32   `json:"comms"`
	Ranks [][]jsonEvt `json:"ranks"`
}

type jsonEvt struct {
	Op    string  `json:"op"`
	Entry int64   `json:"entry"`
	Exit  int64   `json:"exit"`
	Peer  *int32  `json:"peer,omitempty"`
	Tag   int32   `json:"tag,omitempty"`
	Root  int32   `json:"root,omitempty"`
	Comm  CommID  `json:"comm,omitempty"`
	Req   *int32  `json:"req,omitempty"`
	Bytes int64   `json:"bytes,omitempty"`
	Reqs  []int32 `json:"reqs,omitempty"`
	Sendb []int64 `json:"sendBytes,omitempty"`
}

// WriteJSON encodes t as JSON.
func WriteJSON(w io.Writer, t *Trace) error {
	jt := jsonTrace{Meta: t.Meta}
	for c := 0; c < t.Comms.Len(); c++ {
		jt.Comms = append(jt.Comms, t.Comms.Members(CommID(c)))
	}
	jt.Ranks = make([][]jsonEvt, len(t.Ranks))
	for r, evs := range t.Ranks {
		out := make([]jsonEvt, len(evs))
		for i := range evs {
			e := &evs[i]
			je := jsonEvt{
				Op:    e.Op.String(),
				Entry: int64(e.Entry),
				Exit:  int64(e.Exit),
				Tag:   e.Tag,
				Root:  e.Root,
				Comm:  e.Comm,
				Bytes: e.Bytes,
				Reqs:  e.Reqs,
				Sendb: e.SendBytes,
			}
			if e.Peer != NoPeer {
				p := e.Peer
				je.Peer = &p
			}
			if e.Req != NoReq {
				q := e.Req
				je.Req = &q
			}
			out[i] = je
		}
		jt.Ranks[r] = out
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jt)
}

// opByName resolves the lowercase operation names String produces.
var opByName = func() map[string]Op {
	m := make(map[string]Op, int(numOps))
	for op := Op(0); op < numOps; op++ {
		m[op.String()] = op
	}
	return m
}()

// ReadJSON decodes a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	if jt.Meta.NumRanks != len(jt.Ranks) {
		return nil, fmt.Errorf("trace: meta says %d ranks, body has %d", jt.Meta.NumRanks, len(jt.Ranks))
	}
	t := New(jt.Meta)
	for c, members := range jt.Comms {
		if c == 0 {
			continue // world is implicit
		}
		t.Comms.Add(members)
	}
	for r, evs := range jt.Ranks {
		out := make([]Event, len(evs))
		for i, je := range evs {
			op, ok := opByName[je.Op]
			if !ok {
				return nil, fmt.Errorf("trace: rank %d event %d: unknown op %q", r, i, je.Op)
			}
			e := Event{
				Op:    op,
				Entry: simtime.Time(je.Entry),
				Exit:  simtime.Time(je.Exit),
				Tag:   je.Tag,
				Root:  je.Root,
				Comm:  je.Comm,
				Bytes: je.Bytes,
				Reqs:  je.Reqs,
				Peer:  NoPeer,
				Req:   NoReq,
			}
			e.SendBytes = je.Sendb
			if je.Peer != nil {
				e.Peer = *je.Peer
			}
			if je.Req != nil {
				e.Req = *je.Req
			}
			out[i] = e
		}
		t.Ranks[r] = out
	}
	return t, nil
}
