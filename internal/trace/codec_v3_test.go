package trace

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"hpctradeoff/internal/simtime"
)

func encodeV3(t *testing.T, c *Columns) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteColumnsV3(&buf, c); err != nil {
		t.Fatalf("WriteColumnsV3: %v", err)
	}
	return buf.Bytes()
}

func TestV3RoundTrip(t *testing.T) {
	cols := richColumns(t)
	v3 := encodeV3(t, cols)

	if got := V3Size(cols); got != int64(len(v3)) {
		t.Fatalf("V3Size = %d, encoded %d bytes", got, len(v3))
	}

	want := cols.Materialize()

	// ReadColumns dispatches on the version byte.
	back, err := ReadColumns(bytes.NewReader(v3))
	if err != nil {
		t.Fatalf("ReadColumns(v3): %v", err)
	}
	requireSameEvents(t, want, back)
	if !commTablesEqual(&want.Comms, &back.Comms) {
		t.Fatal("comm tables differ after v3 round trip")
	}
	if back.Meta != want.Meta {
		t.Fatalf("meta = %+v, want %+v", back.Meta, want.Meta)
	}

	// Read materializes v3 the same way.
	tr, err := Read(bytes.NewReader(v3))
	if err != nil {
		t.Fatalf("Read(v3): %v", err)
	}
	requireSameEvents(t, want, tr)
}

func TestV3RoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		tr := randomTrace(rng)
		cols := FromTrace(tr)
		v3 := encodeV3(t, cols)
		back, err := ReadColumns(bytes.NewReader(v3))
		if err != nil {
			t.Fatalf("iter %d: ReadColumns(v3): %v", i, err)
		}
		requireSameEvents(t, tr, back)
		if !commTablesEqual(&tr.Comms, &back.Comms) {
			t.Fatalf("iter %d: comm tables differ", i)
		}
	}
}

// TestV3AliasCopyAgree checks that the zero-copy and portable decode
// paths produce identical columns and accept/reject identical inputs.
func TestV3AliasCopyAgree(t *testing.T) {
	cols := richColumns(t)
	v3 := encodeV3(t, cols)
	want := cols.Materialize()

	aligned := make([]byte, len(v3))
	copy(aligned, v3)
	if v3LittleEndian && v3Aliasable(aligned) {
		ac, err := parseV3(aligned, true)
		if err != nil {
			t.Fatalf("parseV3(alias): %v", err)
		}
		requireSameEvents(t, want, ac)
	}
	cc, err := parseV3(v3, false)
	if err != nil {
		t.Fatalf("parseV3(copy): %v", err)
	}
	requireSameEvents(t, want, cc)

	// Both modes must reject the same corruptions.
	for name, corrupt := range v3Corruptions(t, cols) {
		buf := make([]byte, len(corrupt))
		copy(buf, corrupt)
		_, errAlias := parseV3(buf, v3Aliasable(buf))
		_, errCopy := parseV3(corrupt, false)
		if (errAlias == nil) != (errCopy == nil) {
			t.Errorf("%s: alias err=%v, copy err=%v — modes disagree", name, errAlias, errCopy)
		}
		if errCopy == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

// v3Corruptions builds a family of invalid v3 images from a valid one:
// truncated headers, misaligned extents, extents pointing past EOF, and
// header/stream size mismatches. Every one must be rejected.
func v3Corruptions(t *testing.T, cols *Columns) map[string][]byte {
	t.Helper()
	good := encodeV3(t, cols)
	metaLen := binary.LittleEndian.Uint64(good[24:32])
	extOff := binary.LittleEndian.Uint64(good[32:40])

	patch := func(mut func(b []byte)) []byte {
		b := make([]byte, len(good))
		copy(b, good)
		mut(b)
		return b
	}
	out := map[string][]byte{
		"truncated-header-8":  append([]byte(nil), good[:8]...),
		"truncated-header-47": append([]byte(nil), good[:47]...),
		"truncated-body":      append([]byte(nil), good[:len(good)-9]...),
		"trailing-garbage":    append(append([]byte(nil), good...), 0xEE),
		"file-size-lie": patch(func(b []byte) {
			binary.LittleEndian.PutUint64(b[40:48], uint64(len(b))+64)
		}),
		"bad-header-size": patch(func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:12], 128)
		}),
		"meta-out-of-bounds": patch(func(b []byte) {
			binary.LittleEndian.PutUint64(b[24:32], uint64(len(b))*2)
		}),
		"extent-table-moved": patch(func(b []byte) {
			binary.LittleEndian.PutUint64(b[32:40], extOff+8)
		}),
		"rank-count-overflow": patch(func(b []byte) {
			binary.LittleEndian.PutUint32(b[12:16], 1<<30)
		}),
		// Knock the first rank's op column offset off 8-byte alignment.
		"misaligned-extent": patch(func(b []byte) {
			off := binary.LittleEndian.Uint64(b[extOff+24:])
			binary.LittleEndian.PutUint64(b[extOff+24:], off+1)
		}),
		// Point the entry column past EOF.
		"extent-past-eof": patch(func(b []byte) {
			binary.LittleEndian.PutUint64(b[extOff+24+8:], uint64(len(b)))
		}),
		// Event count × elem size wraps around uint64.
		"extent-count-overflow": patch(func(b []byte) {
			binary.LittleEndian.PutUint64(b[extOff:], 1<<61)
		}),
		// Waitall window reaching outside the request arena: grow the
		// first rank's auxLen bytes to huge values.
		"aux-window-overflow": patch(func(b []byte) {
			auxLenOff := binary.LittleEndian.Uint64(b[extOff+24+8*10:])
			n := binary.LittleEndian.Uint64(b[extOff:])
			for i := uint64(0); i < n; i++ {
				binary.LittleEndian.PutUint32(b[auxLenOff+4*i:], 1<<30)
			}
		}),
	}
	_ = metaLen
	return out
}

func TestV3Rejections(t *testing.T) {
	cols := richColumns(t)
	for name, bad := range v3Corruptions(t, cols) {
		if _, err := ReadColumns(bytes.NewReader(bad)); err == nil {
			t.Errorf("%s: ReadColumns accepted corrupt v3 stream", name)
		}
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Errorf("%s: Read accepted corrupt v3 stream", name)
		}
	}
}

func writeV3File(t *testing.T, cols *Columns) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.v3")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := WriteColumnsV3(f, cols); err != nil {
		t.Fatalf("WriteColumnsV3: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return path
}

func TestOpenMappedV3(t *testing.T) {
	cols := richColumns(t)
	want := cols.Materialize()
	path := writeV3File(t, cols)

	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer m.Close()

	if m.Version != 3 {
		t.Fatalf("Version = %d, want 3", m.Version)
	}
	if mmapSupported && v3LittleEndian {
		if !m.ZeroCopy() {
			t.Fatal("ZeroCopy() = false on a platform that supports it")
		}
		if m.MappedBytes() != V3Size(cols) {
			t.Fatalf("MappedBytes = %d, want %d", m.MappedBytes(), V3Size(cols))
		}
	}
	requireSameEvents(t, want, m.Columns)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate on mapped trace: %v", err)
	}
}

// TestOpenMappedSetEventTimes verifies the MAP_PRIVATE contract: writes
// through SetEventTimes are visible in the mapping but never reach the
// file, so a later open sees the original times.
func TestOpenMappedSetEventTimes(t *testing.T) {
	cols := richColumns(t)
	path := writeV3File(t, cols)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}

	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	m.SetEventTimes(0, 0, simtime.Time(12345), simtime.Time(67890))
	var e Event
	m.EventAt(0, 0, &e)
	if e.Entry != 12345 || e.Exit != 67890 {
		t.Fatalf("SetEventTimes not visible: entry=%v exit=%v", e.Entry, e.Exit)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("SetEventTimes on a mapped trace modified the file")
	}

	m2, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("re-open: %v", err)
	}
	defer m2.Close()
	m2.EventAt(0, 0, &e)
	want := cols.Materialize().Ranks[0][0]
	if e.Entry != want.Entry || e.Exit != want.Exit {
		t.Fatalf("file times changed: entry=%v exit=%v, want %v/%v", e.Entry, e.Exit, want.Entry, want.Exit)
	}
}

// TestOpenMappedFallback checks that v1 and v2 files open through the
// same API, just without the zero-copy property.
func TestOpenMappedFallback(t *testing.T) {
	tr := richTrace(t)
	cols := FromTrace(tr)
	dir := t.TempDir()

	v1 := filepath.Join(dir, "trace.v1")
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write v1: %v", err)
	}
	if err := os.WriteFile(v1, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	v2 := filepath.Join(dir, "trace.v2")
	buf.Reset()
	if err := WriteColumns(&buf, cols); err != nil {
		t.Fatalf("WriteColumns: %v", err)
	}
	if err := os.WriteFile(v2, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		path    string
		version int
	}{{v1, 1}, {v2, 2}} {
		m, err := OpenMapped(tc.path)
		if err != nil {
			t.Fatalf("OpenMapped(%s): %v", tc.path, err)
		}
		if m.Version != tc.version {
			t.Errorf("%s: Version = %d, want %d", tc.path, m.Version, tc.version)
		}
		if m.ZeroCopy() {
			t.Errorf("%s: ZeroCopy() = true for a decode fallback", tc.path)
		}
		requireSameEvents(t, tr, m.Columns)
		if err := m.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}
}

func TestFileVersion(t *testing.T) {
	cols := richColumns(t)
	path := writeV3File(t, cols)
	v, err := FileVersion(path)
	if err != nil {
		t.Fatalf("FileVersion: %v", err)
	}
	if v != 3 {
		t.Fatalf("FileVersion = %d, want 3", v)
	}
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FileVersion(bad); err == nil {
		t.Fatal("FileVersion accepted garbage")
	}
}

func TestMappedCloseTwice(t *testing.T) {
	cols := richColumns(t)
	path := writeV3File(t, cols)
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// BenchmarkOpenV3 measures the cost of opening (not iterating) a v3
// file versus decoding the same trace from v2 — the headline number for
// the zero-copy format.
func BenchmarkOpenV3(b *testing.B) {
	cols := benchColumns(b)
	path := filepath.Join(b.TempDir(), "bench.v3")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := WriteColumnsV3(f, cols); err != nil {
		b.Fatal(err)
	}
	f.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := OpenMapped(path)
		if err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}

func BenchmarkDecodeV2(b *testing.B) {
	cols := benchColumns(b)
	var buf bytes.Buffer
	if err := WriteColumns(&buf, cols); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadColumns(bytes.NewReader(enc)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchColumns(b *testing.B) *Columns {
	b.Helper()
	bld := NewBuilder(Meta{App: "bench", Class: "B", Machine: "m", NumRanks: 8, RanksPerNode: 4})
	for i := 0; i < 200; i++ {
		richProgramN(bld, 8)
	}
	c, err := bld.BuildColumns()
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// richProgramN is a rank-count-parameterized slice of richProgram's op
// mix, suitable for looping to build large benchmark traces.
func richProgramN(b *Builder, ranks int) {
	for r := 0; r < ranks; r++ {
		b.Compute(r, simtime.Time(10+r))
	}
	q0 := b.Isend(0, 1, 0, 1024, CommWorld)
	q1 := b.Irecv(1, 0, 0, 1024, CommWorld)
	b.Wait(0, q0)
	b.Wait(1, q1)
	for r := 0; r < ranks; r++ {
		b.Collective(r, OpAllreduce, CommWorld, 0, 64)
	}
}
