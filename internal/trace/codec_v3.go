package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unsafe"

	"hpctradeoff/internal/simtime"
)

// Version 3 ("zero-copy"): the on-disk layout IS the in-memory Columns
// layout. After a fixed 64-byte header and a varint meta blob, the file
// holds one fixed-size extent record per rank and then the raw
// little-endian column arrays themselves — op bytes, int64 entry/exit
// times (not delta-coded), int32 field columns, and the two payload
// arenas — each 8-byte aligned within the file. A v3 file therefore
// maps into memory with mmap and zero decode: OpenMapped builds a
// *Columns whose column slices alias the mapping directly. The price is
// size (raw fixed-width fields instead of v2's varints); the payoff is
// that opening a trace allocates nothing proportional to its length.
//
// Safety contract: every extent is validated before any slice is
// formed — in bounds of the file, 8-byte aligned, no offset/length
// overflow — and every Waitall/Alltoallv row's arena window is checked
// against its arena's length, so a hostile file can never over-map or
// index out of the mapping. Read and ReadColumns accept v3 streams
// through the same parser (copy-decoding when the platform is
// big-endian or the buffer is unaligned), so acceptance is identical
// across the zero-copy and fallback paths.
//
// Layout (all integers little-endian):
//
//	[ 0, 4)   magic "HTRC"
//	[ 4, 5)   version 3 (uvarint-compatible single byte)
//	[ 5, 8)   zero padding
//	[ 8,12)   u32 header size (64)
//	[12,16)   u32 rank count
//	[16,24)   u64 meta blob offset
//	[24,32)   u64 meta blob length
//	[32,40)   u64 extent table offset (rankCount × 128-byte records)
//	[40,48)   u64 total file size (a shorter or longer input is rejected)
//	[48,64)   reserved (zero)
//
// Extent record (one per rank, 16 × u64 = 128 bytes):
//
//	n, reqArenaLen, sbArenaLen,
//	offsets of: op, entry, exit, peer, tag, root, req, comm, bytes,
//	            auxOff, auxLen, reqArena, sbArena

const (
	binaryVersionV3 = 3

	v3HeaderSize = 64
	v3ExtentSize = 16 * 8
	v3Align      = 8
)

// v3LittleEndian reports whether the host stores integers little-endian
// (the only layout v3 aliases without decoding).
var v3LittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// v3Extent is one rank's decoded extent record.
type v3Extent struct {
	n, reqLen, sbLen uint64
	// off holds the 13 column offsets in layout order.
	off [13]uint64
}

// v3 column element sizes, in layout order: op, entry, exit, peer, tag,
// root, req, comm, bytes, auxOff, auxLen, reqArena, sbArena.
var v3ElemSize = [13]uint64{1, 8, 8, 4, 4, 4, 4, 4, 8, 4, 4, 4, 8}

func v3AlignUp(off uint64) uint64 {
	return (off + v3Align - 1) &^ uint64(v3Align-1)
}

// v3Layout computes every rank's extents and the total file size for
// encoding c with a metaLen-byte meta blob.
func v3Layout(c *Columns, metaLen int) ([]v3Extent, uint64) {
	off := v3AlignUp(v3HeaderSize + uint64(metaLen))
	off = v3AlignUp(off + uint64(len(c.ranks))*v3ExtentSize)
	exts := make([]v3Extent, len(c.ranks))
	for r := range c.ranks {
		rc := &c.ranks[r]
		e := &exts[r]
		e.n = uint64(len(rc.op))
		e.reqLen = uint64(len(rc.reqArena))
		e.sbLen = uint64(len(rc.sbArena))
		counts := [13]uint64{e.n, e.n, e.n, e.n, e.n, e.n, e.n, e.n, e.n, e.n, e.n, e.reqLen, e.sbLen}
		for i := range e.off {
			off = v3AlignUp(off)
			e.off[i] = off
			off += counts[i] * v3ElemSize[i]
		}
	}
	return exts, v3AlignUp(off)
}

// V3Size returns the exact encoded size of c in the version-3 format —
// also its mapped-resident footprint, since a v3 file is its own
// in-memory representation.
func V3Size(c *Columns) int64 {
	var meta bytes.Buffer
	e := &encoder{bw: bufio.NewWriter(&meta)}
	writeMetaComms(e, c.Meta, &c.Comms)
	e.bw.Flush()
	_, size := v3Layout(c, meta.Len())
	return int64(size)
}

// v3ExtTableOff returns the extent table offset for a metaLen-byte meta
// blob (the layout is deterministic, so writer and reader agree).
func v3ExtTableOff(metaLen int) uint64 {
	return v3AlignUp(v3HeaderSize + uint64(metaLen))
}

// WriteColumnsV3 encodes c in the version-3 zero-copy binary format.
func WriteColumnsV3(w io.Writer, c *Columns) error {
	var meta bytes.Buffer
	me := &encoder{bw: bufio.NewWriterSize(&meta, 1<<12)}
	writeMetaComms(me, c.Meta, &c.Comms)
	me.bw.Flush()

	exts, fileSize := v3Layout(c, meta.Len())
	bw := bufio.NewWriterSize(w, 1<<16)
	var pos uint64

	var hdr [v3HeaderSize]byte
	copy(hdr[0:4], binaryMagic)
	hdr[4] = binaryVersionV3
	binary.LittleEndian.PutUint32(hdr[8:12], v3HeaderSize)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(c.ranks)))
	binary.LittleEndian.PutUint64(hdr[16:24], v3HeaderSize)
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(meta.Len()))
	binary.LittleEndian.PutUint64(hdr[32:40], v3ExtTableOff(meta.Len()))
	binary.LittleEndian.PutUint64(hdr[40:48], fileSize)
	bw.Write(hdr[:])
	pos += v3HeaderSize
	bw.Write(meta.Bytes())
	pos += uint64(meta.Len())

	pad := func(to uint64) {
		for ; pos < to; pos++ {
			bw.WriteByte(0)
		}
	}

	pad(v3ExtTableOff(meta.Len()))
	var rec [v3ExtentSize]byte
	for r := range exts {
		e := &exts[r]
		binary.LittleEndian.PutUint64(rec[0:], e.n)
		binary.LittleEndian.PutUint64(rec[8:], e.reqLen)
		binary.LittleEndian.PutUint64(rec[16:], e.sbLen)
		for i, off := range e.off {
			binary.LittleEndian.PutUint64(rec[24+8*i:], off)
		}
		bw.Write(rec[:])
		pos += v3ExtentSize
	}

	for r := range c.ranks {
		rc := &c.ranks[r]
		e := &exts[r]
		cols := [13]func(){
			func() { pos += writeV3Ops(bw, rc.op) },
			func() { pos += writeV3I64(bw, timesAsI64(rc.entry)) },
			func() { pos += writeV3I64(bw, timesAsI64(rc.exit)) },
			func() { pos += writeV3I32(bw, rc.peer) },
			func() { pos += writeV3I32(bw, rc.tag) },
			func() { pos += writeV3I32(bw, rc.root) },
			func() { pos += writeV3I32(bw, rc.req) },
			func() { pos += writeV3I32(bw, commsAsI32(rc.comm)) },
			func() { pos += writeV3I64(bw, rc.bytes) },
			func() { pos += writeV3U32(bw, rc.auxOff) },
			func() { pos += writeV3U32(bw, rc.auxLen) },
			func() { pos += writeV3I32(bw, rc.reqArena) },
			func() { pos += writeV3I64(bw, rc.sbArena) },
		}
		for i, write := range cols {
			pad(e.off[i])
			write()
		}
	}
	pad(fileSize)
	return bw.Flush()
}

// The slice-reinterpretation helpers below are layout-preserving views
// (simtime.Time and CommID are defined as int64/int32); they exist so
// the typed writers stay monomorphic.
func timesAsI64(s []simtime.Time) []int64 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&s[0])), len(s))
}

func commsAsI32(s []CommID) []int32 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&s[0])), len(s))
}

func writeV3Ops(bw *bufio.Writer, s []Op) uint64 {
	if len(s) == 0 {
		return 0
	}
	bw.Write(unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)))
	return uint64(len(s))
}

func writeV3I64(bw *bufio.Writer, s []int64) uint64 {
	if v3LittleEndian && len(s) > 0 {
		bw.Write(unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8))
		return uint64(len(s)) * 8
	}
	var b [8]byte
	for _, v := range s {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		bw.Write(b[:])
	}
	return uint64(len(s)) * 8
}

func writeV3I32(bw *bufio.Writer, s []int32) uint64 {
	if v3LittleEndian && len(s) > 0 {
		bw.Write(unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4))
		return uint64(len(s)) * 4
	}
	var b [4]byte
	for _, v := range s {
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		bw.Write(b[:])
	}
	return uint64(len(s)) * 4
}

func writeV3U32(bw *bufio.Writer, s []uint32) uint64 {
	if v3LittleEndian && len(s) > 0 {
		bw.Write(unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4))
		return uint64(len(s)) * 4
	}
	var b [4]byte
	for _, v := range s {
		binary.LittleEndian.PutUint32(b[:], v)
		bw.Write(b[:])
	}
	return uint64(len(s)) * 4
}

// v3Aliasable reports whether data can back zero-copy column slices:
// a little-endian host and an 8-byte-aligned base (mmap regions always
// are; heap buffers almost always are, but it is checked, not assumed).
func v3Aliasable(data []byte) bool {
	return v3LittleEndian && len(data) > 0 &&
		uintptr(unsafe.Pointer(&data[0]))%v3Align == 0
}

// parseV3 parses a complete v3 file image. When alias is true the
// returned Columns' slices point directly into data (zero decode; the
// caller owns data's lifetime); otherwise every column is copied out
// with explicit little-endian decoding, which works on any host.
// Either way the same validation runs first, so the two modes accept
// exactly the same inputs.
func parseV3(data []byte, alias bool) (*Columns, error) {
	if len(data) < v3HeaderSize {
		return nil, fmt.Errorf("%w: v3 header truncated at %d bytes", ErrBadFormat, len(data))
	}
	if string(data[0:4]) != binaryMagic || data[4] != binaryVersionV3 {
		return nil, fmt.Errorf("%w: not a v3 stream", ErrBadFormat)
	}
	size := uint64(len(data))
	hdrSize := binary.LittleEndian.Uint32(data[8:12])
	numRanks := binary.LittleEndian.Uint32(data[12:16])
	metaOff := binary.LittleEndian.Uint64(data[16:24])
	metaLen := binary.LittleEndian.Uint64(data[24:32])
	extOff := binary.LittleEndian.Uint64(data[32:40])
	fileSize := binary.LittleEndian.Uint64(data[40:48])
	if hdrSize != v3HeaderSize {
		return nil, fmt.Errorf("%w: v3 header size %d", ErrBadFormat, hdrSize)
	}
	if fileSize != size {
		return nil, fmt.Errorf("%w: v3 header says %d bytes, stream holds %d", ErrBadFormat, fileSize, size)
	}
	if numRanks > maxRanks {
		return nil, fmt.Errorf("%w: implausible rank count %d", ErrBadFormat, numRanks)
	}
	if metaOff != v3HeaderSize || metaLen > size || metaOff+metaLen > size {
		return nil, fmt.Errorf("%w: v3 meta blob [%d,+%d) out of bounds", ErrBadFormat, metaOff, metaLen)
	}
	if extOff != v3ExtTableOff(int(metaLen)) {
		return nil, fmt.Errorf("%w: v3 extent table at %d, layout says %d", ErrBadFormat, extOff, v3ExtTableOff(int(metaLen)))
	}
	extEnd := extOff + uint64(numRanks)*v3ExtentSize
	if extEnd < extOff || extEnd > size {
		return nil, fmt.Errorf("%w: v3 extent table [%d,+%d×%d) out of bounds", ErrBadFormat, extOff, numRanks, v3ExtentSize)
	}

	md := &decoder{br: bufio.NewReader(bytes.NewReader(data[metaOff : metaOff+metaLen]))}
	meta, ct, err := parseMetaComms(md)
	if err != nil {
		return nil, err
	}
	if _, err := md.br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: v3 meta blob has trailing bytes", ErrBadFormat)
	}
	if meta.NumRanks != int(numRanks) {
		return nil, fmt.Errorf("%w: meta says %d ranks, v3 header says %d", ErrBadFormat, meta.NumRanks, numRanks)
	}

	c := &Columns{Meta: meta, Comms: ct, ranks: make([]rankCols, numRanks)}
	for r := 0; r < int(numRanks); r++ {
		if err := failRead.Fail(); err != nil {
			return nil, fmt.Errorf("trace: rank %d: %w", r, err)
		}
		rec := data[extOff+uint64(r)*v3ExtentSize:][:v3ExtentSize]
		var e v3Extent
		e.n = binary.LittleEndian.Uint64(rec[0:])
		e.reqLen = binary.LittleEndian.Uint64(rec[8:])
		e.sbLen = binary.LittleEndian.Uint64(rec[16:])
		for i := range e.off {
			e.off[i] = binary.LittleEndian.Uint64(rec[24+8*i:])
		}
		if e.n > maxRankEvents {
			return nil, fmt.Errorf("%w: rank %d: implausible event count %d", ErrBadFormat, r, e.n)
		}
		counts := [13]uint64{e.n, e.n, e.n, e.n, e.n, e.n, e.n, e.n, e.n, e.n, e.n, e.reqLen, e.sbLen}
		for i := range e.off {
			// The over-map guard: offset aligned, and offset+length inside
			// the file with no uint64 wraparound. A failing extent rejects
			// the whole stream before any slice over it exists.
			if counts[i] == 0 {
				continue
			}
			byteLen := counts[i] * v3ElemSize[i]
			if byteLen/v3ElemSize[i] != counts[i] ||
				e.off[i]%v3Align != 0 ||
				e.off[i] > size || byteLen > size-e.off[i] {
				return nil, fmt.Errorf("%w: rank %d column %d extent [%d,+%d) misaligned or out of bounds",
					ErrBadFormat, r, i, e.off[i], byteLen)
			}
		}
		rc := &c.ranks[r]
		if alias {
			aliasV3Rank(rc, data, &e)
		} else {
			copyV3Rank(rc, data, &e)
		}
		// Semantic validation over the (now typed) columns: ops must be
		// valid, and every Waitall/Alltoallv row's arena window must lie
		// inside its arena — EventAt subslices them unchecked. This is
		// the only per-event work on the open path, so the loop ranges
		// over the op column directly and touches the aux columns only
		// on the (rare) windowed ops.
		for i, op := range rc.op {
			if op >= numOps {
				return nil, fmt.Errorf("%w: rank %d event %d: bad op %d", ErrBadFormat, r, i, byte(op))
			}
			if op == OpWaitall {
				if uint64(rc.auxOff[i])+uint64(rc.auxLen[i]) > e.reqLen {
					return nil, fmt.Errorf("%w: rank %d event %d: waitall window [%d,+%d) outside arena of %d",
						ErrBadFormat, r, i, rc.auxOff[i], rc.auxLen[i], e.reqLen)
				}
			} else if op == OpAlltoallv {
				if uint64(rc.auxOff[i])+uint64(rc.auxLen[i]) > e.sbLen {
					return nil, fmt.Errorf("%w: rank %d event %d: alltoallv window [%d,+%d) outside arena of %d",
						ErrBadFormat, r, i, rc.auxOff[i], rc.auxLen[i], e.sbLen)
				}
			}
		}
	}
	return c, nil
}

// aliasV3Rank points one rank's columns directly into the file image.
func aliasV3Rank(rc *rankCols, data []byte, e *v3Extent) {
	n := int(e.n)
	at := func(i int) unsafe.Pointer { return unsafe.Pointer(&data[e.off[i]]) }
	if n > 0 {
		rc.op = unsafe.Slice((*Op)(at(0)), n)
		rc.entry = unsafe.Slice((*simtime.Time)(at(1)), n)
		rc.exit = unsafe.Slice((*simtime.Time)(at(2)), n)
		rc.peer = unsafe.Slice((*int32)(at(3)), n)
		rc.tag = unsafe.Slice((*int32)(at(4)), n)
		rc.root = unsafe.Slice((*int32)(at(5)), n)
		rc.req = unsafe.Slice((*int32)(at(6)), n)
		rc.comm = unsafe.Slice((*CommID)(at(7)), n)
		rc.bytes = unsafe.Slice((*int64)(at(8)), n)
		rc.auxOff = unsafe.Slice((*uint32)(at(9)), n)
		rc.auxLen = unsafe.Slice((*uint32)(at(10)), n)
	}
	if e.reqLen > 0 {
		rc.reqArena = unsafe.Slice((*int32)(at(11)), int(e.reqLen))
	}
	if e.sbLen > 0 {
		rc.sbArena = unsafe.Slice((*int64)(at(12)), int(e.sbLen))
	}
}

// copyV3Rank decodes one rank's columns into fresh slices with explicit
// little-endian reads — the portable path for big-endian hosts,
// unaligned buffers, and streamed Read/ReadColumns fallback.
func copyV3Rank(rc *rankCols, data []byte, e *v3Extent) {
	n := int(e.n)
	if n > 0 {
		rc.op = make([]Op, n)
		for i, b := range data[e.off[0]:][:n] {
			rc.op[i] = Op(b)
		}
		rc.entry = make([]simtime.Time, n)
		rc.exit = make([]simtime.Time, n)
		rc.peer = make([]int32, n)
		rc.tag = make([]int32, n)
		rc.root = make([]int32, n)
		rc.req = make([]int32, n)
		rc.comm = make([]CommID, n)
		rc.bytes = make([]int64, n)
		rc.auxOff = make([]uint32, n)
		rc.auxLen = make([]uint32, n)
		for i := 0; i < n; i++ {
			rc.entry[i] = simtime.Time(binary.LittleEndian.Uint64(data[e.off[1]+uint64(i)*8:]))
			rc.exit[i] = simtime.Time(binary.LittleEndian.Uint64(data[e.off[2]+uint64(i)*8:]))
			rc.peer[i] = int32(binary.LittleEndian.Uint32(data[e.off[3]+uint64(i)*4:]))
			rc.tag[i] = int32(binary.LittleEndian.Uint32(data[e.off[4]+uint64(i)*4:]))
			rc.root[i] = int32(binary.LittleEndian.Uint32(data[e.off[5]+uint64(i)*4:]))
			rc.req[i] = int32(binary.LittleEndian.Uint32(data[e.off[6]+uint64(i)*4:]))
			rc.comm[i] = CommID(binary.LittleEndian.Uint32(data[e.off[7]+uint64(i)*4:]))
			rc.bytes[i] = int64(binary.LittleEndian.Uint64(data[e.off[8]+uint64(i)*8:]))
			rc.auxOff[i] = binary.LittleEndian.Uint32(data[e.off[9]+uint64(i)*4:])
			rc.auxLen[i] = binary.LittleEndian.Uint32(data[e.off[10]+uint64(i)*4:])
		}
	}
	if e.reqLen > 0 {
		rc.reqArena = make([]int32, e.reqLen)
		for i := range rc.reqArena {
			rc.reqArena[i] = int32(binary.LittleEndian.Uint32(data[e.off[11]+uint64(i)*4:]))
		}
	}
	if e.sbLen > 0 {
		rc.sbArena = make([]int64, e.sbLen)
		for i := range rc.sbArena {
			rc.sbArena[i] = int64(binary.LittleEndian.Uint64(data[e.off[12]+uint64(i)*8:]))
		}
	}
}

// readV3Stream is the Read/ReadColumns fallback for a v3 stream: the
// remaining bytes are slurped (chunked, so a lying header cannot force
// a huge up-front allocation), the consumed magic+version prefix is
// reconstructed, and the image goes through the same parser as the
// mmap path — aliasing the heap buffer when the host allows it, so
// even the streamed path decodes nothing per event.
func readV3Stream(d *decoder) (*Columns, error) {
	data := make([]byte, 0, 1<<16)
	data = append(data, binaryMagic...)
	data = append(data, binaryVersionV3)
	const chunk = 1 << 16
	for {
		start := len(data)
		data = append(data, make([]byte, chunk)...)
		n, err := io.ReadFull(d.br, data[start:])
		data = data[:start+n]
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: v3 body: %v", ErrBadFormat, err)
		}
		if len(data) > math.MaxInt64/2 {
			return nil, fmt.Errorf("%w: v3 stream too large", ErrBadFormat)
		}
	}
	return parseV3(data, v3Aliasable(data))
}
