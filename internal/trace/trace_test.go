package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hpctradeoff/internal/simtime"
)

func mkP2PTrace(t *testing.T) *Trace {
	t.Helper()
	tr := New(Meta{App: "unit", Class: "A", Machine: "edison", NumRanks: 2, RanksPerNode: 1})
	tr.Ranks[0] = []Event{
		{Op: OpCompute, Entry: 0, Exit: 100, Peer: NoPeer, Req: NoReq},
		{Op: OpSend, Entry: 100, Exit: 150, Peer: 1, Tag: 7, Bytes: 4096, Comm: CommWorld, Req: NoReq},
	}
	tr.Ranks[1] = []Event{
		{Op: OpRecv, Entry: 0, Exit: 160, Peer: 0, Tag: 7, Bytes: 4096, Comm: CommWorld, Req: NoReq},
	}
	return tr
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	tr := mkP2PTrace(t)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestMeasuredTotalsAndCommFraction(t *testing.T) {
	tr := mkP2PTrace(t)
	if got := tr.MeasuredTotal(); got != 160 {
		t.Errorf("MeasuredTotal = %v, want 160", got)
	}
	// Comm time: rank0 send 50 + rank1 recv 160, averaged over 2 ranks.
	if got := tr.MeasuredComm(); got != 105 {
		t.Errorf("MeasuredComm = %v, want 105", got)
	}
	want := 105.0 / 160.0
	if got := tr.CommFraction(); got != want {
		t.Errorf("CommFraction = %v, want %v", got, want)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"exit before entry", func(tr *Trace) { tr.Ranks[0][0].Exit = -1 }},
		{"overlapping events", func(tr *Trace) { tr.Ranks[0][1].Entry = 50 }},
		{"peer out of range", func(tr *Trace) { tr.Ranks[0][1].Peer = 9 }},
		{"self message", func(tr *Trace) { tr.Ranks[0][1].Peer = 0 }},
		{"negative bytes", func(tr *Trace) { tr.Ranks[0][1].Bytes = -1 }},
		{"unmatched send", func(tr *Trace) { tr.Ranks[1] = tr.Ranks[1][:0] }},
		{"bytes mismatch", func(tr *Trace) { tr.Ranks[1][0].Bytes = 1 }},
		{"tag mismatch", func(tr *Trace) { tr.Ranks[1][0].Tag = 8 }},
		{"bad comm", func(tr *Trace) { tr.Ranks[0][1].Comm = 4 }},
		{"bad op", func(tr *Trace) { tr.Ranks[0][0].Op = numOps }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := mkP2PTrace(t)
			tc.mutate(tr)
			if err := tr.Validate(); err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

func TestValidateWaitSemantics(t *testing.T) {
	tr := New(Meta{App: "unit", NumRanks: 2})
	tr.Ranks[0] = []Event{
		{Op: OpIsend, Entry: 0, Exit: 1, Peer: 1, Tag: 0, Bytes: 8, Comm: CommWorld, Req: 0},
		{Op: OpWait, Entry: 1, Exit: 2, Peer: NoPeer, Req: 0},
	}
	tr.Ranks[1] = []Event{
		{Op: OpIrecv, Entry: 0, Exit: 1, Peer: 0, Tag: 0, Bytes: 8, Comm: CommWorld, Req: 5},
		{Op: OpWaitall, Entry: 1, Exit: 2, Peer: NoPeer, Req: NoReq, Reqs: []int32{5}},
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}

	t.Run("wait on unknown request", func(t *testing.T) {
		bad := mkP2PTrace(t)
		bad.Ranks[0] = append(bad.Ranks[0], Event{Op: OpWait, Entry: 150, Exit: 151, Peer: NoPeer, Req: 3})
		if err := bad.Validate(); err == nil {
			t.Fatal("want error for wait on unknown request")
		}
	})
	t.Run("dangling request", func(t *testing.T) {
		bad := New(Meta{App: "unit", NumRanks: 2})
		bad.Ranks[0] = []Event{
			{Op: OpIsend, Entry: 0, Exit: 1, Peer: 1, Tag: 0, Bytes: 8, Comm: CommWorld, Req: 0},
		}
		bad.Ranks[1] = []Event{
			{Op: OpRecv, Entry: 0, Exit: 1, Peer: 0, Tag: 0, Bytes: 8, Comm: CommWorld, Req: NoReq},
		}
		if err := bad.Validate(); err == nil {
			t.Fatal("want error for request never completed")
		}
	})
	t.Run("request reuse while pending", func(t *testing.T) {
		bad := New(Meta{App: "unit", NumRanks: 2})
		bad.Ranks[0] = []Event{
			{Op: OpIsend, Entry: 0, Exit: 1, Peer: 1, Tag: 0, Bytes: 8, Comm: CommWorld, Req: 0},
			{Op: OpIsend, Entry: 1, Exit: 2, Peer: 1, Tag: 1, Bytes: 8, Comm: CommWorld, Req: 0},
			{Op: OpWaitall, Entry: 2, Exit: 3, Peer: NoPeer, Req: NoReq, Reqs: []int32{0}},
		}
		bad.Ranks[1] = []Event{
			{Op: OpRecv, Entry: 0, Exit: 1, Peer: 0, Tag: 0, Bytes: 8, Comm: CommWorld, Req: NoReq},
			{Op: OpRecv, Entry: 1, Exit: 2, Peer: 0, Tag: 1, Bytes: 8, Comm: CommWorld, Req: NoReq},
		}
		if err := bad.Validate(); err == nil {
			t.Fatal("want error for request reuse")
		}
	})
}

func TestValidateCollectiveConsistency(t *testing.T) {
	mk := func() *Trace {
		tr := New(Meta{App: "unit", NumRanks: 3})
		for r := 0; r < 3; r++ {
			tr.Ranks[r] = []Event{
				{Op: OpAllreduce, Entry: 0, Exit: 10, Peer: NoPeer, Req: NoReq, Comm: CommWorld, Bytes: 64},
				{Op: OpBcast, Entry: 10, Exit: 20, Peer: NoPeer, Req: NoReq, Comm: CommWorld, Root: 1, Bytes: 32},
			}
		}
		return tr
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
	t.Run("missing member call", func(t *testing.T) {
		bad := mk()
		bad.Ranks[2] = bad.Ranks[2][:1]
		if err := bad.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("parameter mismatch", func(t *testing.T) {
		bad := mk()
		bad.Ranks[2][1].Root = 0
		if err := bad.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("root outside comm", func(t *testing.T) {
		bad := mk()
		for r := range bad.Ranks {
			bad.Ranks[r][1].Root = 7
		}
		if err := bad.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
}

func TestCommTable(t *testing.T) {
	ct := NewCommTable(8)
	if ct.Size(CommWorld) != 8 {
		t.Fatalf("world size = %d, want 8", ct.Size(CommWorld))
	}
	id := ct.Add([]int32{5, 1, 3, 3})
	if got := ct.Members(id); !reflect.DeepEqual(got, []int32{1, 3, 5}) {
		t.Errorf("Members = %v, want [1 3 5]", got)
	}
	if got := ct.Position(id, 3); got != 1 {
		t.Errorf("Position(3) = %d, want 1", got)
	}
	if got := ct.Position(id, 2); got != -1 {
		t.Errorf("Position(2) = %d, want -1", got)
	}
	if !ct.Contains(CommWorld, 7) || ct.Contains(id, 0) {
		t.Error("Contains gave wrong membership")
	}
	// Adding after a Position call must invalidate the cache correctly.
	id2 := ct.Add([]int32{0, 2})
	if got := ct.Position(id2, 2); got != 1 {
		t.Errorf("Position on comm added after cache = %d, want 1", got)
	}
}

// randomTrace builds a structurally valid pseudo-random trace for
// round-trip testing.
func randomTrace(rng *rand.Rand) *Trace {
	n := 2 + rng.Intn(6)
	tr := New(Meta{
		App: "rand", Class: "Q", Machine: "hopper",
		NumRanks: n, RanksPerNode: 1 + rng.Intn(4),
		Seed:          rng.Int63(),
		UsesCommSplit: rng.Intn(2) == 0,
	})
	if tr.Meta.UsesCommSplit {
		members := []int32{}
		for r := 0; r < n; r += 2 {
			members = append(members, int32(r))
		}
		if len(members) >= 2 {
			tr.Comms.Add(members)
		}
	}
	clock := make([]simtime.Time, n)
	push := func(r int, e Event) {
		e.Entry = clock[r] + simtime.Time(rng.Intn(100))
		e.Exit = e.Entry + simtime.Time(rng.Intn(1000))
		clock[r] = e.Exit
		tr.Ranks[r] = append(tr.Ranks[r], e)
	}
	for i := 0; i < 30; i++ {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		if src == dst {
			push(src, Event{Op: OpCompute, Peer: NoPeer, Req: NoReq})
			continue
		}
		tag := int32(rng.Intn(4))
		bytes := int64(rng.Intn(1 << 16))
		push(src, Event{Op: OpSend, Peer: int32(dst), Tag: tag, Bytes: bytes, Comm: CommWorld, Req: NoReq})
		push(dst, Event{Op: OpRecv, Peer: int32(src), Tag: tag, Bytes: bytes, Comm: CommWorld, Req: NoReq})
	}
	for r := 0; r < n; r++ {
		push(r, Event{Op: OpAllreduce, Peer: NoPeer, Req: NoReq, Comm: CommWorld, Bytes: 128})
	}
	return tr
}

func TestBinaryRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		if err := tr.Validate(); err != nil {
			t.Fatalf("generator produced invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write: %v", err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		return reflect.DeepEqual(tr.Meta, got.Meta) &&
			reflect.DeepEqual(tr.Ranks, got.Ranks) &&
			commTablesEqual(&tr.Comms, &got.Comms)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func commTablesEqual(a, b *CommTable) bool {
	if a.Len() != b.Len() {
		return false
	}
	for c := 0; c < a.Len(); c++ {
		if !reflect.DeepEqual(a.Members(CommID(c)), b.Members(CommID(c))) {
			return false
		}
	}
	return true
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{
		nil,
		[]byte("nope"),
		[]byte("HTRC"),             // truncated after magic
		[]byte("HTRC\x63"),         // wrong version
		[]byte("HTRC\x01\x03ab"),   // truncated string
		[]byte("HTRC\x01\x00\x00"), // truncated meta
		append([]byte("HTRC\x01\x00\x00\x00"), 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f), // absurd rank count
	} {
		if _, err := Read(bytes.NewReader(in)); err == nil {
			t.Errorf("Read(%q) = nil error, want failure", in)
		}
	}
}

func TestEventHelpers(t *testing.T) {
	e := Event{Op: OpAlltoall, Bytes: 10}
	if got := e.TotalSendBytes(8); got != 80 {
		t.Errorf("alltoall TotalSendBytes = %d, want 80", got)
	}
	e = Event{Op: OpAlltoallv, SendBytes: []int64{1, 2, 3}}
	if got := e.TotalSendBytes(3); got != 6 {
		t.Errorf("alltoallv TotalSendBytes = %d, want 6", got)
	}
	e = Event{Op: OpRecv, Bytes: 99}
	if got := e.TotalSendBytes(4); got != 0 {
		t.Errorf("recv TotalSendBytes = %d, want 0", got)
	}
	if OpIsend.IsNonblocking() != true || OpSend.IsNonblocking() != false {
		t.Error("IsNonblocking wrong")
	}
	if !OpBcast.IsRooted() || OpAllreduce.IsRooted() {
		t.Error("IsRooted wrong")
	}
	for op := Op(0); op < numOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty name", op)
		}
	}
}
