package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, tr); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("ReadJSON: %v", err)
		}
		if !reflect.DeepEqual(tr.Meta, got.Meta) {
			return false
		}
		if !commTablesEqual(&tr.Comms, &got.Comms) {
			return false
		}
		for r := range tr.Ranks {
			for i := range tr.Ranks[r] {
				a, b := tr.Ranks[r][i], got.Ranks[r][i]
				// Reqs/SendBytes nil-vs-empty normalize through JSON.
				a.Reqs, b.Reqs = nil, nil
				a.SendBytes, b.SendBytes = nil, nil
				if !reflect.DeepEqual(a, b) {
					t.Logf("rank %d event %d: %+v vs %+v", r, i, a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONBinaryAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tr := randomTrace(rng)
	var jb, bb bytes.Buffer
	if err := WriteJSON(&jb, tr); err != nil {
		t.Fatal(err)
	}
	if err := Write(&bb, tr); err != nil {
		t.Fatal(err)
	}
	jsonLen, binLen := jb.Len(), bb.Len()
	fromJSON, err := ReadJSON(&jb)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := Read(&bb)
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON.NumEvents() != fromBin.NumEvents() {
		t.Fatalf("codecs disagree: %d vs %d events", fromJSON.NumEvents(), fromBin.NumEvents())
	}
	if err := fromJSON.Validate(); err != nil {
		t.Errorf("JSON round trip invalid: %v", err)
	}
	if err := fromBin.Validate(); err != nil {
		t.Errorf("binary round trip invalid: %v", err)
	}
	// The binary format should be much denser.
	if binLen >= jsonLen {
		t.Errorf("binary (%d B) not smaller than JSON (%d B)", binLen, jsonLen)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"meta":{"NumRanks":3},"ranks":[[]]}`, // rank count mismatch
		`{"meta":{"NumRanks":1},"comms":[[0]],"ranks":[[{"op":"zap"}]]}`, // unknown op
	}
	for _, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("ReadJSON(%q) accepted", in)
		}
	}
}
