//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can memory-map trace
// files; when false, OpenMapped silently falls back to reading the
// file into memory.
const mmapSupported = true

// mmapFile maps f's first size bytes privately (copy-on-write, so
// SetEventTimes on a mapped trace stays a process-local write that
// never reaches the file). The file descriptor may be closed after
// mapping; the mapping persists until munmapFile.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
