package trace

import (
	"io"
	"strings"
	"testing"

	"hpctradeoff/internal/simtime"
)

const dumpiRank0 = `
# rank 0 of 2
MPI_Init entering at walltime 0.000000, cputime 0.0 seconds in thread 0.
MPI_Init returning at walltime 0.000100.

MPI_Isend entering at walltime 0.001000.
  int count=1024
  MPI_Datatype datatype=11 (MPI_DOUBLE)
  int dest=1
  int tag=7
  MPI_Comm comm=2 (MPI_COMM_WORLD)
  MPI_Request request=3
MPI_Isend returning at walltime 0.001005.

MPI_Wait entering at walltime 0.002000.
  MPI_Request request=3
MPI_Wait returning at walltime 0.002010.

MPI_Allreduce entering at walltime 0.003000.
  int count=2
  MPI_Datatype datatype=11 (MPI_DOUBLE)
  MPI_Comm comm=2 (MPI_COMM_WORLD)
MPI_Allreduce returning at walltime 0.003050.
`

const dumpiRank1 = `
MPI_Recv entering at walltime 0.000500.
  int count=1024
  MPI_Datatype datatype=11 (MPI_DOUBLE)
  int source=0
  int tag=7
  MPI_Comm comm=2 (MPI_COMM_WORLD)
MPI_Recv returning at walltime 0.001900.

MPI_Allreduce entering at walltime 0.002900.
  int count=2
  MPI_Datatype datatype=11 (MPI_DOUBLE)
  MPI_Comm comm=2 (MPI_COMM_WORLD)
MPI_Allreduce returning at walltime 0.003100.
`

func TestReadDUMPIASCII(t *testing.T) {
	tr, err := ReadDUMPIASCII(
		Meta{App: "imported", Class: "X", Machine: "edison", NumRanks: 2},
		[]io.Reader{strings.NewReader(dumpiRank0), strings.NewReader(dumpiRank1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0: compute(gap to isend), isend, compute, wait, compute, allreduce.
	ops := []Op{}
	for _, e := range tr.Ranks[0] {
		ops = append(ops, e.Op)
	}
	want := []Op{OpCompute, OpIsend, OpCompute, OpWait, OpCompute, OpAllreduce}
	if len(ops) != len(want) {
		t.Fatalf("rank 0 ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("rank 0 ops = %v, want %v", ops, want)
		}
	}
	isend := tr.Ranks[0][1]
	if isend.Bytes != 1024*8 {
		t.Errorf("isend bytes = %d, want 8192 (1024 doubles)", isend.Bytes)
	}
	if isend.Peer != 1 || isend.Tag != 7 || isend.Req != 3 {
		t.Errorf("isend fields: %+v", isend)
	}
	if isend.Entry != simtime.FromSeconds(0.001) {
		t.Errorf("isend entry = %v", isend.Entry)
	}
	ar := tr.Ranks[0][5]
	if ar.Op != OpAllreduce || ar.Bytes != 16 {
		t.Errorf("allreduce: %+v", ar)
	}
	// MPI_Init was skipped; its time became compute.
	if tr.Ranks[0][0].Op != OpCompute || tr.Ranks[0][0].Exit != simtime.FromSeconds(0.001) {
		t.Errorf("leading compute: %+v", tr.Ranks[0][0])
	}
}

func TestReadDUMPIASCIIWaitall(t *testing.T) {
	r0 := `
MPI_Irecv entering at walltime 0.001.
  int count=4
  MPI_Datatype datatype=6 (MPI_INT)
  int source=1
  int tag=0
  MPI_Comm comm=2 (MPI_COMM_WORLD)
  MPI_Request request=0
MPI_Irecv returning at walltime 0.0011.
MPI_Waitall entering at walltime 0.002.
  MPI_Request requests=[0]
MPI_Waitall returning at walltime 0.003.
`
	r1 := `
MPI_Send entering at walltime 0.0005.
  int count=4
  MPI_Datatype datatype=6 (MPI_INT)
  int dest=0
  int tag=0
  MPI_Comm comm=2 (MPI_COMM_WORLD)
MPI_Send returning at walltime 0.0006.
`
	tr, err := ReadDUMPIASCII(Meta{App: "w", NumRanks: 2},
		[]io.Reader{strings.NewReader(r0), strings.NewReader(r1)})
	if err != nil {
		t.Fatal(err)
	}
	var wa *Event
	for i := range tr.Ranks[0] {
		if tr.Ranks[0][i].Op == OpWaitall {
			wa = &tr.Ranks[0][i]
		}
	}
	if wa == nil || len(wa.Reqs) != 1 || wa.Reqs[0] != 0 {
		t.Fatalf("waitall not parsed: %+v", wa)
	}
	if tr.Ranks[1][1].Bytes != 16 {
		t.Errorf("send bytes = %d, want 16", tr.Ranks[1][1].Bytes)
	}
}

func TestReadDUMPIASCIIErrors(t *testing.T) {
	cases := []struct {
		name  string
		rank0 string
	}{
		{"nested call", "MPI_Send entering at walltime 0.1.\nMPI_Recv entering at walltime 0.2.\n"},
		{"unmatched return", "MPI_Send returning at walltime 0.1.\n"},
		{"eof inside call", "MPI_Send entering at walltime 0.1.\n  int dest=1\n"},
		{"missing peer", "MPI_Send entering at walltime 0.1.\n  int count=1\nMPI_Send returning at walltime 0.2.\n"},
		{"bad walltime", "MPI_Send entering at walltime xyz.\n"},
		{"time reversal", `MPI_Barrier entering at walltime 0.5.
MPI_Comm comm=2 (MPI_COMM_WORLD)
MPI_Barrier returning at walltime 0.6.
MPI_Barrier entering at walltime 0.1.
MPI_Comm comm=2 (MPI_COMM_WORLD)
MPI_Barrier returning at walltime 0.2.
`},
		{"sub-communicator", `MPI_Barrier entering at walltime 0.1.
MPI_Comm comm=5 (user comm)
MPI_Barrier returning at walltime 0.2.
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadDUMPIASCII(Meta{App: "e", NumRanks: 1},
				[]io.Reader{strings.NewReader(tc.rank0)})
			if err == nil {
				t.Fatal("accepted bad input")
			}
		})
	}
	if _, err := ReadDUMPIASCII(Meta{NumRanks: 2}, []io.Reader{strings.NewReader("")}); err == nil {
		t.Fatal("stream count mismatch accepted")
	}
}

func TestDumpiImportReplayable(t *testing.T) {
	// The imported trace must validate (it did, inside ReadDUMPIASCII)
	// and round-trip through the binary codec.
	tr, err := ReadDUMPIASCII(
		Meta{App: "imported", NumRanks: 2},
		[]io.Reader{strings.NewReader(dumpiRank0), strings.NewReader(dumpiRank1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEvents() != tr.NumEvents() {
		t.Errorf("round trip lost events: %d vs %d", back.NumEvents(), tr.NumEvents())
	}
}
