package trace

import (
	"testing"

	"hpctradeoff/internal/simtime"
)

func TestBuilderFullSurface(t *testing.T) {
	b := NewBuilder(Meta{App: "b", NumRanks: 4})
	sub := b.AddComm([]int32{0, 1})
	if b.Comms().Size(sub) != 2 {
		t.Fatalf("sub comm size = %d", b.Comms().Size(sub))
	}

	b.Compute(0, simtime.Millisecond)
	b.Send(0, 1, 3, 128, CommWorld)
	b.Recv(1, 0, 3, 128, CommWorld)

	r := b.Irecv(2, 3, 9, 64, CommWorld)
	s := b.Isend(2, 3, 10, 32, CommWorld)
	b.Waitall(2, r, s)
	b.Wait(3, b.Isend(3, 2, 9, 64, CommWorld))
	b.Recv(3, 2, 10, 32, CommWorld)

	// WaitOpen drains everything outstanding (and is a no-op when
	// nothing is pending).
	q1 := b.Irecv(0, 1, 20, 16, CommWorld)
	q2 := b.Irecv(0, 1, 21, 16, CommWorld)
	_ = q1
	_ = q2
	b.WaitOpen(0)
	b.WaitOpen(0) // nothing open now
	b.Send(1, 0, 20, 16, CommWorld)
	b.Send(1, 0, 21, 16, CommWorld)

	b.Collective(0, OpAllreduce, sub, 0, 8)
	b.Collective(1, OpAllreduce, sub, 0, 8)
	b.Alltoallv(0, sub, []int64{0, 5})
	b.Alltoallv(1, sub, []int64{7, 0})

	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Meta.UsesCommSplit {
		t.Error("AddComm should set the comm-split flag")
	}
	// WaitOpen emitted one waitall with both requests.
	var wa *Event
	for i := range tr.Ranks[0] {
		if tr.Ranks[0][i].Op == OpWaitall {
			wa = &tr.Ranks[0][i]
		}
	}
	if wa == nil || len(wa.Reqs) != 2 {
		t.Fatalf("WaitOpen waitall: %+v", wa)
	}
	// Deterministic request order.
	if wa.Reqs[0] > wa.Reqs[1] {
		t.Error("WaitOpen requests not sorted")
	}
}

func TestBuilderProducesInvalidTraceError(t *testing.T) {
	b := NewBuilder(Meta{App: "bad", NumRanks: 2})
	b.Send(0, 1, 0, 64, CommWorld) // never received
	if _, err := b.Build(); err == nil {
		t.Fatal("unmatched send accepted by Build")
	}
}

func TestBuilderWaitallEmptyNoop(t *testing.T) {
	b := NewBuilder(Meta{App: "n", NumRanks: 2})
	b.Waitall(0) // no requests: must emit nothing
	b.Compute(0, 1)
	b.Compute(1, 1)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ranks[0]) != 1 {
		t.Errorf("rank 0 has %d events, want 1", len(tr.Ranks[0]))
	}
}
