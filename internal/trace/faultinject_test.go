package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"hpctradeoff/internal/faultinject"
)

// The codec-read failpoint turns a decode into an I/O-style failure at
// a chosen rank, so tests can exercise read-error paths on structurally
// valid inputs; disarmed, the codec is untouched.
func TestCodecReadFailpoint(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(1)))
	var aos, col bytes.Buffer
	if err := Write(&aos, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteColumns(&col, FromTrace(tr)); err != nil {
		t.Fatal(err)
	}

	if err := faultinject.Arm(1, []faultinject.Rule{
		{Site: "trace/codec-read", Hits: []uint64{1}},
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Disarm)

	if _, err := Read(bytes.NewReader(aos.Bytes())); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("Read err = %v, want injected", err)
	}
	// The rule is exhausted after one firing per arm; re-arm for the
	// columnar path.
	if err := faultinject.Arm(2, []faultinject.Rule{
		{Site: "trace/codec-read", Hits: []uint64{1}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadColumns(bytes.NewReader(col.Bytes())); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("ReadColumns err = %v, want injected", err)
	}

	faultinject.Disarm()
	if _, err := Read(bytes.NewReader(aos.Bytes())); err != nil {
		t.Errorf("disarmed Read failed: %v", err)
	}
	if _, err := ReadColumns(bytes.NewReader(col.Bytes())); err != nil {
		t.Errorf("disarmed ReadColumns failed: %v", err)
	}
}
