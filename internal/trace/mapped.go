package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Mapped is a trace opened by OpenMapped: a *Columns plus the backing
// it aliases. For a version-3 file on a zero-copy-capable platform
// (little-endian, working mmap) the columns point straight into the
// private file mapping — opening allocates nothing proportional to the
// trace, and the resident cost is shared, evictable page cache. On any
// other platform or file version, Columns is an ordinary heap decode
// and Mapped merely remembers that the fast path was unavailable.
//
// Close releases the mapping; the Columns must not be used afterwards
// when ZeroCopy reports true.
type Mapped struct {
	*Columns
	// Version is the codec version of the file that was opened (1, 2,
	// or 3).
	Version int

	data   []byte
	mapped bool // data is an mmap region (vs a heap buffer or nil)
	zero   bool // columns alias data (no decode happened)
}

// ZeroCopy reports whether the columns alias the file mapping directly
// (true only for v3 files on a little-endian host with mmap).
func (m *Mapped) ZeroCopy() bool { return m.zero }

// Image returns the raw file image backing the trace (the mmap region
// or the heap buffer it was decoded from), or nil when the trace came
// through the v1/v2 streaming fallback and no image is retained. The
// bytes are read-only as far as the caller is concerned: writing to a
// MAP_PRIVATE region would silently diverge from the file. It exists so
// integrity layers (the trace cache) can checksum exactly the bytes
// that were opened, without a second read of the file.
func (m *Mapped) Image() []byte { return m.data }

// MappedBytes returns the size of the backing image the columns alias,
// or 0 when the trace was decoded onto the heap.
func (m *Mapped) MappedBytes() int64 {
	if !m.zero {
		return 0
	}
	return int64(len(m.data))
}

// Close unmaps the file image. It is safe to call on a fallback-decoded
// Mapped (a no-op beyond dropping the buffer) and safe to call twice.
func (m *Mapped) Close() error {
	data, mapped := m.data, m.mapped
	m.data, m.mapped, m.zero = nil, false, false
	if mapped {
		return munmapFile(data)
	}
	return nil
}

// VersionV3 is the zero-copy codec version number, exported so cache
// layers can record which codec an entry was written with and
// invalidate entries when the format advances.
const VersionV3 = binaryVersionV3

// SniffVersion reads just enough of a binary trace stream to report its
// codec version, without decoding anything else.
func SniffVersion(r io.Reader) (int, error) {
	var hdr [len(binaryMagic) + binary.MaxVarintLen64]byte
	n, err := io.ReadAtLeast(r, hdr[:], len(binaryMagic)+1)
	if err != nil {
		return 0, fmt.Errorf("%w: missing magic: %v", ErrBadFormat, err)
	}
	if string(hdr[:len(binaryMagic)]) != binaryMagic {
		return 0, fmt.Errorf("%w: magic %q", ErrBadFormat, hdr[:len(binaryMagic)])
	}
	v, w := binary.Uvarint(hdr[len(binaryMagic):n])
	if w <= 0 {
		return 0, fmt.Errorf("%w: truncated version", ErrBadFormat)
	}
	return int(v), nil
}

// FileVersion reports the codec version of the trace file at path.
func FileVersion(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return SniffVersion(f)
}

// OpenMapped opens the trace file at path for reading with the cheapest
// access path the file and platform allow:
//
//   - a version-3 file on a little-endian host with mmap maps in
//     privately and the columns alias the mapping — zero decode, zero
//     copy, resident cost shared with the page cache;
//   - a version-3 file elsewhere (big-endian host, no mmap, unaligned
//     buffer) is read and copy-decoded through the same validating
//     parser, so acceptance is identical;
//   - a version-1 or version-2 file falls back to ReadColumns.
//
// The returned Mapped's Columns implements Source like any other trace;
// SetEventTimes on a zero-copy trace writes copy-on-write pages that
// never reach the file. Callers must Close it when done.
func OpenMapped(path string) (*Mapped, error) {
	version, err := FileVersion(path)
	if err != nil {
		return nil, err
	}
	if version != binaryVersionV3 {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		c, err := ReadColumns(f)
		if err != nil {
			return nil, err
		}
		return &Mapped{Columns: c, Version: version}, nil
	}

	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < v3HeaderSize {
		return nil, fmt.Errorf("%w: v3 file %s truncated at %d bytes", ErrBadFormat, path, size)
	}

	if mmapSupported && v3LittleEndian {
		data, err := mmapFile(f, size)
		if err == nil {
			c, perr := parseV3(data, v3Aliasable(data))
			if perr != nil {
				munmapFile(data)
				return nil, fmt.Errorf("trace: %s: %w", path, perr)
			}
			return &Mapped{Columns: c, Version: version, data: data, mapped: true, zero: true}, nil
		}
		// fall through: an mmap failure (exotic filesystem, resource
		// limits) degrades to the read path, never to an error.
	}

	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	alias := v3Aliasable(data)
	c, perr := parseV3(data, alias)
	if perr != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, perr)
	}
	return &Mapped{Columns: c, Version: version, data: data, zero: alias}, nil
}
