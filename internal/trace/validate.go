package trace

import (
	"errors"
	"fmt"
)

// Validation checks the structural invariants a replayable trace must
// satisfy. Replay engines depend on these and may deadlock or panic on
// traces that violate them, so generators and decoders validate first.
// The checks run over the Source interface, so both representations
// (array-of-structs and columnar) validate without conversion.

// ErrInvalid is wrapped by all validation failures.
var ErrInvalid = errors.New("trace: invalid")

// Validate checks the trace's structural invariants:
//
//   - per-rank timestamps are monotone (Entry ≤ Exit, non-decreasing);
//   - p2p peers are in range and are not the sender itself;
//   - nonblocking requests are unique per rank and every wait references
//     a previously issued, not-yet-completed request;
//   - every send has a matching receive with identical (peer, tag, comm,
//     bytes) and vice versa;
//   - collective events appear in the same order with identical
//     parameters on every member of their communicator;
//   - communicator references are in range, and every rank that issues
//     an event on a communicator is a member of it.
func (t *Trace) Validate() error {
	if len(t.Ranks) != t.Meta.NumRanks {
		return fmt.Errorf("%w: %d rank streams, meta says %d", ErrInvalid, len(t.Ranks), t.Meta.NumRanks)
	}
	return validateSource(t)
}

func validateSource(src Source) error {
	if err := validateLocal(src); err != nil {
		return err
	}
	if err := validateMatching(src); err != nil {
		return err
	}
	return validateCollectives(src)
}

func validateLocal(src Source) error {
	n := int32(src.TraceMeta().NumRanks)
	comms := src.TraceComms()
	var e Event
	for rank := 0; rank < int(n); rank++ {
		pending := make(map[int32]bool)
		prevExit := int64(-1)
		m := src.RankLen(rank)
		for i := 0; i < m; i++ {
			src.EventAt(rank, i, &e)
			if !e.Op.Valid() {
				return fmt.Errorf("%w: rank %d event %d: bad op %d", ErrInvalid, rank, i, e.Op)
			}
			if e.Exit < e.Entry {
				return fmt.Errorf("%w: rank %d event %d: exit %v before entry %v", ErrInvalid, rank, i, e.Exit, e.Entry)
			}
			if int64(e.Entry) < prevExit {
				return fmt.Errorf("%w: rank %d event %d: entry %v before previous exit", ErrInvalid, rank, i, e.Entry)
			}
			prevExit = int64(e.Exit)

			if e.Op.IsP2P() {
				if e.Peer < 0 || e.Peer >= n {
					return fmt.Errorf("%w: rank %d event %d: peer %d out of range", ErrInvalid, rank, i, e.Peer)
				}
				if int(e.Peer) == rank {
					return fmt.Errorf("%w: rank %d event %d: self-messaging", ErrInvalid, rank, i)
				}
				if e.Bytes < 0 {
					return fmt.Errorf("%w: rank %d event %d: negative bytes", ErrInvalid, rank, i)
				}
			}
			if e.Op.IsCollective() || e.Op.IsP2P() {
				if int(e.Comm) < 0 || int(e.Comm) >= comms.Len() {
					return fmt.Errorf("%w: rank %d event %d: comm %d out of range", ErrInvalid, rank, i, e.Comm)
				}
				if !comms.Contains(e.Comm, int32(rank)) {
					return fmt.Errorf("%w: rank %d event %d: rank not in comm %d", ErrInvalid, rank, i, e.Comm)
				}
			}
			switch {
			case e.Op.IsNonblocking():
				if e.Req == NoReq {
					return fmt.Errorf("%w: rank %d event %d: nonblocking op without request", ErrInvalid, rank, i)
				}
				if pending[e.Req] {
					return fmt.Errorf("%w: rank %d event %d: request %d reused while pending", ErrInvalid, rank, i, e.Req)
				}
				pending[e.Req] = true
			case e.Op == OpWait:
				if !pending[e.Req] {
					return fmt.Errorf("%w: rank %d event %d: wait on unknown request %d", ErrInvalid, rank, i, e.Req)
				}
				delete(pending, e.Req)
			case e.Op == OpWaitall:
				for _, r := range e.Reqs {
					if !pending[r] {
						return fmt.Errorf("%w: rank %d event %d: waitall on unknown request %d", ErrInvalid, rank, i, r)
					}
					delete(pending, r)
				}
			case e.Op == OpAlltoallv:
				if len(e.SendBytes) != comms.Size(e.Comm) {
					return fmt.Errorf("%w: rank %d event %d: alltoallv counts len %d != comm size %d",
						ErrInvalid, rank, i, len(e.SendBytes), comms.Size(e.Comm))
				}
			}
			if e.Op.IsRooted() && !comms.Contains(e.Comm, e.Root) {
				return fmt.Errorf("%w: rank %d event %d: root %d not in comm %d", ErrInvalid, rank, i, e.Root, e.Comm)
			}
		}
		if len(pending) != 0 {
			return fmt.Errorf("%w: rank %d: %d requests never completed", ErrInvalid, rank, len(pending))
		}
	}
	return nil
}

// matchKey identifies a point-to-point matching bucket. Trace replays
// match deterministically on (sender, receiver, tag, comm) in program
// order, the way the generated (non-wildcard) programs communicate.
type matchKey struct {
	src, dst, tag int32
	comm          CommID
}

func validateMatching(src Source) error {
	type msg struct{ bytes int64 }
	sends := make(map[matchKey][]msg)
	recvs := make(map[matchKey][]msg)
	var e Event
	n := src.TraceMeta().NumRanks
	for rank := 0; rank < n; rank++ {
		m := src.RankLen(rank)
		for i := 0; i < m; i++ {
			src.EventAt(rank, i, &e)
			switch e.Op {
			case OpSend, OpIsend:
				k := matchKey{int32(rank), e.Peer, e.Tag, e.Comm}
				sends[k] = append(sends[k], msg{e.Bytes})
			case OpRecv, OpIrecv:
				k := matchKey{e.Peer, int32(rank), e.Tag, e.Comm}
				recvs[k] = append(recvs[k], msg{e.Bytes})
			}
		}
	}
	for k, ss := range sends {
		rs := recvs[k]
		if len(ss) != len(rs) {
			return fmt.Errorf("%w: channel %d->%d tag %d comm %d: %d sends vs %d recvs",
				ErrInvalid, k.src, k.dst, k.tag, k.comm, len(ss), len(rs))
		}
		for i := range ss {
			if ss[i].bytes != rs[i].bytes {
				return fmt.Errorf("%w: channel %d->%d tag %d comm %d msg %d: %d bytes sent vs %d expected",
					ErrInvalid, k.src, k.dst, k.tag, k.comm, i, ss[i].bytes, rs[i].bytes)
			}
		}
		delete(recvs, k)
	}
	for k, rs := range recvs {
		if len(rs) > 0 {
			return fmt.Errorf("%w: channel %d->%d tag %d comm %d: %d recvs with no send",
				ErrInvalid, k.src, k.dst, k.tag, k.comm, len(rs))
		}
	}
	return nil
}

type collSig struct {
	op    Op
	root  int32
	bytes int64
}

func validateCollectives(src Source) error {
	// Per communicator, every member must observe the same ordered
	// sequence of collective signatures.
	comms := src.TraceComms()
	perComm := make([][][]collSig, comms.Len()) // [comm][memberPos][]sig
	for c := range perComm {
		perComm[c] = make([][]collSig, comms.Size(CommID(c)))
	}
	var e Event
	n := src.TraceMeta().NumRanks
	for rank := 0; rank < n; rank++ {
		m := src.RankLen(rank)
		for i := 0; i < m; i++ {
			src.EventAt(rank, i, &e)
			if !e.Op.IsCollective() {
				continue
			}
			pos := comms.Position(e.Comm, int32(rank))
			sig := collSig{e.Op, e.Root, e.Bytes}
			if e.Op == OpAlltoallv {
				sig.bytes = 0 // per-member payloads differ by design
			}
			perComm[e.Comm][pos] = append(perComm[e.Comm][pos], sig)
		}
	}
	for c, byMember := range perComm {
		for pos := 1; pos < len(byMember); pos++ {
			if len(byMember[pos]) != len(byMember[0]) {
				return fmt.Errorf("%w: comm %d: member %d saw %d collectives, member 0 saw %d",
					ErrInvalid, c, pos, len(byMember[pos]), len(byMember[0]))
			}
			for i := range byMember[pos] {
				if byMember[pos][i] != byMember[0][i] {
					return fmt.Errorf("%w: comm %d collective %d: member %d signature %+v != member 0 %+v",
						ErrInvalid, c, i, pos, byMember[pos][i], byMember[0][i])
				}
			}
		}
	}
	return nil
}
