package trace

import (
	"fmt"

	"hpctradeoff/internal/simtime"
)

// CommID names a communicator within a trace. CommWorld (0) always
// exists and contains every rank.
type CommID int32

// CommWorld is the identifier of MPI_COMM_WORLD.
const CommWorld CommID = 0

// NoPeer marks the Peer field of events that have no point-to-point
// peer, and NoReq marks an unused request field.
const (
	NoPeer = -1
	NoReq  = -1
)

// Event is one recorded MPI call (or local computation interval) on one
// rank. Entry and Exit are the measured wall-clock times of the call on
// the machine where the trace was collected; replay tools use their
// difference for computation and re-cost communication themselves.
//
// Field usage by operation:
//
//	Compute                Entry/Exit only
//	Send/Isend             Peer (destination, world rank), Tag, Bytes, Comm, Req (Isend)
//	Recv/Irecv             Peer (source, world rank), Tag, Bytes, Comm, Req (Irecv)
//	Wait                   Req
//	Waitall                Reqs
//	Barrier                Comm
//	Bcast/Reduce/...       Comm, Root, Bytes (per-member payload)
//	Alltoall               Comm, Bytes (per-destination payload)
//	Alltoallv              Comm, SendBytes (per-destination payloads)
type Event struct {
	Op    Op
	Entry simtime.Time
	Exit  simtime.Time

	Peer  int32
	Tag   int32
	Root  int32
	Comm  CommID
	Req   int32
	Bytes int64

	// Reqs holds the request set of a Waitall.
	Reqs []int32
	// SendBytes holds the per-destination payloads of an Alltoallv,
	// indexed by communicator member position (not world rank).
	SendBytes []int64
}

// Duration returns the measured time the call occupied on its rank.
func (e *Event) Duration() simtime.Time { return e.Exit - e.Entry }

// TotalSendBytes returns the bytes this event injects into the network
// from the calling rank's perspective: the payload of sends, and the
// per-member payload times fan-out for the sending side of collectives.
// Receives contribute zero. nMembers is the size of the event's
// communicator (used for alltoall fan-out).
func (e *Event) TotalSendBytes(nMembers int) int64 {
	switch e.Op {
	case OpSend, OpIsend:
		return e.Bytes
	case OpBcast, OpReduce, OpAllreduce, OpGather, OpAllgather,
		OpScatter, OpReduceScatter:
		return e.Bytes
	case OpAlltoall:
		return e.Bytes * int64(nMembers)
	case OpAlltoallv:
		var sum int64
		for _, b := range e.SendBytes {
			sum += b
		}
		return sum
	}
	return 0
}

// String renders a compact single-line description, for debugging.
func (e *Event) String() string {
	switch {
	case e.Op == OpCompute:
		return fmt.Sprintf("compute[%v..%v]", e.Entry, e.Exit)
	case e.Op.IsP2P():
		return fmt.Sprintf("%s(peer=%d tag=%d bytes=%d req=%d)[%v..%v]",
			e.Op, e.Peer, e.Tag, e.Bytes, e.Req, e.Entry, e.Exit)
	case e.Op.IsWait():
		return fmt.Sprintf("%s(req=%d reqs=%v)[%v..%v]", e.Op, e.Req, e.Reqs, e.Entry, e.Exit)
	default:
		return fmt.Sprintf("%s(comm=%d root=%d bytes=%d)[%v..%v]",
			e.Op, e.Comm, e.Root, e.Bytes, e.Entry, e.Exit)
	}
}
