package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"hpctradeoff/internal/faultinject"
	"hpctradeoff/internal/simtime"
)

// Binary trace formats ("HTRC"): compact varint-based encodings in the
// spirit of DUMPI's binary record stream.
//
// Version 1 (array-of-structs): per rank, an event count followed by a
// per-event field stream — one op byte, delta-coded times, then the
// op's fields.
//
// Version 2 (columnar): per rank, an event count followed by
// length-prefixed column blocks — the op column raw, the time column
// delta-coded, then one block per field family (point-to-point, wait,
// collective, alltoallv), each holding only the rows whose ops use it.
// The layout mirrors the in-memory Columns store, so encode and decode
// move column arrays directly instead of running a per-event
// switch-and-build loop, and a reader can skip a block it does not
// need by its length prefix.
//
// Version 3 (zero-copy, codec_v3.go): the on-disk layout is the
// in-memory Columns layout itself — fixed 64-byte header, per-rank
// column extents, raw little-endian field arrays and arenas — so a v3
// file maps in with mmap (OpenMapped) and zero decode.
//
// All versions share the magic and the meta + communicator table
// encoding; Read and ReadColumns each accept any version, converting
// as needed.
//
// Times are delta-coded per rank (Entry relative to previous Exit,
// Exit relative to Entry) so long traces stay small.

const (
	binaryMagic           = "HTRC"
	binaryVersion         = 1
	binaryVersionColumnar = 2

	maxRanks      = 1 << 24
	maxRankEvents = 1 << 30
	maxBlockBytes = 1 << 31
)

// ErrBadFormat reports a malformed or truncated binary trace stream.
var ErrBadFormat = errors.New("trace: bad binary format")

// encoder buffers varint encoding over a bufio.Writer.
type encoder struct {
	bw  *bufio.Writer
	buf []byte
}

func (e *encoder) put(v uint64)  { e.buf = binary.AppendUvarint(e.buf[:0], v); e.bw.Write(e.buf) }
func (e *encoder) putI(v int64)  { e.buf = binary.AppendVarint(e.buf[:0], v); e.bw.Write(e.buf) }
func (e *encoder) putS(s string) { e.put(uint64(len(s))); e.bw.WriteString(s) }

func writeMetaComms(e *encoder, meta Meta, comms *CommTable) {
	e.putS(meta.App)
	e.putS(meta.Class)
	e.putS(meta.Machine)
	e.put(uint64(meta.NumRanks))
	e.put(uint64(meta.RanksPerNode))
	e.putI(meta.Seed)
	var flags byte
	if meta.UsesCommSplit {
		flags |= 1
	}
	if meta.UsesThreadMultiple {
		flags |= 2
	}
	e.bw.WriteByte(flags)

	e.put(uint64(comms.Len()))
	for c := 0; c < comms.Len(); c++ {
		members := comms.Members(CommID(c))
		e.put(uint64(len(members)))
		prev := int32(0)
		for _, m := range members {
			e.putI(int64(m - prev)) // delta; first is absolute from 0
			prev = m
		}
	}
}

// Write encodes t in the version-1 (array-of-structs) binary format.
func Write(w io.Writer, t *Trace) error {
	if len(t.Ranks) != t.Meta.NumRanks {
		return fmt.Errorf("trace: %d rank streams but meta says %d ranks",
			len(t.Ranks), t.Meta.NumRanks)
	}
	e := &encoder{bw: bufio.NewWriterSize(w, 1<<16)}
	e.bw.WriteString(binaryMagic)
	e.put(binaryVersion)
	writeMetaComms(e, t.Meta, &t.Comms)

	for _, evs := range t.Ranks {
		e.put(uint64(len(evs)))
		var cursor simtime.Time
		for i := range evs {
			ev := &evs[i]
			e.bw.WriteByte(byte(ev.Op))
			e.putI(int64(ev.Entry - cursor))
			e.putI(int64(ev.Exit - ev.Entry))
			cursor = ev.Exit
			switch {
			case ev.Op == OpCompute:
				// Times only.
			case ev.Op.IsP2P():
				e.putI(int64(ev.Peer))
				e.putI(int64(ev.Tag))
				e.put(uint64(ev.Bytes))
				e.putI(int64(ev.Comm))
				e.putI(int64(ev.Req))
			case ev.Op == OpWait:
				e.putI(int64(ev.Req))
			case ev.Op == OpWaitall:
				e.put(uint64(len(ev.Reqs)))
				for _, r := range ev.Reqs {
					e.putI(int64(r))
				}
			case ev.Op == OpAlltoallv:
				e.putI(int64(ev.Comm))
				e.put(uint64(len(ev.SendBytes)))
				for _, b := range ev.SendBytes {
					e.put(uint64(b))
				}
			default: // remaining collectives
				e.putI(int64(ev.Comm))
				e.putI(int64(ev.Root))
				e.put(uint64(ev.Bytes))
			}
		}
	}
	return e.bw.Flush()
}

// WriteColumns encodes c in the version-2 columnar binary format.
func WriteColumns(w io.Writer, c *Columns) error {
	e := &encoder{bw: bufio.NewWriterSize(w, 1<<16)}
	e.bw.WriteString(binaryMagic)
	e.put(binaryVersionColumnar)
	writeMetaComms(e, c.Meta, &c.Comms)

	var block []byte // reused scratch for one column block at a time
	flush := func() {
		e.put(uint64(len(block)))
		e.bw.Write(block)
		block = block[:0]
	}
	for r := range c.ranks {
		rc := &c.ranks[r]
		n := len(rc.op)
		e.put(uint64(n))
		if n == 0 {
			continue
		}
		// Op column, raw.
		for _, op := range rc.op {
			block = append(block, byte(op))
		}
		flush()
		// Time column, delta-coded (dEntry from previous exit, dExit
		// from entry).
		var cursor simtime.Time
		for i := 0; i < n; i++ {
			block = binary.AppendVarint(block, int64(rc.entry[i]-cursor))
			block = binary.AppendVarint(block, int64(rc.exit[i]-rc.entry[i]))
			cursor = rc.exit[i]
		}
		flush()
		// Point-to-point block: peer, tag, bytes, comm, req.
		for i := 0; i < n; i++ {
			if rc.op[i].IsP2P() {
				block = binary.AppendVarint(block, int64(rc.peer[i]))
				block = binary.AppendVarint(block, int64(rc.tag[i]))
				block = binary.AppendUvarint(block, uint64(rc.bytes[i]))
				block = binary.AppendVarint(block, int64(rc.comm[i]))
				block = binary.AppendVarint(block, int64(rc.req[i]))
			}
		}
		flush()
		// Wait block: wait reqs and waitall request sets.
		for i := 0; i < n; i++ {
			switch rc.op[i] {
			case OpWait:
				block = binary.AppendVarint(block, int64(rc.req[i]))
			case OpWaitall:
				set := rc.reqArena[rc.auxOff[i] : rc.auxOff[i]+rc.auxLen[i]]
				block = binary.AppendUvarint(block, uint64(len(set)))
				for _, q := range set {
					block = binary.AppendVarint(block, int64(q))
				}
			}
		}
		flush()
		// Collective block (all but alltoallv): comm, root, bytes.
		for i := 0; i < n; i++ {
			if rc.op[i].IsCollective() && rc.op[i] != OpAlltoallv {
				block = binary.AppendVarint(block, int64(rc.comm[i]))
				block = binary.AppendVarint(block, int64(rc.root[i]))
				block = binary.AppendUvarint(block, uint64(rc.bytes[i]))
			}
		}
		flush()
		// Alltoallv block: comm plus the per-member send table.
		for i := 0; i < n; i++ {
			if rc.op[i] == OpAlltoallv {
				block = binary.AppendVarint(block, int64(rc.comm[i]))
				tbl := rc.sbArena[rc.auxOff[i] : rc.auxOff[i]+rc.auxLen[i]]
				block = binary.AppendUvarint(block, uint64(len(tbl)))
				for _, b := range tbl {
					block = binary.AppendUvarint(block, uint64(b))
				}
			}
		}
		flush()
	}
	return e.bw.Flush()
}

// readHeader consumes magic, version, and — for the varint-framed
// versions 1 and 2 — the meta and communicator table; both Read and
// ReadColumns start here. A version-3 stream returns with zero
// meta/table: its header is fixed binary, parsed whole by readV3Stream.
func readHeader(r io.Reader) (*decoder, int, Meta, CommTable, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(binaryMagic))
	var meta Meta
	var ct CommTable
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, 0, meta, ct, fmt.Errorf("%w: missing magic: %v", ErrBadFormat, err)
	}
	if string(magic) != binaryMagic {
		return nil, 0, meta, ct, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	d := &decoder{br: br}
	version := int(d.uvarint())
	if d.err != nil || (version != binaryVersion && version != binaryVersionColumnar && version != binaryVersionV3) {
		return nil, 0, meta, ct, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	if version == binaryVersionV3 {
		return d, version, meta, ct, nil
	}
	meta, ct, err := parseMetaComms(d)
	if err != nil {
		return nil, version, meta, ct, err
	}
	return d, version, meta, ct, nil
}

// parseMetaComms decodes the varint-framed meta and communicator table
// written by writeMetaComms (versions 1 and 2 inline it after the
// version byte; version 3 carries it as a length-delimited blob).
func parseMetaComms(d *decoder) (Meta, CommTable, error) {
	var meta Meta
	var ct CommTable
	meta.App = d.str()
	meta.Class = d.str()
	meta.Machine = d.str()
	meta.NumRanks = int(d.uvarint())
	meta.RanksPerNode = int(d.uvarint())
	meta.Seed = d.varint()
	flags := d.byte()
	meta.UsesCommSplit = flags&1 != 0
	meta.UsesThreadMultiple = flags&2 != 0
	if d.err != nil {
		return meta, ct, d.fail("meta")
	}
	if meta.NumRanks < 0 || meta.NumRanks > maxRanks {
		return meta, ct, fmt.Errorf("%w: implausible rank count %d", ErrBadFormat, meta.NumRanks)
	}

	ct = NewCommTable(meta.NumRanks)
	nComms := int(d.uvarint())
	if d.err != nil || nComms < 1 || nComms > maxRanks {
		return meta, ct, d.fail("comm table")
	}
	for c := 0; c < nComms; c++ {
		n := int(d.uvarint())
		if d.err != nil || n < 0 || n > meta.NumRanks {
			return meta, ct, d.fail("comm members")
		}
		members := make([]int32, n)
		prev := int32(0)
		for i := range members {
			prev += int32(d.varint())
			members[i] = prev
		}
		if c > 0 { // world is implicit
			ct.Add(members)
		}
	}
	if d.err != nil {
		return meta, ct, d.fail("comm table")
	}
	return meta, ct, nil
}

// Read decodes a binary trace written by Write, WriteColumns, or
// WriteColumnsV3 into array-of-structs form (columnar input is
// materialized).
func Read(r io.Reader) (*Trace, error) {
	d, version, meta, ct, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	if version == binaryVersionV3 {
		c, err := readV3Stream(d)
		if err != nil {
			return nil, err
		}
		return c.Materialize(), nil
	}
	if version == binaryVersionColumnar {
		c := &Columns{Meta: meta, Comms: ct, ranks: make([]rankCols, meta.NumRanks)}
		if err := readColumnarBody(d, c); err != nil {
			return nil, err
		}
		return c.Materialize(), nil
	}
	t := &Trace{Meta: meta, Comms: ct, Ranks: make([][]Event, meta.NumRanks)}
	if err := readV1Body(d, t); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadColumns decodes a binary trace written by Write, WriteColumns,
// or WriteColumnsV3 into columnar form (version-1 input is
// columnarized; version-3 input parses with zero per-event decoding).
func ReadColumns(r io.Reader) (*Columns, error) {
	d, version, meta, ct, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	if version == binaryVersionV3 {
		return readV3Stream(d)
	}
	if version == binaryVersion {
		t := &Trace{Meta: meta, Comms: ct, Ranks: make([][]Event, meta.NumRanks)}
		if err := readV1Body(d, t); err != nil {
			return nil, err
		}
		return FromTrace(t), nil
	}
	c := &Columns{Meta: meta, Comms: ct, ranks: make([]rankCols, meta.NumRanks)}
	if err := readColumnarBody(d, c); err != nil {
		return nil, err
	}
	return c, nil
}

// failRead is the codec's failpoint, hit once per rank body decoded
// (both format versions). An armed fault surfaces as a read error from
// Read/ReadColumns — injected failures are always loud, never a
// silently short trace. Disarmed it is a nil check.
var failRead = faultinject.NewSite("trace/codec-read")

func readV1Body(d *decoder, t *Trace) error {
	meta := t.Meta
	for rank := 0; rank < meta.NumRanks; rank++ {
		if err := failRead.Fail(); err != nil {
			return fmt.Errorf("trace: rank %d: %w", rank, err)
		}
		n := int(d.uvarint())
		if d.err != nil || n < 0 || n > maxRankEvents {
			return d.fail("event count")
		}
		evs := make([]Event, n)
		var cursor simtime.Time
		for i := range evs {
			e := &evs[i]
			e.Op = Op(d.byte())
			if !e.Op.Valid() {
				return fmt.Errorf("%w: rank %d event %d: bad op", ErrBadFormat, rank, i)
			}
			e.Entry = cursor + simtime.Time(d.varint())
			e.Exit = e.Entry + simtime.Time(d.varint())
			cursor = e.Exit
			e.Peer, e.Req = NoPeer, NoReq
			switch {
			case e.Op == OpCompute:
			case e.Op.IsP2P():
				e.Peer = int32(d.varint())
				e.Tag = int32(d.varint())
				e.Bytes = int64(d.uvarint())
				e.Comm = CommID(d.varint())
				e.Req = int32(d.varint())
			case e.Op == OpWait:
				e.Req = int32(d.varint())
			case e.Op == OpWaitall:
				k := int(d.uvarint())
				if d.err != nil || k < 0 || k > math.MaxInt32 {
					return d.fail("waitall reqs")
				}
				e.Reqs = make([]int32, k)
				for j := range e.Reqs {
					e.Reqs[j] = int32(d.varint())
				}
			case e.Op == OpAlltoallv:
				e.Comm = CommID(d.varint())
				k := int(d.uvarint())
				if d.err != nil || k < 0 || k > maxRanks {
					return d.fail("alltoallv counts")
				}
				e.SendBytes = make([]int64, k)
				for j := range e.SendBytes {
					e.SendBytes[j] = int64(d.uvarint())
				}
			default:
				e.Comm = CommID(d.varint())
				e.Root = int32(d.varint())
				e.Bytes = int64(d.uvarint())
			}
			if d.err != nil {
				return d.fail(fmt.Sprintf("rank %d event %d", rank, i))
			}
		}
		t.Ranks[rank] = evs
	}
	return nil
}

// readColumnarBody decodes the version-2 per-rank column blocks into c.
func readColumnarBody(d *decoder, c *Columns) error {
	for rank := range c.ranks {
		if err := failRead.Fail(); err != nil {
			return fmt.Errorf("trace: rank %d: %w", rank, err)
		}
		n := int(d.uvarint())
		if d.err != nil || n < 0 || n > maxRankEvents {
			return d.fail("event count")
		}
		if n == 0 {
			continue
		}
		rc := &c.ranks[rank]

		// Op column: the block length must equal the event count, which
		// bounds every later allocation by actual input size.
		ops, err := d.block()
		if err != nil {
			return fmt.Errorf("%w: rank %d op column: %v", ErrBadFormat, rank, err)
		}
		if len(ops) != n {
			return fmt.Errorf("%w: rank %d: op column holds %d events, count says %d", ErrBadFormat, rank, len(ops), n)
		}
		rc.op = make([]Op, n)
		for i, b := range ops {
			op := Op(b)
			if !op.Valid() {
				return fmt.Errorf("%w: rank %d event %d: bad op %d", ErrBadFormat, rank, i, b)
			}
			rc.op[i] = op
		}
		rc.entry = make([]simtime.Time, n)
		rc.exit = make([]simtime.Time, n)
		rc.peer = make([]int32, n)
		rc.tag = make([]int32, n)
		rc.root = make([]int32, n)
		rc.req = make([]int32, n)
		rc.comm = make([]CommID, n)
		rc.bytes = make([]int64, n)
		rc.auxOff = make([]uint32, n)
		rc.auxLen = make([]uint32, n)
		for i := range rc.peer {
			rc.peer[i], rc.req[i] = NoPeer, NoReq
		}

		// Time column.
		tb, err := d.blockDec()
		if err != nil {
			return fmt.Errorf("%w: rank %d time column: %v", ErrBadFormat, rank, err)
		}
		var cursor simtime.Time
		for i := 0; i < n; i++ {
			rc.entry[i] = cursor + simtime.Time(tb.varint())
			rc.exit[i] = rc.entry[i] + simtime.Time(tb.varint())
			cursor = rc.exit[i]
		}
		if err := tb.done("time column", rank); err != nil {
			return err
		}

		// Point-to-point column block.
		pb, err := d.blockDec()
		if err != nil {
			return fmt.Errorf("%w: rank %d p2p block: %v", ErrBadFormat, rank, err)
		}
		for i := 0; i < n; i++ {
			if rc.op[i].IsP2P() {
				rc.peer[i] = int32(pb.varint())
				rc.tag[i] = int32(pb.varint())
				rc.bytes[i] = int64(pb.uvarint())
				rc.comm[i] = CommID(pb.varint())
				rc.req[i] = int32(pb.varint())
			}
		}
		if err := pb.done("p2p block", rank); err != nil {
			return err
		}

		// Wait column block.
		wb, err := d.blockDec()
		if err != nil {
			return fmt.Errorf("%w: rank %d wait block: %v", ErrBadFormat, rank, err)
		}
		for i := 0; i < n; i++ {
			switch rc.op[i] {
			case OpWait:
				rc.req[i] = int32(wb.varint())
			case OpWaitall:
				k := int(wb.uvarint())
				if wb.err != nil || k < 0 || k > len(wb.b)+1 {
					return fmt.Errorf("%w: rank %d event %d: waitall set of %d", ErrBadFormat, rank, i, k)
				}
				rc.auxOff[i], rc.auxLen[i] = uint32(len(rc.reqArena)), uint32(k)
				for j := 0; j < k; j++ {
					rc.reqArena = append(rc.reqArena, int32(wb.varint()))
				}
			}
		}
		if err := wb.done("wait block", rank); err != nil {
			return err
		}

		// Collective column block.
		cb, err := d.blockDec()
		if err != nil {
			return fmt.Errorf("%w: rank %d collective block: %v", ErrBadFormat, rank, err)
		}
		for i := 0; i < n; i++ {
			if rc.op[i].IsCollective() && rc.op[i] != OpAlltoallv {
				rc.comm[i] = CommID(cb.varint())
				rc.root[i] = int32(cb.varint())
				rc.bytes[i] = int64(cb.uvarint())
			}
		}
		if err := cb.done("collective block", rank); err != nil {
			return err
		}

		// Alltoallv column block.
		ab, err := d.blockDec()
		if err != nil {
			return fmt.Errorf("%w: rank %d alltoallv block: %v", ErrBadFormat, rank, err)
		}
		for i := 0; i < n; i++ {
			if rc.op[i] == OpAlltoallv {
				rc.comm[i] = CommID(ab.varint())
				k := int(ab.uvarint())
				if ab.err != nil || k < 0 || k > maxRanks {
					return fmt.Errorf("%w: rank %d event %d: alltoallv table of %d", ErrBadFormat, rank, i, k)
				}
				rc.auxOff[i], rc.auxLen[i] = uint32(len(rc.sbArena)), uint32(k)
				for j := 0; j < k; j++ {
					rc.sbArena = append(rc.sbArena, int64(ab.uvarint()))
				}
			}
		}
		if err := ab.done("alltoallv block", rank); err != nil {
			return err
		}
	}
	return nil
}

type decoder struct {
	br  *bufio.Reader
	err error
}

func (d *decoder) fail(what string) error {
	if d.err == nil {
		d.err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("%w: %s: %v", ErrBadFormat, what, d.err)
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.br)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.br.ReadByte()
	if err != nil {
		d.err = err
	}
	return b
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 {
		d.err = fmt.Errorf("string length %d too large", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.br, b); err != nil {
		d.err = err
		return ""
	}
	return string(b)
}

// block reads one length-prefixed column block. Allocation grows with
// the bytes actually present in the stream, so a lying length prefix
// cannot force a huge up-front allocation.
func (d *decoder) block() ([]byte, error) {
	ln := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if ln > maxBlockBytes {
		return nil, fmt.Errorf("block length %d too large", ln)
	}
	var out []byte
	const chunk = 1 << 16
	for remaining := int(ln); remaining > 0; {
		c := min(remaining, chunk)
		start := len(out)
		out = append(out, make([]byte, c)...)
		if _, err := io.ReadFull(d.br, out[start:]); err != nil {
			d.err = err
			return nil, err
		}
		remaining -= c
	}
	return out, nil
}

// blockDec reads a block and wraps it in a slice decoder.
func (d *decoder) blockDec() (*sliceDec, error) {
	b, err := d.block()
	if err != nil {
		return nil, err
	}
	return &sliceDec{b: b}, nil
}

// sliceDec decodes varints from an in-memory column block.
type sliceDec struct {
	b   []byte
	err error
}

func (s *sliceDec) uvarint() uint64 {
	if s.err != nil {
		return 0
	}
	v, n := binary.Uvarint(s.b)
	if n <= 0 {
		s.err = io.ErrUnexpectedEOF
		return 0
	}
	s.b = s.b[n:]
	return v
}

func (s *sliceDec) varint() int64 {
	if s.err != nil {
		return 0
	}
	v, n := binary.Varint(s.b)
	if n <= 0 {
		s.err = io.ErrUnexpectedEOF
		return 0
	}
	s.b = s.b[n:]
	return v
}

// done verifies the block was consumed exactly.
func (s *sliceDec) done(what string, rank int) error {
	if s.err != nil {
		return fmt.Errorf("%w: rank %d %s: %v", ErrBadFormat, rank, what, s.err)
	}
	if len(s.b) != 0 {
		return fmt.Errorf("%w: rank %d %s: %d trailing bytes", ErrBadFormat, rank, what, len(s.b))
	}
	return nil
}
