package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"hpctradeoff/internal/simtime"
)

// Binary trace format ("HTRC"): a compact varint-based encoding in the
// spirit of DUMPI's binary record stream. Layout:
//
//	magic "HTRC", version uvarint
//	meta: strings (uvarint len + bytes), uvarints, flag byte
//	comm table: count, then per-comm member count + delta-coded members
//	per rank: event count, then per-event field stream
//
// Times are delta-coded per rank (Entry relative to previous Exit,
// Exit relative to Entry) so long traces stay small.

const (
	binaryMagic   = "HTRC"
	binaryVersion = 1
)

// ErrBadFormat reports a malformed or truncated binary trace stream.
var ErrBadFormat = errors.New("trace: bad binary format")

// Write encodes t in the binary trace format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf []byte
	put := func(v uint64) { buf = binary.AppendUvarint(buf[:0], v); bw.Write(buf) }
	putI := func(v int64) { buf = binary.AppendVarint(buf[:0], v); bw.Write(buf) }
	putS := func(s string) { put(uint64(len(s))); bw.WriteString(s) }

	bw.WriteString(binaryMagic)
	put(binaryVersion)

	putS(t.Meta.App)
	putS(t.Meta.Class)
	putS(t.Meta.Machine)
	put(uint64(t.Meta.NumRanks))
	put(uint64(t.Meta.RanksPerNode))
	putI(t.Meta.Seed)
	var flags byte
	if t.Meta.UsesCommSplit {
		flags |= 1
	}
	if t.Meta.UsesThreadMultiple {
		flags |= 2
	}
	bw.WriteByte(flags)

	put(uint64(t.Comms.Len()))
	for c := 0; c < t.Comms.Len(); c++ {
		members := t.Comms.Members(CommID(c))
		put(uint64(len(members)))
		prev := int32(0)
		for _, m := range members {
			putI(int64(m - prev)) // delta; first is absolute from 0
			prev = m
		}
	}

	if len(t.Ranks) != t.Meta.NumRanks {
		return fmt.Errorf("trace: %d rank streams but meta says %d ranks",
			len(t.Ranks), t.Meta.NumRanks)
	}
	for _, evs := range t.Ranks {
		put(uint64(len(evs)))
		var cursor simtime.Time
		for i := range evs {
			e := &evs[i]
			bw.WriteByte(byte(e.Op))
			putI(int64(e.Entry - cursor))
			putI(int64(e.Exit - e.Entry))
			cursor = e.Exit
			switch {
			case e.Op == OpCompute:
				// Times only.
			case e.Op.IsP2P():
				putI(int64(e.Peer))
				putI(int64(e.Tag))
				put(uint64(e.Bytes))
				putI(int64(e.Comm))
				putI(int64(e.Req))
			case e.Op == OpWait:
				putI(int64(e.Req))
			case e.Op == OpWaitall:
				put(uint64(len(e.Reqs)))
				for _, r := range e.Reqs {
					putI(int64(r))
				}
			case e.Op == OpAlltoallv:
				putI(int64(e.Comm))
				put(uint64(len(e.SendBytes)))
				for _, b := range e.SendBytes {
					put(uint64(b))
				}
			default: // remaining collectives
				putI(int64(e.Comm))
				putI(int64(e.Root))
				put(uint64(e.Bytes))
			}
		}
	}
	return bw.Flush()
}

// Read decodes a binary trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadFormat, err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	d := &decoder{br: br}
	if v := d.uvarint(); v != binaryVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}

	var meta Meta
	meta.App = d.str()
	meta.Class = d.str()
	meta.Machine = d.str()
	meta.NumRanks = int(d.uvarint())
	meta.RanksPerNode = int(d.uvarint())
	meta.Seed = d.varint()
	flags := d.byte()
	meta.UsesCommSplit = flags&1 != 0
	meta.UsesThreadMultiple = flags&2 != 0
	if d.err != nil {
		return nil, d.fail("meta")
	}
	const maxRanks = 1 << 24
	if meta.NumRanks < 0 || meta.NumRanks > maxRanks {
		return nil, fmt.Errorf("%w: implausible rank count %d", ErrBadFormat, meta.NumRanks)
	}

	t := New(meta)
	nComms := int(d.uvarint())
	if d.err != nil || nComms < 1 || nComms > maxRanks {
		return nil, d.fail("comm table")
	}
	for c := 0; c < nComms; c++ {
		n := int(d.uvarint())
		if d.err != nil || n < 0 || n > meta.NumRanks {
			return nil, d.fail("comm members")
		}
		members := make([]int32, n)
		prev := int32(0)
		for i := range members {
			prev += int32(d.varint())
			members[i] = prev
		}
		if c > 0 { // world is implicit in New
			t.Comms.Add(members)
		}
	}

	for rank := 0; rank < meta.NumRanks; rank++ {
		n := int(d.uvarint())
		if d.err != nil || n < 0 {
			return nil, d.fail("event count")
		}
		evs := make([]Event, n)
		var cursor simtime.Time
		for i := range evs {
			e := &evs[i]
			e.Op = Op(d.byte())
			if !e.Op.Valid() {
				return nil, fmt.Errorf("%w: rank %d event %d: bad op", ErrBadFormat, rank, i)
			}
			e.Entry = cursor + simtime.Time(d.varint())
			e.Exit = e.Entry + simtime.Time(d.varint())
			cursor = e.Exit
			e.Peer, e.Req = NoPeer, NoReq
			switch {
			case e.Op == OpCompute:
			case e.Op.IsP2P():
				e.Peer = int32(d.varint())
				e.Tag = int32(d.varint())
				e.Bytes = int64(d.uvarint())
				e.Comm = CommID(d.varint())
				e.Req = int32(d.varint())
			case e.Op == OpWait:
				e.Req = int32(d.varint())
			case e.Op == OpWaitall:
				k := int(d.uvarint())
				if d.err != nil || k < 0 || k > math.MaxInt32 {
					return nil, d.fail("waitall reqs")
				}
				e.Reqs = make([]int32, k)
				for j := range e.Reqs {
					e.Reqs[j] = int32(d.varint())
				}
			case e.Op == OpAlltoallv:
				e.Comm = CommID(d.varint())
				k := int(d.uvarint())
				if d.err != nil || k < 0 || k > maxRanks {
					return nil, d.fail("alltoallv counts")
				}
				e.SendBytes = make([]int64, k)
				for j := range e.SendBytes {
					e.SendBytes[j] = int64(d.uvarint())
				}
			default:
				e.Comm = CommID(d.varint())
				e.Root = int32(d.varint())
				e.Bytes = int64(d.uvarint())
			}
			if d.err != nil {
				return nil, d.fail(fmt.Sprintf("rank %d event %d", rank, i))
			}
		}
		t.Ranks[rank] = evs
	}
	return t, nil
}

type decoder struct {
	br  *bufio.Reader
	err error
}

func (d *decoder) fail(what string) error {
	if d.err == nil {
		d.err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("%w: %s: %v", ErrBadFormat, what, d.err)
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.br)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.br.ReadByte()
	if err != nil {
		d.err = err
	}
	return b
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 {
		d.err = fmt.Errorf("string length %d too large", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.br, b); err != nil {
		d.err = err
		return ""
	}
	return string(b)
}
