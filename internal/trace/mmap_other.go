//go:build !unix

package trace

import (
	"errors"
	"os"
)

// mmapSupported gates the zero-copy open path off on platforms without
// a usable mmap; OpenMapped reads the file into memory instead (still
// decode-free for v3 on little-endian hosts, just not shared with the
// page cache).
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("trace: mmap unsupported on this platform")
}

func munmapFile(data []byte) error { return nil }
