// Package trace defines the DUMPI-like MPI communication trace model
// that every tool in this repository consumes: per-rank event streams
// with entry/exit timestamps and communication metadata, communicator
// tables, binary and JSON codecs, validation, and aggregate statistics.
//
// A trace records what an MPI application did on a real (here:
// synthesized ground-truth) machine. Replay tools honor the recorded
// happened-before relationships while re-costing communication under a
// different machine model.
package trace

import "fmt"

// Op identifies the kind of an MPI event recorded in a trace.
type Op uint8

// The operation vocabulary. It covers blocking and nonblocking
// point-to-point, completion, and the collectives used by the workload
// suite (the same set DUMPI records for the paper's applications).
const (
	// OpCompute is a local computation interval between MPI calls.
	OpCompute Op = iota
	// OpSend is a blocking standard-mode send.
	OpSend
	// OpIsend is a nonblocking send; completion is observed by a wait.
	OpIsend
	// OpRecv is a blocking receive.
	OpRecv
	// OpIrecv is a nonblocking receive; completion is observed by a wait.
	OpIrecv
	// OpWait completes one pending request.
	OpWait
	// OpWaitall completes a set of pending requests.
	OpWaitall
	// OpBarrier synchronizes a communicator.
	OpBarrier
	// OpBcast broadcasts Bytes from Root to the communicator.
	OpBcast
	// OpReduce reduces Bytes from all members to Root.
	OpReduce
	// OpAllreduce reduces Bytes and distributes the result to all.
	OpAllreduce
	// OpGather gathers Bytes per member to Root.
	OpGather
	// OpAllgather gathers Bytes per member to every member.
	OpAllgather
	// OpAlltoall exchanges Bytes between every pair of members.
	OpAlltoall
	// OpAlltoallv exchanges SendBytes[i] from the caller to member i.
	OpAlltoallv
	// OpScatter distributes Bytes per member from Root.
	OpScatter
	// OpReduceScatter reduces and scatters Bytes per member.
	OpReduceScatter
	numOps
)

var opNames = [...]string{
	OpCompute:       "compute",
	OpSend:          "send",
	OpIsend:         "isend",
	OpRecv:          "recv",
	OpIrecv:         "irecv",
	OpWait:          "wait",
	OpWaitall:       "waitall",
	OpBarrier:       "barrier",
	OpBcast:         "bcast",
	OpReduce:        "reduce",
	OpAllreduce:     "allreduce",
	OpGather:        "gather",
	OpAllgather:     "allgather",
	OpAlltoall:      "alltoall",
	OpAlltoallv:     "alltoallv",
	OpScatter:       "scatter",
	OpReduceScatter: "reducescatter",
}

// String returns the lowercase MPI-ish name of the operation.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined operation.
func (op Op) Valid() bool { return op < numOps }

// IsP2P reports whether op is a point-to-point transfer operation.
func (op Op) IsP2P() bool {
	switch op {
	case OpSend, OpIsend, OpRecv, OpIrecv:
		return true
	}
	return false
}

// IsCollective reports whether op involves a whole communicator.
func (op Op) IsCollective() bool {
	switch op {
	case OpBarrier, OpBcast, OpReduce, OpAllreduce, OpGather,
		OpAllgather, OpAlltoall, OpAlltoallv, OpScatter, OpReduceScatter:
		return true
	}
	return false
}

// IsNonblocking reports whether op initiates a request completed later
// by a wait operation.
func (op Op) IsNonblocking() bool { return op == OpIsend || op == OpIrecv }

// IsWait reports whether op completes pending requests.
func (op Op) IsWait() bool { return op == OpWait || op == OpWaitall }

// IsRooted reports whether the collective has a distinguished root rank.
func (op Op) IsRooted() bool {
	switch op {
	case OpBcast, OpReduce, OpGather, OpScatter:
		return true
	}
	return false
}
