package trace

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// Fuzz targets: the decoders must never panic or hang on arbitrary
// input, and anything they accept must either validate or fail
// validation gracefully. The seed corpus (valid encodings plus
// mutations) runs as regression tests under plain `go test`; use
// `go test -fuzz=FuzzRead ./internal/trace` to explore further.

func fuzzSeeds() [][]byte {
	var seeds [][]byte
	for s := int64(1); s <= 3; s++ {
		tr := randomTrace(rand.New(rand.NewSource(s)))
		var buf bytes.Buffer
		if err := Write(&buf, tr); err == nil {
			seeds = append(seeds, buf.Bytes())
		}
	}
	seeds = append(seeds, []byte("HTRC"), []byte("HTRC\x01"), []byte{}, []byte("garbage"))
	return seeds
}

func FuzzRead(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must be structurally walkable.
		_ = tr.NumEvents()
		_ = tr.MeasuredTotal()
		_ = tr.Validate() // may fail; must not panic
	})
}

func FuzzReadJSON(f *testing.F) {
	tr := randomTrace(rand.New(rand.NewSource(9)))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err == nil {
		f.Add(buf.String())
	}
	f.Add(`{"meta":{"NumRanks":1},"comms":[[0]],"ranks":[[]]}`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		_ = tr.NumEvents()
		_ = tr.Validate()
	})
}

func FuzzReadDUMPIASCII(f *testing.F) {
	f.Add(dumpiRank0)
	f.Add(dumpiRank1)
	f.Add("MPI_Send entering at walltime 0.1.\n  int dest=0\nMPI_Send returning at walltime 0.2.\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadDUMPIASCII(Meta{App: "fuzz", NumRanks: 1},
			[]io.Reader{strings.NewReader(data)})
		if err != nil {
			return
		}
		_ = tr.NumEvents()
	})
}
