package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// Fuzz targets: the decoders must never panic or hang on arbitrary
// input, and anything they accept must either validate or fail
// validation gracefully. The seed corpus (valid encodings plus
// mutations) runs as regression tests under plain `go test`; use
// `go test -fuzz=FuzzRead ./internal/trace` to explore further.

func fuzzSeeds() [][]byte {
	var seeds [][]byte
	for s := int64(1); s <= 3; s++ {
		tr := randomTrace(rand.New(rand.NewSource(s)))
		var buf bytes.Buffer
		if err := Write(&buf, tr); err == nil {
			seeds = append(seeds, buf.Bytes())
		}
	}
	seeds = append(seeds, []byte("HTRC"), []byte("HTRC\x01"), []byte{}, []byte("garbage"))
	return seeds
}

func FuzzRead(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must be structurally walkable.
		_ = tr.NumEvents()
		_ = tr.MeasuredTotal()
		_ = tr.Validate() // may fail; must not panic
	})
}

// codecSeeds builds the FuzzTraceCodec seed set deterministically:
// valid version-1, -2, and -3 encodings of a program exercising every
// op family, an empty trace, and precise corruptions per format — a
// truncated column block, a lying block length prefix, a header that
// promises more ranks than the stream holds, and for v3 a truncated
// fixed header, a misaligned extent, an extent escaping the file, and
// an extent whose byte length wraps uint64. The same bytes are
// committed under testdata/fuzz/FuzzTraceCodec (TestWriteFuzzCorpus
// regenerates them) so they run under plain `go test`.
func codecSeeds() map[string][]byte {
	build := func(meta Meta) *Columns {
		b := NewBuilder(meta)
		richProgram(b)
		c, err := b.BuildColumns()
		if err != nil {
			panic(err)
		}
		return c
	}
	meta := Meta{App: "fuzzseed", Class: "S", Machine: "m", NumRanks: 4, RanksPerNode: 2, Seed: 7}
	c := build(meta)
	var v1, v2 bytes.Buffer
	if err := Write(&v1, c.Materialize()); err != nil {
		panic(err)
	}
	if err := WriteColumns(&v2, c); err != nil {
		panic(err)
	}
	seeds := map[string][]byte{
		"valid-v1": v1.Bytes(),
		"valid-v2": v2.Bytes(),
	}

	empty, err := NewBuilder(Meta{App: "empty", NumRanks: 2}).BuildColumns()
	if err != nil {
		panic(err)
	}
	var ve bytes.Buffer
	if err := WriteColumns(&ve, empty); err != nil {
		panic(err)
	}
	seeds["empty-trace"] = ve.Bytes()

	seeds["truncated-block"] = v2.Bytes()[:v2.Len()*2/3]

	// Splice an over-limit uvarint in place of rank 0's op-column
	// length prefix (it sits right after the header and the rank-0
	// event count).
	var hdr bytes.Buffer
	bw := bufio.NewWriter(&hdr)
	e := &encoder{bw: bw}
	bw.WriteString(binaryMagic)
	e.put(binaryVersionColumnar)
	writeMetaComms(e, c.Meta, &c.Comms)
	bw.Flush()
	full := v2.Bytes()
	_, cw := binary.Uvarint(full[hdr.Len():]) // rank-0 event count width
	off := hdr.Len() + cw
	_, lw := binary.Uvarint(full[off:]) // old length-prefix width
	bad := append([]byte{}, full[:off]...)
	bad = binary.AppendUvarint(bad, uint64(maxBlockBytes)*4)
	seeds["bad-length-prefix"] = append(bad, full[off+lw:]...)

	// WriteColumns emits len(c.ranks) bodies but the header advertises
	// Meta.NumRanks; bumping the meta after the build yields a stream
	// that runs out of rank bodies.
	cm := build(meta)
	cm.Meta.NumRanks = 6
	var vm bytes.Buffer
	if err := WriteColumns(&vm, cm); err != nil {
		panic(err)
	}
	seeds["rank-count-mismatch"] = vm.Bytes()

	// Version-3 seeds: a valid zero-copy image plus the three corruption
	// families its parser must reject before forming any slice — a
	// header cut short, an extent knocked off 8-byte alignment, and an
	// extent whose count × element size escapes the file (both the
	// straightforward past-EOF case and a uint64 wraparound).
	var v3 bytes.Buffer
	if err := WriteColumnsV3(&v3, c); err != nil {
		panic(err)
	}
	good := v3.Bytes()
	seeds["valid-v3"] = good
	seeds["v3-truncated-header"] = append([]byte{}, good[:v3HeaderSize-17]...)
	extOff := binary.LittleEndian.Uint64(good[32:40])
	mut := func(edit func(b []byte)) []byte {
		b := append([]byte{}, good...)
		edit(b)
		return b
	}
	seeds["v3-misaligned-extent"] = mut(func(b []byte) {
		off := binary.LittleEndian.Uint64(b[extOff+24:])
		binary.LittleEndian.PutUint64(b[extOff+24:], off+4)
	})
	seeds["v3-extent-overflow"] = mut(func(b []byte) {
		binary.LittleEndian.PutUint64(b[extOff+24+8:], uint64(len(b))-4)
	})
	seeds["v3-extent-count-wrap"] = mut(func(b []byte) {
		// reqArena length of 2^62 makes count × 4 wrap around uint64;
		// only the explicit division check catches it.
		binary.LittleEndian.PutUint64(b[extOff+8:], 1<<62)
	})
	return seeds
}

// FuzzTraceCodec holds the two binary decoders together: on any input,
// Read and ReadColumns must agree on acceptance, anything accepted
// must decode to the same events through both, and a decode → encode →
// decode cycle must be lossless in both formats.
func FuzzTraceCodec(f *testing.F) {
	for _, s := range codecSeeds() {
		f.Add(s)
	}
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, trErr := Read(bytes.NewReader(data))
		c, cErr := ReadColumns(bytes.NewReader(data))
		if (trErr == nil) != (cErr == nil) {
			t.Fatalf("decoders disagree: Read err %v, ReadColumns err %v", trErr, cErr)
		}
		if trErr != nil {
			return
		}
		if c.Meta != tr.Meta {
			t.Fatalf("meta differs: %+v vs %+v", c.Meta, tr.Meta)
		}
		if !commTablesEqual(&c.Comms, &tr.Comms) {
			t.Fatal("comm tables differ between decoders")
		}
		requireSameEvents(t, tr, c)

		var b1, b2 bytes.Buffer
		if err := Write(&b1, tr); err != nil {
			t.Fatalf("re-encode v1: %v", err)
		}
		tr2, err := Read(&b1)
		if err != nil {
			t.Fatalf("re-decode v1: %v", err)
		}
		if tr2.Meta != tr.Meta || !commTablesEqual(&tr2.Comms, &tr.Comms) {
			t.Fatal("v1 roundtrip changed meta or comms")
		}
		requireSameEvents(t, tr, tr2)

		if err := WriteColumns(&b2, c); err != nil {
			t.Fatalf("re-encode v2: %v", err)
		}
		c2, err := ReadColumns(&b2)
		if err != nil {
			t.Fatalf("re-decode v2: %v", err)
		}
		if c2.Meta != c.Meta || !commTablesEqual(&c2.Comms, &c.Comms) {
			t.Fatal("v2 roundtrip changed meta or comms")
		}
		requireSameEvents(t, tr, c2)

		// The zero-copy format must be just as lossless, and its two
		// decode modes (aliasing and copying) must accept and produce
		// the same thing.
		var b3 bytes.Buffer
		if err := WriteColumnsV3(&b3, c); err != nil {
			t.Fatalf("re-encode v3: %v", err)
		}
		c3, err := ReadColumns(bytes.NewReader(b3.Bytes()))
		if err != nil {
			t.Fatalf("re-decode v3: %v", err)
		}
		if c3.Meta != c.Meta || !commTablesEqual(&c3.Comms, &c.Comms) {
			t.Fatal("v3 roundtrip changed meta or comms")
		}
		requireSameEvents(t, tr, c3)
		cCopy, err := parseV3(b3.Bytes(), false)
		if err != nil {
			t.Fatalf("v3 copy-mode decode rejected what alias mode accepted: %v", err)
		}
		requireSameEvents(t, tr, cCopy)
	})
}

// TestWriteFuzzCorpus regenerates the committed FuzzTraceCodec seed
// corpus (run with WRITE_CORPUS=1 after changing the codec or seeds).
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_CORPUS") == "" {
		t.Skip("set WRITE_CORPUS=1 to rewrite testdata/fuzz/FuzzTraceCodec")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzTraceCodec")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, b := range codecSeeds() {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func FuzzReadJSON(f *testing.F) {
	tr := randomTrace(rand.New(rand.NewSource(9)))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err == nil {
		f.Add(buf.String())
	}
	f.Add(`{"meta":{"NumRanks":1},"comms":[[0]],"ranks":[[]]}`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		_ = tr.NumEvents()
		_ = tr.Validate()
	})
}

func FuzzReadDUMPIASCII(f *testing.F) {
	f.Add(dumpiRank0)
	f.Add(dumpiRank1)
	f.Add("MPI_Send entering at walltime 0.1.\n  int dest=0\nMPI_Send returning at walltime 0.2.\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadDUMPIASCII(Meta{App: "fuzz", NumRanks: 1},
			[]io.Reader{strings.NewReader(data)})
		if err != nil {
			return
		}
		_ = tr.NumEvents()
	})
}
