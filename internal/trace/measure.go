package trace

import "hpctradeoff/internal/simtime"

// Source-generic measured aggregates, so the campaign layer can
// characterize a trace (Table I, the accuracy baselines) without
// caring which representation it holds. Both built-in representations
// precompute these natively; the interface assertion takes that fast
// path, and any other Source falls back to an EventAt walk with the
// same semantics.

// measured is the fast path for sources that implement their own
// aggregates.
type measured interface {
	NumEvents() int
	MeasuredTotal() simtime.Time
	MeasuredComm() simtime.Time
	CommFraction() float64
}

var (
	_ measured = (*Trace)(nil)
	_ measured = (*Columns)(nil)
)

// SourceNumEvents returns the total number of events across all ranks.
func SourceNumEvents(src Source) int {
	if m, ok := src.(measured); ok {
		return m.NumEvents()
	}
	n := 0
	for r := 0; r < src.TraceMeta().NumRanks; r++ {
		n += src.RankLen(r)
	}
	return n
}

// SourceMeasuredTotal returns the measured application time: the
// latest Exit across all ranks (ranks start at time zero).
func SourceMeasuredTotal(src Source) simtime.Time {
	if m, ok := src.(measured); ok {
		return m.MeasuredTotal()
	}
	var total simtime.Time
	var e Event
	for r := 0; r < src.TraceMeta().NumRanks; r++ {
		if n := src.RankLen(r); n > 0 {
			src.EventAt(r, n-1, &e)
			total = simtime.Max(total, e.Exit)
		}
	}
	return total
}

// SourceMeasuredComm returns the measured time spent inside
// communication calls, summed per rank and averaged over ranks.
func SourceMeasuredComm(src Source) simtime.Time {
	if m, ok := src.(measured); ok {
		return m.MeasuredComm()
	}
	n := src.TraceMeta().NumRanks
	if n == 0 {
		return 0
	}
	var sum simtime.Time
	var e Event
	for r := 0; r < n; r++ {
		for i := 0; i < src.RankLen(r); i++ {
			src.EventAt(r, i, &e)
			if e.Op != OpCompute {
				sum += e.Duration()
			}
		}
	}
	return sum / simtime.Time(n)
}

// SourceCommFraction returns SourceMeasuredComm over
// SourceMeasuredTotal, in [0,1].
func SourceCommFraction(src Source) float64 {
	if m, ok := src.(measured); ok {
		return m.CommFraction()
	}
	total := SourceMeasuredTotal(src)
	if total <= 0 {
		return 0
	}
	return float64(SourceMeasuredComm(src)) / float64(total)
}
