package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hpctradeoff/internal/simtime"
)

// richProgram drives b through every op family: compute, blocking and
// nonblocking point-to-point, wait and waitall, rooted and unrooted
// collectives, and an alltoallv on a sub-communicator.
func richProgram(b *Builder) {
	c1 := b.AddComm([]int32{0, 2}) // even ranks
	for r := 0; r < 4; r++ {
		b.Compute(r, simtime.Time(10+r))
	}
	q0 := b.Isend(0, 1, 0, 1024, CommWorld)
	q1 := b.Irecv(1, 0, 0, 1024, CommWorld)
	b.Wait(0, q0)
	b.Wait(1, q1)

	b.Send(2, 3, 1, 256, CommWorld)
	b.Recv(3, 2, 1, 256, CommWorld)

	b.Isend(0, 3, 2, 64, CommWorld)
	b.Isend(0, 3, 3, 64, CommWorld)
	b.Irecv(3, 0, 2, 64, CommWorld)
	b.Irecv(3, 0, 3, 64, CommWorld)
	b.WaitOpen(0)
	b.WaitOpen(3)

	for r := 0; r < 4; r++ {
		b.Collective(r, OpAllreduce, CommWorld, 0, 64)
		b.Collective(r, OpBcast, CommWorld, 1, 32)
	}
	for _, r := range []int{0, 2} {
		b.Alltoallv(r, c1, []int64{8, 16})
		b.Collective(r, OpReduce, c1, 2, 128)
	}
	for r := 0; r < 4; r++ {
		b.Compute(r, 5)
	}
}

func richTrace(t *testing.T) *Trace {
	t.Helper()
	b := NewBuilder(Meta{App: "rich", Class: "A", Machine: "hopper", NumRanks: 4, RanksPerNode: 2})
	richProgram(b)
	tr, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tr
}

func richColumns(t *testing.T) *Columns {
	t.Helper()
	b := NewBuilder(Meta{App: "rich", Class: "A", Machine: "hopper", NumRanks: 4, RanksPerNode: 2})
	richProgram(b)
	c, err := b.BuildColumns()
	if err != nil {
		t.Fatalf("BuildColumns: %v", err)
	}
	return c
}

// eventsEqual compares two events field-for-field, treating nil and
// empty payload slices as equal (aliasing arenas never yields nil-vs-
// empty differences that matter to consumers).
func eventsEqual(a, b *Event) bool {
	if a.Op != b.Op || a.Entry != b.Entry || a.Exit != b.Exit ||
		a.Peer != b.Peer || a.Tag != b.Tag || a.Root != b.Root ||
		a.Req != b.Req || a.Comm != b.Comm || a.Bytes != b.Bytes {
		return false
	}
	if len(a.Reqs) != len(b.Reqs) || len(a.SendBytes) != len(b.SendBytes) {
		return false
	}
	for i := range a.Reqs {
		if a.Reqs[i] != b.Reqs[i] {
			return false
		}
	}
	for i := range a.SendBytes {
		if a.SendBytes[i] != b.SendBytes[i] {
			return false
		}
	}
	return true
}

func requireSameEvents(t *testing.T, want *Trace, got Source) {
	t.Helper()
	var e Event
	for r := range want.Ranks {
		if got.RankLen(r) != len(want.Ranks[r]) {
			t.Fatalf("rank %d: RankLen = %d, want %d", r, got.RankLen(r), len(want.Ranks[r]))
		}
		for i := range want.Ranks[r] {
			got.EventAt(r, i, &e)
			if !eventsEqual(&e, &want.Ranks[r][i]) {
				t.Fatalf("rank %d event %d: got %+v, want %+v", r, i, e, want.Ranks[r][i])
			}
		}
	}
}

func TestColumnsMatchBuilderTrace(t *testing.T) {
	tr := richTrace(t)
	cols := richColumns(t)
	if cols.NumEvents() != tr.NumEvents() {
		t.Fatalf("NumEvents = %d, want %d", cols.NumEvents(), tr.NumEvents())
	}
	requireSameEvents(t, tr, cols)
	if !commTablesEqual(&tr.Comms, &cols.Comms) {
		t.Fatal("comm tables differ")
	}
	if cols.MeasuredTotal() != tr.MeasuredTotal() {
		t.Errorf("MeasuredTotal = %v, want %v", cols.MeasuredTotal(), tr.MeasuredTotal())
	}
	if cols.MeasuredComm() != tr.MeasuredComm() {
		t.Errorf("MeasuredComm = %v, want %v", cols.MeasuredComm(), tr.MeasuredComm())
	}
	if cols.CommFraction() != tr.CommFraction() {
		t.Errorf("CommFraction = %v, want %v", cols.CommFraction(), tr.CommFraction())
	}
}

func TestFromTraceMaterializeRoundTrip(t *testing.T) {
	// randomTrace hand-builds AoS events without the Builder, so this
	// checks conversion independent of the build path.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		cols := FromTrace(tr)
		requireSameEvents(t, tr, cols)
		back := cols.Materialize()
		if !reflect.DeepEqual(tr.Meta, back.Meta) || !commTablesEqual(&tr.Comms, &back.Comms) {
			return false
		}
		for r := range tr.Ranks {
			for i := range tr.Ranks[r] {
				if !eventsEqual(&tr.Ranks[r][i], &back.Ranks[r][i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCursorWalksRank(t *testing.T) {
	tr := richTrace(t)
	for _, src := range []Source{tr, FromTrace(tr)} {
		for r := range tr.Ranks {
			cur := RankCursor(src, r)
			if cur.Len() != len(tr.Ranks[r]) {
				t.Fatalf("rank %d: Len = %d, want %d", r, cur.Len(), len(tr.Ranks[r]))
			}
			if cur.Index() != -1 {
				t.Fatalf("fresh cursor Index = %d, want -1", cur.Index())
			}
			var e Event
			i := 0
			for cur.Next(&e) {
				if !eventsEqual(&e, &tr.Ranks[r][i]) {
					t.Fatalf("rank %d event %d mismatch: %+v vs %+v", r, i, e, tr.Ranks[r][i])
				}
				if cur.Index() != i || cur.Rank() != r {
					t.Fatalf("cursor position (%d,%d), want (%d,%d)", cur.Rank(), cur.Index(), r, i)
				}
				i++
			}
			if i != len(tr.Ranks[r]) {
				t.Fatalf("rank %d: cursor yielded %d events, want %d", r, i, len(tr.Ranks[r]))
			}
			cur.Reset()
			if cur.Next(&e); !eventsEqual(&e, &tr.Ranks[r][0]) {
				t.Fatalf("rank %d: Reset did not rewind", r)
			}
		}
	}
}

func TestSetEventTimes(t *testing.T) {
	for _, src := range []Source{richTrace(t), richColumns(t)} {
		src.SetEventTimes(1, 0, 777, 888)
		var e Event
		src.EventAt(1, 0, &e)
		if e.Entry != 777 || e.Exit != 888 {
			t.Errorf("%T: SetEventTimes gave [%v,%v], want [777,888]", src, e.Entry, e.Exit)
		}
	}
}

func TestColumnsValidate(t *testing.T) {
	cols := richColumns(t)
	if err := cols.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Corrupt one peer and confirm validation still bites on columns.
	for i, op := range cols.ranks[0].op {
		if op.IsP2P() {
			cols.ranks[0].peer[i] = 99
			break
		}
	}
	if err := cols.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range peer")
	}
}

func TestFootprintColumnsSmaller(t *testing.T) {
	tr := richTrace(t)
	cols := FromTrace(tr)
	aos, soa := AoSFootprintBytes(tr), cols.FootprintBytes()
	if aos <= 0 || soa <= 0 {
		t.Fatalf("footprints must be positive: aos=%d soa=%d", aos, soa)
	}
	if soa >= aos {
		t.Errorf("columnar footprint %d not smaller than AoS %d", soa, aos)
	}
}

func TestWindowedBuilderChunks(t *testing.T) {
	full := richTrace(t)
	for lo := 0; lo < 4; lo += 2 {
		b := NewBuilderWindow(full.Meta, lo, lo+2)
		richProgram(b)
		chunk := b.BuildChunk()
		var e Event
		for r := 0; r < 4; r++ {
			if r < lo || r >= lo+2 {
				if chunk.RankLen(r) != 0 {
					t.Fatalf("window [%d,%d): rank %d has %d events, want 0", lo, lo+2, r, chunk.RankLen(r))
				}
				continue
			}
			if chunk.RankLen(r) != len(full.Ranks[r]) {
				t.Fatalf("window [%d,%d): rank %d has %d events, want %d", lo, lo+2, r, chunk.RankLen(r), len(full.Ranks[r]))
			}
			for i := range full.Ranks[r] {
				chunk.EventAt(r, i, &e)
				if !eventsEqual(&e, &full.Ranks[r][i]) {
					t.Fatalf("window [%d,%d): rank %d event %d differs from full build", lo, lo+2, r, i)
				}
			}
		}
	}
}

func TestWindowedBuilderRejectsFullBuild(t *testing.T) {
	b := NewBuilderWindow(Meta{App: "w", NumRanks: 4}, 0, 2)
	richProgram(b)
	if _, err := b.Build(); err == nil {
		t.Error("Build on windowed builder must fail")
	}
	if _, err := b.BuildColumns(); err == nil {
		t.Error("BuildColumns on windowed builder must fail")
	}
}

func TestColumnarCodecRoundTrip(t *testing.T) {
	cols := richColumns(t)
	var buf bytes.Buffer
	if err := WriteColumns(&buf, cols); err != nil {
		t.Fatalf("WriteColumns: %v", err)
	}
	v2 := buf.Bytes()

	got, err := ReadColumns(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("ReadColumns: %v", err)
	}
	want := cols.Materialize()
	requireSameEvents(t, want, got)
	if !reflect.DeepEqual(got.Meta, cols.Meta) || !commTablesEqual(&got.Comms, &cols.Comms) {
		t.Fatal("header round trip differs")
	}

	// Read materializes v2 directly.
	tr, err := Read(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("Read(v2): %v", err)
	}
	requireSameEvents(t, want, tr)

	// ReadColumns accepts v1 by columnarizing.
	buf.Reset()
	if err := Write(&buf, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	fromV1, err := ReadColumns(&buf)
	if err != nil {
		t.Fatalf("ReadColumns(v1): %v", err)
	}
	requireSameEvents(t, want, fromV1)
}

func TestColumnarCodecRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		var buf bytes.Buffer
		if err := WriteColumns(&buf, FromTrace(tr)); err != nil {
			t.Fatalf("WriteColumns: %v", err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if !reflect.DeepEqual(tr.Meta, got.Meta) || !commTablesEqual(&tr.Comms, &got.Comms) {
			return false
		}
		for r := range tr.Ranks {
			if len(got.Ranks[r]) != len(tr.Ranks[r]) {
				return false
			}
			for i := range tr.Ranks[r] {
				if !eventsEqual(&tr.Ranks[r][i], &got.Ranks[r][i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReadColumnsRejectsGarbage(t *testing.T) {
	cols := richColumns(t)
	var buf bytes.Buffer
	if err := WriteColumns(&buf, cols); err != nil {
		t.Fatalf("WriteColumns: %v", err)
	}
	good := buf.Bytes()

	// Every truncation of a valid stream must fail cleanly.
	for cut := 0; cut < len(good)-1; cut += 7 {
		if _, err := ReadColumns(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("ReadColumns accepted truncation at %d", cut)
		}
	}
	// Single-byte corruptions must never panic (may or may not error).
	for i := len(binaryMagic); i < len(good); i += 3 {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xff
		_, _ = ReadColumns(bytes.NewReader(bad))
		_, _ = Read(bytes.NewReader(bad))
	}
}
