package trace

import (
	"fmt"
	"sort"

	"hpctradeoff/internal/simtime"
)

// Meta carries per-trace identity and capability metadata, the analog
// of a DUMPI trace's header plus the provenance the paper's study
// records for each of its 235 trace sets.
type Meta struct {
	// App is the application name, e.g. "CG", "LULESH", "CrystalRouter".
	App string
	// Class distinguishes problem sizes, e.g. NPB classes "A".."D" or a
	// mini-app mesh descriptor.
	Class string
	// Machine names the system the trace was collected on
	// ("cielito", "hopper", or "edison").
	Machine string
	// NumRanks is the number of MPI ranks in the trace.
	NumRanks int
	// RanksPerNode is the process placement density used at collection.
	RanksPerNode int
	// Seed is the RNG seed the generator used; it makes the trace
	// reproducible bit-for-bit.
	Seed int64
	// UsesCommSplit marks traces that create sub-communicators with
	// complex grouping operations (SST/Macro 3.0's packet and flow
	// backends cannot replay these).
	UsesCommSplit bool
	// UsesThreadMultiple marks traces collected from multi-threaded MPI
	// (likewise unsupported by the 3.0 backends).
	UsesThreadMultiple bool
}

// ID returns a stable identifier, e.g. "CG.B.x256.edison".
func (m Meta) ID() string {
	return fmt.Sprintf("%s.%s.x%d.%s", m.App, m.Class, m.NumRanks, m.Machine)
}

// Trace is a complete recorded application run: one event stream per
// rank plus the communicator table.
type Trace struct {
	Meta  Meta
	Comms CommTable
	// Ranks[r] is the ordered event stream of world rank r.
	Ranks [][]Event
}

// New returns an empty trace for n ranks whose communicator table
// contains only MPI_COMM_WORLD.
func New(meta Meta) *Trace {
	meta.NumRanks = max(meta.NumRanks, 0)
	t := &Trace{
		Meta:  meta,
		Comms: NewCommTable(meta.NumRanks),
		Ranks: make([][]Event, meta.NumRanks),
	}
	return t
}

// NumEvents returns the total number of events across all ranks.
func (t *Trace) NumEvents() int {
	n := 0
	for _, evs := range t.Ranks {
		n += len(evs)
	}
	return n
}

// MeasuredTotal returns the measured application time recorded in the
// trace: the latest Exit across all ranks (ranks start at time zero).
func (t *Trace) MeasuredTotal() simtime.Time {
	var total simtime.Time
	for _, evs := range t.Ranks {
		if n := len(evs); n > 0 {
			total = simtime.Max(total, evs[n-1].Exit)
		}
	}
	return total
}

// MeasuredComm returns the measured time spent inside communication
// calls (everything except compute), summed per rank and then averaged
// over ranks — the "communication time" the paper's Table Ib buckets.
func (t *Trace) MeasuredComm() simtime.Time {
	if len(t.Ranks) == 0 {
		return 0
	}
	var sum simtime.Time
	for _, evs := range t.Ranks {
		for i := range evs {
			if evs[i].Op != OpCompute {
				sum += evs[i].Duration()
			}
		}
	}
	return sum / simtime.Time(len(t.Ranks))
}

// CommFraction returns MeasuredComm divided by MeasuredTotal, in [0,1].
func (t *Trace) CommFraction() float64 {
	total := t.MeasuredTotal()
	if total <= 0 {
		return 0
	}
	return float64(t.MeasuredComm()) / float64(total)
}

// CommTable maps communicator IDs to their sorted member world ranks.
// Index 0 is always MPI_COMM_WORLD.
type CommTable struct {
	members [][]int32
	// rankOf[comm][world] caches the member position of a world rank,
	// built lazily by Position.
	rankOf []map[int32]int
}

// NewCommTable returns a table containing only MPI_COMM_WORLD over
// worldSize ranks.
func NewCommTable(worldSize int) CommTable {
	world := make([]int32, worldSize)
	for i := range world {
		world[i] = int32(i)
	}
	return CommTable{members: [][]int32{world}}
}

// Add registers a new communicator with the given member world ranks
// (deduplicated and sorted) and returns its ID.
func (ct *CommTable) Add(members []int32) CommID {
	m := make([]int32, len(members))
	copy(m, members)
	sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
	// Deduplicate in place.
	out := m[:0]
	for i, v := range m {
		if i == 0 || v != m[i-1] {
			out = append(out, v)
		}
	}
	ct.members = append(ct.members, out)
	ct.rankOf = nil
	return CommID(len(ct.members) - 1)
}

// Len returns the number of communicators (including world).
func (ct *CommTable) Len() int { return len(ct.members) }

// Members returns the sorted member world ranks of comm. The returned
// slice must not be modified.
func (ct *CommTable) Members(comm CommID) []int32 {
	return ct.members[comm]
}

// Size returns the number of members of comm.
func (ct *CommTable) Size(comm CommID) int { return len(ct.members[comm]) }

// Contains reports whether world rank r is a member of comm.
func (ct *CommTable) Contains(comm CommID, r int32) bool {
	return ct.Position(comm, r) >= 0
}

// Position returns the member index of world rank r within comm, or -1
// if r is not a member.
func (ct *CommTable) Position(comm CommID, r int32) int {
	if ct.rankOf == nil {
		ct.rankOf = make([]map[int32]int, len(ct.members))
	}
	if int(comm) >= len(ct.rankOf) {
		// Table grew since cache was built.
		grown := make([]map[int32]int, len(ct.members))
		copy(grown, ct.rankOf)
		ct.rankOf = grown
	}
	m := ct.rankOf[comm]
	if m == nil {
		m = make(map[int32]int, len(ct.members[comm]))
		for i, w := range ct.members[comm] {
			m[w] = i
		}
		ct.rankOf[comm] = m
	}
	if pos, ok := m[r]; ok {
		return pos
	}
	return -1
}
