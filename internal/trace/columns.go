package trace

import (
	"hpctradeoff/internal/simtime"
	"unsafe"
)

// Columns is the columnar (structure-of-arrays) trace representation:
// per rank, one parallel typed array per event field plus two shared
// arenas for the variable-length payloads (Waitall request sets and
// Alltoallv send tables). It holds exactly the information of a *Trace
// in roughly half the memory — no per-event struct padding, no slice
// headers on events that carry none — and reads back out through
// zero-copy cursors (Cursor, EventAt) without materializing []Event.
//
// Campaign-scale replays are trace-access bound: every one of the four
// schemes walks the same 235 traces, so the resident form of a trace
// is the one cost they all pay. Columns is that form.
type Columns struct {
	Meta  Meta
	Comms CommTable
	ranks []rankCols
}

// rankCols holds one rank's event stream as parallel columns. Rows not
// applicable to an op hold the same defaults the Builder writes into
// Event fields (NoPeer / NoReq / zero), so a gathered Event is
// field-for-field identical to its array-of-structs twin.
type rankCols struct {
	op    []Op
	entry []simtime.Time
	exit  []simtime.Time
	peer  []int32
	tag   []int32
	root  []int32
	req   []int32
	comm  []CommID
	bytes []int64
	// auxOff/auxLen index reqArena for Waitall rows and sbArena for
	// Alltoallv rows; zero-length elsewhere.
	auxOff []uint32
	auxLen []uint32
	// Arenas backing the variable-length payloads of this rank.
	reqArena []int32
	sbArena  []int64
}

// NewColumns returns an empty columnar trace for meta (world-only
// communicator table), the columnar analog of New.
func NewColumns(meta Meta) *Columns {
	meta.NumRanks = max(meta.NumRanks, 0)
	return &Columns{
		Meta:  meta,
		Comms: NewCommTable(meta.NumRanks),
		ranks: make([]rankCols, meta.NumRanks),
	}
}

// append adds one event to rank r's columns. The event's Reqs and
// SendBytes (if any) are copied into the rank's arenas.
func (c *Columns) append(r int, e *Event) {
	rc := &c.ranks[r]
	rc.op = append(rc.op, e.Op)
	rc.entry = append(rc.entry, e.Entry)
	rc.exit = append(rc.exit, e.Exit)
	rc.peer = append(rc.peer, e.Peer)
	rc.tag = append(rc.tag, e.Tag)
	rc.root = append(rc.root, e.Root)
	rc.req = append(rc.req, e.Req)
	rc.comm = append(rc.comm, e.Comm)
	rc.bytes = append(rc.bytes, e.Bytes)
	var off, n uint32
	switch e.Op {
	case OpWaitall:
		off, n = uint32(len(rc.reqArena)), uint32(len(e.Reqs))
		rc.reqArena = append(rc.reqArena, e.Reqs...)
	case OpAlltoallv:
		off, n = uint32(len(rc.sbArena)), uint32(len(e.SendBytes))
		rc.sbArena = append(rc.sbArena, e.SendBytes...)
	}
	rc.auxOff = append(rc.auxOff, off)
	rc.auxLen = append(rc.auxLen, n)
}

// TraceMeta implements Source.
func (c *Columns) TraceMeta() *Meta { return &c.Meta }

// TraceComms implements Source.
func (c *Columns) TraceComms() *CommTable { return &c.Comms }

// NumRanks returns the number of ranks.
func (c *Columns) NumRanks() int { return len(c.ranks) }

// RankLen implements Source.
func (c *Columns) RankLen(r int) int { return len(c.ranks[r].op) }

// EventAt implements Source: it gathers row i of rank r's columns into
// e. Reqs/SendBytes alias the rank arenas (read-only, zero-copy).
func (c *Columns) EventAt(r, i int, e *Event) {
	rc := &c.ranks[r]
	e.Op = rc.op[i]
	e.Entry = rc.entry[i]
	e.Exit = rc.exit[i]
	e.Peer = rc.peer[i]
	e.Tag = rc.tag[i]
	e.Root = rc.root[i]
	e.Req = rc.req[i]
	e.Comm = rc.comm[i]
	e.Bytes = rc.bytes[i]
	e.Reqs, e.SendBytes = nil, nil
	switch rc.op[i] {
	case OpWaitall:
		e.Reqs = rc.reqArena[rc.auxOff[i] : rc.auxOff[i]+rc.auxLen[i]]
	case OpAlltoallv:
		e.SendBytes = rc.sbArena[rc.auxOff[i] : rc.auxOff[i]+rc.auxLen[i]]
	}
}

// SetEventTimes implements Source.
func (c *Columns) SetEventTimes(r, i int, entry, exit simtime.Time) {
	c.ranks[r].entry[i], c.ranks[r].exit[i] = entry, exit
}

// Cursor returns a zero-allocation cursor over rank r.
func (c *Columns) Cursor(r int) Cursor { return RankCursor(c, r) }

// NumEvents returns the total number of events across all ranks.
func (c *Columns) NumEvents() int {
	n := 0
	for r := range c.ranks {
		n += len(c.ranks[r].op)
	}
	return n
}

// MeasuredTotal returns the latest Exit across all ranks.
func (c *Columns) MeasuredTotal() simtime.Time {
	var total simtime.Time
	for r := range c.ranks {
		if n := len(c.ranks[r].exit); n > 0 {
			total = simtime.Max(total, c.ranks[r].exit[n-1])
		}
	}
	return total
}

// MeasuredComm returns the measured communication time (everything
// except compute), summed per rank and averaged over ranks.
func (c *Columns) MeasuredComm() simtime.Time {
	if len(c.ranks) == 0 {
		return 0
	}
	var sum simtime.Time
	for r := range c.ranks {
		rc := &c.ranks[r]
		for i, op := range rc.op {
			if op != OpCompute {
				sum += rc.exit[i] - rc.entry[i]
			}
		}
	}
	return sum / simtime.Time(len(c.ranks))
}

// CommFraction returns MeasuredComm divided by MeasuredTotal, in [0,1].
func (c *Columns) CommFraction() float64 {
	total := c.MeasuredTotal()
	if total <= 0 {
		return 0
	}
	return float64(c.MeasuredComm()) / float64(total)
}

// Validate checks the same structural invariants Trace.Validate does,
// directly on the columns.
func (c *Columns) Validate() error { return validateSource(c) }

// FromTrace converts an array-of-structs trace to columnar form. The
// communicator table is copied shallowly (member slices are shared;
// they are immutable by contract).
func FromTrace(t *Trace) *Columns {
	c := &Columns{Meta: t.Meta, Comms: t.Comms, ranks: make([]rankCols, len(t.Ranks))}
	for r, evs := range t.Ranks {
		rc := &c.ranks[r]
		n := len(evs)
		rc.op = make([]Op, n)
		rc.entry = make([]simtime.Time, n)
		rc.exit = make([]simtime.Time, n)
		rc.peer = make([]int32, n)
		rc.tag = make([]int32, n)
		rc.root = make([]int32, n)
		rc.req = make([]int32, n)
		rc.comm = make([]CommID, n)
		rc.bytes = make([]int64, n)
		rc.auxOff = make([]uint32, n)
		rc.auxLen = make([]uint32, n)
		nReq, nSB := 0, 0
		for i := range evs {
			nReq += len(evs[i].Reqs)
			nSB += len(evs[i].SendBytes)
		}
		rc.reqArena = make([]int32, 0, nReq)
		rc.sbArena = make([]int64, 0, nSB)
		for i := range evs {
			e := &evs[i]
			rc.op[i] = e.Op
			rc.entry[i], rc.exit[i] = e.Entry, e.Exit
			rc.peer[i], rc.tag[i], rc.root[i], rc.req[i] = e.Peer, e.Tag, e.Root, e.Req
			rc.comm[i], rc.bytes[i] = e.Comm, e.Bytes
			switch e.Op {
			case OpWaitall:
				rc.auxOff[i], rc.auxLen[i] = uint32(len(rc.reqArena)), uint32(len(e.Reqs))
				rc.reqArena = append(rc.reqArena, e.Reqs...)
			case OpAlltoallv:
				rc.auxOff[i], rc.auxLen[i] = uint32(len(rc.sbArena)), uint32(len(e.SendBytes))
				rc.sbArena = append(rc.sbArena, e.SendBytes...)
			}
		}
	}
	return c
}

// Materialize converts the columns back to an array-of-structs trace.
// Event Reqs/SendBytes fields alias the column arenas (zero-copy).
func (c *Columns) Materialize() *Trace {
	t := &Trace{Meta: c.Meta, Comms: c.Comms, Ranks: make([][]Event, len(c.ranks))}
	for r := range c.ranks {
		n := len(c.ranks[r].op)
		evs := make([]Event, n)
		for i := range evs {
			c.EventAt(r, i, &evs[i])
		}
		t.Ranks[r] = evs
	}
	return t
}

// FootprintBytes estimates the resident heap bytes of the columnar
// representation (column arrays plus arenas; metadata excluded).
func (c *Columns) FootprintBytes() int64 {
	var b int64
	for r := range c.ranks {
		rc := &c.ranks[r]
		n := int64(cap(rc.op))
		b += n * int64(unsafe.Sizeof(Op(0)))
		b += int64(cap(rc.entry)+cap(rc.exit)) * 8
		b += int64(cap(rc.peer)+cap(rc.tag)+cap(rc.root)+cap(rc.req)) * 4
		b += int64(cap(rc.comm)) * 4
		b += int64(cap(rc.bytes)) * 8
		b += int64(cap(rc.auxOff)+cap(rc.auxLen)) * 4
		b += int64(cap(rc.reqArena)) * 4
		b += int64(cap(rc.sbArena)) * 8
	}
	return b
}

// AoSFootprintBytes estimates the resident heap bytes of the
// array-of-structs representation of t: the Event rows plus the
// per-event side slices.
func AoSFootprintBytes(t *Trace) int64 {
	var b int64
	for _, evs := range t.Ranks {
		b += int64(cap(evs)) * int64(unsafe.Sizeof(Event{}))
		for i := range evs {
			b += int64(cap(evs[i].Reqs)) * 4
			b += int64(cap(evs[i].SendBytes)) * 8
		}
	}
	return b
}
