package scheme_test

import (
	"reflect"
	"testing"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/scheme"
	"hpctradeoff/internal/trace"
	"hpctradeoff/internal/workload"
)

// The four built-in schemes register at init in the paper's reporting
// order; this order is the campaign's deterministic iteration order.
func TestBuiltinRegistrationOrder(t *testing.T) {
	want := []string{scheme.MFACT, scheme.Packet, scheme.Flow, scheme.PacketFlow}
	if got := scheme.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, n := range want {
		s, ok := scheme.Get(n)
		if !ok {
			t.Fatalf("Get(%q) missing", n)
		}
		if s.Name() != n {
			t.Errorf("Get(%q).Name() = %q", n, s.Name())
		}
	}
	if s, _ := scheme.Get(scheme.MFACT); s.Kind() != scheme.KindModel {
		t.Error("mfact is not a model")
	}
	for _, n := range want[1:] {
		if s, _ := scheme.Get(n); s.Kind() != scheme.KindSimulation {
			t.Errorf("%s is not a simulation", n)
		}
	}
}

func TestResolve(t *testing.T) {
	all, err := scheme.Resolve(nil)
	if err != nil || len(all) != len(scheme.Names()) {
		t.Fatalf("Resolve(nil) = %d schemes, err %v", len(all), err)
	}
	subset, err := scheme.Resolve([]string{scheme.Packet, scheme.MFACT})
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) != 2 || subset[0].Name() != scheme.Packet || subset[1].Name() != scheme.MFACT {
		t.Fatalf("Resolve preserves selection order: got %v", subset)
	}
	if _, err := scheme.Resolve([]string{"warp-drive"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestParseList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{" , ,", nil},
		{"mfact", []string{"mfact"}},
		{"mfact, packet ,flow", []string{"mfact", "packet", "flow"}},
	}
	for _, c := range cases {
		if got := scheme.ParseList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// A fifth backend registers through the public API alone — the promise
// that lets an out-of-tree scheme join the campaign without touching
// internal/core.
func TestRegisterFifthScheme(t *testing.T) {
	toy := scheme.Func{
		SchemeName: "toy",
		SchemeKind: scheme.KindModel,
		RunFunc: func(src trace.Source, mach *machine.Config, opts scheme.Options) (scheme.Outcome, error) {
			return scheme.Outcome{
				Scheme: "toy", Kind: scheme.KindModel, OK: true,
				Total: 1, Comm: 1, Events: uint64(trace.SourceNumEvents(src)),
			}, nil
		},
	}
	scheme.Register(toy)
	defer scheme.Unregister("toy")

	names := scheme.Names()
	if names[len(names)-1] != "toy" {
		t.Fatalf("toy not appended to registry order: %v", names)
	}
	ss, err := scheme.Resolve([]string{"toy"})
	if err != nil || len(ss) != 1 {
		t.Fatalf("Resolve(toy): %v, %v", ss, err)
	}

	// Duplicate registration is a programming error.
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	scheme.Register(toy)
}

// Session results must be bit-identical to the stateless Run — across
// repeated traces, so recycled arenas and free lists are proven to
// carry no state between replays.
func TestSessionBitIdenticalToRun(t *testing.T) {
	ps := []workload.Params{
		{App: "CG", Class: "S", Ranks: 8, Machine: "edison", Seed: 61},
		{App: "FT", Class: "S", Ranks: 8, Machine: "hopper", Seed: 62},
		{App: "CG", Class: "S", Ranks: 8, Machine: "edison", Seed: 61}, // repeat: reuse paths
	}
	for _, name := range scheme.Names() {
		s, _ := scheme.Get(name)
		sess := s.NewSession()
		for i, p := range ps {
			cols, err := workload.MaterializeColumns(p)
			if err != nil {
				t.Fatal(err)
			}
			mach, err := machine.New(p.Machine, p.Ranks, p.RanksPerNode)
			if err != nil {
				t.Fatal(err)
			}
			want, werr := s.Run(cols, mach, scheme.Options{})
			got, gerr := sess.Run(cols, mach, scheme.Options{})
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s trace %d: Run err %v, Session err %v", name, i, werr, gerr)
			}
			// Wall clocks differ run to run; every predicted quantity may not.
			want.Wall, got.Wall = 0, 0
			wm, gm := want.Model, got.Model
			want.Model, got.Model = nil, nil
			if want != got {
				t.Fatalf("%s trace %d: Session diverged:\ngot  %+v\nwant %+v", name, i, got, want)
			}
			if (wm == nil) != (gm == nil) {
				t.Fatalf("%s trace %d: model presence differs", name, i)
			}
			if wm != nil {
				if gm.Events != wm.Events || gm.Class != wm.Class {
					t.Fatalf("%s trace %d: model events/class differ", name, i)
				}
				if !reflect.DeepEqual(gm.Totals, wm.Totals) || !reflect.DeepEqual(gm.Comms, wm.Comms) {
					t.Fatalf("%s trace %d: model sweep differs", name, i)
				}
			}
		}
	}
}
