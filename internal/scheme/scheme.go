// Package scheme unifies the study's prediction schemes — MFACT
// modeling and the packet, flow, and packet-flow simulations — behind
// one interface and registry, so the campaign layer runs "every
// registered scheme" without naming any of them. Adding a fifth
// backend is a Register call; internal/core never changes.
//
// Schemes run over trace.Source, the uniform access path of PR 3's
// columnar core: a campaign can drive a *trace.Columns straight into
// every scheme and never materialize an array-of-structs trace on the
// replay path. Per-worker Sessions own reusable replay state (clock-
// vector free lists, op/request arenas) so allocations amortize across
// traces, not just across events.
package scheme

import (
	"time"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/mfact"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/trace"
)

// Kind separates analytic models (no network state, one logical-clock
// pass) from discrete-event simulations (contention-observing).
type Kind string

// The two kinds the study compares.
const (
	KindModel      Kind = "model"
	KindSimulation Kind = "simulation"
)

// Canonical names of the built-in schemes. The simulation names equal
// the simnet model names, so results keyed by scheme read the same as
// the paper's tables.
const (
	MFACT      = "mfact"
	Packet     = "packet"
	Flow       = "flow"
	PacketFlow = "packetflow"
)

// Options bound one scheme run. The zero value imposes no limits.
type Options struct {
	// Deadline is a wall-clock cutoff (zero value means none).
	Deadline time.Time
	// MaxEvents caps the DES events of a simulation run; modeling
	// schemes may ignore it (a modeling pass is orders of magnitude
	// cheaper than the runs the cap defends against).
	MaxEvents uint64
	// Cancel, when non-nil, cancels a running simulation when closed,
	// through the DES engines' cooperative Stop() path; the run fails
	// with an error wrapping des.ErrCanceled. Modeling schemes may
	// ignore it for the same reason they ignore MaxEvents.
	Cancel <-chan struct{}
}

// Outcome records one scheme's run on one trace.
type Outcome struct {
	// Scheme and Kind echo the scheme's identity so outcomes loaded
	// from disk stay self-describing even for schemes no longer
	// registered.
	Scheme string
	Kind   Kind
	// OK is false when the scheme could not predict the trace (a
	// capability gap, a deadlock) or the run failed.
	OK bool
	// Err is the failure message; ErrKind its typed classification
	// (core.Classify), so campaign reports can bucket capability gaps
	// separately from deadlocks without parsing strings.
	Err     string `json:",omitempty"`
	ErrKind string `json:",omitempty"`
	// Total and Comm are the predicted application and communication
	// times.
	Total, Comm simtime.Time
	// Events is the number of events executed (DES events for
	// simulations, trace events for modeling).
	Events uint64
	// Wall is the wall-clock execution time of the run.
	Wall time.Duration
	// Model carries the full MFACT result (sweep, counters,
	// classification) for modeling schemes; nil for simulations. The
	// experiment builders read the classification and sensitivity
	// analysis from here.
	Model *mfact.Result `json:",omitempty"`
}

// Scheme is one prediction scheme: a way to turn a trace plus a
// machine model into predicted application and communication times.
type Scheme interface {
	// Name is the registry key ("mfact", "packet", ...).
	Name() string
	// Kind classifies the scheme as modeling or simulation.
	Kind() Kind
	// Run executes the scheme once, statelessly.
	Run(src trace.Source, mach *machine.Config, opts Options) (Outcome, error)
	// NewSession returns a fresh per-worker session whose Run is
	// equivalent to the scheme's but may reuse internal state across
	// calls. Sessions are not safe for concurrent use.
	NewSession() Session
}

// Session is a scheme instance owning reusable replay state. Results
// are bit-identical to the stateless Run; only allocation behavior
// differs.
type Session interface {
	Run(src trace.Source, mach *machine.Config, opts Options) (Outcome, error)
}

// Func adapts a plain function into a stateless Scheme — the shortest
// path to registering an experimental backend or a test double.
type Func struct {
	SchemeName string
	SchemeKind Kind
	RunFunc    func(src trace.Source, mach *machine.Config, opts Options) (Outcome, error)
}

// Name implements Scheme.
func (f Func) Name() string { return f.SchemeName }

// Kind implements Scheme.
func (f Func) Kind() Kind { return f.SchemeKind }

// Run implements Scheme.
func (f Func) Run(src trace.Source, mach *machine.Config, opts Options) (Outcome, error) {
	return f.RunFunc(src, mach, opts)
}

// NewSession implements Scheme; a Func is stateless, so the session is
// the Func itself.
func (f Func) NewSession() Session { return f }
