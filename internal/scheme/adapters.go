package scheme

import (
	"time"

	"hpctradeoff/internal/faultinject"
	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/mfact"
	"hpctradeoff/internal/mpisim"
	"hpctradeoff/internal/simnet"
	"hpctradeoff/internal/trace"
)

// failRun is the scheme-execution failpoint, hit once per scheme run
// (stateless and session paths alike) with the scheme's name as the
// label, so a schedule can target one backend: injected errors become
// per-scheme failures the campaign classifies, injected panics
// exercise its panic isolation, and injected stalls push a run past
// its wall-clock budget. Disarmed it is a nil check.
var failRun = faultinject.NewSite("scheme/run")

// The four built-in schemes of the study, registered in the order the
// paper reports them: the MFACT model, then the packet, flow, and
// packet-flow simulations.
func init() {
	Register(mfactScheme{})
	for _, m := range simnet.Models() {
		Register(simScheme{model: m})
	}
}

// Adapters return (Outcome, err) with the Outcome's identity and Wall
// always filled, leaving the caller to decide which errors are fatal
// for the whole trace (blown budgets) and which stay per-scheme
// records (capability gaps, deadlocks).

// mfactScheme adapts the MFACT modeling tool.
type mfactScheme struct{}

func (mfactScheme) Name() string { return MFACT }
func (mfactScheme) Kind() Kind   { return KindModel }

// Run replays the standard configuration sweep. The budget options are
// not applied: one logical-clock pass is orders of magnitude cheaper
// than the simulations the budget defends against.
func (mfactScheme) Run(src trace.Source, mach *machine.Config, _ Options) (Outcome, error) {
	start := time.Now()
	if err := failRun.FailLabel(MFACT); err != nil {
		return Outcome{Scheme: MFACT, Kind: KindModel, Wall: time.Since(start)}, err
	}
	res, err := mfact.ModelSource(src, mach, nil)
	return mfactOutcome(res, err, time.Since(start))
}

func (mfactScheme) NewSession() Session { return &mfactSession{sess: mfact.NewSession()} }

type mfactSession struct{ sess *mfact.Session }

func (s *mfactSession) Run(src trace.Source, mach *machine.Config, _ Options) (Outcome, error) {
	start := time.Now()
	if err := failRun.FailLabel(MFACT); err != nil {
		return Outcome{Scheme: MFACT, Kind: KindModel, Wall: time.Since(start)}, err
	}
	res, err := s.sess.Model(src, mach, nil)
	return mfactOutcome(res, err, time.Since(start))
}

func mfactOutcome(res *mfact.Result, err error, wall time.Duration) (Outcome, error) {
	out := Outcome{Scheme: MFACT, Kind: KindModel, Wall: wall}
	if err != nil {
		return out, err
	}
	out.OK = true
	out.Total = res.Total()
	out.Comm = res.Comm()
	out.Events = uint64(res.Events)
	out.Model = res
	return out, nil
}

// simScheme adapts one mpisim replay over one simnet model.
type simScheme struct{ model simnet.Model }

func (s simScheme) Name() string { return string(s.model) }
func (simScheme) Kind() Kind     { return KindSimulation }

func (s simScheme) Run(src trace.Source, mach *machine.Config, opts Options) (Outcome, error) {
	start := time.Now()
	if err := failRun.FailLabel(string(s.model)); err != nil {
		return Outcome{Scheme: string(s.model), Kind: KindSimulation, Wall: time.Since(start)}, err
	}
	res, err := mpisim.ReplaySource(src, s.model, mach, simnet.Config{}, simOpts(opts))
	return simOutcome(string(s.model), res, err, time.Since(start))
}

func (s simScheme) NewSession() Session {
	return &simSession{model: s.model, sess: mpisim.NewSession()}
}

type simSession struct {
	model simnet.Model
	sess  *mpisim.Session
}

func (s *simSession) Run(src trace.Source, mach *machine.Config, opts Options) (Outcome, error) {
	start := time.Now()
	if err := failRun.FailLabel(string(s.model)); err != nil {
		return Outcome{Scheme: string(s.model), Kind: KindSimulation, Wall: time.Since(start)}, err
	}
	res, err := s.sess.Replay(src, s.model, mach, simnet.Config{}, simOpts(opts))
	return simOutcome(string(s.model), res, err, time.Since(start))
}

func simOpts(opts Options) mpisim.Options {
	return mpisim.Options{Deadline: opts.Deadline, MaxEvents: opts.MaxEvents, Cancel: opts.Cancel}
}

func simOutcome(name string, res *mpisim.Result, err error, wall time.Duration) (Outcome, error) {
	out := Outcome{Scheme: name, Kind: KindSimulation, Wall: wall}
	if err != nil {
		return out, err
	}
	out.OK = true
	out.Total = res.Total
	out.Comm = res.Comm
	out.Events = res.Events
	return out, nil
}
