package scheme

import (
	"fmt"
	"strings"
	"sync"
)

// The registry maps scheme names to implementations. Registration
// order is the deterministic order every listing reports — the
// campaign's iteration order, the builders' column order — so two runs
// of the same binary always process schemes identically.

var (
	regMu    sync.RWMutex
	registry = map[string]Scheme{}
	order    []string
)

// Register adds s under its name. Duplicate or empty names panic: both
// are programming errors best caught at init time.
func Register(s Scheme) {
	name := s.Name()
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" {
		panic("scheme: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scheme: Register called twice for %q", name))
	}
	registry[name] = s
	order = append(order, name)
}

// Unregister removes a scheme by name (a no-op if absent). It exists
// so tests can register temporary schemes and restore the registry;
// production code never unregisters.
func Unregister(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[name]; !ok {
		return
	}
	delete(registry, name)
	for i, n := range order {
		if n == name {
			order = append(order[:i], order[i+1:]...)
			break
		}
	}
}

// Get returns the scheme registered under name.
func Get(name string) (Scheme, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names lists the registered scheme names in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), order...)
}

// All lists the registered schemes in registration order.
func All() []Scheme {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Scheme, len(order))
	for i, n := range order {
		out[i] = registry[n]
	}
	return out
}

// Resolve maps names to schemes, preserving the given order. An empty
// or nil list selects every registered scheme in registration order;
// an unknown name is an error naming the valid choices.
func Resolve(names []string) ([]Scheme, error) {
	if len(names) == 0 {
		return All(), nil
	}
	out := make([]Scheme, len(names))
	for i, n := range names {
		s, ok := Get(n)
		if !ok {
			return nil, fmt.Errorf("scheme: unknown scheme %q (registered: %s)", n, strings.Join(Names(), ", "))
		}
		out[i] = s
	}
	return out, nil
}

// ParseList splits a -schemes flag value ("mfact,packet") into names,
// trimming whitespace and dropping empties. An empty value yields nil,
// which Resolve treats as "all registered".
func ParseList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
