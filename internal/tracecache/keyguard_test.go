package tracecache

import (
	"fmt"
	"reflect"
	"testing"

	"hpctradeoff/internal/workload"
)

// TestKeyFoldsEveryParam walks workload.Params by reflection, mutates
// every field (recursing into sub-structs like Noise), and asserts each
// mutation changes Key — and therefore Hash, the entry's
// content-address. A Params field the key ignores would let two
// different scenarios share a cache entry and silently serve stale
// ground truth; this guard makes that a test failure the moment the
// field is added, instead of a wrong-science incident later.
func TestKeyFoldsEveryParam(t *testing.T) {
	base := workload.Params{
		App: "CG", Class: "B", Ranks: 64, Machine: "edison",
		RanksPerNode: 8, Seed: 42, Iters: 3,
		Noise: workload.Noise{LinkJitter: 0.1, NodeHetero: 0.2, OSNoise: 0.3, Seed: 7},
	}
	baseKey := Key(base)

	var walk func(t *testing.T, v reflect.Value, path string, mutated *workload.Params)
	walk = func(t *testing.T, v reflect.Value, path string, mutated *workload.Params) {
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			fv := v.Field(i)
			name := path + f.Name
			if f.Type.Kind() == reflect.Struct {
				walk(t, fv, name+".", mutated)
				continue
			}
			if !mutate(fv) {
				t.Fatalf("%s: don't know how to mutate a %s — teach this guard about the new field type", name, f.Type)
			}
			if got := Key(*mutated); got == baseKey {
				t.Errorf("%s: mutating the field does not change Key(p) = %q — cache would serve stale ground truth", name, baseKey)
			}
			// Restore for the next field so mutations are independent.
			*mutated = base
		}
	}
	p := base
	walk(t, reflect.ValueOf(&p).Elem(), "", &p)

	if t.Failed() {
		return
	}
	// The guard is only as good as its base fixture: every field must
	// start non-zero (a zero base could mask a mutation that lands back
	// on another field's encoding).
	var checkNonZero func(v reflect.Value, path string)
	checkNonZero = func(v reflect.Value, path string) {
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			fv := v.Field(i)
			if f.Type.Kind() == reflect.Struct {
				checkNonZero(fv, path+f.Name+".")
				continue
			}
			if fv.IsZero() {
				t.Errorf("base fixture leaves %s%s zero; give it a distinct non-zero value", path, f.Name)
			}
		}
	}
	checkNonZero(reflect.ValueOf(base), "")
}

// mutate overwrites v with a value distinct from its current one,
// returning false for kinds it does not understand.
func mutate(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.String:
		v.SetString(v.String() + "~guard")
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 0.5)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	default:
		return false
	}
	return true
}

// TestKeyDistinguishesNoiseFromZero is the concrete regression the
// reflection guard abstracts: a noisy trace and its zero-noise twin
// must hash to different cache entries.
func TestKeyDistinguishesNoiseFromZero(t *testing.T) {
	p := workload.Params{App: "CG", Class: "B", Ranks: 64, Machine: "edison", Seed: 1}
	q := p
	q.Noise = workload.Noise{LinkJitter: 0.2}
	if Key(p) == Key(q) {
		t.Fatalf("zero-noise and noisy Params share cache key %q", Key(p))
	}
	if Hash(p) == Hash(q) {
		t.Fatalf("zero-noise and noisy Params share content-address %s", Hash(p))
	}
	for _, k := range []string{Key(p), Key(q)} {
		if got := fmt.Sprintf("%s", k); got == "" {
			t.Fatalf("empty key")
		}
	}
}
