package tracecache

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"hpctradeoff/internal/faultinject"
	"hpctradeoff/internal/trace"
	"hpctradeoff/internal/workload"
)

func testParams(seed int64) workload.Params {
	return workload.Params{App: "CG", Class: "S", Ranks: 4, Machine: "edison", Seed: seed}
}

func mustOpen(t *testing.T, dir string, opts Options) *Cache {
	t.Helper()
	if opts.Warnf == nil {
		opts.Warnf = t.Logf
	}
	c, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// acquire materializes through the real workload path.
func acquire(t *testing.T, c *Cache, p workload.Params) (*trace.Columns, func(), bool) {
	t.Helper()
	cols, release, hit, err := c.Acquire(p, func() (*trace.Columns, error) {
		return workload.MaterializeColumns(p)
	})
	if err != nil {
		t.Fatalf("Acquire(%v): %v", p, err)
	}
	return cols, release, hit
}

func TestKeyFoldsEveryField(t *testing.T) {
	base := testParams(1)
	variants := []workload.Params{
		{App: "MG", Class: "S", Ranks: 4, Machine: "edison", Seed: 1},
		{App: "CG", Class: "A", Ranks: 4, Machine: "edison", Seed: 1},
		{App: "CG", Class: "S", Ranks: 8, Machine: "edison", Seed: 1},
		{App: "CG", Class: "S", Ranks: 4, Machine: "hopper", Seed: 1},
		{App: "CG", Class: "S", Ranks: 4, Machine: "edison", RanksPerNode: 2, Seed: 1},
		{App: "CG", Class: "S", Ranks: 4, Machine: "edison", Seed: 2},
		{App: "CG", Class: "S", Ranks: 4, Machine: "edison", Seed: 1, Iters: 3},
	}
	seen := map[string]workload.Params{Hash(base): base}
	for _, v := range variants {
		h := Hash(v)
		if prev, dup := seen[h]; dup {
			t.Errorf("params %+v and %+v share hash %s", v, prev, h)
		}
		seen[h] = v
	}
	for _, part := range []string{fmt.Sprint(trace.VersionV3), fmt.Sprint(workload.SchemaVersion)} {
		if !strings.Contains(Key(base), part) {
			t.Errorf("Key %q does not fold in version %s", Key(base), part)
		}
	}
}

func TestMissThenHitRoundtrip(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	p := testParams(1)

	fresh, release, hit := acquire(t, c, p)
	if hit {
		t.Fatal("first acquisition reported a hit on an empty cache")
	}
	freshEvents := fresh.NumEvents()
	freshTotal := trace.SourceMeasuredTotal(fresh)
	release()

	cached, release2, hit2 := acquire(t, c, p)
	defer release2()
	if !hit2 {
		t.Fatal("second acquisition missed")
	}
	if got := cached.NumEvents(); got != freshEvents {
		t.Errorf("cached trace has %d events, fresh %d", got, freshEvents)
	}
	if got := trace.SourceMeasuredTotal(cached); got != freshTotal {
		t.Errorf("cached measured total %v, fresh %v", got, freshTotal)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 0 corrupt", st)
	}
}

// TestHitSkipsMaterialization is the warm-path contract: a hit must
// never invoke the materialize callback (the generate+stamp cost the
// cache exists to avoid).
func TestHitSkipsMaterialization(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	p := testParams(2)
	_, release, _ := acquire(t, c, p)
	release()

	cols, release2, hit, err := c.Acquire(p, func() (*trace.Columns, error) {
		panic("materialize ran on a warm cache")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	if !hit || cols == nil {
		t.Fatalf("warm acquisition: hit=%v cols=%v", hit, cols != nil)
	}
}

func TestMaterializeErrorPropagates(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	boom := errors.New("generator exploded")
	_, _, _, err := c.Acquire(testParams(3), func() (*trace.Columns, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Acquire error = %v, want %v", err, boom)
	}
	if st := c.Stats(); st.Misses != 0 {
		t.Errorf("failed materialization counted as a miss: %+v", st)
	}
	if entries, _ := c.List(); len(entries) != 0 {
		t.Errorf("failed materialization published %d entries", len(entries))
	}
}

// TestCorruptTraceEvicted flips one byte of a published trace file at
// every offset class (header, column data, tail) and asserts detection,
// eviction, regeneration, and a warning — never a wrong result.
func TestCorruptTraceEvicted(t *testing.T) {
	for _, tc := range []struct {
		name string
		at   func(n int) int
	}{
		{"header", func(int) int { return 3 }},
		{"middle", func(n int) int { return n / 2 }},
		{"tail", func(n int) int { return n - 1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var warns atomic.Int64
			c := mustOpen(t, t.TempDir(), Options{Warnf: func(format string, args ...any) {
				warns.Add(1)
				t.Logf(format, args...)
			}})
			p := testParams(4)
			fresh, release, _ := acquire(t, c, p)
			want := trace.SourceMeasuredTotal(fresh)
			release()

			tp, _ := c.EntryPaths(Hash(p))
			img, err := os.ReadFile(tp)
			if err != nil {
				t.Fatal(err)
			}
			img[tc.at(len(img))] ^= 0x40
			if err := os.WriteFile(tp, img, 0o644); err != nil {
				t.Fatal(err)
			}

			cols, release2, hit := acquire(t, c, p)
			defer release2()
			if hit {
				t.Fatal("corrupt entry served as a hit")
			}
			if got := trace.SourceMeasuredTotal(cols); got != want {
				t.Errorf("regenerated trace measured %v, want %v", got, want)
			}
			if st := c.Stats(); st.Corrupt != 1 {
				t.Errorf("corrupt count = %d, want 1", st.Corrupt)
			}
			if warns.Load() == 0 {
				t.Error("corrupt eviction produced no warning")
			}
			// The regenerated entry must be healthy again.
			_, release3, hit3 := acquire(t, c, p)
			release3()
			if !hit3 {
				t.Error("entry not regenerated after corrupt eviction")
			}
		})
	}
}

func TestCorruptSidecarEvicted(t *testing.T) {
	for _, tc := range []struct {
		name   string
		damage func(path string, t *testing.T)
	}{
		{"truncated", func(path string, t *testing.T) {
			data, _ := os.ReadFile(path)
			os.WriteFile(path, data[:len(data)/3], 0o644)
		}},
		{"bit-flip", func(path string, t *testing.T) {
			data, _ := os.ReadFile(path)
			data[len(data)/4] ^= 1
			os.WriteFile(path, data, 0o644)
		}},
		{"missing-trace", func(path string, t *testing.T) {
			os.Remove(strings.TrimSuffix(path, sidecarSuffix) + traceSuffix)
		}},
		{"truncated-trace", func(path string, t *testing.T) {
			tp := strings.TrimSuffix(path, sidecarSuffix) + traceSuffix
			data, _ := os.ReadFile(tp)
			os.WriteFile(tp, data[:len(data)-7], 0o644)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := mustOpen(t, t.TempDir(), Options{})
			p := testParams(5)
			_, release, _ := acquire(t, c, p)
			release()
			_, scPath := c.EntryPaths(Hash(p))
			tc.damage(scPath, t)

			_, release2, hit := acquire(t, c, p)
			release2()
			if hit {
				t.Fatal("damaged entry served as a hit")
			}
			_, release3, hit3 := acquire(t, c, p)
			release3()
			if !hit3 {
				t.Error("entry not healthy after eviction + regeneration")
			}
		})
	}
}

// TestOpenFailpoint proves the tracecache/open failpoint is treated as
// corruption: evict, warn, regenerate.
func TestOpenFailpoint(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	p := testParams(6)
	_, release, _ := acquire(t, c, p)
	release()

	if err := faultinject.Arm(1, []faultinject.Rule{{
		Site: "tracecache/open", Action: faultinject.ActError, Hits: []uint64{1}, MaxFires: 1,
	}}); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Disarm()

	_, release2, hit := acquire(t, c, p)
	release2()
	if hit {
		t.Fatal("failpoint firing still served a hit")
	}
	if st := c.Stats(); st.Corrupt != 1 || st.Misses != 2 {
		t.Errorf("stats after failpoint = %+v, want corrupt 1, misses 2", st)
	}
	_, release3, hit3 := acquire(t, c, p)
	release3()
	if !hit3 {
		t.Error("entry not regenerated after failpoint eviction")
	}
}

// TestSchemaVersionInvalidates proves a sidecar claiming a different
// schema version never serves, even with valid checksums.
func TestSchemaVersionInvalidates(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	p := testParams(7)
	_, release, _ := acquire(t, c, p)
	release()

	// Rewrite the sidecar with a bumped workload schema and a valid
	// self-checksum, as a build with a newer generator would have.
	tp, scPath := c.EntryPaths(Hash(p))
	img, _ := os.ReadFile(tp)
	crc := fmt.Sprintf("%08x", crc32.Checksum(img, castagnoli))
	sc := &sidecar{Version: sidecarVersion, Key: Key(p), Codec: trace.VersionV3,
		WorkloadSchema: workload.SchemaVersion + 1, Size: int64(len(img)), CRC32C: crc}
	data, err := encodeSidecar(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(scPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, release2, hit := acquire(t, c, p)
	release2()
	if hit {
		t.Fatal("entry from a different workload schema served as a hit")
	}
}

func TestSingleflight(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	p := testParams(8)
	var materializations atomic.Int64
	const workers = 8
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cols, release, _, err := c.Acquire(p, func() (*trace.Columns, error) {
				materializations.Add(1)
				return workload.MaterializeColumns(p)
			})
			if err != nil {
				t.Error(err)
				return
			}
			if cols.NumEvents() == 0 {
				t.Error("empty columns from concurrent acquire")
			}
			release()
		}()
	}
	wg.Wait()
	if n := materializations.Load(); n != 1 {
		t.Errorf("%d goroutines materialized, want exactly 1 (singleflight)", n)
	}
	if st := c.Stats(); st.Hits != workers-1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want %d hits, 1 miss", st, workers-1)
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Size one entry to derive a cap that holds roughly two of the four.
	probe := mustOpen(t, dir, Options{})
	_, release, _ := acquire(t, probe, testParams(10))
	release()
	entries, err := probe.List()
	if err != nil || len(entries) != 1 {
		t.Fatalf("probe listing: %v, %d entries", err, len(entries))
	}
	per := entries[0].Bytes

	c := mustOpen(t, dir, Options{MaxBytes: 2*per + per/2, Warnf: t.Logf})
	for seed := int64(11); seed <= 13; seed++ {
		_, rel, _ := acquire(t, c, testParams(seed))
		rel()
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no LRU evictions under a %d-byte cap after 4 same-size entries", 2*per+per/2)
	}
	left, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range left {
		total += e.Bytes
	}
	if total > 2*per+per/2 {
		t.Errorf("cache holds %d bytes, cap %d", total, 2*per+per/2)
	}
	// The newest entry must have survived (eviction is LRU).
	if _, rel, hit := acquire(t, c, testParams(13)); true {
		rel()
		if !hit {
			t.Error("most recently published entry was evicted")
		}
	}
}

func TestListReportsEntries(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	p := testParams(14)
	_, release, _ := acquire(t, c, p)
	release()
	entries, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("List returned %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Key != Key(p) || e.Hash != Hash(p) || e.Codec != trace.VersionV3 ||
		e.WorkloadSchema != workload.SchemaVersion || e.Bytes <= 0 || e.Err != nil {
		t.Errorf("List entry = %+v", e)
	}
}

// TestCrashedPublishLeavesNoEntry simulates a crash between the trace
// rename and the sidecar rename: the orphan trace file must read as a
// miss (no sidecar, nothing trusted), and republishing must heal it.
func TestCrashedPublishLeavesNoEntry(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	p := testParams(15)
	_, release, _ := acquire(t, c, p)
	release()
	_, scPath := c.EntryPaths(Hash(p))
	if err := os.Remove(scPath); err != nil {
		t.Fatal(err)
	}
	_, release2, hit := acquire(t, c, p)
	release2()
	if hit {
		t.Fatal("orphan trace file without a sidecar served as a hit")
	}
	if st := c.Stats(); st.Corrupt != 0 {
		t.Errorf("sidecar-less entry counted as corruption (%+v); it is a plain miss", st)
	}
	_, release3, hit3 := acquire(t, c, p)
	release3()
	if !hit3 {
		t.Error("republish after orphaned trace did not heal the entry")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1, Corrupt: 2, Evictions: 4, BytesWritten: 1e6, BytesMapped: 2e6}
	str := s.String()
	for _, want := range []string{"3 hits", "1 misses", "2 corrupt", "4 LRU", "1.0 MB written", "2.0 MB mapped"} {
		if !strings.Contains(str, want) {
			t.Errorf("Stats.String() = %q, missing %q", str, want)
		}
	}
}

// TestSharedDirAcrossCaches is the cross-process shape in-process: two
// Cache handles over one directory (as two shard workers would hold)
// serve each other's entries.
func TestSharedDirAcrossCaches(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{})
	b := mustOpen(t, dir, Options{})
	p := testParams(16)
	_, release, _ := acquire(t, a, p)
	release()
	_, release2, hit := acquire(t, b, p)
	release2()
	if !hit {
		t.Fatal("second cache handle over the same dir missed")
	}
	if _, err := os.Stat(filepath.Join(dir, Hash(p)+traceSuffix)); err != nil {
		t.Fatal(err)
	}
}
