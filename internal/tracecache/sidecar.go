package tracecache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// The sidecar index is the cache's trust boundary: a trace file is
// never believed without a sidecar that (a) parses, (b) passes its own
// self-checksum, (c) names the schema versions this build expects, and
// (d) matches the trace file's size and CRC. The format is two lines:
//
//	{"version":1,"key":"CG.S.x16...","codec":3,...,"crc32c":"9a0b..."}\n
//	crc32c <8 hex digits of the first line, including its newline>\n
//
// The trailing line checksums the JSON line itself, so a torn sidecar
// write (crash mid-publish) or a bit flip inside the index is detected
// before any field of it is trusted — the entry is then evicted and
// regenerated, exactly like a corrupt trace file.

// sidecarVersion is the index format version; unknown versions are
// rejected (and the entry regenerated), never guessed at.
const sidecarVersion = 1

// castagnoli is the CRC-32C table shared by the sidecar self-checksum
// and the trace-file checksum (hardware-accelerated on amd64/arm64, so
// verifying a hit stays O(bytes) with a tiny constant).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// sidecar describes one cache entry.
type sidecar struct {
	// Version is sidecarVersion.
	Version int `json:"version"`
	// Key is the human-readable identity the entry hash was derived
	// from (app, class, ranks, machine, seed, schema versions); it is
	// what traceinfo -cache prints.
	Key string `json:"key"`
	// Codec is the trace codec version of the entry file (v3);
	// WorkloadSchema the workload.SchemaVersion it was generated under.
	// Either differing from the current build is a miss, not an error.
	Codec          int `json:"codec"`
	WorkloadSchema int `json:"workload_schema"`
	// Size is the exact byte length of the trace file; CRC32C its
	// checksum (8 lowercase hex digits), verified on every open.
	Size   int64  `json:"size"`
	CRC32C string `json:"crc32c"`
}

// encodeSidecar renders the two-line sidecar file image.
func encodeSidecar(sc *sidecar) ([]byte, error) {
	line, err := json.Marshal(sc)
	if err != nil {
		return nil, err
	}
	line = append(line, '\n')
	return append(line, []byte(fmt.Sprintf("crc32c %08x\n", crc32.Checksum(line, castagnoli)))...), nil
}

// parseSidecar validates and decodes a sidecar file image. Every
// failure is ErrCorrupt: the caller's only recourse is eviction and
// regeneration, whatever the specific damage.
func parseSidecar(data []byte) (*sidecar, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: sidecar truncated before its checksum line", ErrCorrupt)
	}
	line, rest := data[:nl+1], data[nl+1:]
	var got uint32
	if n, err := fmt.Sscanf(string(rest), "crc32c %08x\n", &got); n != 1 || err != nil {
		return nil, fmt.Errorf("%w: sidecar checksum line unreadable", ErrCorrupt)
	}
	if want := crc32.Checksum(line, castagnoli); got != want {
		return nil, fmt.Errorf("%w: sidecar self-checksum %08x, computed %08x", ErrCorrupt, got, want)
	}
	sc := &sidecar{}
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(sc); err != nil {
		return nil, fmt.Errorf("%w: sidecar JSON: %v", ErrCorrupt, err)
	}
	if sc.Version != sidecarVersion {
		return nil, fmt.Errorf("%w: sidecar version %d, this build reads %d", ErrCorrupt, sc.Version, sidecarVersion)
	}
	if sc.Size <= 0 || len(sc.CRC32C) != 8 || sc.Key == "" {
		return nil, fmt.Errorf("%w: sidecar fields implausible (size %d, crc %q, key %q)", ErrCorrupt, sc.Size, sc.CRC32C, sc.Key)
	}
	if _, err := fmt.Sscanf(sc.CRC32C, "%08x", new(uint32)); err != nil {
		return nil, fmt.Errorf("%w: sidecar trace checksum %q is not hex", ErrCorrupt, sc.CRC32C)
	}
	return sc, nil
}
