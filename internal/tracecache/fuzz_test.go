package tracecache

import (
	"errors"
	"testing"

	"hpctradeoff/internal/trace"
	"hpctradeoff/internal/workload"
)

// FuzzCacheSidecar hardens the sidecar index loader: whatever bytes are
// on disk — truncations, bit flips, hostile JSON, future versions — the
// parser must return a valid sidecar or ErrCorrupt, never panic, and
// never accept an index that would not re-encode to the same trust
// decisions. Committed seeds live in testdata/fuzz/FuzzCacheSidecar:
// a valid two-line index, a truncated one, one whose self-checksum
// lies, and one from an unknown format version.
func FuzzCacheSidecar(f *testing.F) {
	valid, err := encodeSidecar(&sidecar{
		Version: sidecarVersion, Key: Key(workload.Params{App: "CG", Class: "S", Ranks: 4, Machine: "edison", Seed: 1}),
		Codec: trace.VersionV3, WorkloadSchema: workload.SchemaVersion,
		Size: 4096, CRC32C: "9a0b1c2d",
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("{\"version\":1}\ncrc32c deadbeef\n"))
	f.Add([]byte("{}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := parseSidecar(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("parseSidecar error %v does not wrap ErrCorrupt", err)
			}
			if sc != nil {
				t.Fatal("parseSidecar returned both a sidecar and an error")
			}
			return
		}
		// An accepted index must satisfy every invariant the cache
		// relies on without re-checking...
		if sc.Version != sidecarVersion || sc.Size <= 0 || len(sc.CRC32C) != 8 || sc.Key == "" {
			t.Fatalf("parseSidecar accepted an implausible index: %+v", sc)
		}
		// ...and survive an encode/parse roundtrip unchanged, so a
		// repaired or rewritten sidecar preserves trust decisions.
		re, err := encodeSidecar(sc)
		if err != nil {
			t.Fatalf("re-encoding an accepted sidecar: %v", err)
		}
		sc2, err := parseSidecar(re)
		if err != nil {
			t.Fatalf("re-parsing a re-encoded sidecar: %v", err)
		}
		if *sc2 != *sc {
			t.Fatalf("sidecar did not roundtrip: %+v vs %+v", sc, sc2)
		}
	})
}
