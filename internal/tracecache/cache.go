// Package tracecache is a content-addressed on-disk cache of
// ground-truth-stamped columnar traces. Acquiring a trace is the
// dominant per-trace cost of a campaign — the generator builds the
// program and the detailed packet-flow simulator stamps measured
// timestamps into it — and the result is fully deterministic in
// (workload.Params, generator schema, codec version). The cache keys
// exactly that: a stable hash of the parameters plus both schema
// versions names a codec-v3 file and a checksummed sidecar index, so
// every acquisition after the first is an OpenMapped call — zero
// decode, page-cache-resident, MAP_PRIVATE so replay-time writes stay
// process-local — instead of a full generate + stamp.
//
// Trust and failure posture:
//
//   - Nothing on disk is believed unverified. The sidecar must pass its
//     own self-checksum and name the schema versions this build
//     expects; the trace file must match the sidecar's exact size and
//     CRC-32C before its contents are used. Any mismatch — bit flip,
//     truncation, torn write, unknown format — evicts the entry with a
//     warning and regenerates. A cache can therefore never make a
//     campaign wrong, only slow.
//   - Publication is crash-safe: temp file + fsync + rename for both
//     the trace and its sidecar (sidecar last, so a visible sidecar
//     implies a fully-published trace), then a directory fsync. A crash
//     mid-publish leaves either no entry or a temp file the next
//     eviction sweep collects.
//   - Concurrent acquisitions of one key are singleflighted in-process
//     (one goroutine materializes, the rest wait and open the published
//     entry). Across processes, publication is idempotent — the content
//     is deterministic and the rename atomic, so the worst case is
//     duplicated encoding work; sharded campaigns never even hit that,
//     because shards own disjoint manifest ranges.
//   - A size cap (Options.MaxBytes) is enforced after each publish by
//     evicting least-recently-used entries (sidecar mtime, touched on
//     every hit). Evicting an entry another process has mapped is safe:
//     the mapping outlives the unlink.
package tracecache

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hpctradeoff/internal/faultinject"
	"hpctradeoff/internal/trace"
	"hpctradeoff/internal/workload"
)

// ErrCorrupt marks a cache entry that failed verification (sidecar or
// trace damage, unknown versions, size/checksum mismatch). It is
// internal to the cache's control flow — Acquire never returns it; the
// entry is evicted and regenerated — but eviction warnings wrap it and
// tests match it with errors.Is.
var ErrCorrupt = errors.New("tracecache: corrupt entry")

// failOpen is the cache's failpoint, hit once per existing entry
// opened (label = the workload's app name). A firing is treated
// exactly like on-disk corruption: the entry is evicted with a warning
// and the trace regenerated — never trusted, never fatal.
var failOpen = faultinject.NewSite("tracecache/open")

const (
	traceSuffix   = ".htrc3"
	sidecarSuffix = ".idx"
	tmpPrefix     = ".tmp-"
)

// Key returns the human-readable identity string of p's cache entry:
// every Params field plus the codec and workload schema versions. Two
// builds disagreeing on any schema version derive different keys, so a
// format or generator bump invalidates the whole cache by construction
// (stale entries age out via the LRU cap) rather than by a migration.
func Key(p workload.Params) string {
	// %g round-trips float64 exactly, so two Params with different
	// noise amplitudes can never share a key. The noise fields are
	// folded unconditionally (zero values included): conditional
	// folding is exactly the kind of shortcut TestKeyFoldsEveryParam
	// exists to catch.
	return fmt.Sprintf("codec%d.gen%d|%s.%s.x%d.%s.n%d.s%d.i%d|lj%g.nh%g.os%g.ns%d",
		trace.VersionV3, workload.SchemaVersion,
		p.App, p.Class, p.Ranks, p.Machine, p.RanksPerNode, p.Seed, p.Iters,
		p.Noise.LinkJitter, p.Noise.NodeHetero, p.Noise.OSNoise, p.Noise.Seed)
}

// Hash returns the content-address of p's entry: the first 32 hex
// digits of SHA-256 over Key(p). It is the entry's file basename.
func Hash(p workload.Params) string {
	sum := sha256.Sum256([]byte(Key(p)))
	return fmt.Sprintf("%x", sum[:16])
}

// Options configures Open.
type Options struct {
	// MaxBytes caps the cache directory's total size (trace files plus
	// sidecars); 0 means unbounded. The cap is enforced after each
	// publish by LRU eviction, so it is a high-water mark, not a hard
	// ceiling — one entry larger than the cap still publishes (and is
	// evicted by the next one).
	MaxBytes int64
	// Warnf receives operator warnings: corrupt entries evicted,
	// publish failures (the cache degrades to pass-through), LRU
	// evictions. Nil discards them.
	Warnf func(format string, args ...any)
}

// Stats counts what the cache did. All counters are cumulative since
// Open.
type Stats struct {
	// Hits is the number of acquisitions served by OpenMapped; Misses
	// the number that materialized (generate + stamp). Misses equals
	// the number of times the materialize callback ran, which is what
	// the warm-path tests assert on.
	Hits, Misses int64
	// Corrupt counts entries evicted because verification failed
	// (including tracecache/open failpoint firings); Evictions counts
	// LRU evictions under the size cap.
	Corrupt, Evictions int64
	// BytesWritten is the total published trace+sidecar bytes;
	// BytesMapped the total trace bytes served via hits.
	BytesWritten, BytesMapped int64
}

// Sub returns the counter deltas s − o; campaign reports use it to
// attribute activity to one campaign on a long-lived cache.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Hits: s.Hits - o.Hits, Misses: s.Misses - o.Misses,
		Corrupt: s.Corrupt - o.Corrupt, Evictions: s.Evictions - o.Evictions,
		BytesWritten: s.BytesWritten - o.BytesWritten, BytesMapped: s.BytesMapped - o.BytesMapped,
	}
}

// String renders the stats for campaign summaries.
func (s Stats) String() string {
	out := fmt.Sprintf("%d hits, %d misses", s.Hits, s.Misses)
	if s.Corrupt > 0 {
		out += fmt.Sprintf(", %d corrupt evicted", s.Corrupt)
	}
	if s.Evictions > 0 {
		out += fmt.Sprintf(", %d LRU evicted", s.Evictions)
	}
	if s.BytesWritten > 0 {
		out += fmt.Sprintf(", %.1f MB written", float64(s.BytesWritten)/1e6)
	}
	if s.BytesMapped > 0 {
		out += fmt.Sprintf(", %.1f MB mapped", float64(s.BytesMapped)/1e6)
	}
	return out
}

// Cache is one cache directory handle. It is safe for concurrent use
// by any number of goroutines; multiple processes may share one
// directory (each with its own Cache).
type Cache struct {
	dir      string
	maxBytes int64
	warnf    func(string, ...any)

	mu       sync.Mutex
	inflight map[string]chan struct{}
	evictMu  sync.Mutex

	hits, misses, corrupt, evictions atomic.Int64
	bytesWritten, bytesMapped        atomic.Int64
}

// Open returns a Cache over dir, creating the directory if needed.
func Open(dir string, opts Options) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("tracecache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracecache: %w", err)
	}
	warnf := opts.Warnf
	if warnf == nil {
		warnf = func(string, ...any) {}
	}
	return &Cache{
		dir:      dir,
		maxBytes: opts.MaxBytes,
		warnf:    warnf,
		inflight: make(map[string]chan struct{}),
	}, nil
}

// Dir returns the cache directory path.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Corrupt: c.corrupt.Load(), Evictions: c.evictions.Load(),
		BytesWritten: c.bytesWritten.Load(), BytesMapped: c.bytesMapped.Load(),
	}
}

// Acquire returns the ground-truth-stamped columnar trace for p: from
// the cache when a verified entry exists, otherwise by running
// materialize (the caller's generate+stamp path) and publishing its
// result. The returned release function must be called when the caller
// is done replaying the columns — it unmaps a cache hit; it is never
// nil. The bool reports whether the acquisition was a cache hit.
//
// A cache problem is never an acquisition failure: corrupt entries are
// evicted and regenerated, and a failed publish degrades to returning
// the materialized columns uncached, both with a warning. The only
// errors Acquire returns are materialize's own.
func (c *Cache) Acquire(p workload.Params, materialize func() (*trace.Columns, error)) (*trace.Columns, func(), bool, error) {
	hash := Hash(p)
	unlock := c.lockKey(hash)
	defer unlock()

	if m, size, err := c.openEntry(hash, p); err == nil && m != nil {
		c.hits.Add(1)
		c.bytesMapped.Add(size)
		return m.Columns, func() { m.Close() }, true, nil
	} else if err != nil {
		// Verification failed: evict so the next acquisition does not
		// re-verify known damage, warn, fall through to regeneration.
		c.evictCorrupt(hash, p, err)
	}

	cols, err := materialize()
	if err != nil {
		return nil, nil, false, err
	}
	c.misses.Add(1)
	if err := c.publish(hash, p, cols); err != nil {
		c.warnf("tracecache: publishing %s (%s): %v; continuing uncached", Key(p), hash, err)
	} else {
		c.enforceCap(hash)
	}
	return cols, func() {}, false, nil
}

// lockKey is the per-key singleflight gate: the returned unlock must be
// called when the key's acquisition completes. Waiters block until the
// leader finishes, then proceed to open the entry it published.
func (c *Cache) lockKey(hash string) func() {
	c.mu.Lock()
	for {
		ch, busy := c.inflight[hash]
		if !busy {
			break
		}
		c.mu.Unlock()
		<-ch
		c.mu.Lock()
	}
	ch := make(chan struct{})
	c.inflight[hash] = ch
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		delete(c.inflight, hash)
		c.mu.Unlock()
		close(ch)
	}
}

// openEntry opens and fully verifies one entry. Returns (nil, 0, nil)
// for a plain miss (no entry, or an entry from another schema version),
// a non-nil error for damage that must evict, and the mapped trace on
// success.
func (c *Cache) openEntry(hash string, p workload.Params) (*trace.Mapped, int64, error) {
	scPath := filepath.Join(c.dir, hash+sidecarSuffix)
	scData, err := os.ReadFile(scPath)
	if os.IsNotExist(err) {
		return nil, 0, nil // cold: no sidecar means no entry
	}
	if err != nil {
		return nil, 0, fmt.Errorf("%w: sidecar unreadable: %v", ErrCorrupt, err)
	}
	if err := failOpen.FailLabel(p.App); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	sc, err := parseSidecar(scData)
	if err != nil {
		return nil, 0, err
	}
	if sc.Codec != trace.VersionV3 || sc.WorkloadSchema != workload.SchemaVersion {
		// A different build's entry under a colliding pre-bump hash:
		// possible only if the key derivation ever drops the versions.
		// Treat as damage — the sidecar contradicts its own address.
		return nil, 0, fmt.Errorf("%w: entry is codec v%d / schema %d, this build wants v%d / %d",
			ErrCorrupt, sc.Codec, sc.WorkloadSchema, trace.VersionV3, workload.SchemaVersion)
	}
	if want := Key(p); sc.Key != want {
		return nil, 0, fmt.Errorf("%w: sidecar names key %q, address derives from %q", ErrCorrupt, sc.Key, want)
	}

	m, err := trace.OpenMapped(filepath.Join(c.dir, hash+traceSuffix))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	img := m.Image()
	if int64(len(img)) != sc.Size {
		m.Close()
		return nil, 0, fmt.Errorf("%w: trace file is %d bytes, sidecar says %d", ErrCorrupt, len(img), sc.Size)
	}
	if got := fmt.Sprintf("%08x", crc32.Checksum(img, castagnoli)); got != sc.CRC32C {
		m.Close()
		return nil, 0, fmt.Errorf("%w: trace checksum %s, sidecar says %s", ErrCorrupt, got, sc.CRC32C)
	}
	// Touch the sidecar so LRU eviction sees the hit. Best-effort: a
	// read-only cache directory still serves hits.
	now := time.Now()
	_ = os.Chtimes(scPath, now, now)
	return m, sc.Size, nil
}

// evictCorrupt removes a failed entry and records the eviction.
func (c *Cache) evictCorrupt(hash string, p workload.Params, cause error) {
	c.corrupt.Add(1)
	c.warnf("tracecache: evicting %s (%s): %v; regenerating", Key(p), hash, cause)
	os.Remove(filepath.Join(c.dir, hash+sidecarSuffix))
	os.Remove(filepath.Join(c.dir, hash+traceSuffix))
}

// countingWriter tracks bytes and CRC-32C of everything written through
// it, so publish checksums the file in the same pass that writes it.
type countingWriter struct {
	f   *os.File
	n   int64
	crc uint32
}

func (w *countingWriter) Write(b []byte) (int, error) {
	n, err := w.f.Write(b)
	w.n += int64(n)
	w.crc = crc32.Update(w.crc, castagnoli, b[:n])
	return n, err
}

// publish atomically installs cols as hash's entry: trace file first,
// sidecar second (each temp + fsync + rename), then a directory fsync.
// Because the sidecar is renamed last, any visible sidecar describes a
// fully-durable trace file.
func (c *Cache) publish(hash string, p workload.Params, cols *trace.Columns) error {
	tracePath := filepath.Join(c.dir, hash+traceSuffix)
	tf, err := os.CreateTemp(c.dir, tmpPrefix+hash+"-*"+traceSuffix)
	if err != nil {
		return err
	}
	defer os.Remove(tf.Name())
	cw := &countingWriter{f: tf}
	if err := trace.WriteColumnsV3(cw, cols); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tf.Name(), tracePath); err != nil {
		return err
	}

	scBytes, err := encodeSidecar(&sidecar{
		Version: sidecarVersion, Key: Key(p),
		Codec: trace.VersionV3, WorkloadSchema: workload.SchemaVersion,
		Size: cw.n, CRC32C: fmt.Sprintf("%08x", cw.crc),
	})
	if err != nil {
		return err
	}
	sf, err := os.CreateTemp(c.dir, tmpPrefix+hash+"-*"+sidecarSuffix)
	if err != nil {
		return err
	}
	defer os.Remove(sf.Name())
	if _, err := sf.Write(scBytes); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Sync(); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}
	if err := os.Rename(sf.Name(), filepath.Join(c.dir, hash+sidecarSuffix)); err != nil {
		return err
	}
	if err := syncDir(c.dir); err != nil {
		return err
	}
	c.bytesWritten.Add(cw.n + int64(len(scBytes)))
	return nil
}

// entryFile is one on-disk entry as the eviction sweep and List see it.
type entryFile struct {
	hash    string
	bytes   int64 // trace + sidecar
	lastUse time.Time
	sc      *sidecar
	scErr   error
}

// scan lists the cache directory's entries (by sidecar), including
// unreadable ones, plus any stale temp files from crashed publishes.
func (c *Cache) scan() (entries []entryFile, tmps []string, err error) {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, nil, err
	}
	for _, de := range des {
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			tmps = append(tmps, filepath.Join(c.dir, name))
			continue
		}
		if !strings.HasSuffix(name, sidecarSuffix) {
			continue
		}
		hash := strings.TrimSuffix(name, sidecarSuffix)
		e := entryFile{hash: hash}
		if info, err := de.Info(); err == nil {
			e.lastUse = info.ModTime()
			e.bytes = info.Size()
		}
		if info, err := os.Stat(filepath.Join(c.dir, hash+traceSuffix)); err == nil {
			e.bytes += info.Size()
		}
		data, rerr := os.ReadFile(filepath.Join(c.dir, name))
		if rerr != nil {
			e.scErr = rerr
		} else {
			e.sc, e.scErr = parseSidecar(data)
		}
		entries = append(entries, e)
	}
	return entries, tmps, nil
}

// enforceCap applies the LRU size cap, and opportunistically collects
// temp files abandoned by crashed publishes. One sweep runs at a time.
// keep names the entry just published, which the sweep never evicts:
// kernel file timestamps tick at millisecond-ish granularity, so
// back-to-back publishes can share one mtime, and an unstable sort over
// the tie could otherwise pick the entry this very sweep is running on
// behalf of.
func (c *Cache) enforceCap(keep string) {
	if c.maxBytes <= 0 {
		return
	}
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	entries, tmps, err := c.scan()
	if err != nil {
		c.warnf("tracecache: eviction scan: %v", err)
		return
	}
	for _, t := range tmps {
		// A temp file still being written by a live publish was created
		// moments ago; only collect ones old enough to be orphans.
		if info, err := os.Stat(t); err == nil && time.Since(info.ModTime()) > time.Minute {
			os.Remove(t)
		}
	}
	var total int64
	for _, e := range entries {
		total += e.bytes
	}
	if total <= c.maxBytes {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		// Tie-break identical mtimes by hash so concurrent sweeps and
		// repeated runs agree on the victim order.
		if entries[i].lastUse.Equal(entries[j].lastUse) {
			return entries[i].hash < entries[j].hash
		}
		return entries[i].lastUse.Before(entries[j].lastUse)
	})
	for _, e := range entries {
		if total <= c.maxBytes {
			break
		}
		if e.hash == keep {
			continue
		}
		os.Remove(filepath.Join(c.dir, e.hash+sidecarSuffix))
		os.Remove(filepath.Join(c.dir, e.hash+traceSuffix))
		total -= e.bytes
		c.evictions.Add(1)
		key := e.hash
		if e.sc != nil {
			key = e.sc.Key
		}
		c.warnf("tracecache: size cap: evicted %s (%.1f MB)", key, float64(e.bytes)/1e6)
	}
}

// Entry describes one cache entry for inspection tools.
type Entry struct {
	// Hash is the entry's content address (file basename); Key the
	// human-readable identity, when the sidecar was readable.
	Hash string
	Key  string
	// Codec and WorkloadSchema are the versions the entry was written
	// under; Bytes its on-disk size (trace + sidecar); LastUse the LRU
	// timestamp.
	Codec, WorkloadSchema int
	Bytes                 int64
	LastUse               time.Time
	// Err is non-nil when the sidecar failed to parse or verify; such
	// an entry would be evicted and regenerated on its next acquisition.
	Err error
}

// List returns every entry in the cache directory, sorted by key (then
// hash), including damaged ones.
func (c *Cache) List() ([]Entry, error) {
	entries, _, err := c.scan()
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(entries))
	for _, e := range entries {
		ent := Entry{Hash: e.hash, Bytes: e.bytes, LastUse: e.lastUse, Err: e.scErr}
		if e.sc != nil {
			ent.Key, ent.Codec, ent.WorkloadSchema = e.sc.Key, e.sc.Codec, e.sc.WorkloadSchema
		}
		out = append(out, ent)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Hash < out[j].Hash
	})
	return out, nil
}

// EntryPaths returns the on-disk trace and sidecar paths of the entry
// with the given hash (whether or not the files exist). It exists for
// inspection tools and for corruption tests that damage entries
// in place.
func (c *Cache) EntryPaths(hash string) (tracePath, sidecarPath string) {
	return filepath.Join(c.dir, hash+traceSuffix), filepath.Join(c.dir, hash+sidecarSuffix)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
