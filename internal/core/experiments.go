package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hpctradeoff/internal/classifier"
	"hpctradeoff/internal/features"
	"hpctradeoff/internal/metrics"
	"hpctradeoff/internal/scheme"
)

// This file regenerates the paper's tables and figures from a slice of
// TraceResults. Each ExperimentX function returns structured data with
// a Render method producing the text artifact.
//
// Every builder tolerates partial result sets: a keep-going campaign
// leaves nil entries for failed traces, which the builders drop and
// count, and the renders annotate with an exclusion note so a table
// built from 233 of 235 traces says so.

// live drops nil entries (failed traces in a keep-going campaign) and
// reports how many were excluded.
func live(rs []*TraceResult) ([]*TraceResult, int) {
	excluded := 0
	for _, r := range rs {
		if r == nil {
			excluded++
		}
	}
	if excluded == 0 {
		return rs, 0
	}
	out := make([]*TraceResult, 0, len(rs)-excluded)
	for _, r := range rs {
		if r != nil {
			out = append(out, r)
		}
	}
	return out, excluded
}

// exclusionNote renders the partial-result annotation, or "" when the
// set is complete.
func exclusionNote(excluded int) string {
	if excluded == 0 {
		return ""
	}
	return fmt.Sprintf("  [%d failed traces excluded]", excluded)
}

// simSchemes returns the simulation scheme names present in rs, in
// registry order (names no longer registered sort last,
// alphabetically), so the builders iterate deterministically even over
// results loaded from disk or produced under a different registry.
func simSchemes(rs []*TraceResult) []string {
	present := map[string]bool{}
	for _, r := range rs {
		if r == nil {
			continue
		}
		for name, o := range r.Schemes {
			if o.Kind == scheme.KindSimulation {
				present[name] = true
			}
		}
	}
	regPos := map[string]int{}
	for i, n := range scheme.Names() {
		regPos[n] = i
	}
	out := make([]string, 0, len(present))
	for n := range present {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, iok := regPos[out[i]]
		pj, jok := regPos[out[j]]
		switch {
		case iok && jok:
			return pi < pj
		case iok:
			return true
		case jok:
			return false
		}
		return out[i] < out[j]
	})
	return out
}

// ---------------------------------------------------------------- T1

// Table1 is the trace-characteristics table (paper Table I).
type Table1 struct {
	RankBuckets []BucketCount
	CommBuckets []BucketCount
	Total       int
	// Excluded counts failed traces dropped from a partial result set.
	Excluded int
}

// BucketCount is one histogram row.
type BucketCount struct {
	Label string
	Count int
}

// BuildTable1 computes the rank-count and communication-intensity
// distributions.
func BuildTable1(rs []*TraceResult) Table1 {
	rs, excluded := live(rs)
	t := Table1{Total: len(rs), Excluded: excluded}
	rankLabels := []string{"64", "65-128", "129-256", "257-512", "513-1024", "1025-1728"}
	rankCounts := make([]int, len(rankLabels))
	for _, r := range rs {
		switch n := r.Params.Ranks; {
		case n <= 64:
			rankCounts[0]++
		case n <= 128:
			rankCounts[1]++
		case n <= 256:
			rankCounts[2]++
		case n <= 512:
			rankCounts[3]++
		case n <= 1024:
			rankCounts[4]++
		default:
			rankCounts[5]++
		}
	}
	for i, l := range rankLabels {
		t.RankBuckets = append(t.RankBuckets, BucketCount{l, rankCounts[i]})
	}
	commLabels := []string{"<=5", "5-10", "10-20", "20-40", "40-60", ">60"}
	commCounts := make([]int, len(commLabels))
	for _, r := range rs {
		switch f := 100 * r.CommFraction; {
		case f <= 5:
			commCounts[0]++
		case f <= 10:
			commCounts[1]++
		case f <= 20:
			commCounts[2]++
		case f <= 40:
			commCounts[3]++
		case f <= 60:
			commCounts[4]++
		default:
			commCounts[5]++
		}
	}
	for i, l := range commLabels {
		t.CommBuckets = append(t.CommBuckets, BucketCount{l, commCounts[i]})
	}
	return t
}

// Render formats Table1.
func (t Table1) Render() string {
	var rows [][]string
	for _, b := range t.RankBuckets {
		rows = append(rows, []string{b.Label, fmt.Sprint(b.Count)})
	}
	rows = append(rows, []string{"Total", fmt.Sprint(t.Total)})
	out := "Table I(a): number of ranks\n" + metrics.Table([]string{"Ranks", "Traces"}, rows)
	rows = rows[:0]
	for _, b := range t.CommBuckets {
		rows = append(rows, []string{b.Label, fmt.Sprint(b.Count)})
	}
	rows = append(rows, []string{"Total", fmt.Sprint(t.Total)})
	out += "\nTable I(b): communication time (%)\n" + metrics.Table([]string{"Comm. time (%)", "Traces"}, rows)
	if t.Excluded > 0 {
		out += "\n" + exclusionNote(t.Excluded)
	}
	return out
}

// ---------------------------------------------------------------- T2

// Table2Row is one application's execution-time row (paper Table II).
type Table2Row struct {
	Name                 string
	Packet, Flow, PktFlw time.Duration
	MFACT                time.Duration
}

// BuildTable2 extracts the execution times for the named traces
// (the paper lists CMC(1024), LULESH(512), MiniFE(1152)).
func BuildTable2(rs []*TraceResult, want map[string]int) []Table2Row {
	rs, _ = live(rs)
	var out []Table2Row
	for _, r := range rs {
		if n, ok := want[r.Params.App]; !ok || n != r.Params.Ranks {
			continue
		}
		out = append(out, Table2Row{
			Name:   fmt.Sprintf("%s(%d)", r.Params.App, r.Params.Ranks),
			Packet: r.Schemes[scheme.Packet].Wall,
			Flow:   r.Schemes[scheme.Flow].Wall,
			PktFlw: r.Schemes[scheme.PacketFlow].Wall,
			MFACT:  r.ModelWall(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RenderTable2 formats Table II.
func RenderTable2(rows []Table2Row) string {
	var trows [][]string
	f := func(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }
	for _, r := range rows {
		trows = append(trows, []string{r.Name, f(r.Packet), f(r.Flow), f(r.PktFlw), f(r.MFACT)})
	}
	return "Table II: execution time in seconds\n" +
		metrics.Table([]string{"App", "Pkt", "Flow", "Pkt-flow", "MFACT"}, trows)
}

// ---------------------------------------------------------------- F1

// Figure1 reports each simulation scheme's execution time as a
// multiple of MFACT's, bucketed ≤10×, ≤100×, ≤1000×, >1000×.
type Figure1 struct {
	// Used is the number of traces where every scheme succeeded and
	// the run was not trivially small (the paper keeps 126 of 235).
	Used int
	// Sims lists the simulation scheme names the figure covers, in
	// registry order — the iteration order of Buckets and Ratios.
	Sims []string
	// Buckets[scheme] = cumulative fractions for ≤10×, ≤100×, ≤1000×,
	// and the fraction >1000×.
	Buckets map[string][]float64
	// FirstPlace[scheme] = fraction of traces where the scheme was the
	// fastest ("MFACT ranks first for all cases").
	FirstPlace map[string]float64
	// Ratios holds the raw per-trace ratios per scheme.
	Ratios map[string][]float64
	// Excluded counts failed traces dropped from a partial result set.
	Excluded int
}

// BuildFigure1 computes the performance comparison. minWall drops
// traces whose largest simulation wall time is below the threshold
// (the paper drops sub-second simulations such as EP and DT).
func BuildFigure1(rs []*TraceResult, minWall time.Duration) Figure1 {
	rs, excluded := live(rs)
	f := Figure1{
		Sims:       simSchemes(rs),
		Buckets:    make(map[string][]float64),
		FirstPlace: make(map[string]float64),
		Ratios:     make(map[string][]float64),
		Excluded:   excluded,
	}
	firsts := make(map[string]int)
	for _, r := range rs {
		if mo, ok := r.Schemes[scheme.MFACT]; !ok || !mo.OK {
			continue
		}
		allOK := true
		var maxWall time.Duration
		for _, m := range f.Sims {
			s := r.Schemes[m]
			if !s.OK {
				allOK = false
				break
			}
			if s.Wall > maxWall {
				maxWall = s.Wall
			}
		}
		if !allOK || maxWall < minWall {
			continue
		}
		f.Used++
		best, bestWall := "MFACT", r.ModelWall()
		for _, m := range f.Sims {
			w := r.Schemes[m].Wall
			ratio := float64(w) / float64(maxDur(r.ModelWall(), time.Nanosecond))
			f.Ratios[m] = append(f.Ratios[m], ratio)
			if w < bestWall {
				best, bestWall = m, w
			}
		}
		firsts[best]++
	}
	for _, m := range f.Sims {
		f.Buckets[m] = metrics.RatioBuckets(f.Ratios[m], []float64{10, 100, 1000})
	}
	for k, v := range firsts {
		f.FirstPlace[k] = float64(v) / float64(max(f.Used, 1))
	}
	return f
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// Render formats Figure 1.
func (f Figure1) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: simulation time as multiples of MFACT's modeling time (%d traces)%s\n",
		f.Used, exclusionNote(f.Excluded))
	var rows [][]string
	for _, m := range f.Sims {
		bk := f.Buckets[m]
		rows = append(rows, []string{m,
			metrics.Pct(bk[0]), metrics.Pct(bk[1]), metrics.Pct(bk[2]), metrics.Pct(bk[3])})
	}
	b.WriteString(metrics.Table([]string{"Model", "<=10x", "<=100x", "<=1000x", ">1000x"}, rows))
	fmt.Fprintf(&b, "\nFastest scheme share: MFACT %.1f%%\n", 100*f.FirstPlace["MFACT"])
	return b.String()
}

// ---------------------------------------------------------------- F2

// Figure2 holds the accuracy CDFs of the simulation schemes against
// MFACT.
type Figure2 struct {
	// Sims lists the simulation scheme names, in registry order — the
	// iteration order of the CDF maps.
	Sims      []string
	CommDiff  map[string]metrics.CDF
	TotalDiff map[string]metrics.CDF
	// Excluded counts failed traces dropped from a partial result set.
	Excluded int
}

// BuildFigure2 computes |sim/model − 1| CDFs over all traces each
// backend completed.
func BuildFigure2(rs []*TraceResult) Figure2 {
	rs, excluded := live(rs)
	f := Figure2{
		Sims:      simSchemes(rs),
		CommDiff:  make(map[string]metrics.CDF),
		TotalDiff: make(map[string]metrics.CDF),
		Excluded:  excluded,
	}
	for _, m := range f.Sims {
		var comm, total []float64
		for _, r := range rs {
			if d, ok := r.DiffComm(m); ok {
				comm = append(comm, d)
			}
			if d, ok := r.DiffTotal(m); ok {
				total = append(total, d)
			}
		}
		f.CommDiff[m] = metrics.NewCDF(comm)
		f.TotalDiff[m] = metrics.NewCDF(total)
	}
	return f
}

// Render formats Figure 2.
func (f Figure2) Render() string {
	var b strings.Builder
	probes := []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.40}
	fmtPct := func(x float64) string { return fmt.Sprintf("%.0f%%", 100*x) }
	b.WriteString("Figure 2(a): |estimated communication time vs MFACT|" + exclusionNote(f.Excluded) + "\n")
	for _, m := range f.Sims {
		b.WriteString(metrics.CDFSeries("  "+m, f.CommDiff[m], probes, fmtPct))
	}
	b.WriteString("\nFigure 2(b): |estimated total time vs MFACT|\n")
	for _, m := range f.Sims {
		b.WriteString(metrics.CDFSeries("  "+m, f.TotalDiff[m], probes, fmtPct))
	}
	return b.String()
}

// ------------------------------------------------------------ F3/F4

// AppAccuracy is one application's row in Figures 3 and 4: the largest
// observed differences vs MFACT and the normalized-to-measured totals.
type AppAccuracy struct {
	App string
	// MaxCommDiff and MaxTotalDiff are the maxima over the app's traces
	// of |sim/model − 1| (packet-flow backend).
	MaxCommDiff, MaxTotalDiff float64
	// SimOverMeasured and ModelOverMeasured are the mean normalized
	// totals (prediction / measured).
	SimOverMeasured, ModelOverMeasured float64
	Traces                             int
}

// BuildAppAccuracy aggregates per-application accuracy for the given
// app names (NAS for Figure 3, DOE for Figure 4).
func BuildAppAccuracy(rs []*TraceResult, apps []string) []AppAccuracy {
	rs, _ = live(rs)
	byApp := make(map[string]*AppAccuracy)
	sums := make(map[string][2]float64)
	for _, r := range rs {
		keep := false
		for _, a := range apps {
			if r.Params.App == a {
				keep = true
			}
		}
		if !keep {
			continue
		}
		a := byApp[r.Params.App]
		if a == nil {
			a = &AppAccuracy{App: r.Params.App}
			byApp[r.Params.App] = a
		}
		if d, ok := r.DiffComm(scheme.PacketFlow); ok && d > a.MaxCommDiff {
			a.MaxCommDiff = d
		}
		if d, ok := r.DiffTotal(scheme.PacketFlow); ok && d > a.MaxTotalDiff {
			a.MaxTotalDiff = d
		}
		if s, model := r.Schemes[scheme.PacketFlow], r.Model(); s.OK && model != nil && r.Measured > 0 {
			v := sums[r.Params.App]
			v[0] += float64(s.Total) / float64(r.Measured)
			v[1] += float64(model.Total()) / float64(r.Measured)
			sums[r.Params.App] = v
			a.Traces++
		}
	}
	var out []AppAccuracy
	for app, a := range byApp {
		if a.Traces > 0 {
			v := sums[app]
			a.SimOverMeasured = v[0] / float64(a.Traces)
			a.ModelOverMeasured = v[1] / float64(a.Traces)
		}
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// RenderAppAccuracy formats a Figure 3/4 panel set.
func RenderAppAccuracy(title string, rows []AppAccuracy) string {
	var trows [][]string
	for _, r := range rows {
		trows = append(trows, []string{
			r.App,
			metrics.Pct(r.MaxCommDiff),
			metrics.Pct(r.MaxTotalDiff),
			fmt.Sprintf("%.3f", r.SimOverMeasured),
			fmt.Sprintf("%.3f", r.ModelOverMeasured),
			fmt.Sprint(r.Traces),
		})
	}
	return title + "\n" + metrics.Table(
		[]string{"App", "maxCommDiff", "maxTotalDiff", "sim/measured", "model/measured", "traces"}, trows)
}

// ---------------------------------------------------------------- F5

// Figure5 groups |DIFFtotal| (packet-flow vs MFACT) by the Section VI
// application groups.
type Figure5 struct {
	Groups map[Group]metrics.CDF
	Counts map[Group]int
	// Excluded counts failed traces dropped from a partial result set.
	Excluded int
}

// BuildFigure5 computes the per-group DIFF distributions.
func BuildFigure5(rs []*TraceResult) Figure5 {
	rs, excluded := live(rs)
	vals := make(map[Group][]float64)
	counts := make(map[Group]int)
	for _, r := range rs {
		g := r.Group()
		counts[g]++
		if d, ok := r.DiffTotal(scheme.PacketFlow); ok {
			vals[g] = append(vals[g], d)
		}
	}
	f := Figure5{Groups: make(map[Group]metrics.CDF), Counts: counts, Excluded: excluded}
	for g, v := range vals {
		f.Groups[g] = metrics.NewCDF(v)
	}
	return f
}

// Render formats Figure 5.
func (f Figure5) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: |DIFFtotal| by application group (packet-flow vs MFACT)" + exclusionNote(f.Excluded) + "\n")
	for _, g := range []Group{GroupComputation, GroupImbalance, GroupCommSensitive} {
		c := f.Groups[g]
		fmt.Fprintf(&b, "  %-25s n=%-3d  ≤1%%: %5.1f%%  ≤2%%: %5.1f%%  ≤10%%: %5.1f%%  max: %s\n",
			g, f.Counts[g],
			100*c.FractionWithin(0.01), 100*c.FractionWithin(0.02),
			100*c.FractionWithin(0.10), metrics.Pct(c.Max()))
	}
	return b.String()
}

// ---------------------------------------------------------- Sect. VI

// PredictionStudy holds the Section VI results: the naive baseline,
// the cross-validated statistical model, and Table IV.
type PredictionStudy struct {
	Observations []classifier.Observation
	NaiveRate    float64
	Model        *classifier.Model
}

// BuildPredictionStudy assembles observations (packet-flow DIFF vs
// MFACT, as the paper uses) and trains the enhanced-MFACT model with
// the paper's protocol (100 MC-CV runs, ≤5 variables).
func BuildPredictionStudy(rs []*TraceResult, runs, maxVars int, seed int64) (*PredictionStudy, error) {
	rs, _ = live(rs)
	var obs []classifier.Observation
	clIdx := features.Index("CLncs")
	for _, r := range rs {
		d, ok := r.DiffTotal(scheme.PacketFlow)
		if !ok || r.Features == nil {
			continue
		}
		// Recompute the CL feature from the stored sweep so the current
		// sensitivity rule applies even to reloaded results.
		x := append([]float64(nil), r.Features...)
		if model := r.Model(); clIdx >= 0 && model != nil {
			if model.CommSensitive() {
				x[clIdx] = 0
			} else {
				x[clIdx] = 1
			}
		}
		obs = append(obs, classifier.Observation{ID: r.ID, X: x, DiffTotal: d})
	}
	m, err := classifier.Train(obs, runs, maxVars, seed)
	if err != nil {
		return nil, err
	}
	return &PredictionStudy{
		Observations: obs,
		NaiveRate:    classifier.NaiveSuccessRate(obs),
		Model:        m,
	}, nil
}

// RenderTable4 formats the stepwise-selection ranking (paper Table IV).
func (p *PredictionStudy) RenderTable4(topN int) string {
	ranked := p.Model.CV.Ranked()
	if topN > 0 && len(ranked) > topN {
		ranked = ranked[:topN]
	}
	var rows [][]string
	for i, r := range ranked {
		rows = append(rows, []string{
			fmt.Sprint(i + 1), r.Name, metrics.Pct(r.Fraction), fmt.Sprintf("%.3g", r.MeanCoef),
		})
	}
	return "Table IV: variables selected in step-wise selection\n" +
		metrics.Table([]string{"Rank", "Variable", "% Selected", "Coefficient"}, rows)
}

// RenderRates formats the headline §VI rates.
func (p *PredictionStudy) RenderRates() string {
	cv := p.Model.CV
	needSim := 0
	for _, o := range p.Observations {
		if o.NeedsSimulation() {
			needSim++
		}
	}
	return fmt.Sprintf(
		"Prediction of the need for simulation (%d observations, %d require simulation)\n"+
			"  naive CL-only heuristic success rate: %5.1f%%\n"+
			"  statistical model success rate:       %5.1f%%  (trimmed-mean MR %.1f%%)\n"+
			"  trimmed-mean FN rate: %.1f%%   trimmed-mean FP rate: %.1f%%\n",
		len(p.Observations), needSim,
		100*p.NaiveRate,
		100*p.Model.SuccessRate(), 100*cv.TrimmedMR(),
		100*cv.TrimmedFN(), 100*cv.TrimmedFP())
}
