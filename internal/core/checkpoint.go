package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"hpctradeoff/internal/faultinject"
	"hpctradeoff/internal/triage"
	"hpctradeoff/internal/workload"
)

// Failpoints on the journal's write path. An injected error at the
// append site (optionally a torn write — half a record, no newline,
// no sync — the on-disk signature of a kill mid-append) or at the
// sync site is how the chaos harness and the crash/resume tests make
// the campaign die at an exact checkpoint offset.
var (
	failCkptAppend  = faultinject.NewSite("core/checkpoint-append")
	failCkptSync    = faultinject.NewSite("core/checkpoint-sync")
	failResultsSave = faultinject.NewSite("core/results-save")
)

// The campaign checkpoint is an append-only JSONL journal: a header
// line recording the schema version and the campaign's scheme set,
// then one self-contained line per completed trace. Appending a line
// is the only write, so a crash at any instant leaves at worst one
// truncated final line, which the loader tolerates. The final results
// JSON is still written separately (atomically) by SaveResultsFile;
// the journal exists so a killed campaign restarts where it left off.
//
// The header's scheme set is what makes resumption safe under the
// scheme registry: a journal written by `-schemes=mfact,packet` must
// not silently satisfy a campaign running all four schemes, so
// RunCampaign compares the header against its selection and rejects
// mismatches.

// checkpointEntry is one journal line: a header (Header true, Schemes
// set, plus the triage policy for tiered campaigns), a trace record
// (Key and Result set), or a triage-decision record (Decision set).
type checkpointEntry struct {
	Version  int              `json:"version"`
	Header   bool             `json:"header,omitempty"`
	Schemes  []string         `json:"schemes,omitempty"`
	Triage   *triage.Policy   `json:"triage,omitempty"`
	Spec     string           `json:"spec,omitempty"`
	Key      string           `json:"key,omitempty"`
	Result   *TraceResult     `json:"result,omitempty"`
	Decision *triage.Decision `json:"decision,omitempty"`
}

// checkpointVersion is the journal schema version. Version 1 (the
// pre-scheme-registry schema, whose results carried Model/Sims fields)
// and version 2 (pre-triage: no policy header, no decision records)
// are rejected with ErrCheckpointVersion, not silently skipped.
const checkpointVersion = 3

// ErrCheckpointVersion is wrapped by loader errors rejecting a journal
// line written under a different checkpoint schema version.
var ErrCheckpointVersion = errors.New("core: checkpoint schema version mismatch")

// CampaignKey identifies a manifest entry across campaign runs. It
// covers every Params field that changes the generated trace, so a
// resumed campaign never mistakes one configuration's result for
// another's. (The key is computed from the manifest params, not the
// result: a retried trace runs with a derived seed but is journaled
// under its manifest identity. The scheme set is journal-global, in
// the header, rather than per-key.)
func CampaignKey(p workload.Params) string {
	key := fmt.Sprintf("%s.%s.x%d.%s.n%d.s%d.i%d",
		p.App, p.Class, p.Ranks, p.Machine, p.RanksPerNode, p.Seed, p.Iters)
	if !p.Noise.IsZero() {
		// The noise suffix is conditional so every key journaled before
		// Params grew the Noise field stays valid: a zero-noise manifest
		// resumes against its historical journal byte-for-byte.
		key += fmt.Sprintf("~lj%g.nh%g.os%g.ns%d",
			p.Noise.LinkJitter, p.Noise.NodeHetero, p.Noise.OSNoise, p.Noise.Seed)
	}
	return key
}

// sortedSchemes returns a sorted copy of names (the canonical header
// form, so selection order does not matter for resumption).
func sortedSchemes(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}

// sameSchemeSet reports whether a and b name the same schemes,
// ignoring order.
func sameSchemeSet(a, b []string) bool {
	sa, sb := sortedSchemes(a), sortedSchemes(b)
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

// Checkpoint appends completed trace results to a JSONL journal. It is
// safe for concurrent use by the campaign workers.
type Checkpoint struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
	// dirty marks that the previous append failed, so the file may end
	// in a torn partial record; the next append repairs the tail with a
	// newline first, or the new record would merge into the fragment and
	// both would be lost.
	dirty bool
}

// OpenCheckpoint opens (creating if needed) the journal at path for
// appending. A fresh (empty) journal gets a header line recording the
// schema version and the campaign's scheme set, and the containing
// directory is fsynced so the file itself survives a crash; an
// existing journal is appended to as-is (RunCampaign validates its
// header before opening), except that a missing final newline — a
// crash cut the last append short and no salvage ran — is repaired
// first so the next record cannot merge into the torn fragment.
func OpenCheckpoint(path string, schemes []string) (*Checkpoint, error) {
	return OpenCheckpointTriage(path, schemes, nil)
}

// OpenCheckpointTriage is OpenCheckpoint for a tiered campaign: the
// header additionally records the (normalized) triage policy, which is
// the resume gate — a journal written under one policy refuses to
// resume under a different one.
func OpenCheckpointTriage(path string, schemes []string, pol *triage.Policy) (*Checkpoint, error) {
	return OpenCheckpointSpec(path, schemes, pol, "")
}

// OpenCheckpointSpec is OpenCheckpointTriage for a spec-driven
// campaign: the header additionally records the compiled spec's hash,
// the third resume gate — a journal written under one spec refuses to
// resume under a different (or no) spec. The hash covers the compiled
// manifest and campaign config, not the file's bytes, so reformatting
// a spec does not orphan its journals but changing what it runs does.
func OpenCheckpointSpec(path string, schemes []string, pol *triage.Policy, spec string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	c := &Checkpoint{f: f, enc: json.NewEncoder(f)}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	switch {
	case st.Size() == 0:
		if err := c.enc.Encode(checkpointEntry{
			Version: checkpointVersion,
			Header:  true,
			Schemes: sortedSchemes(schemes),
			Triage:  pol,
			Spec:    spec,
		}); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		// The rename-less analogue of "fsync the directory after an
		// atomic rename": creating the journal is only durable once its
		// directory entry is.
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, err
		}
	default:
		var last [1]byte
		if _, err := f.ReadAt(last[:], st.Size()-1); err != nil {
			f.Close()
			return nil, err
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return c, nil
}

// Append journals one completed trace under its manifest key and
// syncs, so the record survives a kill immediately after.
func (c *Checkpoint) Append(key string, r *TraceResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dirty {
		if _, err := c.f.Write([]byte{'\n'}); err != nil {
			return err
		}
		c.dirty = false
	}
	if err := failCkptAppend.FailLabel(key); err != nil {
		var inj *faultinject.Injected
		if errors.As(err, &inj) && inj.Action == faultinject.ActTorn {
			// Emulate a kill mid-append: a prefix of the record reaches
			// the disk, with no newline and no sync. The loader must
			// salvage everything before it.
			if b, merr := json.Marshal(checkpointEntry{Version: checkpointVersion, Key: key, Result: r}); merr == nil {
				c.f.Write(b[:len(b)/2])
			}
		}
		c.dirty = true
		return err
	}
	if err := c.enc.Encode(checkpointEntry{Version: checkpointVersion, Key: key, Result: r}); err != nil {
		// The record may have reached the disk partially; repair the
		// tail before any further append.
		c.dirty = true
		return err
	}
	if err := failCkptSync.FailLabel(key); err != nil {
		return err
	}
	return c.f.Sync()
}

// AppendDecision journals one triage decision and syncs. Decisions are
// appended when the tiered scheduler plans (before any escalation
// runs) and again when a dispatch-time budget demotes a trace; the
// loader keeps the latest record per key, so a superseding demotion
// wins on replay. The append shares the checkpoint failpoints (label
// "decision:<key>") so the crash harness can tear a decision line at
// an exact offset.
func (c *Checkpoint) AppendDecision(d triage.Decision) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dirty {
		if _, err := c.f.Write([]byte{'\n'}); err != nil {
			return err
		}
		c.dirty = false
	}
	if err := failCkptAppend.FailLabel("decision:" + d.Key); err != nil {
		var inj *faultinject.Injected
		if errors.As(err, &inj) && inj.Action == faultinject.ActTorn {
			if b, merr := json.Marshal(checkpointEntry{Version: checkpointVersion, Decision: &d}); merr == nil {
				c.f.Write(b[:len(b)/2])
			}
		}
		c.dirty = true
		return err
	}
	if err := c.enc.Encode(checkpointEntry{Version: checkpointVersion, Decision: &d}); err != nil {
		c.dirty = true
		return err
	}
	if err := failCkptSync.FailLabel("decision:" + d.Key); err != nil {
		return err
	}
	return c.f.Sync()
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// in it survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Close closes the journal file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}

// Salvage describes what the loader recovered from around: interior
// lines it skipped as damaged, and a torn tail — an unterminated,
// unparsable final fragment, the on-disk signature of a kill
// mid-append. TornAt is the byte offset the fragment starts at, so the
// caller can truncate the journal back to its valid prefix before
// appending again.
type Salvage struct {
	Damaged  int   // complete interior lines that failed to parse
	TornTail bool  // the final line is an unterminated, unparsable fragment
	TornAt   int64 // byte offset of the torn fragment's first byte
}

// LoadCheckpoint reads a journal into a key→result map. A missing file
// is an empty journal (a fresh campaign may pass -resume). Lines that
// do not parse as JSON — the signature of a crash mid-append — are
// skipped, not fatal: the campaign simply re-runs those traces. A line
// that parses but carries a different schema version (including a
// legacy pre-scheme-registry version-1 record) fails with an error
// wrapping ErrCheckpointVersion: silently dropping it would re-run the
// whole campaign while appending to a journal no old tool can read. A
// key appearing twice keeps the latest entry.
func LoadCheckpoint(path string) (map[string]*TraceResult, error) {
	st, err := loadCheckpointState(path)
	if err != nil {
		return nil, err
	}
	return st.results, nil
}

// loadCheckpointFull is LoadCheckpoint also returning the header's
// scheme set (nil when the journal has no header line) and a salvage
// report of any damage it skipped over.
func loadCheckpointFull(path string) (map[string]*TraceResult, []string, *Salvage, error) {
	st, err := loadCheckpointState(path)
	if err != nil {
		return nil, nil, nil, err
	}
	return st.results, st.schemes, st.salvage, nil
}

// checkpointState is everything the loader recovers from a journal:
// the completed results, the header's scheme set and triage policy,
// the journaled triage decisions (latest record per key), and a
// salvage report of any damage skipped over.
type checkpointState struct {
	results map[string]*TraceResult
	// schemes is the header's scheme set; nil when the journal has no
	// header line (an empty or missing file).
	schemes []string
	// triage is the header's triage policy; nil when the journal was
	// written by a non-tiered campaign.
	triage *triage.Policy
	// spec is the header's compiled-spec hash; empty when the journal
	// was written by a flag-driven (non-spec) campaign.
	spec      string
	decisions map[string]triage.Decision
	salvage   *Salvage
}

// loadCheckpointState reads a journal into a checkpointState.
func loadCheckpointState(path string) (*checkpointState, error) {
	st := &checkpointState{
		results:   map[string]*TraceResult{},
		decisions: map[string]triage.Decision{},
		salvage:   &Salvage{},
	}
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rd := bufio.NewReaderSize(f, 64<<10)
	var offset int64
	for {
		lineStart := offset
		raw, rerr := rd.ReadBytes('\n')
		offset += int64(len(raw))
		terminated := rerr == nil
		if rerr != nil && rerr != io.EOF {
			return nil, fmt.Errorf("core: reading checkpoint %s: %w", path, rerr)
		}
		line := bytes.TrimSpace(raw)
		if len(line) > 0 {
			var e checkpointEntry
			if perr := json.Unmarshal(line, &e); perr != nil {
				if terminated {
					st.salvage.Damaged++
				} else {
					st.salvage.TornTail = true
					st.salvage.TornAt = lineStart
				}
			} else {
				if e.Version != checkpointVersion {
					return nil, fmt.Errorf("%w: %s has a version-%d line, this build writes version %d; start a fresh checkpoint or convert the journal",
						ErrCheckpointVersion, path, e.Version, checkpointVersion)
				}
				switch {
				case e.Header:
					st.schemes = e.Schemes
					st.triage = e.Triage
					st.spec = e.Spec
				case e.Key != "" && e.Result != nil:
					st.results[e.Key] = e.Result
				case e.Decision != nil && e.Decision.Key != "":
					st.decisions[e.Decision.Key] = *e.Decision
				}
			}
		}
		if rerr == io.EOF {
			break
		}
	}
	return st, nil
}
