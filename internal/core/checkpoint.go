package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"sync"

	"hpctradeoff/internal/workload"
)

// The campaign checkpoint is an append-only JSONL journal: a header
// line recording the schema version and the campaign's scheme set,
// then one self-contained line per completed trace. Appending a line
// is the only write, so a crash at any instant leaves at worst one
// truncated final line, which the loader tolerates. The final results
// JSON is still written separately (atomically) by SaveResultsFile;
// the journal exists so a killed campaign restarts where it left off.
//
// The header's scheme set is what makes resumption safe under the
// scheme registry: a journal written by `-schemes=mfact,packet` must
// not silently satisfy a campaign running all four schemes, so
// RunCampaign compares the header against its selection and rejects
// mismatches.

// checkpointEntry is one journal line: a header (Header true, Schemes
// set) or a trace record (Key and Result set).
type checkpointEntry struct {
	Version int          `json:"version"`
	Header  bool         `json:"header,omitempty"`
	Schemes []string     `json:"schemes,omitempty"`
	Key     string       `json:"key,omitempty"`
	Result  *TraceResult `json:"result,omitempty"`
}

// checkpointVersion is the journal schema version. Version 1 (the
// pre-scheme-registry schema, whose results carried Model/Sims fields)
// is rejected with ErrCheckpointVersion, not silently skipped.
const checkpointVersion = 2

// ErrCheckpointVersion is wrapped by loader errors rejecting a journal
// line written under a different checkpoint schema version.
var ErrCheckpointVersion = errors.New("core: checkpoint schema version mismatch")

// CampaignKey identifies a manifest entry across campaign runs. It
// covers every Params field that changes the generated trace, so a
// resumed campaign never mistakes one configuration's result for
// another's. (The key is computed from the manifest params, not the
// result: a retried trace runs with a derived seed but is journaled
// under its manifest identity. The scheme set is journal-global, in
// the header, rather than per-key.)
func CampaignKey(p workload.Params) string {
	return fmt.Sprintf("%s.%s.x%d.%s.n%d.s%d.i%d",
		p.App, p.Class, p.Ranks, p.Machine, p.RanksPerNode, p.Seed, p.Iters)
}

// sortedSchemes returns a sorted copy of names (the canonical header
// form, so selection order does not matter for resumption).
func sortedSchemes(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}

// sameSchemeSet reports whether a and b name the same schemes,
// ignoring order.
func sameSchemeSet(a, b []string) bool {
	sa, sb := sortedSchemes(a), sortedSchemes(b)
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

// Checkpoint appends completed trace results to a JSONL journal. It is
// safe for concurrent use by the campaign workers.
type Checkpoint struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
}

// OpenCheckpoint opens (creating if needed) the journal at path for
// appending. A fresh (empty) journal gets a header line recording the
// schema version and the campaign's scheme set; an existing journal is
// appended to as-is (RunCampaign validates its header before opening).
func OpenCheckpoint(path string, schemes []string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	c := &Checkpoint{f: f, enc: json.NewEncoder(f)}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if err := c.enc.Encode(checkpointEntry{
			Version: checkpointVersion,
			Header:  true,
			Schemes: sortedSchemes(schemes),
		}); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return c, nil
}

// Append journals one completed trace under its manifest key and
// syncs, so the record survives a kill immediately after.
func (c *Checkpoint) Append(key string, r *TraceResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(checkpointEntry{Version: checkpointVersion, Key: key, Result: r}); err != nil {
		return err
	}
	return c.f.Sync()
}

// Close closes the journal file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}

// LoadCheckpoint reads a journal into a key→result map. A missing file
// is an empty journal (a fresh campaign may pass -resume). Lines that
// do not parse as JSON — the signature of a crash mid-append — are
// skipped, not fatal: the campaign simply re-runs those traces. A line
// that parses but carries a different schema version (including a
// legacy pre-scheme-registry version-1 record) fails with an error
// wrapping ErrCheckpointVersion: silently dropping it would re-run the
// whole campaign while appending to a journal no old tool can read. A
// key appearing twice keeps the latest entry.
func LoadCheckpoint(path string) (map[string]*TraceResult, error) {
	out, _, err := loadCheckpointFull(path)
	return out, err
}

// loadCheckpointFull is LoadCheckpoint also returning the header's
// scheme set (nil when the journal has no header line).
func loadCheckpointFull(path string) (map[string]*TraceResult, []string, error) {
	out := map[string]*TraceResult{}
	var schemes []string
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return out, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e checkpointEntry
		if err := json.Unmarshal(line, &e); err != nil {
			continue
		}
		if e.Version != checkpointVersion {
			return nil, nil, fmt.Errorf("%w: %s has a version-%d line, this build writes version %d; start a fresh checkpoint or convert the journal",
				ErrCheckpointVersion, path, e.Version, checkpointVersion)
		}
		if e.Header {
			schemes = e.Schemes
			continue
		}
		if e.Key == "" || e.Result == nil {
			continue
		}
		out[e.Key] = e.Result
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("core: reading checkpoint %s: %w", path, err)
	}
	return out, schemes, nil
}
