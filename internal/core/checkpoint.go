package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"

	"hpctradeoff/internal/workload"
)

// The campaign checkpoint is an append-only JSONL journal: one
// self-contained line per completed trace. Appending a line is the
// only write, so a crash at any instant leaves at worst one truncated
// final line, which the loader tolerates. The final results JSON is
// still written separately (atomically) by SaveResultsFile; the
// journal exists so a killed campaign restarts where it left off.

// checkpointEntry is one journal line.
type checkpointEntry struct {
	Version int          `json:"version"`
	Key     string       `json:"key"`
	Result  *TraceResult `json:"result"`
}

const checkpointVersion = 1

// CampaignKey identifies a manifest entry across campaign runs. It
// covers every Params field that changes the generated trace, so a
// resumed campaign never mistakes one configuration's result for
// another's. (The key is computed from the manifest params, not the
// result: a retried trace runs with a derived seed but is journaled
// under its manifest identity.)
func CampaignKey(p workload.Params) string {
	return fmt.Sprintf("%s.%s.x%d.%s.n%d.s%d.i%d",
		p.App, p.Class, p.Ranks, p.Machine, p.RanksPerNode, p.Seed, p.Iters)
}

// Checkpoint appends completed trace results to a JSONL journal. It is
// safe for concurrent use by the campaign workers.
type Checkpoint struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
}

// OpenCheckpoint opens (creating if needed) the journal at path for
// appending.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{f: f, enc: json.NewEncoder(f)}, nil
}

// Append journals one completed trace under its manifest key and
// syncs, so the record survives a kill immediately after.
func (c *Checkpoint) Append(key string, r *TraceResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(checkpointEntry{Version: checkpointVersion, Key: key, Result: r}); err != nil {
		return err
	}
	return c.f.Sync()
}

// Close closes the journal file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}

// LoadCheckpoint reads a journal into a key→result map. A missing file
// is an empty journal (a fresh campaign may pass -resume). Corrupt or
// truncated lines — the signature of a crash mid-append — and entries
// from other journal versions are skipped, not fatal: the campaign
// simply re-runs those traces. A key appearing twice keeps the latest
// entry.
func LoadCheckpoint(path string) (map[string]*TraceResult, error) {
	out := map[string]*TraceResult{}
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return out, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e checkpointEntry
		if err := json.Unmarshal(line, &e); err != nil {
			continue
		}
		if e.Version != checkpointVersion || e.Key == "" || e.Result == nil {
			continue
		}
		out[e.Key] = e.Result
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: reading checkpoint %s: %w", path, err)
	}
	return out, nil
}
