package core

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"hpctradeoff/internal/classifier"
	"hpctradeoff/internal/features"
	"hpctradeoff/internal/scheme"
	"hpctradeoff/internal/triage"
)

// The tiered campaign runs in four phases over one shared worker-pool
// state (breakers, retry accounting, journal, halt flag):
//
//  1. Calibration: a fixed, evenly-spaced slice of the manifest runs
//     the full scheme set; those results train the classifier. Skipped
//     entirely at the threshold endpoints (0 = run everything, 1 =
//     model only), which therefore stay bit-identical to the
//     non-tiered baselines.
//  2. Model pass: every remaining trace runs MFACT alone. These
//     results are provisional — not journaled, not reported — until a
//     decision clears them.
//  3. Planning: the scheduler scores each candidate and decides; every
//     decision is journaled before any escalation runs, then cleared
//     traces are finalized with their tier-0 results.
//  4. Escalation: flagged traces re-run the full scheme set, highest
//     score first. The wall-clock budget is spent here at dispatch
//     time; a demotion journals a superseding budget-wall decision
//     (the loader keeps the latest record per key).
//
// Determinism/resume contract: the calibration split, training
// (seeded), scoring, and the count budget are all deterministic in
// (manifest, policy), so a fresh campaign is reproducible. A resumed
// campaign replays journaled decisions verbatim — it re-plans only
// traces with no journaled decision — and the checkpoint header
// refuses a different policy outright. Completed traces are skipped by
// key, so no trace ever escalates twice. The one nondeterministic
// input, wall-clock spend, is journaled at the moment it demotes, so
// resume replays the demotion instead of re-measuring time.
//
// Failure posture: a broken classifier (training or scoring failure,
// including faults injected at the triage/score site) degrades the
// plan to escalate-always — flagged-by-failure traces run the full
// scheme set, and the report counts the degradation. A failed tier-0
// model run escalates its trace (nothing to score, so nothing may be
// silently trusted); only budget demotions ever downgrade a flagged
// trace, and never one whose escalation was forced by a failure.

// runTriage executes the tiered campaign over the still-pending
// manifest indices. replayed holds the journaled decisions of a
// resumed campaign (nil otherwise).
func (c *campaign) runTriage(pending []int, replayed map[string]triage.Decision) {
	pol := *c.triage
	sched := triage.New(pol)
	n := len(c.ps)
	pend := make(map[int]bool, len(pending))
	for _, i := range pending {
		pend[i] = true
	}
	keys := make([]string, n)
	for i, p := range c.ps {
		keys[i] = CampaignKey(p)
	}

	calIdx := sched.CalibrationIndices(n)
	isCal := make(map[int]bool, len(calIdx))
	for _, i := range calIdx {
		isCal[i] = true
	}

	// Phase 1: calibration at full fidelity. Restored results count as
	// calibration data without re-running.
	var calPend []int
	for _, i := range calIdx {
		if pend[i] {
			calPend = append(calPend, i)
		}
	}
	c.runPool(poolOpts{indices: calPend, schemes: c.schemeNames, record: true})
	if c.halted() {
		return
	}

	// Train on every usable calibration result.
	if sched.NeedsClassifier() {
		var obs []classifier.Observation
		for _, i := range calIdx {
			if o, ok := triageObservation(c.results[i]); ok {
				obs = append(obs, o)
			}
		}
		if err := sched.Train(obs); err != nil {
			c.warnf("core: triage classifier training failed (%v); degrading to escalate-always", err)
		}
	}

	// Phase 2: tier-0 model pass. Needed to score undecided traces
	// (interior thresholds), to finalize the model-only endpoint, and
	// to re-derive the result of a replayed cleared decision whose
	// model record was lost to a crash. Never needed at threshold ≤ 0:
	// there every undecided trace escalates unscored.
	modelRes := make([]*TraceResult, n)
	modelErr := make([]*TraceError, n)
	var mpIdx []int
	for i := range c.ps {
		if !pend[i] || isCal[i] {
			continue
		}
		if d, ok := replayed[keys[i]]; ok {
			if !d.Escalate {
				mpIdx = append(mpIdx, i)
			}
			continue
		}
		if pol.Threshold > 0 {
			mpIdx = append(mpIdx, i)
		}
	}
	c.runPool(poolOpts{
		indices: mpIdx,
		schemes: []string{scheme.MFACT},
		onResult: func(i int, r *TraceResult, terr *TraceError) {
			modelRes[i], modelErr[i] = r, terr
		},
	})
	if c.halted() {
		// Surface in-flight model-pass failures (the fail-fast trigger,
		// or cancellations) as the traces' errors; nothing else may run.
		for _, i := range mpIdx {
			if modelErr[i] != nil && c.traceErrs[i] == nil && c.results[i] == nil {
				c.finish(i, nil, modelErr[i])
			}
		}
		return
	}

	// Phase 3: plan. Replayed decisions are adopted verbatim; only
	// traces without one are scored and planned, in manifest order.
	dec := make(map[int]triage.Decision, n)
	fresh := make(map[int]bool, n)
	decide := func(i int, d triage.Decision) {
		dec[i] = d
		if _, ok := replayed[keys[i]]; !ok {
			fresh[i] = true
		}
	}
	for _, i := range calIdx {
		decide(i, triage.Decision{Key: keys[i], Escalate: true, Reason: triage.ReasonCalibration})
	}
	var cands []triage.Candidate
	var candIdx []int
	replayCount := 0
	for i := range c.ps {
		if isCal[i] {
			continue
		}
		key := keys[i]
		if d, ok := replayed[key]; ok {
			dec[i] = d
			replayCount++
			continue
		}
		if !pend[i] {
			// A restored full-fidelity result without a decision record:
			// only possible for journals whose decision line was damaged
			// (decisions are journaled before any escalation result).
			// Synthesize from the result so the journal heals itself.
			decide(i, triage.Decision{Key: key, Escalate: len(c.results[i].Schemes) > 1, Reason: triage.ReasonFlagged})
			if !dec[i].Escalate {
				d := dec[i]
				d.Reason = triage.ReasonCleared
				decide(i, d)
			}
			continue
		}
		var x []float64
		if modelRes[i] != nil {
			x = triageX(modelRes[i])
		}
		cands = append(cands, triage.Candidate{Key: key, X: x})
		candIdx = append(candIdx, i)
	}
	for j, d := range sched.Plan(cands) {
		decide(candIdx[j], d)
	}

	// Journal every fresh decision, in manifest order, before anything
	// acts on it: a crash after this point replays the identical plan.
	if c.ckpt != nil {
		for i := 0; i < n; i++ {
			if !fresh[i] {
				continue
			}
			if err := c.ckpt.AppendDecision(dec[i]); err != nil {
				c.setInfraErr(fmt.Errorf("core: journaling triage decision for %s: %w", keys[i], err))
				return
			}
		}
	}

	// Finalize cleared traces with their tier-0 results.
	for i := 0; i < n; i++ {
		d, ok := dec[i]
		if !ok || d.Escalate || !pend[i] {
			continue
		}
		if c.halted() {
			return
		}
		if modelRes[i] == nil {
			terr := modelErr[i]
			if terr == nil {
				terr = &TraceError{ID: keys[i], Kind: KindUnknown, Attempts: 1,
					Err: fmt.Errorf("core: triage: no model result for cleared trace")}
			}
			c.finish(i, nil, terr)
			continue
		}
		c.journal(i, modelRes[i])
		c.finish(i, modelRes[i], nil)
	}
	if c.halted() {
		return
	}

	// Phase 4: escalations, highest score first (ties and unscored
	// forced escalations break on the key, so the order is
	// deterministic).
	var escIdx []int
	for i := 0; i < n; i++ {
		if d, ok := dec[i]; ok && d.Escalate && pend[i] && c.results[i] == nil {
			escIdx = append(escIdx, i)
		}
	}
	sort.Slice(escIdx, func(a, b int) bool {
		da, db := dec[escIdx[a]], dec[escIdx[b]]
		if da.Score != db.Score {
			return da.Score > db.Score
		}
		return da.Key < db.Key
	})

	// The wall budget counts completed escalation wall clock; the gate
	// demotes remaining demotable escalations once it is spent. Forced
	// escalations (calibration, classifier-down, model-failed) never
	// demote: a broken classifier must never silently skip simulation.
	var escWall atomic.Int64
	demotable := func(i int) bool {
		r := dec[i].Reason
		return r == triage.ReasonFlagged || r == triage.ReasonEscalateAll
	}
	c.runPool(poolOpts{
		indices: escIdx,
		schemes: c.schemeNames,
		record:  true,
		skip: func(i int) bool {
			return pol.MaxWall > 0 && demotable(i) &&
				time.Duration(escWall.Load()) >= pol.MaxWall
		},
		demote: func(i int) { c.demoteToModel(i, dec, modelRes) },
		onResult: func(i int, r *TraceResult, terr *TraceError) {
			if r != nil {
				var w time.Duration
				for _, o := range r.Schemes {
					w += o.Wall
				}
				escWall.Add(int64(w))
			}
		},
	})

	c.rep.Triage = buildTriageReport(pol, sched, keys, dec, isCal, c.results, modelRes, replayCount)
}

// demoteToModel finalizes a wall-budget-demoted trace with its tier-0
// model result, journaling the superseding decision first so a resumed
// campaign replays the demotion instead of re-spending the budget.
func (c *campaign) demoteToModel(i int, dec map[int]triage.Decision, modelRes []*TraceResult) {
	d := dec[i]
	d.Escalate = false
	d.Reason = triage.ReasonBudgetWall
	dec[i] = d
	if c.ckpt != nil {
		if err := c.ckpt.AppendDecision(d); err != nil {
			c.setInfraErr(fmt.Errorf("core: journaling triage demotion for %s: %w", d.Key, err))
			return
		}
	}
	r := modelRes[i]
	if r == nil {
		// No model pass ran for this trace (threshold ≤ 0, or a resumed
		// escalate decision): produce its tier-0 result now.
		runner := c.cfg.Runner
		if runner == nil {
			rn, err := NewRunner([]string{scheme.MFACT})
			if err != nil {
				c.setInfraErr(fmt.Errorf("core: %w", err))
				return
			}
			rn.SetCache(c.cfg.Cache)
			runner = rn.RunOne
		}
		var terr *TraceError
		r, terr = runWithRetry(c.ps[i], c.cfg.Policy, c.cfg.Run, runner, nil, &c.retries)
		if terr != nil {
			c.finish(i, nil, terr)
			return
		}
	}
	c.journal(i, r)
	c.finish(i, r, nil)
}

// TriageReport summarizes the tiered scheduler's decisions for one
// campaign.
type TriageReport struct {
	// Policy is the normalized policy the campaign ran under.
	Policy triage.Policy
	// ClassifierDown marks a campaign that degraded to escalate-always
	// because training or scoring failed; ClassifierErr is the cause.
	ClassifierDown bool   `json:",omitempty"`
	ClassifierErr  string `json:",omitempty"`
	// Calibration counts the traces that ran at full fidelity to train
	// the classifier; Flagged the classifier-driven escalations; Forced
	// the failure-driven ones (classifier down, model run failed);
	// Demoted the budget demotions; ModelOnly the traces whose tier-0
	// result is final. Replayed counts decisions adopted verbatim from
	// the checkpoint journal.
	Calibration, Flagged, Forced, Demoted, ModelOnly, Replayed int
	// Escalated is every non-calibration trace that ran the full scheme
	// set (Flagged + Forced, post-budget).
	Escalated int
	// EscalationRate is (Calibration + Escalated) / Total.
	EscalationRate float64
	// RescuedDiff is the Σ|DIFF| mass over full-fidelity traces — the
	// model error the escalations corrected.
	RescuedDiff float64
	// ModelWall sums the tier-0 MFACT walls; EscalationWall the
	// full-fidelity walls (calibration included).
	ModelWall, EscalationWall time.Duration
	// Decisions holds every decision in manifest order.
	Decisions []triage.Decision
}

// buildTriageReport assembles the report from the final decision set
// and results.
func buildTriageReport(pol triage.Policy, sched *triage.Scheduler, keys []string,
	dec map[int]triage.Decision, isCal map[int]bool,
	results, modelRes []*TraceResult, replayCount int) *TriageReport {
	t := &TriageReport{Policy: pol, Replayed: replayCount}
	if down, err := sched.Down(); down && sched.NeedsClassifier() {
		t.ClassifierDown = true
		if err != nil {
			t.ClassifierErr = err.Error()
		}
	}
	for i := range keys {
		d, ok := dec[i]
		if !ok {
			continue
		}
		t.Decisions = append(t.Decisions, d)
		r := results[i]
		switch {
		case isCal[i]:
			t.Calibration++
		case d.Escalate:
			t.Escalated++
			switch d.Reason {
			case triage.ReasonClassifierDown, triage.ReasonModelFailed:
				t.Forced++
			default:
				t.Flagged++
			}
		default:
			t.ModelOnly++
			if d.Reason == triage.ReasonBudgetCount || d.Reason == triage.ReasonBudgetWall {
				t.Demoted++
			}
		}
		if r == nil {
			continue
		}
		if isCal[i] || d.Escalate {
			for _, o := range r.Schemes {
				t.EscalationWall += o.Wall
			}
			if diff, ok := triageDiff(r); ok {
				t.RescuedDiff += diff
			}
		} else {
			t.ModelWall += r.ModelWall()
		}
		if mr := modelRes[i]; mr != nil && (isCal[i] || d.Escalate) {
			// The escalated trace's tier-0 pass was paid too.
			t.ModelWall += mr.ModelWall()
		}
	}
	if len(keys) > 0 {
		t.EscalationRate = float64(t.Calibration+t.Escalated) / float64(len(keys))
	}
	return t
}

// Summary is a one-line operator summary of the tiered run.
func (t *TriageReport) Summary() string {
	total := len(t.Decisions)
	s := fmt.Sprintf("triage: %d calibration + %d flagged + %d forced escalated of %d (%.1f%% full fidelity), %d model-only",
		t.Calibration, t.Flagged, t.Forced, total, 100*t.EscalationRate, t.ModelOnly)
	if t.Demoted > 0 {
		s += fmt.Sprintf(", %d demoted by budget", t.Demoted)
	}
	if t.Replayed > 0 {
		s += fmt.Sprintf(", %d decisions replayed from checkpoint", t.Replayed)
	}
	s += fmt.Sprintf("; rescued DIFF mass %.4f", t.RescuedDiff)
	if t.ClassifierDown {
		s += fmt.Sprintf(" [classifier down: escalate-always (%s)]", t.ClassifierErr)
	}
	return s
}

// triageX returns the classifier scoring vector for a completed run:
// the stored Table III features with the CL entry recomputed from the
// stored sensitivity sweep — the same convention BuildPredictionStudy
// trains with, so scoring and training always agree.
func triageX(r *TraceResult) []float64 {
	if r == nil || r.Features == nil || r.Model() == nil {
		return nil
	}
	x := append([]float64(nil), r.Features...)
	if clIdx := features.Index("CLncs"); clIdx >= 0 {
		if r.Model().CommSensitive() {
			x[clIdx] = 0
		} else {
			x[clIdx] = 1
		}
	}
	return x
}

// triageDiff is the DIFF label a full-fidelity run yields: the study's
// packet-flow DIFFtotal when that scheme ran, else the worst DIFF
// across whichever simulation schemes did.
func triageDiff(r *TraceResult) (float64, bool) {
	if d, ok := r.DiffTotal(scheme.PacketFlow); ok {
		return d, true
	}
	worst, found := 0.0, false
	for name, o := range r.Schemes {
		if o.Kind != scheme.KindSimulation || !o.OK {
			continue
		}
		if d, ok := r.DiffTotal(name); ok {
			found = true
			if d > worst {
				worst = d
			}
		}
	}
	return worst, found
}

// triageObservation converts a full-fidelity result into a training
// observation, when both the feature vector and the DIFF label exist.
func triageObservation(r *TraceResult) (classifier.Observation, bool) {
	if r == nil {
		return classifier.Observation{}, false
	}
	x := triageX(r)
	d, ok := triageDiff(r)
	if x == nil || !ok {
		return classifier.Observation{}, false
	}
	return classifier.Observation{ID: r.ID, X: x, DiffTotal: d}, true
}

// TriagePoints reduces a run-everything result set to frontier points
// (triage.Frontier): per trace, the scoring vector, the DIFF label,
// and the model-vs-simulation wall split. Traces without a usable
// label (failed simulations, degraded results) are dropped.
func TriagePoints(rs []*TraceResult) []triage.Point {
	var pts []triage.Point
	for _, r := range rs {
		if r == nil {
			continue
		}
		x := triageX(r)
		d, ok := triageDiff(r)
		if x == nil || !ok {
			continue
		}
		var simWall time.Duration
		for _, o := range r.Schemes {
			if o.Kind == scheme.KindSimulation {
				simWall += o.Wall
			}
		}
		pts = append(pts, triage.Point{
			Key: CampaignKey(r.Params), X: x, Diff: d,
			ModelWall: r.ModelWall(), SimWall: simWall,
		})
	}
	return pts
}

// ParseTriageBudget parses the -triage-budget flag: a positive integer
// is an escalation-count cap, a duration string a wall-clock cap, and
// the two can be combined comma-separated ("12,30s").
func ParseTriageBudget(s string, pol *triage.Policy) error {
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var count int
		if _, err := fmt.Sscanf(part, "%d", &count); err == nil && fmt.Sprint(count) == part {
			if count <= 0 {
				return fmt.Errorf("triage budget count must be positive, got %q", part)
			}
			pol.MaxEscalations = count
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil {
			return fmt.Errorf("triage budget %q is neither a count nor a duration", part)
		}
		if d <= 0 {
			return fmt.Errorf("triage budget duration must be positive, got %q", part)
		}
		pol.MaxWall = d
	}
	return nil
}
