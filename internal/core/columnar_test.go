package core

import (
	"reflect"
	"testing"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/mfact"
	"hpctradeoff/internal/mpisim"
	"hpctradeoff/internal/simnet"
	"hpctradeoff/internal/workload"
)

// TestColumnarReplayBitIdentical is the determinism contract for the
// columnar trace core: for every application in the suite, replaying
// the columnar representation (built natively, never materialized)
// must produce results bit-identical to replaying the classic
// array-of-structs trace — for MFACT (sequential and parallel) and for
// every packet simulator that supports the trace. Any divergence means
// the Source access path changed replay semantics, not just layout.
func TestColumnarReplayBitIdentical(t *testing.T) {
	for i, app := range workload.Apps() {
		t.Run(app, func(t *testing.T) {
			p := workload.Params{App: app, Class: "S", Ranks: 8, Machine: "edison", Seed: int64(300 + i)}
			tr, err := workload.Generate(p)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			cols, err := workload.GenerateColumns(p)
			if err != nil {
				t.Fatalf("GenerateColumns: %v", err)
			}
			mach, err := machine.New(p.Machine, p.Ranks, 0)
			if err != nil {
				t.Fatalf("machine: %v", err)
			}

			// MFACT: the logical-clock model over the full standard sweep.
			want, err := mfact.Model(tr, mach, nil)
			if err != nil {
				t.Fatalf("mfact.Model(Trace): %v", err)
			}
			got, err := mfact.ModelSource(cols, mach, nil)
			if err != nil {
				t.Fatalf("mfact.ModelSource(Columns): %v", err)
			}
			requireSameMFACT(t, "sequential", want, got)
			gotPar, err := mfact.ModelParallelSource(cols, mach, nil)
			if err != nil {
				t.Fatalf("mfact.ModelParallelSource(Columns): %v", err)
			}
			requireSameMFACT(t, "parallel", want, gotPar)

			// Packet simulation: every model that can replay this trace.
			for _, model := range simnet.Models() {
				if !simnet.Supports(model, tr.Meta.UsesCommSplit, tr.Meta.UsesThreadMultiple) {
					continue
				}
				wr, err := mpisim.Replay(tr, model, mach, simnet.Config{}, mpisim.Options{})
				if err != nil {
					t.Fatalf("%s: Replay(Trace): %v", model, err)
				}
				gr, err := mpisim.ReplaySource(cols, model, mach, simnet.Config{}, mpisim.Options{})
				if err != nil {
					t.Fatalf("%s: ReplaySource(Columns): %v", model, err)
				}
				if wr.Total != gr.Total || wr.Comm != gr.Comm || wr.Events != gr.Events {
					t.Fatalf("%s: Trace {total %v comm %v events %d} vs Columns {total %v comm %v events %d}",
						model, wr.Total, wr.Comm, wr.Events, gr.Total, gr.Comm, gr.Events)
				}
				for r := range wr.RankFinish {
					if wr.RankFinish[r] != gr.RankFinish[r] {
						t.Fatalf("%s: rank %d finish %v vs %v", model, r, wr.RankFinish[r], gr.RankFinish[r])
					}
					if wr.RankComm[r] != gr.RankComm[r] {
						t.Fatalf("%s: rank %d comm %v vs %v", model, r, wr.RankComm[r], gr.RankComm[r])
					}
				}
			}
		})
	}
}

// TestCampaignSourceNativeBitIdentical is the campaign-level identity
// contract of the Source-native pipeline: for every application in the
// suite, the full RunOne path (columnar materialization, session-held
// scheme replays, Source-walk feature extraction) must produce a
// TraceResult exactly equal — field for field, except the
// wall-clock-dependent Outcome.Wall — to running the same schemes over
// the classic materialized array-of-structs trace via the deprecated
// RunOnTrace path.
func TestCampaignSourceNativeBitIdentical(t *testing.T) {
	rn, err := NewRunner(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, app := range workload.Apps() {
		t.Run(app, func(t *testing.T) {
			p := workload.Params{App: app, Class: "S", Ranks: 8, Machine: "edison", Seed: int64(300 + i)}

			// Source-native path, with sessions shared across the suite
			// exactly as a campaign worker would share them.
			got, err := rn.RunOne(p, RunOptions{})
			if err != nil {
				t.Fatalf("RunOne (source-native): %v", err)
			}

			// Materialized path: stamped array-of-structs trace.
			tr, err := workload.Materialize(p)
			if err != nil {
				t.Fatalf("Materialize: %v", err)
			}
			mach, err := machine.New(p.Machine, p.Ranks, p.RanksPerNode)
			if err != nil {
				t.Fatal(err)
			}
			want, err := RunOnTrace(tr, mach, p)
			if err != nil {
				t.Fatalf("RunOnTrace (materialized): %v", err)
			}

			if got.ID != want.ID || got.Measured != want.Measured ||
				got.MeasuredComm != want.MeasuredComm ||
				got.CommFraction != want.CommFraction || got.Events != want.Events {
				t.Fatalf("measured fields differ:\ngot  %s %v %v %v %d\nwant %s %v %v %v %d",
					got.ID, got.Measured, got.MeasuredComm, got.CommFraction, got.Events,
					want.ID, want.Measured, want.MeasuredComm, want.CommFraction, want.Events)
			}
			if !reflect.DeepEqual(got.Features, want.Features) {
				t.Fatalf("feature vectors differ:\ngot  %v\nwant %v", got.Features, want.Features)
			}
			if len(got.Schemes) != len(want.Schemes) {
				t.Fatalf("scheme sets differ: %d vs %d", len(got.Schemes), len(want.Schemes))
			}
			for name, w := range want.Schemes {
				g, ok := got.Schemes[name]
				if !ok {
					t.Fatalf("scheme %s missing from source-native result", name)
				}
				// Wall is wall-clock noise; everything else must be
				// bit-identical, including the mfact sweep internals.
				gm, wm := g.Model, w.Model
				g.Wall, w.Wall = 0, 0
				g.Model, w.Model = nil, nil
				if g != w {
					t.Fatalf("scheme %s outcome differs:\ngot  %+v\nwant %+v", name, g, w)
				}
				if (gm == nil) != (wm == nil) {
					t.Fatalf("scheme %s mfact result presence differs", name)
				}
				if wm != nil {
					requireSameMFACT(t, name, wm, gm)
				}
			}
		})
	}
}

func requireSameMFACT(t *testing.T, which string, want, got *mfact.Result) {
	t.Helper()
	if got.Events != want.Events || got.Class != want.Class {
		t.Fatalf("%s: events/class %d/%v, want %d/%v", which, got.Events, got.Class, want.Events, want.Class)
	}
	for k := range want.Totals {
		if got.Totals[k] != want.Totals[k] {
			t.Fatalf("%s: config %d total %v, want %v", which, k, got.Totals[k], want.Totals[k])
		}
		if got.Comms[k] != want.Comms[k] {
			t.Fatalf("%s: config %d comm %v, want %v", which, k, got.Comms[k], want.Comms[k])
		}
		if got.PerConfig[k] != want.PerConfig[k] {
			t.Fatalf("%s: config %d counters %+v, want %+v", which, k, got.PerConfig[k], want.PerConfig[k])
		}
	}
}
