package core

import (
	"testing"

	"hpctradeoff/internal/machine"
	"hpctradeoff/internal/mfact"
	"hpctradeoff/internal/mpisim"
	"hpctradeoff/internal/simnet"
	"hpctradeoff/internal/workload"
)

// TestColumnarReplayBitIdentical is the determinism contract for the
// columnar trace core: for every application in the suite, replaying
// the columnar representation (built natively, never materialized)
// must produce results bit-identical to replaying the classic
// array-of-structs trace — for MFACT (sequential and parallel) and for
// every packet simulator that supports the trace. Any divergence means
// the Source access path changed replay semantics, not just layout.
func TestColumnarReplayBitIdentical(t *testing.T) {
	for i, app := range workload.Apps() {
		t.Run(app, func(t *testing.T) {
			p := workload.Params{App: app, Class: "S", Ranks: 8, Machine: "edison", Seed: int64(300 + i)}
			tr, err := workload.Generate(p)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			cols, err := workload.GenerateColumns(p)
			if err != nil {
				t.Fatalf("GenerateColumns: %v", err)
			}
			mach, err := machine.New(p.Machine, p.Ranks, 0)
			if err != nil {
				t.Fatalf("machine: %v", err)
			}

			// MFACT: the logical-clock model over the full standard sweep.
			want, err := mfact.Model(tr, mach, nil)
			if err != nil {
				t.Fatalf("mfact.Model(Trace): %v", err)
			}
			got, err := mfact.ModelSource(cols, mach, nil)
			if err != nil {
				t.Fatalf("mfact.ModelSource(Columns): %v", err)
			}
			requireSameMFACT(t, "sequential", want, got)
			gotPar, err := mfact.ModelParallelSource(cols, mach, nil)
			if err != nil {
				t.Fatalf("mfact.ModelParallelSource(Columns): %v", err)
			}
			requireSameMFACT(t, "parallel", want, gotPar)

			// Packet simulation: every model that can replay this trace.
			for _, model := range simnet.Models() {
				if !simnet.Supports(model, tr.Meta.UsesCommSplit, tr.Meta.UsesThreadMultiple) {
					continue
				}
				wr, err := mpisim.Replay(tr, model, mach, simnet.Config{}, mpisim.Options{})
				if err != nil {
					t.Fatalf("%s: Replay(Trace): %v", model, err)
				}
				gr, err := mpisim.ReplaySource(cols, model, mach, simnet.Config{}, mpisim.Options{})
				if err != nil {
					t.Fatalf("%s: ReplaySource(Columns): %v", model, err)
				}
				if wr.Total != gr.Total || wr.Comm != gr.Comm || wr.Events != gr.Events {
					t.Fatalf("%s: Trace {total %v comm %v events %d} vs Columns {total %v comm %v events %d}",
						model, wr.Total, wr.Comm, wr.Events, gr.Total, gr.Comm, gr.Events)
				}
				for r := range wr.RankFinish {
					if wr.RankFinish[r] != gr.RankFinish[r] {
						t.Fatalf("%s: rank %d finish %v vs %v", model, r, wr.RankFinish[r], gr.RankFinish[r])
					}
					if wr.RankComm[r] != gr.RankComm[r] {
						t.Fatalf("%s: rank %d comm %v vs %v", model, r, wr.RankComm[r], gr.RankComm[r])
					}
				}
			}
		})
	}
}

func requireSameMFACT(t *testing.T, which string, want, got *mfact.Result) {
	t.Helper()
	if got.Events != want.Events || got.Class != want.Class {
		t.Fatalf("%s: events/class %d/%v, want %d/%v", which, got.Events, got.Class, want.Events, want.Class)
	}
	for k := range want.Totals {
		if got.Totals[k] != want.Totals[k] {
			t.Fatalf("%s: config %d total %v, want %v", which, k, got.Totals[k], want.Totals[k])
		}
		if got.Comms[k] != want.Comms[k] {
			t.Fatalf("%s: config %d comm %v, want %v", which, k, got.Comms[k], want.Comms[k])
		}
		if got.PerConfig[k] != want.PerConfig[k] {
			t.Fatalf("%s: config %d counters %+v, want %+v", which, k, got.PerConfig[k], want.PerConfig[k])
		}
	}
}
