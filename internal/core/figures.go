package core

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hpctradeoff/internal/metrics"
)

// WriteFigures renders the study's figures as SVG files into dir:
// figure1.svg (performance ratio buckets), figure2a/2b.svg (accuracy
// CDFs), figure3/4.svg (per-app accuracy), figure5.svg (DIFF by
// group). It returns the written paths.
func WriteFigures(dir string, rs []*TraceResult, minWall time.Duration) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	put := func(name, svg string) error {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(svg), 0o644); err != nil {
			return err
		}
		written = append(written, p)
		return nil
	}

	// Figure 1: cumulative ratio buckets as grouped bars.
	f1 := BuildFigure1(rs, minWall)
	groups := []string{"<=10x", "<=100x", "<=1000x", ">1000x"}
	var names []string
	var vals [][]float64
	for gi := range groups {
		row := make([]float64, 0, len(f1.Sims))
		for _, m := range f1.Sims {
			row = append(row, 100*f1.Buckets[m][gi])
		}
		vals = append(vals, row)
	}
	names = append(names, f1.Sims...)
	if err := put("figure1.svg", metrics.BarChart(
		fmt.Sprintf("Figure 1: simulation time as multiples of MFACT time (%d traces)", f1.Used),
		"% of traces", groups, names, vals)); err != nil {
		return nil, err
	}

	// Figure 2: accuracy CDFs.
	f2 := BuildFigure2(rs)
	mkCDF := func(title string, data map[string]metrics.CDF) string {
		var ss []metrics.Series
		for _, m := range f2.Sims {
			ss = append(ss, metrics.CDFSeriesPoints(m, data[m], 0.5, 100, 100))
		}
		return metrics.LineChart(title, "|difference vs MFACT| (%)", "cumulative % of traces", ss)
	}
	if err := put("figure2a.svg", mkCDF("Figure 2(a): estimated communication time", f2.CommDiff)); err != nil {
		return nil, err
	}
	if err := put("figure2b.svg", mkCDF("Figure 2(b): estimated total time", f2.TotalDiff)); err != nil {
		return nil, err
	}

	// Figures 3 and 4: per-app max differences and normalized totals.
	mkApp := func(title string, rows []AppAccuracy) (string, string) {
		var groups []string
		var diffs, norm [][]float64
		for _, r := range rows {
			groups = append(groups, r.App)
			diffs = append(diffs, []float64{100 * r.MaxCommDiff, 100 * r.MaxTotalDiff})
			norm = append(norm, []float64{r.SimOverMeasured, r.ModelOverMeasured})
		}
		a := metrics.BarChart(title+" — max difference vs MFACT", "%", groups,
			[]string{"comm time", "total time"}, diffs)
		b := metrics.BarChart(title+" — predictions normalized to measured", "prediction / measured", groups,
			[]string{"packet-flow sim", "MFACT model"}, norm)
		return a, b
	}
	nas := []string{"CG", "MG", "FT", "IS", "LU", "BT", "EP", "DT"}
	doe := []string{"BigFFT", "CrystalRouter", "AMG", "MiniFE", "LULESH", "CNS", "CMC", "Nekbone", "MultiGrid", "FillBoundary"}
	a3, b3 := mkApp("Figure 3: NAS benchmarks", BuildAppAccuracy(rs, nas))
	if err := put("figure3ab.svg", a3); err != nil {
		return nil, err
	}
	if err := put("figure3c.svg", b3); err != nil {
		return nil, err
	}
	a4, b4 := mkApp("Figure 4: DOE applications", BuildAppAccuracy(rs, doe))
	if err := put("figure4ab.svg", a4); err != nil {
		return nil, err
	}
	if err := put("figure4c.svg", b4); err != nil {
		return nil, err
	}

	// Figure 5: DIFF CDF per application group.
	f5 := BuildFigure5(rs)
	var ss []metrics.Series
	for _, g := range []Group{GroupComputation, GroupImbalance, GroupCommSensitive} {
		ss = append(ss, metrics.CDFSeriesPoints(string(g), f5.Groups[g], 0.3, 100, 100))
	}
	if err := put("figure5.svg", metrics.LineChart(
		"Figure 5: |DIFFtotal| by application group", "|DIFFtotal| (%)", "cumulative % of traces", ss)); err != nil {
		return nil, err
	}
	return written, nil
}
