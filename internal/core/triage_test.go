package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hpctradeoff/internal/faultinject"
	"hpctradeoff/internal/scheme"
	"hpctradeoff/internal/triage"
	"hpctradeoff/internal/workload"
)

// allApps is the full application set; the differential tests cover
// every generator, not a convenient subset.
var allApps = []string{
	"CG", "MG", "FT", "IS", "LU", "BT", "EP", "DT",
	"BigFFT", "CrystalRouter", "AMG", "MiniFE", "LULESH",
	"CNS", "CMC", "Nekbone", "MultiGrid", "FillBoundary",
}

// triageSuite builds n cheap traces rotating through every app and
// machine (the chaos suite's shape).
func triageSuite(n int) []workload.Params {
	machines := []string{"cielito", "edison", "hopper"}
	ps := make([]workload.Params, n)
	for i := 0; i < n; i++ {
		ps[i] = workload.Params{
			App: allApps[i%len(allApps)], Class: "S", Ranks: 16,
			Machine: machines[i%len(machines)], Seed: int64(1000 + i),
		}
	}
	return ps
}

// resultRecordCounts parses the raw journal and counts result records
// per key — LoadCheckpoint dedups, so proving "no trace ran twice"
// needs the raw line count.
func resultRecordCounts(t *testing.T, path string) map[string]int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e checkpointEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			continue
		}
		if e.Key != "" && e.Result != nil {
			counts[e.Key]++
		}
	}
	return counts
}

// TestTriageDifferentialEndpoints pins the tentpole's bit-identity
// contract over the full application set: a tiered campaign at
// threshold 0 equals the run-everything campaign trace for trace, and
// at threshold 1 equals the mfact-only campaign — same results, no
// calibration split, no classifier.
func TestTriageDifferentialEndpoints(t *testing.T) {
	ps := triageSuite(len(allApps))
	schemes := []string{scheme.MFACT, scheme.Packet}

	full, _, err := RunCampaign(ps, CampaignConfig{Workers: 2, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	modelOnly, _, err := RunCampaign(ps, CampaignConfig{Workers: 2, Schemes: []string{scheme.MFACT}})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("threshold0-equals-run-everything", func(t *testing.T) {
		rs, rep, err := RunCampaign(ps, CampaignConfig{
			Workers: 2, Schemes: schemes,
			Triage: &triage.Policy{Threshold: 0, Seed: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := rep.Triage
		if tr == nil || tr.Calibration != 0 || tr.Escalated != len(ps) || tr.ModelOnly != 0 {
			t.Fatalf("threshold 0 report: %+v", tr)
		}
		for _, d := range tr.Decisions {
			if d.Reason != triage.ReasonEscalateAll || d.Score != 0 {
				t.Fatalf("threshold 0 planned a scored decision: %+v", d)
			}
		}
		for i := range ps {
			if err := sameResult(rs[i], full[i]); err != nil {
				t.Errorf("%s differs from run-everything: %v", ps[i].App, err)
			}
		}
	})

	t.Run("threshold1-equals-mfact-only", func(t *testing.T) {
		rs, rep, err := RunCampaign(ps, CampaignConfig{
			Workers: 2, Schemes: schemes,
			Triage: &triage.Policy{Threshold: 1, Seed: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := rep.Triage
		if tr == nil || tr.Calibration != 0 || tr.Escalated != 0 || tr.ModelOnly != len(ps) {
			t.Fatalf("threshold 1 report: %+v", tr)
		}
		for i := range ps {
			if err := sameResult(rs[i], modelOnly[i]); err != nil {
				t.Errorf("%s differs from mfact-only: %v", ps[i].App, err)
			}
		}
	})
}

// TestTriageIntermediateSubsetsMatchBaselines checks the interior: at
// a working threshold, every trace that ran at full fidelity
// (calibration or escalated) is bit-identical to the run-everything
// baseline, and every cleared trace is bit-identical to the mfact-only
// baseline — triage reroutes traces between two known pipelines, it
// never invents a third result.
func TestTriageIntermediateSubsetsMatchBaselines(t *testing.T) {
	ps := triageSuite(2 * len(allApps))
	schemes := []string{scheme.MFACT, scheme.Packet}

	full, _, err := RunCampaign(ps, CampaignConfig{Workers: 2, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	modelOnly, _, err := RunCampaign(ps, CampaignConfig{Workers: 2, Schemes: []string{scheme.MFACT}})
	if err != nil {
		t.Fatal(err)
	}

	pol := &triage.Policy{Threshold: 0.5, Calibration: 12, Seed: 1}
	rs, rep, err := RunCampaign(ps, CampaignConfig{Workers: 2, Schemes: schemes, Triage: pol})
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Triage
	if tr == nil {
		t.Fatal("no triage report")
	}
	t.Logf("intermediate: %s", tr.Summary())
	if tr.Calibration != 12 {
		t.Fatalf("calibration = %d, want 12", tr.Calibration)
	}
	byKey := map[string]triage.Decision{}
	for _, d := range tr.Decisions {
		byKey[d.Key] = d
	}
	for i, p := range ps {
		d, ok := byKey[CampaignKey(p)]
		if !ok {
			t.Fatalf("no decision for %s", CampaignKey(p))
		}
		if d.Escalate {
			if err := sameResult(rs[i], full[i]); err != nil {
				t.Errorf("escalated %s differs from run-everything: %v", d.Key, err)
			}
		} else {
			if err := sameResult(rs[i], modelOnly[i]); err != nil {
				t.Errorf("cleared %s differs from mfact-only: %v", d.Key, err)
			}
		}
	}
	// The interior must actually exercise both sides — an escalate-all
	// degradation here would make the cleared check vacuous.
	if tr.ClassifierDown {
		t.Fatalf("classifier failed to train on the calibration split: %s", tr.ClassifierErr)
	}
	if tr.ModelOnly == 0 || tr.Escalated+tr.Calibration == 0 {
		t.Fatalf("interior threshold did not split the suite: %s", tr.Summary())
	}
}

// TestTriageCrashResumeReplaysDecisions kills a tiered campaign with a
// torn journal append mid-decision-batch, resumes it, and asserts the
// checkpoint-v3 contract: replayed decisions are adopted verbatim (the
// final plan is identical to an uninterrupted run's), completed traces
// are skipped, and no trace ever runs — or escalates — twice.
func TestTriageCrashResumeReplaysDecisions(t *testing.T) {
	ps := triageSuite(2 * len(allApps))
	schemes := []string{scheme.MFACT, scheme.Packet}
	pol := &triage.Policy{Threshold: 0.5, Calibration: 12, Seed: 1}

	// Uninterrupted tiered reference.
	want, wantRep, err := RunCampaign(ps, CampaignConfig{Workers: 1, Schemes: schemes, Triage: pol})
	if err != nil {
		t.Fatal(err)
	}
	if wantRep.Triage == nil || wantRep.Triage.ClassifierDown {
		t.Fatalf("reference tiered run unusable: %+v", wantRep.Triage)
	}

	// Phase 1 journals 12 calibration results (appends 1–12); phase 3
	// then journals one decision per trace in manifest order. Tearing
	// append 16 kills the campaign after 3 committed decisions.
	const tornAppend = 16
	armFaults(t, 1, faultinject.Rule{
		Site: "core/checkpoint-append", Action: faultinject.ActTorn,
		Hits: []uint64{tornAppend},
	})
	ckpt := filepath.Join(t.TempDir(), "tiered.jsonl")
	_, _, err = RunCampaign(ps, CampaignConfig{
		Workers: 1, Schemes: schemes, Triage: pol,
		Policy:         FailurePolicy{KeepGoing: true},
		CheckpointPath: ckpt,
	})
	if err == nil {
		t.Fatal("torn decision append did not stop the campaign")
	}
	faultinject.Disarm()

	st, err := loadCheckpointState(ckpt)
	if err != nil {
		t.Fatalf("journal with torn decision tail must load: %v", err)
	}
	if len(st.decisions) != 3 {
		t.Fatalf("journal holds %d decisions, want the 3 committed before the kill", len(st.decisions))
	}
	if st.triage == nil || !st.triage.Equal(pol.Normalize(len(ps))) {
		t.Fatalf("journal header policy = %v, want %v", st.triage, pol)
	}

	// Resume with faults disarmed.
	got, rep, err := RunCampaign(ps, CampaignConfig{
		Workers: 1, Schemes: schemes, Triage: pol,
		Policy:         FailurePolicy{KeepGoing: true},
		CheckpointPath: ckpt,
		Resume:         true,
	})
	if err != nil {
		t.Fatalf("resume after kill: %v", err)
	}
	tr := rep.Triage
	if tr == nil {
		t.Fatal("resumed run has no triage report")
	}
	// Three decisions were journaled (manifest indices 0–2), but index 0
	// is a calibration trace — its decision is structural, so the report
	// counts 2 candidate decisions as replayed.
	if tr.Replayed != 2 {
		t.Errorf("resume replayed %d candidate decisions, want 2", tr.Replayed)
	}

	// The resumed plan — replayed decisions plus re-derived ones — must
	// equal the uninterrupted run's decision for decision.
	wantDec := map[string]triage.Decision{}
	for _, d := range wantRep.Triage.Decisions {
		wantDec[d.Key] = d
	}
	if len(tr.Decisions) != len(wantDec) {
		t.Fatalf("resumed run made %d decisions, want %d", len(tr.Decisions), len(wantDec))
	}
	for _, d := range tr.Decisions {
		if w := wantDec[d.Key]; d != w {
			t.Errorf("decision for %s diverged after crash/resume: got %+v, want %+v", d.Key, d, w)
		}
	}

	// Results match the uninterrupted tiered run.
	for i := range ps {
		if err := sameResult(got[i], want[i]); err != nil {
			t.Errorf("%s diverged after crash/resume: %v", CampaignKey(ps[i]), err)
		}
	}

	// No trace ran twice: exactly one result record per key in the raw
	// journal (the decision journal is what makes this possible — the
	// resumed campaign replays the plan instead of re-running it).
	counts := resultRecordCounts(t, ckpt)
	if len(counts) != len(ps) {
		t.Errorf("journal holds results for %d keys, want %d", len(counts), len(ps))
	}
	for key, n := range counts {
		if n != 1 {
			t.Errorf("trace %s has %d result records — it ran more than once", key, n)
		}
	}
}

// TestTriageResumePolicyGate checks that the checkpoint header refuses
// a resume under a different triage policy, in all three mismatch
// directions.
func TestTriageResumePolicyGate(t *testing.T) {
	ps := smallParams("EP", "IS", "DT")
	schemes := []string{scheme.MFACT, scheme.Packet}
	pol := &triage.Policy{Threshold: 0, Seed: 1}

	tieredCkpt := filepath.Join(t.TempDir(), "tiered.jsonl")
	if _, _, err := RunCampaign(ps, CampaignConfig{
		Workers: 1, Schemes: schemes, Triage: pol, CheckpointPath: tieredCkpt,
	}); err != nil {
		t.Fatal(err)
	}
	plainCkpt := filepath.Join(t.TempDir(), "plain.jsonl")
	if _, _, err := RunCampaign(ps, CampaignConfig{
		Workers: 1, Schemes: schemes, CheckpointPath: plainCkpt,
	}); err != nil {
		t.Fatal(err)
	}

	cases := map[string]CampaignConfig{
		"tiered-journal-plain-resume": {
			Workers: 1, Schemes: schemes, CheckpointPath: tieredCkpt, Resume: true,
		},
		"plain-journal-tiered-resume": {
			Workers: 1, Schemes: schemes, Triage: pol, CheckpointPath: plainCkpt, Resume: true,
		},
		"different-policy": {
			Workers: 1, Schemes: schemes,
			Triage:         &triage.Policy{Threshold: 0.7, Seed: 1},
			CheckpointPath: tieredCkpt, Resume: true,
		},
	}
	for name, cfg := range cases {
		if _, _, err := RunCampaign(ps, cfg); err == nil {
			t.Errorf("%s: resume accepted, want policy refusal", name)
		} else if !strings.Contains(err.Error(), "fresh checkpoint path") {
			t.Errorf("%s: error %q does not point at a fresh checkpoint path", name, err)
		}
	}

	// The matching policy still resumes.
	if _, rep, err := RunCampaign(ps, CampaignConfig{
		Workers: 1, Schemes: schemes, Triage: pol, CheckpointPath: tieredCkpt, Resume: true,
	}); err != nil {
		t.Errorf("matching policy refused: %v", err)
	} else if rep.Skipped != len(ps) {
		t.Errorf("matching-policy resume skipped %d, want %d", rep.Skipped, len(ps))
	}
}

// TestTriageWallBudgetDemotes runs an escalate-all campaign under a
// wall budget so small only the first dispatch fits, and asserts the
// demotions finalize with model-only results and journal superseding
// budget-wall decisions for a resume to replay.
func TestTriageWallBudgetDemotes(t *testing.T) {
	ps := smallParams("CG", "MG", "FT", "IS", "LU", "BT")
	schemes := []string{scheme.MFACT, scheme.Packet}
	ckpt := filepath.Join(t.TempDir(), "budget.jsonl")
	pol := &triage.Policy{Threshold: 0, MaxWall: time.Nanosecond, Seed: 1}
	rs, rep, err := RunCampaign(ps, CampaignConfig{
		Workers: 1, Schemes: schemes, Triage: pol, CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Triage
	if tr == nil {
		t.Fatal("no triage report")
	}
	// The spend is greedy, not a hard ceiling: the gate demotes at
	// dispatch time, so with one worker the next trace may already be
	// enqueued while the first escalation's wall is still unaccounted.
	// One escalation always completes; the overshoot is at most the one
	// in-flight trace.
	if tr.Escalated < 1 || tr.Escalated > 2 {
		t.Fatalf("wall budget escalated %d of %d, want 1 or 2 (one completed + one in flight): %s",
			tr.Escalated, len(ps), tr.Summary())
	}
	if tr.Demoted != len(ps)-tr.Escalated {
		t.Fatalf("wall budget demoted %d and escalated %d of %d traces: %s",
			tr.Demoted, tr.Escalated, len(ps), tr.Summary())
	}
	fullFidelity := 0
	for _, r := range rs {
		if r == nil {
			t.Fatal("a budget demotion lost its trace")
		}
		if len(r.Schemes) == len(schemes) {
			fullFidelity++
		} else if _, ok := r.Schemes[scheme.MFACT]; !ok || len(r.Schemes) != 1 {
			t.Fatalf("demoted trace has scheme set %v, want mfact only", r.Schemes)
		}
	}
	if fullFidelity != tr.Escalated {
		t.Fatalf("%d traces ran at full fidelity, report says %d escalated", fullFidelity, tr.Escalated)
	}
	// The journal's final decisions record the demotions.
	st, err := loadCheckpointState(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	demoted := 0
	for _, d := range st.decisions {
		if d.Reason == triage.ReasonBudgetWall && !d.Escalate {
			demoted++
		}
	}
	if demoted != tr.Demoted {
		t.Errorf("journal records %d budget-wall demotions, report says %d", demoted, tr.Demoted)
	}
}

// TestTriageRequiresWorkingSelection checks the configuration gate: a
// tiered campaign needs mfact as its cheap tier plus at least one
// scheme to escalate to.
func TestTriageRequiresWorkingSelection(t *testing.T) {
	ps := smallParams("EP")
	pol := &triage.Policy{Threshold: 0.5, Seed: 1}
	if _, _, err := RunCampaign(ps, CampaignConfig{
		Workers: 1, Schemes: []string{scheme.Packet, scheme.Flow}, Triage: pol,
	}); err == nil {
		t.Error("tiered campaign without mfact accepted")
	}
	if _, _, err := RunCampaign(ps, CampaignConfig{
		Workers: 1, Schemes: []string{scheme.MFACT}, Triage: pol,
	}); err == nil {
		t.Error("tiered campaign with nothing to escalate to accepted")
	}
}

func TestParseTriageBudget(t *testing.T) {
	cases := []struct {
		in      string
		count   int
		wall    time.Duration
		wantErr bool
	}{
		{in: ""},
		{in: "12", count: 12},
		{in: "30s", wall: 30 * time.Second},
		{in: "12,30s", count: 12, wall: 30 * time.Second},
		{in: "30s,12", count: 12, wall: 30 * time.Second},
		{in: " 5 , 2m ", count: 5, wall: 2 * time.Minute},
		{in: "0", wantErr: true},
		{in: "-3", wantErr: true},
		{in: "0s", wantErr: true},
		{in: "-10s", wantErr: true},
		{in: "bogus", wantErr: true},
		{in: "12;30s", wantErr: true},
	}
	for _, c := range cases {
		var pol triage.Policy
		err := ParseTriageBudget(c.in, &pol)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseTriageBudget(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTriageBudget(%q): %v", c.in, err)
			continue
		}
		if pol.MaxEscalations != c.count || pol.MaxWall != c.wall {
			t.Errorf("ParseTriageBudget(%q) = count %d wall %v, want %d %v",
				c.in, pol.MaxEscalations, pol.MaxWall, c.count, c.wall)
		}
	}
}

// TestTriageScoreFailpointEscalatesAll is the in-process version of the
// cmd/chaos triage schedule: break the classifier mid-campaign through
// the triage/score failpoint and assert the campaign escalates
// everything, reports the degradation, and ends with full-fidelity
// results for every trace.
func TestTriageScoreFailpointEscalatesAll(t *testing.T) {
	ps := triageSuite(2 * len(allApps))
	schemes := []string{scheme.MFACT, scheme.Packet}
	armFaults(t, 1, faultinject.Rule{
		Site: "triage/score", Action: faultinject.ActError,
		Hits: []uint64{2}, MaxFires: 1, // hit 1 is Train; hit 2 the first Score
	})
	rs, rep, err := RunCampaign(ps, CampaignConfig{
		Workers: 1, Schemes: schemes,
		Triage: &triage.Policy{Threshold: 0.5, Calibration: 12, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Triage
	if tr == nil || !tr.ClassifierDown {
		t.Fatalf("scoring fault not reported as classifier-down: %+v", tr)
	}
	if tr.ModelOnly != 0 {
		t.Fatalf("%d traces skipped simulation under a down classifier", tr.ModelOnly)
	}
	if want := len(ps) - 12; tr.Forced != want {
		t.Errorf("forced escalations = %d, want %d", tr.Forced, want)
	}
	for i, r := range rs {
		if r == nil || len(r.Schemes) != len(schemes) {
			t.Fatalf("trace %s not at full fidelity under a down classifier", CampaignKey(ps[i]))
		}
	}
}
