package core

import (
	"strings"
	"testing"

	"hpctradeoff/internal/scheme"
	"hpctradeoff/internal/simtime"
	"hpctradeoff/internal/workload"
)

func vres(noise workload.Noise, measured simtime.Time, preds map[string]simtime.Time) *TraceResult {
	tr := &TraceResult{
		Params:   workload.Params{App: "CG", Class: "S", Ranks: 64, Machine: "edison", Noise: noise},
		Measured: measured,
		Schemes:  map[string]scheme.Outcome{},
	}
	for name, total := range preds {
		tr.Schemes[name] = scheme.Outcome{Scheme: name, OK: true, Total: total}
	}
	return tr
}

func TestErrVsMeasured(t *testing.T) {
	tr := vres(workload.Noise{}, 1000, map[string]simtime.Time{scheme.MFACT: 1100, scheme.Packet: 900})
	if e, ok := tr.ErrVsMeasured(scheme.MFACT); !ok || e < 0.0999 || e > 0.1001 {
		t.Errorf("over-prediction error = %v, %v; want 0.1", e, ok)
	}
	if e, ok := tr.ErrVsMeasured(scheme.Packet); !ok || e < 0.0999 || e > 0.1001 {
		t.Errorf("under-prediction error = %v, %v; want 0.1 (errors are absolute)", e, ok)
	}
	if _, ok := tr.ErrVsMeasured("absent"); ok {
		t.Error("error defined for a scheme that never ran")
	}
	tr.Measured = 0
	if _, ok := tr.ErrVsMeasured(scheme.MFACT); ok {
		t.Error("error defined with no measured time")
	}
}

func TestBuildVariability(t *testing.T) {
	rs := []*TraceResult{
		vres(workload.Noise{}, 1000, map[string]simtime.Time{scheme.MFACT: 1050}),
		vres(workload.Noise{}, 1000, map[string]simtime.Time{scheme.MFACT: 950}),
		vres(workload.Noise{LinkJitter: 0.1}, 1000, map[string]simtime.Time{scheme.MFACT: 800}),
		vres(workload.Noise{LinkJitter: 0.3}, 1000, map[string]simtime.Time{scheme.MFACT: 600}),
		vres(workload.Noise{OSNoise: 2}, 1000, map[string]simtime.Time{scheme.MFACT: 700}),
		vres(workload.Noise{LinkJitter: 0.1, OSNoise: 2}, 1000, map[string]simtime.Time{scheme.MFACT: 500}),
		nil, // failed trace: dropped, not counted
	}
	cells := BuildVariability(rs)
	if len(cells) != 5 {
		t.Fatalf("got %d cells, want 5 (baseline, lj .1, lj .3, os 2, mixed)", len(cells))
	}
	if cells[0].Axis != "baseline" || cells[0].Traces != 2 {
		t.Errorf("cell 0 = %+v, want the 2-trace baseline first", cells[0])
	}
	if got := cells[0].MeanErr[scheme.MFACT]; got < 0.0499 || got > 0.0501 {
		t.Errorf("baseline mean error = %v, want 0.05 (mean of +5%% and -5%%)", got)
	}
	if cells[1].Axis != "link-jitter" || cells[1].Amplitude != 0.1 ||
		cells[2].Axis != "link-jitter" || cells[2].Amplitude != 0.3 {
		t.Errorf("link-jitter cells out of order: %+v, %+v", cells[1], cells[2])
	}
	if cells[3].Axis != "node-hetero" && cells[3].Axis != "os-noise" {
		t.Errorf("cell 3 axis = %q", cells[3].Axis)
	}
	last := cells[len(cells)-1]
	if last.Axis != "mixed" || last.Amplitude != 2 {
		t.Errorf("mixed cell = %+v, want axis=mixed amplitude=2 (largest hot axis)", last)
	}

	out := RenderVariability(cells)
	for _, want := range []string{"baseline", "link-jitter", "os-noise", "mixed", "mfact mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
