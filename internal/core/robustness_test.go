package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hpctradeoff/internal/des"
	"hpctradeoff/internal/faultinject"
	"hpctradeoff/internal/workload"
)

// The tests in this file arm the global faultinject registry; they must
// not run in parallel with each other. Each arms via armFaults, which
// disarms on cleanup.

func armFaults(t *testing.T, seed int64, rules ...faultinject.Rule) {
	t.Helper()
	if err := faultinject.Arm(seed, rules); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Disarm)
}

// smallParams builds one cheap manifest entry per app name given.
func smallParams(apps ...string) []workload.Params {
	machines := []string{"cielito", "edison", "hopper"}
	ps := make([]workload.Params, len(apps))
	for i, app := range apps {
		ps[i] = workload.Params{App: app, Class: "S", Ranks: 16, Machine: machines[i%len(machines)], Seed: int64(100 + i)}
	}
	return ps
}

// sameResult compares the deterministic content of two trace results,
// ignoring wall-clock fields (scheme Wall durations vary run to run).
func sameResult(a, b *TraceResult) error {
	if a == nil || b == nil {
		return fmt.Errorf("nil result (a=%v b=%v)", a != nil, b != nil)
	}
	if a.ID != b.ID || a.Measured != b.Measured || a.MeasuredComm != b.MeasuredComm || a.Events != b.Events {
		return fmt.Errorf("measured fields differ: %s{%v %v %d} vs %s{%v %v %d}",
			a.ID, a.Measured, a.MeasuredComm, a.Events, b.ID, b.Measured, b.MeasuredComm, b.Events)
	}
	if len(a.Schemes) != len(b.Schemes) {
		return fmt.Errorf("scheme sets differ: %d vs %d", len(a.Schemes), len(b.Schemes))
	}
	for name, sa := range a.Schemes {
		sb, ok := b.Schemes[name]
		if !ok {
			return fmt.Errorf("scheme %s missing", name)
		}
		if sa.OK != sb.OK || sa.Total != sb.Total || sa.Comm != sb.Comm || sa.Events != sb.Events || sa.ErrKind != sb.ErrKind {
			return fmt.Errorf("scheme %s differs: {OK:%v Total:%v Comm:%v Events:%d Kind:%s} vs {OK:%v Total:%v Comm:%v Events:%d Kind:%s}",
				name, sa.OK, sa.Total, sa.Comm, sa.Events, sa.ErrKind,
				sb.OK, sb.Total, sb.Comm, sb.Events, sb.ErrKind)
		}
	}
	return nil
}

// A torn tail — the final line cut mid-record by a crash — must be
// detected with its byte offset, while every complete record before it
// is kept.
func TestCheckpointSalvageTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	p1 := workload.Params{App: "EP", Class: "S", Ranks: 16, Machine: "cielito", Seed: 1}
	p2 := workload.Params{App: "IS", Class: "S", Ranks: 16, Machine: "edison", Seed: 2}

	ck, err := OpenCheckpoint(path, []string{"mfact", "packet"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Append(CampaignKey(p1), &TraceResult{ID: "ep", Measured: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Append(CampaignKey(p2), &TraceResult{ID: "is", Measured: 2}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	intact := st.Size()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"version":3,"key":"torn-vic`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, schemes, sal, err := loadCheckpointFull(path)
	if err != nil {
		t.Fatalf("torn journal must load: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d records, want 2", len(got))
	}
	if len(schemes) != 2 {
		t.Errorf("header schemes = %v", schemes)
	}
	if !sal.TornTail {
		t.Fatal("torn tail not detected")
	}
	if sal.TornAt != intact {
		t.Errorf("TornAt = %d, want %d (end of valid prefix)", sal.TornAt, intact)
	}
	if sal.Damaged != 0 {
		t.Errorf("Damaged = %d, want 0 (the tail is torn, not interior damage)", sal.Damaged)
	}
}

// A complete-but-garbled interior line (bit rot, partial overwrite) is
// skipped and reported, never fatal, and is not confused with a torn
// tail.
func TestCheckpointSalvageDamagedInterior(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	lines := `{"version":3,"header":true,"schemes":["mfact"]}
{"version":3,"key":"a","result":{"ID":"a"}}
}}}garbage not json{{{
{"version":3,"key":"b","result":{"ID":"b"}}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, sal, err := loadCheckpointFull(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["a"] == nil || got["b"] == nil {
		t.Errorf("records around the damage lost: %v", got)
	}
	if sal.Damaged != 1 {
		t.Errorf("Damaged = %d, want 1", sal.Damaged)
	}
	if sal.TornTail {
		t.Error("interior damage misreported as a torn tail")
	}
}

// An unterminated final fragment that nonetheless parses (the crash
// happened exactly between the record bytes and the newline) is a
// complete record: it must be kept, not truncated away.
func TestCheckpointSalvageParsableUnterminatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	lines := `{"version":3,"header":true,"schemes":["mfact"]}
{"version":3,"key":"a","result":{"ID":"a"}}`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, sal, err := loadCheckpointFull(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["a"] == nil {
		t.Errorf("parsable unterminated tail lost: %v", got)
	}
	if sal.TornTail || sal.Damaged != 0 {
		t.Errorf("salvage = %+v, want clean", sal)
	}
}

// Appending to a journal whose tail was torn by a crash must not merge
// the new record into the torn fragment — the newline guard repairs
// the tail on open. Before the guard existed this lost BOTH records.
func TestCheckpointAppendAfterTornTailDoesNotMerge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := OpenCheckpoint(path, []string{"mfact"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Append("a", &TraceResult{ID: "a", Measured: 1}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"version":3,"key":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ck2, err := OpenCheckpoint(path, []string{"mfact"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck2.Append("b", &TraceResult{ID: "b", Measured: 2}); err != nil {
		t.Fatal(err)
	}
	ck2.Close()

	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["a"] == nil || got["b"] == nil {
		t.Fatalf("records lost to a torn-tail merge: have %v", got)
	}
}

// Within one campaign process, an append that fails partway (short
// write) must not corrupt the NEXT append: the journal repairs its
// tail before writing again, so the later record survives even though
// the torn one is lost.
func TestCheckpointRepairsTailAfterFailedAppend(t *testing.T) {
	armFaults(t, 1, faultinject.Rule{
		Site: "core/checkpoint-append", Action: faultinject.ActTorn, Hits: []uint64{1},
	})
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck, err := OpenCheckpoint(path, []string{"mfact"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Append("a", &TraceResult{ID: "a"}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("first append err = %v, want injected torn write", err)
	}
	if err := ck.Append("b", &TraceResult{ID: "b", Measured: 2}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	got, _, sal, err := loadCheckpointFull(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["b"] == nil {
		t.Fatal("record after the torn append was lost to a tail merge")
	}
	if sal.Damaged != 1 {
		t.Errorf("Damaged = %d, want 1 (the torn fragment, newline-terminated by the repair)", sal.Damaged)
	}
}

// K consecutive failures of one scheme open its circuit breaker: the
// remaining traces record a typed breaker-open outcome for it instead
// of running it, other schemes keep running, and the report names the
// open breaker.
func TestCampaignBreakerOpens(t *testing.T) {
	armFaults(t, 1, faultinject.Rule{Site: "scheme/run", Label: "packet", Action: faultinject.ActError})

	ps := smallParams("EP", "IS", "DT", "EP", "IS")
	var warns []string
	rs, rep, err := RunCampaign(ps, CampaignConfig{
		Workers: 1,
		Schemes: []string{"mfact", "packet"},
		Policy:  FailurePolicy{KeepGoing: true, BreakerThreshold: 2},
		Warnf:   func(f string, a ...any) { warns = append(warns, fmt.Sprintf(f, a...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("per-scheme failures must not fail traces: %+v", rep.Errors)
	}
	for i, r := range rs {
		if r == nil {
			t.Fatalf("trace %d missing", i)
		}
		if o := r.Schemes["mfact"]; !o.OK {
			t.Errorf("trace %d: mfact should be untouched by packet's breaker: %+v", i, o)
		}
		o := r.Schemes["packet"]
		if o.OK {
			t.Fatalf("trace %d: packet succeeded despite armed fault", i)
		}
		wantKind := string(KindUnknown)
		if i >= 2 {
			wantKind = string(KindBreakerOpen)
		}
		if o.ErrKind != wantKind {
			t.Errorf("trace %d: packet ErrKind = %s, want %s", i, o.ErrKind, wantKind)
		}
	}
	if len(rep.BreakersOpen) != 1 || rep.BreakersOpen[0] != "packet" {
		t.Errorf("BreakersOpen = %v, want [packet]", rep.BreakersOpen)
	}
	if !strings.Contains(rep.Summary(), "breakers open: packet") {
		t.Errorf("summary omits the open breaker: %s", rep.Summary())
	}
	// The failpoint fired exactly twice: once the breaker opened, the
	// scheme stopped being invoked at all.
	if fired := faultinject.Fired(); len(fired) != 2 {
		t.Errorf("packet ran %d times after arming, want 2 (breaker should stop further runs)", len(fired))
	}
	found := false
	for _, w := range warns {
		if strings.Contains(w, "breaker") && strings.Contains(w, "packet") {
			found = true
		}
	}
	if !found {
		t.Errorf("no breaker warning emitted: %v", warns)
	}
}

// Capability gaps must not open a breaker: a scheme that cannot replay
// a feature set is not "down".
func TestBreakerIgnoresUnsupported(t *testing.T) {
	b := newBreakerSet(2, func(string, ...any) {})
	for i := 0; i < 5; i++ {
		if countsTowardBreaker(KindUnsupported) {
			b.record("packet", false)
		}
	}
	if !b.allow("packet") {
		t.Error("unsupported outcomes opened the breaker")
	}
	if countsTowardBreaker(KindUnsupported) || countsTowardBreaker(KindCanceled) {
		t.Error("unsupported/canceled must not count toward the breaker")
	}
	if !countsTowardBreaker(KindUnknown) || !countsTowardBreaker(KindBudget) || !countsTowardBreaker(KindPanic) {
		t.Error("real failures must count toward the breaker")
	}
	// A success between failures resets the streak.
	b2 := newBreakerSet(2, func(string, ...any) {})
	b2.record("flow", false)
	b2.record("flow", true)
	b2.record("flow", false)
	if !b2.allow("flow") {
		t.Error("non-consecutive failures opened the breaker")
	}
}

// When the full scheme set fails after retries, DegradeToModel re-runs
// the trace with MFACT alone: the trace still yields a model
// prediction, marked Degraded, and the campaign counts it.
func TestCampaignDegradesToModel(t *testing.T) {
	armFaults(t, 1, faultinject.Rule{
		Site: "scheme/run", Label: "packet",
		Action: faultinject.ActError, Err: des.ErrBudgetExceeded,
	})

	ps := smallParams("EP", "IS")
	rs, rep, err := RunCampaign(ps, CampaignConfig{
		Workers: 1,
		Schemes: []string{"mfact", "packet"},
		Policy:  FailurePolicy{KeepGoing: true, DegradeToModel: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Degraded != 2 || rep.Succeeded != 2 {
		t.Fatalf("report = %+v, want 0 failed / 2 degraded / 2 succeeded", rep)
	}
	for i, r := range rs {
		if r == nil {
			t.Fatalf("trace %d not rescued by the model fallback", i)
		}
		if !r.Degraded || r.DegradedFrom != string(KindBudget) {
			t.Errorf("trace %d: Degraded=%v From=%q, want true/budget", i, r.Degraded, r.DegradedFrom)
		}
		if o := r.Schemes["mfact"]; !o.OK {
			t.Errorf("trace %d: degraded result has no model prediction: %+v", i, o)
		}
		if _, ok := r.Schemes["packet"]; ok {
			t.Errorf("trace %d: degraded result carries a simulation outcome", i)
		}
	}
	if !strings.Contains(rep.Summary(), "2 degraded to model-only") {
		t.Errorf("summary omits degradation: %s", rep.Summary())
	}
}

// Cancellation degrades nothing (the operator asked the campaign to
// stop) and a canceled campaign reports itself resumable.
func TestDegradeSkipsCanceled(t *testing.T) {
	terr := &TraceError{Kind: KindCanceled, Err: des.ErrCanceled}
	called := false
	fallback := func(p workload.Params, ro RunOptions) (*TraceResult, error) {
		called = true
		return &TraceResult{}, nil
	}
	if r, got := degradeToModel(workload.Params{}, terr, RunOptions{}, fallback); r != nil || got != terr {
		t.Errorf("canceled trace degraded: r=%v err=%v", r, got)
	}
	if called {
		t.Error("fallback invoked for a canceled trace")
	}
}

// Closing Cancel mid-campaign stops in-flight replays through the DES
// engines' Stop path: the running trace fails with KindCanceled, no
// further traces are scheduled, and completed work is preserved.
func TestCampaignCancellation(t *testing.T) {
	// Stalls slow the simulation enough that cancellation lands mid-run.
	armFaults(t, 1, faultinject.Rule{
		Site: "des/step", Action: faultinject.ActStall,
		Every: 200, Stall: 500 * time.Microsecond,
	})

	cancel := make(chan struct{})
	go func() {
		time.Sleep(15 * time.Millisecond)
		close(cancel)
	}()
	ps := smallParams("EP", "IS", "DT")
	rs, rep, err := RunCampaign(ps, CampaignConfig{
		Workers: 1,
		Schemes: []string{"mfact", "packet"},
		Policy:  FailurePolicy{KeepGoing: true},
		Cancel:  cancel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Canceled == 0 {
		t.Fatalf("no trace classified canceled: %+v (results %v)", rep, rs)
	}
	for _, te := range rep.Errors {
		if te.Kind != KindCanceled {
			t.Errorf("interrupted campaign recorded a non-canceled failure: %v", te)
		}
		if !errors.Is(te, des.ErrCanceled) {
			t.Errorf("canceled trace does not unwrap des.ErrCanceled: %v", te)
		}
	}
	if !strings.Contains(rep.Summary(), "interrupted") {
		t.Errorf("summary omits interruption: %s", rep.Summary())
	}
}

// An injected stall must push a run past its wall-clock budget: the
// shape of a hung I/O or livelocked peer that only the deadline
// watchdog can catch.
func TestStallTripsWallClockBudget(t *testing.T) {
	armFaults(t, 1, faultinject.Rule{
		Site: "des/step", Action: faultinject.ActStall,
		Every: 100, Stall: time.Millisecond,
	})
	p := workload.Params{App: "EP", Class: "S", Ranks: 16, Machine: "cielito", Seed: 7}
	_, err := RunOneOpts(p, RunOptions{Timeout: 15 * time.Millisecond})
	if !errors.Is(err, des.ErrBudgetExceeded) {
		t.Fatalf("stalled run err = %v, want des.ErrBudgetExceeded", err)
	}
	if Classify(err) != KindBudget {
		t.Errorf("stalled run classified %s, want budget", Classify(err))
	}
}

// An injected panic in a scheme adapter is recovered, classified, and
// retried like any environmental fault; with the fault capped at one
// firing the retry succeeds.
func TestInjectedPanicIsRetried(t *testing.T) {
	armFaults(t, 1, faultinject.Rule{
		Site: "scheme/run", Label: "mfact",
		Action: faultinject.ActPanic, MaxFires: 1,
	})
	ps := smallParams("EP")
	rs, rep, err := RunCampaign(ps, CampaignConfig{
		Workers: 1,
		Schemes: []string{"mfact"},
		Policy:  FailurePolicy{MaxRetries: 1, Backoff: time.Millisecond, Seed: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0] == nil || rep.Retried != 1 || rep.Failed != 0 {
		t.Fatalf("rs[0]=%v retried=%d failed=%d, want result/1/0", rs[0], rep.Retried, rep.Failed)
	}
}

// Retry jitter is a pure function of the campaign seed and the trace
// key: reproducible no matter which worker runs the trace, different
// across traces so retries do not stampede.
func TestJitterSeedDeterminism(t *testing.T) {
	if jitterSeed(1, "a") != jitterSeed(1, "a") {
		t.Error("jitterSeed not deterministic")
	}
	if jitterSeed(1, "a") == jitterSeed(1, "b") {
		t.Error("jitterSeed does not separate traces")
	}
	if jitterSeed(1, "a") == jitterSeed(2, "a") {
		t.Error("jitterSeed does not separate campaign seeds")
	}
}

// The crash/resume differential: a campaign killed mid-checkpoint-write
// (torn append at a failpoint-chosen offset), then resumed, must
// converge to exactly the uninterrupted run's results across all 18
// applications — no committed result lost, no survivor perturbed.
func TestCrashResumeDifferentialAllApps(t *testing.T) {
	apps := []string{
		"CG", "MG", "FT", "IS", "LU", "BT", "EP", "DT",
		"BigFFT", "CrystalRouter", "AMG", "MiniFE", "LULESH",
		"CNS", "CMC", "Nekbone", "MultiGrid", "FillBoundary",
	}
	ps := smallParams(apps...)
	schemes := []string{"mfact", "packet"}

	// Uninterrupted reference run.
	want, _, err := RunCampaign(ps, CampaignConfig{Workers: 1, Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: the final checkpoint append tears mid-record — the
	// on-disk state of a kill, with the torn fragment at EOF — which the
	// campaign reports as an infrastructure failure and stops.
	const tornAppend = 18
	armFaults(t, 1, faultinject.Rule{
		Site: "core/checkpoint-append", Action: faultinject.ActTorn,
		Hits: []uint64{tornAppend},
	})
	ckpt := filepath.Join(t.TempDir(), "campaign.jsonl")
	_, _, err = RunCampaign(ps, CampaignConfig{
		Workers:        1,
		Schemes:        schemes,
		Policy:         FailurePolicy{KeepGoing: true},
		CheckpointPath: ckpt,
	})
	if err == nil {
		t.Fatal("torn checkpoint append did not stop the campaign")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("campaign error does not carry the injected fault: %v", err)
	}
	faultinject.Disarm()

	// The journal must hold every append committed before the kill, and
	// the torn tail must be recoverable (not poison the loader).
	committed, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("journal with torn tail must load: %v", err)
	}
	if len(committed) != tornAppend-1 {
		t.Fatalf("journal holds %d records, want %d committed before the kill", len(committed), tornAppend-1)
	}

	// Phase 2: resume. Salvage truncates the torn tail, the committed
	// traces are skipped, the rest re-run.
	var warns []string
	got, rep, err := RunCampaign(ps, CampaignConfig{
		Workers:        1,
		Schemes:        schemes,
		Policy:         FailurePolicy{KeepGoing: true},
		CheckpointPath: ckpt,
		Resume:         true,
		Warnf:          func(f string, a ...any) { warns = append(warns, fmt.Sprintf(f, a...)) },
	})
	if err != nil {
		t.Fatalf("resume after kill: %v", err)
	}
	if rep.Skipped != tornAppend-1 {
		t.Errorf("resume skipped %d, want %d (every committed result reused)", rep.Skipped, tornAppend-1)
	}
	salvaged := false
	for _, w := range warns {
		if strings.Contains(w, "torn") {
			salvaged = true
		}
	}
	if !salvaged {
		t.Errorf("no salvage warning on resume: %v", warns)
	}

	// Differential: every app's result matches the uninterrupted run.
	for i := range ps {
		if err := sameResult(got[i], want[i]); err != nil {
			t.Errorf("%s diverged after crash/resume: %v", ps[i].App, err)
		}
	}

	// No committed result was lost: each key journaled before the kill
	// is still the final answer.
	final, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	for key, r := range committed {
		fr := final[key]
		if fr == nil {
			t.Errorf("committed result %s lost on resume", key)
			continue
		}
		if err := sameResult(fr, r); err != nil {
			t.Errorf("committed result %s rewritten on resume: %v", key, err)
		}
	}
	// And the salvaged journal is fully valid JSONL again.
	if len(final) != len(ps) {
		t.Errorf("final journal holds %d records, want %d", len(final), len(ps))
	}
}

// A sync-failure at the checkpoint (disk full, dying device) is an
// infrastructure failure: the campaign stops rather than silently
// running on without durability.
func TestCheckpointSyncFailureStopsCampaign(t *testing.T) {
	armFaults(t, 1, faultinject.Rule{
		Site: "core/checkpoint-sync", Action: faultinject.ActError, MaxFires: 1,
	})
	ps := smallParams("EP", "IS")
	_, _, err := RunCampaign(ps, CampaignConfig{
		Workers:        1,
		Schemes:        []string{"mfact"},
		Policy:         FailurePolicy{KeepGoing: true},
		CheckpointPath: filepath.Join(t.TempDir(), "ck.jsonl"),
	})
	if err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("sync failure not surfaced as infrastructure error: %v", err)
	}
}

// The results-save failpoint makes SaveResultsFile fail cleanly: no
// temp droppings, no clobbered previous file.
func TestResultsSaveFailpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.json")
	if err := SaveResultsFile(path, []*TraceResult{{ID: "keep"}}); err != nil {
		t.Fatal(err)
	}
	armFaults(t, 1, faultinject.Rule{Site: "core/results-save", Action: faultinject.ActError})
	if err := SaveResultsFile(path, []*TraceResult{{ID: "clobber"}}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	faultinject.Disarm()
	got, err := LoadResultsFile(path)
	if err != nil || len(got) != 1 || got[0].ID != "keep" {
		t.Fatalf("previous results clobbered by failed save: %v %v", got, err)
	}
}
