package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Results files let the §V study (cmd/tradeoff) and the §VI study
// (cmd/predictor) share one expensive suite run.

// resultsFile is the on-disk envelope.
type resultsFile struct {
	Version int            `json:"version"`
	Results []*TraceResult `json:"results"`
}

const resultsVersion = 1

// SaveResults writes results as JSON.
func SaveResults(w io.Writer, rs []*TraceResult) error {
	enc := json.NewEncoder(w)
	return enc.Encode(resultsFile{Version: resultsVersion, Results: rs})
}

// LoadResults reads a results file written by SaveResults.
func LoadResults(r io.Reader) ([]*TraceResult, error) {
	var f resultsFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding results: %w", err)
	}
	if f.Version != resultsVersion {
		return nil, fmt.Errorf("core: results version %d, want %d", f.Version, resultsVersion)
	}
	return f.Results, nil
}

// SaveResultsFile writes results to path.
func SaveResultsFile(path string, rs []*TraceResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveResults(f, rs); err != nil {
		return err
	}
	return f.Close()
}

// LoadResultsFile reads results from path.
func LoadResultsFile(path string) ([]*TraceResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadResults(f)
}
